// Types, domains and conversion functions (paper Section 5): querying a
// catalogue whose measurements use different units. Conditions compare a
// `cm` field against an `mm` literal; the type system finds the least
// common supertype and applies the registered conversion functions, so the
// comparison is well-typed. The example also shows instance_of / below on
// typed values, and what happens when a comparison is *ill*-typed.
//
// Build & run:  ./build/examples/typed_queries

#include <cstdio>

#include "common/string_util.h"
#include "core/toss.h"

using namespace toss;

namespace {

int Fail(const Status& s) {
  std::fprintf(stderr, "error: %s\n", s.ToString().c_str());
  return 1;
}

}  // namespace

int main() {
  // A small parts catalogue: widths recorded in different units.
  store::Database db;
  auto coll = db.CreateCollection("parts");
  if (!coll.ok()) return Fail(coll.status());
  struct Part {
    const char* name;
    const char* width;
  };
  // Widths are stored in centimetres in this source.
  const Part kParts[] = {
      {"connector", "3"}, {"bracket", "12"}, {"rail", "90"},
      {"housing", "25"},
  };
  int key = 0;
  for (const auto& part : kParts) {
    std::string xml = std::string("<part><name>") + part.name +
                      "</name><width>" + part.width + "</width></part>";
    auto id = (*coll)->InsertXml("part-" + std::to_string(key++), xml);
    if (!id.ok()) return Fail(id.status());
  }

  // Type system: mm <= length, cm <= length, with conversions into mm.
  core::TypeSystem types;
  (void)types.AddType("length", "string");
  (void)types.AddType("mm", "length");
  (void)types.AddType("cm", "length");
  (void)types.AddConversion(
      "length", "string",
      [](const std::string& v) -> Result<std::string> { return v; });
  (void)types.AddConversion(
      "mm", "length",
      [](const std::string& v) -> Result<std::string> { return v; });
  (void)types.AddConversion(
      "cm", "length", [](const std::string& v) -> Result<std::string> {
        long long n;
        if (!ParseInt(v, &n)) return Status::TypeError("bad cm value");
        return std::to_string(n * 10);  // canonical length unit: mm
      });
  Status closure = types.ValidateClosure();
  if (!closure.ok()) return Fail(closure);

  // Minimal SEO (no similarity needed here, but the executor wants one for
  // TOSS semantics).
  ontology::Ontology onto;
  onto.isa().EnsureTerm("part");
  core::SeoBuilder builder;
  builder.AddInstanceOntology(std::move(onto));
  builder.SetMeasure(*sim::MakeMeasure("levenshtein"));
  builder.SetEpsilon(0.0);
  auto seo = builder.Build();
  if (!seo.ok()) return Fail(seo.status());

  // Query: parts wider than 200 mm. The stored widths are cm-typed; the
  // literal is mm-typed; lub = length with cm->length scaling to mm.
  tax::PatternTree pattern;
  int root = pattern.AddRoot();                // $1 part
  pattern.AddChild(root, tax::EdgeKind::kPc);  // $2 name
  pattern.AddChild(root, tax::EdgeKind::kPc);  // $3 width
  auto cond = tax::ParseCondition(
      "$1.tag = \"part\" & $2.tag = \"name\" & $3.tag = \"width\" & "
      "$3.content > \"200\":mm");
  if (!cond.ok()) return Fail(cond.status());
  pattern.SetCondition(std::move(cond).value());

  // Annotate the loaded trees with the cm content type, then run the
  // algebra directly (executor-level type annotation would come from a
  // schema; here we do it by hand to keep the example focused).
  tax::TreeCollection trees;
  for (store::DocId id : (*coll)->AllDocs()) {
    tax::DataTree t = tax::DataTree::FromXml((*coll)->document(id),
                                             (*coll)->document(id).root());
    for (tax::NodeId v = 0; v < t.size(); ++v) {
      if (t.node(v).tag == "width") t.node(v).content_type = "cm";
    }
    trees.push_back(std::move(t));
  }

  core::SeoSemantics semantics(&*seo, &types);
  auto wide = tax::Select(trees, pattern, {1}, semantics);
  if (!wide.ok()) return Fail(wide.status());
  std::printf("parts wider than 200 mm (widths stored in cm):\n");
  for (const auto& tree : *wide) {
    std::printf("  - %s (%s cm)\n", tree.node(1).content.c_str(),
                tree.node(2).content.c_str());
  }

  // instance_of over typed values.
  auto inst = tax::ParseCondition(
      "$1.tag = \"part\" & $3.tag = \"width\" & $3.content instance_of cm");
  if (!inst.ok()) return Fail(inst.status());
  pattern.SetCondition(std::move(inst).value());
  auto typed = tax::Select(trees, pattern, {1}, semantics);
  if (!typed.ok()) return Fail(typed.status());
  std::printf("parts whose width is a cm value: %zu of %zu\n",
              typed->size(), trees.size());

  // An ill-typed comparison is reported, not silently false.
  (void)types.AddType("color");
  auto bad = tax::ParseCondition(
      "$1.tag = \"part\" & $3.tag = \"width\" & $3.content < \"red\":color");
  if (!bad.ok()) return Fail(bad.status());
  pattern.SetCondition(std::move(bad).value());
  auto err = tax::Select(trees, pattern, {1}, semantics);
  std::printf("ill-typed query -> %s\n",
              err.ok() ? "unexpectedly succeeded"
                       : err.status().ToString().c_str());
  return err.ok() ? 1 : 0;
}
