// Paper Example 13: join DBLP and the SIGMOD proceedings pages on *similar*
// titles -- the two sources store the same papers with small textual
// differences (punctuation, capitalization), so an exact-match join (TAX)
// misses pairs that a similarity join (TOSS) finds.
//
// This example also demonstrates interoperation constraints: the fused
// ontology identifies DBLP's `booktitle` with SIGMOD's `conference`
// (paper Example 9).
//
// Build & run:  ./build/examples/bibliography_join

#include <cstdio>

#include "core/toss.h"
#include "data/bib_generator.h"
#include "data/workload.h"

using namespace toss;

namespace {

int Fail(const Status& s) {
  std::fprintf(stderr, "error: %s\n", s.ToString().c_str());
  return 1;
}

}  // namespace

int main() {
  // Generate a shared world and emit both datasets over the same papers.
  data::BibConfig cfg;
  cfg.seed = 7;
  cfg.num_papers = 24;
  cfg.num_people = 20;
  data::BibWorld world = data::GenerateWorld(cfg);

  store::Database db;
  Status s = data::LoadIntoCollection(&db, "dblp",
                                      data::EmitDblp(world, 0, 12, cfg));
  if (!s.ok()) return Fail(s);
  s = data::LoadIntoCollection(&db, "sigmod",
                               data::EmitSigmod(world, 6, 12, cfg));
  if (!s.ok()) return Fail(s);
  // Papers 6..11 exist in both sources (with perturbed SIGMOD titles).

  // Per-source ontologies plus Example 9's interoperation constraint.
  auto build_onto = [&](const char* name,
                        std::vector<std::string> content_tags)
      -> Result<ontology::Ontology> {
    auto coll = db.GetCollection(name);
    if (!coll.ok()) return coll.status();
    std::vector<const xml::XmlDocument*> docs;
    for (store::DocId id : (*coll)->AllDocs()) {
      docs.push_back(&(*coll)->document(id));
    }
    ontology::OntologyMakerOptions opts;
    opts.content_tags = std::move(content_tags);
    return ontology::MakeOntologyForDocuments(
        docs, lexicon::BuiltinBibliographicLexicon(), opts);
  };
  auto dblp_onto = build_onto("dblp", data::DblpContentTags());
  if (!dblp_onto.ok()) return Fail(dblp_onto.status());
  auto sigmod_onto = build_onto("sigmod", data::SigmodContentTags());
  if (!sigmod_onto.ok()) return Fail(sigmod_onto.status());

  core::SeoBuilder builder;
  builder.AddInstanceOntology(std::move(dblp_onto).value());
  builder.AddInstanceOntology(std::move(sigmod_onto).value());
  // booktitle:0 = conference:1 (Example 9).
  builder.AddConstraints(ontology::kPartOf,
                         ontology::Eq("booktitle", 0, "conference", 1));
  builder.SetMeasure(*sim::MakeMeasure("levenshtein"));
  builder.SetEpsilon(2.0);
  auto seo = builder.Build();
  if (!seo.ok()) return Fail(seo.status());
  core::TypeSystem types = core::MakeBibliographicTypeSystem();

  // The join pattern of Fig. 16(b): 5 tag conditions + 1 similarTo.
  tax::PatternTree pattern = data::MakeTitleJoinPattern();

  core::QueryExecutor tax_exec(&db, nullptr, nullptr);
  core::QueryExecutor toss_exec(&db, &*seo, &types);

  for (auto* exec : {&tax_exec, &toss_exec}) {
    core::ExecStats stats;
    auto joined =
        exec->Join("dblp", "sigmod", pattern, {2, 4}, core::QueryOptions{},
                   &stats);
    if (!joined.ok()) return Fail(joined.status());
    std::printf("%s join: %zu matched pair(s) in %.2f ms "
                "(rewrite %.2f + store %.2f + eval %.2f)\n",
                exec->is_toss() ? "TOSS" : "TAX ", joined->size(),
                stats.TotalMs(), stats.rewrite_ms, stats.store_ms,
                stats.eval_ms);
    for (const auto& tree : *joined) {
      // Print the DBLP title of each matched pair.
      for (tax::NodeId v = 0; v < tree.size(); ++v) {
        if (tree.node(v).tag == "title") {
          std::printf("  - %s\n", tree.node(v).content.c_str());
          break;
        }
      }
    }
  }
  std::printf(
      "\nTOSS pairs up titles that differ by punctuation or one-letter\n"
      "typos; TAX only joins byte-identical titles.\n");
  return 0;
}
