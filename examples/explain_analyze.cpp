// EXPLAIN ANALYZE: run a Fig. 15-style selection query through the query
// service and print where its time went -- the per-phase trace tree
// (rewrite / store_scan / eval) with expansion fan-out, candidate counts,
// index-pruning ratio, and decoded-tree cache annotations -- followed by
// the process-wide metrics registry dump.
//
// Build & run:  ./build/examples/explain_analyze
//
// Pass --json to get the trace tree and metrics snapshot as JSON instead of
// the human-readable rendering.

#include <cstdio>
#include <cstring>

#include "core/toss.h"
#include "data/bib_generator.h"
#include "data/workload.h"
#include "obs/metrics.h"
#include "service/toss_service.h"

using namespace toss;

namespace {

int Fail(const Status& s) {
  std::fprintf(stderr, "error: %s\n", s.ToString().c_str());
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  const bool json = argc > 1 && std::strcmp(argv[1], "--json") == 0;

  // A generated DBLP collection, its ontology, and an SEO at epsilon = 3.
  data::BibConfig cfg;
  cfg.seed = 15;
  cfg.num_papers = 400;
  cfg.num_people = 60;
  data::BibWorld world = data::GenerateWorld(cfg);

  store::Database db;
  Status s = data::LoadIntoCollection(&db, "dblp",
                                      data::EmitDblp(world, 0, 400, cfg));
  if (!s.ok()) return Fail(s);

  auto coll = db.GetCollection("dblp");
  if (!coll.ok()) return Fail(coll.status());
  std::vector<const xml::XmlDocument*> docs;
  for (store::DocId id : (*coll)->AllDocs()) {
    docs.push_back(&(*coll)->document(id));
  }
  ontology::OntologyMakerOptions opts;
  opts.content_tags = data::DblpContentTags();
  auto onto = ontology::MakeOntologyForDocuments(
      docs, lexicon::BuiltinBibliographicLexicon(), opts);
  if (!onto.ok()) return Fail(onto.status());

  core::SeoBuilder builder;
  builder.AddInstanceOntology(std::move(onto).value());
  builder.SetMeasure(*sim::MakeMeasure("levenshtein"));
  builder.SetEpsilon(3.0);
  auto seo = builder.Build();
  if (!seo.ok()) return Fail(seo.status());

  // One of Fig. 16(a)'s conjunctive selection queries: papers at a venue
  // similar to the first generated venue's short name, in its category.
  const auto& venue = world.venues.front();
  tax::PatternTree pattern = data::MakeScalabilitySelectionPattern(
      venue.short_name, venue.category);

  core::TypeSystem types = core::MakeBibliographicTypeSystem();
  service::TossService svc(&db, &*seo, &types);

  service::QueryRequest req = service::QueryRequest::Select("dblp", pattern,
                                                            {1});
  req.collect_trace = true;
  service::QueryResponse resp = svc.Run(req);
  if (!resp.ok()) return Fail(resp.status);

  if (json) {
    std::printf("%s\n", resp.trace->Json().c_str());
    std::printf("%s\n", obs::Metrics().SnapshotJson().c_str());
    return 0;
  }

  std::printf("EXPLAIN ANALYZE select over %zu papers (venue ~ \"%s\", "
              "category isa \"%s\"):\n\n",
              static_cast<size_t>(400), venue.short_name.c_str(),
              venue.category.c_str());
  std::printf("%s", resp.trace->Pretty().c_str());
  std::printf("phases: rewrite %.3f ms, store %.3f ms, eval %.3f ms "
              "(total %.3f ms)\n"
              "xpath queries %zu, expanded terms %zu, candidate docs %zu, "
              "result trees %zu\n"
              "trace coverage: %.1f%%\n",
              resp.stats.rewrite_ms, resp.stats.store_ms, resp.stats.eval_ms,
              resp.stats.TotalMs(), resp.stats.xpath_queries,
              resp.stats.expanded_terms, resp.stats.candidate_docs,
              resp.stats.result_trees,
              resp.trace->CoverageFraction() * 100.0);
  std::printf("\nanswers: %zu trees (queue wait %.3f ms, prepared-cache %s)\n",
              resp.trees.size(), resp.queue_wait_ms,
              resp.prepared_cache_hit ? "hit" : "miss");

  std::printf("\n--- metrics registry ---\n");
  obs::Metrics().Dump(stdout);
  return 0;
}
