// The production deployment story (paper Section 3: "After SEO is
// precomputed ..."): an *offline* step builds the database and the
// similarity enhanced ontology and writes both to disk; an *online* step
// later opens them and answers queries without re-running the ontology
// maker, fusion, or SEA.
//
// Build & run:  ./build/examples/precomputed_pipeline

#include <cstdio>
#include <filesystem>

#include "common/timer.h"
#include "core/query_language.h"
#include "core/toss.h"
#include "data/bib_generator.h"

using namespace toss;
namespace fs = std::filesystem;

namespace {

int Fail(const Status& s) {
  std::fprintf(stderr, "error: %s\n", s.ToString().c_str());
  return 1;
}

}  // namespace

int main() {
  fs::path root = fs::temp_directory_path() / "toss_precomputed_demo";
  fs::remove_all(root);
  fs::create_directories(root);
  const std::string db_dir = (root / "db").string();
  const std::string seo_path = (root / "seo.txt").string();

  // ---------------------------------------------------------------------------
  // Offline: generate, build, persist.
  // ---------------------------------------------------------------------------
  {
    Timer timer;
    data::BibConfig cfg;
    cfg.seed = 123;
    cfg.num_papers = 200;
    cfg.num_people = 50;
    data::BibWorld world = data::GenerateWorld(cfg);
    store::Database db;
    Status s = data::LoadIntoCollection(&db, "dblp",
                                        data::EmitDblp(world, 0, 200, cfg));
    if (!s.ok()) return Fail(s);

    auto coll = db.GetCollection("dblp");
    if (!coll.ok()) return Fail(coll.status());
    std::vector<const xml::XmlDocument*> docs;
    for (store::DocId id : (*coll)->AllDocs()) {
      docs.push_back(&(*coll)->document(id));
    }
    ontology::OntologyMakerOptions opts;
    opts.content_tags = data::DblpContentTags();
    auto onto = ontology::MakeOntologyForDocuments(
        docs, lexicon::BuiltinBibliographicLexicon(), opts);
    if (!onto.ok()) return Fail(onto.status());

    core::SeoBuilder builder;
    builder.AddInstanceOntology(std::move(onto).value());
    builder.SetMeasure(*sim::MakeMeasure("guarded-levenshtein"));
    builder.SetEpsilon(3.0);
    auto seo = builder.Build();
    if (!seo.ok()) return Fail(seo.status());

    s = db.Save(db_dir);
    if (!s.ok()) return Fail(s);
    s = core::SaveSeo(*seo, seo_path);
    if (!s.ok()) return Fail(s);
    std::printf("offline: built and persisted DB (200 papers) + SEO "
                "(%zu nodes) in %.1f ms\n",
                seo->TotalNodeCount(), timer.ElapsedMillis());
  }

  // ---------------------------------------------------------------------------
  // Online: open, query.
  // ---------------------------------------------------------------------------
  {
    Timer timer;
    auto db = store::Database::Open(db_dir);
    if (!db.ok()) return Fail(db.status());
    auto seo = core::LoadSeo(seo_path);
    if (!seo.ok()) return Fail(seo.status());
    std::printf("online: reopened DB + SEO in %.1f ms\n",
                timer.ElapsedMillis());

    core::TypeSystem types = core::MakeBibliographicTypeSystem();
    core::QueryExecutor exec(&*db, &*seo, &types);
    core::ExecStats stats;
    auto result = core::RunQuery(
        exec,
        "SELECT $1 FROM dblp MATCH $1/$2 WHERE "
        "$1.tag = \"inproceedings\" & $2.tag = \"booktitle\" & "
        "$2.content isa \"database conference\"",
        &stats);
    if (!result.ok()) return Fail(result.status());
    std::printf("query: %zu database-conference papers in %.2f ms "
                "(no fusion or SEA at query time)\n",
                result->size(), stats.TotalMs());
  }

  fs::remove_all(root);
  return 0;
}
