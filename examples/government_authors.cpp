// The introduction's motivating query: "find all papers having at least one
// author from the US government". No author lists their affiliation as
// "US government" -- they write "US Census Bureau", "Army Research Lab",
// etc. The partof ontology (from the lexicon) bridges the gap:
//
//   army research lab  partof  us army  partof  us department of defense
//                                        partof  us government
//
// TAX's "contains" baseline finds nothing; TOSS's part_of condition walks
// the enhanced partof hierarchy.
//
// Build & run:  ./build/examples/government_authors

#include <cstdio>

#include "core/toss.h"

using namespace toss;

namespace {

constexpr const char* kPapers[] = {
    "<inproceedings><author>Alice Smith</author>"
    "<affiliation>US Census Bureau</affiliation>"
    "<title>Scalable Record Linkage for Census Data</title>"
    "</inproceedings>",

    "<inproceedings><author>Bob Jones</author>"
    "<affiliation>Army Research Lab</affiliation>"
    "<title>Decision Architectures for Sensor Networks</title>"
    "</inproceedings>",

    "<inproceedings><author>Carol White</author>"
    "<affiliation>Stanford University</affiliation>"
    "<title>Ontology Algebra for Knowledge Composition</title>"
    "</inproceedings>",

    "<inproceedings><author>Dan Brown</author>"
    "<affiliation>Google</affiliation>"
    "<title>Web-Scale Crawling Infrastructure</title>"
    "</inproceedings>",
};

int Fail(const Status& s) {
  std::fprintf(stderr, "error: %s\n", s.ToString().c_str());
  return 1;
}

}  // namespace

int main() {
  store::Database db;
  auto coll = db.CreateCollection("papers");
  if (!coll.ok()) return Fail(coll.status());
  int key = 0;
  for (const char* paper : kPapers) {
    auto id = (*coll)->InsertXml("p" + std::to_string(key++), paper);
    if (!id.ok()) return Fail(id.status());
  }

  std::vector<const xml::XmlDocument*> docs;
  for (store::DocId id : (*coll)->AllDocs()) {
    docs.push_back(&(*coll)->document(id));
  }
  ontology::OntologyMakerOptions opts;
  opts.content_tags = {"affiliation"};
  auto onto = ontology::MakeOntologyForDocuments(
      docs, lexicon::BuiltinBibliographicLexicon(), opts);
  if (!onto.ok()) return Fail(onto.status());

  core::SeoBuilder builder;
  builder.AddInstanceOntology(std::move(onto).value());
  builder.SetMeasure(*sim::MakeMeasure("ci-levenshtein"));
  builder.SetEpsilon(1.0);
  auto seo = builder.Build();
  if (!seo.ok()) return Fail(seo.status());
  core::TypeSystem types = core::MakeBibliographicTypeSystem();

  // Pattern: an inproceedings whose affiliation child is part of the US
  // government; project out the title.
  tax::PatternTree pattern;
  int root = pattern.AddRoot();                 // $1
  pattern.AddChild(root, tax::EdgeKind::kPc);   // $2 affiliation
  pattern.AddChild(root, tax::EdgeKind::kPc);   // $3 title
  auto cond = tax::ParseCondition(
      "$1.tag = \"inproceedings\" & $2.tag = \"affiliation\" & "
      "$3.tag = \"title\" & $2.content part_of \"us government\"");
  if (!cond.ok()) return Fail(cond.status());
  pattern.SetCondition(std::move(cond).value());

  core::QueryExecutor tax_exec(&db, nullptr, nullptr);
  core::QueryExecutor toss_exec(&db, &*seo, &types);

  for (auto* exec : {&tax_exec, &toss_exec}) {
    auto answers =
        exec->Project("papers", pattern, {{3, false}}, core::QueryOptions{});
    if (!answers.ok()) return Fail(answers.status());
    std::printf("%s found %zu paper(s):\n",
                exec->is_toss() ? "TOSS" : "TAX ", answers->size());
    for (const auto& tree : *answers) {
      std::printf("  - %s\n", tree.node(tree.root()).content.c_str());
    }
  }
  std::printf(
      "\nTOSS reaches the census/army papers through the partof hierarchy;\n"
      "the Stanford and Google papers are correctly excluded.\n");
  return 0;
}
