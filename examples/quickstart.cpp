// Quickstart: the full TOSS pipeline on a handful of hand-written papers.
//
//   1. load XML documents into the embedded store,
//   2. derive an ontology (structure + lexicon),
//   3. build the similarity enhanced ontology (SEO),
//   4. run the same pattern-tree query under TAX and under TOSS,
//   5. print both answers -- TOSS finds the name/venue variants TAX misses.
//
// Build & run:  ./build/examples/quickstart

#include <cstdio>

#include "core/toss.h"

using namespace toss;

namespace {

constexpr const char* kPapers[] = {
    "<inproceedings><author>Jeffrey Ullman</author>"
    "<title>A First Course in Database Systems</title>"
    "<booktitle>SIGMOD Conference</booktitle><year>1997</year>"
    "</inproceedings>",

    "<inproceedings><author>Jeffrey D. Ullman</author>"
    "<title>Information Integration Using Logical Views</title>"
    "<booktitle>ACM SIGMOD International Conference on Management of Data"
    "</booktitle><year>1999</year></inproceedings>",

    "<inproceedings><author>Serge Abiteboul</author>"
    "<title>Querying Semi-Structured Data</title>"
    "<booktitle>SIGMOD Conference</booktitle><year>1997</year>"
    "</inproceedings>",

    "<inproceedings><author>Jeffrey Ullman</author>"
    "<title>Data Mining Lectures</title>"
    "<booktitle>KDD</booktitle><year>1998</year></inproceedings>",
};

void PrintAnswers(const char* label, const tax::TreeCollection& answers) {
  std::printf("%s: %zu answer(s)\n", label, answers.size());
  for (const auto& tree : answers) {
    xml::WriteOptions opts;
    opts.pretty = true;
    std::printf("%s", xml::WriteSubtree(tree.ToXml(), 0, opts).c_str());
  }
  std::printf("\n");
}

}  // namespace

int main() {
  // 1. Load the documents into a store collection.
  store::Database db;
  auto coll = db.CreateCollection("dblp");
  if (!coll.ok()) {
    std::fprintf(stderr, "%s\n", coll.status().ToString().c_str());
    return 1;
  }
  int key = 0;
  for (const char* paper : kPapers) {
    auto id = (*coll)->InsertXml("paper-" + std::to_string(key++), paper);
    if (!id.ok()) {
      std::fprintf(stderr, "%s\n", id.status().ToString().c_str());
      return 1;
    }
  }

  // 2. Ontology Maker: one ontology for the collection.
  std::vector<const xml::XmlDocument*> docs;
  for (store::DocId id : (*coll)->AllDocs()) {
    docs.push_back(&(*coll)->document(id));
  }
  ontology::OntologyMakerOptions opts;
  opts.content_tags = {"author", "booktitle"};
  auto onto = ontology::MakeOntologyForDocuments(
      docs, lexicon::BuiltinBibliographicLexicon(), opts);
  if (!onto.ok()) {
    std::fprintf(stderr, "%s\n", onto.status().ToString().c_str());
    return 1;
  }

  // 3. Similarity Enhancer: SEO with Levenshtein, epsilon = 3.
  core::SeoBuilder builder;
  builder.AddInstanceOntology(std::move(onto).value());
  builder.SetMeasure(*sim::MakeMeasure("levenshtein"));
  builder.SetEpsilon(3.0);
  auto seo = builder.Build();
  if (!seo.ok()) {
    std::fprintf(stderr, "%s\n", seo.status().ToString().c_str());
    return 1;
  }
  std::printf("SEO built: %zu enhanced ontology nodes, epsilon=%.1f\n\n",
              seo->TotalNodeCount(), seo->epsilon());

  // 4. The query: papers by someone similar to "Jeffrey Ullman" at a venue
  //    that is a SIGMOD conference.
  tax::PatternTree pattern;
  int root = pattern.AddRoot();                  // $1 inproceedings
  pattern.AddChild(root, tax::EdgeKind::kPc);    // $2 author
  pattern.AddChild(root, tax::EdgeKind::kPc);    // $3 booktitle
  auto cond = tax::ParseCondition(
      "$1.tag = \"inproceedings\" & $2.tag = \"author\" & "
      "$3.tag = \"booktitle\" & "
      "$2.content ~ \"Jeffrey Ullman\" & "
      "$3.content isa \"SIGMOD Conference\"");
  if (!cond.ok()) {
    std::fprintf(stderr, "%s\n", cond.status().ToString().c_str());
    return 1;
  }
  pattern.SetCondition(std::move(cond).value());

  core::TypeSystem types = core::MakeBibliographicTypeSystem();

  // 5. Execute under both algebras.
  core::QueryExecutor tax_exec(&db, nullptr, nullptr);
  core::QueryExecutor toss_exec(&db, &*seo, &types);

  core::QueryOptions query_opts;
  auto tax_answers = tax_exec.Select("dblp", pattern, {1}, query_opts);
  auto toss_answers = toss_exec.Select("dblp", pattern, {1}, query_opts);
  if (!tax_answers.ok() || !toss_answers.ok()) {
    std::fprintf(stderr, "query failed\n");
    return 1;
  }
  PrintAnswers("TAX  (exact match)", *tax_answers);
  PrintAnswers("TOSS (SEO, eps=3)", *toss_answers);

  std::printf(
      "TOSS additionally matched the \"Jeffrey D. Ullman\" variant and the\n"
      "full venue name -- the recall the paper's Section 1 is about.\n");
  return 0;
}
