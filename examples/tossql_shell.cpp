// tossql: a small interactive shell for TOSS-QL queries over a generated
// bibliographic database.
//
// Usage:
//   ./build/examples/tossql_shell            # run the canned demo queries
//   ./build/examples/tossql_shell -i         # read queries from stdin,
//                                            # one per line; '\q' quits
//
// The shell loads two collections (dblp, sigmod) of synthetic data, builds
// the SEO (guarded Levenshtein, eps=3), and executes each statement under
// both TAX and TOSS so the recall difference is visible side by side.

#include <cstdio>
#include <cstring>
#include <iostream>
#include <string>

#include "core/query_language.h"
#include "core/toss.h"
#include "data/bib_generator.h"
#include "xml/xml_writer.h"

using namespace toss;

namespace {

int Fail(const Status& s) {
  std::fprintf(stderr, "error: %s\n", s.ToString().c_str());
  return 1;
}

void Execute(const core::QueryExecutor& exec, const char* label,
             const std::string& text) {
  core::ExecStats stats;
  auto result = core::RunQuery(exec, text, &stats);
  if (!result.ok()) {
    std::printf("%s: %s\n", label, result.status().ToString().c_str());
    return;
  }
  std::printf("%s: %zu tree(s) in %.2f ms (rewrite %.2f, store %.2f, "
              "eval %.2f)\n",
              label, result->size(), stats.TotalMs(), stats.rewrite_ms,
              stats.store_ms, stats.eval_ms);
  size_t shown = 0;
  for (const auto& tree : *result) {
    if (shown++ == 3) {
      std::printf("  ... (%zu more)\n", result->size() - 3);
      break;
    }
    xml::WriteOptions opts;
    opts.pretty = true;
    std::string xml = xml::WriteSubtree(tree.ToXml(), 0, opts);
    // Indent for readability.
    std::printf("  %s", xml.c_str());
  }
}

}  // namespace

int main(int argc, char** argv) {
  bool interactive = argc > 1 && std::strcmp(argv[1], "-i") == 0;

  // --- Data -----------------------------------------------------------------
  data::BibConfig cfg;
  cfg.seed = 99;
  cfg.num_papers = 60;
  cfg.num_people = 25;
  data::BibWorld world = data::GenerateWorld(cfg);
  store::Database db;
  Status s = data::LoadIntoCollection(&db, "dblp",
                                      data::EmitDblp(world, 0, 60, cfg));
  if (!s.ok()) return Fail(s);
  s = data::LoadIntoCollection(&db, "sigmod",
                               data::EmitSigmod(world, 0, 60, cfg));
  if (!s.ok()) return Fail(s);

  // --- SEO ------------------------------------------------------------------
  auto collection_onto = [&](const char* name,
                             std::vector<std::string> tags)
      -> Result<ontology::Ontology> {
    auto coll = db.GetCollection(name);
    if (!coll.ok()) return coll.status();
    std::vector<const xml::XmlDocument*> docs;
    for (store::DocId id : (*coll)->AllDocs()) {
      docs.push_back(&(*coll)->document(id));
    }
    ontology::OntologyMakerOptions opts;
    opts.content_tags = std::move(tags);
    return ontology::MakeOntologyForDocuments(
        docs, lexicon::BuiltinBibliographicLexicon(), opts);
  };
  auto donto = collection_onto("dblp", data::DblpContentTags());
  if (!donto.ok()) return Fail(donto.status());
  auto sonto = collection_onto("sigmod", data::SigmodContentTags());
  if (!sonto.ok()) return Fail(sonto.status());

  core::SeoBuilder builder;
  builder.AddInstanceOntology(std::move(donto).value());
  builder.AddInstanceOntology(std::move(sonto).value());
  builder.AddConstraints(ontology::kPartOf,
                         ontology::Eq("booktitle", 0, "conference", 1));
  builder.SetMeasure(*sim::MakeMeasure("guarded-levenshtein"));
  builder.SetEpsilon(3.0);
  auto seo = builder.Build();
  if (!seo.ok()) return Fail(seo.status());

  core::TypeSystem types = core::MakeBibliographicTypeSystem();
  core::QueryExecutor tax_exec(&db, nullptr, nullptr);
  core::QueryExecutor toss_exec(&db, &*seo, &types);

  auto run_both = [&](const std::string& text) {
    std::printf("> %s\n", text.c_str());
    // "explain <query>" prints the TOSS plan instead of executing.
    if (text.rfind("explain ", 0) == 0) {
      auto q = core::ParseQuery(text.substr(8));
      if (!q.ok()) {
        std::printf("%s\n\n", q.status().ToString().c_str());
        return;
      }
      auto plan = toss_exec.Explain(q->collection, q->pattern);
      std::printf("%s\n",
                  plan.ok() ? plan->c_str()
                            : plan.status().ToString().c_str());
      return;
    }
    Execute(tax_exec, "TAX ", text);
    Execute(toss_exec, "TOSS", text);
    std::printf("\n");
  };

  if (interactive) {
    std::printf("tossql> enter TOSS-QL statements, '\\q' to quit.\n");
    std::string line;
    while (std::getline(std::cin, line)) {
      if (line == "\\q") break;
      if (line.empty()) continue;
      run_both(line);
    }
    return 0;
  }

  // --- Canned demo ------------------------------------------------------------
  const std::string author =
      world.PersonById(world.papers[0].authors[0]).CanonicalName();
  run_both(
      "SELECT $1 FROM dblp MATCH $1/$2 WHERE "
      "$1.tag = \"inproceedings\" & $2.tag = \"author\" & "
      "$2.content ~ \"" + author + "\"");
  run_both(
      "PROJECT $2 FROM dblp MATCH $1/$2, $1/$3 WHERE "
      "$1.tag = \"inproceedings\" & $2.tag = \"title\" & "
      "$3.tag = \"booktitle\" & $3.content isa \"database conference\"");
  run_both(
      "JOIN dblp, sigmod MATCH $1/$2, $2/$3, $1//$4, $4/$5 "
      "WHERE $1.tag = \"tax_prod_root\" & $2.tag = \"inproceedings\" & "
      "$3.tag = \"title\" & $4.tag = \"article\" & $5.tag = \"title\" & "
      "$3.content ~ $5.content SELECT $3, $5");
  run_both(
      "SELECT $1 FROM dblp MATCH $1/$2 WHERE "
      "$1.tag = \"inproceedings\" & $2.tag = \"booktitle\" GROUP BY $2");
  run_both(
      "explain SELECT $1 FROM dblp MATCH $1/$2 WHERE "
      "$1.tag = \"inproceedings\" & $2.tag = \"author\" & "
      "$2.content ~ \"" + author + "\"");
  // Range predicates push down to the store's B+-tree numeric index, and
  // parenthesized queries chain with UNION / INTERSECT / EXCEPT.
  run_both(
      "(SELECT $1 FROM dblp MATCH $1/$2 WHERE "
      "$1.tag = \"inproceedings\" & $2.tag = \"year\" & "
      "$2.content >= \"1999\" & $2.content <= \"2000\") INTERSECT "
      "(SELECT $1 FROM dblp MATCH $1/$2 WHERE "
      "$1.tag = \"inproceedings\" & $2.tag = \"booktitle\" & "
      "$2.content isa \"database conference\")");
  return 0;
}
