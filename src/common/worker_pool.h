// A reusable fixed-size worker pool for data-parallel loops.
//
// The executor's operators fan per-document work out over a shared pool
// instead of spawning a fresh std::thread batch per query: threads are
// created once and parked on a condition variable between jobs, so the
// per-query cost is one notify instead of N thread creations.
//
// Work distribution is a work-stealing cursor: ParallelFor publishes the
// half-open index range [0, n) and every worker repeatedly claims the next
// unclaimed index with an atomic fetch-add, so fast workers automatically
// steal the tail of the range from slow ones. The first task returning a
// non-OK Status raises a shared abort flag; workers re-check it before
// claiming another index, so remaining work is dropped promptly and the
// first error becomes ParallelFor's return value.

#ifndef TOSS_COMMON_WORKER_POOL_H_
#define TOSS_COMMON_WORKER_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "common/status.h"

namespace toss {

class WorkerPool {
 public:
  /// Starts `threads` workers (clamped to >= 1). Threads persist until
  /// destruction.
  explicit WorkerPool(size_t threads);

  /// Joins all workers. Must not be called while ParallelFor is running.
  ~WorkerPool();

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  size_t thread_count() const { return threads_.size(); }

  /// Runs fn(0) .. fn(n-1) across the pool and blocks until every claimed
  /// task finished. On the first non-OK return the remaining unclaimed
  /// indexes are abandoned and that first error is returned; with several
  /// concurrent failures the earliest *observed* one wins. A task that
  /// throws is treated as returning Internal -- the exception never
  /// escapes a worker thread and the pool stays usable for later batches.
  /// Not re-entrant: one job at a time per pool (callers serialize).
  Status ParallelFor(size_t n, const std::function<Status(size_t)>& fn);

 private:
  void WorkerMain();

  std::vector<std::thread> threads_;

  std::mutex mu_;
  std::condition_variable work_cv_;   ///< signals a new job or shutdown
  std::condition_variable done_cv_;   ///< signals all workers left a job
  uint64_t job_seq_ = 0;              ///< bumped per ParallelFor call
  size_t workers_in_job_ = 0;
  bool shutdown_ = false;

  // State of the in-flight job (valid while workers_in_job_ > 0).
  const std::function<Status(size_t)>* fn_ = nullptr;
  size_t n_ = 0;
  std::atomic<size_t> cursor_{0};
  std::atomic<bool> abort_{false};
  Status first_error_;
};

/// Process-wide pool for offline/build-path loops (SEA's pairwise distance
/// scan, bulk loading), lazily created at hardware concurrency and never
/// destroyed (its threads park between jobs). Query execution keeps its own
/// pool (QueryExecutor::SetParallelism); this one is for everything that
/// runs before queries do. Submit work through SharedParallelFor, which
/// serializes concurrent callers -- ParallelFor itself is single-job.
WorkerPool& SharedWorkerPool();

/// ParallelFor on the shared pool, safe to call from multiple threads
/// (jobs queue on an internal mutex). Must not be called from inside a
/// task already running on the shared pool (it would deadlock).
Status SharedParallelFor(size_t n, const std::function<Status(size_t)>& fn);

}  // namespace toss

#endif  // TOSS_COMMON_WORKER_POOL_H_
