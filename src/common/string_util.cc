#include "common/string_util.h"

#include <cctype>
#include <cerrno>
#include <cstdlib>

namespace toss {

std::string ToLower(std::string_view s) {
  std::string out(s);
  for (char& c : out) {
    c = static_cast<char>(
        std::tolower(static_cast<unsigned char>(c)));
  }
  return out;
}

std::string_view Trim(std::string_view s) {
  size_t b = 0;
  size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

std::vector<std::string> SplitAny(std::string_view s,
                                  std::string_view delims) {
  std::vector<std::string> out;
  size_t start = 0;
  for (size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || delims.find(s[i]) != std::string_view::npos) {
      if (i > start) out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::vector<std::string> SplitWhitespace(std::string_view s) {
  return SplitAny(s, " \t\r\n\f\v");
}

std::string Join(const std::vector<std::string>& parts,
                 std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

bool Contains(std::string_view haystack, std::string_view needle) {
  return haystack.find(needle) != std::string_view::npos;
}

bool EqualsIgnoreCase(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

bool ContainsIgnoreCase(std::string_view haystack, std::string_view needle) {
  if (needle.empty()) return true;
  if (needle.size() > haystack.size()) return false;
  for (size_t i = 0; i + needle.size() <= haystack.size(); ++i) {
    if (EqualsIgnoreCase(haystack.substr(i, needle.size()), needle)) {
      return true;
    }
  }
  return false;
}

std::vector<std::string> TokenizeWords(std::string_view s) {
  std::vector<std::string> out;
  std::string cur;
  for (char ch : s) {
    if (std::isalnum(static_cast<unsigned char>(ch))) {
      cur += static_cast<char>(
          std::tolower(static_cast<unsigned char>(ch)));
    } else if (!cur.empty()) {
      out.push_back(cur);
      cur.clear();
    }
  }
  if (!cur.empty()) out.push_back(cur);
  return out;
}

bool ParseInt(std::string_view s, long long* out) {
  s = Trim(s);
  if (s.empty()) return false;
  std::string buf(s);
  errno = 0;
  char* end = nullptr;
  long long v = std::strtoll(buf.c_str(), &end, 10);
  if (errno == ERANGE || end != buf.c_str() + buf.size()) return false;
  *out = v;
  return true;
}

bool ParseDouble(std::string_view s, double* out) {
  s = Trim(s);
  if (s.empty()) return false;
  std::string buf(s);
  errno = 0;
  char* end = nullptr;
  double v = std::strtod(buf.c_str(), &end);
  if (errno == ERANGE || end != buf.c_str() + buf.size()) return false;
  *out = v;
  return true;
}

std::optional<int> CompareScalar(std::string_view x, std::string_view y) {
  long long ix, iy;
  bool x_int = ParseInt(x, &ix);
  bool y_int = ParseInt(y, &iy);
  if (x_int && y_int) {
    return ix < iy ? -1 : (ix > iy ? 1 : 0);
  }
  if (x_int != y_int) return std::nullopt;
  double dx, dy;
  bool x_dbl = ParseDouble(x, &dx);
  bool y_dbl = ParseDouble(y, &dy);
  if (x_dbl && y_dbl) {
    return dx < dy ? -1 : (dx > dy ? 1 : 0);
  }
  if (x_dbl != y_dbl) return std::nullopt;
  int cmp = std::string_view(x).compare(y);
  return cmp < 0 ? -1 : (cmp > 0 ? 1 : 0);
}

bool GlobMatch(std::string_view pattern, std::string_view s) {
  // Iterative two-pointer matcher with backtracking to the last '*'.
  size_t p = 0, i = 0;
  size_t star = std::string_view::npos, mark = 0;
  while (i < s.size()) {
    if (p < pattern.size() && pattern[p] == '*') {
      star = p++;
      mark = i;
    } else if (p < pattern.size() && pattern[p] == s[i]) {
      ++p;
      ++i;
    } else if (star != std::string_view::npos) {
      p = star + 1;
      i = ++mark;
    } else {
      return false;
    }
  }
  while (p < pattern.size() && pattern[p] == '*') ++p;
  return p == pattern.size();
}

}  // namespace toss
