// Process-wide term interner: an append-only dictionary mapping term text
// to a dense u32 SymbolId and back.
//
// Why: the query layers (condition evaluation, embedding tag matching, the
// twig-join value merge, SEO term lookups) compare the same small set of
// tag/content strings over and over. Interning each distinct term once
// turns those comparisons into integer compares: equal ids always mean
// equal text, and for terms without glob wildcards unequal ids mean
// unequal text (equality in TAX/TOSS is string equality plus '*' globbing,
// never numeric coercion — see tax/tax_semantics.cc CompareValues).
//
// Concurrency contract:
//   * Intern() / Find() may be called from any thread (sharded mutexes).
//   * Text() / HasStar() / size() are lock-free: id -> entry resolution
//     reads only atomically published chunk pointers, and the backing
//     strings are immutable once their id has been returned by Intern().
//     Readers holding a valid SymbolId never block or race appenders
//     (exercised under TSan in tests/interner_test.cc).
//   * Ids are dense, start at 0, and are never reused or invalidated.
//
// The dictionary is process-wide (Global()), not per-Database: DataTree
// decoding is a static path shared by every store and by trees built in
// tests. Databases persist their term set per snapshot generation purely
// as a warm-start (store/snapshot.h "symbols" section); correctness never
// depends on persisted ids because decode re-interns from text.

#ifndef TOSS_COMMON_INTERNER_H_
#define TOSS_COMMON_INTERNER_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>

namespace toss {

using SymbolId = uint32_t;
inline constexpr SymbolId kInvalidSymbol = 0xFFFFFFFFu;

/// Global kill-switch for every symbol-id comparison fast path (default
/// on). The equivalence property tests run each operator with the fast
/// paths off and assert byte-identical answers; not intended for
/// concurrent flipping.
void SetSymbolFastPaths(bool enabled);
bool SymbolFastPathsEnabled();

class Interner {
 public:
  /// The process-wide dictionary.
  static Interner& Global();

  Interner() = default;
  Interner(const Interner&) = delete;
  Interner& operator=(const Interner&) = delete;
  ~Interner();

  /// Returns the id of `text`, appending it on first sight. Thread-safe.
  /// Returns kInvalidSymbol only when the dictionary is full (2^26 terms);
  /// callers must treat that as "no id available", never as an error.
  SymbolId Intern(std::string_view text);

  /// Non-inserting lookup. Empty when `text` has never been interned --
  /// note that a term may be interned by a later caller, so "absent now"
  /// must not be cached as "unequal to everything forever".
  std::optional<SymbolId> Find(std::string_view text) const;

  /// The text of `id`. Lock-free; `id` must have been returned by Intern().
  std::string_view Text(SymbolId id) const { return Entry(id).text; }

  /// True when the text of `id` contains a '*' glob wildcard. Lock-free.
  /// Equality fast paths need this: two distinct star-free terms are
  /// provably unequal, while terms with '*' must go through GlobMatch.
  bool HasStar(SymbolId id) const { return Entry(id).has_star; }

  /// Number of interned terms (acquire; ids [0, size()) are all valid).
  size_t size() const { return size_.load(std::memory_order_acquire); }

 private:
  struct EntryData {
    std::string text;
    bool has_star = false;
  };

  // id -> entry storage: a fixed array of atomically published chunk
  // pointers. Chunks are never moved or freed while the interner lives, so
  // readers dereference without locks. 2^13 chunks x 2^13 entries = 2^26
  // terms (~67M), far beyond any realistic dictionary.
  static constexpr size_t kChunkBits = 13;
  static constexpr size_t kChunkSize = size_t{1} << kChunkBits;
  static constexpr size_t kMaxChunks = size_t{1} << 13;
  static constexpr size_t kShards = 16;

  const EntryData& Entry(SymbolId id) const {
    return chunks_[id >> kChunkBits].load(std::memory_order_acquire)
        [id & (kChunkSize - 1)];
  }

  struct Shard {
    mutable std::mutex mu;
    // Keys view into the chunk-owned strings, which never move.
    std::unordered_map<std::string_view, SymbolId> map;
  };

  Shard& ShardFor(std::string_view text) const;

  std::atomic<EntryData*> chunks_[kMaxChunks] = {};
  std::atomic<uint32_t> size_{0};
  std::mutex append_mu_;  ///< serializes id assignment across shards
  mutable Shard shards_[kShards];
};

}  // namespace toss

#endif  // TOSS_COMMON_INTERNER_H_
