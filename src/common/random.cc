#include "common/random.h"

#include <cassert>
#include <cmath>

namespace toss {

namespace {

inline uint64_t Rotl(uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

// splitmix64: used to expand the seed into the xoshiro state.
inline uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

Random::Random(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& part : s_) part = SplitMix64(&sm);
}

uint64_t Random::Next() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Random::Uniform(uint64_t n) {
  assert(n > 0);
  // Rejection sampling to avoid modulo bias.
  const uint64_t threshold = -n % n;
  for (;;) {
    uint64_t r = Next();
    if (r >= threshold) return r % n;
  }
}

int64_t Random::UniformRange(int64_t lo, int64_t hi) {
  assert(lo <= hi);
  return lo + static_cast<int64_t>(
                  Uniform(static_cast<uint64_t>(hi - lo) + 1));
}

double Random::NextDouble() {
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

bool Random::Bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return NextDouble() < p;
}

uint64_t Random::Zipf(uint64_t n, double theta) {
  assert(n > 0);
  // Inverse-CDF sampling over the (unnormalized) Zipf mass; O(n) set-up is
  // avoided by the rejection-free approximation of Gray et al. is overkill
  // here -- generators call this with small n, so direct search is fine.
  double norm = 0.0;
  for (uint64_t i = 1; i <= n; ++i) norm += 1.0 / std::pow(double(i), theta);
  double u = NextDouble() * norm;
  double acc = 0.0;
  for (uint64_t i = 1; i <= n; ++i) {
    acc += 1.0 / std::pow(double(i), theta);
    if (u <= acc) return i - 1;
  }
  return n - 1;
}

std::string Random::AlphaString(size_t length) {
  std::string out(length, 'a');
  for (char& c : out) c = static_cast<char>('a' + Uniform(26));
  return out;
}

}  // namespace toss
