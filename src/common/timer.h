// Wall-clock timing helpers for benchmarks and the query executor's
// per-phase instrumentation.

#ifndef TOSS_COMMON_TIMER_H_
#define TOSS_COMMON_TIMER_H_

#include <chrono>
#include <cstdint>

namespace toss {

/// Monotonic stopwatch.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  /// Restarts the stopwatch.
  void Reset() { start_ = Clock::now(); }

  /// Elapsed time in nanoseconds since construction or last Reset().
  int64_t ElapsedNanos() const {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                                start_)
        .count();
  }

  /// Elapsed time in microseconds.
  int64_t ElapsedMicros() const { return ElapsedNanos() / 1000; }

  /// Elapsed time in milliseconds, at full clock resolution (sub-microsecond
  /// spans do not quantize to 0).
  double ElapsedMillis() const {
    return static_cast<double>(ElapsedNanos()) / 1e6;
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace toss

#endif  // TOSS_COMMON_TIMER_H_
