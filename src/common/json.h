// Minimal JSON document model: recursive-descent parser + writer.
//
// The observability layer emits JSON (metrics snapshots, telemetry dumps,
// slow-query-log lines) that tests and tools must read back, and the
// network edge speaks a JSON wire protocol (service/wire.h); this is the
// in-repo reader AND writer for those documents. Parse() handles the full
// JSON grammar (objects, arrays, strings with \uXXXX escapes, numbers,
// booleans, null) into a tree of JsonValue nodes; Dump() renders a tree
// back to one compact document with correct string escaping, so everything
// emitted through JsonValue round-trips through the in-repo parser by
// construction. It is a diagnostic/edge-path codec: clarity over speed,
// typed ParseError over leniency, no streaming.

#ifndef TOSS_COMMON_JSON_H_
#define TOSS_COMMON_JSON_H_

#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"

namespace toss::common {

class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  /// Parses one complete JSON document (trailing whitespace allowed,
  /// trailing garbage rejected). ParseError on malformed input.
  static Result<JsonValue> Parse(std::string_view text);

  JsonValue() = default;  ///< null

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_bool() const { return kind_ == Kind::kBool; }
  bool is_number() const { return kind_ == Kind::kNumber; }
  bool is_string() const { return kind_ == Kind::kString; }
  bool is_array() const { return kind_ == Kind::kArray; }
  bool is_object() const { return kind_ == Kind::kObject; }

  /// Typed accessors; the wrong kind returns the fallback.
  bool AsBool(bool fallback = false) const {
    return is_bool() ? bool_ : fallback;
  }
  double AsDouble(double fallback = 0.0) const {
    return is_number() ? number_ : fallback;
  }
  const std::string& AsString() const { return string_; }

  /// Object member by key, or nullptr when absent / not an object.
  const JsonValue* Get(const std::string& key) const;
  /// Array element, or nullptr when out of range / not an array.
  const JsonValue* At(size_t index) const;
  /// Object/array member count; 0 for scalars.
  size_t size() const;

  const std::vector<JsonValue>& array() const { return array_; }
  const std::map<std::string, JsonValue>& object() const { return object_; }

  // Builders (emitters and tests construct documents with these).
  static JsonValue Null() { return JsonValue(); }
  static JsonValue Bool(bool v);
  static JsonValue Number(double v);
  static JsonValue String(std::string v);
  static JsonValue Array();
  static JsonValue Object();

  /// Appends an element (the value becomes an array first if it was null).
  void Append(JsonValue element);
  /// Sets an object member (the value becomes an object first if it was
  /// null), replacing any existing member with that key.
  void Set(const std::string& key, JsonValue value);

  /// Renders this value as one compact JSON document. Strings escape `"`,
  /// `\`, and all control bytes (< 0x20, as \uXXXX); everything else is
  /// emitted verbatim, so valid UTF-8 passes through untouched. Numbers
  /// that hold an exact integer within the double-safe range print without
  /// a decimal point; object members print in key order (std::map), which
  /// makes the rendering canonical: equal trees dump to equal bytes.
  /// Guaranteed to re-Parse to an equal tree.
  std::string Dump() const;

 private:
  void DumpTo(std::string* out) const;

  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<JsonValue> array_;
  std::map<std::string, JsonValue> object_;

  friend class JsonParser;
};

}  // namespace toss::common

#endif  // TOSS_COMMON_JSON_H_
