// Minimal JSON document model + recursive-descent parser.
//
// The observability layer emits JSON (metrics snapshots, telemetry dumps,
// slow-query-log lines) that tests and tools must read back; this is the
// in-repo reader for those documents. It parses the full JSON grammar
// (objects, arrays, strings with \uXXXX escapes, numbers, booleans, null)
// into a tree of JsonValue nodes. It is a diagnostic-path parser: clarity
// over speed, typed ParseError over leniency, no streaming.

#ifndef TOSS_COMMON_JSON_H_
#define TOSS_COMMON_JSON_H_

#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"

namespace toss::common {

class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  /// Parses one complete JSON document (trailing whitespace allowed,
  /// trailing garbage rejected). ParseError on malformed input.
  static Result<JsonValue> Parse(std::string_view text);

  JsonValue() = default;  ///< null

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_bool() const { return kind_ == Kind::kBool; }
  bool is_number() const { return kind_ == Kind::kNumber; }
  bool is_string() const { return kind_ == Kind::kString; }
  bool is_array() const { return kind_ == Kind::kArray; }
  bool is_object() const { return kind_ == Kind::kObject; }

  /// Typed accessors; the wrong kind returns the fallback.
  bool AsBool(bool fallback = false) const {
    return is_bool() ? bool_ : fallback;
  }
  double AsDouble(double fallback = 0.0) const {
    return is_number() ? number_ : fallback;
  }
  const std::string& AsString() const { return string_; }

  /// Object member by key, or nullptr when absent / not an object.
  const JsonValue* Get(const std::string& key) const;
  /// Array element, or nullptr when out of range / not an array.
  const JsonValue* At(size_t index) const;
  /// Object/array member count; 0 for scalars.
  size_t size() const;

  const std::vector<JsonValue>& array() const { return array_; }
  const std::map<std::string, JsonValue>& object() const { return object_; }

  // Mutable builders (tests construct expected shapes).
  static JsonValue Null() { return JsonValue(); }
  static JsonValue Bool(bool v);
  static JsonValue Number(double v);
  static JsonValue String(std::string v);

 private:
  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<JsonValue> array_;
  std::map<std::string, JsonValue> object_;

  friend class JsonParser;
};

}  // namespace toss::common

#endif  // TOSS_COMMON_JSON_H_
