#include "common/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace toss::common {

JsonValue JsonValue::Bool(bool v) {
  JsonValue out;
  out.kind_ = Kind::kBool;
  out.bool_ = v;
  return out;
}

JsonValue JsonValue::Number(double v) {
  JsonValue out;
  out.kind_ = Kind::kNumber;
  out.number_ = v;
  return out;
}

JsonValue JsonValue::String(std::string v) {
  JsonValue out;
  out.kind_ = Kind::kString;
  out.string_ = std::move(v);
  return out;
}

JsonValue JsonValue::Array() {
  JsonValue out;
  out.kind_ = Kind::kArray;
  return out;
}

JsonValue JsonValue::Object() {
  JsonValue out;
  out.kind_ = Kind::kObject;
  return out;
}

void JsonValue::Append(JsonValue element) {
  if (kind_ != Kind::kArray) *this = Array();
  array_.push_back(std::move(element));
}

void JsonValue::Set(const std::string& key, JsonValue value) {
  if (kind_ != Kind::kObject) *this = Object();
  object_[key] = std::move(value);
}

namespace {

void DumpString(const std::string& s, std::string* out) {
  out->push_back('"');
  for (char c : s) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\b':
        *out += "\\b";
        break;
      case '\f':
        *out += "\\f";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\r':
        *out += "\\r";
        break;
      case '\t':
        *out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          *out += buf;
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

void DumpNumber(double v, std::string* out) {
  // NaN / infinity have no JSON spelling; null is the standard stand-in.
  if (!std::isfinite(v)) {
    *out += "null";
    return;
  }
  // Exact integers inside the double-safe range print without a decimal
  // point, so counters and ids stay readable and byte-stable.
  constexpr double kSafe = 9007199254740992.0;  // 2^53
  if (v == std::floor(v) && v > -kSafe && v < kSafe) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.0f", v);
    *out += buf;
    return;
  }
  // Shortest representation that round-trips a double.
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  double parsed = std::strtod(buf, nullptr);
  for (int prec = 15; prec <= 16; ++prec) {
    char shorter[32];
    std::snprintf(shorter, sizeof(shorter), "%.*g", prec, v);
    if (std::strtod(shorter, nullptr) == parsed) {
      *out += shorter;
      return;
    }
  }
  *out += buf;
}

}  // namespace

void JsonValue::DumpTo(std::string* out) const {
  switch (kind_) {
    case Kind::kNull:
      *out += "null";
      return;
    case Kind::kBool:
      *out += bool_ ? "true" : "false";
      return;
    case Kind::kNumber:
      DumpNumber(number_, out);
      return;
    case Kind::kString:
      DumpString(string_, out);
      return;
    case Kind::kArray: {
      out->push_back('[');
      bool first = true;
      for (const JsonValue& v : array_) {
        if (!first) out->push_back(',');
        first = false;
        v.DumpTo(out);
      }
      out->push_back(']');
      return;
    }
    case Kind::kObject: {
      out->push_back('{');
      bool first = true;
      for (const auto& [key, value] : object_) {
        if (!first) out->push_back(',');
        first = false;
        DumpString(key, out);
        out->push_back(':');
        value.DumpTo(out);
      }
      out->push_back('}');
      return;
    }
  }
}

std::string JsonValue::Dump() const {
  std::string out;
  DumpTo(&out);
  return out;
}

const JsonValue* JsonValue::Get(const std::string& key) const {
  if (kind_ != Kind::kObject) return nullptr;
  auto it = object_.find(key);
  return it == object_.end() ? nullptr : &it->second;
}

const JsonValue* JsonValue::At(size_t index) const {
  if (kind_ != Kind::kArray || index >= array_.size()) return nullptr;
  return &array_[index];
}

size_t JsonValue::size() const {
  switch (kind_) {
    case Kind::kArray:
      return array_.size();
    case Kind::kObject:
      return object_.size();
    default:
      return 0;
  }
}

/// One-pass recursive-descent parser over the input view. Depth-bounded so
/// hostile nesting cannot blow the stack.
class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  Result<JsonValue> Run() {
    JsonValue root;
    TOSS_RETURN_NOT_OK(ParseValue(&root, 0));
    SkipWhitespace();
    if (pos_ != text_.size()) {
      return Fail("trailing garbage after JSON document");
    }
    return root;
  }

 private:
  static constexpr int kMaxDepth = 64;

  Status Fail(const std::string& what) const {
    return Status::ParseError("json: " + what + " at offset " +
                              std::to_string(pos_));
  }

  void SkipWhitespace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  Status Expect(char c) {
    if (!Consume(c)) {
      return Fail(std::string("expected '") + c + "'");
    }
    return Status::OK();
  }

  Status ParseValue(JsonValue* out, int depth) {
    if (depth > kMaxDepth) return Fail("nesting too deep");
    SkipWhitespace();
    if (pos_ >= text_.size()) return Fail("unexpected end of input");
    switch (text_[pos_]) {
      case '{':
        return ParseObject(out, depth);
      case '[':
        return ParseArray(out, depth);
      case '"': {
        out->kind_ = JsonValue::Kind::kString;
        return ParseString(&out->string_);
      }
      case 't':
      case 'f':
        return ParseKeyword(out);
      case 'n':
        if (text_.substr(pos_, 4) == "null") {
          pos_ += 4;
          *out = JsonValue();
          return Status::OK();
        }
        return Fail("bad keyword");
      default:
        return ParseNumber(out);
    }
  }

  Status ParseKeyword(JsonValue* out) {
    if (text_.substr(pos_, 4) == "true") {
      pos_ += 4;
      *out = JsonValue::Bool(true);
      return Status::OK();
    }
    if (text_.substr(pos_, 5) == "false") {
      pos_ += 5;
      *out = JsonValue::Bool(false);
      return Status::OK();
    }
    return Fail("bad keyword");
  }

  Status ParseNumber(JsonValue* out) {
    size_t start = pos_;
    if (Consume('-')) {
    }
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) return Fail("expected a value");
    const std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    double v = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size()) return Fail("malformed number");
    *out = JsonValue::Number(v);
    return Status::OK();
  }

  Status ParseString(std::string* out) {
    TOSS_RETURN_NOT_OK(Expect('"'));
    out->clear();
    while (true) {
      if (pos_ >= text_.size()) return Fail("unterminated string");
      char c = text_[pos_++];
      if (c == '"') return Status::OK();
      if (c != '\\') {
        out->push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) return Fail("unterminated escape");
      char e = text_[pos_++];
      switch (e) {
        case '"':
          out->push_back('"');
          break;
        case '\\':
          out->push_back('\\');
          break;
        case '/':
          out->push_back('/');
          break;
        case 'b':
          out->push_back('\b');
          break;
        case 'f':
          out->push_back('\f');
          break;
        case 'n':
          out->push_back('\n');
          break;
        case 'r':
          out->push_back('\r');
          break;
        case 't':
          out->push_back('\t');
          break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return Fail("truncated \\u escape");
          unsigned int cp = 0;
          for (int i = 0; i < 4; ++i) {
            char h = text_[pos_++];
            cp <<= 4;
            if (h >= '0' && h <= '9') {
              cp |= static_cast<unsigned int>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              cp |= static_cast<unsigned int>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              cp |= static_cast<unsigned int>(h - 'A' + 10);
            } else {
              return Fail("bad \\u escape digit");
            }
          }
          // UTF-8 encode the code point (surrogate pairs unsupported; the
          // emitters in this repo only escape control bytes < 0x20).
          if (cp < 0x80) {
            out->push_back(static_cast<char>(cp));
          } else if (cp < 0x800) {
            out->push_back(static_cast<char>(0xC0 | (cp >> 6)));
            out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
          } else {
            out->push_back(static_cast<char>(0xE0 | (cp >> 12)));
            out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
            out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
          }
          break;
        }
        default:
          return Fail("unknown escape");
      }
    }
  }

  Status ParseArray(JsonValue* out, int depth) {
    TOSS_RETURN_NOT_OK(Expect('['));
    out->kind_ = JsonValue::Kind::kArray;
    SkipWhitespace();
    if (Consume(']')) return Status::OK();
    while (true) {
      JsonValue element;
      TOSS_RETURN_NOT_OK(ParseValue(&element, depth + 1));
      out->array_.push_back(std::move(element));
      SkipWhitespace();
      if (Consume(']')) return Status::OK();
      TOSS_RETURN_NOT_OK(Expect(','));
    }
  }

  Status ParseObject(JsonValue* out, int depth) {
    TOSS_RETURN_NOT_OK(Expect('{'));
    out->kind_ = JsonValue::Kind::kObject;
    SkipWhitespace();
    if (Consume('}')) return Status::OK();
    while (true) {
      SkipWhitespace();
      std::string key;
      TOSS_RETURN_NOT_OK(ParseString(&key));
      SkipWhitespace();
      TOSS_RETURN_NOT_OK(Expect(':'));
      JsonValue value;
      TOSS_RETURN_NOT_OK(ParseValue(&value, depth + 1));
      out->object_[std::move(key)] = std::move(value);
      SkipWhitespace();
      if (Consume('}')) return Status::OK();
      TOSS_RETURN_NOT_OK(Expect(','));
    }
  }

  std::string_view text_;
  size_t pos_ = 0;
};

Result<JsonValue> JsonValue::Parse(std::string_view text) {
  return JsonParser(text).Run();
}

}  // namespace toss::common
