#include "common/interner.h"

#include <functional>

namespace toss {

namespace {
std::atomic<bool> g_symbol_fast_paths{true};
}  // namespace

void SetSymbolFastPaths(bool enabled) {
  g_symbol_fast_paths.store(enabled, std::memory_order_relaxed);
}

bool SymbolFastPathsEnabled() {
  return g_symbol_fast_paths.load(std::memory_order_relaxed);
}

Interner& Interner::Global() {
  static Interner* instance = new Interner();  // never destroyed
  return *instance;
}

Interner::~Interner() {
  for (auto& chunk : chunks_) {
    delete[] chunk.load(std::memory_order_relaxed);
  }
}

Interner::Shard& Interner::ShardFor(std::string_view text) const {
  return shards_[std::hash<std::string_view>{}(text) % kShards];
}

SymbolId Interner::Intern(std::string_view text) {
  Shard& shard = ShardFor(text);
  std::lock_guard<std::mutex> shard_lock(shard.mu);
  auto it = shard.map.find(text);
  if (it != shard.map.end()) return it->second;

  // New term: assign the next id and publish its entry before making it
  // findable. Shard lock held throughout so a racing Intern of the same
  // text waits here and then hits the map. Lock order shard -> append is
  // uniform, so cross-shard appends cannot deadlock.
  std::lock_guard<std::mutex> append_lock(append_mu_);
  const uint32_t id = size_.load(std::memory_order_relaxed);
  const size_t chunk = id >> kChunkBits;
  if (chunk >= kMaxChunks) return kInvalidSymbol;  // dictionary full
  EntryData* entries = chunks_[chunk].load(std::memory_order_acquire);
  if (entries == nullptr) {
    entries = new EntryData[kChunkSize];
    chunks_[chunk].store(entries, std::memory_order_release);
  }
  EntryData& e = entries[id & (kChunkSize - 1)];
  e.text.assign(text.data(), text.size());
  e.has_star = text.find('*') != std::string_view::npos;
  size_.store(id + 1, std::memory_order_release);
  shard.map.emplace(std::string_view(e.text), id);
  return id;
}

std::optional<SymbolId> Interner::Find(std::string_view text) const {
  Shard& shard = ShardFor(text);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.map.find(text);
  if (it == shard.map.end()) return std::nullopt;
  return it->second;
}

}  // namespace toss
