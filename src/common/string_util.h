// Small string helpers shared across the TOSS libraries.

#ifndef TOSS_COMMON_STRING_UTIL_H_
#define TOSS_COMMON_STRING_UTIL_H_

#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace toss {

/// Returns `s` with ASCII letters lowercased.
std::string ToLower(std::string_view s);

/// Returns `s` with leading/trailing ASCII whitespace removed.
std::string_view Trim(std::string_view s);

/// Splits on any character in `delims`, dropping empty pieces.
std::vector<std::string> SplitAny(std::string_view s, std::string_view delims);

/// Splits on whitespace, dropping empty pieces.
std::vector<std::string> SplitWhitespace(std::string_view s);

/// Joins `parts` with `sep`.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// True if `s` starts with `prefix`.
bool StartsWith(std::string_view s, std::string_view prefix);

/// True if `s` ends with `suffix`.
bool EndsWith(std::string_view s, std::string_view suffix);

/// True if `needle` occurs in `haystack` (case sensitive).
bool Contains(std::string_view haystack, std::string_view needle);

/// Case-insensitive (ASCII) equality.
bool EqualsIgnoreCase(std::string_view a, std::string_view b);

/// Case-insensitive (ASCII) substring test.
bool ContainsIgnoreCase(std::string_view haystack, std::string_view needle);

/// Tokenizes into lowercase alphanumeric words (non-alnum characters act as
/// separators). Used by token-based similarity measures.
std::vector<std::string> TokenizeWords(std::string_view s);

/// Parses a decimal integer; returns false on non-numeric input or overflow.
bool ParseInt(std::string_view s, long long* out);

/// Parses a floating-point number; returns false on malformed input.
bool ParseDouble(std::string_view s, double* out);

/// Matches `s` against a glob-style pattern where '*' matches any (possibly
/// empty) substring. Used for the paper's wildcard tag conditions.
bool GlobMatch(std::string_view pattern, std::string_view s);

/// Ordering of two scalar-ish strings, used by every ordering comparison in
/// the query layers (TAX conditions, XPath-lite predicates) and mirrored by
/// the store's ordered indexes so range pushdown is sound:
///  * both parse as integers            -> integer order
///  * both parse as doubles (not ints)  -> double order
///  * both non-numeric                  -> lexicographic (byte) order
///  * mixed representations             -> incomparable (nullopt): a typed
///    ordering between e.g. "abc" and 1998 has no meaningful answer, and
///    defining it away keeps index scans exact.
/// Returns -1 / 0 / +1, or nullopt when incomparable.
std::optional<int> CompareScalar(std::string_view x, std::string_view y);

}  // namespace toss

#endif  // TOSS_COMMON_STRING_UTIL_H_
