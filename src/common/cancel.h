// CancelToken: cooperative cancellation and deadlines for long-running
// queries (DESIGN.md §11 "Service layer").
//
// A token is owned by whoever can abort the work (typically
// service::TossService, which stacks one per request) and is observed --
// through a `const CancelToken*` -- by the code doing the work: the query
// executor checks it between phases and once per document inside the eval
// fan-out loops. Checking is cheap (one relaxed atomic load, plus one
// steady_clock read when a deadline is set), so per-document granularity
// costs nothing measurable next to tree evaluation.
//
// Tokens chain: a token constructed with a parent reports the parent's
// cancellation too, so a service-made deadline token can wrap a
// caller-provided cancellation token without mutating it.

#ifndef TOSS_COMMON_CANCEL_H_
#define TOSS_COMMON_CANCEL_H_

#include <atomic>
#include <chrono>

#include "common/status.h"

namespace toss {

class CancelToken {
 public:
  using Clock = std::chrono::steady_clock;

  /// A token that never fires on its own (cancel with Cancel()).
  CancelToken() = default;

  /// A token that fires once `deadline` passes. `parent` (optional) is
  /// checked first and must outlive this token.
  explicit CancelToken(Clock::time_point deadline,
                       const CancelToken* parent = nullptr)
      : parent_(parent), deadline_(deadline), has_deadline_(true) {}

  /// A token expiring `ms` milliseconds from now.
  static CancelToken AfterMillis(uint64_t ms,
                                 const CancelToken* parent = nullptr) {
    return CancelToken(Clock::now() + std::chrono::milliseconds(ms), parent);
  }

  CancelToken(const CancelToken&) = delete;
  CancelToken& operator=(const CancelToken&) = delete;
  CancelToken(CancelToken&& other) noexcept
      : parent_(other.parent_),
        deadline_(other.deadline_),
        has_deadline_(other.has_deadline_) {
    cancelled_.store(other.cancelled_.load(std::memory_order_relaxed),
                     std::memory_order_relaxed);
  }

  /// Flags the token; every subsequent Check() returns Cancelled. Safe to
  /// call from any thread, any number of times.
  void Cancel() { cancelled_.store(true, std::memory_order_relaxed); }

  bool has_deadline() const { return has_deadline_; }
  Clock::time_point deadline() const { return deadline_; }

  /// OK while the work may continue; Cancelled / DeadlineExceeded once it
  /// must stop. The deadline outranks a racing Cancel() only in the sense
  /// that whichever is observed first wins -- both mean "stop now".
  Status Check() const {
    if (parent_ != nullptr) {
      Status s = parent_->Check();
      if (!s.ok()) return s;
    }
    if (cancelled_.load(std::memory_order_relaxed)) {
      return Status::Cancelled("request cancelled");
    }
    if (has_deadline_ && Clock::now() >= deadline_) {
      return Status::DeadlineExceeded("request deadline passed");
    }
    return Status::OK();
  }

 private:
  const CancelToken* parent_ = nullptr;
  std::atomic<bool> cancelled_{false};
  Clock::time_point deadline_{};
  bool has_deadline_ = false;
};

/// Check() for optional tokens: null means "never cancelled".
inline Status CheckCancel(const CancelToken* token) {
  return token == nullptr ? Status::OK() : token->Check();
}

}  // namespace toss

#endif  // TOSS_COMMON_CANCEL_H_
