#include "common/worker_pool.h"

#include <algorithm>
#include <exception>
#include <string>

#include "common/timer.h"
#include "obs/metrics.h"

namespace toss {

namespace {

// Pool-wide instruments, shared by every WorkerPool instance. Per-instance
// registration would leak one metric name per short-lived test pool; the
// interesting consumers (executor, SEA) all go through long-lived pools.
struct PoolMetrics {
  obs::Counter& jobs = obs::Metrics().GetCounter("common.worker_pool.jobs");
  obs::Counter& tasks = obs::Metrics().GetCounter("common.worker_pool.tasks");
  obs::Counter& busy_ns =
      obs::Metrics().GetCounter("common.worker_pool.busy_ns");
  obs::Gauge& queue_depth =
      obs::Metrics().GetGauge("common.worker_pool.queue_depth");
  obs::Histogram& task_ns =
      obs::Metrics().GetHistogram("common.worker_pool.task_latency_ns");
  obs::Histogram& job_ns =
      obs::Metrics().GetHistogram("common.worker_pool.job_latency_ns");
};

PoolMetrics& Instruments() {
  static PoolMetrics* m = new PoolMetrics();
  return *m;
}

}  // namespace

WorkerPool::WorkerPool(size_t threads) {
  size_t count = std::max<size_t>(1, threads);
  threads_.reserve(count);
  for (size_t t = 0; t < count; ++t) {
    threads_.emplace_back([this] { WorkerMain(); });
  }
}

WorkerPool::~WorkerPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (auto& t : threads_) t.join();
}

Status WorkerPool::ParallelFor(size_t n,
                               const std::function<Status(size_t)>& fn) {
  if (n == 0) return Status::OK();
  PoolMetrics& m = Instruments();
  m.jobs.Increment();
  m.queue_depth.Set(static_cast<int64_t>(n));
  Timer job_timer;
  std::unique_lock<std::mutex> lock(mu_);
  fn_ = &fn;
  n_ = n;
  cursor_.store(0, std::memory_order_relaxed);
  abort_.store(false, std::memory_order_relaxed);
  first_error_ = Status::OK();
  workers_in_job_ = threads_.size();
  ++job_seq_;
  work_cv_.notify_all();
  done_cv_.wait(lock, [this] { return workers_in_job_ == 0; });
  fn_ = nullptr;
  m.queue_depth.Set(0);
  m.job_ns.Record(static_cast<uint64_t>(job_timer.ElapsedNanos()));
  return first_error_;
}

void WorkerPool::WorkerMain() {
  uint64_t seen_seq = 0;
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock,
                    [&] { return shutdown_ || job_seq_ != seen_seq; });
      if (shutdown_) return;
      seen_seq = job_seq_;
    }
    // Drain the cursor until the range is exhausted or a task failed.
    // Counter deltas are tallied locally and flushed once per job so the
    // claim loop stays one fetch_add + one histogram record per task.
    PoolMetrics& m = Instruments();
    uint64_t local_tasks = 0;
    uint64_t local_busy_ns = 0;
    while (!abort_.load(std::memory_order_acquire)) {
      size_t i = cursor_.fetch_add(1, std::memory_order_relaxed);
      if (i >= n_) break;
      // A task that throws must not escape WorkerMain (std::terminate) or
      // leave the job counter unbalanced (deadlocked ParallelFor): convert
      // the exception into the batch's first error and keep the worker.
      Timer task_timer;
      Status st;
      try {
        st = (*fn_)(i);
      } catch (const std::exception& e) {
        st = Status::Internal(std::string("task threw: ") + e.what());
      } catch (...) {
        st = Status::Internal("task threw a non-std::exception");
      }
      const uint64_t task_ns = static_cast<uint64_t>(task_timer.ElapsedNanos());
      m.task_ns.Record(task_ns);
      local_busy_ns += task_ns;
      ++local_tasks;
      if (!st.ok()) {
        std::lock_guard<std::mutex> lock(mu_);
        // Keep the earliest observed error; later failures lose the race.
        if (!abort_.exchange(true, std::memory_order_acq_rel)) {
          first_error_ = std::move(st);
        }
      }
    }
    if (local_tasks > 0) {
      m.tasks.Add(local_tasks);
      m.busy_ns.Add(local_busy_ns);
    }
    bool last = false;
    {
      std::lock_guard<std::mutex> lock(mu_);
      last = (--workers_in_job_ == 0);
    }
    if (last) done_cv_.notify_all();
  }
}

WorkerPool& SharedWorkerPool() {
  // Leaked deliberately: joining parked threads during static destruction
  // is a shutdown-order hazard, and the OS reclaims them at exit anyway.
  static WorkerPool* pool = [] {
    auto* p = new WorkerPool(std::max(1u, std::thread::hardware_concurrency()));
    obs::Metrics()
        .GetGauge("common.worker_pool.threads")
        .Set(static_cast<int64_t>(p->thread_count()));
    return p;
  }();
  return *pool;
}

Status SharedParallelFor(size_t n,
                         const std::function<Status(size_t)>& fn) {
  static std::mutex job_mu;  // ParallelFor runs one job at a time
  std::lock_guard<std::mutex> lock(job_mu);
  return SharedWorkerPool().ParallelFor(n, fn);
}

}  // namespace toss
