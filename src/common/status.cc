#include "common/status.h"

namespace toss {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kParseError:
      return "ParseError";
    case StatusCode::kTypeError:
      return "TypeError";
    case StatusCode::kInconsistent:
      return "Inconsistent";
    case StatusCode::kIOError:
      return "IOError";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kUnsupported:
      return "Unsupported";
    case StatusCode::kUnavailable:
      return "Unavailable";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
    case StatusCode::kCancelled:
      return "Cancelled";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeName(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace toss
