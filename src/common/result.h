// Result<T>: value-or-Status, in the style of arrow::Result / absl::StatusOr.

#ifndef TOSS_COMMON_RESULT_H_
#define TOSS_COMMON_RESULT_H_

#include <cassert>
#include <optional>
#include <utility>

#include "common/status.h"

namespace toss {

/// Holds either a value of type T or a non-OK Status explaining why the value
/// could not be produced.
///
/// Accessing the value of an errored Result is a programming error (checked
/// with assert in debug builds).
template <typename T>
class Result {
 public:
  /// Implicit construction from a value (success).
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Implicit construction from a non-OK status (failure).
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok() && "Result constructed from OK status without value");
  }

  bool ok() const { return status_.ok(); }

  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the value or `fallback` when errored. The rvalue overload
  /// moves the value out, so `ComputeThing().value_or(default)` never
  /// copies; the lvalue overload leaves the Result intact.
  T value_or(T fallback) const& {
    return ok() ? *value_ : std::move(fallback);
  }
  T value_or(T fallback) && {
    return ok() ? std::move(*value_) : std::move(fallback);
  }

 private:
  Status status_;  // OK iff value_ is engaged
  std::optional<T> value_;
};

/// Unwraps a Result into `lhs`, propagating errors. Usage:
///   TOSS_ASSIGN_OR_RETURN(auto doc, ParseXml(text));
#define TOSS_ASSIGN_OR_RETURN_IMPL(tmp, lhs, expr) \
  auto tmp = (expr);                               \
  if (!tmp.ok()) return tmp.status();              \
  lhs = std::move(tmp).value()

#define TOSS_ASSIGN_OR_RETURN(lhs, expr) \
  TOSS_ASSIGN_OR_RETURN_IMPL(            \
      TOSS_CONCAT_(_result_, __LINE__), lhs, expr)

#define TOSS_CONCAT_INNER_(a, b) a##b
#define TOSS_CONCAT_(a, b) TOSS_CONCAT_INNER_(a, b)

}  // namespace toss

#endif  // TOSS_COMMON_RESULT_H_
