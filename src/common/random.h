// Deterministic pseudo-random generator for workload generation and tests.

#ifndef TOSS_COMMON_RANDOM_H_
#define TOSS_COMMON_RANDOM_H_

#include <cstdint>
#include <string>
#include <vector>

namespace toss {

/// xoshiro256** generator wrapped with convenience sampling helpers.
///
/// All data/workload generators take a Random seeded explicitly so every
/// benchmark and test run is reproducible.
class Random {
 public:
  explicit Random(uint64_t seed);

  /// Uniform 64-bit value.
  uint64_t Next();

  /// Uniform integer in [0, n). Requires n > 0.
  uint64_t Uniform(uint64_t n);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t UniformRange(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// True with probability p (clamped to [0,1]).
  bool Bernoulli(double p);

  /// Zipfian rank in [0, n) with exponent `theta` (higher = more skew).
  uint64_t Zipf(uint64_t n, double theta);

  /// Uniformly chosen element of `v`. Requires !v.empty().
  template <typename T>
  const T& Choice(const std::vector<T>& v) {
    return v[Uniform(v.size())];
  }

  /// Random lowercase ASCII string of the given length.
  std::string AlphaString(size_t length);

 private:
  uint64_t s_[4];
};

}  // namespace toss

#endif  // TOSS_COMMON_RANDOM_H_
