// Status: lightweight error-reporting value type, in the style of
// RocksDB's rocksdb::Status / Arrow's arrow::Status.
//
// Library code never throws across module boundaries; fallible operations
// return Status (or Result<T>, see result.h) and callers decide how to react.

#ifndef TOSS_COMMON_STATUS_H_
#define TOSS_COMMON_STATUS_H_

#include <ostream>
#include <string>
#include <utility>

namespace toss {

/// Error categories used across the TOSS libraries.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,   ///< caller passed something malformed
  kNotFound,          ///< named entity (document, collection, type, ...) absent
  kAlreadyExists,     ///< creation collided with an existing entity
  kParseError,        ///< XML / condition / query text could not be parsed
  kTypeError,         ///< ill-typed condition or missing conversion function
  kInconsistent,      ///< similarity inconsistency or unsatisfiable constraints
  kIOError,           ///< filesystem-level failure
  kInternal,          ///< invariant violation inside the library
  kUnsupported,       ///< valid request the implementation does not handle
  kUnavailable,       ///< transient failure; retrying may succeed
  kResourceExhausted, ///< admission control shed the request (queue full)
  kDeadlineExceeded,  ///< the request's deadline passed before completion
  kCancelled,         ///< the caller cancelled the request
};

/// Human-readable name of a StatusCode (e.g. "InvalidArgument").
const char* StatusCodeName(StatusCode code);

/// Result of a fallible operation: a code plus an optional message.
///
/// The OK status is represented without allocation. Statuses are cheap to
/// copy and move; an engaged message is stored in a std::string.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status TypeError(std::string msg) {
    return Status(StatusCode::kTypeError, std::move(msg));
  }
  static Status Inconsistent(std::string msg) {
    return Status(StatusCode::kInconsistent, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unsupported(std::string msg) {
    return Status(StatusCode::kUnsupported, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  bool IsInvalidArgument() const {
    return code_ == StatusCode::kInvalidArgument;
  }
  bool IsNotFound() const { return code_ == StatusCode::kNotFound; }
  bool IsAlreadyExists() const { return code_ == StatusCode::kAlreadyExists; }
  bool IsParseError() const { return code_ == StatusCode::kParseError; }
  bool IsTypeError() const { return code_ == StatusCode::kTypeError; }
  bool IsInconsistent() const { return code_ == StatusCode::kInconsistent; }
  bool IsIOError() const { return code_ == StatusCode::kIOError; }
  bool IsInternal() const { return code_ == StatusCode::kInternal; }
  bool IsUnsupported() const { return code_ == StatusCode::kUnsupported; }
  bool IsUnavailable() const { return code_ == StatusCode::kUnavailable; }
  bool IsResourceExhausted() const {
    return code_ == StatusCode::kResourceExhausted;
  }
  bool IsDeadlineExceeded() const {
    return code_ == StatusCode::kDeadlineExceeded;
  }
  bool IsCancelled() const { return code_ == StatusCode::kCancelled; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

inline std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

/// Propagates a non-OK status to the caller. Usage:
///   TOSS_RETURN_NOT_OK(DoThing());
#define TOSS_RETURN_NOT_OK(expr)             \
  do {                                       \
    ::toss::Status _st = (expr);             \
    if (!_st.ok()) return _st;               \
  } while (0)

}  // namespace toss

#endif  // TOSS_COMMON_STATUS_H_
