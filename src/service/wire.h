// The versioned JSON wire protocol: the canonical external form of
// QueryRequest / QueryResponse (DESIGN.md §16 "Network edge & wire
// protocol").
//
// Everything that crosses a process boundary -- the HTTP server in
// src/net/, the load generator in bench/net_throughput.cc, external
// clients -- speaks these documents; in-process callers keep using the
// structs directly. One wire version covers one shape of the protocol:
// /v1 documents carry `"version": 1` (optional on requests, always present
// on responses), and incompatible shape changes bump kWireVersion and the
// URL prefix together.
//
// A /v1 request names either a TOSS-QL text query or one structured
// operator:
//
//   {"text": "SELECT $1 FROM dblp MATCH $1/$2 WHERE ...",
//    "options": {"deadline_ms": 250}}
//
//   {"op": "select", "collection": "dblp",
//    "pattern": {"nodes": [{"parent": 1, "edge": "pc"},
//                          {"parent": 1, "edge": "ad"}],
//                "condition": "$1.tag = \"inproceedings\" & ..."},
//    "sl": [1],
//    "options": {"deadline_ms": 250, "collect_trace": false,
//                "parallelism": 0}}
//
// The pattern's root ($1) is implicit; `nodes` lists the remaining nodes
// in label order, so entry i declares label i+2 as a child of the named
// earlier label. Conditions travel in their parseable text form (the same
// grammar tax::ParseCondition accepts and Condition::ToString emits).
// Mutations use {"op": "insert"|"replace"|"remove", "collection", "key",
// "xml"}. Parsing is strict by default: unknown keys, wrong types,
// out-of-range labels, and fields that do not belong to the named op are
// InvalidArgument, never ignored -- a request that parses is exactly the
// request that executes.
//
// A response always carries the version, a status object, and the answer:
//
//   {"version": 1, "status": {"code": "Ok", "message": ""},
//    "trees": ["<inproceedings>...</inproceedings>"],
//    "stats": {"rewrite_ms": ..., "eval_ms": ..., ...},
//    "queue_wait_ms": 0.0, "prepared_cache_hit": false, "trace": null}
//
// Trees are canonical XML strings (xml::Write), byte-identical to what the
// in-process TossService::Run produces for the same request.

#ifndef TOSS_SERVICE_WIRE_H_
#define TOSS_SERVICE_WIRE_H_

#include <string>
#include <string_view>

#include "common/json.h"
#include "common/result.h"
#include "service/toss_service.h"

namespace toss::service::wire {

/// The protocol generation this build speaks (the "1" in /v1).
inline constexpr int kWireVersion = 1;

/// Serializes a request into its wire document. The cancel token is a
/// process-local pointer and does not travel; everything else round-trips
/// (ParseRequest(RequestToJson(r)) is `r` field for field).
common::JsonValue RequestToJson(const QueryRequest& request);

/// RequestToJson rendered as one compact JSON document.
std::string RequestJson(const QueryRequest& request);

/// Parses a wire document into a QueryRequest. Strict: structural problems
/// are InvalidArgument; an unparseable TOSS-QL `text` or condition string
/// is ParseError.
Result<QueryRequest> ParseRequest(const common::JsonValue& doc);

/// ParseRequest over raw bytes (JSON parse errors become ParseError).
Result<QueryRequest> ParseRequestText(std::string_view text);

/// Serializes a response. Trees are rendered to canonical XML strings; the
/// trace (when collected) is embedded as a JSON object, else null.
common::JsonValue ResponseToJson(const QueryResponse& response);

/// ResponseToJson rendered as one compact JSON document.
std::string ResponseJson(const QueryResponse& response);

}  // namespace toss::service::wire

#endif  // TOSS_SERVICE_WIRE_H_
