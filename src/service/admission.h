// Admission control for the query service: a max-inflight semaphore with a
// bounded wait queue (DESIGN.md §11 "Service layer").
//
// A request is either admitted immediately (an inflight slot is free),
// queued (bounded; FIFO by condition-variable wakeup), or shed with
// ResourceExhausted when the queue is full -- overload turns into fast,
// explicit rejections instead of unbounded latency. Queued requests give up
// with DeadlineExceeded / Cancelled when their token fires before a slot
// frees up, so a stuck queue cannot strand callers past their deadlines.
//
// Observability: `service.inflight` / `service.queue_depth` gauges,
// `service.shed` / `service.deadline_exceeded` counters, and the
// `service.queue_wait_ns` histogram (recorded for every admitted request,
// including un-queued ones -- their wait is ~0, keeping the histogram's
// population meaningful as a per-request distribution).

#ifndef TOSS_SERVICE_ADMISSION_H_
#define TOSS_SERVICE_ADMISSION_H_

#include <condition_variable>
#include <cstddef>
#include <mutex>

#include "common/cancel.h"
#include "common/status.h"

namespace toss::service {

class AdmissionController {
 public:
  /// `max_inflight` concurrent requests (clamped >= 1); up to `max_queue`
  /// more may wait (0 = shed immediately when saturated).
  AdmissionController(size_t max_inflight, size_t max_queue);

  AdmissionController(const AdmissionController&) = delete;
  AdmissionController& operator=(const AdmissionController&) = delete;

  /// Blocks until an inflight slot is acquired. Returns OK (slot held --
  /// pair with Release()), ResourceExhausted (queue full, request shed),
  /// or the token's error when `cancel` fires while queued. Null `cancel`
  /// waits indefinitely.
  Status Acquire(const CancelToken* cancel);

  /// Returns a slot acquired by Acquire.
  void Release();

  size_t inflight() const;
  size_t queued() const;

 private:
  const size_t max_inflight_;
  const size_t max_queue_;

  mutable std::mutex mu_;
  std::condition_variable slot_free_;
  size_t inflight_ = 0;
  size_t queued_ = 0;
};

}  // namespace toss::service

#endif  // TOSS_SERVICE_ADMISSION_H_
