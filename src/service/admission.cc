#include "service/admission.h"

#include <algorithm>
#include <chrono>

#include "common/timer.h"
#include "obs/metrics.h"

namespace toss::service {

namespace {

struct AdmissionMetrics {
  obs::Gauge& inflight = obs::Metrics().GetGauge("service.inflight");
  obs::Gauge& queue_depth = obs::Metrics().GetGauge("service.queue_depth");
  obs::Counter& admitted = obs::Metrics().GetCounter("service.admitted");
  obs::Counter& shed = obs::Metrics().GetCounter("service.shed");
  obs::Histogram& queue_wait_ns =
      obs::Metrics().GetHistogram("service.queue_wait_ns");
};

AdmissionMetrics& Instruments() {
  static AdmissionMetrics* m = new AdmissionMetrics();
  return *m;
}

/// Slice length for queue waits: tokens without deadlines can only fire
/// via Cancel(), which no condition variable observes, so queued waiters
/// re-check the token at this cadence.
constexpr std::chrono::milliseconds kWaitSlice(20);

}  // namespace

AdmissionController::AdmissionController(size_t max_inflight,
                                         size_t max_queue)
    : max_inflight_(std::max<size_t>(1, max_inflight)),
      max_queue_(max_queue) {}

Status AdmissionController::Acquire(const CancelToken* cancel) {
  AdmissionMetrics& m = Instruments();
  Timer wait_timer;
  std::unique_lock<std::mutex> lock(mu_);
  if (inflight_ >= max_inflight_) {
    if (queued_ >= max_queue_) {
      m.shed.Increment();
      return Status::ResourceExhausted(
          "query service saturated: " + std::to_string(inflight_) +
          " inflight, " + std::to_string(queued_) + " queued");
    }
    ++queued_;
    m.queue_depth.Set(static_cast<int64_t>(queued_));
    while (inflight_ >= max_inflight_) {
      Status s = CheckCancel(cancel);
      if (!s.ok()) {
        --queued_;
        m.queue_depth.Set(static_cast<int64_t>(queued_));
        return s;
      }
      if (cancel != nullptr && cancel->has_deadline()) {
        slot_free_.wait_until(
            lock, std::min(cancel->deadline(),
                           CancelToken::Clock::now() + kWaitSlice));
      } else if (cancel != nullptr) {
        slot_free_.wait_for(lock, kWaitSlice);
      } else {
        slot_free_.wait(lock);
      }
    }
    --queued_;
    m.queue_depth.Set(static_cast<int64_t>(queued_));
  }
  ++inflight_;
  m.inflight.Set(static_cast<int64_t>(inflight_));
  m.admitted.Increment();
  m.queue_wait_ns.Record(static_cast<uint64_t>(wait_timer.ElapsedNanos()));
  return Status::OK();
}

void AdmissionController::Release() {
  AdmissionMetrics& m = Instruments();
  {
    std::lock_guard<std::mutex> lock(mu_);
    --inflight_;
    m.inflight.Set(static_cast<int64_t>(inflight_));
  }
  slot_free_.notify_one();
}

size_t AdmissionController::inflight() const {
  std::lock_guard<std::mutex> lock(mu_);
  return inflight_;
}

size_t AdmissionController::queued() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queued_;
}

}  // namespace toss::service
