// TossService: the concurrent front door of the query engine (DESIGN.md
// §11 "Service layer & unified query API").
//
// The paper's Query Executor (Section 3, component 3) is the component a
// TOSS deployment puts behind a server; this class is that server-side
// surface. It owns the executor over a Database + SEO + TypeSystem and
// serves any number of client threads through ONE entry point:
//
//   service::TossService svc(&db, &seo, &types);
//   service::QueryResponse resp =
//       svc.Run(service::QueryRequest::Select("dblp", pattern, {1}));
//   if (resp.ok()) use(resp.trees);
//
// A QueryRequest names the algebra operator (a variant over Select /
// Project / GroupBy / Join specs) plus per-request options -- deadline_ms,
// collect_trace, parallelism, an optional external CancelToken. The
// response carries the answer trees, the per-phase ExecStats, the trace
// tree when requested, and a Status that makes overload and lateness
// explicit: ResourceExhausted when admission control shed the request,
// DeadlineExceeded / Cancelled when its token fired mid-query (stats hold
// whatever phases completed).
//
// Around the single request path sit the production pieces:
//   * admission control  -- max-inflight semaphore + bounded wait queue
//     (AdmissionController; `service.*` metrics);
//   * cooperative deadlines -- a per-request CancelToken threaded through
//     the executor's phases and per-document loops;
//   * a prepared-query cache -- phase (i) rewrites memoized by canonical
//     pattern hash, invalidated by SwapSeo.
//
// Everything multi-client comes through here; service/wire.h defines the
// versioned JSON forms of QueryRequest/QueryResponse that the HTTP edge
// (src/net/) speaks on top of this entry point.

#ifndef TOSS_SERVICE_TOSS_SERVICE_H_
#define TOSS_SERVICE_TOSS_SERVICE_H_

#include <memory>
#include <shared_mutex>
#include <string>
#include <variant>
#include <vector>

#include "common/cancel.h"
#include "core/prepared_cache.h"
#include "core/query_executor.h"
#include "obs/flight_recorder.h"
#include "obs/slow_log.h"
#include "service/admission.h"

namespace toss::service {

// --- Request ---------------------------------------------------------------

struct SelectSpec {
  std::string collection;
  tax::PatternTree pattern;
  std::vector<int> sl;
};

struct ProjectSpec {
  std::string collection;
  tax::PatternTree pattern;
  std::vector<tax::ProjectItem> pl;
};

struct GroupBySpec {
  std::string collection;
  tax::PatternTree pattern;
  int group_label = 0;
  std::vector<int> sl;
};

struct JoinSpec {
  std::string left;
  std::string right;
  tax::PatternTree pattern;
  std::vector<int> sl;
};

// Durable mutations (DESIGN.md "Write path & WAL"): served through the
// same Run front door -- admission control, deadlines, metrics -- but
// routed to Database::DurableInsert/Replace/Remove under the exclusive
// executor lock, so queries never observe a half-applied document. A
// mutation whose response is OK was fsynced into the write-ahead log
// before it became visible.

struct InsertSpec {
  std::string collection;  ///< created on first insert
  std::string key;
  std::string xml;
};

struct ReplaceSpec {
  std::string collection;
  std::string key;
  std::string xml;
};

struct RemoveSpec {
  std::string collection;
  std::string key;
};

/// One request: which operator (query or durable mutation) to run, and
/// how to run it.
struct QueryRequest {
  std::variant<SelectSpec, ProjectSpec, GroupBySpec, JoinSpec, InsertSpec,
               ReplaceSpec, RemoveSpec>
      op;

  /// Wall-clock budget from admission to answer; 0 = none. Expired
  /// requests fail with DeadlineExceeded, in the queue or mid-phase.
  uint64_t deadline_ms = 0;

  /// Record a per-phase trace tree into QueryResponse::trace (the EXPLAIN
  /// ANALYZE path; same answers, same code path).
  bool collect_trace = false;

  /// Phase (iii) fan-out width; 0 = the service's default_parallelism.
  size_t parallelism = 0;

  /// Optional caller-owned cancellation, observed alongside the deadline.
  /// Must outlive the Run call.
  const CancelToken* cancel = nullptr;

  static QueryRequest Select(std::string collection,
                             tax::PatternTree pattern, std::vector<int> sl);
  static QueryRequest Project(std::string collection, tax::PatternTree pattern,
                              std::vector<tax::ProjectItem> pl);
  static QueryRequest GroupBy(std::string collection, tax::PatternTree pattern,
                              int group_label, std::vector<int> sl);
  static QueryRequest Join(std::string left, std::string right,
                           tax::PatternTree pattern, std::vector<int> sl);
  static QueryRequest Insert(std::string collection, std::string key,
                             std::string xml);
  static QueryRequest Replace(std::string collection, std::string key,
                              std::string xml);
  static QueryRequest Remove(std::string collection, std::string key);

  /// True for Insert/Replace/Remove requests (the durable write path).
  bool IsMutation() const;

  /// "select(dblp)", "join(dblp,sigmod)", "insert(dblp)", ... (trace
  /// root / log label).
  std::string OpName() const;
};

// --- Response --------------------------------------------------------------

struct QueryResponse {
  /// OK, or why there is no (complete) answer: ResourceExhausted (shed at
  /// admission), DeadlineExceeded / Cancelled (token fired while queued or
  /// mid-phase; `stats` holds the completed phases), or any error the
  /// operator itself produced (NotFound, TypeError, ...).
  Status status;

  tax::TreeCollection trees;
  core::ExecStats stats;

  /// The trace tree when the request set collect_trace and was admitted.
  std::unique_ptr<obs::Trace> trace;

  /// True when phase (i) was served from the prepared-query cache.
  bool prepared_cache_hit = false;

  /// Time spent waiting for an inflight slot (0 when admitted directly).
  double queue_wait_ms = 0.0;

  bool ok() const { return status.ok(); }
};

// --- Service ---------------------------------------------------------------

struct ServiceOptions {
  size_t max_inflight = 4;   ///< concurrent queries (clamped >= 1)
  size_t max_queue = 16;     ///< waiters beyond that before shedding
  size_t default_parallelism = 1;  ///< per-query fan-out when unset
  size_t prepared_cache_capacity = 512;

  // --- Telemetry (DESIGN.md §15) ------------------------------------------

  /// Every Run -- including shed and deadline-expired requests -- appends
  /// one RequestRecord here. Null disables recording (benchmark ablations
  /// only; the recorder is cheap enough to stay on in production).
  obs::FlightRecorder* flight_recorder = &obs::FlightRecorder::Global();

  /// Retain the full trace of 1 in this many requests in the recorder's
  /// sampled-trace ring, even when the caller did not set collect_trace.
  /// 0 disables sampling.
  uint64_t trace_sample_every = 16;

  /// Slow-query log; null disables. When set, every admitted request
  /// collects a trace (so slow/failed entries always carry one) and
  /// requests matching the log's policy -- over its latency threshold or
  /// ending in an error -- are written as JSONL through its sink.
  obs::SlowQueryLog* slow_log = nullptr;
};

/// A SlowQueryLog sink appending "<line>\n" to `path` through `env` (the
/// pluggable, fault-injectable filesystem). `env` must outlive the sink.
/// No fsync per line: slow-log durability is best-effort by design.
obs::LineSink EnvAppendLineSink(store::Env* env, std::string path);

class TossService {
 public:
  /// `seo == nullptr` serves the TAX baseline (then `types` may be null
  /// too). All pointers must outlive the service. A service over a const
  /// Database is read-only: mutation requests fail with InvalidArgument.
  TossService(const store::Database* db, const core::Seo* seo,
              const core::TypeSystem* types, ServiceOptions options = {});

  /// Read-write service: mutation requests route to `db`'s durable write
  /// path (`db` should come from Database::OpenDurable; otherwise they
  /// fail with InvalidArgument at dispatch).
  TossService(store::Database* db, const core::Seo* seo,
              const core::TypeSystem* types, ServiceOptions options = {});

  TossService(const TossService&) = delete;
  TossService& operator=(const TossService&) = delete;

  /// Serves one request. Safe to call from any number of threads; answers
  /// are identical to running the operator sequentially on a private
  /// executor (stress-tested in tests/service_test.cc).
  QueryResponse Run(const QueryRequest& request);

  /// Replaces the SEO the service queries through (e.g. after an offline
  /// rebuild at a new epsilon) and invalidates the prepared-query cache.
  /// Blocks until inflight queries drain; queries admitted afterwards see
  /// the new SEO. `seo != nullptr` requires a type system.
  Status SwapSeo(const core::Seo* seo);

  core::PreparedQueryCache::Stats PreparedCacheStats() const {
    return prepared_.GetStats();
  }
  size_t inflight() const { return admission_.inflight(); }
  const ServiceOptions& options() const { return options_; }

 private:
  Status Dispatch(const QueryRequest& request,
                  const core::QueryOptions& qopts, QueryResponse* resp,
                  obs::Span* parent);

  /// Serves one mutation request under the exclusive executor lock (no
  /// query runs while the in-memory state changes) and invalidates the
  /// prepared-query cache on success, SwapSeo-style. `parent` (nullable)
  /// receives the durable write path's wal_validate / wal_commit spans.
  Status ApplyMutation(const QueryRequest& request, obs::Span* parent);

  const store::Database* db_;
  store::Database* mutable_db_ = nullptr;  ///< null: read-only service
  const core::TypeSystem* types_;
  ServiceOptions options_;
  AdmissionController admission_;
  core::PreparedQueryCache prepared_;

  /// Guards executor_ swaps: Run holds it shared for the query's duration,
  /// SwapSeo exclusively.
  mutable std::shared_mutex exec_mu_;

  /// Writer-priority turnstile in front of exec_mu_. A steady query stream
  /// re-acquires the shared lock back-to-back, which can starve exclusive
  /// waiters (mutations, SwapSeo) indefinitely on reader-preferring rwlock
  /// implementations. Exclusive acquirers hold this mutex WHILE waiting
  /// for exec_mu_; queries lock/unlock it (uncontended: two atomic ops)
  /// before taking the shared lock, so new queries queue behind a waiting
  /// writer instead of perpetually renewing the read-side.
  std::mutex write_gate_;
  std::unique_ptr<core::QueryExecutor> executor_;
};

}  // namespace toss::service

#endif  // TOSS_SERVICE_TOSS_SERVICE_H_
