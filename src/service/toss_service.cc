#include "service/toss_service.h"

#include <chrono>
#include <optional>
#include <utility>

#include "common/timer.h"
#include "obs/metrics.h"

namespace toss::service {

namespace {

struct ServiceMetrics {
  obs::Counter& requests = obs::Metrics().GetCounter("service.requests");
  obs::Counter& ok = obs::Metrics().GetCounter("service.ok");
  obs::Counter& errors = obs::Metrics().GetCounter("service.errors");
  obs::Counter& deadline_exceeded =
      obs::Metrics().GetCounter("service.deadline_exceeded");
  obs::Counter& cancelled = obs::Metrics().GetCounter("service.cancelled");
  obs::Counter& seo_swaps = obs::Metrics().GetCounter("service.seo_swaps");
  obs::Counter& mutations = obs::Metrics().GetCounter("service.mutations");
  obs::Counter& mutation_errors =
      obs::Metrics().GetCounter("service.mutation_errors");
  obs::Histogram& run_ns =
      obs::Metrics().GetHistogram("service.run_latency_ns");
  obs::Histogram& mutation_ns =
      obs::Metrics().GetHistogram("service.mutation_latency_ns");
};

ServiceMetrics& Instruments() {
  static ServiceMetrics* m = new ServiceMetrics();
  return *m;
}

template <class... Ts>
struct Overloaded : Ts... {
  using Ts::operator()...;
};
template <class... Ts>
Overloaded(Ts...) -> Overloaded<Ts...>;

}  // namespace

QueryRequest QueryRequest::Select(std::string collection,
                                  tax::PatternTree pattern,
                                  std::vector<int> sl) {
  QueryRequest r;
  r.op = SelectSpec{std::move(collection), std::move(pattern), std::move(sl)};
  return r;
}

QueryRequest QueryRequest::Project(std::string collection,
                                   tax::PatternTree pattern,
                                   std::vector<tax::ProjectItem> pl) {
  QueryRequest r;
  r.op = ProjectSpec{std::move(collection), std::move(pattern), std::move(pl)};
  return r;
}

QueryRequest QueryRequest::GroupBy(std::string collection,
                                   tax::PatternTree pattern, int group_label,
                                   std::vector<int> sl) {
  QueryRequest r;
  r.op = GroupBySpec{std::move(collection), std::move(pattern), group_label,
                     std::move(sl)};
  return r;
}

QueryRequest QueryRequest::Join(std::string left, std::string right,
                                tax::PatternTree pattern,
                                std::vector<int> sl) {
  QueryRequest r;
  r.op = JoinSpec{std::move(left), std::move(right), std::move(pattern),
                  std::move(sl)};
  return r;
}

QueryRequest QueryRequest::Insert(std::string collection, std::string key,
                                  std::string xml) {
  QueryRequest r;
  r.op = InsertSpec{std::move(collection), std::move(key), std::move(xml)};
  return r;
}

QueryRequest QueryRequest::Replace(std::string collection, std::string key,
                                   std::string xml) {
  QueryRequest r;
  r.op = ReplaceSpec{std::move(collection), std::move(key), std::move(xml)};
  return r;
}

QueryRequest QueryRequest::Remove(std::string collection, std::string key) {
  QueryRequest r;
  r.op = RemoveSpec{std::move(collection), std::move(key)};
  return r;
}

bool QueryRequest::IsMutation() const {
  return std::holds_alternative<InsertSpec>(op) ||
         std::holds_alternative<ReplaceSpec>(op) ||
         std::holds_alternative<RemoveSpec>(op);
}

std::string QueryRequest::OpName() const {
  return std::visit(
      Overloaded{
          [](const SelectSpec& s) { return "select(" + s.collection + ")"; },
          [](const ProjectSpec& s) { return "project(" + s.collection + ")"; },
          [](const GroupBySpec& s) { return "groupby(" + s.collection + ")"; },
          [](const JoinSpec& s) {
            return "join(" + s.left + "," + s.right + ")";
          },
          [](const InsertSpec& s) { return "insert(" + s.collection + ")"; },
          [](const ReplaceSpec& s) { return "replace(" + s.collection + ")"; },
          [](const RemoveSpec& s) { return "remove(" + s.collection + ")"; },
      },
      op);
}

TossService::TossService(const store::Database* db, const core::Seo* seo,
                         const core::TypeSystem* types,
                         ServiceOptions options)
    : db_(db),
      types_(types),
      options_(options),
      admission_(options.max_inflight, options.max_queue),
      prepared_(options.prepared_cache_capacity),
      executor_(std::make_unique<core::QueryExecutor>(
          db, seo, types, options.default_parallelism)) {}

TossService::TossService(store::Database* db, const core::Seo* seo,
                         const core::TypeSystem* types, ServiceOptions options)
    : TossService(static_cast<const store::Database*>(db), seo, types,
                  options) {
  mutable_db_ = db;
}

Status TossService::Dispatch(const QueryRequest& request,
                             const core::QueryOptions& qopts,
                             QueryResponse* resp, obs::Span* parent) {
  const core::QueryExecutor& exec = *executor_;
  Result<tax::TreeCollection> r = std::visit(
      Overloaded{
          [&](const SelectSpec& s) {
            return exec.Select(s.collection, s.pattern, s.sl, qopts,
                               &resp->stats, parent);
          },
          [&](const ProjectSpec& s) {
            return exec.Project(s.collection, s.pattern, s.pl, qopts,
                                &resp->stats, parent);
          },
          [&](const GroupBySpec& s) {
            return exec.GroupBy(s.collection, s.pattern, s.group_label, s.sl,
                                qopts, &resp->stats, parent);
          },
          [&](const JoinSpec& s) {
            return exec.Join(s.left, s.right, s.pattern, s.sl, qopts,
                             &resp->stats, parent);
          },
          // Mutations never reach Dispatch -- Run routes them to
          // ApplyMutation before taking the shared executor lock.
          [&](const InsertSpec&) -> Result<tax::TreeCollection> {
            return Status::Internal("mutation dispatched as query");
          },
          [&](const ReplaceSpec&) -> Result<tax::TreeCollection> {
            return Status::Internal("mutation dispatched as query");
          },
          [&](const RemoveSpec&) -> Result<tax::TreeCollection> {
            return Status::Internal("mutation dispatched as query");
          },
      },
      request.op);
  if (!r.ok()) return r.status();
  resp->trees = std::move(r).value();
  return Status::OK();
}

obs::LineSink EnvAppendLineSink(store::Env* env, std::string path) {
  return [env, path = std::move(path)](const std::string& line) {
    return env->AppendFile(path, line + "\n").ok();
  };
}

Status TossService::ApplyMutation(const QueryRequest& request,
                                  obs::Span* parent) {
  if (mutable_db_ == nullptr) {
    return Status::InvalidArgument(
        "read-only service: construct TossService with a mutable Database "
        "to accept mutations");
  }
  // Exclusive where queries hold shared: the in-memory apply (and the
  // prepared-cache invalidation) happens with no query in flight, exactly
  // like SwapSeo. The WAL fsync happens inside DurableMutate BEFORE the
  // apply, so OK here means durable. The turnstile (held only while
  // WAITING for the exclusive lock) keeps a steady query stream from
  // starving the mutation.
  std::unique_lock<std::mutex> gate(write_gate_);
  std::unique_lock<std::shared_mutex> exec_lock(exec_mu_);
  gate.unlock();
  Status st = std::visit(
      Overloaded{
          [&](const InsertSpec& s) {
            return mutable_db_->DurableInsert(s.collection, s.key, s.xml,
                                              parent);
          },
          [&](const ReplaceSpec& s) {
            return mutable_db_->DurableReplace(s.collection, s.key, s.xml,
                                               parent);
          },
          [&](const RemoveSpec& s) {
            return mutable_db_->DurableRemove(s.collection, s.key, parent);
          },
          [&](const auto&) {
            return Status::Internal("query dispatched as mutation");
          },
      },
      request.op);
  if (st.ok()) prepared_.Clear();
  return st;
}

QueryResponse TossService::Run(const QueryRequest& request) {
  ServiceMetrics& m = Instruments();
  m.requests.Increment();
  QueryResponse resp;

  // Flight-recorder skeleton: id, wall clock, and op kind now; outcome
  // fields are filled by Finish on every return path (shed included).
  obs::FlightRecorder* recorder = options_.flight_recorder;
  obs::RequestRecord rec;
  if (recorder != nullptr) {
    rec.id = recorder->MintId();
    rec.start_unix_micros = static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::system_clock::now().time_since_epoch())
            .count());
  }
  rec.op = static_cast<uint8_t>(request.op.index());
  const bool sample_trace = recorder != nullptr &&
                            options_.trace_sample_every > 0 &&
                            rec.id % options_.trace_sample_every == 0;
  // The slow log needs a trace for every request it might end up logging,
  // which is knowable only after the fact -- so its presence turns trace
  // collection on unconditionally.
  const bool want_trace =
      request.collect_trace || sample_trace || options_.slow_log != nullptr;

  auto Finish = [&] {
    if (recorder == nullptr && options_.slow_log == nullptr) return;
    rec.queue_wait_ms = static_cast<float>(resp.queue_wait_ms);
    rec.status = static_cast<uint32_t>(resp.status.code());
    rec.candidate_docs = static_cast<uint32_t>(resp.stats.candidate_docs);
    rec.result_trees = static_cast<uint32_t>(resp.stats.result_trees);
    rec.expanded_terms = static_cast<uint32_t>(resp.stats.expanded_terms);
    rec.engine = static_cast<uint8_t>(resp.stats.join_engine);
    if (resp.prepared_cache_hit) {
      rec.flags |= obs::RequestRecord::kPreparedCacheHit;
    }
    if (request.IsMutation()) rec.flags |= obs::RequestRecord::kMutation;
    std::string trace_json;
    if (resp.trace != nullptr) trace_json = resp.trace->Json();
    if (sample_trace && !trace_json.empty()) {
      rec.flags |= obs::RequestRecord::kTraceSampled;
    }
    if (recorder != nullptr) {
      recorder->Record(rec);
      if (rec.HasFlag(obs::RequestRecord::kTraceSampled)) {
        recorder->RetainTrace(rec.id, trace_json);
      }
    }
    if (options_.slow_log != nullptr && options_.slow_log->ShouldLog(rec)) {
      options_.slow_log->Log(rec, resp.status.ToString(), trace_json);
    }
    // Traces collected only for telemetry stay out of the response.
    if (!request.collect_trace) resp.trace.reset();
  };

  // The effective token: the caller's (optional), wrapped with the
  // request's deadline when one is set.
  const CancelToken* effective = request.cancel;
  std::optional<CancelToken> deadline_token;
  if (request.deadline_ms > 0) {
    deadline_token.emplace(
        CancelToken::Clock::now() +
            std::chrono::milliseconds(request.deadline_ms),
        request.cancel);
    effective = &*deadline_token;
  }

  Timer wait_timer;
  Status admitted = admission_.Acquire(effective);
  resp.queue_wait_ms = wait_timer.ElapsedMillis();
  if (!admitted.ok()) {
    resp.status = std::move(admitted);
    m.errors.Increment();
    if (resp.status.IsDeadlineExceeded()) m.deadline_exceeded.Increment();
    if (resp.status.IsCancelled()) m.cancelled.Increment();
    if (resp.status.code() == StatusCode::kResourceExhausted) {
      rec.flags |= obs::RequestRecord::kShed;
    }
    Finish();
    return resp;
  }

  Timer run_timer;
  if (request.IsMutation()) {
    // The deadline/cancel token is honored up to the WAL append; once the
    // record is queued for group commit the mutation runs to completion
    // (aborting after fsync would desynchronize log and memory).
    resp.status = CheckCancel(effective);
    if (resp.status.ok()) {
      if (want_trace) {
        resp.trace = std::make_unique<obs::Trace>(request.OpName());
        obs::Span root = resp.trace->RootSpan();
        resp.status = ApplyMutation(request, &root);
      } else {
        resp.status = ApplyMutation(request, nullptr);
      }
    }
    m.mutations.Increment();
    if (!resp.status.ok()) m.mutation_errors.Increment();
    m.mutation_ns.Record(static_cast<uint64_t>(run_timer.ElapsedNanos()));
  } else {
    // Shared-lock the executor so SwapSeo cannot replace it mid-query,
    // passing the turnstile first so a waiting mutation is never starved.
    { std::lock_guard<std::mutex> gate(write_gate_); }
    std::shared_lock<std::shared_mutex> exec_lock(exec_mu_);
    core::QueryOptions qopts;
    qopts.parallelism = request.parallelism > 0
                            ? request.parallelism
                            : options_.default_parallelism;
    qopts.cancel = effective;
    qopts.prepared = &prepared_;
    if (want_trace) {
      resp.trace = std::make_unique<obs::Trace>(request.OpName());
      obs::Span root = resp.trace->RootSpan();
      resp.status = Dispatch(request, qopts, &resp, &root);
    } else {
      resp.status = Dispatch(request, qopts, &resp, nullptr);
    }
  }
  admission_.Release();

  rec.exec_ms = static_cast<float>(run_timer.ElapsedMillis());
  m.run_ns.Record(static_cast<uint64_t>(run_timer.ElapsedNanos()));
  resp.prepared_cache_hit = resp.stats.prepared_cache_hits > 0;
  if (resp.status.ok()) {
    m.ok.Increment();
  } else {
    m.errors.Increment();
    if (resp.status.IsDeadlineExceeded()) m.deadline_exceeded.Increment();
    if (resp.status.IsCancelled()) m.cancelled.Increment();
  }
  Finish();
  return resp;
}

Status TossService::SwapSeo(const core::Seo* seo) {
  if (seo != nullptr && types_ == nullptr) {
    return Status::InvalidArgument(
        "SwapSeo: a type system is required to serve TOSS queries");
  }
  std::unique_lock<std::mutex> gate(write_gate_);
  std::unique_lock<std::shared_mutex> exec_lock(exec_mu_);
  gate.unlock();
  executor_ = std::make_unique<core::QueryExecutor>(
      db_, seo, types_, options_.default_parallelism);
  prepared_.Clear();
  Instruments().seo_swaps.Increment();
  return Status::OK();
}

}  // namespace toss::service
