#include "service/wire.h"

#include <cmath>
#include <set>
#include <utility>

#include "core/query_language.h"
#include "obs/flight_recorder.h"
#include "tax/condition_parser.h"
#include "xml/xml_writer.h"

namespace toss::service::wire {

using common::JsonValue;

namespace {

// --- Strict-parse helpers ----------------------------------------------------

Status Bad(const std::string& what) { return Status::InvalidArgument(what); }

/// Rejects any member of `doc` outside `allowed` -- the strictness
/// guarantee: a misspelled or misplaced field fails loudly instead of
/// silently not applying.
Status CheckKeys(const JsonValue& doc, const std::set<std::string>& allowed,
                 const std::string& where) {
  for (const auto& [key, value] : doc.object()) {
    if (allowed.find(key) == allowed.end()) {
      return Bad("wire: unknown key \"" + key + "\" in " + where);
    }
  }
  return Status::OK();
}

Result<std::string> GetString(const JsonValue& doc, const std::string& key) {
  const JsonValue* v = doc.Get(key);
  if (v == nullptr) return Bad("wire: missing \"" + key + "\"");
  if (!v->is_string()) return Bad("wire: \"" + key + "\" must be a string");
  return v->AsString();
}

Result<int> AsInt(const JsonValue& v, const std::string& what) {
  if (!v.is_number()) return Bad("wire: " + what + " must be an integer");
  const double d = v.AsDouble();
  if (d != std::floor(d) || d < -2147483648.0 || d > 2147483647.0) {
    return Bad("wire: " + what + " must be an integer");
  }
  return static_cast<int>(d);
}

Result<std::vector<int>> GetLabelList(const JsonValue& doc,
                                      const std::string& key) {
  const JsonValue* v = doc.Get(key);
  if (v == nullptr) return Bad("wire: missing \"" + key + "\"");
  if (!v->is_array()) {
    return Bad("wire: \"" + key + "\" must be an array of labels");
  }
  std::vector<int> out;
  out.reserve(v->size());
  for (const JsonValue& e : v->array()) {
    TOSS_ASSIGN_OR_RETURN(int label, AsInt(e, "\"" + key + "\" entry"));
    out.push_back(label);
  }
  return out;
}

// --- Pattern tree ------------------------------------------------------------

const char* EdgeName(tax::EdgeKind e) {
  return e == tax::EdgeKind::kAd ? "ad" : "pc";
}

JsonValue PatternToJson(const tax::PatternTree& pattern) {
  JsonValue nodes = JsonValue::Array();
  // The root is implicit; each remaining node, in creation (= label) order,
  // names its parent by label.
  for (size_t i = 1; i < pattern.node_count(); ++i) {
    const tax::PatternNode& n = pattern.node(i);
    JsonValue entry = JsonValue::Object();
    entry.Set("parent",
              JsonValue::Number(pattern.node(
                  static_cast<size_t>(n.parent)).label));
    entry.Set("edge", JsonValue::String(EdgeName(n.edge_from_parent)));
    nodes.Append(std::move(entry));
  }
  JsonValue out = JsonValue::Object();
  out.Set("nodes", std::move(nodes));
  out.Set("condition", JsonValue::String(pattern.condition().ToString()));
  return out;
}

Result<tax::PatternTree> ParsePattern(const JsonValue& doc) {
  if (!doc.is_object()) return Bad("wire: \"pattern\" must be an object");
  TOSS_RETURN_NOT_OK(CheckKeys(doc, {"nodes", "condition"}, "\"pattern\""));
  const JsonValue* nodes = doc.Get("nodes");
  if (nodes == nullptr || !nodes->is_array()) {
    return Bad("wire: \"pattern\" requires a \"nodes\" array");
  }
  tax::PatternTree pattern;
  pattern.AddRoot();  // $1
  int next_label = 2;
  for (const JsonValue& e : nodes->array()) {
    if (!e.is_object()) return Bad("wire: pattern node must be an object");
    TOSS_RETURN_NOT_OK(CheckKeys(e, {"parent", "edge"}, "pattern node"));
    const JsonValue* parent = e.Get("parent");
    if (parent == nullptr) return Bad("wire: pattern node missing \"parent\"");
    TOSS_ASSIGN_OR_RETURN(int parent_label, AsInt(*parent, "\"parent\""));
    if (parent_label < 1 || parent_label >= next_label) {
      return Bad("wire: pattern node $" + std::to_string(next_label) +
                 " names parent $" + std::to_string(parent_label) +
                 ", which is not an earlier label");
    }
    tax::EdgeKind edge = tax::EdgeKind::kPc;
    if (const JsonValue* ev = e.Get("edge"); ev != nullptr) {
      if (!ev->is_string() ||
          (ev->AsString() != "pc" && ev->AsString() != "ad")) {
        return Bad("wire: pattern \"edge\" must be \"pc\" or \"ad\"");
      }
      if (ev->AsString() == "ad") edge = tax::EdgeKind::kAd;
    }
    pattern.AddChild(parent_label, edge);
    ++next_label;
  }
  if (const JsonValue* cond = doc.Get("condition"); cond != nullptr) {
    if (!cond->is_string()) {
      return Bad("wire: pattern \"condition\" must be a string");
    }
    TOSS_ASSIGN_OR_RETURN(tax::Condition condition,
                          tax::ParseCondition(cond->AsString()));
    pattern.SetCondition(std::move(condition));
  }
  TOSS_RETURN_NOT_OK(pattern.Validate());
  return pattern;
}

// --- Options -----------------------------------------------------------------

Status ParseOptionsInto(const JsonValue& doc, QueryRequest* request) {
  if (!doc.is_object()) return Bad("wire: \"options\" must be an object");
  TOSS_RETURN_NOT_OK(CheckKeys(
      doc, {"deadline_ms", "collect_trace", "parallelism"}, "\"options\""));
  if (const JsonValue* v = doc.Get("deadline_ms"); v != nullptr) {
    TOSS_ASSIGN_OR_RETURN(int ms, AsInt(*v, "\"deadline_ms\""));
    if (ms < 0) return Bad("wire: \"deadline_ms\" must be >= 0");
    request->deadline_ms = static_cast<uint64_t>(ms);
  }
  if (const JsonValue* v = doc.Get("collect_trace"); v != nullptr) {
    if (!v->is_bool()) return Bad("wire: \"collect_trace\" must be a bool");
    request->collect_trace = v->AsBool();
  }
  if (const JsonValue* v = doc.Get("parallelism"); v != nullptr) {
    TOSS_ASSIGN_OR_RETURN(int width, AsInt(*v, "\"parallelism\""));
    if (width < 0) return Bad("wire: \"parallelism\" must be >= 0");
    request->parallelism = static_cast<size_t>(width);
  }
  return Status::OK();
}

JsonValue OptionsToJson(const QueryRequest& request) {
  JsonValue out = JsonValue::Object();
  out.Set("deadline_ms",
          JsonValue::Number(static_cast<double>(request.deadline_ms)));
  out.Set("collect_trace", JsonValue::Bool(request.collect_trace));
  out.Set("parallelism",
          JsonValue::Number(static_cast<double>(request.parallelism)));
  return out;
}

// --- Text queries ------------------------------------------------------------

QueryRequest FromParsedQuery(core::ParsedQuery parsed) {
  switch (parsed.kind) {
    case core::ParsedQuery::Kind::kProject:
      return QueryRequest::Project(std::move(parsed.collection),
                                   std::move(parsed.pattern),
                                   std::move(parsed.pl));
    case core::ParsedQuery::Kind::kJoin:
      return QueryRequest::Join(std::move(parsed.collection),
                                std::move(parsed.right_collection),
                                std::move(parsed.pattern),
                                std::move(parsed.sl));
    case core::ParsedQuery::Kind::kGroupBy:
      return QueryRequest::GroupBy(std::move(parsed.collection),
                                   std::move(parsed.pattern),
                                   parsed.group_label, std::move(parsed.sl));
    case core::ParsedQuery::Kind::kSelect:
      break;
  }
  return QueryRequest::Select(std::move(parsed.collection),
                              std::move(parsed.pattern),
                              std::move(parsed.sl));
}

// --- Per-op serializers ------------------------------------------------------

JsonValue ProjectListToJson(const std::vector<tax::ProjectItem>& pl) {
  JsonValue out = JsonValue::Array();
  for (const tax::ProjectItem& item : pl) {
    JsonValue entry = JsonValue::Object();
    entry.Set("label", JsonValue::Number(item.label));
    entry.Set("keep_subtree", JsonValue::Bool(item.keep_subtree));
    out.Append(std::move(entry));
  }
  return out;
}

JsonValue LabelsToJson(const std::vector<int>& labels) {
  JsonValue out = JsonValue::Array();
  for (int label : labels) out.Append(JsonValue::Number(label));
  return out;
}

Result<std::vector<tax::ProjectItem>> GetProjectList(const JsonValue& doc) {
  const JsonValue* v = doc.Get("pl");
  if (v == nullptr || !v->is_array()) {
    return Bad("wire: \"project\" requires a \"pl\" array");
  }
  std::vector<tax::ProjectItem> out;
  out.reserve(v->size());
  for (const JsonValue& e : v->array()) {
    if (!e.is_object()) return Bad("wire: \"pl\" entry must be an object");
    TOSS_RETURN_NOT_OK(CheckKeys(e, {"label", "keep_subtree"}, "\"pl\" entry"));
    const JsonValue* label = e.Get("label");
    if (label == nullptr) return Bad("wire: \"pl\" entry missing \"label\"");
    tax::ProjectItem item;
    TOSS_ASSIGN_OR_RETURN(item.label, AsInt(*label, "\"pl\" label"));
    if (const JsonValue* keep = e.Get("keep_subtree"); keep != nullptr) {
      if (!keep->is_bool()) return Bad("wire: \"keep_subtree\" must be a bool");
      item.keep_subtree = keep->AsBool();
    }
    out.push_back(item);
  }
  return out;
}

Result<tax::PatternTree> GetPattern(const JsonValue& doc) {
  const JsonValue* v = doc.Get("pattern");
  if (v == nullptr) return Bad("wire: missing \"pattern\"");
  return ParsePattern(*v);
}

}  // namespace

JsonValue RequestToJson(const QueryRequest& request) {
  JsonValue out = JsonValue::Object();
  out.Set("version", JsonValue::Number(kWireVersion));
  out.Set("options", OptionsToJson(request));
  struct Visitor {
    JsonValue& out;
    void operator()(const SelectSpec& s) {
      out.Set("op", JsonValue::String("select"));
      out.Set("collection", JsonValue::String(s.collection));
      out.Set("pattern", PatternToJson(s.pattern));
      out.Set("sl", LabelsToJson(s.sl));
    }
    void operator()(const ProjectSpec& s) {
      out.Set("op", JsonValue::String("project"));
      out.Set("collection", JsonValue::String(s.collection));
      out.Set("pattern", PatternToJson(s.pattern));
      out.Set("pl", ProjectListToJson(s.pl));
    }
    void operator()(const GroupBySpec& s) {
      out.Set("op", JsonValue::String("groupby"));
      out.Set("collection", JsonValue::String(s.collection));
      out.Set("pattern", PatternToJson(s.pattern));
      out.Set("group_label", JsonValue::Number(s.group_label));
      out.Set("sl", LabelsToJson(s.sl));
    }
    void operator()(const JoinSpec& s) {
      out.Set("op", JsonValue::String("join"));
      out.Set("left", JsonValue::String(s.left));
      out.Set("right", JsonValue::String(s.right));
      out.Set("pattern", PatternToJson(s.pattern));
      out.Set("sl", LabelsToJson(s.sl));
    }
    void operator()(const InsertSpec& s) {
      out.Set("op", JsonValue::String("insert"));
      out.Set("collection", JsonValue::String(s.collection));
      out.Set("key", JsonValue::String(s.key));
      out.Set("xml", JsonValue::String(s.xml));
    }
    void operator()(const ReplaceSpec& s) {
      out.Set("op", JsonValue::String("replace"));
      out.Set("collection", JsonValue::String(s.collection));
      out.Set("key", JsonValue::String(s.key));
      out.Set("xml", JsonValue::String(s.xml));
    }
    void operator()(const RemoveSpec& s) {
      out.Set("op", JsonValue::String("remove"));
      out.Set("collection", JsonValue::String(s.collection));
      out.Set("key", JsonValue::String(s.key));
    }
  };
  std::visit(Visitor{out}, request.op);
  return out;
}

std::string RequestJson(const QueryRequest& request) {
  return RequestToJson(request).Dump();
}

Result<QueryRequest> ParseRequest(const JsonValue& doc) {
  if (!doc.is_object()) return Bad("wire: request must be a JSON object");
  if (const JsonValue* v = doc.Get("version"); v != nullptr) {
    TOSS_ASSIGN_OR_RETURN(int version, AsInt(*v, "\"version\""));
    if (version != kWireVersion) {
      return Bad("wire: unsupported version " + std::to_string(version) +
                 " (this build speaks " + std::to_string(kWireVersion) + ")");
    }
  }

  // Text form: the whole operator is one TOSS-QL statement.
  if (const JsonValue* text = doc.Get("text"); text != nullptr) {
    TOSS_RETURN_NOT_OK(
        CheckKeys(doc, {"version", "text", "options"}, "text request"));
    if (!text->is_string()) return Bad("wire: \"text\" must be a string");
    TOSS_ASSIGN_OR_RETURN(core::ParsedQuery parsed,
                          core::ParseQuery(text->AsString()));
    QueryRequest request = FromParsedQuery(std::move(parsed));
    if (const JsonValue* opts = doc.Get("options"); opts != nullptr) {
      TOSS_RETURN_NOT_OK(ParseOptionsInto(*opts, &request));
    }
    return request;
  }

  TOSS_ASSIGN_OR_RETURN(std::string op, GetString(doc, "op"));
  QueryRequest request;
  std::set<std::string> allowed = {"version", "op", "options"};
  if (op == "select") {
    allowed.insert({"collection", "pattern", "sl"});
    TOSS_RETURN_NOT_OK(CheckKeys(doc, allowed, "\"select\" request"));
    TOSS_ASSIGN_OR_RETURN(std::string collection,
                          GetString(doc, "collection"));
    TOSS_ASSIGN_OR_RETURN(tax::PatternTree pattern, GetPattern(doc));
    TOSS_ASSIGN_OR_RETURN(std::vector<int> sl, GetLabelList(doc, "sl"));
    request = QueryRequest::Select(std::move(collection), std::move(pattern),
                                   std::move(sl));
  } else if (op == "project") {
    allowed.insert({"collection", "pattern", "pl"});
    TOSS_RETURN_NOT_OK(CheckKeys(doc, allowed, "\"project\" request"));
    TOSS_ASSIGN_OR_RETURN(std::string collection,
                          GetString(doc, "collection"));
    TOSS_ASSIGN_OR_RETURN(tax::PatternTree pattern, GetPattern(doc));
    TOSS_ASSIGN_OR_RETURN(std::vector<tax::ProjectItem> pl,
                          GetProjectList(doc));
    request = QueryRequest::Project(std::move(collection), std::move(pattern),
                                    std::move(pl));
  } else if (op == "groupby") {
    allowed.insert({"collection", "pattern", "group_label", "sl"});
    TOSS_RETURN_NOT_OK(CheckKeys(doc, allowed, "\"groupby\" request"));
    TOSS_ASSIGN_OR_RETURN(std::string collection,
                          GetString(doc, "collection"));
    TOSS_ASSIGN_OR_RETURN(tax::PatternTree pattern, GetPattern(doc));
    const JsonValue* label = doc.Get("group_label");
    if (label == nullptr) return Bad("wire: missing \"group_label\"");
    TOSS_ASSIGN_OR_RETURN(int group_label, AsInt(*label, "\"group_label\""));
    TOSS_ASSIGN_OR_RETURN(std::vector<int> sl, GetLabelList(doc, "sl"));
    request = QueryRequest::GroupBy(std::move(collection), std::move(pattern),
                                    group_label, std::move(sl));
  } else if (op == "join") {
    allowed.insert({"left", "right", "pattern", "sl"});
    TOSS_RETURN_NOT_OK(CheckKeys(doc, allowed, "\"join\" request"));
    TOSS_ASSIGN_OR_RETURN(std::string left, GetString(doc, "left"));
    TOSS_ASSIGN_OR_RETURN(std::string right, GetString(doc, "right"));
    TOSS_ASSIGN_OR_RETURN(tax::PatternTree pattern, GetPattern(doc));
    TOSS_ASSIGN_OR_RETURN(std::vector<int> sl, GetLabelList(doc, "sl"));
    request = QueryRequest::Join(std::move(left), std::move(right),
                                 std::move(pattern), std::move(sl));
  } else if (op == "insert" || op == "replace") {
    allowed.insert({"collection", "key", "xml"});
    TOSS_RETURN_NOT_OK(CheckKeys(doc, allowed, "\"" + op + "\" request"));
    TOSS_ASSIGN_OR_RETURN(std::string collection,
                          GetString(doc, "collection"));
    TOSS_ASSIGN_OR_RETURN(std::string key, GetString(doc, "key"));
    TOSS_ASSIGN_OR_RETURN(std::string xml, GetString(doc, "xml"));
    request = op == "insert"
                  ? QueryRequest::Insert(std::move(collection), std::move(key),
                                         std::move(xml))
                  : QueryRequest::Replace(std::move(collection),
                                          std::move(key), std::move(xml));
  } else if (op == "remove") {
    allowed.insert({"collection", "key"});
    TOSS_RETURN_NOT_OK(CheckKeys(doc, allowed, "\"remove\" request"));
    TOSS_ASSIGN_OR_RETURN(std::string collection,
                          GetString(doc, "collection"));
    TOSS_ASSIGN_OR_RETURN(std::string key, GetString(doc, "key"));
    request = QueryRequest::Remove(std::move(collection), std::move(key));
  } else {
    return Bad("wire: unknown op \"" + op + "\"");
  }
  if (const JsonValue* opts = doc.Get("options"); opts != nullptr) {
    TOSS_RETURN_NOT_OK(ParseOptionsInto(*opts, &request));
  }
  return request;
}

Result<QueryRequest> ParseRequestText(std::string_view text) {
  TOSS_ASSIGN_OR_RETURN(JsonValue doc, JsonValue::Parse(text));
  return ParseRequest(doc);
}

JsonValue ResponseToJson(const QueryResponse& response) {
  JsonValue out = JsonValue::Object();
  out.Set("version", JsonValue::Number(kWireVersion));

  JsonValue status = JsonValue::Object();
  status.Set("code", JsonValue::String(StatusCodeName(response.status.code())));
  status.Set("message", JsonValue::String(response.status.message()));
  out.Set("status", std::move(status));

  JsonValue trees = JsonValue::Array();
  for (const tax::DataTree& tree : response.trees) {
    trees.Append(JsonValue::String(xml::Write(tree.ToXml())));
  }
  out.Set("trees", std::move(trees));

  const core::ExecStats& s = response.stats;
  JsonValue stats = JsonValue::Object();
  stats.Set("rewrite_ms", JsonValue::Number(s.rewrite_ms));
  stats.Set("store_ms", JsonValue::Number(s.store_ms));
  stats.Set("eval_ms", JsonValue::Number(s.eval_ms));
  stats.Set("xpath_queries",
            JsonValue::Number(static_cast<double>(s.xpath_queries)));
  stats.Set("expanded_terms",
            JsonValue::Number(static_cast<double>(s.expanded_terms)));
  stats.Set("candidate_docs",
            JsonValue::Number(static_cast<double>(s.candidate_docs)));
  stats.Set("result_trees",
            JsonValue::Number(static_cast<double>(s.result_trees)));
  stats.Set("prepared_cache_hits",
            JsonValue::Number(static_cast<double>(s.prepared_cache_hits)));
  stats.Set("join_engine",
            JsonValue::String(obs::JoinEngineName(
                static_cast<obs::JoinEngine>(s.join_engine))));
  out.Set("stats", std::move(stats));

  out.Set("queue_wait_ms", JsonValue::Number(response.queue_wait_ms));
  out.Set("prepared_cache_hit", JsonValue::Bool(response.prepared_cache_hit));

  JsonValue trace = JsonValue::Null();
  if (response.trace != nullptr) {
    auto parsed = JsonValue::Parse(response.trace->Json());
    if (parsed.ok()) trace = std::move(parsed).value();
  }
  out.Set("trace", std::move(trace));
  return out;
}

std::string ResponseJson(const QueryResponse& response) {
  return ResponseToJson(response).Dump();
}

}  // namespace toss::service::wire
