// Slow-query log: JSONL lines for requests that crossed a latency threshold
// or ended badly (DESIGN.md §15).
//
// Policy lives here (ShouldLog); I/O is delegated to a LineSink the caller
// provides, so the service can route lines through its pluggable Env (and
// tests through FaultInjectionEnv or an in-memory vector). The sink returns
// false on write failure; failed lines are counted as dropped and never
// retried -- the slow log is diagnostics, not a ledger, and must not add
// failure modes to the request path.
//
// This layer sits below common/ in the link order (toss_common depends on
// toss_obs), so the sink deals in bool and pre-rendered strings rather than
// Status values.

#ifndef TOSS_OBS_SLOW_LOG_H_
#define TOSS_OBS_SLOW_LOG_H_

#include <cstdint>
#include <functional>
#include <mutex>
#include <string>

#include "obs/flight_recorder.h"

namespace toss::obs {

/// Writes one rendered line (no trailing newline); returns false on failure.
using LineSink = std::function<bool(const std::string&)>;

class SlowQueryLog {
 public:
  struct Options {
    /// Requests with exec_ms at or above this are logged. <= 0 logs all.
    double slow_threshold_ms = 100.0;
    /// Also log every request whose status is not OK (shed requests and
    /// deadline misses land here regardless of how fast they failed).
    bool log_errors = true;
  };

  struct Stats {
    uint64_t written = 0;
    uint64_t dropped = 0;  ///< sink returned false
  };

  SlowQueryLog(LineSink sink, Options options);

  const Options& options() const { return options_; }

  bool ShouldLog(const RequestRecord& record) const;

  /// Renders and writes one JSONL line:
  ///   {"record":{...},"status":"<status_text>","trace":{...}|null}
  /// `status_text` is the human status string (rendered by the caller, which
  /// can see common::Status); `trace_json` is an already-rendered
  /// obs::Trace JSON object, or empty for none.
  void Log(const RequestRecord& record, const std::string& status_text,
           const std::string& trace_json);

  Stats GetStats() const;

 private:
  const LineSink sink_;
  const Options options_;
  mutable std::mutex mu_;  // serializes sink writes and stats
  Stats stats_;
};

}  // namespace toss::obs

#endif  // TOSS_OBS_SLOW_LOG_H_
