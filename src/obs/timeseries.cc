#include "obs/timeseries.h"

#include <algorithm>
#include <cstdio>

namespace toss::obs {

namespace {

uint64_t NowUnixMillis() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count());
}

std::string FormatDouble(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6f", v);
  return buf;
}

void AppendJsonKey(std::string* out, const std::string& name) {
  out->push_back('"');
  for (char c : name) {
    if (c == '"' || c == '\\') out->push_back('\\');
    out->push_back(c);
  }
  *out += "\":";
}

}  // namespace

double TimeSeries::Window::RatePerSecond(const std::string& counter) const {
  auto it = counter_deltas.find(counter);
  if (it == counter_deltas.end() || duration_ms == 0) return 0.0;
  return static_cast<double>(it->second) * 1000.0 /
         static_cast<double>(duration_ms);
}

std::string TimeSeries::Window::Json() const {
  std::string out = "{\"seq\":" + std::to_string(seq) +
                    ",\"start_unix_ms\":" + std::to_string(start_unix_ms) +
                    ",\"duration_ms\":" + std::to_string(duration_ms) +
                    ",\"counters\":{";
  bool first = true;
  for (const auto& [name, delta] : counter_deltas) {
    if (!first) out += ",";
    first = false;
    AppendJsonKey(&out, name);
    out += "{\"delta\":" + std::to_string(delta) +
           ",\"rate_per_s\":" + FormatDouble(RatePerSecond(name)) + "}";
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [name, v] : gauges) {
    if (!first) out += ",";
    first = false;
    AppendJsonKey(&out, name);
    out += std::to_string(v);
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : histogram_deltas) {
    if (!first) out += ",";
    first = false;
    AppendJsonKey(&out, name);
    out += "{\"count\":" + std::to_string(h.count) +
           ",\"mean_ms\":" + FormatDouble(h.MeanMillis()) +
           ",\"p50_ms\":" + FormatDouble(h.PercentileMillis(0.5)) +
           ",\"p99_ms\":" + FormatDouble(h.PercentileMillis(0.99)) +
           ",\"buckets\":[";
    for (size_t b = 0; b < Histogram::kBuckets; ++b) {
      if (b != 0) out += ",";
      out += std::to_string(h.counts[b]);
    }
    out += "]}";
  }
  out += "}}";
  return out;
}

TimeSeries::TimeSeries(MetricsRegistry* registry, size_t capacity)
    : registry_(registry), capacity_(std::max<size_t>(capacity, 1)) {}

TimeSeries::~TimeSeries() { Stop(); }

void TimeSeries::Tick() {
  std::lock_guard<std::mutex> lock(mu_);
  AppendWindow(NowUnixMillis());
}

void TimeSeries::AppendWindow(uint64_t now_unix_ms) {
  MetricsRegistry::Snapshot snap = registry_->GetSnapshot();
  if (has_baseline_) {
    Window w;
    w.seq = next_seq_++;
    w.start_unix_ms = baseline_unix_ms_;
    w.duration_ms = now_unix_ms > baseline_unix_ms_
                        ? now_unix_ms - baseline_unix_ms_
                        : 1;
    for (const auto& [name, v] : snap.counters) {
      auto it = baseline_.counters.find(name);
      const uint64_t prev = it == baseline_.counters.end() ? 0 : it->second;
      if (v > prev) w.counter_deltas[name] = v - prev;
    }
    w.gauges = snap.gauges;
    for (const auto& [name, h] : snap.histograms) {
      auto it = baseline_.histograms.find(name);
      const Histogram::Snapshot delta =
          it == baseline_.histograms.end() ? h : h.DeltaSince(it->second);
      if (delta.count > 0) w.histogram_deltas[name] = delta;
    }
    windows_.push_back(std::move(w));
    while (windows_.size() > capacity_) windows_.pop_front();
  }
  baseline_ = std::move(snap);
  baseline_unix_ms_ = now_unix_ms;
  has_baseline_ = true;
}

void TimeSeries::Start(std::chrono::milliseconds interval) {
  std::lock_guard<std::mutex> lock(ticker_mu_);
  if (ticker_running_) return;
  interval_ = interval;
  stop_requested_ = false;
  ticker_running_ = true;
  Tick();  // establish the baseline before the first interval elapses
  ticker_ = std::thread([this] {
    std::unique_lock<std::mutex> lock(ticker_mu_);
    while (!stop_requested_) {
      ticker_cv_.wait_for(lock, interval_, [this] { return stop_requested_; });
      if (stop_requested_) break;
      lock.unlock();
      Tick();
      lock.lock();
    }
  });
}

void TimeSeries::Stop() {
  std::thread joinable;
  {
    std::lock_guard<std::mutex> lock(ticker_mu_);
    if (!ticker_running_) return;
    stop_requested_ = true;
    ticker_running_ = false;
    joinable = std::move(ticker_);
  }
  ticker_cv_.notify_all();
  if (joinable.joinable()) joinable.join();
}

bool TimeSeries::running() const {
  std::lock_guard<std::mutex> lock(ticker_mu_);
  return ticker_running_;
}

std::vector<TimeSeries::Window> TimeSeries::GetWindows(
    size_t max_windows) const {
  std::lock_guard<std::mutex> lock(mu_);
  const size_t n = std::min(max_windows, windows_.size());
  return std::vector<Window>(windows_.end() - static_cast<ptrdiff_t>(n),
                             windows_.end());
}

double TimeSeries::WindowedPercentileMillis(const std::string& histogram,
                                            double q,
                                            size_t last_n_windows) const {
  std::lock_guard<std::mutex> lock(mu_);
  Histogram::Snapshot merged;
  const size_t n = std::min(last_n_windows, windows_.size());
  for (size_t i = windows_.size() - n; i < windows_.size(); ++i) {
    auto it = windows_[i].histogram_deltas.find(histogram);
    if (it == windows_[i].histogram_deltas.end()) continue;
    merged.count += it->second.count;
    merged.sum_nanos += it->second.sum_nanos;
    for (size_t b = 0; b < Histogram::kBuckets; ++b) {
      merged.counts[b] += it->second.counts[b];
    }
  }
  return merged.PercentileMillis(q);
}

std::string TimeSeries::Json(size_t max_windows) const {
  const std::vector<Window> windows = GetWindows(max_windows);
  std::chrono::milliseconds interval;
  {
    std::lock_guard<std::mutex> lock(ticker_mu_);
    interval = interval_;
  }
  std::string out =
      "{\"interval_ms\":" + std::to_string(interval.count()) +
      ",\"windows\":[";
  for (size_t i = 0; i < windows.size(); ++i) {
    if (i != 0) out += ",";
    out += windows[i].Json();
  }
  out += "]}";
  return out;
}

void TimeSeries::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  windows_.clear();
  has_baseline_ = false;
  next_seq_ = 1;
}

}  // namespace toss::obs
