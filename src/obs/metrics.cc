#include "obs/metrics.h"

#include <algorithm>
#include <bit>
#include <thread>

namespace toss::obs {

namespace internal {

size_t ShardIndex(size_t shard_count) {
  // One hash per thread, computed once: thread ids are opaque, so mix the
  // address of a thread-local byte instead (distinct per running thread).
  static thread_local const size_t hash = [] {
    static thread_local char anchor;
    auto bits = reinterpret_cast<uintptr_t>(&anchor);
    bits ^= bits >> 17;
    bits *= 0x9E3779B97F4A7C15ull;  // Fibonacci hashing
    return static_cast<size_t>(bits >> 32);
  }();
  return hash % shard_count;
}

}  // namespace internal

uint64_t Histogram::UpperBound(size_t b) {
  if (b + 1 >= kBuckets) return UINT64_MAX;
  return uint64_t{256} << b;  // 256ns, 512ns, ... ~17s
}

void Histogram::Record(uint64_t nanos) {
  size_t bucket;
  if (nanos <= 256) {
    bucket = 0;
  } else {
    // Index of the first power-of-two bound >= nanos.
    bucket = static_cast<size_t>(std::bit_width(nanos - 1)) - 8;
    bucket = std::min(bucket, kBuckets - 1);
  }
  Shard& s = shards_[internal::ShardIndex(kShards)];
  s.counts[bucket].fetch_add(1, std::memory_order_relaxed);
  s.sum.fetch_add(nanos, std::memory_order_relaxed);
  s.n.fetch_add(1, std::memory_order_relaxed);
}

Histogram::Snapshot Histogram::GetSnapshot() const {
  Snapshot out;
  for (const Shard& s : shards_) {
    out.count += s.n.load(std::memory_order_relaxed);
    out.sum_nanos += s.sum.load(std::memory_order_relaxed);
    for (size_t b = 0; b < kBuckets; ++b) {
      out.counts[b] += s.counts[b].load(std::memory_order_relaxed);
    }
  }
  return out;
}

double Histogram::Snapshot::QuantileUpperBoundMillis(double q) const {
  if (count == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const uint64_t rank = static_cast<uint64_t>(q * static_cast<double>(count));
  uint64_t seen = 0;
  for (size_t b = 0; b < kBuckets; ++b) {
    seen += counts[b];
    if (seen > rank || (seen == count && counts[b] > 0)) {
      uint64_t bound = UpperBound(b);
      if (bound == UINT64_MAX) bound = UpperBound(kBuckets - 2) * 2;
      return static_cast<double>(bound) / 1e6;
    }
  }
  return 0.0;
}

double Histogram::Snapshot::PercentileMillis(double q) const {
  if (count == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  // Rank of the wanted sample in [0, count-1] (nearest-rank, then
  // interpolated within the winning bucket).
  const double rank = q * static_cast<double>(count - 1);
  uint64_t seen = 0;
  for (size_t b = 0; b < kBuckets; ++b) {
    if (counts[b] == 0) continue;
    const double lo_rank = static_cast<double>(seen);
    seen += counts[b];
    if (rank < static_cast<double>(seen)) {
      const double lower =
          b == 0 ? 0.0 : static_cast<double>(UpperBound(b - 1));
      double upper = static_cast<double>(UpperBound(b));
      if (UpperBound(b) == UINT64_MAX) {
        upper = 2.0 * static_cast<double>(UpperBound(kBuckets - 2));
      }
      // Position of the wanted rank inside this bucket's run of samples,
      // in (0, 1]: rank lo_rank sits just above the bucket's lower bound,
      // rank seen-1 at its upper bound.
      const double in_bucket =
          (rank - lo_rank + 1.0) / static_cast<double>(counts[b]);
      return (lower + in_bucket * (upper - lower)) / 1e6;
    }
  }
  return 0.0;
}

Histogram::Snapshot Histogram::Snapshot::DeltaSince(
    const Snapshot& earlier) const {
  Snapshot out;
  out.count = count > earlier.count ? count - earlier.count : 0;
  out.sum_nanos =
      sum_nanos > earlier.sum_nanos ? sum_nanos - earlier.sum_nanos : 0;
  for (size_t b = 0; b < kBuckets; ++b) {
    out.counts[b] =
        counts[b] > earlier.counts[b] ? counts[b] - earlier.counts[b] : 0;
  }
  return out;
}

void Histogram::Reset() {
  for (Shard& s : shards_) {
    s.sum.store(0, std::memory_order_relaxed);
    s.n.store(0, std::memory_order_relaxed);
    for (auto& c : s.counts) c.store(0, std::memory_order_relaxed);
  }
}

MetricsRegistry& MetricsRegistry::Global() {
  // Leaked: instruments are referenced from function-local statics all over
  // the codebase; destruction order at exit is not worth reasoning about.
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

Counter& MetricsRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& MetricsRegistry::GetHistogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (slot == nullptr) slot = std::make_unique<Histogram>();
  return *slot;
}

void MetricsRegistry::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, c] : counters_) c->Reset();
  for (auto& [name, g] : gauges_) g->Reset();
  for (auto& [name, h] : histograms_) h->Reset();
}

MetricsRegistry::Snapshot MetricsRegistry::GetSnapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  Snapshot out;
  for (const auto& [name, c] : counters_) out.counters[name] = c->Value();
  for (const auto& [name, g] : gauges_) out.gauges[name] = g->Value();
  for (const auto& [name, h] : histograms_) {
    out.histograms[name] = h->GetSnapshot();
  }
  return out;
}

namespace {

void AppendJsonString(std::string* out, const std::string& s) {
  out->push_back('"');
  for (char c : s) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

std::string FormatDouble(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6f", v);
  return buf;
}

}  // namespace

std::string MetricsRegistry::SnapshotJson() const {
  const Snapshot snap = GetSnapshot();
  std::string out = "{\"counters\":{";
  bool first = true;
  for (const auto& [name, v] : snap.counters) {
    if (!first) out += ",";
    first = false;
    AppendJsonString(&out, name);
    out += ":";
    out += std::to_string(v);
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [name, v] : snap.gauges) {
    if (!first) out += ",";
    first = false;
    AppendJsonString(&out, name);
    out += ":";
    out += std::to_string(v);
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : snap.histograms) {
    if (!first) out += ",";
    first = false;
    AppendJsonString(&out, name);
    out += ":{\"count\":" + std::to_string(h.count) +
           ",\"sum_ns\":" + std::to_string(h.sum_nanos) +
           ",\"mean_ms\":" + FormatDouble(h.MeanMillis()) +
           ",\"p50_ms\":" + FormatDouble(h.QuantileUpperBoundMillis(0.5)) +
           ",\"p99_ms\":" + FormatDouble(h.QuantileUpperBoundMillis(0.99)) +
           ",\"buckets\":[";
    for (size_t b = 0; b < Histogram::kBuckets; ++b) {
      if (b != 0) out += ",";
      out += std::to_string(h.counts[b]);
    }
    out += "]}";
  }
  out += "}}";
  return out;
}

void MetricsRegistry::Dump(std::FILE* out) const {
  const Snapshot snap = GetSnapshot();
  for (const auto& [name, v] : snap.counters) {
    std::fprintf(out, "counter   %-44s %llu\n", name.c_str(),
                 static_cast<unsigned long long>(v));
  }
  for (const auto& [name, v] : snap.gauges) {
    std::fprintf(out, "gauge     %-44s %lld\n", name.c_str(),
                 static_cast<long long>(v));
  }
  for (const auto& [name, h] : snap.histograms) {
    std::fprintf(out,
                 "histogram %-44s count=%llu mean=%.3fms p50<=%.3fms "
                 "p99<=%.3fms\n",
                 name.c_str(), static_cast<unsigned long long>(h.count),
                 h.MeanMillis(), h.QuantileUpperBoundMillis(0.5),
                 h.QuantileUpperBoundMillis(0.99));
  }
}

}  // namespace toss::obs
