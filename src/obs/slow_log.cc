#include "obs/slow_log.h"

#include <utility>

#include "common/json.h"
#include "obs/metrics.h"

namespace toss::obs {

SlowQueryLog::SlowQueryLog(LineSink sink, Options options)
    : sink_(std::move(sink)), options_(options) {}

bool SlowQueryLog::ShouldLog(const RequestRecord& record) const {
  if (options_.log_errors && record.status != 0) return true;
  return static_cast<double>(record.exec_ms) >= options_.slow_threshold_ms;
}

void SlowQueryLog::Log(const RequestRecord& record,
                       const std::string& status_text,
                       const std::string& trace_json) {
  static Counter& written = Metrics().GetCounter("obs.slow_log.written");
  static Counter& dropped = Metrics().GetCounter("obs.slow_log.dropped");

  // Sub-documents (record, trace) are already rendered JSON; parse them back
  // into the tree so the whole line is emitted through one writer and
  // round-trips by construction. A malformed trace degrades to null.
  common::JsonValue doc = common::JsonValue::Object();
  auto record_json = common::JsonValue::Parse(record.Json());
  doc.Set("record", record_json.ok() ? std::move(record_json).value()
                                     : common::JsonValue::Null());
  doc.Set("status", common::JsonValue::String(status_text));
  common::JsonValue trace = common::JsonValue::Null();
  if (!trace_json.empty()) {
    auto parsed = common::JsonValue::Parse(trace_json);
    if (parsed.ok()) trace = std::move(parsed).value();
  }
  doc.Set("trace", std::move(trace));
  const std::string line = doc.Dump();

  std::lock_guard<std::mutex> lock(mu_);
  if (sink_ && sink_(line)) {
    ++stats_.written;
    written.Increment();
  } else {
    ++stats_.dropped;
    dropped.Increment();
  }
}

SlowQueryLog::Stats SlowQueryLog::GetStats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace toss::obs
