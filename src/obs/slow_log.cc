#include "obs/slow_log.h"

#include <utility>

#include "obs/metrics.h"

namespace toss::obs {

namespace {

void AppendEscaped(std::string* out, const std::string& s) {
  for (char c : s) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      default:
        if (static_cast<unsigned char>(c) >= 0x20) out->push_back(c);
    }
  }
}

}  // namespace

SlowQueryLog::SlowQueryLog(LineSink sink, Options options)
    : sink_(std::move(sink)), options_(options) {}

bool SlowQueryLog::ShouldLog(const RequestRecord& record) const {
  if (options_.log_errors && record.status != 0) return true;
  return static_cast<double>(record.exec_ms) >= options_.slow_threshold_ms;
}

void SlowQueryLog::Log(const RequestRecord& record,
                       const std::string& status_text,
                       const std::string& trace_json) {
  static Counter& written = Metrics().GetCounter("obs.slow_log.written");
  static Counter& dropped = Metrics().GetCounter("obs.slow_log.dropped");

  std::string line = "{\"record\":" + record.Json() + ",\"status\":\"";
  AppendEscaped(&line, status_text);
  line += "\",\"trace\":";
  line += trace_json.empty() ? "null" : trace_json;
  line += "}";

  std::lock_guard<std::mutex> lock(mu_);
  if (sink_ && sink_(line)) {
    ++stats_.written;
    written.Increment();
  } else {
    ++stats_.dropped;
    dropped.Increment();
  }
}

SlowQueryLog::Stats SlowQueryLog::GetStats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace toss::obs
