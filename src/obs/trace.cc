#include "obs/trace.h"

#include <chrono>
#include <cstdio>

namespace toss::obs {

namespace {

uint64_t MonotonicNanos() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

void AppendJsonString(std::string* out, const std::string& s) {
  out->push_back('"');
  for (char c : s) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

void NodeJson(const TraceNode& n, std::string* out) {
  *out += "{\"name\":";
  AppendJsonString(out, n.name);
  *out += ",\"start_ns\":" + std::to_string(n.start_nanos) +
          ",\"duration_ns\":" + std::to_string(n.duration_nanos) +
          ",\"annotations\":{";
  bool first = true;
  for (const auto& [k, v] : n.annotations) {
    if (!first) *out += ",";
    first = false;
    AppendJsonString(out, k);
    *out += ":";
    AppendJsonString(out, v);
  }
  *out += "},\"children\":[";
  first = true;
  for (const auto& child : n.children) {
    if (!first) *out += ",";
    first = false;
    NodeJson(*child, out);
  }
  *out += "]}";
}

void NodePretty(const TraceNode& n, int depth, std::string* out) {
  char line[256];
  std::snprintf(line, sizeof(line), "%*s%-*s %10.3f ms", depth * 2, "",
                36 - depth * 2, n.name.c_str(), n.DurationMillis());
  *out += line;
  for (const auto& [k, v] : n.annotations) {
    *out += "  " + k + "=" + v;
  }
  *out += "\n";
  for (const auto& child : n.children) {
    NodePretty(*child, depth + 1, out);
  }
}

}  // namespace

Trace::Trace(std::string root_name) : epoch_nanos_(MonotonicNanos()) {
  root_.name = std::move(root_name);
}

uint64_t Trace::NanosSinceEpoch() const {
  return MonotonicNanos() - epoch_nanos_;
}

Span Trace::RootSpan() { return Span(this, &root_); }

double Trace::CoverageFraction() const {
  if (root_.duration_nanos == 0) return 1.0;
  uint64_t covered = 0;
  for (const auto& child : root_.children) {
    covered += child->duration_nanos;
  }
  if (covered > root_.duration_nanos) return 1.0;
  return static_cast<double>(covered) /
         static_cast<double>(root_.duration_nanos);
}

std::string Trace::Json() const {
  std::string out;
  NodeJson(root_, &out);
  return out;
}

std::string Trace::Pretty() const {
  std::string out;
  NodePretty(root_, 0, &out);
  return out;
}

Span::Span(Trace* trace, TraceNode* node) : trace_(trace), node_(node) {
  start_nanos_ = trace_->NanosSinceEpoch();
  node_->start_nanos = start_nanos_;
}

Span::Span(Span* parent, std::string name) {
  if (parent == nullptr || !parent->enabled()) return;
  trace_ = parent->trace_;
  auto child = std::make_unique<TraceNode>();
  child->name = std::move(name);
  TraceNode* raw = child.get();
  {
    std::lock_guard<std::mutex> lock(trace_->mu_);
    parent->node_->children.push_back(std::move(child));
  }
  node_ = raw;
  start_nanos_ = trace_->NanosSinceEpoch();
  node_->start_nanos = start_nanos_;
}

Span::Span(Span&& other) noexcept
    : trace_(other.trace_),
      node_(other.node_),
      start_nanos_(other.start_nanos_) {
  other.trace_ = nullptr;
  other.node_ = nullptr;
}

Span& Span::operator=(Span&& other) noexcept {
  if (this == &other) return *this;
  End();
  trace_ = other.trace_;
  node_ = other.node_;
  start_nanos_ = other.start_nanos_;
  other.trace_ = nullptr;
  other.node_ = nullptr;
  return *this;
}

void Span::End() {
  if (node_ == nullptr) return;
  if (node_->duration_nanos == 0) {
    uint64_t now = trace_->NanosSinceEpoch();
    node_->duration_nanos = now > start_nanos_ ? now - start_nanos_ : 1;
  }
  node_ = nullptr;
  trace_ = nullptr;
}

void Span::Annotate(std::string key, std::string value) {
  if (node_ == nullptr) return;
  std::lock_guard<std::mutex> lock(trace_->mu_);
  node_->annotations.emplace_back(std::move(key), std::move(value));
}

void Span::Annotate(std::string key, uint64_t value) {
  Annotate(std::move(key), std::to_string(value));
}

void Span::Annotate(std::string key, double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.3f", value);
  Annotate(std::move(key), std::string(buf));
}

}  // namespace toss::obs
