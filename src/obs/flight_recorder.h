// Request flight recorder: an always-on, fixed-memory ring of the last few
// thousand requests the service executed (DESIGN.md §15 "Telemetry &
// diagnostics").
//
// Every TossService::Run appends one 48-byte RequestRecord -- op kind,
// status, queue wait, execution time, cardinalities, which join engine ran,
// and a flags byte (prepared-cache hit, shed, mutation, trace-sampled).
// The write path is designed for the hot path: records land in
// cache-line-sized seqlock slots spread over sharded rings, so concurrent
// writers touch disjoint lines and never block, and readers (TelemetryDump,
// tests, the crash handler) snapshot without stopping writers. A torn read
// is detected by the seqlock and the slot is simply skipped.
//
// Alongside the compact records, a small mutex-guarded side ring retains
// fully rendered obs::Trace JSON for a 1-in-N sample of requests (and for
// every slow/failed request when the slow-query log is enabled), so "what
// was this request doing" is answerable after the fact without re-running.

#ifndef TOSS_OBS_FLIGHT_RECORDER_H_
#define TOSS_OBS_FLIGHT_RECORDER_H_

#include <atomic>
#include <cstdint>
#include <cstring>
#include <mutex>
#include <string>
#include <vector>

namespace toss::obs {

/// Operation kind of a recorded request. Values 0..6 deliberately match the
/// index order of the service's QueryRequest::op variant.
enum class RequestOp : uint8_t {
  kSelect = 0,
  kProject = 1,
  kGroupBy = 2,
  kJoin = 3,
  kInsert = 4,
  kReplace = 5,
  kRemove = 6,
  kUnknown = 255,
};

/// Which join engine executed (mirrors ExecStats::join_engine).
enum class JoinEngine : uint8_t { kNone = 0, kPairwise = 1, kTwig = 2 };

const char* RequestOpName(RequestOp op);
const char* JoinEngineName(JoinEngine e);

/// One completed (or shed) request, 48 bytes, trivially copyable so it can
/// be shuttled through the seqlock ring as six 64-bit words.
struct RequestRecord {
  // Bit flags for `flags`.
  static constexpr uint8_t kPreparedCacheHit = 1;  ///< plan came from cache
  static constexpr uint8_t kShed = 2;              ///< rejected at admission
  static constexpr uint8_t kTraceSampled = 4;      ///< full trace retained
  static constexpr uint8_t kMutation = 8;          ///< insert/replace/remove

  uint64_t id = 0;                 ///< recorder-minted, 0 = invalid slot
  uint64_t start_unix_micros = 0;  ///< wall-clock admission time
  float queue_wait_ms = 0.0f;      ///< admission queue wait
  float exec_ms = 0.0f;            ///< execution time (0 when shed)
  uint32_t candidate_docs = 0;
  uint32_t result_trees = 0;
  uint32_t expanded_terms = 0;
  uint32_t status = 0;  ///< numeric common::StatusCode
  uint8_t op = static_cast<uint8_t>(RequestOp::kUnknown);
  uint8_t engine = static_cast<uint8_t>(JoinEngine::kNone);
  uint8_t flags = 0;
  uint8_t reserved[5] = {};

  bool HasFlag(uint8_t f) const { return (flags & f) != 0; }

  /// The record as one compact JSON object (numeric status code; op and
  /// engine as short strings).
  std::string Json() const;
};
static_assert(sizeof(RequestRecord) == 48, "ring slots assume 6 words");
static_assert(std::is_trivially_copyable_v<RequestRecord>,
              "records are copied through atomic words");

/// A retained trace: the request's id plus its rendered obs::Trace JSON.
struct SampledTrace {
  uint64_t id = 0;
  std::string trace_json;
};

/// The recorder. Writers are wait-free except under a pathological slot
/// collision (two in-flight writes 4096 records apart on one shard), where
/// the later writer briefly spins.
class FlightRecorder {
 public:
  static constexpr size_t kShards = 4;
  static constexpr size_t kSlotsPerShard = 1024;
  static constexpr size_t kCapacity = kShards * kSlotsPerShard;
  static constexpr size_t kSampledTraceCapacity = 32;

  /// Process-wide instance (never destroyed); what the service uses unless
  /// a test injects its own.
  static FlightRecorder& Global();

  FlightRecorder() = default;
  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  /// Hands out unique, monotonically increasing request ids (from 1).
  uint64_t MintId() { return next_id_.fetch_add(1, std::memory_order_relaxed); }

  /// Appends `rec` (rec.id must be nonzero). Overwrites the oldest record
  /// in the writer's shard once the ring wraps.
  void Record(const RequestRecord& rec);

  /// Retains a rendered trace for request `id`, evicting the oldest.
  void RetainTrace(uint64_t id, std::string trace_json);

  /// The newest consistent records across all shards, ascending by id, at
  /// most `max_records` of them. Lock-free with respect to writers.
  std::vector<RequestRecord> SnapshotRecords(size_t max_records = kCapacity)
      const;

  /// The retained traces, oldest first.
  std::vector<SampledTrace> SnapshotTraces() const;

  /// Total records ever appended (including overwritten ones).
  uint64_t TotalRecorded() const {
    return total_.load(std::memory_order_relaxed);
  }

  /// Forgets everything; ids keep increasing. For tests.
  void Reset();

  /// {"records":[...],"sampled_traces":[{"id":..,"trace":{...}},...]} with
  /// records ascending by id, capped at `max_records`.
  std::string Json(size_t max_records = 128) const;

 private:
  // One seqlock-protected record. seq even = stable, odd = write in
  // progress; 0 means never written. The payload lives in relaxed atomic
  // words so concurrent access is data-race-free (TSan-clean) by
  // construction; the seq protocol makes it *consistent*.
  struct alignas(64) Slot {
    std::atomic<uint32_t> seq{0};
    std::atomic<uint64_t> words[6] = {};
  };
  struct Shard {
    std::atomic<uint64_t> cursor{0};
    Slot slots[kSlotsPerShard];
  };

  std::atomic<uint64_t> next_id_{1};
  std::atomic<uint64_t> total_{0};
  Shard shards_[kShards];

  mutable std::mutex trace_mu_;
  std::vector<SampledTrace> traces_;  // ring, oldest at trace_head_
  size_t trace_head_ = 0;
};

}  // namespace toss::obs

#endif  // TOSS_OBS_FLIGHT_RECORDER_H_
