// Windowed time-series rollups over the metrics registry (DESIGN.md §15).
//
// The registry's instruments are cumulative since process start, which is
// the right shape for cheap hot-path updates but the wrong shape for "what
// is the p99 right now". TimeSeries closes that gap: a ticker (background
// thread or manual Tick() in tests) snapshots the registry at a fixed
// interval and stores the *delta* against the previous snapshot as one
// Window -- counter increments, gauge values, and per-interval histogram
// bucket deltas. Windows live in a bounded ring (default 240 x 500 ms = two
// minutes of history) and render to JSON for TelemetryDump and tosstop.py.
//
// Deltas are clamped at zero, so a MetricsRegistry::Reset between ticks
// degrades to an empty window instead of an underflowed one. Interval
// percentiles use Histogram::Snapshot::PercentileMillis (interpolated), and
// WindowedPercentileMillis merges the last N windows for "p99 over the last
// minute" style queries.

#ifndef TOSS_OBS_TIMESERIES_H_
#define TOSS_OBS_TIMESERIES_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.h"

namespace toss::obs {

class TimeSeries {
 public:
  /// One fixed-interval rollup: what changed between two registry ticks.
  struct Window {
    uint64_t seq = 0;            ///< 1-based, monotonically increasing
    uint64_t start_unix_ms = 0;  ///< wall clock at the window's open
    uint64_t duration_ms = 0;    ///< actual elapsed (>= configured interval)
    /// Counter increments over the window; zero-delta counters omitted.
    std::map<std::string, uint64_t> counter_deltas;
    /// Gauge values at the window's close (point-in-time, not deltas).
    std::map<std::string, int64_t> gauges;
    /// Histogram activity over the window; empty-delta histograms omitted.
    std::map<std::string, Histogram::Snapshot> histogram_deltas;

    /// Delta / duration, in events per second.
    double RatePerSecond(const std::string& counter) const;

    /// {"seq":..,"start_unix_ms":..,"duration_ms":..,
    ///  "counters":{"name":{"delta":..,"rate_per_s":..}},
    ///  "gauges":{"name":..},
    ///  "histograms":{"name":{"count":..,"mean_ms":..,"p50_ms":..,
    ///                        "p99_ms":..,"buckets":[...]}}}
    /// Percentiles are interpolated over the interval's deltas.
    std::string Json() const;
  };

  explicit TimeSeries(MetricsRegistry* registry = &MetricsRegistry::Global(),
                      size_t capacity = 240);
  ~TimeSeries();
  TimeSeries(const TimeSeries&) = delete;
  TimeSeries& operator=(const TimeSeries&) = delete;

  /// Takes one snapshot now. The first call only establishes the baseline;
  /// every later call appends a Window (evicting the oldest past capacity).
  /// Safe to call concurrently with the background ticker and readers.
  void Tick();

  /// Starts the background ticker at `interval`. Idempotent; a second call
  /// with the ticker running is a no-op.
  void Start(std::chrono::milliseconds interval);

  /// Stops and joins the ticker thread. Idempotent. Retained windows stay.
  void Stop();

  bool running() const;

  /// Newest `max_windows` windows, oldest first.
  std::vector<Window> GetWindows(size_t max_windows = SIZE_MAX) const;

  /// Interpolated quantile of `histogram` merged across the newest
  /// `last_n_windows` windows ("p99 over the last minute"). Returns 0 when
  /// the histogram saw no samples in that span.
  double WindowedPercentileMillis(const std::string& histogram, double q,
                                  size_t last_n_windows) const;

  /// {"interval_ms":..,"windows":[...oldest first...]} capped at
  /// `max_windows` newest.
  std::string Json(size_t max_windows = SIZE_MAX) const;

  /// Drops all windows and the baseline. For tests.
  void Reset();

 private:
  void AppendWindow(uint64_t now_unix_ms);

  MetricsRegistry* const registry_;
  const size_t capacity_;

  mutable std::mutex mu_;
  bool has_baseline_ = false;
  MetricsRegistry::Snapshot baseline_;
  uint64_t baseline_unix_ms_ = 0;
  uint64_t next_seq_ = 1;
  std::deque<Window> windows_;

  mutable std::mutex ticker_mu_;
  std::condition_variable ticker_cv_;
  std::thread ticker_;
  bool ticker_running_ = false;
  bool stop_requested_ = false;
  std::chrono::milliseconds interval_{500};
};

}  // namespace toss::obs

#endif  // TOSS_OBS_TIMESERIES_H_
