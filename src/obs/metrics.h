// Process-wide metrics registry: named counters, gauges, and fixed-bucket
// latency histograms (DESIGN.md §10 "Observability").
//
// Hot-path cost is the design constraint: every instrument is updated with
// relaxed atomics on cache-line-separated shards indexed by a thread-local
// hash, so concurrent increments from the worker pool never contend on one
// line and an increment is a single wait-free fetch_add. Reads (Value,
// snapshots) sum the shards; they are racy-by-design monotonic views, which
// is exactly what a metrics reader wants.
//
// Naming scheme: dotted lowercase `subsystem.object.event[_unit]`, e.g.
// `store.tree_cache.hits`, `query.eval_ns`. Instruments are created on
// first GetCounter/GetGauge/GetHistogram and live forever; call sites cache
// the returned reference (typically in a function-local static) so the
// registry mutex is only taken once per call site.

#ifndef TOSS_OBS_METRICS_H_
#define TOSS_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace toss::obs {

namespace internal {
/// Small per-thread shard index; distinct running threads land on distinct
/// shards with high probability.
size_t ShardIndex(size_t shard_count);
}  // namespace internal

/// Monotonic counter, sharded across cache lines.
class Counter {
 public:
  static constexpr size_t kShards = 8;

  void Add(uint64_t delta) {
    shards_[internal::ShardIndex(kShards)].v.fetch_add(
        delta, std::memory_order_relaxed);
  }
  void Increment() { Add(1); }

  uint64_t Value() const {
    uint64_t total = 0;
    for (const Shard& s : shards_) {
      total += s.v.load(std::memory_order_relaxed);
    }
    return total;
  }

  void Reset() {
    for (Shard& s : shards_) s.v.store(0, std::memory_order_relaxed);
  }

 private:
  struct alignas(64) Shard {
    std::atomic<uint64_t> v{0};
  };
  Shard shards_[kShards];
};

/// Last-write-wins instantaneous value (queue depths, configured sizes).
class Gauge {
 public:
  void Set(int64_t v) { v_.store(v, std::memory_order_relaxed); }
  void Add(int64_t delta) { v_.fetch_add(delta, std::memory_order_relaxed); }
  int64_t Value() const { return v_.load(std::memory_order_relaxed); }
  void Reset() { Set(0); }

 private:
  std::atomic<int64_t> v_{0};
};

/// Fixed-bucket latency histogram over nanoseconds. Bucket b counts samples
/// in (UpperBound(b-1), UpperBound(b)]; bounds grow as powers of two from
/// 256 ns to ~17 s, with a final overflow bucket. Buckets and the running
/// sum/count are sharded like Counter, so Record is wait-free.
class Histogram {
 public:
  static constexpr size_t kBuckets = 28;
  static constexpr size_t kShards = 4;

  /// Inclusive upper bound of bucket `b` in nanoseconds; the last bucket is
  /// unbounded (returns UINT64_MAX).
  static uint64_t UpperBound(size_t b);

  void Record(uint64_t nanos);

  struct Snapshot {
    uint64_t count = 0;
    uint64_t sum_nanos = 0;
    uint64_t counts[kBuckets] = {};

    double MeanMillis() const {
      return count == 0 ? 0.0
                        : static_cast<double>(sum_nanos) /
                              static_cast<double>(count) / 1e6;
    }
    /// Upper bound (ms) of the bucket containing quantile q in [0, 1] -- a
    /// conservative estimate, exact enough for dashboards and tests.
    double QuantileUpperBoundMillis(double q) const;

    /// Interpolated quantile in milliseconds: the sample at rank q*count is
    /// located in its bucket and the value is linearly interpolated between
    /// the bucket's bounds by rank position. With power-of-two bucket
    /// bounds the result is within one bucket width of the true sample
    /// quantile, monotone in q, and never above QuantileUpperBoundMillis.
    /// The overflow bucket interpolates toward 2x the last finite bound.
    /// Returns 0 for an empty snapshot.
    double PercentileMillis(double q) const;

    /// This snapshot minus `earlier` (per bucket, count, and sum), clamped
    /// at zero so a registry Reset between the two snapshots degrades to an
    /// empty delta instead of wrapping. The windowed time-series rollups
    /// are built from these interval deltas.
    Snapshot DeltaSince(const Snapshot& earlier) const;
  };
  Snapshot GetSnapshot() const;

  void Reset();

 private:
  struct alignas(64) Shard {
    std::atomic<uint64_t> counts[kBuckets] = {};
    std::atomic<uint64_t> sum{0};
    std::atomic<uint64_t> n{0};
  };
  Shard shards_[kShards];
};

/// The registry: name -> instrument, plus JSON / stderr exporters.
class MetricsRegistry {
 public:
  /// Process-wide instance (never destroyed).
  static MetricsRegistry& Global();

  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Find-or-create by name. The returned reference is stable forever.
  Counter& GetCounter(const std::string& name);
  Gauge& GetGauge(const std::string& name);
  Histogram& GetHistogram(const std::string& name);

  /// Zeroes every instrument's value; names stay registered. For tests and
  /// bench harnesses that want per-phase deltas.
  void Reset();

  /// Point-in-time values of all registered instruments.
  struct Snapshot {
    std::map<std::string, uint64_t> counters;
    std::map<std::string, int64_t> gauges;
    std::map<std::string, Histogram::Snapshot> histograms;
  };
  Snapshot GetSnapshot() const;

  /// The snapshot as one JSON object:
  ///   {"counters":{...},"gauges":{...},
  ///    "histograms":{"name":{"count":..,"sum_ns":..,"mean_ms":..,
  ///                          "p50_ms":..,"p99_ms":..,
  ///                          "buckets":[c0,...,c27]}}}
  /// The raw bucket counts let external tools (tools/tosstop.py) subtract
  /// two successive dumps and interpolate interval percentiles.
  std::string SnapshotJson() const;

  /// Escape hatch for tests/benches/debugging: human-readable dump, one
  /// instrument per line, sorted by name.
  void Dump(std::FILE* out) const;

 private:
  mutable std::mutex mu_;
  // unique_ptr values keep instrument addresses stable across rehashes.
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

/// Shorthand for MetricsRegistry::Global() -- call-site friendly:
///   static obs::Counter& hits = obs::Metrics().GetCounter("x.hits");
inline MetricsRegistry& Metrics() { return MetricsRegistry::Global(); }

}  // namespace toss::obs

#endif  // TOSS_OBS_METRICS_H_
