// Per-query trace spans (DESIGN.md §10 "Observability").
//
// A Trace owns a tree of timed nodes; Span is the RAII handle that times
// one node and parents its children. Spans are explicit about parenting
// (child spans take the parent Span, not an ambient stack), so a trace
// assembled across worker-pool threads stays well-formed: node creation is
// guarded by the trace's mutex, while each span's own timing fields are
// written only by its owner.
//
// The null-parent convention keeps instrumented code unconditional: every
// instrumented function takes a `Span* parent` and creates children with
// `Span(parent, "phase")`; when the caller passed no trace (parent null or
// disabled), the children are disabled too and every operation is a no-op
// costing one branch. Execute and ExplainAnalyze therefore share one code
// path.

#ifndef TOSS_OBS_TRACE_H_
#define TOSS_OBS_TRACE_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace toss::obs {

/// One timed node of a trace tree.
struct TraceNode {
  std::string name;
  uint64_t start_nanos = 0;     ///< relative to the trace epoch
  uint64_t duration_nanos = 0;  ///< 0 while the span is open
  std::vector<std::pair<std::string, std::string>> annotations;
  std::vector<std::unique_ptr<TraceNode>> children;

  double DurationMillis() const {
    return static_cast<double>(duration_nanos) / 1e6;
  }
};

class Span;

/// Owns a trace tree rooted at one named node. Create the root span with
/// RootSpan(); the root's duration is recorded when that span ends.
class Trace {
 public:
  explicit Trace(std::string root_name);

  Trace(const Trace&) = delete;
  Trace& operator=(const Trace&) = delete;

  /// The span timing the root node. Call exactly once.
  Span RootSpan();

  const TraceNode& root() const { return root_; }

  /// Fraction of the root's duration covered by its children (their
  /// durations summed). The acceptance metric for "does the trace account
  /// for the query's wall time". Returns 1 for an empty/unfinished root.
  double CoverageFraction() const;

  /// The tree as nested JSON:
  ///   {"name":..,"start_ns":..,"duration_ns":..,
  ///    "annotations":{..},"children":[..]}
  std::string Json() const;

  /// Indented human-readable rendering (EXPLAIN ANALYZE output).
  std::string Pretty() const;

 private:
  friend class Span;

  uint64_t NanosSinceEpoch() const;

  std::mutex mu_;  ///< guards child-vector mutation across threads
  uint64_t epoch_nanos_ = 0;
  TraceNode root_;
};

/// RAII timer over one TraceNode. Movable, not copyable. A
/// default-constructed Span is disabled: annotations and children of a
/// disabled span are no-ops, and its children are disabled too.
class Span {
 public:
  Span() = default;

  /// Child span under `parent`; disabled (cheaply) when `parent` is null
  /// or disabled.
  Span(Span* parent, std::string name);

  Span(Span&& other) noexcept;
  Span& operator=(Span&& other) noexcept;
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  ~Span() { End(); }

  bool enabled() const { return node_ != nullptr; }

  /// Records the duration; idempotent (later calls keep the first stop).
  void End();

  void Annotate(std::string key, std::string value);
  void Annotate(std::string key, uint64_t value);
  void Annotate(std::string key, double value);

 private:
  friend class Trace;
  Span(Trace* trace, TraceNode* node);

  Trace* trace_ = nullptr;
  TraceNode* node_ = nullptr;
  uint64_t start_nanos_ = 0;
};

}  // namespace toss::obs

#endif  // TOSS_OBS_TRACE_H_
