#include "obs/telemetry.h"

#include <fcntl.h>
#include <signal.h>
#include <unistd.h>

#include <atomic>
#include <cstdio>

#include "common/json.h"
#include "obs/metrics.h"

namespace toss::obs {

namespace {

common::JsonValue BuildInfoJson() {
  using common::JsonValue;
  JsonValue out = JsonValue::Object();
  out.Set("project", JsonValue::String("toss"));
  out.Set("cxx_standard", JsonValue::Number(__cplusplus / 100 % 100));
#if defined(__VERSION__)
  out.Set("compiler", JsonValue::String(__VERSION__));
#endif
#if defined(NDEBUG)
  out.Set("ndebug", JsonValue::Bool(true));
#else
  out.Set("ndebug", JsonValue::Bool(false));
#endif
#if defined(__SANITIZE_ADDRESS__)
  out.Set("asan", JsonValue::Bool(true));
#endif
#if defined(__SANITIZE_THREAD__)
  out.Set("tsan", JsonValue::Bool(true));
#endif
  return out;
}

uint64_t NowUnixMillis() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count());
}

}  // namespace

Telemetry::Telemetry() : series_(&MetricsRegistry::Global()) {}

Telemetry& Telemetry::Global() {
  // Leaked like the registry: the crash handler may run at any point.
  static Telemetry* telemetry = new Telemetry();
  return *telemetry;
}

void Telemetry::StartTicker(std::chrono::milliseconds interval) {
  series_.Start(interval);
}

void Telemetry::StopTicker() { series_.Stop(); }

std::string Telemetry::DumpJson(size_t max_windows,
                                size_t max_records) const {
  using common::JsonValue;
  // Sub-documents arrive as rendered JSON strings; parsing them back into the
  // tree before dumping guarantees the stitched document is itself valid (a
  // malformed sub-document degrades to null instead of corrupting the dump).
  const auto embed = [](const std::string& rendered) {
    auto parsed = JsonValue::Parse(rendered);
    return parsed.ok() ? std::move(parsed).value() : JsonValue::Null();
  };
  JsonValue doc = JsonValue::Object();
  doc.Set("ts_unix_ms",
          JsonValue::Number(static_cast<double>(NowUnixMillis())));
  doc.Set("build", BuildInfoJson());
  doc.Set("metrics", embed(MetricsRegistry::Global().SnapshotJson()));
  doc.Set("timeseries", embed(series_.Json(max_windows)));
  doc.Set("flight_recorder",
          embed(FlightRecorder::Global().Json(max_records)));
  return doc.Dump();
}

bool Telemetry::WriteDump(const std::string& path) const {
  const std::string doc = DumpJson();
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const bool ok = std::fwrite(doc.data(), 1, doc.size(), f) == doc.size() &&
                  std::fputc('\n', f) != EOF;
  return (std::fclose(f) == 0) && ok;
}

std::string TelemetryDump() { return Telemetry::Global().DumpJson(); }

namespace {

// Crash-dump state. The fd is opened before any signal can fire; the guard
// makes the handler run at most once process-wide even if several threads
// fault together.
std::atomic<int> g_crash_fd{-1};
std::atomic<bool> g_crash_dump_ran{false};
constexpr int kCrashSignals[] = {SIGSEGV, SIGABRT, SIGBUS, SIGFPE, SIGILL};

void CrashHandler(int signo) {
  if (!g_crash_dump_ran.exchange(true, std::memory_order_acq_rel)) {
    const int fd = g_crash_fd.load(std::memory_order_acquire);
    if (fd >= 0) {
      // NOT async-signal-safe (allocates); best effort by design -- see the
      // header comment. A fault inside the renderer hits the reentry guard
      // above and falls through to the re-raise.
      const std::string doc = TelemetryDump();
      size_t off = 0;
      while (off < doc.size()) {
        const ssize_t n = ::write(fd, doc.data() + off, doc.size() - off);
        if (n <= 0) break;
        off += static_cast<size_t>(n);
      }
      (void)::write(fd, "\n", 1);
      (void)::fsync(fd);
    }
  }
  ::signal(signo, SIG_DFL);
  ::raise(signo);
}

}  // namespace

bool InstallCrashDump(const std::string& path) {
  const int fd = ::open(path.c_str(), O_CREAT | O_WRONLY | O_TRUNC, 0644);
  if (fd < 0) return false;
  int expected = -1;
  if (!g_crash_fd.compare_exchange_strong(expected, fd,
                                          std::memory_order_acq_rel)) {
    ::close(fd);  // already installed; keep the first fd
    return false;
  }
  struct sigaction sa;
  std::memset(&sa, 0, sizeof(sa));
  sa.sa_handler = CrashHandler;
  sigemptyset(&sa.sa_mask);
  sa.sa_flags = SA_RESETHAND;
  bool ok = true;
  for (int signo : kCrashSignals) {
    if (::sigaction(signo, &sa, nullptr) != 0) ok = false;
  }
  return ok;
}

}  // namespace toss::obs
