// Telemetry facade: one JSON document that answers "what is this process
// doing and what has it just done" (DESIGN.md §15).
//
// TelemetryDump() stitches together the cumulative metrics snapshot, the
// windowed time-series, and the flight recorder's recent records + sampled
// traces, plus static build info, into a single self-describing JSON
// object. It is what the bench harness writes at exit (TOSS_TELEMETRY_DUMP),
// what tools/tosstop.py diffs to render live rates, and what the
// fatal-signal crash handler spills as a last act.
//
// The crash handler is explicitly best-effort: rendering JSON allocates, and
// allocation inside a signal handler is not async-signal-safe. If the heap
// is the thing that crashed, the dump will not happen -- the handler's
// reentry guard keeps it from making things worse, and the signal is always
// re-raised with default disposition so the process still dies loudly.

#ifndef TOSS_OBS_TELEMETRY_H_
#define TOSS_OBS_TELEMETRY_H_

#include <chrono>
#include <string>

#include "obs/flight_recorder.h"
#include "obs/timeseries.h"

namespace toss::obs {

class Telemetry {
 public:
  /// Process-wide instance (never destroyed). Owns the global TimeSeries
  /// over MetricsRegistry::Global(); the flight recorder is shared with
  /// FlightRecorder::Global().
  static Telemetry& Global();

  Telemetry();
  Telemetry(const Telemetry&) = delete;
  Telemetry& operator=(const Telemetry&) = delete;

  TimeSeries& series() { return series_; }
  FlightRecorder& recorder() { return FlightRecorder::Global(); }

  /// Starts the global background ticker (idempotent).
  void StartTicker(
      std::chrono::milliseconds interval = std::chrono::milliseconds(500));
  void StopTicker();

  /// The full dump document:
  ///   {"ts_unix_ms":..,"build":{...},"metrics":{...},
  ///    "timeseries":{...},"flight_recorder":{...}}
  std::string DumpJson(size_t max_windows = 120,
                       size_t max_records = 128) const;

  /// DumpJson + trailing newline written to `path` (created/truncated).
  /// Returns false on any I/O failure.
  bool WriteDump(const std::string& path) const;

 private:
  TimeSeries series_;
};

/// Telemetry::Global().DumpJson() -- the one-call diagnostic entry point.
std::string TelemetryDump();

/// Installs fatal-signal handlers (SIGSEGV, SIGABRT, SIGBUS, SIGFPE, SIGILL)
/// that write a best-effort telemetry dump to `path` before re-raising with
/// default disposition. The output file is pre-opened here so the handler
/// never touches the filesystem namespace. Returns false if the file cannot
/// be opened or handlers cannot be installed. Call at most once.
bool InstallCrashDump(const std::string& path);

}  // namespace toss::obs

#endif  // TOSS_OBS_TELEMETRY_H_
