#include "obs/flight_recorder.h"

#include <algorithm>
#include <cmath>

#include "common/json.h"
#include "obs/metrics.h"

namespace toss::obs {

const char* RequestOpName(RequestOp op) {
  switch (op) {
    case RequestOp::kSelect:
      return "select";
    case RequestOp::kProject:
      return "project";
    case RequestOp::kGroupBy:
      return "group_by";
    case RequestOp::kJoin:
      return "join";
    case RequestOp::kInsert:
      return "insert";
    case RequestOp::kReplace:
      return "replace";
    case RequestOp::kRemove:
      return "remove";
    case RequestOp::kUnknown:
      break;
  }
  return "unknown";
}

const char* JoinEngineName(JoinEngine e) {
  switch (e) {
    case JoinEngine::kNone:
      return "none";
    case JoinEngine::kPairwise:
      return "pairwise";
    case JoinEngine::kTwig:
      return "twig";
  }
  return "none";
}

std::string RequestRecord::Json() const {
  using common::JsonValue;
  JsonValue doc = JsonValue::Object();
  doc.Set("id", JsonValue::Number(static_cast<double>(id)));
  doc.Set("start_unix_micros",
          JsonValue::Number(static_cast<double>(start_unix_micros)));
  doc.Set("op", JsonValue::String(RequestOpName(static_cast<RequestOp>(op))));
  doc.Set("status_code", JsonValue::Number(status));
  // Millisecond floats are stored as float32; round to 1us so the dump does
  // not spell out the float->double conversion noise.
  const auto ms = [](float v) {
    return JsonValue::Number(std::round(static_cast<double>(v) * 1000.0) /
                             1000.0);
  };
  doc.Set("queue_wait_ms", ms(queue_wait_ms));
  doc.Set("exec_ms", ms(exec_ms));
  doc.Set("candidate_docs", JsonValue::Number(candidate_docs));
  doc.Set("result_trees", JsonValue::Number(result_trees));
  doc.Set("expanded_terms", JsonValue::Number(expanded_terms));
  doc.Set("engine",
          JsonValue::String(JoinEngineName(static_cast<JoinEngine>(engine))));
  doc.Set("prepared_cache_hit", JsonValue::Bool(HasFlag(kPreparedCacheHit)));
  doc.Set("shed", JsonValue::Bool(HasFlag(kShed)));
  doc.Set("mutation", JsonValue::Bool(HasFlag(kMutation)));
  doc.Set("trace_sampled", JsonValue::Bool(HasFlag(kTraceSampled)));
  return doc.Dump();
}

FlightRecorder& FlightRecorder::Global() {
  // Leaked, like MetricsRegistry: the crash handler may read it during
  // process teardown.
  static FlightRecorder* recorder = new FlightRecorder();
  return *recorder;
}

void FlightRecorder::Record(const RequestRecord& rec) {
  uint64_t words[6];
  std::memcpy(words, &rec, sizeof(words));

  Shard& shard = shards_[internal::ShardIndex(kShards)];
  const uint64_t ticket =
      shard.cursor.fetch_add(1, std::memory_order_relaxed);
  Slot& slot = shard.slots[ticket % kSlotsPerShard];

  // Seqlock write. CAS into the odd state so that two writers whose tickets
  // collide on one slot (kSlotsPerShard apart, both still in flight --
  // vanishingly rare) serialize instead of interleaving their payloads.
  uint32_t seq;
  for (;;) {
    // Reload every pass: an odd value (a concurrent writer mid-payload)
    // short-circuits the CAS, so `seq` must not go stale.
    seq = slot.seq.load(std::memory_order_relaxed);
    if (seq % 2 == 0 &&
        slot.seq.compare_exchange_weak(seq, seq + 1,
                                       std::memory_order_relaxed)) {
      break;
    }
  }
  std::atomic_thread_fence(std::memory_order_release);
  for (size_t i = 0; i < 6; ++i) {
    slot.words[i].store(words[i], std::memory_order_relaxed);
  }
  slot.seq.store(seq + 2, std::memory_order_release);
  total_.fetch_add(1, std::memory_order_relaxed);
}

void FlightRecorder::RetainTrace(uint64_t id, std::string trace_json) {
  std::lock_guard<std::mutex> lock(trace_mu_);
  if (traces_.size() < kSampledTraceCapacity) {
    traces_.push_back(SampledTrace{id, std::move(trace_json)});
  } else {
    traces_[trace_head_] = SampledTrace{id, std::move(trace_json)};
    trace_head_ = (trace_head_ + 1) % kSampledTraceCapacity;
  }
}

std::vector<RequestRecord> FlightRecorder::SnapshotRecords(
    size_t max_records) const {
  std::vector<RequestRecord> out;
  out.reserve(kCapacity);
  for (const Shard& shard : shards_) {
    for (const Slot& slot : shard.slots) {
      // Seqlock read with a few retries; a slot mid-write is skipped.
      for (int attempt = 0; attempt < 3; ++attempt) {
        const uint32_t s1 = slot.seq.load(std::memory_order_acquire);
        if (s1 == 0 || s1 % 2 != 0) continue;
        uint64_t words[6];
        for (size_t i = 0; i < 6; ++i) {
          words[i] = slot.words[i].load(std::memory_order_relaxed);
        }
        std::atomic_thread_fence(std::memory_order_acquire);
        const uint32_t s2 = slot.seq.load(std::memory_order_relaxed);
        if (s1 != s2) continue;
        RequestRecord rec;
        std::memcpy(&rec, words, sizeof(rec));
        if (rec.id != 0) out.push_back(rec);
        break;
      }
    }
  }
  std::sort(out.begin(), out.end(),
            [](const RequestRecord& a, const RequestRecord& b) {
              return a.id < b.id;
            });
  if (out.size() > max_records) {
    out.erase(out.begin(), out.end() - static_cast<ptrdiff_t>(max_records));
  }
  return out;
}

std::vector<SampledTrace> FlightRecorder::SnapshotTraces() const {
  std::lock_guard<std::mutex> lock(trace_mu_);
  std::vector<SampledTrace> out;
  out.reserve(traces_.size());
  for (size_t i = 0; i < traces_.size(); ++i) {
    out.push_back(traces_[(trace_head_ + i) % traces_.size()]);
  }
  return out;
}

void FlightRecorder::Reset() {
  for (Shard& shard : shards_) {
    shard.cursor.store(0, std::memory_order_relaxed);
    for (Slot& slot : shard.slots) {
      // Leave seq even; zero id marks the slot invalid.
      for (auto& w : slot.words) w.store(0, std::memory_order_relaxed);
      slot.seq.store(0, std::memory_order_release);
    }
  }
  total_.store(0, std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(trace_mu_);
  traces_.clear();
  trace_head_ = 0;
}

std::string FlightRecorder::Json(size_t max_records) const {
  using common::JsonValue;
  const std::vector<RequestRecord> records = SnapshotRecords(max_records);
  const std::vector<SampledTrace> traces = SnapshotTraces();
  JsonValue doc = JsonValue::Object();
  doc.Set("total_recorded",
          JsonValue::Number(static_cast<double>(TotalRecorded())));
  JsonValue record_array = JsonValue::Array();
  for (const RequestRecord& rec : records) {
    auto parsed = JsonValue::Parse(rec.Json());
    record_array.Append(parsed.ok() ? std::move(parsed).value()
                                    : JsonValue::Null());
  }
  doc.Set("records", std::move(record_array));
  JsonValue trace_array = JsonValue::Array();
  for (const SampledTrace& t : traces) {
    JsonValue entry = JsonValue::Object();
    entry.Set("id", JsonValue::Number(static_cast<double>(t.id)));
    // trace_json is an already-rendered JSON object; a malformed or empty
    // one degrades to null rather than corrupting the dump.
    JsonValue trace = JsonValue::Null();
    if (!t.trace_json.empty()) {
      auto parsed = JsonValue::Parse(t.trace_json);
      if (parsed.ok()) trace = std::move(parsed).value();
    }
    entry.Set("trace", std::move(trace));
    trace_array.Append(std::move(entry));
  }
  doc.Set("sampled_traces", std::move(trace_array));
  return doc.Dump();
}

}  // namespace toss::obs
