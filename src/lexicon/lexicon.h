// Lexical knowledge base: the repository's WordNet substitute.
//
// The paper's Ontology Maker consults WordNet for isa (hypernym),
// equivalence (synonym), and part-of (meronym) relationships between terms
// appearing in an XML instance. WordNet itself is proprietaryly licensed
// data we do not ship; instead `BuiltinBibliographicLexicon()` bundles a
// hand-curated KB covering the vocabulary of bibliographic databases
// (document kinds, venues, organisations, research fields, bibliographic
// record parts) plus the intro's motivating examples (US government
// agencies, web search companies). The API surface is shaped like a WordNet
// client so the ontology-construction code path is identical.

#ifndef TOSS_LEXICON_LEXICON_H_
#define TOSS_LEXICON_LEXICON_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/result.h"

namespace toss::lexicon {

using SynsetId = uint32_t;

/// A set of mutually synonymous terms plus its taxonomy links.
struct Synset {
  SynsetId id = 0;
  std::vector<std::string> terms;       ///< lowercase lemmas
  std::vector<SynsetId> hypernyms;      ///< isa parents
  std::vector<SynsetId> holonyms;       ///< part-of parents
};

/// In-memory lexical KB with WordNet-shaped lookups.
class Lexicon {
 public:
  /// Adds a synset; terms are lowercased. Returns its id.
  SynsetId AddSynset(std::vector<std::string> terms);

  /// Records `child isa parent` between synsets.
  Status AddIsa(SynsetId child, SynsetId parent);

  /// Records `part partof whole` between synsets.
  Status AddPartOf(SynsetId part, SynsetId whole);

  /// Convenience: AddIsa by term lookup; creates missing synsets.
  void AddIsaTerms(const std::string& child, const std::string& parent);

  /// Convenience: AddPartOf by term lookup; creates missing synsets.
  void AddPartOfTerms(const std::string& part, const std::string& whole);

  /// Synsets containing `term` (case-insensitive).
  std::vector<SynsetId> Lookup(const std::string& term) const;

  /// True if the lexicon knows the term.
  bool Knows(const std::string& term) const;

  /// Synonyms of `term`: all terms sharing a synset with it (term excluded).
  std::vector<std::string> Synonyms(const std::string& term) const;

  /// Direct hypernym terms of `term` (representative term per synset).
  std::vector<std::string> Hypernyms(const std::string& term) const;

  /// Direct holonym (part-of parent) terms of `term`.
  std::vector<std::string> Holonyms(const std::string& term) const;

  /// Transitive hypernym closure of `term`, nearest first.
  std::vector<std::string> HypernymClosure(const std::string& term) const;

  const Synset& synset(SynsetId id) const { return synsets_[id]; }
  size_t size() const { return synsets_.size(); }

 private:
  SynsetId GetOrCreate(const std::string& term);
  std::vector<std::string> ParentTerms(
      const std::string& term,
      const std::vector<SynsetId> Synset::*link) const;

  std::vector<Synset> synsets_;
  std::map<std::string, std::vector<SynsetId>> index_;  // lowercase term -> ids
};

/// The bundled bibliographic/organisation KB (see file comment).
const Lexicon& BuiltinBibliographicLexicon();

/// Text serialization, WordNet-dump-like. Line formats:
///   synset: term | term | ...
///   isa: child -> parent
///   partof: part -> whole
/// Blank lines and lines starting with '#' are ignored. isa/partof lines
/// reference terms; unknown terms get fresh synsets (like AddIsaTerms).
Result<Lexicon> LoadLexicon(const std::string& path);
Status SaveLexicon(const Lexicon& lexicon, const std::string& path);

/// Parses lexicon text directly (the file-format core of LoadLexicon).
Result<Lexicon> ParseLexiconText(std::string_view text);

/// Serializes to the text format.
std::string FormatLexicon(const Lexicon& lexicon);

}  // namespace toss::lexicon

#endif  // TOSS_LEXICON_LEXICON_H_
