// The bundled lexical KB standing in for WordNet (see lexicon.h).
//
// Coverage is scoped to what the paper's Ontology Maker needs over
// bibliographic data: document taxonomy, venue taxonomy, bibliographic
// record structure (part-of), research-field taxonomy, and the organisation
// taxonomy behind the introduction's "authors from the US government" and
// "web search company" examples.

#include "lexicon/lexicon.h"

namespace toss::lexicon {

namespace {

Lexicon BuildBibliographicLexicon() {
  Lexicon lex;

  // --- Synonym synsets -----------------------------------------------------
  lex.AddSynset({"paper", "article", "publication item"});
  lex.AddSynset({"conference", "meeting", "symposium"});
  lex.AddSynset({"booktitle", "conference name", "venue name"});
  lex.AddSynset({"author", "writer"});
  lex.AddSynset({"journal", "periodical"});
  lex.AddSynset({"proceedings", "conference record"});
  lex.AddSynset({"year", "publication year"});
  lex.AddSynset({"affiliation", "institution"});

  // --- Document taxonomy (isa) ----------------------------------------------
  lex.AddIsaTerms("inproceedings", "paper");
  lex.AddIsaTerms("article", "paper");
  lex.AddIsaTerms("incollection", "paper");
  lex.AddIsaTerms("paper", "publication");
  lex.AddIsaTerms("book", "publication");
  lex.AddIsaTerms("phdthesis", "thesis");
  lex.AddIsaTerms("mastersthesis", "thesis");
  lex.AddIsaTerms("thesis", "publication");
  lex.AddIsaTerms("techreport", "publication");
  lex.AddIsaTerms("publication", "document");
  lex.AddIsaTerms("document", "artifact");

  // --- Venue taxonomy (isa) --------------------------------------------------
  // Short and full conference names are synonyms: one synset each, so the
  // Ontology Maker folds both surface forms into a single hierarchy node.
  lex.AddSynset({"sigmod conference",
                 "acm sigmod international conference on management of data"});
  lex.AddSynset({"vldb",
                 "international conference on very large data bases"});
  lex.AddSynset({"icde",
                 "ieee international conference on data engineering"});
  lex.AddSynset({"pods", "acm symposium on principles of database systems"});
  lex.AddSynset({"sigir",
                 "international acm sigir conference on research and "
                 "development in information retrieval"});
  lex.AddSynset({"kdd",
                 "acm sigkdd international conference on knowledge discovery "
                 "and data mining"});
  lex.AddIsaTerms("sigmod conference", "database conference");
  lex.AddIsaTerms("vldb", "database conference");
  lex.AddIsaTerms("icde", "database conference");
  lex.AddIsaTerms("pods", "database conference");
  lex.AddIsaTerms("edbt", "database conference");
  lex.AddIsaTerms("cikm", "information management conference");
  lex.AddIsaTerms("sigir", "information retrieval conference");
  lex.AddIsaTerms("www", "web conference");
  lex.AddIsaTerms("kdd", "data mining conference");
  lex.AddIsaTerms("database conference", "computer science conference");
  lex.AddIsaTerms("information management conference",
                  "computer science conference");
  lex.AddIsaTerms("information retrieval conference",
                  "computer science conference");
  lex.AddIsaTerms("web conference", "computer science conference");
  lex.AddIsaTerms("data mining conference", "computer science conference");
  lex.AddIsaTerms("computer science conference", "conference");
  lex.AddIsaTerms("conference", "event");
  lex.AddIsaTerms("workshop", "event");
  lex.AddIsaTerms("tods", "database journal");
  lex.AddIsaTerms("vldb journal", "database journal");
  lex.AddIsaTerms("database journal", "computer science journal");
  lex.AddIsaTerms("computer science journal", "journal");
  lex.AddIsaTerms("journal", "publication venue");
  lex.AddIsaTerms("conference", "publication venue");

  // --- Bibliographic record structure (part-of) -----------------------------
  lex.AddPartOfTerms("author", "paper");
  lex.AddPartOfTerms("title", "paper");
  lex.AddPartOfTerms("year", "paper");
  lex.AddPartOfTerms("pages", "paper");
  lex.AddPartOfTerms("booktitle", "paper");
  lex.AddPartOfTerms("conference", "proceedings");
  lex.AddPartOfTerms("volume", "proceedings");
  lex.AddPartOfTerms("number", "proceedings");
  lex.AddPartOfTerms("month", "proceedings");
  lex.AddPartOfTerms("location", "proceedings");
  lex.AddPartOfTerms("paper", "proceedings");
  lex.AddPartOfTerms("proceedings", "bibliography");
  lex.AddPartOfTerms("abstract", "paper");
  lex.AddPartOfTerms("section", "paper");
  lex.AddPartOfTerms("reference", "paper");

  // --- Research-field taxonomy (isa) -----------------------------------------
  lex.AddIsaTerms("relational databases", "database systems");
  lex.AddIsaTerms("xml databases", "database systems");
  lex.AddIsaTerms("semistructured data", "data management");
  lex.AddIsaTerms("query processing", "database systems");
  lex.AddIsaTerms("query optimization", "query processing");
  lex.AddIsaTerms("data integration", "data management");
  lex.AddIsaTerms("database systems", "data management");
  lex.AddIsaTerms("data management", "computer science");
  lex.AddIsaTerms("information retrieval", "computer science");
  lex.AddIsaTerms("data mining", "computer science");
  lex.AddIsaTerms("machine learning", "computer science");
  lex.AddIsaTerms("computer science", "science");

  // --- Organisation taxonomy (the introduction's motivating queries) --------
  lex.AddPartOfTerms("us census bureau", "us department of commerce");
  lex.AddPartOfTerms("us department of commerce", "us government");
  lex.AddPartOfTerms("us army", "us department of defense");
  lex.AddPartOfTerms("us navy", "us department of defense");
  lex.AddPartOfTerms("us air force", "us department of defense");
  lex.AddPartOfTerms("us department of defense", "us government");
  lex.AddPartOfTerms("army research lab", "us army");
  lex.AddPartOfTerms("naval research laboratory", "us navy");
  lex.AddPartOfTerms("nist", "us department of commerce");
  lex.AddPartOfTerms("nasa", "us government");
  lex.AddPartOfTerms("nsf", "us government");
  lex.AddPartOfTerms("national institutes of health", "us government");

  lex.AddIsaTerms("google", "web search company");
  lex.AddIsaTerms("altavista", "web search company");
  lex.AddIsaTerms("yahoo", "web search company");
  lex.AddIsaTerms("web search company", "computer company");
  lex.AddIsaTerms("microsoft", "software company");
  lex.AddIsaTerms("oracle", "software company");
  lex.AddIsaTerms("software company", "computer company");
  lex.AddIsaTerms("ibm", "computer company");
  lex.AddIsaTerms("computer company", "company");
  lex.AddIsaTerms("company", "organization");
  lex.AddIsaTerms("us government", "government");
  lex.AddIsaTerms("government", "organization");

  lex.AddIsaTerms("stanford university", "university");
  lex.AddIsaTerms("university of maryland", "university");
  lex.AddIsaTerms("mit", "university");
  lex.AddIsaTerms("university", "educational institution");
  lex.AddIsaTerms("educational institution", "organization");

  return lex;
}

}  // namespace

const Lexicon& BuiltinBibliographicLexicon() {
  static const Lexicon kLexicon = BuildBibliographicLexicon();
  return kLexicon;
}

}  // namespace toss::lexicon
