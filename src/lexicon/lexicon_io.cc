// Text (de)serialization of Lexicon -- see lexicon.h for the format.

#include <fstream>
#include <sstream>

#include "common/string_util.h"
#include "lexicon/lexicon.h"

namespace toss::lexicon {

namespace {

std::vector<std::string> SplitTrimmed(std::string_view s, char delim) {
  std::vector<std::string> out;
  size_t start = 0;
  for (size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == delim) {
      auto piece = Trim(s.substr(start, i - start));
      if (!piece.empty()) out.emplace_back(piece);
      start = i + 1;
    }
  }
  return out;
}

}  // namespace

Result<Lexicon> ParseLexiconText(std::string_view text) {
  Lexicon lex;
  std::istringstream lines{std::string(text)};
  std::string line;
  int line_no = 0;
  while (std::getline(lines, line)) {
    ++line_no;
    std::string_view trimmed = Trim(line);
    if (trimmed.empty() || trimmed[0] == '#') continue;
    auto fail = [&](const std::string& what) {
      return Status::ParseError("lexicon line " + std::to_string(line_no) +
                                ": " + what);
    };
    size_t colon = trimmed.find(':');
    if (colon == std::string_view::npos) {
      return fail("expected 'synset:', 'isa:' or 'partof:'");
    }
    std::string_view kind = Trim(trimmed.substr(0, colon));
    std::string_view rest = Trim(trimmed.substr(colon + 1));
    if (kind == "synset") {
      auto terms = SplitTrimmed(rest, '|');
      if (terms.empty()) return fail("empty synset");
      lex.AddSynset(std::move(terms));
    } else if (kind == "isa" || kind == "partof") {
      size_t arrow = rest.find("->");
      if (arrow == std::string_view::npos) {
        return fail("expected 'child -> parent'");
      }
      std::string child{Trim(rest.substr(0, arrow))};
      std::string parent{Trim(rest.substr(arrow + 2))};
      if (child.empty() || parent.empty()) {
        return fail("empty term in relation");
      }
      if (kind == "isa") {
        lex.AddIsaTerms(child, parent);
      } else {
        lex.AddPartOfTerms(child, parent);
      }
    } else {
      return fail("unknown directive '" + std::string(kind) + "'");
    }
  }
  return lex;
}

std::string FormatLexicon(const Lexicon& lexicon) {
  std::string out = "# TOSS lexicon dump\n";
  for (SynsetId id = 0; id < lexicon.size(); ++id) {
    const Synset& s = lexicon.synset(id);
    out += "synset: " + Join(s.terms, " | ") + "\n";
  }
  auto head = [&](SynsetId id) -> const std::string& {
    return lexicon.synset(id).terms.front();
  };
  for (SynsetId id = 0; id < lexicon.size(); ++id) {
    const Synset& s = lexicon.synset(id);
    if (s.terms.empty()) continue;
    for (SynsetId parent : s.hypernyms) {
      out += "isa: " + s.terms.front() + " -> " + head(parent) + "\n";
    }
    for (SynsetId parent : s.holonyms) {
      out += "partof: " + s.terms.front() + " -> " + head(parent) + "\n";
    }
  }
  return out;
}

Result<Lexicon> LoadLexicon(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IOError("cannot open " + path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ParseLexiconText(ss.str());
}

Status SaveLexicon(const Lexicon& lexicon, const std::string& path) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) return Status::IOError("cannot write " + path);
  out << FormatLexicon(lexicon);
  out.close();
  if (!out) return Status::IOError("write failed for " + path);
  return Status::OK();
}

}  // namespace toss::lexicon
