#include "lexicon/lexicon.h"

#include <algorithm>
#include <set>

#include "common/string_util.h"

namespace toss::lexicon {

SynsetId Lexicon::AddSynset(std::vector<std::string> terms) {
  SynsetId id = static_cast<SynsetId>(synsets_.size());
  Synset s;
  s.id = id;
  for (auto& t : terms) s.terms.push_back(ToLower(t));
  synsets_.push_back(std::move(s));
  for (const auto& t : synsets_[id].terms) index_[t].push_back(id);
  return id;
}

Status Lexicon::AddIsa(SynsetId child, SynsetId parent) {
  if (child >= synsets_.size() || parent >= synsets_.size()) {
    return Status::InvalidArgument("synset id out of range");
  }
  synsets_[child].hypernyms.push_back(parent);
  return Status::OK();
}

Status Lexicon::AddPartOf(SynsetId part, SynsetId whole) {
  if (part >= synsets_.size() || whole >= synsets_.size()) {
    return Status::InvalidArgument("synset id out of range");
  }
  synsets_[part].holonyms.push_back(whole);
  return Status::OK();
}

SynsetId Lexicon::GetOrCreate(const std::string& term) {
  auto ids = Lookup(term);
  if (!ids.empty()) return ids.front();
  return AddSynset({term});
}

void Lexicon::AddIsaTerms(const std::string& child,
                          const std::string& parent) {
  SynsetId c = GetOrCreate(child);
  SynsetId p = GetOrCreate(parent);
  (void)AddIsa(c, p);
}

void Lexicon::AddPartOfTerms(const std::string& part,
                             const std::string& whole) {
  SynsetId c = GetOrCreate(part);
  SynsetId p = GetOrCreate(whole);
  (void)AddPartOf(c, p);
}

std::vector<SynsetId> Lexicon::Lookup(const std::string& term) const {
  auto it = index_.find(ToLower(term));
  if (it == index_.end()) return {};
  return it->second;
}

bool Lexicon::Knows(const std::string& term) const {
  return index_.count(ToLower(term)) > 0;
}

std::vector<std::string> Lexicon::Synonyms(const std::string& term) const {
  std::string lower = ToLower(term);
  std::set<std::string> out;
  for (SynsetId id : Lookup(term)) {
    for (const auto& t : synsets_[id].terms) {
      if (t != lower) out.insert(t);
    }
  }
  return {out.begin(), out.end()};
}

std::vector<std::string> Lexicon::ParentTerms(
    const std::string& term,
    const std::vector<SynsetId> Synset::*link) const {
  std::set<std::string> out;
  for (SynsetId id : Lookup(term)) {
    for (SynsetId parent : synsets_[id].*link) {
      if (!synsets_[parent].terms.empty()) {
        out.insert(synsets_[parent].terms.front());
      }
    }
  }
  return {out.begin(), out.end()};
}

std::vector<std::string> Lexicon::Hypernyms(const std::string& term) const {
  return ParentTerms(term, &Synset::hypernyms);
}

std::vector<std::string> Lexicon::Holonyms(const std::string& term) const {
  return ParentTerms(term, &Synset::holonyms);
}

std::vector<std::string> Lexicon::HypernymClosure(
    const std::string& term) const {
  std::vector<std::string> out;
  std::set<SynsetId> seen;
  std::vector<SynsetId> frontier = Lookup(term);
  while (!frontier.empty()) {
    std::vector<SynsetId> next;
    for (SynsetId id : frontier) {
      for (SynsetId parent : synsets_[id].hypernyms) {
        if (seen.insert(parent).second) {
          if (!synsets_[parent].terms.empty()) {
            out.push_back(synsets_[parent].terms.front());
          }
          next.push_back(parent);
        }
      }
    }
    frontier = std::move(next);
  }
  return out;
}

}  // namespace toss::lexicon
