// Node-level similarity (paper Def. 7 and Lemma 1).
//
// Ontology nodes contain *sets* of strings (synonyms grouped by fusion or by
// an earlier enhancement). The node distance is the minimum string distance
// over all cross pairs. Lemma 1: when the underlying string measure is
// strong and within-node distances are 0, every cross pair has the same
// distance, so one representative pair suffices.

#ifndef TOSS_SIM_NODE_MEASURE_H_
#define TOSS_SIM_NODE_MEASURE_H_

#include <vector>

#include "sim/string_measure.h"

namespace toss::sim {

/// Distance between two string sets under `measure`: min over cross pairs.
/// Uses the Lemma-1 single-pair fast path when `measure->is_strong()` and
/// `assume_zero_within` (the SEO invariant) hold.
double NodeDistance(const std::vector<std::string>& a,
                    const std::vector<std::string>& b,
                    const StringMeasure& measure,
                    bool assume_zero_within = false);

/// Bounded variant: may return any value > bound early.
double BoundedNodeDistance(const std::vector<std::string>& a,
                           const std::vector<std::string>& b,
                           const StringMeasure& measure, double bound,
                           bool assume_zero_within = false);

}  // namespace toss::sim

#endif  // TOSS_SIM_NODE_MEASURE_H_
