#include "sim/measure_registry.h"

#include "sim/soft_tfidf.h"

namespace toss::sim {

Result<StringMeasurePtr> MakeMeasure(const std::string& name) {
  if (name == "levenshtein") {
    return StringMeasurePtr(std::make_shared<LevenshteinMeasure>());
  }
  if (name == "damerau") {
    return StringMeasurePtr(std::make_shared<DamerauLevenshteinMeasure>());
  }
  if (name == "ci-levenshtein") {
    return StringMeasurePtr(
        std::make_shared<CaseInsensitiveLevenshteinMeasure>());
  }
  if (name == "jaro") {
    return StringMeasurePtr(std::make_shared<JaroMeasure>());
  }
  if (name == "jaro-winkler") {
    return StringMeasurePtr(std::make_shared<JaroWinklerMeasure>());
  }
  if (name == "monge-elkan") {
    return StringMeasurePtr(std::make_shared<MongeElkanMeasure>());
  }
  if (name == "jaccard") {
    return StringMeasurePtr(std::make_shared<JaccardMeasure>());
  }
  if (name == "qgram-cosine") {
    return StringMeasurePtr(std::make_shared<QGramCosineMeasure>());
  }
  if (name == "person-name") {
    return StringMeasurePtr(std::make_shared<PersonNameMeasure>());
  }
  if (name == "guarded-levenshtein") {
    return StringMeasurePtr(std::make_shared<MinLengthGuardMeasure>(
        std::make_shared<LevenshteinMeasure>()));
  }
  if (name == "soft-tfidf") {
    // Untrained (uniform IDF); call Train() on a directly-constructed
    // instance for corpus-weighted matching.
    return StringMeasurePtr(std::make_shared<SoftTfIdfMeasure>());
  }
  return Status::NotFound("no similarity measure named '" + name + "'");
}

std::vector<std::string> MeasureNames() {
  return {"levenshtein", "damerau",      "ci-levenshtein",
          "jaro",        "jaro-winkler", "monge-elkan",
          "jaccard",     "qgram-cosine", "person-name",
          "guarded-levenshtein", "soft-tfidf"};
}

}  // namespace toss::sim
