// SoftTFIDF (Cohen, Ravikumar & Fienberg): the hybrid measure that won
// their string-matching comparison [5]. Token sets are compared with
// TF-IDF weights, but tokens need not match exactly -- an inner
// character-based similarity (Jaro-Winkler) above a threshold counts as a
// soft match scaled by its similarity.
//
// IDF weights come from Train()ing on a corpus of strings (e.g. all author
// names in a collection); untrained instances fall back to uniform weights
// (pure soft-cosine), which is still a usable measure.

#ifndef TOSS_SIM_SOFT_TFIDF_H_
#define TOSS_SIM_SOFT_TFIDF_H_

#include <map>
#include <vector>

#include "sim/string_measure.h"

namespace toss::sim {

class SoftTfIdfMeasure : public StringMeasure {
 public:
  /// `inner_threshold`: minimum Jaro-Winkler similarity for a soft token
  /// match (0.9 is the authors' setting). Distance = (1 - sim) * scale.
  explicit SoftTfIdfMeasure(double scale = 10.0,
                            double inner_threshold = 0.9)
      : scale_(scale), inner_threshold_(inner_threshold) {}

  /// Fits IDF weights on a corpus of strings (each string = one document).
  /// May be called once, before any Distance() call is shared across
  /// threads.
  void Train(const std::vector<std::string>& corpus);

  bool trained() const { return document_count_ > 0; }
  size_t vocabulary_size() const { return document_frequency_.size(); }

  double Distance(std::string_view a, std::string_view b) const override;
  bool is_strong() const override { return false; }
  std::string name() const override { return "soft-tfidf"; }

 private:
  /// Normalized tf-idf weight vector of a token list.
  std::map<std::string, double> Weights(
      const std::vector<std::string>& tokens) const;

  /// Directional SoftTFIDF similarity.
  double Directional(const std::map<std::string, double>& wa,
                     const std::map<std::string, double>& wb) const;

  double scale_;
  double inner_threshold_;
  size_t document_count_ = 0;
  std::map<std::string, size_t> document_frequency_;
};

}  // namespace toss::sim

#endif  // TOSS_SIM_SOFT_TFIDF_H_
