#include "sim/pairwise.h"

#include "common/worker_pool.h"
#include "obs/metrics.h"
#include "sim/node_measure.h"

namespace toss::sim {

namespace {

/// Admission-filter effectiveness counters. `pairs_filtered` pairs were
/// rejected by a signature lower bound alone; `pairs_computed` needed the
/// exact bounded distance. Tallied per row and flushed once per row so the
/// per-pair cost stays a local integer increment.
struct PairwiseMetrics {
  obs::Counter& pairs_filtered =
      obs::Metrics().GetCounter("sim.pairwise.pairs_filtered");
  obs::Counter& pairs_computed =
      obs::Metrics().GetCounter("sim.pairwise.pairs_computed");
};

PairwiseMetrics& Instruments() {
  static PairwiseMetrics* m = new PairwiseMetrics();
  return *m;
}

/// Precomputed per-term signatures for a set of nodes, flattened. When the
/// measure does not support signatures, `enabled` is false and filtering
/// degrades to a no-op (a single branch per pair).
struct SignatureIndex {
  bool enabled = false;
  std::vector<StringSignature> sigs;  // term signatures, node-major
  std::vector<uint32_t> offsets;      // node i's terms: [offsets[i], offsets[i+1])

  template <typename TermsOf>
  SignatureIndex(size_t n, const StringMeasure& measure,
                 const TermsOf& terms_of, bool want) {
    if (!want) return;
    offsets.reserve(n + 1);
    offsets.push_back(0);
    enabled = true;
    for (size_t i = 0; i < n && enabled; ++i) {
      for (const std::string& t : terms_of(i)) {
        StringSignature sig;
        if (!measure.ComputeSignature(t, &sig)) {
          enabled = false;
          break;
        }
        sigs.push_back(sig);
      }
      offsets.push_back(static_cast<uint32_t>(sigs.size()));
    }
  }

  /// Lower bound on the node distance: the node distance is a min over
  /// cross pairs, so the bound is the min of the per-pair bounds. Mirrors
  /// BoundedNodeDistance's Lemma-1 fast path so the filter inspects
  /// exactly the pairs the exact computation would.
  double NodeLowerBound(size_t i, size_t j, const StringMeasure& measure,
                        bool assume_zero_within) const {
    const uint32_t ib = offsets[i], ie = offsets[i + 1];
    const uint32_t jb = offsets[j], je = offsets[j + 1];
    if (ib == ie || jb == je) {
      return std::numeric_limits<double>::infinity();
    }
    if (measure.is_strong() && assume_zero_within) {
      return measure.SignatureLowerBound(sigs[ib], sigs[jb]);
    }
    double best = std::numeric_limits<double>::infinity();
    for (uint32_t x = ib; x < ie; ++x) {
      for (uint32_t y = jb; y < je; ++y) {
        best = std::min(best, measure.SignatureLowerBound(sigs[x], sigs[y]));
        if (best == 0.0) return 0.0;
      }
    }
    return best;
  }
};

/// Runs `row(i)` for every i in [0, n), inline or over the shared pool.
/// Tasks only write disjoint slots, so both paths yield identical output.
template <typename RowFn>
void Drive(size_t n, const PairwiseOptions& options, const RowFn& row) {
  if (options.parallel && n >= options.min_parallel_items &&
      SharedWorkerPool().thread_count() > 1) {
    // Tasks never fail; the Status plumbing exists for the pool's sake.
    (void)SharedParallelFor(n, [&](size_t i) {
      row(i);
      return Status::OK();
    });
    return;
  }
  for (size_t i = 0; i < n; ++i) row(i);
}

}  // namespace

DistanceMatrix PairwiseNodeDistances(
    const std::vector<const std::vector<std::string>*>& nodes,
    const StringMeasure& measure, const PairwiseOptions& options) {
  const size_t n = nodes.size();
  DistanceMatrix dm(n);
  const SignatureIndex index(
      n, measure, [&](size_t i) -> const std::vector<std::string>& {
        return *nodes[i];
      },
      options.use_filters);
  Drive(n, options, [&](size_t i) {
    uint64_t filtered_row = 0, computed_row = 0;
    for (size_t j = i + 1; j < n; ++j) {
      double d;
      if (index.enabled &&
          index.NodeLowerBound(i, j, measure, options.assume_zero_within) >
              options.bound) {
        d = DistanceMatrix::kOverBound;
        ++filtered_row;
      } else {
        d = BoundedNodeDistance(*nodes[i], *nodes[j], measure, options.bound,
                                options.assume_zero_within);
        if (!(d <= options.bound)) d = DistanceMatrix::kOverBound;
        ++computed_row;
      }
      dm.set(i, j, d);
    }
    PairwiseMetrics& m = Instruments();
    if (filtered_row > 0) m.pairs_filtered.Add(filtered_row);
    if (computed_row > 0) m.pairs_computed.Add(computed_row);
  });
  return dm;
}

DistanceMatrix PairwiseStringDistances(const std::vector<std::string>& terms,
                                       const StringMeasure& measure,
                                       const PairwiseOptions& options) {
  const size_t n = terms.size();
  DistanceMatrix dm(n);
  std::vector<StringSignature> sigs;
  bool filtered = options.use_filters;
  if (filtered) {
    sigs.resize(n);
    for (size_t i = 0; i < n && filtered; ++i) {
      filtered = measure.ComputeSignature(terms[i], &sigs[i]);
    }
  }
  Drive(n, options, [&](size_t i) {
    uint64_t filtered_row = 0, computed_row = 0;
    for (size_t j = i + 1; j < n; ++j) {
      double d;
      if (filtered &&
          measure.SignatureLowerBound(sigs[i], sigs[j]) > options.bound) {
        d = DistanceMatrix::kOverBound;
        ++filtered_row;
      } else {
        d = measure.BoundedDistance(terms[i], terms[j], options.bound);
        if (!(d <= options.bound)) d = DistanceMatrix::kOverBound;
        ++computed_row;
      }
      dm.set(i, j, d);
    }
    PairwiseMetrics& m = Instruments();
    if (filtered_row > 0) m.pairs_filtered.Add(filtered_row);
    if (computed_row > 0) m.pairs_computed.Add(computed_row);
  });
  return dm;
}

}  // namespace toss::sim
