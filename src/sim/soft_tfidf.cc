#include "sim/soft_tfidf.h"

#include <algorithm>
#include <cmath>
#include <set>

#include "common/string_util.h"

namespace toss::sim {

void SoftTfIdfMeasure::Train(const std::vector<std::string>& corpus) {
  document_count_ = corpus.size();
  document_frequency_.clear();
  for (const auto& doc : corpus) {
    auto tokens = TokenizeWords(doc);
    std::set<std::string> unique(tokens.begin(), tokens.end());
    for (const auto& tok : unique) ++document_frequency_[tok];
  }
}

std::map<std::string, double> SoftTfIdfMeasure::Weights(
    const std::vector<std::string>& tokens) const {
  std::map<std::string, double> tf;
  for (const auto& tok : tokens) tf[tok] += 1.0;
  double norm = 0.0;
  for (auto& [tok, weight] : tf) {
    double idf = 1.0;
    if (document_count_ > 0) {
      auto it = document_frequency_.find(tok);
      double df = it == document_frequency_.end()
                      ? 1.0
                      : static_cast<double>(it->second);
      idf = std::log(static_cast<double>(document_count_ + 1) / df);
      if (idf <= 0) idf = 1e-6;  // corpus-universal token
    }
    // log-scaled tf, standard in the SecondString implementation.
    weight = (1.0 + std::log(weight)) * idf;
    norm += weight * weight;
  }
  norm = std::sqrt(norm);
  if (norm > 0) {
    for (auto& [tok, weight] : tf) weight /= norm;
  }
  return tf;
}

double SoftTfIdfMeasure::Directional(
    const std::map<std::string, double>& wa,
    const std::map<std::string, double>& wb) const {
  double sim = 0.0;
  for (const auto& [ta, va] : wa) {
    // Best soft match of ta among b's tokens.
    double best_inner = 0.0;
    double best_weight = 0.0;
    for (const auto& [tb, vb] : wb) {
      double inner = (ta == tb) ? 1.0 : JaroWinklerSimilarity(ta, tb);
      if (inner >= inner_threshold_ && inner > best_inner) {
        best_inner = inner;
        best_weight = vb;
      }
    }
    if (best_inner > 0) sim += va * best_weight * best_inner;
  }
  return sim;
}

double SoftTfIdfMeasure::Distance(std::string_view a,
                                  std::string_view b) const {
  if (a == b) return 0.0;
  auto ta = TokenizeWords(a);
  auto tb = TokenizeWords(b);
  if (ta.empty() && tb.empty()) return 0.0;
  if (ta.empty() || tb.empty()) return scale_;
  auto wa = Weights(ta);
  auto wb = Weights(tb);
  // SoftTFIDF is asymmetric; symmetrize with the average so the result is
  // a valid similarity measure (Def. 7 requires symmetry).
  double sim = 0.5 * (Directional(wa, wb) + Directional(wb, wa));
  sim = std::min(1.0, sim);
  return (1.0 - sim) * scale_;
}

}  // namespace toss::sim
