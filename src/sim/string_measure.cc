#include "sim/string_measure.h"

#include <algorithm>
#include <bit>
#include <cctype>
#include <cmath>
#include <limits>
#include <map>
#include <set>
#include <vector>

#include "common/string_util.h"

namespace toss::sim {

namespace internal {

// Two-row Levenshtein DP. O(|a| * |b|) time, O(min) space. The row buffers
// are thread-local scratch: the pairwise drivers call this millions of
// times and a heap allocation per call would dominate the DP itself.
int LevenshteinDp(std::string_view a, std::string_view b) {
  if (a.size() > b.size()) std::swap(a, b);
  thread_local std::vector<int> prev_s, cur_s;
  if (prev_s.size() < a.size() + 1) {
    prev_s.resize(a.size() + 1);
    cur_s.resize(a.size() + 1);
  }
  int* prev = prev_s.data();
  int* cur = cur_s.data();
  for (size_t i = 0; i <= a.size(); ++i) prev[i] = static_cast<int>(i);
  for (size_t j = 1; j <= b.size(); ++j) {
    cur[0] = static_cast<int>(j);
    for (size_t i = 1; i <= a.size(); ++i) {
      int sub = prev[i - 1] + (a[i - 1] == b[j - 1] ? 0 : 1);
      cur[i] = std::min({prev[i] + 1, cur[i - 1] + 1, sub});
    }
    std::swap(prev, cur);
  }
  return prev[a.size()];
}

// Myers' bit-parallel edit distance. The shorter string's DP column lives
// in two delta bitvectors (pv: cell - cell_above == +1, mv: == -1); each
// character of the longer string updates both vectors and the bottom-cell
// score in a dozen word ops. The match table holds one 64-bit mask per
// byte value; it is thread_local and reset by re-clearing only the entries
// this call set, so the table cost is O(|shorter|), not 256 writes.
int LevenshteinMyers64(std::string_view a, std::string_view b) {
  if (a.size() > b.size()) std::swap(a, b);
  const int m = static_cast<int>(a.size());
  if (m == 0) return static_cast<int>(b.size());
  thread_local uint64_t peq[256];  // all-zero between calls
  for (int i = 0; i < m; ++i) {
    peq[static_cast<unsigned char>(a[i])] |= uint64_t{1} << i;
  }
  uint64_t pv = ~uint64_t{0};
  uint64_t mv = 0;
  int score = m;
  const uint64_t last = uint64_t{1} << (m - 1);
  for (const char bc : b) {
    const uint64_t eq = peq[static_cast<unsigned char>(bc)];
    const uint64_t xv = eq | mv;
    const uint64_t xh = (((eq & pv) + pv) ^ pv) | eq;
    uint64_t ph = mv | ~(xh | pv);
    uint64_t mh = pv & xh;
    if (ph & last) {
      ++score;
    } else if (mh & last) {
      --score;
    }
    ph = (ph << 1) | 1;
    mh <<= 1;
    pv = mh | ~(xv | ph);
    mv = ph & xv;
  }
  for (const char ac : a) peq[static_cast<unsigned char>(ac)] = 0;
  return score;
}

// Blocked Myers: the shorter string's column spans `words` 64-bit blocks.
// Per character of the longer string the blocks run low to high with three
// values chained across the boundary: the carry of the xh addition, and the
// bits shifted out of ph / mh (block 0's shift-in is the +1 horizontal
// delta of the top boundary row, exactly the `| 1` of the one-word
// version). Score tracks the bottom cell, bit (m-1) of the top block. The
// match table is again thread_local with only the touched words re-zeroed,
// so a call costs O(words * (|longer| + 256-free)) with no per-call
// allocation once the scratch has grown.
int LevenshteinMyersBlocked(std::string_view a, std::string_view b) {
  if (a.size() > b.size()) std::swap(a, b);
  const size_t m = a.size();
  if (m == 0) return static_cast<int>(b.size());
  const size_t words = (m + 63) / 64;
  thread_local std::vector<uint64_t> peq_s;  // all-zero between calls
  thread_local std::vector<uint64_t> pv_s, mv_s;
  if (peq_s.size() < words * 256) peq_s.assign(words * 256, 0);
  if (pv_s.size() < words) {
    pv_s.resize(words);
    mv_s.resize(words);
  }
  uint64_t* peq = peq_s.data();
  uint64_t* pv = pv_s.data();
  uint64_t* mv = mv_s.data();
  for (size_t i = 0; i < m; ++i) {
    peq[static_cast<unsigned char>(a[i]) * words + i / 64] |=
        uint64_t{1} << (i % 64);
  }
  for (size_t w = 0; w < words; ++w) {
    pv[w] = ~uint64_t{0};
    mv[w] = 0;
  }
  int score = static_cast<int>(m);
  const size_t last_w = words - 1;
  const uint64_t last = uint64_t{1} << ((m - 1) % 64);
  for (const char bc : b) {
    const uint64_t* eq_row =
        peq + static_cast<size_t>(static_cast<unsigned char>(bc)) * words;
    uint64_t ph_in = 1;
    uint64_t mh_in = 0;
    uint64_t add_carry = 0;
    for (size_t w = 0; w < words; ++w) {
      const uint64_t eq = eq_row[w];
      const uint64_t pb = pv[w];
      const uint64_t xv = eq | mv[w];
      // (eq & pb) + pb, carry chained from the previous block.
      const uint64_t t = eq & pb;
      const uint64_t s1 = t + add_carry;
      const uint64_t sum = s1 + pb;
      add_carry = static_cast<uint64_t>(s1 < t) |
                  static_cast<uint64_t>(sum < s1);
      const uint64_t xh = (sum ^ pb) | eq;
      uint64_t ph = mv[w] | ~(xh | pb);
      uint64_t mh = pb & xh;
      if (w == last_w) {
        if (ph & last) {
          ++score;
        } else if (mh & last) {
          --score;
        }
      }
      const uint64_t ph_out = ph >> 63;
      const uint64_t mh_out = mh >> 63;
      ph = (ph << 1) | ph_in;
      mh = (mh << 1) | mh_in;
      ph_in = ph_out;
      mh_in = mh_out;
      pv[w] = mh | ~(xv | ph);
      mv[w] = ph & xv;
    }
  }
  // Each set bit of the match table was set by some position i; zeroing the
  // word that holds bit i for every i clears the table in O(m).
  for (size_t i = 0; i < m; ++i) {
    peq[static_cast<unsigned char>(a[i]) * words + i / 64] = 0;
  }
  return score;
}

}  // namespace internal

namespace {

// Full-distance entry point: bit-parallel throughout -- one machine word
// when the shorter string fits (the overwhelmingly common case for
// ontology terms), the blocked variant past that. The scalar DP remains
// only as the property-test reference.
int LevenshteinRaw(std::string_view a, std::string_view b) {
  if (std::min(a.size(), b.size()) <= 64) {
    return internal::LevenshteinMyers64(a, b);
  }
  return internal::LevenshteinMyersBlocked(a, b);
}

// Banded Levenshtein: returns the exact distance when it is <= limit,
// otherwise any value > limit. Only cells within `limit` of the diagonal
// can contribute, so the scan is O(limit * max(|a|,|b|)). Each row only
// touches its band plus one guard cell on either side (cells outside a
// row's band stay at whatever garbage the scratch holds -- they are never
// read, because row j+1's band extends at most one cell past row j's).
int LevenshteinBounded(std::string_view a, std::string_view b, int limit) {
  if (limit < 0) return 1;  // any positive value exceeds a negative limit
  int size_diff = static_cast<int>(
      a.size() > b.size() ? a.size() - b.size() : b.size() - a.size());
  if (size_diff > limit) return limit + 1;
  if (a.size() > b.size()) std::swap(a, b);
  const int n = static_cast<int>(a.size());
  const int m = static_cast<int>(b.size());
  const int kInf = limit + 1;
  thread_local std::vector<int> prev_s, cur_s;
  if (prev_s.size() < static_cast<size_t>(n) + 2) {
    prev_s.resize(n + 2);
    cur_s.resize(n + 2);
  }
  int* prev = prev_s.data();
  int* cur = cur_s.data();
  const int first_hi = std::min(n, limit);
  for (int i = 0; i <= first_hi; ++i) prev[i] = i;
  prev[first_hi + 1] = kInf;  // guard: row 1's band reaches one past
  for (int j = 1; j <= m; ++j) {
    int lo = std::max(1, j - limit);
    int hi = std::min(n, j + limit);
    cur[lo - 1] = (lo == 1 && j <= limit) ? j : kInf;
    int row_min = cur[lo - 1];
    for (int i = lo; i <= hi; ++i) {
      int sub = prev[i - 1] + (a[i - 1] == b[j - 1] ? 0 : 1);
      int del = prev[i] + 1;
      int ins = cur[i - 1] + 1;
      cur[i] = std::min({sub, del, ins, kInf});
      row_min = std::min(row_min, cur[i]);
    }
    cur[hi + 1] = kInf;  // guard for the next row's widened band
    if (row_min > limit) return kInf;
    std::swap(prev, cur);
  }
  return std::min(prev[n], kInf);
}

// Lower bound for unit-cost edit families: every edit operation changes
// the length by at most 1 and the L1 distance between character-frequency
// vectors by at most 2 (substitution: -1 one count, +1 another; insert /
// delete: 1; transposition: 0). Hence d >= max(len-diff, ceil(freq_l1/2)).
int EditFamilyLowerBound(std::string_view a, std::string_view b) {
  int len_diff = static_cast<int>(
      a.size() > b.size() ? a.size() - b.size() : b.size() - a.size());
  // The L1 sum is maintained incrementally (|v+1|-|v| is +1 iff v >= 0;
  // |v-1|-|v| is +1 iff v <= 0) and the zero-initialized table is
  // thread_local with touched entries reset by re-scanning the inputs, so
  // a call costs O(|a|+|b|) -- cheap enough to admit every candidate pair
  // of short strings through this filter.
  thread_local int counts[256] = {0};
  int l1 = 0;
  for (unsigned char c : a) l1 += counts[c]++ >= 0 ? 1 : -1;
  for (unsigned char c : b) l1 += counts[c]-- <= 0 ? 1 : -1;
  for (unsigned char c : a) counts[c] = 0;
  for (unsigned char c : b) counts[c] = 0;
  return std::max(len_diff, (l1 + 1) / 2);
}

// Signature support for the edit family: charmask records character
// presence hashed into 64 buckets. A unit edit changes the
// character-presence set's symmetric difference by at most 2
// (substitution: one char may vanish, one may appear; insert/delete: at
// most 1; transposition: 0), and bucketing can only shrink the symmetric
// difference, so d >= ceil(popcount(mask_a ^ mask_b) / 2). Combined with
// the length-difference bound.
StringSignature EditFamilySignature(std::string_view s) {
  StringSignature sig;
  sig.length = static_cast<uint32_t>(s.size());
  for (unsigned char c : s) sig.charmask |= uint64_t{1} << (c & 63);
  return sig;
}

StringSignature EditFamilySignatureCi(std::string_view s) {
  StringSignature sig;
  sig.length = static_cast<uint32_t>(s.size());
  for (unsigned char c : s) {
    sig.charmask |= uint64_t{1} << (std::tolower(c) & 63);
  }
  return sig;
}

double EditFamilySignatureLowerBound(const StringSignature& a,
                                     const StringSignature& b) {
  int len_diff = static_cast<int>(a.length > b.length ? a.length - b.length
                                                      : b.length - a.length);
  int sym = std::popcount(a.charmask ^ b.charmask);
  return static_cast<double>(std::max(len_diff, (sym + 1) / 2));
}

// Same bound over lowercased strings (for the case-insensitive measure).
int EditFamilyLowerBoundCi(std::string_view a, std::string_view b) {
  int len_diff = static_cast<int>(
      a.size() > b.size() ? a.size() - b.size() : b.size() - a.size());
  thread_local int counts[256] = {0};
  int l1 = 0;
  for (unsigned char c : a) l1 += counts[std::tolower(c)]++ >= 0 ? 1 : -1;
  for (unsigned char c : b) l1 += counts[std::tolower(c)]-- <= 0 ? 1 : -1;
  for (unsigned char c : a) counts[std::tolower(c)] = 0;
  for (unsigned char c : b) counts[std::tolower(c)] = 0;
  return std::max(len_diff, (l1 + 1) / 2);
}

std::vector<std::string> NameTokens(std::string_view s) {
  // Split camel-case and punctuation: "GianLuigi" -> {gian, luigi}.
  std::string expanded;
  char prev = '\0';
  for (char c : s) {
    if (std::isupper(static_cast<unsigned char>(c)) &&
        std::islower(static_cast<unsigned char>(prev))) {
      expanded += ' ';
    }
    expanded += c;
    prev = c;
  }
  return TokenizeWords(expanded);
}

}  // namespace

// ---------------------------------------------------------------------------
// Levenshtein family
// ---------------------------------------------------------------------------

double LevenshteinMeasure::Distance(std::string_view a,
                                    std::string_view b) const {
  return static_cast<double>(LevenshteinRaw(a, b));
}

double LevenshteinMeasure::BoundedDistance(std::string_view a,
                                           std::string_view b,
                                           double bound) const {
  // Any bound at or above the worst case makes the band the whole matrix;
  // also guards the int cast against +infinity.
  double worst = static_cast<double>(std::max(a.size(), b.size()));
  if (!(bound < worst)) return Distance(a, b);
  int limit = static_cast<int>(std::floor(bound));
  return static_cast<double>(LevenshteinBounded(a, b, limit));
}

double LevenshteinMeasure::DistanceLowerBound(std::string_view a,
                                              std::string_view b) const {
  return static_cast<double>(EditFamilyLowerBound(a, b));
}

bool LevenshteinMeasure::ComputeSignature(std::string_view s,
                                          StringSignature* sig) const {
  *sig = EditFamilySignature(s);
  return true;
}

double LevenshteinMeasure::SignatureLowerBound(
    const StringSignature& a, const StringSignature& b) const {
  return EditFamilySignatureLowerBound(a, b);
}

double DamerauLevenshteinMeasure::Distance(std::string_view a,
                                           std::string_view b) const {
  const int n = static_cast<int>(a.size());
  const int m = static_cast<int>(b.size());
  std::vector<std::vector<int>> d(n + 1, std::vector<int>(m + 1));
  for (int i = 0; i <= n; ++i) d[i][0] = i;
  for (int j = 0; j <= m; ++j) d[0][j] = j;
  for (int i = 1; i <= n; ++i) {
    for (int j = 1; j <= m; ++j) {
      int cost = (a[i - 1] == b[j - 1]) ? 0 : 1;
      d[i][j] = std::min({d[i - 1][j] + 1, d[i][j - 1] + 1,
                          d[i - 1][j - 1] + cost});
      if (i > 1 && j > 1 && a[i - 1] == b[j - 2] && a[i - 2] == b[j - 1]) {
        d[i][j] = std::min(d[i][j], d[i - 2][j - 2] + 1);
      }
    }
  }
  return static_cast<double>(d[n][m]);
}

double DamerauLevenshteinMeasure::DistanceLowerBound(
    std::string_view a, std::string_view b) const {
  // Transpositions change neither length nor character counts, so the
  // unit-cost edit bound stays valid.
  return static_cast<double>(EditFamilyLowerBound(a, b));
}

bool DamerauLevenshteinMeasure::ComputeSignature(std::string_view s,
                                                 StringSignature* sig) const {
  *sig = EditFamilySignature(s);
  return true;
}

double DamerauLevenshteinMeasure::SignatureLowerBound(
    const StringSignature& a, const StringSignature& b) const {
  return EditFamilySignatureLowerBound(a, b);
}

double CaseInsensitiveLevenshteinMeasure::Distance(std::string_view a,
                                                   std::string_view b) const {
  return static_cast<double>(LevenshteinRaw(ToLower(a), ToLower(b)));
}

double CaseInsensitiveLevenshteinMeasure::DistanceLowerBound(
    std::string_view a, std::string_view b) const {
  return static_cast<double>(EditFamilyLowerBoundCi(a, b));
}

bool CaseInsensitiveLevenshteinMeasure::ComputeSignature(
    std::string_view s, StringSignature* sig) const {
  *sig = EditFamilySignatureCi(s);
  return true;
}

double CaseInsensitiveLevenshteinMeasure::SignatureLowerBound(
    const StringSignature& a, const StringSignature& b) const {
  return EditFamilySignatureLowerBound(a, b);
}

// ---------------------------------------------------------------------------
// Jaro family
// ---------------------------------------------------------------------------

double JaroSimilarity(std::string_view a, std::string_view b) {
  if (a.empty() && b.empty()) return 1.0;
  if (a.empty() || b.empty()) return 0.0;
  if (a == b) return 1.0;
  const int n = static_cast<int>(a.size());
  const int m = static_cast<int>(b.size());
  const int window = std::max(0, std::max(n, m) / 2 - 1);
  std::vector<bool> a_match(n, false), b_match(m, false);
  int matches = 0;
  for (int i = 0; i < n; ++i) {
    int lo = std::max(0, i - window);
    int hi = std::min(m - 1, i + window);
    for (int j = lo; j <= hi; ++j) {
      if (!b_match[j] && a[i] == b[j]) {
        a_match[i] = b_match[j] = true;
        ++matches;
        break;
      }
    }
  }
  if (matches == 0) return 0.0;
  // Count transpositions among the matched characters.
  int transpositions = 0;
  int k = 0;
  for (int i = 0; i < n; ++i) {
    if (!a_match[i]) continue;
    while (!b_match[k]) ++k;
    if (a[i] != b[k]) ++transpositions;
    ++k;
  }
  double mm = matches;
  return (mm / n + mm / m + (mm - transpositions / 2.0) / mm) / 3.0;
}

double JaroWinklerSimilarity(std::string_view a, std::string_view b) {
  double jaro = JaroSimilarity(a, b);
  // Standard Winkler boost for a shared prefix up to 4 characters, applied
  // only when the base similarity is already reasonably high.
  if (jaro < 0.7) return jaro;
  int prefix = 0;
  for (size_t i = 0; i < std::min({a.size(), b.size(), size_t{4}}); ++i) {
    if (a[i] != b[i]) break;
    ++prefix;
  }
  return jaro + prefix * 0.1 * (1.0 - jaro);
}

double JaroMeasure::Distance(std::string_view a, std::string_view b) const {
  return (1.0 - JaroSimilarity(a, b)) * scale_;
}

double JaroWinklerMeasure::Distance(std::string_view a,
                                    std::string_view b) const {
  return (1.0 - JaroWinklerSimilarity(a, b)) * scale_;
}

// ---------------------------------------------------------------------------
// Token-based measures
// ---------------------------------------------------------------------------

double MongeElkanMeasure::Distance(std::string_view a,
                                   std::string_view b) const {
  auto ta = TokenizeWords(a);
  auto tb = TokenizeWords(b);
  if (ta.empty() && tb.empty()) return 0.0;
  if (ta.empty() || tb.empty()) return scale_;
  auto directional = [](const std::vector<std::string>& xs,
                        const std::vector<std::string>& ys) {
    double total = 0.0;
    for (const auto& x : xs) {
      double best = 0.0;
      for (const auto& y : ys) {
        best = std::max(best, JaroWinklerSimilarity(x, y));
      }
      total += best;
    }
    return total / static_cast<double>(xs.size());
  };
  // Monge-Elkan is asymmetric; symmetrize with the max so d(a,b)=d(b,a).
  double sim = std::max(directional(ta, tb), directional(tb, ta));
  return (1.0 - sim) * scale_;
}

double JaccardMeasure::Distance(std::string_view a, std::string_view b) const {
  auto ta = TokenizeWords(a);
  auto tb = TokenizeWords(b);
  std::set<std::string> sa(ta.begin(), ta.end());
  std::set<std::string> sb(tb.begin(), tb.end());
  if (sa.empty() && sb.empty()) return 0.0;
  size_t inter = 0;
  for (const auto& w : sa) inter += sb.count(w);
  size_t uni = sa.size() + sb.size() - inter;
  double jaccard = static_cast<double>(inter) / static_cast<double>(uni);
  return (1.0 - jaccard) * scale_;
}

double QGramCosineMeasure::Distance(std::string_view a,
                                    std::string_view b) const {
  if (a == b) return 0.0;
  auto grams = [this](std::string_view s) {
    std::map<std::string, int> counts;
    std::string lower = ToLower(s);
    // Pad so short strings still produce q-grams.
    std::string padded =
        std::string(q_ - 1, '#') + lower + std::string(q_ - 1, '#');
    for (size_t i = 0; i + q_ <= padded.size(); ++i) {
      ++counts[padded.substr(i, q_)];
    }
    return counts;
  };
  auto ga = grams(a);
  auto gb = grams(b);
  if (ga.empty() && gb.empty()) return 0.0;
  if (ga.empty() || gb.empty()) return scale_;
  double dot = 0.0, na = 0.0, nb = 0.0;
  for (const auto& [g, c] : ga) {
    na += static_cast<double>(c) * c;
    auto it = gb.find(g);
    if (it != gb.end()) dot += static_cast<double>(c) * it->second;
  }
  for (const auto& [g, c] : gb) nb += static_cast<double>(c) * c;
  // Clamp: rounding can push the cosine of identical vectors past 1,
  // which would make the distance (slightly) negative.
  double cosine =
      std::min(1.0, dot / (std::sqrt(na) * std::sqrt(nb)));
  return (1.0 - cosine) * scale_;
}

// ---------------------------------------------------------------------------
// Rule-based person-name measure
// ---------------------------------------------------------------------------

double PersonNameMeasure::Distance(std::string_view a,
                                   std::string_view b) const {
  if (a == b) return 0.0;
  auto ta = NameTokens(a);
  auto tb = NameTokens(b);
  if (ta.empty() || tb.empty()) {
    return std::max(4.0, static_cast<double>(LevenshteinRaw(a, b)));
  }
  if (ta == tb) return 0.0;
  if (ta.back() != tb.back()) {
    // Different last names: never similar under the domain rules.
    return std::max(4.0, static_cast<double>(LevenshteinRaw(a, b)));
  }
  // Same last name; compare given-name token lists.
  std::vector<std::string> ga(ta.begin(), ta.end() - 1);
  std::vector<std::string> gb(tb.begin(), tb.end() - 1);
  if (ga.empty() || gb.empty()) return 3.5;  // e.g. "Ullman" vs "J. Ullman"

  // "Compatible" given names: one is an initial or prefix of the other,
  // pairwise in order (extra middle names on either side are tolerated).
  auto compatible = [](const std::vector<std::string>& xs,
                       const std::vector<std::string>& ys) {
    size_t i = 0, j = 0;
    size_t matched = 0;
    while (i < xs.size() && j < ys.size()) {
      const std::string& x = xs[i];
      const std::string& y = ys[j];
      bool match = StartsWith(x, y) || StartsWith(y, x);
      if (match) {
        ++matched;
        ++i;
        ++j;
      } else {
        // Skip the shorter list's token? No: skip from the longer list
        // (treat as an omitted middle name).
        if (xs.size() - i > ys.size() - j) {
          ++i;
        } else if (ys.size() - j > xs.size() - i) {
          ++j;
        } else {
          return false;
        }
      }
    }
    return matched > 0;
  };

  bool full_compat = compatible(ga, gb);
  if (full_compat) {
    // Distinguish full-name compatibility ("jeffrey" vs "jeffrey d") from
    // initial-only matches ("j" vs "jeffrey").
    bool initial_only = true;
    for (size_t i = 0; i < std::min(ga.size(), gb.size()); ++i) {
      if (ga[i].size() > 1 && gb[i].size() > 1) {
        initial_only = false;
        break;
      }
    }
    return initial_only ? 2.0 : 0.5;
  }
  // Same last name, incompatible given names (e.g. Marco vs Mauro): check
  // initials.
  if (!ga.empty() && !gb.empty() && ga[0][0] == gb[0][0]) return 2.2;
  return 3.5;
}

// ---------------------------------------------------------------------------
// Combinators
// ---------------------------------------------------------------------------

double MinLengthGuardMeasure::Distance(std::string_view a,
                                       std::string_view b) const {
  if (a == b) return 0.0;
  double d = inner_->Distance(a, b);
  if (a.size() < min_length_ || b.size() < min_length_) {
    d = std::max(d, floor_);
  }
  return d;
}

double MinLengthGuardMeasure::BoundedDistance(std::string_view a,
                                              std::string_view b,
                                              double bound) const {
  if (a == b) return 0.0;
  if ((a.size() < min_length_ || b.size() < min_length_) &&
      floor_ > bound) {
    return floor_;
  }
  double d = inner_->BoundedDistance(a, b, bound);
  if (a.size() < min_length_ || b.size() < min_length_) {
    d = std::max(d, floor_);
  }
  return d;
}

double MinLengthGuardMeasure::DistanceLowerBound(std::string_view a,
                                                 std::string_view b) const {
  if (a == b) return 0.0;
  double lb = inner_->DistanceLowerBound(a, b);
  if (a.size() < min_length_ || b.size() < min_length_) {
    lb = std::max(lb, floor_);
  }
  return lb;
}

bool MinLengthGuardMeasure::ComputeSignature(std::string_view s,
                                             StringSignature* sig) const {
  return inner_->ComputeSignature(s, sig);
}

double MinLengthGuardMeasure::SignatureLowerBound(
    const StringSignature& a, const StringSignature& b) const {
  double lb = inner_->SignatureLowerBound(a, b);
  // The floor only applies to *unequal* strings; equal strings have equal
  // signatures, so it may only be raised once the inner bound proves the
  // strings differ.
  if (lb > 0.0 && (a.length < min_length_ || b.length < min_length_)) {
    lb = std::max(lb, floor_);
  }
  return lb;
}

}  // namespace toss::sim
