// Pairwise-distance driver for the SEA pipeline's O(|S|^2) scan.
//
// SEA (and anything else that needs an epsilon-similarity graph) used to
// call BoundedNodeDistance in a hand-rolled double loop. This driver owns
// that scan and makes it fast three ways:
//   1. admission filters -- StringMeasure signatures (length + 64-bucket
//      character bitmap, computed once per term) give an O(1) per-pair
//      lower bound (length difference + presence-set symmetric difference
//      for the edit family); pairs provably over the bound skip the DP.
//      StringMeasure::DistanceLowerBound is the exact-count sibling of the
//      same bound for one-off use;
//   2. parallel fan-out -- rows are distributed over the shared
//      toss::WorkerPool; every task writes distinct pair slots, so the
//      parallel result is bit-for-bit identical to the sequential one;
//   3. canonical over-bound values -- any distance > bound is stored as
//      +infinity, so filtered / unfiltered / parallel / sequential runs
//      produce byte-identical matrices and thresholding at any epsilon <=
//      bound is exact.
//
// The condensed DistanceMatrix it returns is also the reuse vehicle for
// epsilon sweeps: compute once at the sweep's max epsilon, threshold per
// epsilon (ontology::SimilaritySweep).

#ifndef TOSS_SIM_PAIRWISE_H_
#define TOSS_SIM_PAIRWISE_H_

#include <limits>
#include <string>
#include <vector>

#include "sim/string_measure.h"

namespace toss::sim {

/// Symmetric pairwise distance matrix over n items, stored as the
/// condensed upper triangle (n*(n-1)/2 doubles; the diagonal is 0).
class DistanceMatrix {
 public:
  /// Canonical marker for "greater than the bound the matrix was computed
  /// at": the driver stores +infinity instead of whatever over-bound value
  /// the measure returned, making runs byte-comparable.
  static constexpr double kOverBound =
      std::numeric_limits<double>::infinity();

  DistanceMatrix() = default;
  explicit DistanceMatrix(size_t n)
      : n_(n), d_(n < 2 ? 0 : n * (n - 1) / 2, 0.0) {}

  size_t size() const { return n_; }

  /// d(i, j); 0 on the diagonal. Requires i, j < size().
  double at(size_t i, size_t j) const {
    if (i == j) return 0.0;
    return d_[Index(i, j)];
  }

  void set(size_t i, size_t j, double v) { d_[Index(i, j)] = v; }

  /// Calls fn(i, j) for every pair i < j with d(i, j) <= bound, in
  /// row-major order. One linear pass over the condensed triangle -- the
  /// fast way to build a thresholded graph from the matrix.
  template <typename Fn>
  void ForEachAtMost(double bound, const Fn& fn) const {
    size_t k = 0;
    for (size_t i = 0; i + 1 < n_; ++i) {
      for (size_t j = i + 1; j < n_; ++j, ++k) {
        if (d_[k] <= bound) fn(i, j);
      }
    }
  }

  bool operator==(const DistanceMatrix& o) const {
    return n_ == o.n_ && d_ == o.d_;
  }

 private:
  size_t Index(size_t i, size_t j) const {
    if (i > j) std::swap(i, j);
    // Row-major upper triangle: row i holds n-1-i entries.
    return i * (2 * n_ - i - 1) / 2 + (j - i - 1);
  }

  size_t n_ = 0;
  std::vector<double> d_;
};

struct PairwiseOptions {
  /// Distances above this are stored as DistanceMatrix::kOverBound; the
  /// measure's BoundedDistance may stop early past it. Default: exact
  /// distances everywhere.
  double bound = std::numeric_limits<double>::infinity();

  /// Apply signature admission filters before the exact measure (no-op for
  /// measures without ComputeSignature support).
  bool use_filters = true;

  /// Fan rows out over toss::SharedWorkerPool(). Output is bit-identical
  /// to the sequential scan (each pair's slot is written exactly once).
  bool parallel = true;

  /// Below this many items the scan runs inline even with parallel set
  /// (fan-out overhead beats the work).
  size_t min_parallel_items = 128;

  /// Node-level only: assume within-node distances are 0 (the SEO
  /// invariant), enabling the Lemma-1 single-pair fast path for strong
  /// measures.
  bool assume_zero_within = false;
};

/// All pairwise node distances (min over cross term pairs, see
/// sim::BoundedNodeDistance) among `nodes`. Entries of `nodes` must stay
/// alive for the duration of the call.
DistanceMatrix PairwiseNodeDistances(
    const std::vector<const std::vector<std::string>*>& nodes,
    const StringMeasure& measure, const PairwiseOptions& options = {});

/// All pairwise string distances among `terms`.
DistanceMatrix PairwiseStringDistances(const std::vector<std::string>& terms,
                                       const StringMeasure& measure,
                                       const PairwiseOptions& options = {});

}  // namespace toss::sim

#endif  // TOSS_SIM_PAIRWISE_H_
