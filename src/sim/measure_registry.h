// Name-keyed factory for similarity measures. The paper's Similarity
// Enhancer lets the database administrator pick a measure "among a variety
// of possible choices"; this registry is that choice point.

#ifndef TOSS_SIM_MEASURE_REGISTRY_H_
#define TOSS_SIM_MEASURE_REGISTRY_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "sim/string_measure.h"

namespace toss::sim {

/// Returns the measure registered under `name` (see MeasureNames), or
/// NotFound. The built-in names are:
///   levenshtein, damerau, ci-levenshtein, jaro, jaro-winkler, monge-elkan,
///   jaccard, qgram-cosine, person-name
Result<StringMeasurePtr> MakeMeasure(const std::string& name);

/// Names accepted by MakeMeasure.
std::vector<std::string> MeasureNames();

}  // namespace toss::sim

#endif  // TOSS_SIM_MEASURE_REGISTRY_H_
