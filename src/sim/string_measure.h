// String similarity measures (paper Def. 7).
//
// A string similarity measure d_s maps a pair of strings to a non-negative
// real with d_s(X,X)=0 and d_s(X,Y)=d_s(Y,X). It is *strong* when it also
// satisfies the triangle inequality. Strongness matters: Lemma 1 lets
// node-level distances be computed from a single representative pair when
// the measure is strong.
//
// Distances here follow the paper's convention (0 = identical, larger = less
// similar) so that the SEA threshold ε=2 / ε=3 experiments read exactly like
// Section 6. Similarity-valued methods from the IR literature (Jaro,
// Monge-Elkan, Jaccard, cosine) are exposed as scaled distances
// (1 - similarity) * scale so they share a threshold axis with Levenshtein.

#ifndef TOSS_SIM_STRING_MEASURE_H_
#define TOSS_SIM_STRING_MEASURE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>

namespace toss::sim {

/// O(1)-comparable summary of a string used for admission filtering in the
/// pairwise drivers: its length plus a 64-bucket character-presence bitmap.
/// Computed once per string (O(|s|)), compared in a handful of instructions
/// per pair -- unlike DistanceLowerBound, whose per-pair O(|a|+|b|) cost
/// rivals the banded DP it would be guarding on short strings.
struct StringSignature {
  uint32_t length = 0;
  uint64_t charmask = 0;
};

/// Abstract string similarity measure.
class StringMeasure {
 public:
  virtual ~StringMeasure() = default;

  /// Distance between two strings; >= 0, symmetric, d(x,x)=0.
  virtual double Distance(std::string_view a, std::string_view b) const = 0;

  /// Distance, with permission to return any value > `bound` as soon as the
  /// true distance is known to exceed `bound`. Default: exact distance.
  /// SEA calls this in its O(|S|^2) pair scan.
  virtual double BoundedDistance(std::string_view a, std::string_view b,
                                 double bound) const {
    (void)bound;
    return Distance(a, b);
  }

  /// Cheap admission filter: a lower bound on Distance(a, b) computable in
  /// O(|a| + |b|) without running the full measure. The pairwise drivers
  /// skip the exact computation for pairs whose lower bound already
  /// exceeds the threshold. Must never exceed the true distance; the
  /// default (0, no information) makes filtering a no-op.
  virtual double DistanceLowerBound(std::string_view a,
                                    std::string_view b) const {
    (void)a;
    (void)b;
    return 0.0;
  }

  /// Fills `sig` with this measure's signature of `s` and returns true when
  /// the measure supports signature-based filtering (SignatureLowerBound).
  /// Default: unsupported.
  virtual bool ComputeSignature(std::string_view s,
                                StringSignature* sig) const {
    (void)s;
    (void)sig;
    return false;
  }

  /// Lower bound on Distance(a, b) from the strings' signatures alone, in
  /// O(1). Only meaningful when ComputeSignature returns true; must never
  /// exceed the true distance, and must be 0 for equal strings (equal
  /// strings have equal signatures, but not conversely -- implementations
  /// may not assume signature equality implies string equality).
  virtual double SignatureLowerBound(const StringSignature& a,
                                     const StringSignature& b) const {
    (void)a;
    (void)b;
    return 0.0;
  }

  /// True when the measure satisfies the triangle inequality.
  virtual bool is_strong() const = 0;

  /// Registry name, e.g. "levenshtein".
  virtual std::string name() const = 0;
};

using StringMeasurePtr = std::shared_ptr<const StringMeasure>;

// ---------------------------------------------------------------------------
// Edit-distance family
// ---------------------------------------------------------------------------

/// Unit-cost Levenshtein edit distance. Strong (it is a metric).
class LevenshteinMeasure : public StringMeasure {
 public:
  double Distance(std::string_view a, std::string_view b) const override;
  double BoundedDistance(std::string_view a, std::string_view b,
                         double bound) const override;
  double DistanceLowerBound(std::string_view a,
                            std::string_view b) const override;
  bool ComputeSignature(std::string_view s,
                        StringSignature* sig) const override;
  double SignatureLowerBound(const StringSignature& a,
                             const StringSignature& b) const override;
  bool is_strong() const override { return true; }
  std::string name() const override { return "levenshtein"; }
};

/// Damerau-Levenshtein (restricted transpositions). Strong.
class DamerauLevenshteinMeasure : public StringMeasure {
 public:
  double Distance(std::string_view a, std::string_view b) const override;
  double DistanceLowerBound(std::string_view a,
                            std::string_view b) const override;
  bool ComputeSignature(std::string_view s,
                        StringSignature* sig) const override;
  double SignatureLowerBound(const StringSignature& a,
                             const StringSignature& b) const override;
  bool is_strong() const override { return true; }
  std::string name() const override { return "damerau"; }
};

/// Case-insensitive Levenshtein: strings are lowercased before comparison.
/// Strong (pseudo-metric: distinct strings can be at distance 0).
class CaseInsensitiveLevenshteinMeasure : public StringMeasure {
 public:
  double Distance(std::string_view a, std::string_view b) const override;
  double DistanceLowerBound(std::string_view a,
                            std::string_view b) const override;
  bool ComputeSignature(std::string_view s,
                        StringSignature* sig) const override;
  double SignatureLowerBound(const StringSignature& a,
                             const StringSignature& b) const override;
  bool is_strong() const override { return true; }
  std::string name() const override { return "ci-levenshtein"; }
};

// ---------------------------------------------------------------------------
// Jaro family [9]
// ---------------------------------------------------------------------------

/// Jaro similarity in [0,1] (1 = identical).
double JaroSimilarity(std::string_view a, std::string_view b);

/// Jaro-Winkler similarity in [0,1] with the standard 0.1 prefix boost.
double JaroWinklerSimilarity(std::string_view a, std::string_view b);

/// Distance (1 - Jaro) * scale. Not strong.
class JaroMeasure : public StringMeasure {
 public:
  explicit JaroMeasure(double scale = 10.0) : scale_(scale) {}
  double Distance(std::string_view a, std::string_view b) const override;
  bool is_strong() const override { return false; }
  std::string name() const override { return "jaro"; }

 private:
  double scale_;
};

/// Distance (1 - JaroWinkler) * scale. Not strong.
class JaroWinklerMeasure : public StringMeasure {
 public:
  explicit JaroWinklerMeasure(double scale = 10.0) : scale_(scale) {}
  double Distance(std::string_view a, std::string_view b) const override;
  bool is_strong() const override { return false; }
  std::string name() const override { return "jaro-winkler"; }

 private:
  double scale_;
};

// ---------------------------------------------------------------------------
// Token-based measures [5, 12]
// ---------------------------------------------------------------------------

/// Monge-Elkan: average over tokens of `a` of the best inner similarity to a
/// token of `b`, symmetrized by taking the max of both directions. Inner
/// similarity is Jaro-Winkler. Distance = (1 - ME) * scale. Not strong.
class MongeElkanMeasure : public StringMeasure {
 public:
  explicit MongeElkanMeasure(double scale = 10.0) : scale_(scale) {}
  double Distance(std::string_view a, std::string_view b) const override;
  bool is_strong() const override { return false; }
  std::string name() const override { return "monge-elkan"; }

 private:
  double scale_;
};

/// Jaccard distance over word-token sets: (1 - |A∩B|/|A∪B|) * scale.
/// Strong (Jaccard distance is a metric on sets).
class JaccardMeasure : public StringMeasure {
 public:
  explicit JaccardMeasure(double scale = 10.0) : scale_(scale) {}
  double Distance(std::string_view a, std::string_view b) const override;
  bool is_strong() const override { return true; }
  std::string name() const override { return "jaccard"; }

 private:
  double scale_;
};

/// Cosine distance over q-gram count vectors: (1 - cos) * scale. Not strong
/// (cosine distance violates the triangle inequality in general).
class QGramCosineMeasure : public StringMeasure {
 public:
  explicit QGramCosineMeasure(int q = 3, double scale = 10.0)
      : q_(q), scale_(scale) {}
  double Distance(std::string_view a, std::string_view b) const override;
  bool is_strong() const override { return false; }
  std::string name() const override { return "qgram-cosine"; }

 private:
  int q_;
  double scale_;
};

// ---------------------------------------------------------------------------
// Rule-based person-name measure (the paper's "rule-based similarity where
// a set of domain-specific rules are used")
// ---------------------------------------------------------------------------

/// Domain-specific distance for person names such as "J. Ullman" /
/// "Jeffrey D. Ullman" / "GianLuigi Ferrari":
///   0.0  identical after normalization
///   0.5  same last name + given names compatible as initials/prefixes,
///        or identical ignoring spacing ("Gian Luigi" vs "GianLuigi")
///   2.0  same last name + given-name initials match
///   3.5  same last name only
///   else Levenshtein distance capped below by 4
/// Not strong.
class PersonNameMeasure : public StringMeasure {
 public:
  double Distance(std::string_view a, std::string_view b) const override;
  bool is_strong() const override { return false; }
  std::string name() const override { return "person-name"; }
};

// ---------------------------------------------------------------------------
// Combinators
// ---------------------------------------------------------------------------

/// Domain rule: very short strings (acronyms -- "VLDB", "ICDE", "KDD")
/// should never fuzzy-match, because a 3-edit threshold rewrites one
/// acronym into another. Wraps an inner measure and raises the distance of
/// any unequal pair involving a string shorter than `min_length` to at
/// least `floor`. Not strong even if the inner measure is (the floor can
/// break the triangle inequality through a long middle string).
class MinLengthGuardMeasure : public StringMeasure {
 public:
  explicit MinLengthGuardMeasure(StringMeasurePtr inner,
                                 size_t min_length = 6, double floor = 4.0)
      : inner_(std::move(inner)),
        min_length_(min_length),
        floor_(floor) {}

  double Distance(std::string_view a, std::string_view b) const override;
  double BoundedDistance(std::string_view a, std::string_view b,
                         double bound) const override;
  double DistanceLowerBound(std::string_view a,
                            std::string_view b) const override;
  bool ComputeSignature(std::string_view s,
                        StringSignature* sig) const override;
  double SignatureLowerBound(const StringSignature& a,
                             const StringSignature& b) const override;
  bool is_strong() const override { return false; }
  std::string name() const override {
    return "guarded-" + inner_->name();
  }

 private:
  StringMeasurePtr inner_;
  size_t min_length_;
  double floor_;
};

namespace internal {

/// Two-row dynamic-programming Levenshtein -- the reference implementation.
/// O(|a| * |b|) time. Exposed for property tests against the bit-parallel
/// path.
int LevenshteinDp(std::string_view a, std::string_view b);

/// Myers' bit-parallel Levenshtein (Hyyrö's formulation): the DP column is
/// packed into two 64-bit delta bitvectors, so one iteration per character
/// of the longer string replaces an inner loop over the shorter one --
/// O(|longer|) word operations total. Requires min(|a|, |b|) <= 64; equal
/// to LevenshteinDp on that domain (property-tested).
int LevenshteinMyers64(std::string_view a, std::string_view b);

/// Blocked (multi-word) Myers: the DP column spans ceil(|shorter| / 64)
/// word blocks with the horizontal deltas and the add carry chained
/// across block boundaries, so strings past the single-word fast path
/// still run at O(|longer| * |shorter| / 64) word operations instead of
/// falling back to the scalar DP. Any lengths; equal to LevenshteinDp
/// (property-tested).
int LevenshteinMyersBlocked(std::string_view a, std::string_view b);

}  // namespace internal

}  // namespace toss::sim

#endif  // TOSS_SIM_STRING_MEASURE_H_
