#include "sim/node_measure.h"

#include <algorithm>
#include <limits>

namespace toss::sim {

double NodeDistance(const std::vector<std::string>& a,
                    const std::vector<std::string>& b,
                    const StringMeasure& measure, bool assume_zero_within) {
  return BoundedNodeDistance(a, b, measure,
                             std::numeric_limits<double>::infinity(),
                             assume_zero_within);
}

double BoundedNodeDistance(const std::vector<std::string>& a,
                           const std::vector<std::string>& b,
                           const StringMeasure& measure, double bound,
                           bool assume_zero_within) {
  if (a.empty() || b.empty()) {
    return std::numeric_limits<double>::infinity();
  }
  if (measure.is_strong() && assume_zero_within) {
    // Lemma 1: all cross pairs are equidistant.
    return measure.BoundedDistance(a.front(), b.front(), bound);
  }
  double best = std::numeric_limits<double>::infinity();
  for (const auto& x : a) {
    for (const auto& y : b) {
      double effective_bound = std::min(bound, best);
      double d = measure.BoundedDistance(x, y, effective_bound);
      best = std::min(best, d);
      if (best == 0.0) return 0.0;
    }
  }
  return best;
}

}  // namespace toss::sim
