// Interoperation constraints (paper Def. 4).
//
// Constraints relate terms of *different* hierarchies being integrated:
//   x:i <= y:j   -- term x of hierarchy i is below term y of hierarchy j
//   x:i != y:j   -- the two terms must NOT be identified by the fusion
// Equality x:i = y:j is expressed as the two <= constraints (the paper's
// convention); the Eq() helper expands it.

#ifndef TOSS_ONTOLOGY_CONSTRAINTS_H_
#define TOSS_ONTOLOGY_CONSTRAINTS_H_

#include <string>
#include <vector>

namespace toss::ontology {

struct InteropConstraint {
  enum class Kind { kLeq, kNeq };

  Kind kind = Kind::kLeq;
  std::string left_term;
  int left_hierarchy = 0;
  std::string right_term;
  int right_hierarchy = 0;
};

/// x:i <= y:j
inline InteropConstraint Leq(std::string x, int i, std::string y, int j) {
  return {InteropConstraint::Kind::kLeq, std::move(x), i, std::move(y), j};
}

/// x:i != y:j
inline InteropConstraint Neq(std::string x, int i, std::string y, int j) {
  return {InteropConstraint::Kind::kNeq, std::move(x), i, std::move(y), j};
}

/// x:i = y:j, expanded into { x:i <= y:j, y:j <= x:i }.
inline std::vector<InteropConstraint> Eq(const std::string& x, int i,
                                         const std::string& y, int j) {
  return {Leq(x, i, y, j), Leq(y, j, x, i)};
}

/// Appends all of `cs` to `out` (convenience for building constraint sets
/// from Eq()).
inline void Append(std::vector<InteropConstraint>* out,
                   const std::vector<InteropConstraint>& cs) {
  out->insert(out->end(), cs.begin(), cs.end());
}

}  // namespace toss::ontology

#endif  // TOSS_ONTOLOGY_CONSTRAINTS_H_
