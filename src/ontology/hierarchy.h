// Hierarchies (paper Section 4.1).
//
// A hierarchy for a partially ordered set (S, <=) is its Hasse diagram: a
// DAG over S with a minimal edge set such that a path u ~> v exists iff
// u <= v. Nodes here carry *sets* of terms, because both fusion (terms
// forced equal by constraints) and similarity enhancement (terms grouped by
// closeness) produce multi-term nodes.
//
// Edge direction: an edge (u, v) means u <= v ("u is below v"); for the isa
// hierarchy that reads "u isa v", for partof "u partof v".

#ifndef TOSS_ONTOLOGY_HIERARCHY_H_
#define TOSS_ONTOLOGY_HIERARCHY_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/result.h"

namespace toss::ontology {

using HNodeId = uint32_t;
inline constexpr HNodeId kInvalidHNode = 0xFFFFFFFFu;

/// DAG of term-set nodes with reachability, closure, and reduction support.
///
/// Mutation invalidates the cached transitive closure; reachability queries
/// rebuild it lazily.
class Hierarchy {
 public:
  Hierarchy() = default;

  /// Adds a node containing `terms` (deduplicated, order preserved).
  /// Terms may appear in multiple nodes (Def. 8 allows overlapping SEO
  /// nodes).
  HNodeId AddNode(std::vector<std::string> terms);

  /// Returns the node containing exactly/at least `term`, creating a fresh
  /// singleton node when the term is unknown.
  HNodeId EnsureTerm(const std::string& term);

  /// Adds `term` to an existing node's term set (synonym registration).
  /// No-op when already present in that node.
  Status AddTermToNode(HNodeId id, const std::string& term);

  /// Adds the covering edge `lower <= upper`. Self-edges are rejected;
  /// duplicate edges are ignored.
  Status AddEdge(HNodeId lower, HNodeId upper);

  /// Convenience: EnsureTerm on both sides then AddEdge.
  Status AddTermEdge(const std::string& lower, const std::string& upper);

  size_t node_count() const { return nodes_.size(); }
  size_t edge_count() const;

  const std::vector<std::string>& terms(HNodeId id) const {
    return nodes_[id];
  }

  /// Display form of a node: "{a, b, c}".
  std::string NodeLabel(HNodeId id) const;

  const std::vector<HNodeId>& parents(HNodeId id) const {
    return parents_[id];
  }
  const std::vector<HNodeId>& children(HNodeId id) const {
    return children_[id];
  }

  /// All nodes whose term set contains `term`.
  std::vector<HNodeId> NodesContaining(const std::string& term) const;

  /// First node containing `term`, or kInvalidHNode.
  HNodeId FindTerm(const std::string& term) const;

  /// All distinct terms in the hierarchy.
  std::vector<std::string> AllTerms() const;

  /// True iff a <= b, i.e. a == b or a path a ~> b exists.
  bool Leq(HNodeId a, HNodeId b) const;

  /// Builds the reachability cache now. Concurrent Leq() readers are only
  /// safe after this has been called (the cache is otherwise built lazily
  /// on first use, which races); call it before sharing a frozen hierarchy
  /// across threads.
  void EnsureReachabilityCache() const { EnsureClosure(); }

  /// Term-level Leq: true iff some node containing `a` is <= some node
  /// containing `b`.
  bool LeqTerms(const std::string& a, const std::string& b) const;

  /// Words per packed closure row (builds the cache). SEA's order rebuild
  /// works directly on these rows instead of per-pair Leq calls.
  size_t ClosureWordCount() const {
    EnsureClosure();
    return closure_words_;
  }

  /// Packed downward-closure row of `id`: bit a is set iff a <= id
  /// (including a == id). ClosureWordCount() words long; invalidated by
  /// the next mutation. Builds the cache on first use.
  const uint64_t* ClosureRow(HNodeId id) const {
    EnsureClosure();
    return closure_.data() + static_cast<size_t>(id) * closure_words_;
  }

  /// Upward closure of `id` (everything >= id, including id).
  std::vector<HNodeId> Above(HNodeId id) const;

  /// Downward closure of `id` (everything <= id, including id).
  std::vector<HNodeId> Below(HNodeId id) const;

  /// True when the edge relation has no directed cycle.
  bool IsAcyclic() const;

  /// Removes edges implied by transitivity, restoring the Hasse property.
  /// Requires acyclicity.
  Status TransitiveReduction();

  /// True when no edge is implied by a longer path (Hasse minimality).
  bool IsTransitivelyReduced() const;

  /// Structural equality after canonical node ordering (used by tests for
  /// Theorem 1's equivalence-up-to-isomorphism).
  bool EquivalentTo(const Hierarchy& other) const;

 private:
  void InvalidateClosure() const { closure_valid_ = false; }
  void EnsureClosure() const;

  std::vector<std::vector<std::string>> nodes_;
  std::vector<std::vector<HNodeId>> parents_;   // adjacency: id -> uppers
  std::vector<std::vector<HNodeId>> children_;  // reverse adjacency
  std::map<std::string, std::vector<HNodeId>> term_index_;

  // Cached transitive closure as bit matrix (row = node, bit = reachable).
  mutable bool closure_valid_ = false;
  mutable size_t closure_words_ = 0;
  mutable std::vector<uint64_t> closure_;
};

}  // namespace toss::ontology

#endif  // TOSS_ONTOLOGY_HIERARCHY_H_
