// Text (de)serialization of hierarchies and ontologies, so fused/enhanced
// ontologies can be precomputed once and shipped alongside a database
// (the paper's Section 3: "After SEO is precomputed, ...").
//
// Hierarchy block format (within a surrounding document):
//   node <id>: term | term | ...
//   edge <lower> -> <upper>
// Node ids must be dense and ascending from 0.
//
// Ontology format: one `relation <name>` line opening each hierarchy block:
//   relation isa
//   node 0: paper | article
//   edge 0 -> 1
//   relation partof
//   ...

#ifndef TOSS_ONTOLOGY_HIERARCHY_IO_H_
#define TOSS_ONTOLOGY_HIERARCHY_IO_H_

#include <string>

#include "common/result.h"
#include "ontology/hierarchy.h"
#include "ontology/ontology.h"

namespace toss::ontology {

/// Serializes one hierarchy as node/edge lines.
std::string FormatHierarchy(const Hierarchy& h);

/// Parses a hierarchy from node/edge lines (other directives rejected).
Result<Hierarchy> ParseHierarchyText(std::string_view text);

/// Serializes a whole ontology with `relation` section headers.
std::string FormatOntology(const Ontology& onto);

/// Parses an ontology (relation sections of node/edge lines).
Result<Ontology> ParseOntologyText(std::string_view text);

/// File convenience wrappers.
Status SaveOntology(const Ontology& onto, const std::string& path);
Result<Ontology> LoadOntology(const std::string& path);

}  // namespace toss::ontology

#endif  // TOSS_ONTOLOGY_HIERARCHY_IO_H_
