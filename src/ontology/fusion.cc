#include "ontology/fusion.h"

#include <algorithm>
#include <map>

namespace toss::ontology {

namespace {

// Iterative Tarjan SCC over a flat adjacency list. Returns the component id
// of each vertex; component ids are in reverse topological order of the
// condensation (standard Tarjan property).
class TarjanScc {
 public:
  explicit TarjanScc(const std::vector<std::vector<int>>& adj)
      : adj_(adj),
        n_(static_cast<int>(adj.size())),
        index_(n_, -1),
        lowlink_(n_, 0),
        on_stack_(n_, false),
        component_(n_, -1) {}

  int Run() {
    for (int v = 0; v < n_; ++v) {
      if (index_[v] == -1) Visit(v);
    }
    return num_components_;
  }

  const std::vector<int>& component() const { return component_; }

 private:
  struct Frame {
    int v;
    size_t edge = 0;
  };

  void Visit(int root) {
    std::vector<Frame> frames{{root}};
    Push(root);
    while (!frames.empty()) {
      Frame& f = frames.back();
      if (f.edge < adj_[f.v].size()) {
        int w = adj_[f.v][f.edge++];
        if (index_[w] == -1) {
          Push(w);
          frames.push_back({w});
        } else if (on_stack_[w]) {
          lowlink_[f.v] = std::min(lowlink_[f.v], index_[w]);
        }
      } else {
        if (lowlink_[f.v] == index_[f.v]) {
          // f.v is an SCC root: pop its component.
          for (;;) {
            int w = stack_.back();
            stack_.pop_back();
            on_stack_[w] = false;
            component_[w] = num_components_;
            if (w == f.v) break;
          }
          ++num_components_;
        }
        int finished = f.v;
        frames.pop_back();
        if (!frames.empty()) {
          lowlink_[frames.back().v] =
              std::min(lowlink_[frames.back().v], lowlink_[finished]);
        }
      }
    }
  }

  void Push(int v) {
    index_[v] = lowlink_[v] = next_index_++;
    stack_.push_back(v);
    on_stack_[v] = true;
  }

  const std::vector<std::vector<int>>& adj_;
  int n_;
  std::vector<int> index_, lowlink_;
  std::vector<bool> on_stack_;
  std::vector<int> component_;
  std::vector<int> stack_;
  int next_index_ = 0;
  int num_components_ = 0;
};

}  // namespace

Result<FusionResult> Fuse(const std::vector<const Hierarchy*>& hierarchies,
                          const std::vector<InteropConstraint>& constraints) {
  if (hierarchies.empty()) {
    return Status::InvalidArgument("Fuse: no hierarchies given");
  }
  for (size_t i = 0; i < hierarchies.size(); ++i) {
    if (hierarchies[i] == nullptr) {
      return Status::InvalidArgument("Fuse: null hierarchy pointer");
    }
    if (!hierarchies[i]->IsAcyclic()) {
      return Status::Inconsistent("Fuse: input hierarchy " +
                                  std::to_string(i) + " is cyclic");
    }
  }

  // Vertex numbering: (hierarchy i, node v) -> base[i] + v.
  std::vector<int> base(hierarchies.size() + 1, 0);
  for (size_t i = 0; i < hierarchies.size(); ++i) {
    base[i + 1] = base[i] + static_cast<int>(hierarchies[i]->node_count());
  }
  const int total = base.back();

  // Resolves a constraint endpoint to its graph vertex.
  auto resolve = [&](const std::string& term, int hi) -> Result<int> {
    if (hi < 0 || hi >= static_cast<int>(hierarchies.size())) {
      return Status::InvalidArgument("constraint references hierarchy " +
                                     std::to_string(hi) + " which is absent");
    }
    HNodeId node = hierarchies[hi]->FindTerm(term);
    if (node == kInvalidHNode) {
      return Status::InvalidArgument("constraint term '" + term +
                                     "' not found in hierarchy " +
                                     std::to_string(hi));
    }
    return base[hi] + static_cast<int>(node);
  };

  // Hierarchy graph (Def. 6): Hasse edges plus <= constraint edges, directed
  // lower -> upper.
  std::vector<std::vector<int>> adj(total);
  for (size_t i = 0; i < hierarchies.size(); ++i) {
    const Hierarchy& h = *hierarchies[i];
    for (HNodeId v = 0; v < h.node_count(); ++v) {
      for (HNodeId p : h.parents(v)) {
        adj[base[i] + v].push_back(base[i] + p);
      }
    }
  }
  for (const auto& c : constraints) {
    if (c.kind != InteropConstraint::Kind::kLeq) continue;
    TOSS_ASSIGN_OR_RETURN(int from, resolve(c.left_term, c.left_hierarchy));
    TOSS_ASSIGN_OR_RETURN(int to, resolve(c.right_term, c.right_hierarchy));
    adj[from].push_back(to);
  }

  TarjanScc scc(adj);
  const int num_components = scc.Run();
  const std::vector<int>& comp = scc.component();

  // Def. 5 requires each psi_i to be injective: two distinct nodes of one
  // hierarchy in the same SCC would be forced equal, contradicting the input
  // partial order (a <= b and b <= a with a != b).
  {
    std::map<std::pair<int, int>, int> seen;  // (hierarchy, comp) -> node
    for (size_t i = 0; i < hierarchies.size(); ++i) {
      for (HNodeId v = 0; v < hierarchies[i]->node_count(); ++v) {
        int c = comp[base[i] + v];
        auto [it, inserted] =
            seen.insert({{static_cast<int>(i), c}, static_cast<int>(v)});
        if (!inserted) {
          return Status::Inconsistent(
              "Fuse: constraints force nodes " +
              hierarchies[i]->NodeLabel(static_cast<HNodeId>(it->second)) +
              " and " + hierarchies[i]->NodeLabel(v) + " of hierarchy " +
              std::to_string(i) + " to be equal");
        }
      }
    }
  }

  // != constraints must separate components.
  for (const auto& c : constraints) {
    if (c.kind != InteropConstraint::Kind::kNeq) continue;
    TOSS_ASSIGN_OR_RETURN(int left, resolve(c.left_term, c.left_hierarchy));
    TOSS_ASSIGN_OR_RETURN(int right, resolve(c.right_term, c.right_hierarchy));
    if (comp[left] == comp[right]) {
      return Status::Inconsistent("Fuse: != constraint violated: " +
                                  c.left_term + ":" +
                                  std::to_string(c.left_hierarchy) + " vs " +
                                  c.right_term + ":" +
                                  std::to_string(c.right_hierarchy));
    }
  }

  // Build the fused hierarchy: one node per SCC, terms = union over members.
  FusionResult result;
  std::vector<std::vector<std::string>> comp_terms(num_components);
  for (size_t i = 0; i < hierarchies.size(); ++i) {
    for (HNodeId v = 0; v < hierarchies[i]->node_count(); ++v) {
      auto& terms = comp_terms[comp[base[i] + v]];
      for (const auto& t : hierarchies[i]->terms(v)) terms.push_back(t);
    }
  }
  std::vector<HNodeId> comp_to_node(num_components);
  for (int c = 0; c < num_components; ++c) {
    comp_to_node[c] = result.fused.AddNode(std::move(comp_terms[c]));
  }

  // Condensation edges (deduplicated by Hierarchy::AddEdge).
  for (int v = 0; v < total; ++v) {
    for (int w : adj[v]) {
      if (comp[v] != comp[w]) {
        TOSS_RETURN_NOT_OK(
            result.fused.AddEdge(comp_to_node[comp[v]], comp_to_node[comp[w]]));
      }
    }
  }

  // The condensation of any digraph is acyclic, so reduction must succeed.
  TOSS_RETURN_NOT_OK(result.fused.TransitiveReduction());

  result.witness.resize(hierarchies.size());
  for (size_t i = 0; i < hierarchies.size(); ++i) {
    result.witness[i].resize(hierarchies[i]->node_count());
    for (HNodeId v = 0; v < hierarchies[i]->node_count(); ++v) {
      result.witness[i][v] = comp_to_node[comp[base[i] + v]];
    }
  }
  return result;
}

}  // namespace toss::ontology
