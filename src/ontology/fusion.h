// Canonical fusion of hierarchies under interoperation constraints
// (paper Defs. 5-6, following the graph-merge construction of [3, 2]).
//
// The hierarchy graph has one vertex per (hierarchy, node) pair; its edges
// are the input Hasse edges plus one edge per <= constraint. The *canonical*
// integration condenses the graph's strongly connected components -- exactly
// the node groups forced equal by the constraints -- into fused nodes, then
// transitively reduces the resulting DAG.
//
// Integration fails (Status::Inconsistent) when:
//  * an SCC contains two distinct nodes of the same input hierarchy
//    (the witness mappings of Def. 5 must be injective), or
//  * a != constraint's endpoints land in the same SCC.

#ifndef TOSS_ONTOLOGY_FUSION_H_
#define TOSS_ONTOLOGY_FUSION_H_

#include <vector>

#include "common/result.h"
#include "ontology/constraints.h"
#include "ontology/hierarchy.h"

namespace toss::ontology {

/// A witness to integrability (Def. 5): the fused hierarchy plus the
/// injections psi_i from each input hierarchy's nodes into it.
struct FusionResult {
  Hierarchy fused;
  /// witness[i][v] = fused node that input hierarchy i's node v maps to.
  std::vector<std::vector<HNodeId>> witness;
};

/// Computes the canonical fusion of `hierarchies` under `constraints`.
/// Constraint terms must exist in the hierarchy their index names.
Result<FusionResult> Fuse(const std::vector<const Hierarchy*>& hierarchies,
                          const std::vector<InteropConstraint>& constraints);

}  // namespace toss::ontology

#endif  // TOSS_ONTOLOGY_FUSION_H_
