#include "ontology/hierarchy.h"

#include <algorithm>
#include <set>

namespace toss::ontology {

HNodeId Hierarchy::AddNode(std::vector<std::string> terms) {
  // Deduplicate while preserving first-occurrence order.
  std::vector<std::string> unique;
  std::set<std::string> seen;
  for (auto& t : terms) {
    if (seen.insert(t).second) unique.push_back(std::move(t));
  }
  HNodeId id = static_cast<HNodeId>(nodes_.size());
  nodes_.push_back(std::move(unique));
  parents_.emplace_back();
  children_.emplace_back();
  for (const auto& t : nodes_[id]) term_index_[t].push_back(id);
  InvalidateClosure();
  return id;
}

HNodeId Hierarchy::EnsureTerm(const std::string& term) {
  HNodeId id = FindTerm(term);
  if (id != kInvalidHNode) return id;
  return AddNode({term});
}

Status Hierarchy::AddTermToNode(HNodeId id, const std::string& term) {
  if (id >= nodes_.size()) {
    return Status::InvalidArgument("hierarchy node id out of range");
  }
  auto& terms = nodes_[id];
  if (std::find(terms.begin(), terms.end(), term) != terms.end()) {
    return Status::OK();
  }
  terms.push_back(term);
  term_index_[term].push_back(id);
  return Status::OK();
}

Status Hierarchy::AddEdge(HNodeId lower, HNodeId upper) {
  if (lower >= nodes_.size() || upper >= nodes_.size()) {
    return Status::InvalidArgument("hierarchy node id out of range");
  }
  if (lower == upper) {
    return Status::InvalidArgument("self edge in hierarchy: " +
                                   NodeLabel(lower));
  }
  auto& ps = parents_[lower];
  if (std::find(ps.begin(), ps.end(), upper) != ps.end()) {
    return Status::OK();  // duplicate edges are harmless
  }
  ps.push_back(upper);
  children_[upper].push_back(lower);
  InvalidateClosure();
  return Status::OK();
}

Status Hierarchy::AddTermEdge(const std::string& lower,
                              const std::string& upper) {
  HNodeId lo = EnsureTerm(lower);
  HNodeId up = EnsureTerm(upper);
  if (lo == up) {
    // Both terms landed in the same node (synonyms); ordering within a node
    // is trivially satisfied, not an error.
    return Status::OK();
  }
  return AddEdge(lo, up);
}

size_t Hierarchy::edge_count() const {
  size_t n = 0;
  for (const auto& ps : parents_) n += ps.size();
  return n;
}

std::string Hierarchy::NodeLabel(HNodeId id) const {
  std::string out = "{";
  for (size_t i = 0; i < nodes_[id].size(); ++i) {
    if (i > 0) out += ", ";
    out += nodes_[id][i];
  }
  out += "}";
  return out;
}

std::vector<HNodeId> Hierarchy::NodesContaining(
    const std::string& term) const {
  auto it = term_index_.find(term);
  if (it == term_index_.end()) return {};
  return it->second;
}

HNodeId Hierarchy::FindTerm(const std::string& term) const {
  auto it = term_index_.find(term);
  if (it == term_index_.end() || it->second.empty()) return kInvalidHNode;
  return it->second.front();
}

std::vector<std::string> Hierarchy::AllTerms() const {
  std::vector<std::string> out;
  out.reserve(term_index_.size());
  for (const auto& [term, ids] : term_index_) out.push_back(term);
  return out;
}

void Hierarchy::EnsureClosure() const {
  if (closure_valid_) return;
  const size_t n = nodes_.size();
  closure_words_ = (n + 63) / 64;
  closure_.assign(n * closure_words_, 0);
  auto set_bit = [&](size_t row, size_t col) {
    closure_[row * closure_words_ + col / 64] |= uint64_t{1} << (col % 64);
  };
  auto or_row = [&](size_t dst, size_t src) {
    for (size_t w = 0; w < closure_words_; ++w) {
      closure_[dst * closure_words_ + w] |= closure_[src * closure_words_ + w];
    }
  };
  // Reverse-topological accumulation when acyclic; fall back to iterating
  // to a fixed point when a cycle is present (closure is still well-defined).
  std::vector<int> indeg(n, 0);  // in "upward" orientation: count children
  for (size_t v = 0; v < n; ++v) {
    indeg[v] = static_cast<int>(children_[v].size());
  }
  std::vector<HNodeId> order;
  order.reserve(n);
  std::vector<HNodeId> queue;
  for (size_t v = 0; v < n; ++v) {
    if (indeg[v] == 0) queue.push_back(static_cast<HNodeId>(v));
  }
  while (!queue.empty()) {
    HNodeId v = queue.back();
    queue.pop_back();
    order.push_back(v);
    for (HNodeId p : parents_[v]) {
      if (--indeg[p] == 0) queue.push_back(p);
    }
  }
  for (size_t v = 0; v < n; ++v) set_bit(v, v);
  if (order.size() == n) {
    // Acyclic: `order` lists every node after all of its children, so one
    // pass folding children rows upward computes each node's downward
    // closure (row b holds everything <= b; Leq reads bit a of row b).
    for (HNodeId v : order) {
      for (HNodeId c : children_[v]) or_row(v, c);
    }
  } else {
    // Cyclic: fixed-point iteration on downward closure.
    bool changed = true;
    while (changed) {
      changed = false;
      for (size_t v = 0; v < n; ++v) {
        for (HNodeId c : children_[v]) {
          for (size_t w = 0; w < closure_words_; ++w) {
            uint64_t before = closure_[v * closure_words_ + w];
            uint64_t merged = before | closure_[c * closure_words_ + w];
            if (merged != before) {
              closure_[v * closure_words_ + w] = merged;
              changed = true;
            }
          }
        }
      }
    }
  }
  closure_valid_ = true;
}

bool Hierarchy::Leq(HNodeId a, HNodeId b) const {
  if (a == b) return true;
  EnsureClosure();
  // Rows store downward closures: bit a of row b <=> a <= b.
  return (closure_[b * closure_words_ + a / 64] >> (a % 64)) & 1;
}

bool Hierarchy::LeqTerms(const std::string& a, const std::string& b) const {
  for (HNodeId na : NodesContaining(a)) {
    for (HNodeId nb : NodesContaining(b)) {
      if (Leq(na, nb)) return true;
    }
  }
  return false;
}

std::vector<HNodeId> Hierarchy::Above(HNodeId id) const {
  std::vector<HNodeId> out;
  for (HNodeId v = 0; v < nodes_.size(); ++v) {
    if (Leq(id, v)) out.push_back(v);
  }
  return out;
}

std::vector<HNodeId> Hierarchy::Below(HNodeId id) const {
  std::vector<HNodeId> out;
  for (HNodeId v = 0; v < nodes_.size(); ++v) {
    if (Leq(v, id)) out.push_back(v);
  }
  return out;
}

bool Hierarchy::IsAcyclic() const {
  const size_t n = nodes_.size();
  std::vector<int> indeg(n, 0);
  for (size_t v = 0; v < n; ++v) {
    indeg[v] = static_cast<int>(children_[v].size());
  }
  std::vector<HNodeId> queue;
  for (size_t v = 0; v < n; ++v) {
    if (indeg[v] == 0) queue.push_back(static_cast<HNodeId>(v));
  }
  size_t visited = 0;
  while (!queue.empty()) {
    HNodeId v = queue.back();
    queue.pop_back();
    ++visited;
    for (HNodeId p : parents_[v]) {
      if (--indeg[p] == 0) queue.push_back(p);
    }
  }
  return visited == n;
}

Status Hierarchy::TransitiveReduction() {
  if (!IsAcyclic()) {
    return Status::Inconsistent("transitive reduction requires a DAG");
  }
  // Edge (u, p) is redundant iff some other parent path already reaches p.
  EnsureClosure();
  for (HNodeId u = 0; u < nodes_.size(); ++u) {
    std::vector<HNodeId> keep;
    for (HNodeId p : parents_[u]) {
      bool redundant = false;
      for (HNodeId q : parents_[u]) {
        if (q != p && Leq(q, p)) {
          redundant = true;
          break;
        }
      }
      if (!redundant) keep.push_back(p);
    }
    if (keep.size() != parents_[u].size()) {
      parents_[u] = std::move(keep);
    }
  }
  // Rebuild children lists from the pruned parent lists.
  for (auto& cs : children_) cs.clear();
  for (HNodeId u = 0; u < nodes_.size(); ++u) {
    for (HNodeId p : parents_[u]) children_[p].push_back(u);
  }
  // Note: the closure itself is unchanged by reduction.
  return Status::OK();
}

bool Hierarchy::IsTransitivelyReduced() const {
  for (HNodeId u = 0; u < nodes_.size(); ++u) {
    for (HNodeId p : parents_[u]) {
      for (HNodeId q : parents_[u]) {
        if (q != p && Leq(q, p)) return false;
      }
    }
  }
  return true;
}

bool Hierarchy::EquivalentTo(const Hierarchy& other) const {
  if (nodes_.size() != other.nodes_.size()) return false;
  // Canonical key per node: sorted term set. Multi-node term collisions with
  // identical term sets are resolved by sorted edge keys; for the hierarchies
  // arising here (distinct term sets per node) the key is unique.
  auto canon = [](const Hierarchy& h) {
    std::vector<std::pair<std::vector<std::string>, HNodeId>> keys;
    for (HNodeId v = 0; v < h.nodes_.size(); ++v) {
      auto sorted = h.nodes_[v];
      std::sort(sorted.begin(), sorted.end());
      keys.push_back({std::move(sorted), v});
    }
    std::sort(keys.begin(), keys.end());
    return keys;
  };
  auto ka = canon(*this);
  auto kb = canon(other);
  std::vector<HNodeId> map_a_to_b(nodes_.size());
  for (size_t i = 0; i < ka.size(); ++i) {
    if (ka[i].first != kb[i].first) return false;
    map_a_to_b[ka[i].second] = kb[i].second;
  }
  // Compare edge sets under the mapping.
  std::set<std::pair<HNodeId, HNodeId>> ea, eb;
  for (HNodeId v = 0; v < nodes_.size(); ++v) {
    for (HNodeId p : parents_[v]) ea.insert({map_a_to_b[v], map_a_to_b[p]});
  }
  for (HNodeId v = 0; v < other.nodes_.size(); ++v) {
    for (HNodeId p : other.parents_[v]) eb.insert({v, p});
  }
  return ea == eb;
}

}  // namespace toss::ontology
