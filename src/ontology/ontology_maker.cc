#include "ontology/ontology_maker.h"

#include <algorithm>
#include <set>

#include "common/string_util.h"

namespace toss::ontology {

namespace {

/// Adds `lower <= upper` unless it would create a cycle (the reverse order
/// already holds). Returns true when the edge was added.
bool AddEdgeIfAcyclic(Hierarchy* h, const std::string& lower,
                      const std::string& upper) {
  if (lower == upper) return false;
  HNodeId lo = h->EnsureTerm(lower);
  HNodeId up = h->EnsureTerm(upper);
  if (lo == up) return false;
  if (h->Leq(up, lo)) return false;  // would close a cycle
  return h->AddEdge(lo, up).ok();
}

/// Walks lexicon ancestor chains from `term`, adding each covering edge.
void AddLexiconChain(
    Hierarchy* h, const lexicon::Lexicon& lex, const std::string& term,
    std::vector<std::string> (lexicon::Lexicon::*parents_of)(
        const std::string&) const,
    bool transitive) {
  std::set<std::string> visited;
  std::vector<std::string> frontier{term};
  while (!frontier.empty()) {
    std::vector<std::string> next;
    for (const auto& t : frontier) {
      if (!visited.insert(t).second) continue;
      for (const auto& parent : (lex.*parents_of)(t)) {
        AddEdgeIfAcyclic(h, t, parent);
        if (transitive) next.push_back(parent);
      }
    }
    frontier = std::move(next);
  }
}

}  // namespace

Result<Ontology> MakeOntology(const xml::XmlDocument& doc,
                              const lexicon::Lexicon& lexicon,
                              const OntologyMakerOptions& options) {
  return MakeOntologyForDocuments({&doc}, lexicon, options);
}

Result<Ontology> MakeOntologyForDocuments(
    const std::vector<const xml::XmlDocument*>& docs,
    const lexicon::Lexicon& lexicon, const OntologyMakerOptions& options) {
  if (docs.empty()) {
    return Status::InvalidArgument("MakeOntology: no documents");
  }
  for (const auto* doc : docs) {
    if (doc == nullptr || doc->empty()) {
      return Status::InvalidArgument("MakeOntology: empty document");
    }
  }
  Ontology onto;
  Hierarchy& partof = onto.partof();
  Hierarchy& isa = onto.isa();

  std::set<std::string> tags;
  std::set<std::string> content_terms;
  const std::set<std::string> content_tags(options.content_tags.begin(),
                                           options.content_tags.end());

  for (const auto* doc_ptr : docs) {
    const xml::XmlDocument& doc = *doc_ptr;
    std::vector<xml::NodeId> elements{doc.root()};
    auto descendants = doc.ElementDescendants(doc.root());
    elements.insert(elements.end(), descendants.begin(), descendants.end());

    for (xml::NodeId id : elements) {
      const auto& n = doc.node(id);
      tags.insert(n.tag);
      if (options.use_structure && n.parent != xml::kInvalidNode) {
        const auto& parent = doc.node(n.parent);
        AddEdgeIfAcyclic(&partof, n.tag, parent.tag);
      }
      if (content_tags.count(n.tag)) {
        // Content terms keep their original case so SEO term expansion can
        // be matched back against document text verbatim; the lexicon
        // lowercases internally for its own lookups.
        std::string content = std::string(Trim(doc.TextContent(id)));
        if (!content.empty()) content_terms.insert(content);
      }
    }
  }

  // Make sure every tag is an ontology term even when isolated.
  for (const auto& t : tags) {
    partof.EnsureTerm(t);
    isa.EnsureTerm(t);
  }

  if (options.use_lexicon) {
    for (const auto& t : tags) {
      AddLexiconChain(&isa, lexicon, t, &lexicon::Lexicon::Hypernyms,
                      options.transitive_lexicon);
      AddLexiconChain(&partof, lexicon, t, &lexicon::Lexicon::Holonyms,
                      options.transitive_lexicon);
    }
    for (const auto& t : content_terms) {
      // Lexicon synonyms of a content term share its node: distinct surface
      // forms of the same concept ("SIGMOD Conference" vs the conference's
      // full name) must be interchangeable under isa/~ conditions.
      HNodeId node = kInvalidHNode;
      auto synonyms = lexicon.Synonyms(t);
      for (const auto& syn : synonyms) {
        auto ids = isa.NodesContaining(syn);
        if (!ids.empty()) {
          node = ids.front();
          break;
        }
      }
      if (node == kInvalidHNode) {
        auto ids = isa.NodesContaining(ToLower(t));
        if (!ids.empty()) node = ids.front();
      }
      if (node == kInvalidHNode) {
        node = isa.EnsureTerm(t);
      } else {
        TOSS_RETURN_NOT_OK(isa.AddTermToNode(node, t));
      }
      for (const auto& syn : synonyms) {
        TOSS_RETURN_NOT_OK(isa.AddTermToNode(node, syn));
      }
      AddLexiconChain(&isa, lexicon, t, &lexicon::Lexicon::Hypernyms,
                      options.transitive_lexicon);
      AddLexiconChain(&partof, lexicon, t, &lexicon::Lexicon::Holonyms,
                      options.transitive_lexicon);
    }
  } else {
    for (const auto& t : content_terms) isa.EnsureTerm(t);
  }

  TOSS_RETURN_NOT_OK(partof.TransitiveReduction());
  TOSS_RETURN_NOT_OK(isa.TransitiveReduction());
  return onto;
}

std::vector<InteropConstraint> SuggestEqualityConstraints(
    const Hierarchy& left, const Hierarchy& right,
    const lexicon::Lexicon& lexicon) {
  std::vector<InteropConstraint> out;
  std::set<std::pair<std::string, std::string>> emitted;
  auto emit = [&](const std::string& x, const std::string& y) {
    if (!emitted.insert({x, y}).second) return;
    Append(&out, Eq(x, 0, y, 1));
  };
  for (const auto& x : left.AllTerms()) {
    // Exact term match.
    if (right.FindTerm(x) != kInvalidHNode) {
      emit(x, x);
      continue;
    }
    // Lexicon synonyms.
    for (const auto& syn : lexicon.Synonyms(x)) {
      if (right.FindTerm(syn) != kInvalidHNode) emit(x, syn);
    }
  }
  return out;
}

}  // namespace toss::ontology
