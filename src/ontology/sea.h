// Similarity enhancement of a hierarchy: algorithm SEA (paper Fig. 12,
// Defs. 8-9, Theorems 1-2).
//
// Given a (fused) hierarchy H, a similarity measure d, and a threshold
// epsilon, SEA groups nodes whose pairwise distance is <= epsilon. Def. 8's
// conditions (2)-(4) pin the grouped node set down uniquely (Theorem 1): it
// is exactly the set of *maximal cliques* of the epsilon-similarity graph
// over H's nodes. We enumerate those with Bron-Kerbosch (pivoting), define
// mu as clique membership, rebuild the order (an enhanced edge A' -> B' is
// added when some preimage pair is strictly ordered in H), transitively
// reduce, and reject cyclic results as *similarity inconsistent* (Def. 9).
//
// `strict` mode additionally verifies Def. 8 condition (1)'s converse --
// every enhanced path must be backed by paths between *all* preimage pairs
// -- rejecting enhancements the paper's acyclicity-only check would accept.

#ifndef TOSS_ONTOLOGY_SEA_H_
#define TOSS_ONTOLOGY_SEA_H_

#include <vector>

#include "common/result.h"
#include "ontology/hierarchy.h"
#include "sim/string_measure.h"

namespace toss::ontology {

/// The pair (H', mu) of Def. 8.
struct SimilarityEnhancement {
  Hierarchy enhanced;
  /// mu[v] = enhanced nodes that original node v belongs to (non-empty).
  std::vector<std::vector<HNodeId>> mu;

  /// Preimage mu^{-1}: original nodes mapped into enhanced node `e`.
  std::vector<HNodeId> Preimage(HNodeId e) const;
};

struct SeaOptions {
  /// Verify Def. 8 condition (1) fully instead of the paper's
  /// acyclicity-only check (see file comment).
  bool strict = false;
};

/// Runs SEA. Returns Status::Inconsistent when (H, d, epsilon) is similarity
/// inconsistent.
Result<SimilarityEnhancement> SimilarityEnhance(
    const Hierarchy& h, const sim::StringMeasure& d, double epsilon,
    const SeaOptions& options = {});

/// Def. 9 predicate.
bool IsSimilarityConsistent(const Hierarchy& h, const sim::StringMeasure& d,
                            double epsilon);

/// Checks all four Def. 8 conditions of `e` against (h, d, epsilon);
/// returns the first violation found. Used by property tests (Theorem 2).
Status VerifyEnhancement(const Hierarchy& h, const sim::StringMeasure& d,
                         double epsilon, const SimilarityEnhancement& e);

}  // namespace toss::ontology

#endif  // TOSS_ONTOLOGY_SEA_H_
