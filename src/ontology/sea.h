// Similarity enhancement of a hierarchy: algorithm SEA (paper Fig. 12,
// Defs. 8-9, Theorems 1-2).
//
// Given a (fused) hierarchy H, a similarity measure d, and a threshold
// epsilon, SEA groups nodes whose pairwise distance is <= epsilon. Def. 8's
// conditions (2)-(4) pin the grouped node set down uniquely (Theorem 1): it
// is exactly the set of *maximal cliques* of the epsilon-similarity graph
// over H's nodes. We enumerate those with Bron-Kerbosch (pivoting), define
// mu as clique membership, rebuild the order (an enhanced edge A' -> B' is
// added when some preimage pair is strictly ordered in H), transitively
// reduce, and reject cyclic results as *similarity inconsistent* (Def. 9).
//
// `strict` mode additionally verifies Def. 8 condition (1)'s converse --
// every enhanced path must be backed by paths between *all* preimage pairs
// -- rejecting enhancements the paper's acyclicity-only check would accept.
//
// Performance: the O(|S|^2) pairwise scan runs through the
// sim::PairwiseNodeDistances driver (admission filters + shared worker
// pool; deterministic); the epsilon-graph is packed uint64_t rows (the
// same representation as Hierarchy's closure cache) and the clique
// enumerator, order rebuild, and strict check all operate word-parallel on
// those rows. SimilaritySweep amortizes the scan across an epsilon sweep:
// the matrix is computed once at the sweep's max epsilon and each
// epsilon's enhancement is derived by thresholding, byte-identical to an
// independent SimilarityEnhance call.

#ifndef TOSS_ONTOLOGY_SEA_H_
#define TOSS_ONTOLOGY_SEA_H_

#include <vector>

#include "common/result.h"
#include "ontology/hierarchy.h"
#include "sim/pairwise.h"
#include "sim/string_measure.h"

namespace toss::obs {
class Span;
}  // namespace toss::obs

namespace toss::ontology {

/// The pair (H', mu) of Def. 8.
struct SimilarityEnhancement {
  Hierarchy enhanced;
  /// mu[v] = enhanced nodes that original node v belongs to (non-empty,
  /// ascending).
  std::vector<std::vector<HNodeId>> mu;

  /// Preimage mu^{-1}: original nodes mapped into enhanced node `e`,
  /// ascending. Backed by an inverted index built lazily from `mu` on
  /// first call (call BuildPreimageIndex() first when sharing a frozen
  /// enhancement across threads).
  const std::vector<HNodeId>& Preimage(HNodeId e) const;

  /// Builds (or rebuilds, after `mu` changed) the inverted preimage
  /// index. Idempotent.
  void BuildPreimageIndex() const;

 private:
  mutable std::vector<std::vector<HNodeId>> preimage_;
  mutable bool preimage_valid_ = false;
};

struct SeaOptions {
  /// Verify Def. 8 condition (1) fully instead of the paper's
  /// acyclicity-only check (see file comment).
  bool strict = false;

  /// Apply DistanceLowerBound admission filters in the pairwise scan.
  bool use_filters = true;

  /// Fan the pairwise scan out over toss::SharedWorkerPool(). The result
  /// is bit-identical to the sequential scan either way.
  bool parallel = true;

  /// Optional parent trace span: when set (and enabled), SEA records
  /// per-phase child spans -- pairwise_matrix, epsilon_graph,
  /// clique_enumeration, order_rebuild -- under it. The `ontology.sea.*`
  /// registry metrics are recorded regardless. Not owned; must outlive the
  /// call.
  obs::Span* trace = nullptr;
};

/// Runs SEA. Returns Status::Inconsistent when (H, d, epsilon) is similarity
/// inconsistent.
Result<SimilarityEnhancement> SimilarityEnhance(
    const Hierarchy& h, const sim::StringMeasure& d, double epsilon,
    const SeaOptions& options = {});

/// Def. 9 predicate.
bool IsSimilarityConsistent(const Hierarchy& h, const sim::StringMeasure& d,
                            double epsilon);

/// Compute-once epsilon sweeps: the exact pairwise node-distance matrix is
/// computed a single time, bounded at `max_epsilon`, and Enhance(epsilon)
/// derives each threshold's enhancement from it. Enhance(e) is
/// byte-identical to SimilarityEnhance(h, d, e, options) for every
/// e <= max_epsilon, including the similarity-inconsistent rejections.
class SimilaritySweep {
 public:
  /// Computes the distance matrix (the only expensive step). The sweep
  /// keeps its own copy of `h`; `d` must outlive the sweep.
  static Result<SimilaritySweep> Create(const Hierarchy& h,
                                        const sim::StringMeasure& d,
                                        double max_epsilon,
                                        const SeaOptions& options = {});

  /// SEA at `epsilon` (<= max_epsilon) by thresholding the shared matrix.
  Result<SimilarityEnhancement> Enhance(double epsilon) const;

  double max_epsilon() const { return max_epsilon_; }
  const sim::DistanceMatrix& distances() const { return distances_; }
  const Hierarchy& hierarchy() const { return hierarchy_; }

 private:
  SimilaritySweep() = default;

  Hierarchy hierarchy_;
  sim::DistanceMatrix distances_;
  double max_epsilon_ = 0.0;
  SeaOptions options_;
};

/// Checks all four Def. 8 conditions of `e` against (h, d, epsilon);
/// returns the first violation found. Used by property tests (Theorem 2).
/// Distances are evaluated with the bounded measure form (only the
/// <= epsilon predicate is needed); pass `distances` (as computed by
/// SimilaritySweep at max_epsilon >= epsilon) to skip recomputation
/// entirely.
Status VerifyEnhancement(const Hierarchy& h, const sim::StringMeasure& d,
                         double epsilon, const SimilarityEnhancement& e,
                         const sim::DistanceMatrix* distances = nullptr);

}  // namespace toss::ontology

#endif  // TOSS_ONTOLOGY_SEA_H_
