// Ontologies (paper Def. 3): a partial mapping from relation names
// ("isa", "partof", ...) to hierarchies. The paper fixes that Theta(isa)
// and Theta(partof) are always defined; the constructor creates both.

#ifndef TOSS_ONTOLOGY_ONTOLOGY_H_
#define TOSS_ONTOLOGY_ONTOLOGY_H_

#include <map>
#include <string>
#include <vector>

#include "common/result.h"
#include "ontology/constraints.h"
#include "ontology/hierarchy.h"

namespace toss::ontology {

/// Distinguished relation names.
inline constexpr const char* kIsa = "isa";
inline constexpr const char* kPartOf = "partof";

/// A named bundle of hierarchies.
class Ontology {
 public:
  Ontology();

  /// Hierarchy for `relation`, created empty on first access.
  Hierarchy& hierarchy(const std::string& relation);

  /// Hierarchy for `relation` or nullptr when undefined.
  const Hierarchy* Find(const std::string& relation) const;

  Hierarchy& isa() { return hierarchy(kIsa); }
  const Hierarchy& isa() const { return *Find(kIsa); }
  Hierarchy& partof() { return hierarchy(kPartOf); }
  const Hierarchy& partof() const { return *Find(kPartOf); }

  /// Defined relation names, sorted.
  std::vector<std::string> relations() const;

  /// Total node count across all hierarchies (the "ontology size" axis of
  /// the paper's Fig. 16 experiments).
  size_t TotalNodeCount() const;

 private:
  std::map<std::string, Hierarchy> hierarchies_;
};

/// Fuses each relation's hierarchies across `ontologies` under that
/// relation's constraints (missing key = no constraints). Relations defined
/// in only some inputs are fused across those inputs.
Result<Ontology> FuseOntologies(
    const std::vector<const Ontology*>& ontologies,
    const std::map<std::string, std::vector<InteropConstraint>>& constraints);

}  // namespace toss::ontology

#endif  // TOSS_ONTOLOGY_ONTOLOGY_H_
