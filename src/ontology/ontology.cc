#include "ontology/ontology.h"

#include "ontology/fusion.h"

namespace toss::ontology {

Ontology::Ontology() {
  hierarchies_[kIsa];
  hierarchies_[kPartOf];
}

Hierarchy& Ontology::hierarchy(const std::string& relation) {
  return hierarchies_[relation];
}

const Hierarchy* Ontology::Find(const std::string& relation) const {
  auto it = hierarchies_.find(relation);
  return it == hierarchies_.end() ? nullptr : &it->second;
}

std::vector<std::string> Ontology::relations() const {
  std::vector<std::string> out;
  for (const auto& [name, h] : hierarchies_) out.push_back(name);
  return out;
}

size_t Ontology::TotalNodeCount() const {
  size_t n = 0;
  for (const auto& [name, h] : hierarchies_) n += h.node_count();
  return n;
}

Result<Ontology> FuseOntologies(
    const std::vector<const Ontology*>& ontologies,
    const std::map<std::string, std::vector<InteropConstraint>>& constraints) {
  if (ontologies.empty()) {
    return Status::InvalidArgument("FuseOntologies: no ontologies given");
  }
  // Collect the union of relation names.
  std::map<std::string, std::vector<const Hierarchy*>> by_relation;
  std::map<std::string, std::vector<int>> source_index;
  for (size_t i = 0; i < ontologies.size(); ++i) {
    if (ontologies[i] == nullptr) {
      return Status::InvalidArgument("FuseOntologies: null ontology");
    }
    for (const auto& rel : ontologies[i]->relations()) {
      by_relation[rel].push_back(ontologies[i]->Find(rel));
      source_index[rel].push_back(static_cast<int>(i));
    }
  }
  Ontology fused;
  for (auto& [rel, hs] : by_relation) {
    std::vector<InteropConstraint> ics;
    auto it = constraints.find(rel);
    if (it != constraints.end()) {
      // Constraint hierarchy indexes refer to positions in `ontologies`;
      // remap them to positions within this relation's present hierarchies.
      const auto& present = source_index[rel];
      for (InteropConstraint c : it->second) {
        auto remap = [&](int global) -> int {
          for (size_t k = 0; k < present.size(); ++k) {
            if (present[k] == global) return static_cast<int>(k);
          }
          return -1;
        };
        c.left_hierarchy = remap(c.left_hierarchy);
        c.right_hierarchy = remap(c.right_hierarchy);
        if (c.left_hierarchy < 0 || c.right_hierarchy < 0) {
          return Status::InvalidArgument(
              "FuseOntologies: constraint for relation '" + rel +
              "' references an ontology lacking that relation");
        }
        ics.push_back(std::move(c));
      }
    }
    TOSS_ASSIGN_OR_RETURN(FusionResult fr, Fuse(hs, ics));
    fused.hierarchy(rel) = std::move(fr.fused);
  }
  return fused;
}

}  // namespace toss::ontology
