#include "ontology/sea.h"

#include <algorithm>
#include <bit>
#include <set>

#include "common/timer.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "sim/node_measure.h"

namespace toss::ontology {

namespace {

struct SeaMetrics {
  obs::Counter& runs = obs::Metrics().GetCounter("ontology.sea.runs");
  obs::Counter& cliques = obs::Metrics().GetCounter("ontology.sea.cliques");
  obs::Counter& inconsistent =
      obs::Metrics().GetCounter("ontology.sea.inconsistent");
  obs::Histogram& pairwise_ns =
      obs::Metrics().GetHistogram("ontology.sea.pairwise_latency_ns");
  obs::Histogram& enhance_ns =
      obs::Metrics().GetHistogram("ontology.sea.enhance_latency_ns");
};

SeaMetrics& Instruments() {
  static SeaMetrics* m = new SeaMetrics();
  return *m;
}

// ---------------------------------------------------------------------------
// Packed-bitset helpers (rows of uint64_t words, same layout as
// Hierarchy's closure cache).
// ---------------------------------------------------------------------------

inline void SetBit(uint64_t* row, size_t i) {
  row[i / 64] |= uint64_t{1} << (i % 64);
}

inline void ClearBit(uint64_t* row, size_t i) {
  row[i / 64] &= ~(uint64_t{1} << (i % 64));
}

inline bool TestBit(const uint64_t* row, size_t i) {
  return (row[i / 64] >> (i % 64)) & 1;
}

inline bool AnyAnd(const uint64_t* a, const uint64_t* b, size_t words) {
  for (size_t w = 0; w < words; ++w) {
    if (a[w] & b[w]) return true;
  }
  return false;
}

inline size_t AndPopcount(const uint64_t* a, const uint64_t* b,
                          size_t words) {
  size_t c = 0;
  for (size_t w = 0; w < words; ++w) c += std::popcount(a[w] & b[w]);
  return c;
}

/// Calls fn(i) for every set bit of `row`, ascending.
template <typename Fn>
inline void ForEachBit(const uint64_t* row, size_t words, const Fn& fn) {
  for (size_t w = 0; w < words; ++w) {
    uint64_t bits = row[w];
    while (bits) {
      fn(w * 64 + static_cast<size_t>(std::countr_zero(bits)));
      bits &= bits - 1;
    }
  }
}

// Bron-Kerbosch maximal clique enumeration with pivoting, on packed bitset
// rows: P and X are bitsets, pivoting and candidate filtering are
// word-parallel AND + popcount. Vertices are hierarchy node ids; `adj` is a
// symmetric bit matrix. Similarity graphs over ontology terms are sparse,
// so this is fast in practice despite the worst-case exponential bound.
class CliqueEnumerator {
 public:
  CliqueEnumerator(size_t n, const std::vector<uint64_t>& adj, size_t words)
      : n_(n), words_(words), adj_(adj) {}

  std::vector<std::vector<HNodeId>> Run() {
    std::vector<uint64_t> p(words_, 0), x(words_, 0);
    for (size_t v = 0; v < n_; ++v) SetBit(p.data(), v);
    std::vector<HNodeId> r;
    Expand(&r, p.data(), x.data(), 0);
    return std::move(cliques_);
  }

 private:
  const uint64_t* AdjRow(size_t v) const { return adj_.data() + v * words_; }

  /// Scratch row `which` (0..2) for recursion level `depth`, reused across
  /// siblings so the recursion does not allocate per candidate. The
  /// returned buffer survives deeper ArenaRow calls (growing `arena_`
  /// moves the inner vectors, not their heap blocks).
  uint64_t* ArenaRow(size_t depth, size_t which) {
    const size_t idx = depth * 3 + which;
    if (arena_.size() <= idx) arena_.resize(idx + 1);
    if (arena_[idx].size() != words_) arena_[idx].assign(words_, 0);
    return arena_[idx].data();
  }

  void Expand(std::vector<HNodeId>* r, uint64_t* p, uint64_t* x,
              size_t depth) {
    bool p_empty = true, x_empty = true;
    for (size_t w = 0; w < words_; ++w) {
      p_empty &= p[w] == 0;
      x_empty &= x[w] == 0;
    }
    if (p_empty && x_empty) {
      std::vector<HNodeId> clique(r->begin(), r->end());
      std::sort(clique.begin(), clique.end());
      cliques_.push_back(std::move(clique));
      return;
    }
    // Pivot: vertex of P then X with the most neighbours in P.
    size_t pivot = 0;
    size_t best = 0;
    bool have_pivot = false;
    auto consider = [&](size_t u) {
      size_t c = AndPopcount(p, AdjRow(u), words_);
      if (!have_pivot || c > best) {
        pivot = u;
        best = c;
        have_pivot = true;
      }
    };
    ForEachBit(p, words_, consider);
    ForEachBit(x, words_, consider);
    // Candidates: P minus the pivot's neighbourhood, snapshotted into this
    // depth's scratch (P mutates as candidates are consumed; children use
    // deeper scratch rows).
    uint64_t* candidates = ArenaRow(depth, 0);
    uint64_t* p2 = ArenaRow(depth, 1);
    uint64_t* x2 = ArenaRow(depth, 2);
    for (size_t w = 0; w < words_; ++w) {
      candidates[w] = p[w] & ~AdjRow(pivot)[w];
    }
    ForEachBit(candidates, words_, [&](size_t v) {
      r->push_back(static_cast<HNodeId>(v));
      for (size_t w = 0; w < words_; ++w) {
        p2[w] = p[w] & AdjRow(v)[w];
        x2[w] = x[w] & AdjRow(v)[w];
      }
      Expand(r, p2, x2, depth + 1);
      r->pop_back();
      ClearBit(p, v);
      SetBit(x, v);
    });
  }

  size_t n_;
  size_t words_;
  const std::vector<uint64_t>& adj_;
  std::vector<std::vector<uint64_t>> arena_;
  std::vector<std::vector<HNodeId>> cliques_;
};

/// The distance matrix for (h, d) bounded at `bound` (values above it are
/// canonicalized -- see sim::PairwiseOptions).
sim::DistanceMatrix ComputeDistances(const Hierarchy& h,
                                     const sim::StringMeasure& d,
                                     double bound,
                                     const SeaOptions& options) {
  Timer timer;
  obs::Span span(options.trace, "pairwise_matrix");
  const size_t n = h.node_count();
  std::vector<const std::vector<std::string>*> nodes(n);
  for (size_t v = 0; v < n; ++v) {
    nodes[v] = &h.terms(static_cast<HNodeId>(v));
  }
  sim::PairwiseOptions popt;
  popt.bound = bound;
  popt.use_filters = options.use_filters;
  popt.parallel = options.parallel;
  sim::DistanceMatrix dist = sim::PairwiseNodeDistances(nodes, d, popt);
  span.Annotate("nodes", static_cast<uint64_t>(n));
  Instruments().pairwise_ns.Record(static_cast<uint64_t>(timer.ElapsedNanos()));
  return dist;
}

/// SEA given a precomputed distance matrix (valid for any epsilon at or
/// below the bound the matrix was computed at). Both SimilarityEnhance and
/// SimilaritySweep::Enhance land here, so sweep output is byte-identical
/// to independent runs by construction.
Result<SimilarityEnhancement> EnhanceFromMatrix(
    const Hierarchy& h, const sim::DistanceMatrix& dist, double epsilon,
    const SeaOptions& options) {
  SeaMetrics& m_metrics = Instruments();
  m_metrics.runs.Increment();
  Timer enhance_timer;
  const size_t n = h.node_count();
  const size_t words = (n + 63) / 64;

  // epsilon-similarity graph over H's nodes (lines 5-7 of Fig. 12), as
  // packed bitset rows.
  obs::Span graph_span(options.trace, "epsilon_graph");
  std::vector<uint64_t> adj(n * words, 0);
  size_t edges = 0;
  dist.ForEachAtMost(epsilon, [&](size_t a, size_t b) {
    SetBit(adj.data() + a * words, b);
    SetBit(adj.data() + b * words, a);
    ++edges;
  });
  graph_span.Annotate("edges", static_cast<uint64_t>(edges));
  graph_span.End();

  // Maximal cliques = the unique grouped node set (Def. 8 conds 2-4,
  // Thm. 1). Isolated vertices yield singleton cliques, covering line 3.
  // (On an empty hierarchy Bron-Kerbosch reports the empty clique; drop
  // it -- an enhancement of nothing has no nodes.)
  obs::Span clique_span(options.trace, "clique_enumeration");
  std::vector<std::vector<HNodeId>> cliques =
      CliqueEnumerator(n, adj, words).Run();
  std::erase_if(cliques,
                [](const std::vector<HNodeId>& c) { return c.empty(); });
  clique_span.Annotate("cliques", static_cast<uint64_t>(cliques.size()));
  clique_span.End();
  m_metrics.cliques.Add(cliques.size());

  obs::Span order_span(options.trace, "order_rebuild");
  SimilarityEnhancement result;
  result.mu.assign(n, {});
  for (const auto& clique : cliques) {
    std::vector<std::string> terms;
    for (HNodeId v : clique) {
      for (const auto& t : h.terms(v)) terms.push_back(t);
    }
    HNodeId e = result.enhanced.AddNode(std::move(terms));
    for (HNodeId v : clique) result.mu[v].push_back(e);
  }

  // Order reconstruction (lines 11-13): condition (1) forces an enhanced
  // path A0 ~> B0 whenever some preimage pair has a path in H. One closure
  // pass precomputes, per enhanced node e, the clique's member bitset and
  // the union of its members' strictly-below closure rows; "some preimage
  // pair (a, b), a != b, a <= b" is then a word-parallel intersection test
  // instead of a quadruple Leq loop.
  const size_t m = cliques.size();
  const size_t hwords = h.ClosureWordCount();
  std::vector<uint64_t> member_bits(m * hwords, 0);
  std::vector<uint64_t> strict_below(m * hwords, 0);
  // Nonzero word ranges [lo, hi) of each row: cliques cover few words
  // (members are clustered node ids), so intersecting ranges shrinks the
  // m^2 pair tests from hwords to a word or two each.
  std::vector<uint32_t> mem_lo(m, 0), mem_hi(m, 0);
  std::vector<uint32_t> bel_lo(m, 0), bel_hi(m, 0);
  for (size_t e = 0; e < m; ++e) {
    uint64_t* members = member_bits.data() + e * hwords;
    uint64_t* below = strict_below.data() + e * hwords;
    for (HNodeId b : cliques[e]) {
      SetBit(members, b);
      const uint64_t* row = h.ClosureRow(b);  // bit a set iff a <= b
      const size_t self_word = b / 64;
      const uint64_t self_bit = uint64_t{1} << (b % 64);
      for (size_t w = 0; w < hwords; ++w) {
        uint64_t bits = row[w];
        if (w == self_word) bits &= ~self_bit;  // a != b
        below[w] |= bits;
      }
    }
    mem_lo[e] = static_cast<uint32_t>(cliques[e].front() / 64);
    mem_hi[e] = static_cast<uint32_t>(cliques[e].back() / 64 + 1);
    uint32_t lo = 0, hi = static_cast<uint32_t>(hwords);
    while (lo < hi && below[lo] == 0) ++lo;
    while (hi > lo && below[hi - 1] == 0) --hi;
    bel_lo[e] = lo;
    bel_hi[e] = hi;
  }
  const HNodeId enhanced_count = static_cast<HNodeId>(m);
  for (HNodeId e1 = 0; e1 < enhanced_count; ++e1) {
    const uint64_t* members = member_bits.data() + e1 * hwords;
    for (HNodeId e2 = 0; e2 < enhanced_count; ++e2) {
      if (e1 == e2) continue;
      const uint32_t lo = std::max(mem_lo[e1], bel_lo[e2]);
      const uint32_t hi = std::min(mem_hi[e1], bel_hi[e2]);
      if (lo >= hi) continue;
      if (AnyAnd(members + lo, strict_below.data() + e2 * hwords + lo,
                 hi - lo)) {
        TOSS_RETURN_NOT_OK(result.enhanced.AddEdge(e1, e2));
      }
    }
  }

  // Line 14: check-acyclic. A cycle means the grouping collapsed an order
  // the hierarchy needs, i.e. (H, d, epsilon) is similarity inconsistent.
  if (!result.enhanced.IsAcyclic()) {
    m_metrics.inconsistent.Increment();
    return Status::Inconsistent(
        "SEA: similarity inconsistent (enhanced hierarchy is cyclic) at "
        "epsilon=" +
        std::to_string(epsilon));
  }

  if (options.strict) {
    // Full Def. 8 condition (1) converse: every enhanced path must hold
    // for all preimage pairs -- C1 must lie inside the *intersection* of
    // C2's members' downward closures.
    std::vector<uint64_t> meet(hwords);
    for (HNodeId e2 = 0; e2 < enhanced_count; ++e2) {
      std::fill(meet.begin(), meet.end(), ~uint64_t{0});
      for (HNodeId b : cliques[e2]) {
        const uint64_t* row = h.ClosureRow(b);
        for (size_t w = 0; w < hwords; ++w) meet[w] &= row[w];
      }
      for (HNodeId e1 = 0; e1 < enhanced_count; ++e1) {
        if (e1 == e2 || !result.enhanced.Leq(e1, e2)) continue;
        const uint64_t* members = member_bits.data() + e1 * hwords;
        bool ok = true;
        for (size_t w = 0; w < hwords; ++w) {
          if (members[w] & ~meet[w]) {
            ok = false;
            break;
          }
        }
        if (ok) continue;
        // Recover a witness pair for the error message.
        for (HNodeId a : cliques[e1]) {
          for (HNodeId b : cliques[e2]) {
            if (!h.Leq(a, b)) {
              m_metrics.inconsistent.Increment();
              return Status::Inconsistent(
                  "SEA(strict): enhanced order " +
                  result.enhanced.NodeLabel(e1) + " <= " +
                  result.enhanced.NodeLabel(e2) +
                  " is not backed by all preimage pairs (" + h.NodeLabel(a) +
                  " vs " + h.NodeLabel(b) + ")");
            }
          }
        }
      }
    }
  }

  TOSS_RETURN_NOT_OK(result.enhanced.TransitiveReduction());
  result.BuildPreimageIndex();
  order_span.Annotate("enhanced_nodes",
                      static_cast<uint64_t>(result.enhanced.node_count()));
  order_span.End();
  m_metrics.enhance_ns.Record(
      static_cast<uint64_t>(enhance_timer.ElapsedNanos()));
  return result;
}

Status CheckSeaInput(const Hierarchy& h, double epsilon) {
  if (epsilon < 0) {
    return Status::InvalidArgument("SEA: epsilon must be >= 0");
  }
  if (!h.IsAcyclic()) {
    return Status::Inconsistent("SEA: input hierarchy is cyclic");
  }
  return Status::OK();
}

}  // namespace

void SimilarityEnhancement::BuildPreimageIndex() const {
  if (preimage_valid_ && preimage_.size() == enhanced.node_count()) return;
  preimage_.assign(enhanced.node_count(), {});
  for (HNodeId v = 0; v < mu.size(); ++v) {
    for (HNodeId e : mu[v]) preimage_[e].push_back(v);
  }
  preimage_valid_ = true;
}

const std::vector<HNodeId>& SimilarityEnhancement::Preimage(HNodeId e) const {
  BuildPreimageIndex();
  return preimage_[e];
}

Result<SimilarityEnhancement> SimilarityEnhance(const Hierarchy& h,
                                                const sim::StringMeasure& d,
                                                double epsilon,
                                                const SeaOptions& options) {
  TOSS_RETURN_NOT_OK(CheckSeaInput(h, epsilon));
  sim::DistanceMatrix dist = ComputeDistances(h, d, epsilon, options);
  return EnhanceFromMatrix(h, dist, epsilon, options);
}

Result<SimilaritySweep> SimilaritySweep::Create(const Hierarchy& h,
                                                const sim::StringMeasure& d,
                                                double max_epsilon,
                                                const SeaOptions& options) {
  TOSS_RETURN_NOT_OK(CheckSeaInput(h, max_epsilon));
  SimilaritySweep sweep;
  sweep.hierarchy_ = h;
  sweep.max_epsilon_ = max_epsilon;
  sweep.options_ = options;
  sweep.distances_ = ComputeDistances(sweep.hierarchy_, d, max_epsilon,
                                      options);
  return sweep;
}

Result<SimilarityEnhancement> SimilaritySweep::Enhance(
    double epsilon) const {
  if (epsilon < 0) {
    return Status::InvalidArgument("SEA: epsilon must be >= 0");
  }
  if (epsilon > max_epsilon_) {
    return Status::InvalidArgument(
        "SimilaritySweep: epsilon " + std::to_string(epsilon) +
        " exceeds the sweep bound " + std::to_string(max_epsilon_));
  }
  return EnhanceFromMatrix(hierarchy_, distances_, epsilon, options_);
}

bool IsSimilarityConsistent(const Hierarchy& h, const sim::StringMeasure& d,
                            double epsilon) {
  return SimilarityEnhance(h, d, epsilon).ok();
}

Status VerifyEnhancement(const Hierarchy& h, const sim::StringMeasure& d,
                         double epsilon, const SimilarityEnhancement& e,
                         const sim::DistanceMatrix* distances) {
  const size_t n = h.node_count();
  if (e.mu.size() != n) {
    return Status::InvalidArgument("mu size does not match hierarchy");
  }
  for (HNodeId v = 0; v < n; ++v) {
    if (e.mu[v].empty()) {
      return Status::Inconsistent("mu(" + h.NodeLabel(v) + ") is empty");
    }
  }
  if (distances != nullptr && distances->size() != n) {
    return Status::InvalidArgument(
        "distance matrix size does not match hierarchy");
  }

  // Condition (2): nodes sharing an enhanced node are within epsilon.
  // Condition (3): nodes within epsilon share an enhanced node.
  // Only the <= epsilon predicate is needed, so the bounded measure form
  // (or the sweep's shared matrix) suffices -- mu lists are ascending, so
  // "share" is a sorted-intersection probe.
  for (HNodeId a = 0; a < n; ++a) {
    for (HNodeId b = a + 1; b < n; ++b) {
      double dist = distances != nullptr
                        ? distances->at(a, b)
                        : sim::BoundedNodeDistance(h.terms(a), h.terms(b),
                                                   d, epsilon);
      bool within = dist <= epsilon;
      bool share = false;
      const auto& ma = e.mu[a];
      const auto& mb = e.mu[b];
      for (size_t ia = 0, ib = 0; ia < ma.size() && ib < mb.size();) {
        if (ma[ia] == mb[ib]) {
          share = true;
          break;
        }
        ma[ia] < mb[ib] ? ++ia : ++ib;
      }
      if (share && !within) {
        return Status::Inconsistent("condition 2 violated: " +
                                    h.NodeLabel(a) + " and " +
                                    h.NodeLabel(b) + " share a node");
      }
      if (!share && within) {
        return Status::Inconsistent("condition 3 violated: " +
                                    h.NodeLabel(a) + " and " +
                                    h.NodeLabel(b) + " share no node");
      }
    }
  }

  // Condition (4): no enhanced node's preimage is a subset of another's.
  // Preimage lists are ascending, so std::includes applies directly.
  const HNodeId m = static_cast<HNodeId>(e.enhanced.node_count());
  e.BuildPreimageIndex();
  for (HNodeId x = 0; x < m; ++x) {
    for (HNodeId y = 0; y < m; ++y) {
      if (x == y) continue;
      const auto& px = e.Preimage(x);
      const auto& py = e.Preimage(y);
      if (std::includes(py.begin(), py.end(), px.begin(), px.end())) {
        return Status::Inconsistent("condition 4 violated: preimage of " +
                                    e.enhanced.NodeLabel(x) +
                                    " is contained in that of " +
                                    e.enhanced.NodeLabel(y));
      }
    }
  }

  // Condition (1), both directions.
  for (HNodeId a = 0; a < n; ++a) {
    for (HNodeId b = 0; b < n; ++b) {
      if (a == b || !h.Leq(a, b)) continue;
      for (HNodeId ea : e.mu[a]) {
        for (HNodeId eb : e.mu[b]) {
          if (!e.enhanced.Leq(ea, eb)) {
            return Status::Inconsistent(
                "condition 1 (forward) violated between " + h.NodeLabel(a) +
                " and " + h.NodeLabel(b));
          }
        }
      }
    }
  }
  for (HNodeId x = 0; x < m; ++x) {
    for (HNodeId y = 0; y < m; ++y) {
      if (x == y || !e.enhanced.Leq(x, y)) continue;
      for (HNodeId a : e.Preimage(x)) {
        for (HNodeId b : e.Preimage(y)) {
          if (a != b && !h.Leq(a, b)) {
            return Status::Inconsistent(
                "condition 1 (converse) violated between " +
                e.enhanced.NodeLabel(x) + " and " + e.enhanced.NodeLabel(y));
          }
        }
      }
    }
  }
  return Status::OK();
}

}  // namespace toss::ontology
