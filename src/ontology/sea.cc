#include "ontology/sea.h"

#include <algorithm>
#include <set>

#include "sim/node_measure.h"

namespace toss::ontology {

namespace {

// Bron-Kerbosch maximal clique enumeration with pivoting. Vertices are
// hierarchy node ids; `adj` is a symmetric boolean matrix. Similarity graphs
// over ontology terms are sparse, so this is fast in practice despite the
// worst-case exponential bound.
class CliqueEnumerator {
 public:
  CliqueEnumerator(size_t n, const std::vector<std::vector<bool>>& adj)
      : n_(n), adj_(adj) {}

  std::vector<std::vector<HNodeId>> Run() {
    std::vector<int> p(n_), x, r;
    for (size_t v = 0; v < n_; ++v) p[v] = static_cast<int>(v);
    Expand(&r, p, x);
    return std::move(cliques_);
  }

 private:
  void Expand(std::vector<int>* r, std::vector<int> p, std::vector<int> x) {
    if (p.empty() && x.empty()) {
      std::vector<HNodeId> clique(r->begin(), r->end());
      std::sort(clique.begin(), clique.end());
      cliques_.push_back(std::move(clique));
      return;
    }
    // Pivot: vertex of P ∪ X with the most neighbours in P.
    int pivot = -1;
    size_t best = 0;
    auto count_neighbours = [&](int u) {
      size_t c = 0;
      for (int v : p) {
        if (adj_[u][v]) ++c;
      }
      return c;
    };
    for (int u : p) {
      size_t c = count_neighbours(u);
      if (pivot == -1 || c > best) {
        pivot = u;
        best = c;
      }
    }
    for (int u : x) {
      size_t c = count_neighbours(u);
      if (pivot == -1 || c > best) {
        pivot = u;
        best = c;
      }
    }
    std::vector<int> candidates;
    for (int v : p) {
      if (pivot == -1 || !adj_[pivot][v]) candidates.push_back(v);
    }
    for (int v : candidates) {
      r->push_back(v);
      std::vector<int> p2, x2;
      for (int w : p) {
        if (adj_[v][w]) p2.push_back(w);
      }
      for (int w : x) {
        if (adj_[v][w]) x2.push_back(w);
      }
      Expand(r, std::move(p2), std::move(x2));
      r->pop_back();
      p.erase(std::find(p.begin(), p.end(), v));
      x.push_back(v);
    }
  }

  size_t n_;
  const std::vector<std::vector<bool>>& adj_;
  std::vector<std::vector<HNodeId>> cliques_;
};

}  // namespace

std::vector<HNodeId> SimilarityEnhancement::Preimage(HNodeId e) const {
  std::vector<HNodeId> out;
  for (HNodeId v = 0; v < mu.size(); ++v) {
    if (std::find(mu[v].begin(), mu[v].end(), e) != mu[v].end()) {
      out.push_back(v);
    }
  }
  return out;
}

Result<SimilarityEnhancement> SimilarityEnhance(const Hierarchy& h,
                                                const sim::StringMeasure& d,
                                                double epsilon,
                                                const SeaOptions& options) {
  if (epsilon < 0) {
    return Status::InvalidArgument("SEA: epsilon must be >= 0");
  }
  if (!h.IsAcyclic()) {
    return Status::Inconsistent("SEA: input hierarchy is cyclic");
  }
  const size_t n = h.node_count();

  // epsilon-similarity graph over H's nodes (lines 5-7 of Fig. 12).
  std::vector<std::vector<bool>> adj(n, std::vector<bool>(n, false));
  for (size_t a = 0; a < n; ++a) {
    for (size_t b = a + 1; b < n; ++b) {
      double dist = sim::BoundedNodeDistance(
          h.terms(static_cast<HNodeId>(a)), h.terms(static_cast<HNodeId>(b)),
          d, epsilon);
      if (dist <= epsilon) adj[a][b] = adj[b][a] = true;
    }
  }

  // Maximal cliques = the unique grouped node set (Def. 8 conds 2-4,
  // Thm. 1). Isolated vertices yield singleton cliques, covering line 3.
  // (On an empty hierarchy Bron-Kerbosch reports the empty clique; drop
  // it -- an enhancement of nothing has no nodes.)
  std::vector<std::vector<HNodeId>> cliques = CliqueEnumerator(n, adj).Run();
  std::erase_if(cliques,
                [](const std::vector<HNodeId>& c) { return c.empty(); });

  SimilarityEnhancement result;
  result.mu.assign(n, {});
  for (const auto& clique : cliques) {
    std::vector<std::string> terms;
    for (HNodeId v : clique) {
      for (const auto& t : h.terms(v)) terms.push_back(t);
    }
    HNodeId e = result.enhanced.AddNode(std::move(terms));
    for (HNodeId v : clique) result.mu[v].push_back(e);
  }

  // Order reconstruction (lines 11-13): condition (1) forces an enhanced
  // path A0 ~> B0 whenever some preimage pair has a path in H, so add the
  // edge for every strictly ordered preimage pair.
  const HNodeId enhanced_count =
      static_cast<HNodeId>(result.enhanced.node_count());
  for (HNodeId e1 = 0; e1 < enhanced_count; ++e1) {
    for (HNodeId e2 = 0; e2 < enhanced_count; ++e2) {
      if (e1 == e2) continue;
      bool ordered = false;
      for (HNodeId a : cliques[e1]) {
        for (HNodeId b : cliques[e2]) {
          if (a != b && h.Leq(a, b)) {
            ordered = true;
            break;
          }
        }
        if (ordered) break;
      }
      if (ordered) {
        TOSS_RETURN_NOT_OK(result.enhanced.AddEdge(e1, e2));
      }
    }
  }

  // Line 14: check-acyclic. A cycle means the grouping collapsed an order
  // the hierarchy needs, i.e. (H, d, epsilon) is similarity inconsistent.
  if (!result.enhanced.IsAcyclic()) {
    return Status::Inconsistent(
        "SEA: similarity inconsistent (enhanced hierarchy is cyclic) at "
        "epsilon=" +
        std::to_string(epsilon));
  }

  if (options.strict) {
    // Full Def. 8 condition (1) converse: every enhanced path must hold for
    // all preimage pairs.
    for (HNodeId e1 = 0; e1 < enhanced_count; ++e1) {
      for (HNodeId e2 = 0; e2 < enhanced_count; ++e2) {
        if (e1 == e2 || !result.enhanced.Leq(e1, e2)) continue;
        for (HNodeId a : cliques[e1]) {
          for (HNodeId b : cliques[e2]) {
            if (!h.Leq(a, b)) {
              return Status::Inconsistent(
                  "SEA(strict): enhanced order " +
                  result.enhanced.NodeLabel(e1) + " <= " +
                  result.enhanced.NodeLabel(e2) +
                  " is not backed by all preimage pairs (" + h.NodeLabel(a) +
                  " vs " + h.NodeLabel(b) + ")");
            }
          }
        }
      }
    }
  }

  TOSS_RETURN_NOT_OK(result.enhanced.TransitiveReduction());
  return result;
}

bool IsSimilarityConsistent(const Hierarchy& h, const sim::StringMeasure& d,
                            double epsilon) {
  return SimilarityEnhance(h, d, epsilon).ok();
}

Status VerifyEnhancement(const Hierarchy& h, const sim::StringMeasure& d,
                         double epsilon, const SimilarityEnhancement& e) {
  const size_t n = h.node_count();
  if (e.mu.size() != n) {
    return Status::InvalidArgument("mu size does not match hierarchy");
  }
  for (HNodeId v = 0; v < n; ++v) {
    if (e.mu[v].empty()) {
      return Status::Inconsistent("mu(" + h.NodeLabel(v) + ") is empty");
    }
  }

  // Condition (2): nodes sharing an enhanced node are within epsilon.
  // Condition (3): nodes within epsilon share an enhanced node.
  for (HNodeId a = 0; a < n; ++a) {
    for (HNodeId b = a + 1; b < n; ++b) {
      double dist = sim::NodeDistance(h.terms(a), h.terms(b), d);
      bool share = false;
      for (HNodeId ea : e.mu[a]) {
        for (HNodeId eb : e.mu[b]) {
          if (ea == eb) share = true;
        }
      }
      if (share && dist > epsilon) {
        return Status::Inconsistent("condition 2 violated: " +
                                    h.NodeLabel(a) + " and " +
                                    h.NodeLabel(b) + " share a node");
      }
      if (!share && dist <= epsilon) {
        return Status::Inconsistent("condition 3 violated: " +
                                    h.NodeLabel(a) + " and " +
                                    h.NodeLabel(b) + " share no node");
      }
    }
  }

  // Condition (4): no enhanced node's preimage is a subset of another's.
  const HNodeId m = static_cast<HNodeId>(e.enhanced.node_count());
  std::vector<std::set<HNodeId>> pre(m);
  for (HNodeId v = 0; v < n; ++v) {
    for (HNodeId ev : e.mu[v]) pre[ev].insert(v);
  }
  for (HNodeId x = 0; x < m; ++x) {
    for (HNodeId y = 0; y < m; ++y) {
      if (x == y) continue;
      if (std::includes(pre[y].begin(), pre[y].end(), pre[x].begin(),
                        pre[x].end())) {
        return Status::Inconsistent("condition 4 violated: preimage of " +
                                    e.enhanced.NodeLabel(x) +
                                    " is contained in that of " +
                                    e.enhanced.NodeLabel(y));
      }
    }
  }

  // Condition (1), both directions.
  for (HNodeId a = 0; a < n; ++a) {
    for (HNodeId b = 0; b < n; ++b) {
      if (a == b || !h.Leq(a, b)) continue;
      for (HNodeId ea : e.mu[a]) {
        for (HNodeId eb : e.mu[b]) {
          if (!e.enhanced.Leq(ea, eb)) {
            return Status::Inconsistent(
                "condition 1 (forward) violated between " + h.NodeLabel(a) +
                " and " + h.NodeLabel(b));
          }
        }
      }
    }
  }
  for (HNodeId x = 0; x < m; ++x) {
    for (HNodeId y = 0; y < m; ++y) {
      if (x == y || !e.enhanced.Leq(x, y)) continue;
      for (HNodeId a : pre[x]) {
        for (HNodeId b : pre[y]) {
          if (a != b && !h.Leq(a, b)) {
            return Status::Inconsistent(
                "condition 1 (converse) violated between " +
                e.enhanced.NodeLabel(x) + " and " + e.enhanced.NodeLabel(y));
          }
        }
      }
    }
  }
  return Status::OK();
}

}  // namespace toss::ontology
