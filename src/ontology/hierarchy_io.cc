#include "ontology/hierarchy_io.h"

#include <fstream>
#include <sstream>

#include "common/string_util.h"

namespace toss::ontology {

namespace {

/// Shared line-oriented hierarchy parser; `on_other_line` handles lines
/// that are not node/edge (returns false to reject).
class HierarchyParser {
 public:
  Status Feed(int line_no, std::string_view line, Hierarchy* h) {
    auto fail = [&](const std::string& what) {
      return Status::ParseError("hierarchy line " + std::to_string(line_no) +
                                ": " + what);
    };
    if (StartsWith(line, "node ")) {
      size_t colon = line.find(':');
      if (colon == std::string_view::npos) return fail("expected ':'");
      long long id;
      if (!ParseInt(line.substr(5, colon - 5), &id)) {
        return fail("bad node id");
      }
      if (id != static_cast<long long>(h->node_count())) {
        return fail("node ids must be dense and ascending");
      }
      std::vector<std::string> terms;
      std::string_view rest = line.substr(colon + 1);
      size_t start = 0;
      for (size_t i = 0; i <= rest.size(); ++i) {
        if (i == rest.size() || rest[i] == '|') {
          auto piece = Trim(rest.substr(start, i - start));
          if (!piece.empty()) terms.emplace_back(piece);
          start = i + 1;
        }
      }
      if (terms.empty()) return fail("node with no terms");
      h->AddNode(std::move(terms));
      return Status::OK();
    }
    if (StartsWith(line, "edge ")) {
      size_t arrow = line.find("->");
      if (arrow == std::string_view::npos) return fail("expected '->'");
      long long lower, upper;
      if (!ParseInt(line.substr(5, arrow - 5), &lower) ||
          !ParseInt(line.substr(arrow + 2), &upper)) {
        return fail("bad edge endpoints");
      }
      if (lower < 0 || upper < 0 ||
          lower >= static_cast<long long>(h->node_count()) ||
          upper >= static_cast<long long>(h->node_count())) {
        return fail("edge endpoint out of range");
      }
      return h->AddEdge(static_cast<HNodeId>(lower),
                        static_cast<HNodeId>(upper));
    }
    return fail("expected 'node' or 'edge' line");
  }
};

}  // namespace

std::string FormatHierarchy(const Hierarchy& h) {
  std::string out;
  for (HNodeId v = 0; v < h.node_count(); ++v) {
    out += "node " + std::to_string(v) + ": ";
    const auto& terms = h.terms(v);
    for (size_t i = 0; i < terms.size(); ++i) {
      if (i > 0) out += " | ";
      out += terms[i];
    }
    out += "\n";
  }
  for (HNodeId v = 0; v < h.node_count(); ++v) {
    for (HNodeId p : h.parents(v)) {
      out += "edge " + std::to_string(v) + " -> " + std::to_string(p) + "\n";
    }
  }
  return out;
}

Result<Hierarchy> ParseHierarchyText(std::string_view text) {
  Hierarchy h;
  HierarchyParser parser;
  std::istringstream lines{std::string(text)};
  std::string line;
  int line_no = 0;
  while (std::getline(lines, line)) {
    ++line_no;
    std::string_view trimmed = Trim(line);
    if (trimmed.empty() || trimmed[0] == '#') continue;
    TOSS_RETURN_NOT_OK(parser.Feed(line_no, trimmed, &h));
  }
  return h;
}

std::string FormatOntology(const Ontology& onto) {
  std::string out = "# TOSS ontology dump\n";
  for (const auto& rel : onto.relations()) {
    out += "relation " + rel + "\n";
    out += FormatHierarchy(*onto.Find(rel));
  }
  return out;
}

Result<Ontology> ParseOntologyText(std::string_view text) {
  Ontology onto;
  Hierarchy* current = nullptr;
  HierarchyParser parser;
  std::istringstream lines{std::string(text)};
  std::string line;
  int line_no = 0;
  while (std::getline(lines, line)) {
    ++line_no;
    std::string_view trimmed = Trim(line);
    if (trimmed.empty() || trimmed[0] == '#') continue;
    if (StartsWith(trimmed, "relation ")) {
      std::string name{Trim(trimmed.substr(9))};
      if (name.empty()) {
        return Status::ParseError("ontology line " +
                                  std::to_string(line_no) +
                                  ": empty relation name");
      }
      current = &onto.hierarchy(name);
      continue;
    }
    if (current == nullptr) {
      return Status::ParseError("ontology line " + std::to_string(line_no) +
                                ": content before any 'relation' header");
    }
    TOSS_RETURN_NOT_OK(parser.Feed(line_no, trimmed, current));
  }
  return onto;
}

Status SaveOntology(const Ontology& onto, const std::string& path) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) return Status::IOError("cannot write " + path);
  out << FormatOntology(onto);
  out.close();
  if (!out) return Status::IOError("write failed for " + path);
  return Status::OK();
}

Result<Ontology> LoadOntology(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IOError("cannot open " + path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ParseOntologyText(ss.str());
}

}  // namespace toss::ontology
