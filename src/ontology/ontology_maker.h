// Ontology Maker (paper Section 3, component 1).
//
// Associates an ontology with an XML instance by combining two sources:
//  * document structure: a tag nested under another tag yields a partof
//    edge (Fig. 9's per-source hierarchies are exactly these), and
//  * the lexical KB: isa (hypernym) and partof (holonym) facts for tags and
//    for content strings of designated "entity" tags -- the paper's use of
//    WordNet plus administrator rules.
//
// The resulting per-instance ontologies are then fused (ontology.h) and
// similarity-enhanced (sea.h), mirroring the TOSS pipeline.

#ifndef TOSS_ONTOLOGY_ONTOLOGY_MAKER_H_
#define TOSS_ONTOLOGY_ONTOLOGY_MAKER_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "lexicon/lexicon.h"
#include "ontology/ontology.h"
#include "xml/xml_document.h"

namespace toss::ontology {

struct OntologyMakerOptions {
  /// Derive partof edges from element nesting.
  bool use_structure = true;
  /// Consult the lexicon for isa/partof facts about tags and content terms.
  bool use_lexicon = true;
  /// Tags whose *content strings* become ontology terms (e.g. "booktitle",
  /// "conference", "author"). Empty = tags only.
  std::vector<std::string> content_tags;
  /// Follow lexicon hypernym/holonym chains transitively (true) or only one
  /// level (false).
  bool transitive_lexicon = true;
};

/// Builds the ontology of one XML instance. Edges that would create a cycle
/// (e.g. recursive element nesting) are skipped, keeping hierarchies DAGs.
Result<Ontology> MakeOntology(const xml::XmlDocument& doc,
                              const lexicon::Lexicon& lexicon,
                              const OntologyMakerOptions& options = {});

/// Builds ONE ontology covering a whole multi-document instance (e.g. a
/// store collection): tags and content terms are pooled across all
/// documents before hierarchy construction, so shared terms share nodes.
Result<Ontology> MakeOntologyForDocuments(
    const std::vector<const xml::XmlDocument*>& docs,
    const lexicon::Lexicon& lexicon, const OntologyMakerOptions& options = {});

/// Proposes interoperation constraints between two instances' ontologies
/// for one relation: x:0 = y:1 whenever x and y are equal strings or
/// lexicon synonyms. DBA-authored constraints can be appended on top.
std::vector<InteropConstraint> SuggestEqualityConstraints(
    const Hierarchy& left, const Hierarchy& right,
    const lexicon::Lexicon& lexicon);

}  // namespace toss::ontology

#endif  // TOSS_ONTOLOGY_ONTOLOGY_MAKER_H_
