#include "store/collection.h"

#include <algorithm>

#include "common/string_util.h"
#include "obs/metrics.h"
#include "store/key_encoding.h"
#include "xml/xml_parser.h"
#include "xml/xml_writer.h"

namespace toss::store {

namespace {

/// Process-wide mirrors of the per-collection cache/query counters. Unlike
/// the per-Collection stats, these are cumulative across Database::Reload
/// (which rebuilds the collections, and with them the local counters).
struct StoreMetrics {
  obs::Counter& cache_hits =
      obs::Metrics().GetCounter("store.tree_cache.hits");
  obs::Counter& cache_misses =
      obs::Metrics().GetCounter("store.tree_cache.misses");
  obs::Counter& queries = obs::Metrics().GetCounter("store.query.count");
  obs::Counter& docs_scanned =
      obs::Metrics().GetCounter("store.query.docs_scanned");
  obs::Counter& index_pruned =
      obs::Metrics().GetCounter("store.query.index_pruned");
};

StoreMetrics& Instruments() {
  static StoreMetrics* m = new StoreMetrics();
  return *m;
}

}  // namespace

// Moves transfer the counters and zero the source: a moved-from collection
// no longer backs the cache whose activity they measured, so letting it keep
// reporting the old numbers is the stale-stats gap the registry mirror
// closes for good.
Collection::Collection(Collection&& other) noexcept
    : name_(std::move(other.name_)),
      docs_(std::move(other.docs_)),
      by_key_(std::move(other.by_key_)),
      tag_index_(std::move(other.tag_index_)),
      unindexed_tag_docs_(std::move(other.unindexed_tag_docs_)),
      term_index_(std::move(other.term_index_)),
      value_index_(std::move(other.value_index_)),
      numeric_index_(std::move(other.numeric_index_)),
      tree_lru_(std::move(other.tree_lru_)),
      tree_cache_(std::move(other.tree_cache_)),
      tree_cache_hits_(other.tree_cache_hits_),
      tree_cache_misses_(other.tree_cache_misses_),
      tree_cache_capacity_(other.tree_cache_capacity_) {
  other.tree_cache_hits_ = 0;
  other.tree_cache_misses_ = 0;
}

Collection& Collection::operator=(Collection&& other) noexcept {
  if (this == &other) return *this;
  name_ = std::move(other.name_);
  docs_ = std::move(other.docs_);
  by_key_ = std::move(other.by_key_);
  tag_index_ = std::move(other.tag_index_);
  unindexed_tag_docs_ = std::move(other.unindexed_tag_docs_);
  term_index_ = std::move(other.term_index_);
  value_index_ = std::move(other.value_index_);
  numeric_index_ = std::move(other.numeric_index_);
  tree_lru_ = std::move(other.tree_lru_);
  tree_cache_ = std::move(other.tree_cache_);
  tree_cache_hits_ = other.tree_cache_hits_;
  tree_cache_misses_ = other.tree_cache_misses_;
  tree_cache_capacity_ = other.tree_cache_capacity_;
  other.tree_cache_hits_ = 0;
  other.tree_cache_misses_ = 0;
  return *this;
}

Result<DocId> Collection::Insert(std::string key, xml::XmlDocument doc) {
  if (doc.empty()) {
    return Status::InvalidArgument("Insert: empty document");
  }
  if (by_key_.count(key)) {
    return Status::AlreadyExists("document key '" + key +
                                 "' already present in collection '" +
                                 name_ + "'");
  }
  DocId id = static_cast<DocId>(docs_.size());
  docs_.push_back({key, std::move(doc), true});
  docs_[id].serialized_bytes = xml::Write(docs_[id].doc).size();
  by_key_[std::move(key)] = id;
  IndexDocument(id);
  return id;
}

Result<DocId> Collection::InsertXml(std::string key, std::string_view text) {
  TOSS_ASSIGN_OR_RETURN(xml::XmlDocument doc, xml::Parse(text));
  return Insert(std::move(key), std::move(doc));
}

Status Collection::Remove(const std::string& key) {
  auto it = by_key_.find(key);
  if (it == by_key_.end()) {
    return Status::NotFound("no document with key '" + key + "'");
  }
  DocId id = it->second;
  UnindexDocument(id);
  docs_[id].live = false;
  InvalidateCachedTree(id);
  by_key_.erase(it);
  return Status::OK();
}

Result<DocId> Collection::Replace(const std::string& key,
                                  xml::XmlDocument doc) {
  if (doc.empty()) {
    return Status::InvalidArgument("Replace: empty document");
  }
  auto it = by_key_.find(key);
  if (it == by_key_.end()) {
    return Status::NotFound("no document with key '" + key + "'");
  }
  DocId old = it->second;
  UnindexDocument(old);
  docs_[old].live = false;
  InvalidateCachedTree(old);
  DocId id = static_cast<DocId>(docs_.size());
  docs_.push_back({key, std::move(doc), true});
  docs_[id].serialized_bytes = xml::Write(docs_[id].doc).size();
  it->second = id;
  IndexDocument(id);
  return id;
}

Result<DocId> Collection::FindKey(const std::string& key) const {
  auto it = by_key_.find(key);
  if (it == by_key_.end()) {
    return Status::NotFound("no document with key '" + key + "'");
  }
  return it->second;
}

std::vector<DocId> Collection::AllDocs() const {
  std::vector<DocId> out;
  for (DocId id = 0; id < docs_.size(); ++id) {
    if (docs_[id].live) out.push_back(id);
  }
  return out;
}

void Collection::IndexDocument(DocId id) {
  Entry& entry = docs_[id];
  const xml::XmlDocument& doc = entry.doc;
  std::vector<xml::NodeId> elements{doc.root()};
  auto descendants = doc.ElementDescendants(doc.root());
  elements.insert(elements.end(), descendants.begin(), descendants.end());
  for (xml::NodeId nid : elements) {
    const auto& n = doc.node(nid);
    // Tags join the process dictionary here; the tag index is id-keyed.
    // Dictionary overflow (2^26 terms) degrades to the conservative
    // unindexed set instead of corrupting a shared kInvalidSymbol bucket.
    SymbolId tag_sym = Interner::Global().Intern(n.tag);
    if (tag_sym != kInvalidSymbol) {
      tag_index_[tag_sym].insert(id);
    } else {
      unindexed_tag_docs_.insert(id);
    }
    // Value indexes: the element's text content (leaf-style values).
    std::string content = doc.TextContent(nid);
    if (!content.empty() && content.size() <= 256) {
      std::string vkey = ValueKey(n.tag, content);
      value_index_.Insert(vkey, id);
      entry.value_keys.push_back(std::move(vkey));
      if (auto nkey = NumericKey(n.tag, content); nkey.has_value()) {
        numeric_index_.Insert(*nkey, id);
        entry.numeric_keys.push_back(std::move(*nkey));
      }
    }
    for (const auto& tok : TokenizeWords(content)) {
      term_index_[tok].insert(id);
    }
  }
}

void Collection::UnindexDocument(DocId id) {
  // Tag/term postings are erased by sweep (removal is rare); the ordered
  // indexes use the per-document key log recorded at index time.
  for (auto& [tag, postings] : tag_index_) postings.erase(id);
  unindexed_tag_docs_.erase(id);
  for (auto& [term, postings] : term_index_) postings.erase(id);
  Entry& entry = docs_[id];
  for (const auto& key : entry.value_keys) {
    (void)value_index_.Remove(key, id);
  }
  for (const auto& key : entry.numeric_keys) {
    (void)numeric_index_.Remove(key, id);
  }
  entry.value_keys.clear();
  entry.numeric_keys.clear();
}

Result<std::vector<DocId>> Collection::DocsWithValueInRange(
    std::string_view tag, const std::optional<std::string>& lo,
    const std::optional<std::string>& hi) const {
  bool numeric = true;
  long long scratch;
  for (const auto* bound : {&lo, &hi}) {
    if (!bound->has_value()) continue;
    if (!ParseInt(**bound, &scratch)) {
      numeric = false;
      double d;
      if (ParseDouble(**bound, &d)) {
        return Status::Unsupported(
            "range scans over non-integer numeric bounds");
      }
    }
  }
  std::vector<DocId> out;
  auto collect = [&](const std::string&, const std::vector<DocId>& p) {
    out.insert(out.end(), p.begin(), p.end());
    return true;
  };
  if (numeric) {
    // Only integer-valued contents can satisfy an integer-bounded ordering
    // (CompareScalar treats mixed representations as incomparable), so the
    // numeric index is complete for this query.
    std::string scan_lo =
        lo.has_value() ? *NumericKey(tag, *lo) : ValueKey(tag, "");
    if (hi.has_value()) {
      numeric_index_.RangeScan(scan_lo, *NumericKey(tag, *hi), collect);
    } else {
      numeric_index_.RangeScanExclusiveHi(scan_lo, TagPrefixEnd(tag),
                                          collect);
    }
  } else {
    std::string scan_lo = ValueKey(tag, lo.value_or(""));
    if (hi.has_value()) {
      value_index_.RangeScan(scan_lo, ValueKey(tag, *hi), collect);
    } else {
      value_index_.RangeScanExclusiveHi(scan_lo, TagPrefixEnd(tag),
                                        collect);
    }
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

std::vector<DocId> Collection::DocsWithAnyTag(
    const std::set<std::string>& tags) const {
  // Tag postings hold live docs only (UnindexDocument sweeps them), so the
  // union needs no liveness re-check. A tag absent from the dictionary is
  // in no indexed document.
  std::set<DocId> docs(unindexed_tag_docs_.begin(),
                       unindexed_tag_docs_.end());
  Interner& interner = Interner::Global();
  for (const std::string& tag : tags) {
    auto sym = interner.Find(tag);
    if (!sym.has_value()) continue;
    auto it = tag_index_.find(*sym);
    if (it != tag_index_.end()) {
      docs.insert(it->second.begin(), it->second.end());
    }
  }
  return {docs.begin(), docs.end()};
}

std::vector<DocId> Collection::DocsWithAnyTagIds(
    const std::vector<SymbolId>& tags) const {
  std::set<DocId> docs(unindexed_tag_docs_.begin(),
                       unindexed_tag_docs_.end());
  for (SymbolId tag : tags) {
    auto it = tag_index_.find(tag);
    if (it != tag_index_.end()) {
      docs.insert(it->second.begin(), it->second.end());
    }
  }
  return {docs.begin(), docs.end()};
}

std::vector<DocId> Collection::DocsWithWildcardTag() const {
  std::set<DocId> docs(unindexed_tag_docs_.begin(),
                       unindexed_tag_docs_.end());
  Interner& interner = Interner::Global();
  for (const auto& [tag, postings] : tag_index_) {
    if (interner.HasStar(tag)) {
      docs.insert(postings.begin(), postings.end());
    }
  }
  return {docs.begin(), docs.end()};
}

std::vector<DocId> Collection::PlanCandidates(const xml::PlanHints& hints,
                                              bool* pruned) const {
  *pruned = false;
  // Materialize a sorted doc-id list per usable hint; missing posting = no
  // possible match. Intersection starts from the smallest list.
  std::vector<std::vector<DocId>> postings;
  for (const auto& tag : hints.required_tags) {
    // Id-keyed index: unknown tag = empty posting. Docs whose tags could
    // not be interned are unclassifiable and must stay candidates.
    std::vector<DocId> p(unindexed_tag_docs_.begin(),
                         unindexed_tag_docs_.end());
    if (auto sym = Interner::Global().Find(tag)) {
      auto it = tag_index_.find(*sym);
      if (it != tag_index_.end()) {
        p.insert(p.end(), it->second.begin(), it->second.end());
        std::sort(p.begin(), p.end());
        p.erase(std::unique(p.begin(), p.end()), p.end());
      }
    }
    postings.emplace_back(std::move(p));
  }
  for (const auto& [tag, value] : hints.required_values) {
    // Value index only covers short leaf values; skip long ones (the tag
    // hint still applies).
    if (value.size() > 256) continue;
    const std::vector<DocId>* p = value_index_.Get(ValueKey(tag, value));
    postings.emplace_back(p == nullptr ? std::vector<DocId>{} : *p);
  }
  for (const auto& term : hints.required_terms) {
    auto it = term_index_.find(term);
    postings.emplace_back(it == term_index_.end()
                              ? std::vector<DocId>{}
                              : std::vector<DocId>(it->second.begin(),
                                                   it->second.end()));
  }
  // Disjunctive groups: union the value postings per group, then intersect
  // the unions like ordinary postings. Keeps SEO-expanded TOSS queries as
  // index-prunable as exact-match TAX queries.
  for (const auto& group : hints.value_groups) {
    std::vector<DocId> merged;
    bool usable = true;
    for (const auto& value : group.values) {
      if (value.size() > 256) {
        usable = false;  // unindexed long value: cannot prune soundly
        break;
      }
      const std::vector<DocId>* p =
          value_index_.Get(ValueKey(group.tag, value));
      if (p != nullptr) merged.insert(merged.end(), p->begin(), p->end());
    }
    if (!usable) continue;
    std::sort(merged.begin(), merged.end());
    merged.erase(std::unique(merged.begin(), merged.end()), merged.end());
    postings.push_back(std::move(merged));
  }
  // Range hints: scan the ordered indexes. Unsupported bound shapes
  // (non-integer numerics) simply do not prune.
  for (const auto& range : hints.ranges) {
    auto docs = DocsWithValueInRange(range.tag, range.lo, range.hi);
    if (docs.ok()) postings.push_back(std::move(docs).value());
  }
  if (postings.empty()) return AllDocs();
  *pruned = true;
  std::sort(postings.begin(), postings.end(),
            [](const auto& a, const auto& b) { return a.size() < b.size(); });
  std::vector<DocId> result = std::move(postings[0]);
  for (size_t i = 1; i < postings.size() && !result.empty(); ++i) {
    std::vector<DocId> next;
    next.reserve(result.size());
    std::set_intersection(result.begin(), result.end(),
                          postings[i].begin(), postings[i].end(),
                          std::back_inserter(next));
    result = std::move(next);
  }
  // Deleted docs keep stale ids out via the live check in Query.
  return result;
}

std::vector<Match> Collection::Query(const xml::XPath& xpath,
                                     bool use_indexes,
                                     QueryStats* stats) const {
  std::vector<DocId> candidates;
  bool pruned = false;
  if (use_indexes) {
    candidates = PlanCandidates(xpath.Hints(), &pruned);
  } else {
    candidates = AllDocs();
  }
  std::vector<Match> out;
  size_t scanned = 0;
  for (DocId id : candidates) {
    if (id >= docs_.size() || !docs_[id].live) continue;
    ++scanned;
    for (xml::NodeId nid : xpath.Evaluate(docs_[id].doc)) {
      out.push_back({id, nid});
    }
  }
  StoreMetrics& m = Instruments();
  m.queries.Increment();
  m.docs_scanned.Add(scanned);
  if (use_indexes && pruned) m.index_pruned.Increment();
  if (stats != nullptr) {
    stats->candidate_docs = candidates.size();
    stats->scanned_docs = scanned;
    stats->total_docs = by_key_.size();
    stats->used_indexes = use_indexes && pruned;
  }
  return out;
}

Result<std::vector<Match>> Collection::QueryText(std::string_view xpath,
                                                 bool use_indexes,
                                                 QueryStats* stats) const {
  TOSS_ASSIGN_OR_RETURN(xml::XPath compiled, xml::XPath::Compile(xpath));
  return Query(compiled, use_indexes, stats);
}

Collection::Stats Collection::GetStats() const {
  Stats stats;
  stats.live_docs = by_key_.size();
  stats.tag_index_entries = tag_index_.size();
  stats.term_index_entries = term_index_.size();
  stats.value_index_keys = value_index_.key_count();
  stats.numeric_index_keys = numeric_index_.key_count();
  stats.approx_bytes = ApproxByteSize();
  return stats;
}

size_t Collection::ApproxByteSize() const {
  size_t total = 0;
  for (const auto& e : docs_) {
    if (e.live) total += e.serialized_bytes;
  }
  return total;
}

std::shared_ptr<const tax::DataTree> Collection::DecodedTree(DocId id) const {
  StoreMetrics& m = Instruments();
  {
    std::lock_guard<std::mutex> lock(tree_cache_mu_);
    auto it = tree_cache_.find(id);
    if (it != tree_cache_.end()) {
      ++tree_cache_hits_;
      m.cache_hits.Increment();
      tree_lru_.splice(tree_lru_.begin(), tree_lru_, it->second.lru_it);
      return it->second.tree;
    }
    ++tree_cache_misses_;
    m.cache_misses.Increment();
  }
  // Decode outside the lock: FromXml dominates the cost, and documents are
  // immutable per DocId, so racing decoders build identical trees and the
  // first one into the map wins.
  auto tree = std::make_shared<const tax::DataTree>(
      tax::DataTree::FromXml(docs_[id].doc, docs_[id].doc.root()));
  std::lock_guard<std::mutex> lock(tree_cache_mu_);
  auto it = tree_cache_.find(id);
  if (it != tree_cache_.end()) {
    tree_lru_.splice(tree_lru_.begin(), tree_lru_, it->second.lru_it);
    return it->second.tree;
  }
  tree_lru_.push_front(id);
  tree_cache_.emplace(id, TreeCacheEntry{tree, tree_lru_.begin()});
  while (tree_cache_.size() > tree_cache_capacity_) {
    tree_cache_.erase(tree_lru_.back());
    tree_lru_.pop_back();
  }
  return tree;
}

void Collection::SetTreeCacheCapacity(size_t capacity) {
  std::lock_guard<std::mutex> lock(tree_cache_mu_);
  tree_cache_capacity_ = std::max<size_t>(1, capacity);
  while (tree_cache_.size() > tree_cache_capacity_) {
    tree_cache_.erase(tree_lru_.back());
    tree_lru_.pop_back();
  }
}

Collection::TreeCacheStats Collection::GetTreeCacheStats() const {
  std::lock_guard<std::mutex> lock(tree_cache_mu_);
  TreeCacheStats stats;
  stats.hits = tree_cache_hits_;
  stats.misses = tree_cache_misses_;
  stats.entries = tree_cache_.size();
  stats.capacity = tree_cache_capacity_;
  return stats;
}

void Collection::ResetTreeCacheStats() {
  std::lock_guard<std::mutex> lock(tree_cache_mu_);
  tree_cache_hits_ = 0;
  tree_cache_misses_ = 0;
}

void Collection::InvalidateCachedTree(DocId id) {
  std::lock_guard<std::mutex> lock(tree_cache_mu_);
  auto it = tree_cache_.find(id);
  if (it == tree_cache_.end()) return;
  tree_lru_.erase(it->second.lru_it);
  tree_cache_.erase(it);
}

}  // namespace toss::store
