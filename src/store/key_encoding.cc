#include "store/key_encoding.h"

#include <cstdio>

#include "common/string_util.h"

namespace toss::store {

std::optional<std::string> EncodeOrderedInt(std::string_view value) {
  long long v;
  if (!ParseInt(value, &v)) return std::nullopt;
  // Bias into [0, 2^64): two's-complement offset keeps order.
  unsigned long long biased =
      static_cast<unsigned long long>(v) + (1ULL << 63);
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%020llu", biased);
  return std::string(buf);
}

std::string ValueKey(std::string_view tag, std::string_view value) {
  std::string key;
  key.reserve(tag.size() + 1 + value.size());
  key.append(tag);
  key.push_back(kKeySep);
  key.append(value);
  return key;
}

std::optional<std::string> NumericKey(std::string_view tag,
                                      std::string_view value) {
  auto encoded = EncodeOrderedInt(value);
  if (!encoded.has_value()) return std::nullopt;
  return ValueKey(tag, *encoded);
}

std::string TagPrefixEnd(std::string_view tag) {
  std::string end(tag);
  end.push_back(kKeySep + 1);
  return end;
}

}  // namespace toss::store
