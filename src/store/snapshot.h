// On-disk snapshot format of the crash-safe store (see DESIGN.md
// "Durability & recovery").
//
// A database directory holds immutable numbered generations plus a commit
// pointer:
//
//   <dir>/CURRENT                 -- "gen-<N>\n"; swapped by atomic rename
//   <dir>/gen-<N>/MANIFEST        -- versioned, self-validating (below)
//   <dir>/gen-<N>/c000000/000000.xml ...
//   <dir>/gen-<N>.tmp/            -- uncommitted build in progress (or a
//                                    stale one from a crash; ignored by
//                                    Open, cleaned by the next Save)
//
// MANIFEST grammar (text, line-oriented; <key> / <name> are %-escaped so
// newlines, '%', and control bytes round-trip):
//
//   toss-snapshot 1
//   symbols <file> <count> <bytes> <crc32-hex>   (optional, at most one)
//   wal <file> <start-seq>                       (optional, at most one)
//   collection <subdir> <ndocs> <escaped-name>
//   doc <file> <bytes> <crc32-hex> <escaped-key>
//   ...                                     (exactly <ndocs> doc lines)
//   end-snapshot
//
// The wal line names this generation's tail log (DESIGN.md "Write path &
// WAL"): durable mutations made after the checkpoint append to <file> (a
// sibling of the generation directories), and Open replays it over the
// loaded generation. <start-seq> is the sequence number the log's first
// record must carry; an absent file is an empty log. Generations written
// by a plain Save (or the legacy format) have no wal line and replay
// nothing.
//
// The symbols line names a sidecar term-dictionary file (<count> %-escaped
// terms, one per line) holding every tag/content term of the snapshot's
// documents; Open pre-interns them so id-based evaluation starts warm (see
// DESIGN.md "Term dictionary & id-based evaluation"). The section is
// optional: manifests written before it existed load fine and intern
// lazily as documents decode. When present it is verified like a document
// payload -- byte count and CRC32 -- and a corrupt table rejects the whole
// generation (Open degrades to the next intact one).
//
// Collection subdirectories and document filenames are ordinals, never
// derived from user-provided names/keys, so hostile keys cannot escape the
// snapshot directory. The trailing end-snapshot line makes truncation
// detectable; per-file byte counts and CRC32s make torn payloads
// detectable.

#ifndef TOSS_STORE_SNAPSHOT_H_
#define TOSS_STORE_SNAPSHOT_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"

namespace toss::store {

inline constexpr char kCurrentFileName[] = "CURRENT";
inline constexpr char kManifestFileName[] = "MANIFEST";
inline constexpr char kSymbolsFileName[] = "SYMBOLS";
inline constexpr char kLegacyManifestFileName[] = "manifest.txt";
inline constexpr int kSnapshotFormatVersion = 1;

/// CRC-32 (IEEE 802.3, polynomial 0xEDB88320) of `data`.
uint32_t Crc32(std::string_view data);

/// %-escapes `%`, CR, LF, and other control bytes so the result is a
/// single-line token-safe field. Lossless for arbitrary byte strings.
std::string EscapeKey(std::string_view key);

/// Inverse of EscapeKey. Malformed or non-canonical escapes (truncated
/// "%X", non-hex digits, raw control bytes) are rejected with ParseError.
Result<std::string> UnescapeKey(std::string_view escaped);

/// "gen-<n>" / "gen-<n>.tmp" directory naming.
std::string GenerationDirName(uint64_t n);
std::string TempGenerationDirName(uint64_t n);
std::optional<uint64_t> ParseGenerationDirName(std::string_view name);
std::optional<uint64_t> ParseTempGenerationDirName(std::string_view name);

/// "wal-<n>.log" tail-log naming (n = the generation the log applies to).
std::string WalFileName(uint64_t n);
std::optional<uint64_t> ParseWalFileName(std::string_view name);

struct ManifestDoc {
  std::string file;   ///< filename inside the collection subdir
  uint64_t bytes = 0;
  uint32_t crc32 = 0;
  std::string key;    ///< unescaped user key
};

struct ManifestCollection {
  std::string name;    ///< unescaped collection name
  std::string subdir;  ///< ordinal directory inside the generation
  std::vector<ManifestDoc> docs;
};

/// Descriptor of the generation's term-dictionary sidecar file.
struct ManifestSymbols {
  std::string file;    ///< filename inside the generation dir
  uint64_t count = 0;  ///< number of term lines in the file
  uint64_t bytes = 0;
  uint32_t crc32 = 0;
};

/// Descriptor of the generation's tail write-ahead log.
struct ManifestWal {
  std::string file;        ///< log filename, a sibling of the gen dirs
  uint64_t start_seq = 0;  ///< sequence number of the log's first record
};

struct SnapshotManifest {
  std::optional<ManifestSymbols> symbols;
  std::optional<ManifestWal> wal;
  std::vector<ManifestCollection> collections;

  std::string Format() const;
};

/// Serializes a term dictionary: one %-escaped term per line, terms in the
/// given order (Save passes them sorted). Lossless for arbitrary bytes,
/// including empty terms (an empty line) and terms with newlines.
std::string FormatSymbolsFile(const std::vector<std::string>& terms);

/// Inverse of FormatSymbolsFile. Verifies the line count against
/// `expected_count` (from the manifest) and rejects malformed escapes or a
/// truncated final line.
Result<std::vector<std::string>> ParseSymbolsFile(std::string_view text,
                                                  uint64_t expected_count);

/// Parses and validates a MANIFEST. Truncated documents, unknown versions,
/// bad counts, and malformed escapes all yield typed errors (ParseError /
/// Unsupported), never a partially-filled manifest.
Result<SnapshotManifest> ParseManifest(std::string_view text);

}  // namespace toss::store

#endif  // TOSS_STORE_SNAPSHOT_H_
