// Write-ahead log: the store's durable mutation path (DESIGN.md "Write
// path & WAL").
//
// A log file is a sequence of length-prefixed, CRC-checked records, each
// one Insert/Replace/Remove mutation:
//
//   rec <seq> <payload-bytes> <crc32-hex>\n
//   <payload>\n
//
// where <payload> is
//
//   <op> <escaped-collection>\n
//   <escaped-key>\n
//   <xml-bytes>                      (empty for remove)
//
// <op> is insert | replace | remove; collection names and keys reuse the
// snapshot format's %-escaping so newlines and control bytes round-trip,
// and the XML payload is raw bytes (the length prefix, not line structure,
// delimits it). <seq> numbers records contiguously from the MANIFEST's
// wal start-seq; the CRC covers the payload.
//
// Replay rules (ParseWalLog):
//   * A record with a complete header, a complete payload, its trailing
//     newline, a matching CRC, and the expected sequence number is applied.
//   * A final record cut short -- header without newline, payload shorter
//     than declared, or missing terminator -- is a TORN TAIL: the write
//     that produced it never had its fsync acknowledged, so the record is
//     discarded (truncate-and-warn) and everything before it is kept.
//   * Anything else -- CRC mismatch over a complete payload, a malformed
//     or out-of-sequence header mid-log, duplicated records -- is
//     CORRUPTION: acknowledged writes can no longer be trusted, so the
//     whole log is rejected (and Database::Open fails loudly rather than
//     silently dropping durable data).
//
// WalWriter is the group-commit appender: any number of threads call
// Append; the first to arrive becomes the batch leader, drains the queue
// (bounded by max_batch_records, optionally lingering group_wait_micros
// for followers), writes every queued record in ONE AppendFile, makes them
// durable with ONE fsync, then applies the batch's in-memory effects in
// sequence order before waking the followers -- so a committed mutation is
// both durable and visible when Append returns, and N concurrent writers
// cost one fsync, not N. A failed append or fsync poisons the writer
// (the log tail is unknown); Database::Checkpoint rotates to a fresh
// segment and clears the poison.

#ifndef TOSS_STORE_WAL_H_
#define TOSS_STORE_WAL_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "store/env.h"

namespace toss::store {

enum class WalOp { kInsert, kReplace, kRemove };

/// One logged mutation. `xml` is empty for kRemove.
struct WalRecord {
  WalOp op = WalOp::kInsert;
  std::string collection;
  std::string key;
  std::string xml;
};

/// Serializes one mutation payload (the bytes the CRC covers; no header).
std::string FormatWalPayload(const WalRecord& record);

/// Inverse of FormatWalPayload. ParseError on malformed escapes/ops.
Result<WalRecord> ParseWalPayload(std::string_view payload);

/// Frames `payload` as a full log record: header line + payload + '\n'.
std::string FormatWalRecord(uint64_t seq, std::string_view payload);

/// Outcome of scanning a log image.
struct ParsedWal {
  std::vector<WalRecord> records;  ///< every intact record, in log order
  uint64_t next_seq = 0;           ///< start_seq + records.size()
  uint64_t intact_bytes = 0;       ///< length of the valid prefix
  bool torn_tail = false;          ///< trailing partial record discarded
  std::string torn_reason;         ///< what the tail looked like (warn text)
};

/// Scans a whole log image per the replay rules above. `start_seq` is the
/// expected sequence of the first record (from the MANIFEST wal line).
/// A torn tail is tolerated (torn_tail/torn_reason report it); mid-log
/// corruption returns IOError/ParseError and must reject the log.
Result<ParsedWal> ParseWalLog(std::string_view text, uint64_t start_seq);

// --- Group-commit writer ---------------------------------------------------

struct WalWriterOptions {
  /// Most records one AppendFile+fsync pair may cover.
  size_t max_batch_records = 128;
  /// How long a leader lingers for followers to join its batch before
  /// writing (bounded wait; 0 = write immediately with whatever queued
  /// while the previous batch was being synced).
  uint64_t group_wait_micros = 0;
  /// Retry/backoff for transient (Unavailable) append/fsync failures.
  RetryPolicy retry;
};

class WalWriter {
 public:
  /// In-memory effect of one record, run by the batch leader strictly in
  /// sequence order, only after the fsync covering the record returned.
  using ApplyFn = std::function<Status()>;

  /// `next_seq` is the sequence the next appended record will carry (log
  /// end at attach time). `path` must already hold only intact records.
  WalWriter(Env* env, std::string path, uint64_t next_seq,
            WalWriterOptions options = {});

  WalWriter(const WalWriter&) = delete;
  WalWriter& operator=(const WalWriter&) = delete;

  /// A queued record awaiting group commit (returned by Enqueue).
  struct Pending {
    std::string bytes;  ///< framed record (header + payload + '\n')
    ApplyFn apply;
    Status result;
    bool done = false;
    /// True iff the record reached durability and its apply ran. False
    /// with done: the batch failed before fsync (callers roll back any
    /// bookkeeping they staged at Enqueue time). Reading it after Wait
    /// returns is race-free (synchronized by Wait's final lock).
    bool applied = false;
  };

  /// Assigns the next sequence number and queues the record WITHOUT
  /// waiting -- callers validate-and-enqueue atomically under their own
  /// lock, then drop it and Wait, so validation order matches log order
  /// while fsyncs still batch. Returns nullptr when the writer is
  /// poisoned. Every ticket must be passed to Wait exactly once.
  std::shared_ptr<Pending> Enqueue(std::string payload, ApplyFn apply);

  /// Drives/awaits group commit for a ticket from Enqueue: the first
  /// waiter in becomes the batch leader (one AppendFile + one fsync for
  /// the whole queue), the rest block until their record is durable and
  /// its `apply` ran.
  Status Wait(const std::shared_ptr<Pending>& ticket);

  /// Enqueue + Wait: appends one record and blocks until it is durable
  /// (group-committed) and its `apply` ran. Returns apply's status on
  /// success; IOError / Unavailable when the log write failed (the record
  /// is then NOT durable and `apply` did not run; the writer is poisoned
  /// until Rotate).
  Status Append(std::string payload, ApplyFn apply);

  /// True when no records are queued and no batch is being written. Under
  /// an external lock that blocks new Enqueues (Database::Checkpoint),
  /// idleness is stable and rotation cannot race an in-flight batch.
  bool Idle() const;

  /// Switches to a fresh (empty or absent) segment at `path`, keeping the
  /// sequence counter, and clears any poison -- the checkpoint that calls
  /// this has already made every applied mutation durable in a snapshot.
  /// Fails with Unavailable when appends are in flight.
  Status Rotate(std::string path);

  /// Sequence number the next Append will write.
  uint64_t next_seq() const;

  /// True after a failed append/fsync: the on-disk tail is unknown, so
  /// further appends are refused until Rotate.
  bool poisoned() const;

  const std::string& path() const { return path_; }

  struct Stats {
    uint64_t appends = 0;   ///< records requested
    uint64_t records = 0;   ///< records durably written
    uint64_t batches = 0;   ///< AppendFile+fsync rounds
    uint64_t max_batch = 0; ///< largest batch, in records
  };
  Stats GetStats() const;

 private:
  Env* env_;
  std::string path_;
  WalWriterOptions options_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::shared_ptr<Pending>> queue_;
  bool leader_active_ = false;
  bool poisoned_ = false;
  uint64_t next_seq_;
  Stats stats_;
};

}  // namespace toss::store

#endif  // TOSS_STORE_WAL_H_
