// Database: a named set of collections with crash-safe, generational
// directory persistence.
//
// On-disk layout (see snapshot.h and DESIGN.md "Durability & recovery"):
//   <dir>/CURRENT            -- commit pointer, "gen-<N>\n"
//   <dir>/gen-<N>/MANIFEST   -- versioned manifest with per-file CRC32s
//   <dir>/gen-<N>/c<ordinal>/<ordinal>.xml
//
// Save builds the next generation in gen-<N>.tmp, fsyncs every file,
// seals it with an atomic rename, and only then swings CURRENT (also via
// atomic rename); the previous generation is deleted strictly after the
// commit, so a crash or injected I/O failure at ANY point leaves either
// the old or the new state recoverable -- never a torn hybrid. Open
// verifies every checksum and degrades to the newest intact generation,
// reporting what it discarded through RecoveryReport. Directories written
// by the pre-generational format (manifest.txt + <collection>/_keys.txt)
// remain readable through a legacy fallback path.

#ifndef TOSS_STORE_DATABASE_H_
#define TOSS_STORE_DATABASE_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "obs/trace.h"
#include "store/collection.h"
#include "store/env.h"

namespace toss::store {

/// What Open had to discard or work around to produce a database. Empty
/// (no discards, no legacy) after a clean load of a committed generation.
struct RecoveryReport {
  /// Generation that was loaded ("gen-<N>", or "legacy").
  std::string loaded_generation;
  /// True when the pre-generational manifest.txt format was read.
  bool used_legacy_format = false;

  struct Discarded {
    std::string generation;  ///< "gen-<N>", or "CURRENT" for a bad pointer
    std::string reason;      ///< the Status that disqualified it
  };
  /// Corrupt/unreadable generations skipped, newest first.
  std::vector<Discarded> discarded;

  /// True when recovery fell back past the committed generation or read
  /// the legacy format.
  bool degraded() const { return !discarded.empty() || used_legacy_format; }
};

class Database {
 public:
  Database() = default;

  /// Creates an empty collection. AlreadyExists when the name is taken.
  Result<Collection*> CreateCollection(const std::string& name);

  /// Returns the named collection, or NotFound.
  Result<Collection*> GetCollection(const std::string& name);
  Result<const Collection*> GetCollection(const std::string& name) const;

  /// Drops the named collection.
  Status DropCollection(const std::string& name);

  std::vector<std::string> CollectionNames() const;
  size_t collection_count() const { return collections_.size(); }

  /// Writes a new committed generation under `dir` (created if needed).
  /// Transient (Unavailable) I/O errors are retried per `retry`; any other
  /// failure aborts the save with the previous generation still committed
  /// and intact. Older generations and stale gen-*.tmp build directories
  /// are removed only after the new generation is committed.
  /// When `span` is a live trace span, per-phase child spans (prepare,
  /// write_docs, commit, cleanup) are recorded under it; pass nullptr (the
  /// default) to skip tracing. `store.db.*` registry metrics are recorded
  /// either way.
  Status Save(const std::string& dir) const;
  Status Save(const std::string& dir, Env* env,
              const RetryPolicy& retry = RetryPolicy{},
              obs::Span* span = nullptr) const;

  /// Loads the newest intact generation under `dir` (preferring the one
  /// CURRENT commits to), verifying every file's byte count and CRC32.
  /// Corrupt generations are skipped and recorded in `report`; IOError
  /// when nothing intact remains.
  static Result<Database> Open(const std::string& dir);
  static Result<Database> Open(const std::string& dir, Env* env,
                               RecoveryReport* report = nullptr,
                               obs::Span* span = nullptr);

  /// Re-opens `dir` in place: on success this database's contents are
  /// replaced by the on-disk state and every collection's decoded-tree
  /// cache starts cold (the old collections -- and their caches -- are
  /// destroyed). On failure the in-memory state is left untouched.
  /// Query executors hold the Database pointer, so they observe the new
  /// state on their next query without rebinding.
  Status Reload(const std::string& dir, Env* env = nullptr,
                RecoveryReport* report = nullptr);

 private:
  std::map<std::string, std::unique_ptr<Collection>> collections_;
};

}  // namespace toss::store

#endif  // TOSS_STORE_DATABASE_H_
