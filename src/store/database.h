// Database: a named set of collections with crash-safe, generational
// directory persistence.
//
// On-disk layout (see snapshot.h and DESIGN.md "Durability & recovery"):
//   <dir>/CURRENT            -- commit pointer, "gen-<N>\n"
//   <dir>/gen-<N>/MANIFEST   -- versioned manifest with per-file CRC32s
//   <dir>/gen-<N>/c<ordinal>/<ordinal>.xml
//
// Save builds the next generation in gen-<N>.tmp, fsyncs every file,
// seals it with an atomic rename, and only then swings CURRENT (also via
// atomic rename); the previous generation is deleted strictly after the
// commit, so a crash or injected I/O failure at ANY point leaves either
// the old or the new state recoverable -- never a torn hybrid. Open
// verifies every checksum and degrades to the newest intact generation,
// reporting what it discarded through RecoveryReport. Directories written
// by the pre-generational format (manifest.txt + <collection>/_keys.txt)
// remain readable through a legacy fallback path.

#ifndef TOSS_STORE_DATABASE_H_
#define TOSS_STORE_DATABASE_H_

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/result.h"
#include "obs/trace.h"
#include "store/collection.h"
#include "store/env.h"
#include "store/snapshot.h"
#include "store/wal.h"

namespace toss::store {

/// What Open had to discard or work around to produce a database. Empty
/// (no discards, no legacy) after a clean load of a committed generation.
struct RecoveryReport {
  /// Generation that was loaded ("gen-<N>", or "legacy").
  std::string loaded_generation;
  /// True when the pre-generational manifest.txt format was read.
  bool used_legacy_format = false;

  struct Discarded {
    std::string generation;  ///< "gen-<N>", or "CURRENT" for a bad pointer
    std::string reason;      ///< the Status that disqualified it
  };
  /// Corrupt/unreadable generations skipped, newest first.
  std::vector<Discarded> discarded;

  /// Tail-log replay over the loaded generation (present iff its MANIFEST
  /// declared a wal line; see DESIGN.md "Write path & WAL").
  struct WalReplay {
    std::string file;              ///< log filename (sibling of gen dirs)
    uint64_t records_replayed = 0;
    uint64_t next_seq = 0;         ///< sequence the next append will carry
    uint64_t intact_bytes = 0;     ///< valid log prefix length on disk
    bool torn_tail = false;        ///< trailing partial record discarded
    std::string torn_reason;       ///< warn text for the discarded tail
  };
  std::optional<WalReplay> wal;

  /// True when recovery fell back past the committed generation or read
  /// the legacy format.
  bool degraded() const { return !discarded.empty() || used_legacy_format; }
};

class Database {
 public:
  Database() = default;

  /// Creates an empty collection. AlreadyExists when the name is taken.
  Result<Collection*> CreateCollection(const std::string& name);

  /// Returns the named collection, or NotFound.
  Result<Collection*> GetCollection(const std::string& name);
  Result<const Collection*> GetCollection(const std::string& name) const;

  /// Drops the named collection.
  Status DropCollection(const std::string& name);

  std::vector<std::string> CollectionNames() const;
  size_t collection_count() const { return collections_.size(); }

  /// Writes a new committed generation under `dir` (created if needed).
  /// Transient (Unavailable) I/O errors are retried per `retry`; any other
  /// failure aborts the save with the previous generation still committed
  /// and intact. Older generations and stale gen-*.tmp build directories
  /// are removed only after the new generation is committed.
  /// When `span` is a live trace span, per-phase child spans (prepare,
  /// write_docs, commit, cleanup) are recorded under it; pass nullptr (the
  /// default) to skip tracing. `store.db.*` registry metrics are recorded
  /// either way.
  Status Save(const std::string& dir) const;
  Status Save(const std::string& dir, Env* env,
              const RetryPolicy& retry = RetryPolicy{},
              obs::Span* span = nullptr) const;

  /// Loads the newest intact generation under `dir` (preferring the one
  /// CURRENT commits to), verifying every file's byte count and CRC32.
  /// Corrupt generations are skipped and recorded in `report`; IOError
  /// when nothing intact remains.
  static Result<Database> Open(const std::string& dir);
  static Result<Database> Open(const std::string& dir, Env* env,
                               RecoveryReport* report = nullptr,
                               obs::Span* span = nullptr);

  /// Re-opens `dir` in place: on success this database's contents are
  /// replaced by the on-disk state and every collection's decoded-tree
  /// cache starts cold (the old collections -- and their caches -- are
  /// destroyed). On failure the in-memory state is left untouched.
  /// Query executors hold the Database pointer, so they observe the new
  /// state on their next query without rebinding.
  Status Reload(const std::string& dir, Env* env = nullptr,
                RecoveryReport* report = nullptr);

  // --- Durable live ingest (DESIGN.md "Write path & WAL") ------------------
  //
  // OpenDurable loads like Open, truncates any torn log tail, and attaches
  // a group-commit WalWriter. DurableInsert/Replace/Remove then validate,
  // append to the log, and apply in memory only after the covering fsync
  // returned -- a mutation that returns OK survives any crash. Checkpoint
  // folds the log back into a fresh snapshot generation and truncates it.

  struct DurableOptions {
    /// Bootstrap an empty durable database when `dir` holds no snapshot
    /// (a directory with existing-but-corrupt data still fails loudly).
    bool create_if_missing = true;
    /// Group-commit tuning for the attached WalWriter.
    WalWriterOptions wal;
    /// Retry/backoff for checkpoint saves and log-tail truncation.
    RetryPolicy retry;
  };

  /// Opens `dir` for durable mutation: replays the tail log (tolerating a
  /// torn final record, which is truncated away and reported via
  /// `report->wal`), rejects mid-log corruption, and leaves the database
  /// accepting DurableInsert/Replace/Remove. Generations written by a
  /// plain Save (no wal line) are checkpointed once to establish the log.
  static Result<Database> OpenDurable(const std::string& dir, Env* env,
                                      const DurableOptions& options,
                                      RecoveryReport* report = nullptr);
  static Result<Database> OpenDurable(const std::string& dir, Env* env,
                                      RecoveryReport* report = nullptr);

  /// True when this database was produced by OpenDurable.
  bool durable() const { return durable_ != nullptr; }

  /// Durably adds a document under `key` in `collection` (created on first
  /// insert). Blocks until the record is fsynced (group-committed) and
  /// applied; on OK the mutation survives any crash. AlreadyExists /
  /// ParseError surface before anything is logged; IOError when the log
  /// write failed (mutation NOT applied; the writer is poisoned until the
  /// next Checkpoint).
  /// All three accept an optional trace span; when given, the append ->
  /// fsync -> apply pipeline is recorded as wal_validate / wal_commit
  /// children with the logged sequence number annotated.
  Status DurableInsert(const std::string& collection, const std::string& key,
                       const std::string& xml, obs::Span* span = nullptr);

  /// Durably replaces the document under `key`. NotFound when absent.
  Status DurableReplace(const std::string& collection, const std::string& key,
                        const std::string& xml, obs::Span* span = nullptr);

  /// Durably removes the document under `key`. NotFound when absent.
  Status DurableRemove(const std::string& collection, const std::string& key,
                       obs::Span* span = nullptr);

  /// Writes a fresh snapshot generation whose MANIFEST points at a new,
  /// empty log segment, rotates the writer onto it (clearing any poison),
  /// and deletes the old segment. Unavailable when appends are in flight;
  /// callers must not mutate concurrently (TossService holds its exclusive
  /// lock across this).
  Status Checkpoint(obs::Span* span = nullptr);

  /// Sequence number the next durable mutation will log (durable only).
  uint64_t WalNextSeq() const;

  /// Group-commit writer statistics -- appends, durable records, fsync
  /// batches, largest batch (all zero for a non-durable database).
  WalWriter::Stats GetWalStats() const;

  /// Applies one logged mutation to `db`'s in-memory state (shared
  /// between the commit path and Open's replay; public so tests can drive
  /// replay directly). Failure during replay means the log lied about a
  /// committed mutation -- corruption.
  static Status ApplyWalRecord(Database* db, const WalRecord& rec);

 private:
  /// Pending-presence overlay entry: the key's visibility once every
  /// queued-but-unapplied mutation on it commits, plus how many such
  /// mutations are outstanding (the entry dies when the count drains).
  struct PendingKey {
    bool present = false;
    uint64_t ops = 0;
  };

  /// State attached by OpenDurable. Lives behind a pointer so Database
  /// stays movable (Open returns by value); the mutex guards collections_
  /// mutation, the overlay, and checkpointing -- but is NEVER held across
  /// a group-commit wait, so validation stays concurrent with fsyncs.
  struct DurableState {
    std::string dir;
    Env* env = nullptr;
    DurableOptions options;
    std::unique_ptr<WalWriter> writer;
    mutable std::mutex mu;
    std::map<std::string, std::map<std::string, PendingKey>> pending;
  };

  /// Shared body of Save and Checkpoint. When `wal_start_seq` is set, the
  /// new generation's MANIFEST carries a wal line naming a fresh (not yet
  /// existing) segment for that sequence, reported back through `wal_out`.
  /// Orphaned wal-*.log segments are cleaned post-commit either way.
  Status SaveImpl(const std::string& dir, Env* env, const RetryPolicy& retry,
                  obs::Span* span, const std::optional<uint64_t>& wal_start_seq,
                  ManifestWal* wal_out) const;

  /// Validate + enqueue + wait for one durable mutation.
  Status DurableMutate(WalOp op, const std::string& collection,
                       const std::string& key, const std::string& xml,
                       obs::Span* span);

  std::map<std::string, std::unique_ptr<Collection>> collections_;
  std::unique_ptr<DurableState> durable_;
};

}  // namespace toss::store

#endif  // TOSS_STORE_DATABASE_H_
