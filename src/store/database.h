// Database: a named set of collections with directory-based persistence.
//
// On-disk layout (Save/Open):
//   <dir>/manifest.txt          -- one collection name per line
//   <dir>/<collection>/<key>.xml
//   <dir>/<collection>/_keys.txt -- insertion-ordered keys (filenames are
//                                   sanitized, so the real keys live here)

#ifndef TOSS_STORE_DATABASE_H_
#define TOSS_STORE_DATABASE_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "store/collection.h"

namespace toss::store {

class Database {
 public:
  Database() = default;

  /// Creates an empty collection. AlreadyExists when the name is taken.
  Result<Collection*> CreateCollection(const std::string& name);

  /// Returns the named collection, or NotFound.
  Result<Collection*> GetCollection(const std::string& name);
  Result<const Collection*> GetCollection(const std::string& name) const;

  /// Drops the named collection.
  Status DropCollection(const std::string& name);

  std::vector<std::string> CollectionNames() const;
  size_t collection_count() const { return collections_.size(); }

  /// Writes every collection under `dir` (created if needed; existing
  /// collection subdirectories are replaced).
  Status Save(const std::string& dir) const;

  /// Loads a database previously written by Save.
  static Result<Database> Open(const std::string& dir);

 private:
  std::map<std::string, std::unique_ptr<Collection>> collections_;
};

}  // namespace toss::store

#endif  // TOSS_STORE_DATABASE_H_
