#include "store/database.h"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <optional>
#include <set>
#include <sstream>
#include <utility>

#include "common/interner.h"
#include "common/string_util.h"
#include "common/timer.h"
#include "obs/metrics.h"
#include "store/snapshot.h"
#include "xml/xml_parser.h"
#include "xml/xml_writer.h"

namespace toss::store {

namespace fs = std::filesystem;

namespace {

struct DbMetrics {
  obs::Counter& saves = obs::Metrics().GetCounter("store.db.saves");
  obs::Counter& opens = obs::Metrics().GetCounter("store.db.opens");
  obs::Counter& degraded_opens =
      obs::Metrics().GetCounter("store.db.degraded_opens");
  obs::Counter& discarded_generations =
      obs::Metrics().GetCounter("store.db.discarded_generations");
  obs::Histogram& save_ns =
      obs::Metrics().GetHistogram("store.db.save_latency_ns");
  obs::Histogram& open_ns =
      obs::Metrics().GetHistogram("store.db.open_latency_ns");
  obs::Counter& wal_replay_records =
      obs::Metrics().GetCounter("store.wal.replay.records");
  obs::Counter& wal_torn_tails =
      obs::Metrics().GetCounter("store.wal.replay.torn_tail_truncations");
  obs::Counter& wal_checkpoints =
      obs::Metrics().GetCounter("store.wal.checkpoints");
  obs::Counter& wal_mutations =
      obs::Metrics().GetCounter("store.wal.mutations");
  obs::Counter& wal_mutation_errors =
      obs::Metrics().GetCounter("store.wal.mutation_errors");
};

DbMetrics& Instruments() {
  static DbMetrics* m = new DbMetrics();
  return *m;
}

/// Document payloads are stored as 000000.xml, 000001.xml, ... with the
/// real keys escaped into the MANIFEST; keys never touch the filesystem.
std::string DocFileName(size_t ordinal) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%06zu.xml", ordinal);
  return buf;
}

/// Collection subdirectories are likewise ordinals (c000000, ...), so
/// collection names containing path separators cannot escape the snapshot.
std::string CollectionDirName(size_t ordinal) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "c%06zu", ordinal);
  return buf;
}

std::string PathJoin(const std::string& a, const std::string& b) {
  return (fs::path(a) / b).string();
}

/// Every term id-based evaluation will intern for `doc` (mirrors
/// tax::DataTree::BuildTagIndex): each element's tag plus the concatenation
/// of its direct text children (the tax `content` attribute).
void CollectSymbolTerms(const xml::XmlDocument& doc,
                        std::set<std::string>* out) {
  std::vector<xml::NodeId> elements{doc.root()};
  auto descendants = doc.ElementDescendants(doc.root());
  elements.insert(elements.end(), descendants.begin(), descendants.end());
  for (xml::NodeId nid : elements) {
    const auto& n = doc.node(nid);
    out->insert(n.tag);
    std::string content;
    for (xml::NodeId c : n.children) {
      if (doc.node(c).kind == xml::NodeKind::kText) {
        content += doc.node(c).text;
      }
    }
    out->insert(std::move(content));
  }
}

/// Loads one sealed generation, verifying byte counts and checksums.
/// `wal_out` (optional) receives the generation's tail-log descriptor.
Result<Database> LoadGeneration(const std::string& dir,
                                const std::string& gen, Env* env,
                                std::optional<ManifestWal>* wal_out = nullptr) {
  std::string gdir = PathJoin(dir, gen);
  TOSS_ASSIGN_OR_RETURN(std::string manifest_text,
                        env->ReadFile(PathJoin(gdir, kManifestFileName)));
  TOSS_ASSIGN_OR_RETURN(SnapshotManifest manifest,
                        ParseManifest(manifest_text));
  if (wal_out != nullptr) *wal_out = manifest.wal;
  // Pre-intern the persisted term dictionary (if the generation carries
  // one) before any document decodes, so indexing below is all dictionary
  // hits. A corrupt table rejects the generation like a corrupt document.
  if (manifest.symbols.has_value()) {
    const ManifestSymbols& sym = *manifest.symbols;
    std::string path = PathJoin(gdir, sym.file);
    TOSS_ASSIGN_OR_RETURN(std::string payload, env->ReadFile(path));
    if (payload.size() != sym.bytes) {
      return Status::IOError("truncated symbols file " + path +
                             ": manifest records " + std::to_string(sym.bytes) +
                             " bytes, found " +
                             std::to_string(payload.size()));
    }
    if (Crc32(payload) != sym.crc32) {
      return Status::IOError("checksum mismatch for " + path);
    }
    TOSS_ASSIGN_OR_RETURN(std::vector<std::string> terms,
                          ParseSymbolsFile(payload, sym.count));
    Interner& interner = Interner::Global();
    // Dictionary overflow degrades to lazy behavior (terms intern on first
    // decode, or not at all); never a load failure.
    for (const std::string& term : terms) (void)interner.Intern(term);
  }
  Database db;
  for (const ManifestCollection& mc : manifest.collections) {
    TOSS_ASSIGN_OR_RETURN(Collection * coll, db.CreateCollection(mc.name));
    std::string cdir = PathJoin(gdir, mc.subdir);
    for (const ManifestDoc& md : mc.docs) {
      std::string path = PathJoin(cdir, md.file);
      TOSS_ASSIGN_OR_RETURN(std::string payload, env->ReadFile(path));
      if (payload.size() != md.bytes) {
        return Status::IOError(
            "truncated payload " + path + ": manifest records " +
            std::to_string(md.bytes) + " bytes, found " +
            std::to_string(payload.size()));
      }
      if (Crc32(payload) != md.crc32) {
        return Status::IOError("checksum mismatch for " + path);
      }
      TOSS_ASSIGN_OR_RETURN(DocId id, coll->InsertXml(md.key, payload));
      (void)id;
    }
  }
  return db;
}

/// Reads a directory written by the pre-generational format:
///   <dir>/manifest.txt, <dir>/<collection>/{_keys.txt,000000.xml,...}
/// No checksums existed in that format, so corruption surfaces as read or
/// parse errors. A one-time Save migrates the data forward.
Result<Database> LoadLegacy(const std::string& dir, Env* env) {
  TOSS_ASSIGN_OR_RETURN(
      std::string manifest,
      env->ReadFile(PathJoin(dir, kLegacyManifestFileName)));
  Database db;
  std::istringstream names(manifest);
  std::string name;
  while (std::getline(names, name)) {
    if (name.empty()) continue;
    TOSS_ASSIGN_OR_RETURN(Collection * coll, db.CreateCollection(name));
    std::string cdir = PathJoin(dir, name);
    TOSS_ASSIGN_OR_RETURN(std::string keys,
                          env->ReadFile(PathJoin(cdir, "_keys.txt")));
    std::istringstream key_stream(keys);
    std::string key;
    size_t ordinal = 0;
    while (std::getline(key_stream, key)) {
      if (key.empty()) continue;
      TOSS_ASSIGN_OR_RETURN(std::string text,
                            env->ReadFile(PathJoin(cdir, DocFileName(ordinal))));
      TOSS_ASSIGN_OR_RETURN(DocId id, coll->InsertXml(key, text));
      (void)id;
      ++ordinal;
    }
  }
  return db;
}

/// Replays the generation's tail log over `db` per the rules in wal.h: a
/// torn final record is discarded (reported, not fatal); everything else
/// that fails -- mid-log corruption, a record the in-memory state rejects
/// -- poisons the WHOLE open, because an acknowledged mutation can no
/// longer be trusted and degrading would silently drop durable data.
Status ReplayWal(Database* db, const std::string& dir, const ManifestWal& wal,
                 Env* env, RecoveryReport* rep, obs::Span* parent) {
  DbMetrics& m = Instruments();
  obs::Span replay_span(parent, "wal_replay");
  replay_span.Annotate("file", wal.file);
  RecoveryReport::WalReplay replay;
  replay.file = wal.file;
  replay.next_seq = wal.start_seq;
  const std::string path = PathJoin(dir, wal.file);
  // An absent segment is an empty log (checkpoints never create the file).
  if (env->FileExists(path)) {
    TOSS_ASSIGN_OR_RETURN(std::string text, env->ReadFile(path));
    TOSS_ASSIGN_OR_RETURN(ParsedWal parsed,
                          ParseWalLog(text, wal.start_seq));
    for (const WalRecord& rec : parsed.records) {
      Status st = Database::ApplyWalRecord(db, rec);
      if (!st.ok()) {
        return Status::IOError("wal corruption: committed record " +
                               std::to_string(replay.next_seq +
                                              replay.records_replayed) +
                               " in " + path +
                               " does not apply: " + st.ToString());
      }
      ++replay.records_replayed;
    }
    replay.next_seq = parsed.next_seq;
    replay.intact_bytes = parsed.intact_bytes;
    replay.torn_tail = parsed.torn_tail;
    replay.torn_reason = std::move(parsed.torn_reason);
    m.wal_replay_records.Add(replay.records_replayed);
    if (replay.torn_tail) m.wal_torn_tails.Increment();
  }
  replay_span.Annotate("records_replayed", replay.records_replayed);
  replay_span.Annotate("torn_tail", replay.torn_tail ? uint64_t{1} : 0);
  rep->wal = std::move(replay);
  return Status::OK();
}

}  // namespace

Result<Collection*> Database::CreateCollection(const std::string& name) {
  if (name.empty()) {
    return Status::InvalidArgument("collection name must be non-empty");
  }
  auto [it, inserted] =
      collections_.insert({name, std::make_unique<Collection>(name)});
  if (!inserted) {
    return Status::AlreadyExists("collection '" + name + "' already exists");
  }
  return it->second.get();
}

Result<Collection*> Database::GetCollection(const std::string& name) {
  auto it = collections_.find(name);
  if (it == collections_.end()) {
    return Status::NotFound("no collection named '" + name + "'");
  }
  return it->second.get();
}

Result<const Collection*> Database::GetCollection(
    const std::string& name) const {
  auto it = collections_.find(name);
  if (it == collections_.end()) {
    return Status::NotFound("no collection named '" + name + "'");
  }
  return static_cast<const Collection*>(it->second.get());
}

Status Database::DropCollection(const std::string& name) {
  if (collections_.erase(name) == 0) {
    return Status::NotFound("no collection named '" + name + "'");
  }
  return Status::OK();
}

std::vector<std::string> Database::CollectionNames() const {
  std::vector<std::string> out;
  for (const auto& [name, c] : collections_) out.push_back(name);
  return out;
}

Status Database::Save(const std::string& dir) const {
  return Save(dir, Env::Default());
}

Status Database::Save(const std::string& dir, Env* env,
                      const RetryPolicy& retry, obs::Span* span) const {
  if (durable_ != nullptr) {
    // A plain Save would commit a generation with no wal line while the
    // attached writer keeps appending to an orphaned segment -- acked
    // mutations would vanish on reopen.
    return Status::InvalidArgument(
        "durable database: use Checkpoint(), not Save()");
  }
  return SaveImpl(dir, env, retry, span, std::nullopt, nullptr);
}

Status Database::SaveImpl(const std::string& dir, Env* env,
                          const RetryPolicy& retry, obs::Span* span,
                          const std::optional<uint64_t>& wal_start_seq,
                          ManifestWal* wal_out) const {
  DbMetrics& m = Instruments();
  m.saves.Increment();
  Timer save_timer;
  auto Run = [&](const std::function<Status()>& op) {
    return RetryTransient(env, retry, op);
  };

  obs::Span prepare_span(span, "prepare");
  TOSS_RETURN_NOT_OK(Run([&] { return env->CreateDirs(dir); }));

  // Pick the next generation number past everything on disk -- committed
  // generations AND stale gen-*.tmp builds left by crashed saves. The
  // stale entries are ignored as data but remembered for post-commit
  // cleanup, as are wal segments (the new generation references either a
  // fresh segment or none); nothing may be deleted before the new
  // generation commits.
  uint64_t next_gen = 1;
  std::vector<std::string> cleanup_after_commit;
  {
    auto listing = env->ListDir(dir);
    if (listing.ok()) {
      for (const std::string& entry : *listing) {
        std::optional<uint64_t> n = ParseGenerationDirName(entry);
        if (!n) n = ParseTempGenerationDirName(entry);
        if (!n) n = ParseWalFileName(entry);
        if (n) {
          next_gen = std::max(next_gen, *n + 1);
          cleanup_after_commit.push_back(entry);
        }
      }
    }
  }

  const std::string gen_name = GenerationDirName(next_gen);
  const std::string tmp_dir = PathJoin(dir, TempGenerationDirName(next_gen));
  TOSS_RETURN_NOT_OK(Run([&] { return env->RemoveAll(tmp_dir); }));
  TOSS_RETURN_NOT_OK(Run([&] { return env->CreateDirs(tmp_dir); }));
  prepare_span.Annotate("generation", gen_name);
  prepare_span.End();

  obs::Span write_span(span, "write_docs");
  size_t docs_written = 0;
  SnapshotManifest manifest;
  size_t coll_ordinal = 0;
  for (const auto& [name, coll] : collections_) {
    ManifestCollection mc;
    mc.name = name;
    mc.subdir = CollectionDirName(coll_ordinal++);
    std::string cdir = PathJoin(tmp_dir, mc.subdir);
    TOSS_RETURN_NOT_OK(Run([&] { return env->CreateDirs(cdir); }));
    size_t doc_ordinal = 0;
    for (DocId id : coll->AllDocs()) {
      ManifestDoc md;
      md.file = DocFileName(doc_ordinal++);
      md.key = coll->key(id);
      std::string payload = xml::Write(coll->document(id));
      md.bytes = payload.size();
      md.crc32 = Crc32(payload);
      std::string path = PathJoin(cdir, md.file);
      TOSS_RETURN_NOT_OK(Run([&] { return env->WriteFile(path, payload); }));
      TOSS_RETURN_NOT_OK(Run([&] { return env->SyncFile(path); }));
      mc.docs.push_back(std::move(md));
      ++docs_written;
    }
    manifest.collections.push_back(std::move(mc));
  }

  // Term-dictionary sidecar: every tag/content term of the snapshot's
  // documents, sorted, so the next Open pre-interns them and id-based
  // evaluation starts warm (DESIGN.md "Term dictionary & id-based
  // evaluation").
  {
    std::set<std::string> term_set;
    for (const auto& [name, coll] : collections_) {
      for (DocId id : coll->AllDocs()) {
        CollectSymbolTerms(coll->document(id), &term_set);
      }
    }
    std::vector<std::string> terms(term_set.begin(), term_set.end());
    const std::string payload = FormatSymbolsFile(terms);
    ManifestSymbols sym;
    sym.file = kSymbolsFileName;
    sym.count = terms.size();
    sym.bytes = payload.size();
    sym.crc32 = Crc32(payload);
    const std::string sym_path = PathJoin(tmp_dir, sym.file);
    TOSS_RETURN_NOT_OK(
        Run([&] { return env->WriteFile(sym_path, payload); }));
    TOSS_RETURN_NOT_OK(Run([&] { return env->SyncFile(sym_path); }));
    write_span.Annotate("symbols_written", sym.count);
    manifest.symbols = std::move(sym);
  }
  write_span.Annotate("docs_written", static_cast<uint64_t>(docs_written));
  write_span.End();

  // Checkpoints declare a fresh tail-log segment. The file is NOT created
  // here -- an absent log is an empty log -- so the manifest can commit
  // atomically with "no mutations since this snapshot" semantics.
  if (wal_start_seq.has_value()) {
    ManifestWal wal;
    wal.file = WalFileName(next_gen);
    wal.start_seq = *wal_start_seq;
    if (wal_out != nullptr) *wal_out = wal;
    manifest.wal = std::move(wal);
  }

  obs::Span commit_span(span, "commit");
  const std::string manifest_path = PathJoin(tmp_dir, kManifestFileName);
  TOSS_RETURN_NOT_OK(
      Run([&] { return env->WriteFile(manifest_path, manifest.Format()); }));
  TOSS_RETURN_NOT_OK(Run([&] { return env->SyncFile(manifest_path); }));

  // Seal the generation, then commit it by swinging CURRENT. Both renames
  // are atomic; the directory fsyncs make them durable in order.
  TOSS_RETURN_NOT_OK(
      Run([&] { return env->RenameFile(tmp_dir, PathJoin(dir, gen_name)); }));
  TOSS_RETURN_NOT_OK(Run([&] { return env->SyncDir(dir); }));
  const std::string current_tmp = PathJoin(dir, "CURRENT.tmp");
  TOSS_RETURN_NOT_OK(
      Run([&] { return env->WriteFile(current_tmp, gen_name + "\n"); }));
  TOSS_RETURN_NOT_OK(Run([&] { return env->SyncFile(current_tmp); }));
  TOSS_RETURN_NOT_OK(Run([&] {
    return env->RenameFile(current_tmp, PathJoin(dir, kCurrentFileName));
  }));
  TOSS_RETURN_NOT_OK(Run([&] { return env->SyncDir(dir); }));
  commit_span.End();

  obs::Span cleanup_span(span, "cleanup");
  // Post-commit cleanup is best-effort: the new generation is already
  // durable, so a failure (or crash) here merely leaves extra files for
  // the next Save to collect. Transient errors still get the retry/backoff
  // treatment; hard errors are swallowed. The legacy manifest.txt is removed
  // so Open can never fall back to a stale pre-generational snapshot.
  for (const std::string& entry : cleanup_after_commit) {
    (void)Run([&] { return env->RemoveAll(PathJoin(dir, entry)); });
  }
  (void)Run([&] { return env->RemoveFile(PathJoin(dir, kLegacyManifestFileName)); });
  cleanup_span.End();
  m.save_ns.Record(static_cast<uint64_t>(save_timer.ElapsedNanos()));
  return Status::OK();
}

Result<Database> Database::Open(const std::string& dir) {
  return Open(dir, Env::Default(), nullptr);
}

Result<Database> Database::Open(const std::string& dir, Env* env,
                                RecoveryReport* report, obs::Span* span) {
  DbMetrics& m = Instruments();
  m.opens.Increment();
  Timer open_timer;
  RecoveryReport local;
  RecoveryReport& rep = report ? *report : local;
  rep = RecoveryReport{};

  // One finalizer for every return path: record the latency histogram and,
  // when the load had to discard anything, the recovery counters.
  auto Finish = [&](Result<Database> db) -> Result<Database> {
    m.open_ns.Record(static_cast<uint64_t>(open_timer.ElapsedNanos()));
    m.discarded_generations.Add(rep.discarded.size());
    if (rep.degraded()) m.degraded_opens.Increment();
    if (span != nullptr && span->enabled()) {
      span->Annotate("loaded_generation", rep.loaded_generation);
      span->Annotate("discarded", static_cast<uint64_t>(rep.discarded.size()));
      span->Annotate("degraded", rep.degraded() ? "true" : "false");
    }
    return db;
  };

  // Enumerate committed generations, newest first. gen-*.tmp builds were
  // never committed and are never read.
  obs::Span scan_span(span, "scan");
  std::vector<std::pair<uint64_t, std::string>> generations;
  bool dir_listed = false;
  {
    auto listing = env->ListDir(dir);
    if (listing.ok()) {
      dir_listed = true;
      for (const std::string& entry : *listing) {
        if (std::optional<uint64_t> n = ParseGenerationDirName(entry)) {
          generations.emplace_back(*n, entry);
        }
      }
      std::sort(generations.begin(), generations.end(),
                [](const auto& a, const auto& b) { return a.first > b.first; });
    }
  }

  // The generation CURRENT commits to is authoritative; try it first.
  std::string current;
  const std::string current_path = PathJoin(dir, kCurrentFileName);
  if (env->FileExists(current_path)) {
    auto pointer = env->ReadFile(current_path);
    if (pointer.ok()) {
      std::string_view trimmed = Trim(*pointer);
      if (ParseGenerationDirName(trimmed)) {
        current = std::string(trimmed);
      } else {
        rep.discarded.push_back(
            {"CURRENT", "garbage CURRENT pointer: '" +
                            std::string(trimmed.substr(0, 64)) + "'"});
      }
    } else {
      rep.discarded.push_back({"CURRENT", pointer.status().ToString()});
    }
  }
  scan_span.End();

  obs::Span load_span(span, "load");
  if (!current.empty()) {
    std::optional<ManifestWal> wal;
    auto db = LoadGeneration(dir, current, env, &wal);
    if (db.ok()) {
      rep.loaded_generation = current;
      if (wal.has_value()) {
        // Tail-log replay. A corrupt log fails the WHOLE open -- degrading
        // to an older generation would silently drop acknowledged
        // mutations (a torn final record is tolerated inside ReplayWal).
        Status replayed = ReplayWal(&*db, dir, *wal, env, &rep, &load_span);
        if (!replayed.ok()) return Finish(replayed);
      }
      return Finish(std::move(db));
    }
    rep.discarded.push_back({current, db.status().ToString()});
  }

  // Degrade to the newest other intact generation.
  for (const auto& [n, gen] : generations) {
    if (gen == current) continue;
    std::optional<ManifestWal> wal;
    auto db = LoadGeneration(dir, gen, env, &wal);
    if (db.ok()) {
      rep.loaded_generation = gen;
      if (wal.has_value()) {
        Status replayed = ReplayWal(&*db, dir, *wal, env, &rep, &load_span);
        if (!replayed.ok()) return Finish(replayed);
      }
      return Finish(std::move(db));
    }
    rep.discarded.push_back({gen, db.status().ToString()});
  }

  // No generations at all: this may be a pre-generational directory.
  if (generations.empty() && current.empty() &&
      env->FileExists(PathJoin(dir, kLegacyManifestFileName))) {
    auto db = LoadLegacy(dir, env);
    if (db.ok()) {
      rep.loaded_generation = "legacy";
      rep.used_legacy_format = true;
    }
    return Finish(std::move(db));
  }

  std::string detail;
  for (const auto& d : rep.discarded) {
    detail += "; " + d.generation + ": " + d.reason;
  }
  if (!dir_listed) detail += "; directory unreadable";
  return Finish(Status::IOError("no intact snapshot in " + dir + detail));
}

Status Database::Reload(const std::string& dir, Env* env,
                        RecoveryReport* report) {
  if (durable_ != nullptr) {
    return Status::InvalidArgument(
        "durable database: Reload would detach the write-ahead log");
  }
  TOSS_ASSIGN_OR_RETURN(Database fresh,
                        Open(dir, env ? env : Env::Default(), report));
  collections_ = std::move(fresh.collections_);
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Durable live ingest
// ---------------------------------------------------------------------------

Result<Database> Database::OpenDurable(const std::string& dir, Env* env,
                                       RecoveryReport* report) {
  return OpenDurable(dir, env, DurableOptions(), report);
}

Result<Database> Database::OpenDurable(const std::string& dir, Env* env,
                                       const DurableOptions& options,
                                       RecoveryReport* report) {
  RecoveryReport local;
  RecoveryReport& rep = report ? *report : local;

  Database db;
  auto opened = Open(dir, env, &rep);
  if (opened.ok()) {
    db = std::move(*opened);
  } else {
    if (!options.create_if_missing) return opened.status();
    // Bootstrap an empty database -- but only over a directory with no
    // snapshot-shaped content at all. Generations, a CURRENT pointer, a
    // legacy manifest, or stray wal segments mean data existed and failed
    // to load; clobbering it with an empty checkpoint would destroy it.
    bool pristine = true;
    auto listing = env->ListDir(dir);
    if (listing.ok()) {
      for (const std::string& entry : *listing) {
        if (ParseGenerationDirName(entry) || ParseWalFileName(entry) ||
            entry == kCurrentFileName || entry == kLegacyManifestFileName) {
          pristine = false;
          break;
        }
      }
    }
    if (!pristine) return opened.status();
    rep = RecoveryReport{};
    db = Database{};
  }

  db.durable_ = std::make_unique<DurableState>();
  db.durable_->dir = dir;
  db.durable_->env = env;
  db.durable_->options = options;

  if (rep.wal.has_value()) {
    // The loaded generation already has a log: drop any torn tail from
    // disk (its write was never acknowledged), then append where replay
    // left off.
    const RecoveryReport::WalReplay& rw = *rep.wal;
    const std::string path = PathJoin(dir, rw.file);
    if (rw.torn_tail && env->FileExists(path)) {
      TOSS_ASSIGN_OR_RETURN(std::string text, env->ReadFile(path));
      const std::string intact =
          text.substr(0, std::min<size_t>(text.size(), rw.intact_bytes));
      TOSS_RETURN_NOT_OK(RetryTransient(env, options.retry, [&] {
        return env->WriteFile(path, intact);
      }));
      TOSS_RETURN_NOT_OK(RetryTransient(
          env, options.retry, [&] { return env->SyncFile(path); }));
    }
    db.durable_->writer =
        std::make_unique<WalWriter>(env, path, rw.next_seq, options.wal);
  } else {
    // Plain-Save generation, legacy directory, or fresh bootstrap: no log
    // exists yet. Checkpoint once to commit a generation that declares
    // one.
    TOSS_RETURN_NOT_OK(db.Checkpoint());
  }
  return db;
}

Status Database::Checkpoint(obs::Span* span) {
  if (durable_ == nullptr) {
    return Status::InvalidArgument("Checkpoint requires OpenDurable");
  }
  DurableState& d = *durable_;
  std::lock_guard<std::mutex> lock(d.mu);
  // Holding d.mu blocks new enqueues, so writer idleness is stable for
  // the duration; an in-flight batch bails out before anything changes.
  if (d.writer != nullptr && !d.writer->Idle()) {
    return Status::Unavailable("checkpoint with durable appends in flight");
  }
  const uint64_t start_seq = d.writer != nullptr ? d.writer->next_seq() : 1;
  if (span != nullptr) {
    span->Annotate("wal_start_seq", start_seq);
  }
  ManifestWal wal;
  TOSS_RETURN_NOT_OK(
      SaveImpl(d.dir, d.env, d.options.retry, span, start_seq, &wal));
  // The snapshot now owns every applied mutation; swing the writer onto
  // the fresh (empty) segment the new MANIFEST references. This clears
  // any poison from an earlier append failure.
  const std::string wal_path = PathJoin(d.dir, wal.file);
  obs::Span rotate_span(span, "wal_rotate");
  rotate_span.Annotate("segment", wal.file);
  if (d.writer != nullptr) {
    TOSS_RETURN_NOT_OK(d.writer->Rotate(wal_path));
  } else {
    d.writer = std::make_unique<WalWriter>(d.env, wal_path, start_seq,
                                           d.options.wal);
  }
  rotate_span.End();
  d.pending.clear();
  Instruments().wal_checkpoints.Increment();
  return Status::OK();
}

Status Database::DurableInsert(const std::string& collection,
                               const std::string& key, const std::string& xml,
                               obs::Span* span) {
  return DurableMutate(WalOp::kInsert, collection, key, xml, span);
}

Status Database::DurableReplace(const std::string& collection,
                                const std::string& key, const std::string& xml,
                                obs::Span* span) {
  return DurableMutate(WalOp::kReplace, collection, key, xml, span);
}

Status Database::DurableRemove(const std::string& collection,
                               const std::string& key, obs::Span* span) {
  return DurableMutate(WalOp::kRemove, collection, key, std::string(), span);
}

Status Database::DurableMutate(WalOp op, const std::string& collection,
                               const std::string& key, const std::string& xml,
                               obs::Span* span) {
  if (durable_ == nullptr) {
    return Status::InvalidArgument(
        "durable mutations require OpenDurable");
  }
  if (collection.empty()) {
    return Status::InvalidArgument("collection name must be non-empty");
  }
  DbMetrics& m = Instruments();
  DurableState& d = *durable_;

  WalRecord rec;
  rec.op = op;
  rec.collection = collection;
  rec.key = key;
  rec.xml = xml;

  std::shared_ptr<WalWriter::Pending> ticket;
  obs::Span validate_span(span, "wal_validate");
  validate_span.Annotate("collection", collection);
  validate_span.Annotate("op", op == WalOp::kInsert    ? "insert"
                               : op == WalOp::kReplace ? "replace"
                                                       : "remove");
  {
    // Validate against the EFFECTIVE state -- in-memory contents plus the
    // overlay of queued-but-unapplied mutations -- and enqueue atomically,
    // so two racing inserts of one key cannot both reach the log (replay
    // would then reject it as corrupt). The lock is dropped before the
    // group-commit wait: validation stays concurrent with fsyncs.
    std::lock_guard<std::mutex> lock(d.mu);
    bool present = false;
    bool overlaid = false;
    if (auto cit = d.pending.find(collection); cit != d.pending.end()) {
      if (auto kit = cit->second.find(key); kit != cit->second.end()) {
        present = kit->second.present;
        overlaid = true;
      }
    }
    if (!overlaid) {
      auto it = collections_.find(collection);
      present = it != collections_.end() && it->second->FindKey(key).ok();
    }
    switch (op) {
      case WalOp::kInsert:
        if (present) {
          return Status::AlreadyExists("key '" + key +
                                       "' already exists in collection '" +
                                       collection + "'");
        }
        break;
      case WalOp::kReplace:
      case WalOp::kRemove:
        if (!present) {
          return Status::NotFound("no document under key '" + key +
                                  "' in collection '" + collection + "'");
        }
        break;
    }
    if (op != WalOp::kRemove) {
      // Reject malformed XML before it reaches the log; replay must never
      // meet a record it cannot apply.
      auto doc = xml::Parse(xml);
      if (!doc.ok()) return doc.status();
    }
    ticket = d.writer->Enqueue(
        FormatWalPayload(rec), [this, rec]() -> Status {
          // Batch leader, post-fsync, in sequence order. Takes d.mu (never
          // held by a group-commit waiter) to apply and drain the overlay.
          std::lock_guard<std::mutex> alock(durable_->mu);
          Status applied = ApplyWalRecord(this, rec);
          auto cit = durable_->pending.find(rec.collection);
          if (cit != durable_->pending.end()) {
            auto kit = cit->second.find(rec.key);
            if (kit != cit->second.end() && --kit->second.ops == 0) {
              cit->second.erase(kit);
            }
            if (cit->second.empty()) durable_->pending.erase(cit);
          }
          return applied;
        });
    if (ticket == nullptr) {
      m.wal_mutation_errors.Increment();
      return Status::IOError(
          "wal writer poisoned by an earlier append failure; Checkpoint() "
          "to rotate the log and resume ingest");
    }
    PendingKey& entry = d.pending[collection][key];
    entry.present = op != WalOp::kRemove;
    entry.ops++;
    // Exact under d.mu: every Enqueue happens inside this lock.
    validate_span.Annotate("seq", d.writer->next_seq() - 1);
  }
  validate_span.End();

  // The group-commit wait covers the leader's append + fsync (possibly
  // batched with other mutations) and the in-order apply.
  obs::Span commit_span(span, "wal_commit");
  Status st = d.writer->Wait(ticket);
  commit_span.Annotate("ok", st.ok() ? uint64_t{1} : 0);
  commit_span.End();
  if (!ticket->applied) {
    // The batch failed before fsync: the apply never ran, so its overlay
    // claim must be withdrawn here or the key stays phantom-present.
    std::lock_guard<std::mutex> lock(d.mu);
    auto cit = d.pending.find(collection);
    if (cit != d.pending.end()) {
      auto kit = cit->second.find(key);
      if (kit != cit->second.end() && --kit->second.ops == 0) {
        cit->second.erase(kit);
      }
      if (cit->second.empty()) d.pending.erase(cit);
    }
  }
  if (st.ok()) {
    m.wal_mutations.Increment();
  } else {
    m.wal_mutation_errors.Increment();
  }
  return st;
}

Status Database::ApplyWalRecord(Database* db, const WalRecord& rec) {
  switch (rec.op) {
    case WalOp::kInsert: {
      Collection* coll = nullptr;
      auto it = db->collections_.find(rec.collection);
      if (it != db->collections_.end()) {
        coll = it->second.get();
      } else {
        TOSS_ASSIGN_OR_RETURN(coll, db->CreateCollection(rec.collection));
      }
      TOSS_ASSIGN_OR_RETURN(DocId id, coll->InsertXml(rec.key, rec.xml));
      (void)id;
      return Status::OK();
    }
    case WalOp::kReplace: {
      TOSS_ASSIGN_OR_RETURN(Collection * coll,
                            db->GetCollection(rec.collection));
      TOSS_ASSIGN_OR_RETURN(xml::XmlDocument doc, xml::Parse(rec.xml));
      TOSS_ASSIGN_OR_RETURN(DocId id, coll->Replace(rec.key, std::move(doc)));
      (void)id;
      return Status::OK();
    }
    case WalOp::kRemove: {
      TOSS_ASSIGN_OR_RETURN(Collection * coll,
                            db->GetCollection(rec.collection));
      return coll->Remove(rec.key);
    }
  }
  return Status::Internal("unreachable wal op");
}

uint64_t Database::WalNextSeq() const {
  if (durable_ == nullptr || durable_->writer == nullptr) return 0;
  return durable_->writer->next_seq();
}

WalWriter::Stats Database::GetWalStats() const {
  if (durable_ == nullptr || durable_->writer == nullptr) return {};
  return durable_->writer->GetStats();
}

}  // namespace toss::store
