#include "store/database.h"

#include <cctype>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "xml/xml_writer.h"

namespace toss::store {

namespace fs = std::filesystem;

namespace {

/// Keys may contain characters unusable in filenames; documents are stored
/// as 000000.xml, 000001.xml, ... with the real keys in _keys.txt.
std::string DocFileName(size_t ordinal) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%06zu.xml", ordinal);
  return buf;
}

Result<std::string> ReadFile(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status::IOError("cannot open " + path.string());
  }
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

Status WriteFile(const fs::path& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    return Status::IOError("cannot write " + path.string());
  }
  out << content;
  out.close();
  if (!out) {
    return Status::IOError("write failed for " + path.string());
  }
  return Status::OK();
}

}  // namespace

Result<Collection*> Database::CreateCollection(const std::string& name) {
  if (name.empty()) {
    return Status::InvalidArgument("collection name must be non-empty");
  }
  auto [it, inserted] =
      collections_.insert({name, std::make_unique<Collection>(name)});
  if (!inserted) {
    return Status::AlreadyExists("collection '" + name + "' already exists");
  }
  return it->second.get();
}

Result<Collection*> Database::GetCollection(const std::string& name) {
  auto it = collections_.find(name);
  if (it == collections_.end()) {
    return Status::NotFound("no collection named '" + name + "'");
  }
  return it->second.get();
}

Result<const Collection*> Database::GetCollection(
    const std::string& name) const {
  auto it = collections_.find(name);
  if (it == collections_.end()) {
    return Status::NotFound("no collection named '" + name + "'");
  }
  return static_cast<const Collection*>(it->second.get());
}

Status Database::DropCollection(const std::string& name) {
  if (collections_.erase(name) == 0) {
    return Status::NotFound("no collection named '" + name + "'");
  }
  return Status::OK();
}

std::vector<std::string> Database::CollectionNames() const {
  std::vector<std::string> out;
  for (const auto& [name, c] : collections_) out.push_back(name);
  return out;
}

Status Database::Save(const std::string& dir) const {
  std::error_code ec;
  fs::create_directories(dir, ec);
  if (ec) {
    return Status::IOError("cannot create directory " + dir + ": " +
                           ec.message());
  }
  std::string manifest;
  for (const auto& [name, coll] : collections_) {
    manifest += name;
    manifest += '\n';
    fs::path cdir = fs::path(dir) / name;
    fs::remove_all(cdir, ec);  // replace any previous snapshot
    fs::create_directories(cdir, ec);
    if (ec) {
      return Status::IOError("cannot create directory " + cdir.string());
    }
    std::string keys;
    size_t ordinal = 0;
    for (DocId id : coll->AllDocs()) {
      keys += coll->key(id);
      keys += '\n';
      TOSS_RETURN_NOT_OK(WriteFile(cdir / DocFileName(ordinal),
                                   xml::Write(coll->document(id))));
      ++ordinal;
    }
    TOSS_RETURN_NOT_OK(WriteFile(cdir / "_keys.txt", keys));
  }
  return WriteFile(fs::path(dir) / "manifest.txt", manifest);
}

Result<Database> Database::Open(const std::string& dir) {
  TOSS_ASSIGN_OR_RETURN(std::string manifest,
                        ReadFile(fs::path(dir) / "manifest.txt"));
  Database db;
  std::istringstream names(manifest);
  std::string name;
  while (std::getline(names, name)) {
    if (name.empty()) continue;
    TOSS_ASSIGN_OR_RETURN(Collection * coll, db.CreateCollection(name));
    fs::path cdir = fs::path(dir) / name;
    TOSS_ASSIGN_OR_RETURN(std::string keys, ReadFile(cdir / "_keys.txt"));
    std::istringstream key_stream(keys);
    std::string key;
    size_t ordinal = 0;
    while (std::getline(key_stream, key)) {
      if (key.empty()) continue;
      TOSS_ASSIGN_OR_RETURN(std::string text,
                            ReadFile(cdir / DocFileName(ordinal)));
      TOSS_ASSIGN_OR_RETURN(DocId id, coll->InsertXml(key, text));
      (void)id;
      ++ordinal;
    }
  }
  return db;
}

}  // namespace toss::store
