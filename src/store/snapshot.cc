#include "store/snapshot.h"

#include <array>
#include <cstdio>

#include "common/string_util.h"

namespace toss::store {

namespace {

std::array<uint32_t, 256> MakeCrcTable() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t c = i;
    for (int bit = 0; bit < 8; ++bit) {
      c = (c & 1) ? (0xEDB88320u ^ (c >> 1)) : (c >> 1);
    }
    table[i] = c;
  }
  return table;
}

int HexDigit(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  return -1;
}

bool NeedsEscape(unsigned char c) {
  return c == '%' || c < 0x20 || c == 0x7f;
}

}  // namespace

uint32_t Crc32(std::string_view data) {
  static const std::array<uint32_t, 256> table = MakeCrcTable();
  uint32_t crc = 0xFFFFFFFFu;
  for (unsigned char c : data) {
    crc = table[(crc ^ c) & 0xFFu] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

std::string EscapeKey(std::string_view key) {
  std::string out;
  out.reserve(key.size());
  for (unsigned char c : key) {
    if (NeedsEscape(c)) {
      char buf[4];
      std::snprintf(buf, sizeof(buf), "%%%02X", c);
      out += buf;
    } else {
      out += static_cast<char>(c);
    }
  }
  return out;
}

Result<std::string> UnescapeKey(std::string_view escaped) {
  std::string out;
  out.reserve(escaped.size());
  for (size_t i = 0; i < escaped.size(); ++i) {
    unsigned char c = static_cast<unsigned char>(escaped[i]);
    if (c == '%') {
      if (i + 2 >= escaped.size()) {
        return Status::ParseError("truncated %-escape in key field: '" +
                                  std::string(escaped) + "'");
      }
      int hi = HexDigit(escaped[i + 1]);
      int lo = HexDigit(escaped[i + 2]);
      if (hi < 0 || lo < 0) {
        return Status::ParseError("malformed %-escape in key field: '" +
                                  std::string(escaped) + "'");
      }
      out += static_cast<char>(hi * 16 + lo);
      i += 2;
    } else if (NeedsEscape(c)) {
      // A raw control byte can only appear if the manifest was corrupted
      // or hand-edited; reject rather than guess.
      return Status::ParseError("unescaped control byte in key field");
    } else {
      out += static_cast<char>(c);
    }
  }
  return out;
}

std::string GenerationDirName(uint64_t n) {
  return "gen-" + std::to_string(n);
}

std::string TempGenerationDirName(uint64_t n) {
  return GenerationDirName(n) + ".tmp";
}

std::optional<uint64_t> ParseGenerationDirName(std::string_view name) {
  if (!StartsWith(name, "gen-")) return std::nullopt;
  std::string_view digits = name.substr(4);
  if (digits.empty() || digits.size() > 19) return std::nullopt;
  uint64_t n = 0;
  for (char c : digits) {
    if (c < '0' || c > '9') return std::nullopt;
    n = n * 10 + static_cast<uint64_t>(c - '0');
  }
  return n;
}

std::optional<uint64_t> ParseTempGenerationDirName(std::string_view name) {
  if (!EndsWith(name, ".tmp")) return std::nullopt;
  return ParseGenerationDirName(name.substr(0, name.size() - 4));
}

std::string WalFileName(uint64_t n) {
  return "wal-" + std::to_string(n) + ".log";
}

std::optional<uint64_t> ParseWalFileName(std::string_view name) {
  if (!StartsWith(name, "wal-") || !EndsWith(name, ".log")) {
    return std::nullopt;
  }
  std::string_view digits = name.substr(4, name.size() - 8);
  if (digits.empty() || digits.size() > 19) return std::nullopt;
  uint64_t n = 0;
  for (char c : digits) {
    if (c < '0' || c > '9') return std::nullopt;
    n = n * 10 + static_cast<uint64_t>(c - '0');
  }
  return n;
}

std::string FormatSymbolsFile(const std::vector<std::string>& terms) {
  std::string out;
  for (const std::string& term : terms) {
    out += EscapeKey(term);
    out += '\n';
  }
  return out;
}

Result<std::vector<std::string>> ParseSymbolsFile(std::string_view text,
                                                  uint64_t expected_count) {
  std::vector<std::string> terms;
  terms.reserve(expected_count);
  size_t pos = 0;
  while (pos < text.size()) {
    size_t eol = text.find('\n', pos);
    if (eol == std::string_view::npos) {
      return Status::ParseError("symbols file truncated mid-line");
    }
    TOSS_ASSIGN_OR_RETURN(std::string term,
                          UnescapeKey(text.substr(pos, eol - pos)));
    terms.push_back(std::move(term));
    pos = eol + 1;
  }
  if (terms.size() != expected_count) {
    return Status::ParseError(
        "symbols file has " + std::to_string(terms.size()) +
        " terms, manifest records " + std::to_string(expected_count));
  }
  return terms;
}

std::string SnapshotManifest::Format() const {
  std::string out = "toss-snapshot " +
                    std::to_string(kSnapshotFormatVersion) + "\n";
  if (symbols.has_value()) {
    char crc[16];
    std::snprintf(crc, sizeof(crc), "%08x", symbols->crc32);
    out += "symbols " + symbols->file + " " + std::to_string(symbols->count) +
           " " + std::to_string(symbols->bytes) + " " + crc + "\n";
  }
  if (wal.has_value()) {
    out += "wal " + wal->file + " " + std::to_string(wal->start_seq) + "\n";
  }
  for (const ManifestCollection& coll : collections) {
    out += "collection " + coll.subdir + " " +
           std::to_string(coll.docs.size()) + " " + EscapeKey(coll.name) +
           "\n";
    for (const ManifestDoc& doc : coll.docs) {
      char crc[16];
      std::snprintf(crc, sizeof(crc), "%08x", doc.crc32);
      out += "doc " + doc.file + " " + std::to_string(doc.bytes) + " " + crc +
             " " + EscapeKey(doc.key) + "\n";
    }
  }
  out += "end-snapshot\n";
  return out;
}

Result<SnapshotManifest> ParseManifest(std::string_view text) {
  SnapshotManifest manifest;
  size_t pos = 0;
  size_t line_no = 0;
  bool saw_header = false;
  bool saw_end = false;
  uint64_t docs_expected = 0;

  while (pos <= text.size()) {
    if (pos == text.size()) break;
    size_t eol = text.find('\n', pos);
    // The writer terminates every line; a line without '\n' is truncation.
    if (eol == std::string_view::npos) {
      return Status::ParseError("manifest truncated mid-line (line " +
                                std::to_string(line_no + 1) + ")");
    }
    std::string_view line = text.substr(pos, eol - pos);
    pos = eol + 1;
    ++line_no;

    if (saw_end) {
      return Status::ParseError("manifest has content after end-snapshot");
    }
    if (!saw_header) {
      if (!StartsWith(line, "toss-snapshot ")) {
        return Status::ParseError("manifest missing toss-snapshot header");
      }
      long long version = 0;
      if (!ParseInt(line.substr(14), &version)) {
        return Status::ParseError("manifest has malformed version: '" +
                                  std::string(line) + "'");
      }
      if (version != kSnapshotFormatVersion) {
        return Status::Unsupported("manifest version " +
                                   std::to_string(version) +
                                   " is not supported (expected " +
                                   std::to_string(kSnapshotFormatVersion) +
                                   ")");
      }
      saw_header = true;
      continue;
    }
    if (line == "end-snapshot") {
      if (docs_expected != 0) {
        return Status::ParseError("manifest collection '" +
                                  manifest.collections.back().name +
                                  "' is missing document entries");
      }
      saw_end = true;
      continue;
    }
    if (StartsWith(line, "symbols ")) {
      // symbols <file> <count> <bytes> <crc32-hex>; header-adjacent: it
      // describes the whole generation, so it precedes every collection.
      if (manifest.symbols.has_value()) {
        return Status::ParseError("manifest has duplicate symbols line");
      }
      if (!manifest.collections.empty()) {
        return Status::ParseError(
            "manifest symbols line must precede collections");
      }
      std::string_view rest = line.substr(8);
      size_t sp1 = rest.find(' ');
      size_t sp2 = sp1 == std::string_view::npos
                       ? std::string_view::npos
                       : rest.find(' ', sp1 + 1);
      size_t sp3 = sp2 == std::string_view::npos
                       ? std::string_view::npos
                       : rest.find(' ', sp2 + 1);
      if (sp3 == std::string_view::npos ||
          rest.find(' ', sp3 + 1) != std::string_view::npos) {
        return Status::ParseError("malformed symbols line: '" +
                                  std::string(line) + "'");
      }
      ManifestSymbols sym;
      sym.file = std::string(rest.substr(0, sp1));
      long long count = 0;
      long long bytes = 0;
      if (sym.file.empty() ||
          !ParseInt(rest.substr(sp1 + 1, sp2 - sp1 - 1), &count) ||
          count < 0 || !ParseInt(rest.substr(sp2 + 1, sp3 - sp2 - 1), &bytes) ||
          bytes < 0) {
        return Status::ParseError("malformed symbols line: '" +
                                  std::string(line) + "'");
      }
      sym.count = static_cast<uint64_t>(count);
      sym.bytes = static_cast<uint64_t>(bytes);
      std::string_view crc = rest.substr(sp3 + 1);
      if (crc.empty() || crc.size() > 8) {
        return Status::ParseError("malformed crc32 in: '" +
                                  std::string(line) + "'");
      }
      uint32_t crc_value = 0;
      for (char c : crc) {
        int digit = HexDigit(c);
        if (digit < 0) {
          return Status::ParseError("malformed crc32 in: '" +
                                    std::string(line) + "'");
        }
        crc_value = crc_value * 16 + static_cast<uint32_t>(digit);
      }
      sym.crc32 = crc_value;
      manifest.symbols = std::move(sym);
      continue;
    }
    if (StartsWith(line, "wal ")) {
      // wal <file> <start-seq>; generation-wide like symbols, so it
      // precedes every collection.
      if (manifest.wal.has_value()) {
        return Status::ParseError("manifest has duplicate wal line");
      }
      if (!manifest.collections.empty()) {
        return Status::ParseError("manifest wal line must precede collections");
      }
      std::string_view rest = line.substr(4);
      size_t sp1 = rest.find(' ');
      if (sp1 == std::string_view::npos ||
          rest.find(' ', sp1 + 1) != std::string_view::npos) {
        return Status::ParseError("malformed wal line: '" + std::string(line) +
                                  "'");
      }
      ManifestWal wal;
      wal.file = std::string(rest.substr(0, sp1));
      long long seq = 0;
      if (wal.file.empty() || !ParseWalFileName(wal.file) ||
          !ParseInt(rest.substr(sp1 + 1), &seq) || seq < 0) {
        return Status::ParseError("malformed wal line: '" + std::string(line) +
                                  "'");
      }
      wal.start_seq = static_cast<uint64_t>(seq);
      manifest.wal = std::move(wal);
      continue;
    }
    if (StartsWith(line, "collection ")) {
      if (docs_expected != 0) {
        return Status::ParseError("manifest collection '" +
                                  manifest.collections.back().name +
                                  "' is missing document entries");
      }
      // collection <subdir> <ndocs> <escaped-name>; name may be empty only
      // if the escaped field is empty, which CreateCollection rejects later.
      std::string_view rest = line.substr(11);
      size_t sp1 = rest.find(' ');
      if (sp1 == std::string_view::npos) {
        return Status::ParseError("malformed collection line: '" +
                                  std::string(line) + "'");
      }
      size_t sp2 = rest.find(' ', sp1 + 1);
      if (sp2 == std::string_view::npos) {
        return Status::ParseError("malformed collection line: '" +
                                  std::string(line) + "'");
      }
      ManifestCollection coll;
      coll.subdir = std::string(rest.substr(0, sp1));
      long long ndocs = 0;
      if (!ParseInt(rest.substr(sp1 + 1, sp2 - sp1 - 1), &ndocs) ||
          ndocs < 0) {
        return Status::ParseError("malformed document count in: '" +
                                  std::string(line) + "'");
      }
      TOSS_ASSIGN_OR_RETURN(coll.name, UnescapeKey(rest.substr(sp2 + 1)));
      docs_expected = static_cast<uint64_t>(ndocs);
      manifest.collections.push_back(std::move(coll));
      continue;
    }
    if (StartsWith(line, "doc ")) {
      if (manifest.collections.empty() || docs_expected == 0) {
        return Status::ParseError("doc line outside a collection: '" +
                                  std::string(line) + "'");
      }
      // doc <file> <bytes> <crc32-hex> <escaped-key>; the key is the full
      // remainder and may be empty or contain spaces.
      std::string_view rest = line.substr(4);
      size_t sp1 = rest.find(' ');
      size_t sp2 = sp1 == std::string_view::npos
                       ? std::string_view::npos
                       : rest.find(' ', sp1 + 1);
      size_t sp3 = sp2 == std::string_view::npos
                       ? std::string_view::npos
                       : rest.find(' ', sp2 + 1);
      if (sp3 == std::string_view::npos) {
        return Status::ParseError("malformed doc line: '" +
                                  std::string(line) + "'");
      }
      ManifestDoc doc;
      doc.file = std::string(rest.substr(0, sp1));
      long long bytes = 0;
      if (!ParseInt(rest.substr(sp1 + 1, sp2 - sp1 - 1), &bytes) ||
          bytes < 0) {
        return Status::ParseError("malformed byte count in: '" +
                                  std::string(line) + "'");
      }
      doc.bytes = static_cast<uint64_t>(bytes);
      std::string_view crc = rest.substr(sp2 + 1, sp3 - sp2 - 1);
      if (crc.empty() || crc.size() > 8) {
        return Status::ParseError("malformed crc32 in: '" +
                                  std::string(line) + "'");
      }
      uint32_t crc_value = 0;
      for (char c : crc) {
        int digit = HexDigit(c);
        if (digit < 0) {
          return Status::ParseError("malformed crc32 in: '" +
                                    std::string(line) + "'");
        }
        crc_value = crc_value * 16 + static_cast<uint32_t>(digit);
      }
      doc.crc32 = crc_value;
      TOSS_ASSIGN_OR_RETURN(doc.key, UnescapeKey(rest.substr(sp3 + 1)));
      manifest.collections.back().docs.push_back(std::move(doc));
      --docs_expected;
      continue;
    }
    return Status::ParseError("unrecognized manifest line: '" +
                              std::string(line) + "'");
  }

  if (!saw_header) {
    return Status::ParseError("manifest is empty");
  }
  if (!saw_end) {
    return Status::ParseError("manifest truncated: missing end-snapshot");
  }
  return manifest;
}

}  // namespace toss::store
