// Env: the store's pluggable I/O substrate, in the style of LevelDB's
// leveldb::Env.
//
// Every byte the persistence layer moves to or from disk goes through an
// Env, so durability-sensitive code paths (snapshot writing, recovery,
// bulk loading) can be exercised under injected faults without touching a
// real filesystem's failure modes. Two implementations ship:
//
//   * ProductionEnv -- real filesystem operations. WriteFile truncates and
//     writes; SyncFile/SyncDir issue fsync so a committed snapshot survives
//     power loss, not just process death.
//   * FaultInjectionEnv -- wraps a base Env and fails the Nth mutating
//     operation in one of several ways: a hard I/O error, a torn write
//     (a prefix of the bytes lands, then the "process" dies), simulated
//     ENOSPC (this and every later write fail), or a bounded run of
//     transient errors (to exercise retry/backoff). After a crash-style
//     fault every subsequent operation fails, modelling a dead process;
//     recovery is then tested by reopening with a fresh Env.
//
// The free function RetryTransient implements the bounded retry/backoff
// loop used by the snapshot writer: Unavailable errors are retried with
// exponential backoff (sleeping through the Env so tests count the sleeps
// instead of waiting), every other status is returned immediately.

#ifndef TOSS_STORE_ENV_H_
#define TOSS_STORE_ENV_H_

#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"

namespace toss::store {

class Env {
 public:
  virtual ~Env() = default;

  /// Creates `dir` and any missing parents. OK when it already exists.
  virtual Status CreateDirs(const std::string& dir) = 0;

  /// Reads the whole file into a string.
  virtual Result<std::string> ReadFile(const std::string& path) = 0;

  /// Replaces `path`'s contents with `content` (created if missing). Does
  /// NOT sync; call SyncFile before relying on the bytes being durable.
  virtual Status WriteFile(const std::string& path,
                           std::string_view content) = 0;

  /// Appends `content` to `path` (created if missing). Does NOT sync. An
  /// Unavailable result means NO bytes landed (the transient-failure
  /// contract retry loops depend on); other errors may leave a prefix of
  /// `content` appended, which the write-ahead log's length-prefixed
  /// records make detectable on replay.
  virtual Status AppendFile(const std::string& path,
                            std::string_view content) = 0;

  /// Flushes `path`'s contents to stable storage (fsync).
  virtual Status SyncFile(const std::string& path) = 0;

  /// Flushes `dir`'s entries (creations, renames) to stable storage.
  virtual Status SyncDir(const std::string& dir) = 0;

  /// Atomically renames a file or directory over `to`.
  virtual Status RenameFile(const std::string& from,
                            const std::string& to) = 0;

  /// Removes one file. OK when the file does not exist.
  virtual Status RemoveFile(const std::string& path) = 0;

  /// Recursively removes a file or directory tree. OK when absent.
  virtual Status RemoveAll(const std::string& path) = 0;

  /// Names (not paths) of `dir`'s entries, unsorted.
  virtual Result<std::vector<std::string>> ListDir(const std::string& dir) = 0;

  virtual bool FileExists(const std::string& path) = 0;

  /// Backoff sleep. Fault-injection overrides this to record rather than
  /// actually sleep, keeping retry tests instant.
  virtual void SleepForMicros(uint64_t micros) = 0;

  /// Process-wide ProductionEnv singleton (never destroyed).
  static Env* Default();
};

/// Real-filesystem Env. Stateless; safe to share across threads.
class ProductionEnv : public Env {
 public:
  Status CreateDirs(const std::string& dir) override;
  Result<std::string> ReadFile(const std::string& path) override;
  Status WriteFile(const std::string& path, std::string_view content) override;
  Status AppendFile(const std::string& path, std::string_view content) override;
  Status SyncFile(const std::string& path) override;
  Status SyncDir(const std::string& dir) override;
  Status RenameFile(const std::string& from, const std::string& to) override;
  Status RemoveFile(const std::string& path) override;
  Status RemoveAll(const std::string& path) override;
  Result<std::vector<std::string>> ListDir(const std::string& dir) override;
  bool FileExists(const std::string& path) override;
  void SleepForMicros(uint64_t micros) override;
};

/// Env decorator that injects faults at a chosen mutating operation.
///
/// Mutating operations (CreateDirs, WriteFile, AppendFile, SyncFile,
/// SyncDir, RenameFile, RemoveFile, RemoveAll) are numbered 0, 1, 2, ... in call
/// order; read-only operations are passed through uncounted, since a crash
/// during a read is indistinguishable from one just before the next write.
/// A dry run with `fail_at_op` left at kNever yields op_count(), the total
/// a crash matrix then sweeps.
class FaultInjectionEnv : public Env {
 public:
  static constexpr size_t kNever = static_cast<size_t>(-1);

  enum class FaultKind {
    kHardError,  ///< op does nothing, returns IOError; then crashed
    kTornWrite,  ///< WriteFile persists a prefix, then crashed
    kNoSpace,    ///< this and all later writes fail with injected ENOSPC
    kTransient,  ///< next `transient_failures` ops fail Unavailable, then heal
  };

  struct Options {
    size_t fail_at_op = kNever;  ///< index of the first faulted mutating op
    FaultKind kind = FaultKind::kHardError;
    /// kTransient only: how many consecutive mutating ops fail before the
    /// fault heals and operations succeed again.
    size_t transient_failures = 1;
  };

  explicit FaultInjectionEnv(Env* base) : FaultInjectionEnv(base, Options{}) {}
  FaultInjectionEnv(Env* base, Options options);

  Status CreateDirs(const std::string& dir) override;
  Result<std::string> ReadFile(const std::string& path) override;
  Status WriteFile(const std::string& path, std::string_view content) override;
  Status AppendFile(const std::string& path, std::string_view content) override;
  Status SyncFile(const std::string& path) override;
  Status SyncDir(const std::string& dir) override;
  Status RenameFile(const std::string& from, const std::string& to) override;
  Status RemoveFile(const std::string& path) override;
  Status RemoveAll(const std::string& path) override;
  Result<std::vector<std::string>> ListDir(const std::string& dir) override;
  bool FileExists(const std::string& path) override;
  void SleepForMicros(uint64_t micros) override;

  /// Mutating operations observed so far (including faulted ones).
  size_t op_count() const;
  /// Faults delivered so far (>= 1 once fail_at_op was reached).
  size_t faults_fired() const;
  /// Backoff sleeps requested via SleepForMicros.
  size_t sleep_count() const;
  uint64_t total_sleep_micros() const;
  /// Every requested backoff duration, in request order (jitter tests).
  std::vector<uint64_t> sleep_history() const;

 private:
  /// How a faulted operation moves bytes (torn writes persist a prefix
  /// through the matching base operation).
  enum class WriteKind { kNone, kTruncate, kAppend };

  /// Pre-flight for one mutating op. OK = execute it; otherwise the typed
  /// injected error. `content` is consumed by kTornWrite.
  Status Admit(const std::string& path, std::string_view content,
               WriteKind kind);

  Env* base_;
  Options options_;
  mutable std::mutex mu_;
  size_t ops_ = 0;
  size_t faults_ = 0;
  size_t sleeps_ = 0;
  uint64_t slept_micros_ = 0;
  std::vector<uint64_t> sleep_history_;
  bool crashed_ = false;   ///< hard/torn fault delivered; everything fails
  bool no_space_ = false;  ///< ENOSPC delivered; writes keep failing
};

/// Bounded retry/backoff for transient (Unavailable) failures.
struct RetryPolicy {
  size_t max_attempts = 4;              ///< total tries, including the first
  uint64_t initial_backoff_micros = 100;
  uint64_t max_backoff_micros = 10'000;
  /// Decorrelate backoff across concurrent retry loops: each sleep is drawn
  /// uniformly from [initial, min(max, 3 * previous)] instead of the
  /// deterministic doubling, so a shared fault (one disk stalling every
  /// writer) does not turn into synchronized retry bursts. Every sleep
  /// stays within [initial_backoff_micros, max_backoff_micros].
  bool decorrelated_jitter = true;
};

/// Runs `op`, retrying Unavailable results up to policy.max_attempts with
/// exponential backoff slept through `env` (decorrelated-jittered by
/// default, see RetryPolicy). Non-transient errors and OK are returned
/// immediately; a still-failing op returns its last Unavailable.
Status RetryTransient(Env* env, const RetryPolicy& policy,
                      const std::function<Status()>& op);

}  // namespace toss::store

#endif  // TOSS_STORE_ENV_H_
