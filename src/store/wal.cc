#include "store/wal.h"

#include <algorithm>
#include <cstdio>
#include <utility>

#include "common/string_util.h"
#include "common/timer.h"
#include "obs/metrics.h"
#include "store/snapshot.h"

namespace toss::store {

namespace {

struct WalMetrics {
  obs::Counter& appends = obs::Metrics().GetCounter("store.wal.appends");
  obs::Counter& records = obs::Metrics().GetCounter("store.wal.records");
  obs::Counter& batches = obs::Metrics().GetCounter("store.wal.batches");
  obs::Counter& fsyncs = obs::Metrics().GetCounter("store.wal.fsyncs");
  obs::Counter& bytes_appended =
      obs::Metrics().GetCounter("store.wal.bytes_appended");
  obs::Counter& append_errors =
      obs::Metrics().GetCounter("store.wal.append_errors");
  obs::Counter& rotations = obs::Metrics().GetCounter("store.wal.rotations");
  obs::Histogram& commit_ns =
      obs::Metrics().GetHistogram("store.wal.commit_latency_ns");
  obs::Histogram& fsync_ns =
      obs::Metrics().GetHistogram("store.wal.fsync_latency_ns");
  obs::Histogram& batch_records =
      obs::Metrics().GetHistogram("store.wal.batch_records");
};

WalMetrics& Instruments() {
  static WalMetrics* m = new WalMetrics();
  return *m;
}

const char* OpToken(WalOp op) {
  switch (op) {
    case WalOp::kInsert:
      return "insert";
    case WalOp::kReplace:
      return "replace";
    case WalOp::kRemove:
      return "remove";
  }
  return "insert";
}

std::optional<WalOp> ParseOpToken(std::string_view token) {
  if (token == "insert") return WalOp::kInsert;
  if (token == "replace") return WalOp::kReplace;
  if (token == "remove") return WalOp::kRemove;
  return std::nullopt;
}

}  // namespace

std::string FormatWalPayload(const WalRecord& record) {
  std::string out = OpToken(record.op);
  out += ' ';
  out += EscapeKey(record.collection);
  out += '\n';
  out += EscapeKey(record.key);
  out += '\n';
  out += record.xml;
  return out;
}

Result<WalRecord> ParseWalPayload(std::string_view payload) {
  size_t eol1 = payload.find('\n');
  if (eol1 == std::string_view::npos) {
    return Status::ParseError("wal payload missing op line");
  }
  size_t eol2 = payload.find('\n', eol1 + 1);
  if (eol2 == std::string_view::npos) {
    return Status::ParseError("wal payload missing key line");
  }
  std::string_view op_line = payload.substr(0, eol1);
  size_t sp = op_line.find(' ');
  if (sp == std::string_view::npos) {
    return Status::ParseError("malformed wal op line: '" +
                              std::string(op_line) + "'");
  }
  std::optional<WalOp> op = ParseOpToken(op_line.substr(0, sp));
  if (!op) {
    return Status::ParseError("unknown wal op: '" +
                              std::string(op_line.substr(0, sp)) + "'");
  }
  WalRecord rec;
  rec.op = *op;
  TOSS_ASSIGN_OR_RETURN(rec.collection, UnescapeKey(op_line.substr(sp + 1)));
  TOSS_ASSIGN_OR_RETURN(rec.key,
                        UnescapeKey(payload.substr(eol1 + 1, eol2 - eol1 - 1)));
  rec.xml = std::string(payload.substr(eol2 + 1));
  if (rec.op == WalOp::kRemove && !rec.xml.empty()) {
    return Status::ParseError("wal remove record carries a payload");
  }
  return rec;
}

std::string FormatWalRecord(uint64_t seq, std::string_view payload) {
  char crc[16];
  std::snprintf(crc, sizeof(crc), "%08x", Crc32(payload));
  std::string out = "rec " + std::to_string(seq) + " " +
                    std::to_string(payload.size()) + " " + crc + "\n";
  out += payload;
  out += '\n';
  return out;
}

Result<ParsedWal> ParseWalLog(std::string_view text, uint64_t start_seq) {
  ParsedWal out;
  out.next_seq = start_seq;
  size_t pos = 0;
  auto Torn = [&](const std::string& reason) {
    out.torn_tail = true;
    out.torn_reason = reason + " at byte " + std::to_string(pos) +
                      " (dropping " + std::to_string(text.size() - pos) +
                      " trailing bytes)";
    return out;
  };
  while (pos < text.size()) {
    size_t eol = text.find('\n', pos);
    if (eol == std::string_view::npos) {
      // The header line itself never landed completely: a torn final
      // append. (A bit flip could fake this too; like every log format
      // with per-record checksums, tail damage is indistinguishable from
      // a tear and resolves in favor of truncation.)
      return Torn("wal header cut short");
    }
    std::string_view header = text.substr(pos, eol - pos);
    // rec <seq> <payload-bytes> <crc32-hex> -- complete (newline present)
    // but malformed headers are corruption, not tearing: prefix-tears
    // cannot garble bytes they did not write.
    if (!StartsWith(header, "rec ")) {
      return Status::IOError("wal corruption: unrecognized record header '" +
                             std::string(header.substr(0, 64)) + "'");
    }
    std::string_view rest = header.substr(4);
    size_t sp1 = rest.find(' ');
    size_t sp2 = sp1 == std::string_view::npos ? std::string_view::npos
                                               : rest.find(' ', sp1 + 1);
    if (sp2 == std::string_view::npos ||
        rest.find(' ', sp2 + 1) != std::string_view::npos) {
      return Status::IOError("wal corruption: malformed record header '" +
                             std::string(header) + "'");
    }
    long long seq_ll = 0;
    long long len_ll = 0;
    if (!ParseInt(rest.substr(0, sp1), &seq_ll) || seq_ll < 0 ||
        !ParseInt(rest.substr(sp1 + 1, sp2 - sp1 - 1), &len_ll) || len_ll < 0) {
      return Status::IOError("wal corruption: malformed record header '" +
                             std::string(header) + "'");
    }
    std::string_view crc_text = rest.substr(sp2 + 1);
    if (crc_text.empty() || crc_text.size() > 8) {
      return Status::IOError("wal corruption: malformed crc32 in '" +
                             std::string(header) + "'");
    }
    uint32_t crc = 0;
    for (char c : crc_text) {
      int digit = -1;
      if (c >= '0' && c <= '9') digit = c - '0';
      if (c >= 'a' && c <= 'f') digit = c - 'a' + 10;
      if (c >= 'A' && c <= 'F') digit = c - 'A' + 10;
      if (digit < 0) {
        return Status::IOError("wal corruption: malformed crc32 in '" +
                               std::string(header) + "'");
      }
      crc = crc * 16 + static_cast<uint32_t>(digit);
    }
    const uint64_t seq = static_cast<uint64_t>(seq_ll);
    const uint64_t len = static_cast<uint64_t>(len_ll);
    const size_t payload_start = eol + 1;
    if (len > text.size() - payload_start ||
        payload_start + len + 1 > text.size()) {
      // Fewer payload bytes (or no terminator) than the header declares:
      // the append tore mid-record.
      return Torn("wal payload cut short");
    }
    std::string_view payload = text.substr(payload_start, len);
    if (text[payload_start + len] != '\n') {
      return Status::IOError(
          "wal corruption: record at byte " + std::to_string(pos) +
          " is missing its terminator");
    }
    if (Crc32(payload) != crc) {
      return Status::IOError("wal corruption: checksum mismatch for record " +
                             std::to_string(seq) + " at byte " +
                             std::to_string(pos));
    }
    if (seq != out.next_seq) {
      return Status::IOError(
          "wal corruption: record sequence " + std::to_string(seq) +
          " at byte " + std::to_string(pos) + ", expected " +
          std::to_string(out.next_seq) +
          " (duplicated or reordered log tail)");
    }
    auto rec = ParseWalPayload(payload);
    if (!rec.ok()) {
      return Status::IOError("wal corruption: " + rec.status().ToString());
    }
    out.records.push_back(std::move(rec).value());
    ++out.next_seq;
    pos = payload_start + len + 1;
    out.intact_bytes = pos;
  }
  return out;
}

// ---------------------------------------------------------------------------
// WalWriter
// ---------------------------------------------------------------------------

WalWriter::WalWriter(Env* env, std::string path, uint64_t next_seq,
                     WalWriterOptions options)
    : env_(env),
      path_(std::move(path)),
      options_(options),
      next_seq_(next_seq) {
  options_.max_batch_records = std::max<size_t>(1, options_.max_batch_records);
}

std::shared_ptr<WalWriter::Pending> WalWriter::Enqueue(std::string payload,
                                                       ApplyFn apply) {
  std::lock_guard<std::mutex> lock(mu_);
  if (poisoned_) return nullptr;
  auto p = std::make_shared<Pending>();
  p->apply = std::move(apply);
  p->bytes = FormatWalRecord(next_seq_++, payload);
  queue_.push_back(p);
  Instruments().appends.Increment();
  ++stats_.appends;
  return p;
}

Status WalWriter::Wait(const std::shared_ptr<Pending>& p) {
  WalMetrics& m = Instruments();
  Timer commit_timer;

  std::unique_lock<std::mutex> lock(mu_);
  while (!p->done) {
    if (!leader_active_ && !queue_.empty()) {
      // Become the batch leader: optionally linger for followers, then
      // drain the queue (bounded), write + fsync once, apply in order.
      leader_active_ = true;
      if (options_.group_wait_micros > 0 &&
          queue_.size() < options_.max_batch_records) {
        lock.unlock();
        env_->SleepForMicros(options_.group_wait_micros);
        lock.lock();
      }
      std::vector<std::shared_ptr<Pending>> batch;
      std::string blob;
      while (!queue_.empty() && batch.size() < options_.max_batch_records) {
        batch.push_back(queue_.front());
        queue_.pop_front();
        blob += batch.back()->bytes;
      }
      lock.unlock();

      Status st = RetryTransient(env_, options_.retry, [&] {
        return env_->AppendFile(path_, blob);
      });
      if (st.ok()) {
        Timer fsync_timer;
        st = RetryTransient(env_, options_.retry,
                            [&] { return env_->SyncFile(path_); });
        m.fsyncs.Increment();
        m.fsync_ns.Record(static_cast<uint64_t>(fsync_timer.ElapsedNanos()));
      }
      if (st.ok()) {
        m.batches.Increment();
        m.records.Add(batch.size());
        m.bytes_appended.Add(blob.size());
        m.batch_records.Record(batch.size());
        // The batch is durable: run the in-memory effects in sequence
        // order before anyone observes their Append as committed.
        for (auto& q : batch) {
          q->result = q->apply ? q->apply() : Status::OK();
          q->applied = true;
        }
      } else {
        m.append_errors.Increment();
      }

      lock.lock();
      if (st.ok()) {
        ++stats_.batches;
        stats_.records += batch.size();
        stats_.max_batch = std::max<uint64_t>(stats_.max_batch, batch.size());
        for (auto& q : batch) q->done = true;
      } else {
        // The tail of the log is now unknown; nothing else may append to
        // it. Fail the batch with the I/O error and every still-queued
        // record behind it.
        poisoned_ = true;
        for (auto& q : batch) {
          q->result = st;
          q->done = true;
        }
        for (auto& q : queue_) {
          q->result = Status::IOError(
              "wal append aborted: writer poisoned by a concurrent append "
              "failure (" + st.ToString() + ")");
          q->done = true;
        }
        queue_.clear();
      }
      leader_active_ = false;
      cv_.notify_all();
    } else {
      cv_.wait(lock);
    }
  }
  m.commit_ns.Record(static_cast<uint64_t>(commit_timer.ElapsedNanos()));
  return p->result;
}

Status WalWriter::Append(std::string payload, ApplyFn apply) {
  auto ticket = Enqueue(std::move(payload), std::move(apply));
  if (ticket == nullptr) {
    return Status::IOError(
        "wal writer poisoned by an earlier append failure; checkpoint to "
        "rotate the log");
  }
  return Wait(ticket);
}

bool WalWriter::Idle() const {
  std::lock_guard<std::mutex> lock(mu_);
  return !leader_active_ && queue_.empty();
}

Status WalWriter::Rotate(std::string path) {
  std::lock_guard<std::mutex> lock(mu_);
  if (leader_active_ || !queue_.empty()) {
    return Status::Unavailable("wal rotation with appends in flight");
  }
  path_ = std::move(path);
  poisoned_ = false;
  Instruments().rotations.Increment();
  return Status::OK();
}

uint64_t WalWriter::next_seq() const {
  std::lock_guard<std::mutex> lock(mu_);
  return next_seq_;
}

bool WalWriter::poisoned() const {
  std::lock_guard<std::mutex> lock(mu_);
  return poisoned_;
}

WalWriter::Stats WalWriter::GetStats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace toss::store
