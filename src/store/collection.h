// A collection of XML documents with secondary indexes -- the unit of
// storage of the embedded XML database (the repository's Apache Xindice
// substitute; see DESIGN.md "Substitutions").
//
// Query processing follows the classic plan: the planner intersects the
// query's PlanHints against the tag / value / term indexes to obtain a
// candidate document set, then evaluates the full XPath only on candidates.
// QueryStats exposes how much the indexes pruned (ablation benches flip
// `use_indexes` off to quantify this).

#ifndef TOSS_STORE_COLLECTION_H_
#define TOSS_STORE_COLLECTION_H_

#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/interner.h"
#include "common/result.h"
#include "store/btree.h"
#include "tax/data_tree.h"
#include "xml/xml_document.h"
#include "xml/xpath.h"

namespace toss::store {

using DocId = uint32_t;

/// One matched node: which document and which element within it.
struct Match {
  DocId doc = 0;
  xml::NodeId node = 0;
};

/// Execution counters for one Query call.
struct QueryStats {
  size_t candidate_docs = 0;  ///< documents surviving index pruning
  size_t scanned_docs = 0;    ///< documents actually evaluated
  size_t total_docs = 0;      ///< collection size at query time
  bool used_indexes = false;
};

class Collection {
 public:
  explicit Collection(std::string name) : name_(std::move(name)) {}

  // Movable despite the cache mutex (the mutex itself is not moved; no
  // concurrent access may be in flight during a move).
  Collection(Collection&& other) noexcept;
  Collection& operator=(Collection&& other) noexcept;

  const std::string& name() const { return name_; }
  size_t size() const { return docs_.size(); }

  /// Adds a document under `key` (unique within the collection). The
  /// document is indexed immediately.
  Result<DocId> Insert(std::string key, xml::XmlDocument doc);

  /// Parses `text` then inserts it.
  Result<DocId> InsertXml(std::string key, std::string_view text);

  /// Removes the document stored under `key`.
  Status Remove(const std::string& key);

  /// Replaces the document stored under `key` (atomic from the reader's
  /// perspective: lookups never observe the key missing). Returns the new
  /// DocId; NotFound when the key is absent.
  Result<DocId> Replace(const std::string& key, xml::XmlDocument doc);

  /// Document lookup by key.
  Result<DocId> FindKey(const std::string& key) const;

  const xml::XmlDocument& document(DocId id) const { return docs_[id].doc; }
  const std::string& key(DocId id) const { return docs_[id].key; }

  /// Live document ids in insertion order.
  std::vector<DocId> AllDocs() const;

  /// Evaluates `xpath` over every live document (index-pruned when
  /// `use_indexes`), returning matches in (doc, document-order) order.
  std::vector<Match> Query(const xml::XPath& xpath, bool use_indexes = true,
                           QueryStats* stats = nullptr) const;

  /// Convenience: compile + Query.
  Result<std::vector<Match>> QueryText(std::string_view xpath,
                                       bool use_indexes = true,
                                       QueryStats* stats = nullptr) const;

  /// Total serialized byte size of all live documents (the paper's
  /// "data size" axis). Sizes are recorded once at Insert/Replace time, so
  /// this is a cheap sum, not a re-serialization.
  size_t ApproxByteSize() const;

  // --- Decoded-tree cache --------------------------------------------------
  //
  // Algebra evaluation works on tax::DataTree, not raw XML; decoding is the
  // dominant per-document cost once candidates are pruned. Documents are
  // immutable per DocId (Replace allocates a fresh id), so decoded trees
  // are cached under the DocId in a thread-safe, capacity-bounded LRU and
  // shared across queries and worker threads. Remove/Replace drop the dead
  // id's entry eagerly.

  /// The decoded (and tag-indexed) tree of document `id`, decoding and
  /// caching it on first access. Safe to call concurrently.
  std::shared_ptr<const tax::DataTree> DecodedTree(DocId id) const;

  /// Caps the number of cached decoded trees (clamped to >= 1). Shrinking
  /// evicts least-recently-used entries immediately.
  void SetTreeCacheCapacity(size_t capacity);

  struct TreeCacheStats {
    size_t hits = 0;
    size_t misses = 0;
    size_t entries = 0;
    size_t capacity = 0;
  };
  TreeCacheStats GetTreeCacheStats() const;

  /// Zeroes the cache's hit/miss counters (cached entries stay). The
  /// process-wide `store.tree_cache.*` registry counters are unaffected --
  /// they stay cumulative across resets and Database::Reload.
  void ResetTreeCacheStats();

  /// Aggregate statistics (sizes of the catalog and each index).
  struct Stats {
    size_t live_docs = 0;
    size_t tag_index_entries = 0;
    size_t term_index_entries = 0;
    size_t value_index_keys = 0;
    size_t numeric_index_keys = 0;
    size_t approx_bytes = 0;
  };
  Stats GetStats() const;

  /// Documents containing a `tag` element whose text content lies in
  /// [lo, hi] (absent bound = open side). Ordering follows CompareScalar:
  /// when every present bound parses as an integer the numeric index is
  /// scanned (only integer-valued contents can match); pure-string bounds
  /// scan the lexicographic index. Bounds parsing as non-integer numbers
  /// ("3.5") are unsupported (Unsupported status) -- callers fall back to
  /// full evaluation.
  Result<std::vector<DocId>> DocsWithValueInRange(
      std::string_view tag, const std::optional<std::string>& lo,
      const std::optional<std::string>& hi) const;

  /// Live documents containing at least one element tagged with any member
  /// of `tags`, ascending. Serves the join engine's document-level pruning
  /// (tax::TwigJoiner::PruneFilters).
  std::vector<DocId> DocsWithAnyTag(const std::set<std::string>& tags) const;

  /// Id-space DocsWithAnyTag: `tags` are interned SymbolIds (the tag index
  /// is keyed by them), e.g. from tax::TwigJoiner::PruneFilterIds.
  std::vector<DocId> DocsWithAnyTagIds(const std::vector<SymbolId>& tags) const;

  /// Live documents containing at least one element whose tag contains '*'
  /// (such tags match any tag literal under glob equality), ascending.
  std::vector<DocId> DocsWithWildcardTag() const;

 private:
  struct Entry {
    std::string key;
    xml::XmlDocument doc;
    bool live = true;
    size_t serialized_bytes = 0;  ///< recorded at Insert/Replace
    // Ordered-index keys this document contributed (for unindexing).
    std::vector<std::string> value_keys;
    std::vector<std::string> numeric_keys;
  };

  void IndexDocument(DocId id);
  void UnindexDocument(DocId id);
  void InvalidateCachedTree(DocId id);

  /// Candidate docs per hints, or all live docs when hints give no leverage.
  std::vector<DocId> PlanCandidates(const xml::PlanHints& hints,
                                    bool* pruned) const;

  std::string name_;
  std::vector<Entry> docs_;
  std::map<std::string, DocId> by_key_;

  // Secondary indexes. Tag and term postings are doc-id sets; exact values
  // live in two B+-trees -- lexicographic raw keys plus an order-preserving
  // numeric encoding -- so equality lookups and range scans share storage.
  // The tag index is keyed by interned SymbolId (every indexed tag joins
  // the process dictionary at IndexDocument); string lookups go through
  // Interner::Find -- a tag the dictionary has never seen is in no live
  // document. Documents carrying a tag the dictionary could not intern
  // (overflow) land in unindexed_tag_docs_ and are conservatively kept by
  // every tag-based pruning path.
  std::unordered_map<SymbolId, std::set<DocId>> tag_index_;
  std::set<DocId> unindexed_tag_docs_;
  std::map<std::string, std::set<DocId>> term_index_;
  BPlusTree value_index_;    // ValueKey(tag, content)
  BPlusTree numeric_index_;  // NumericKey(tag, content), integer contents

  // Decoded-tree LRU (front of tree_lru_ = most recently used). All cache
  // state is guarded by tree_cache_mu_; decoding itself runs outside the
  // lock (racing decoders of one DocId produce identical trees; the first
  // insert wins).
  struct TreeCacheEntry {
    std::shared_ptr<const tax::DataTree> tree;
    std::list<DocId>::iterator lru_it;
  };
  static constexpr size_t kDefaultTreeCacheCapacity = 16384;
  mutable std::mutex tree_cache_mu_;
  mutable std::list<DocId> tree_lru_;
  mutable std::unordered_map<DocId, TreeCacheEntry> tree_cache_;
  mutable size_t tree_cache_hits_ = 0;
  mutable size_t tree_cache_misses_ = 0;
  size_t tree_cache_capacity_ = kDefaultTreeCacheCapacity;
};

}  // namespace toss::store

#endif  // TOSS_STORE_COLLECTION_H_
