#include "store/env.h"

#include <algorithm>
#include <atomic>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <thread>

#ifndef _WIN32
#include <fcntl.h>
#include <unistd.h>
#endif

#include "obs/metrics.h"

namespace toss::store {

namespace fs = std::filesystem;

namespace {

/// I/O substrate counters. Incremented in ProductionEnv (the layer where
/// the bytes actually move) so FaultInjectionEnv wrappers are counted once,
/// and in the fault/retry paths that never reach the base Env.
struct EnvMetrics {
  obs::Counter& reads = obs::Metrics().GetCounter("store.env.reads");
  obs::Counter& writes = obs::Metrics().GetCounter("store.env.writes");
  obs::Counter& bytes_written =
      obs::Metrics().GetCounter("store.env.bytes_written");
  obs::Counter& fsyncs = obs::Metrics().GetCounter("store.env.fsyncs");
  obs::Counter& renames = obs::Metrics().GetCounter("store.env.renames");
  obs::Counter& removes = obs::Metrics().GetCounter("store.env.removes");
  obs::Counter& faults = obs::Metrics().GetCounter("store.env.faults_injected");
  obs::Counter& retries = obs::Metrics().GetCounter("store.env.retries");
};

EnvMetrics& Instruments() {
  static EnvMetrics* m = new EnvMetrics();
  return *m;
}

}  // namespace

// ---------------------------------------------------------------------------
// ProductionEnv
// ---------------------------------------------------------------------------

Status ProductionEnv::CreateDirs(const std::string& dir) {
  std::error_code ec;
  fs::create_directories(dir, ec);
  if (ec) {
    return Status::IOError("cannot create directory " + dir + ": " +
                           ec.message());
  }
  return Status::OK();
}

Result<std::string> ProductionEnv::ReadFile(const std::string& path) {
  Instruments().reads.Increment();
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status::IOError("cannot open " + path);
  }
  std::ostringstream ss;
  ss << in.rdbuf();
  if (in.bad()) {
    return Status::IOError("read failed for " + path);
  }
  return ss.str();
}

Status ProductionEnv::WriteFile(const std::string& path,
                                std::string_view content) {
  EnvMetrics& m = Instruments();
  m.writes.Increment();
  m.bytes_written.Add(content.size());
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    return Status::IOError("cannot write " + path);
  }
  out.write(content.data(), static_cast<std::streamsize>(content.size()));
  out.close();
  if (!out) {
    return Status::IOError("write failed for " + path);
  }
  return Status::OK();
}

Status ProductionEnv::AppendFile(const std::string& path,
                                 std::string_view content) {
  EnvMetrics& m = Instruments();
  m.writes.Increment();
  m.bytes_written.Add(content.size());
  std::ofstream out(path, std::ios::binary | std::ios::app);
  if (!out) {
    return Status::IOError("cannot append to " + path);
  }
  out.write(content.data(), static_cast<std::streamsize>(content.size()));
  out.close();
  if (!out) {
    return Status::IOError("append failed for " + path);
  }
  return Status::OK();
}

Status ProductionEnv::SyncFile(const std::string& path) {
  Instruments().fsyncs.Increment();
#ifndef _WIN32
  int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    return Status::IOError("cannot open for sync: " + path);
  }
  int rc = ::fsync(fd);
  ::close(fd);
  if (rc != 0) {
    return Status::IOError("fsync failed for " + path);
  }
#endif
  return Status::OK();
}

Status ProductionEnv::SyncDir(const std::string& dir) {
  Instruments().fsyncs.Increment();
#ifndef _WIN32
  int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) {
    return Status::IOError("cannot open directory for sync: " + dir);
  }
  int rc = ::fsync(fd);
  ::close(fd);
  if (rc != 0) {
    return Status::IOError("fsync failed for directory " + dir);
  }
#endif
  return Status::OK();
}

Status ProductionEnv::RenameFile(const std::string& from,
                                 const std::string& to) {
  Instruments().renames.Increment();
  std::error_code ec;
  fs::rename(from, to, ec);
  if (ec) {
    return Status::IOError("cannot rename " + from + " -> " + to + ": " +
                           ec.message());
  }
  return Status::OK();
}

Status ProductionEnv::RemoveFile(const std::string& path) {
  Instruments().removes.Increment();
  std::error_code ec;
  fs::remove(path, ec);  // returns false when absent, which is fine
  if (ec) {
    return Status::IOError("cannot remove " + path + ": " + ec.message());
  }
  return Status::OK();
}

Status ProductionEnv::RemoveAll(const std::string& path) {
  Instruments().removes.Increment();
  std::error_code ec;
  fs::remove_all(path, ec);
  if (ec) {
    return Status::IOError("cannot remove tree " + path + ": " + ec.message());
  }
  return Status::OK();
}

Result<std::vector<std::string>> ProductionEnv::ListDir(
    const std::string& dir) {
  std::error_code ec;
  fs::directory_iterator it(dir, ec);
  if (ec) {
    return Status::IOError("cannot list " + dir + ": " + ec.message());
  }
  std::vector<std::string> names;
  for (const auto& entry : it) {
    names.push_back(entry.path().filename().string());
  }
  return names;
}

bool ProductionEnv::FileExists(const std::string& path) {
  std::error_code ec;
  return fs::exists(path, ec);
}

void ProductionEnv::SleepForMicros(uint64_t micros) {
  std::this_thread::sleep_for(std::chrono::microseconds(micros));
}

Env* Env::Default() {
  // Leaked deliberately (same rationale as SharedWorkerPool): destruction
  // order at exit is a hazard and the object is stateless anyway.
  static ProductionEnv* env = new ProductionEnv();
  return env;
}

// ---------------------------------------------------------------------------
// FaultInjectionEnv
// ---------------------------------------------------------------------------

FaultInjectionEnv::FaultInjectionEnv(Env* base, Options options)
    : base_(base), options_(options) {}

Status FaultInjectionEnv::Admit(const std::string& path,
                                std::string_view content, WriteKind kind) {
  const bool is_write = kind != WriteKind::kNone;
  // Torn faults persist a prefix through the matching base operation, so a
  // torn append damages only the log tail, never the preceding records.
  auto TearWrite = [&] {
    if (!is_write || content.empty()) return;
    std::string_view prefix = content.substr(0, content.size() / 2);
    // Ignore secondary errors; the caller only ever sees the injected one.
    if (kind == WriteKind::kAppend) {
      (void)base_->AppendFile(path, prefix);
    } else {
      (void)base_->WriteFile(path, prefix);
    }
  };
  std::lock_guard<std::mutex> lock(mu_);
  if (crashed_) {
    return Status::IOError("injected fault: process crashed (op after #" +
                           std::to_string(options_.fail_at_op) + ")");
  }
  size_t op = ops_++;
  if (no_space_) {
    // The disk is full, not dead: writes keep failing, everything else works.
    if (!is_write) return Status::OK();
    ++faults_;
    Instruments().faults.Increment();
    return Status::IOError("injected fault: no space left on device");
  }
  if (op < options_.fail_at_op) return Status::OK();

  switch (options_.kind) {
    case FaultKind::kHardError:
      ++faults_;
      Instruments().faults.Increment();
      crashed_ = true;
      return Status::IOError("injected fault: I/O error at op #" +
                             std::to_string(op) + " (" + path + ")");
    case FaultKind::kTornWrite:
      ++faults_;
      Instruments().faults.Increment();
      crashed_ = true;
      TearWrite();
      return Status::IOError("injected fault: torn write at op #" +
                             std::to_string(op) + " (" + path + ")");
    case FaultKind::kNoSpace:
      ++faults_;
      Instruments().faults.Increment();
      no_space_ = true;
      TearWrite();
      return Status::IOError("injected fault: no space left on device (op #" +
                             std::to_string(op) + ", " + path + ")");
    case FaultKind::kTransient:
      if (faults_ < options_.transient_failures) {
        ++faults_;
        Instruments().faults.Increment();
        return Status::Unavailable("injected fault: transient I/O error at op #" +
                                   std::to_string(op) + " (" + path + ")");
      }
      return Status::OK();
  }
  return Status::OK();
}

Status FaultInjectionEnv::CreateDirs(const std::string& dir) {
  TOSS_RETURN_NOT_OK(Admit(dir, {}, WriteKind::kNone));
  return base_->CreateDirs(dir);
}

Result<std::string> FaultInjectionEnv::ReadFile(const std::string& path) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (crashed_) {
      return Status::IOError("injected fault: process crashed");
    }
  }
  return base_->ReadFile(path);
}

Status FaultInjectionEnv::WriteFile(const std::string& path,
                                    std::string_view content) {
  TOSS_RETURN_NOT_OK(Admit(path, content, WriteKind::kTruncate));
  return base_->WriteFile(path, content);
}

Status FaultInjectionEnv::AppendFile(const std::string& path,
                                     std::string_view content) {
  TOSS_RETURN_NOT_OK(Admit(path, content, WriteKind::kAppend));
  return base_->AppendFile(path, content);
}

Status FaultInjectionEnv::SyncFile(const std::string& path) {
  TOSS_RETURN_NOT_OK(Admit(path, {}, WriteKind::kNone));
  return base_->SyncFile(path);
}

Status FaultInjectionEnv::SyncDir(const std::string& dir) {
  TOSS_RETURN_NOT_OK(Admit(dir, {}, WriteKind::kNone));
  return base_->SyncDir(dir);
}

Status FaultInjectionEnv::RenameFile(const std::string& from,
                                     const std::string& to) {
  TOSS_RETURN_NOT_OK(Admit(from, {}, WriteKind::kNone));
  return base_->RenameFile(from, to);
}

Status FaultInjectionEnv::RemoveFile(const std::string& path) {
  TOSS_RETURN_NOT_OK(Admit(path, {}, WriteKind::kNone));
  return base_->RemoveFile(path);
}

Status FaultInjectionEnv::RemoveAll(const std::string& path) {
  TOSS_RETURN_NOT_OK(Admit(path, {}, WriteKind::kNone));
  return base_->RemoveAll(path);
}

Result<std::vector<std::string>> FaultInjectionEnv::ListDir(
    const std::string& dir) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (crashed_) {
      return Status::IOError("injected fault: process crashed");
    }
  }
  return base_->ListDir(dir);
}

bool FaultInjectionEnv::FileExists(const std::string& path) {
  return base_->FileExists(path);
}

void FaultInjectionEnv::SleepForMicros(uint64_t micros) {
  std::lock_guard<std::mutex> lock(mu_);
  ++sleeps_;
  slept_micros_ += micros;  // recorded, never actually slept: tests stay fast
  sleep_history_.push_back(micros);
}

size_t FaultInjectionEnv::op_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return ops_;
}

size_t FaultInjectionEnv::faults_fired() const {
  std::lock_guard<std::mutex> lock(mu_);
  return faults_;
}

size_t FaultInjectionEnv::sleep_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return sleeps_;
}

uint64_t FaultInjectionEnv::total_sleep_micros() const {
  std::lock_guard<std::mutex> lock(mu_);
  return slept_micros_;
}

std::vector<uint64_t> FaultInjectionEnv::sleep_history() const {
  std::lock_guard<std::mutex> lock(mu_);
  return sleep_history_;
}

// ---------------------------------------------------------------------------
// RetryTransient
// ---------------------------------------------------------------------------

namespace {

/// splitmix64: cheap, well-mixed 64-bit hash for the jitter stream.
uint64_t Mix64(uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

/// Per-call jitter seed: a process-wide counter, so two retry loops hit by
/// the same shared fault draw different (but still deterministic and
/// reproducible within one process) backoff sequences.
uint64_t NextJitterSeed() {
  static std::atomic<uint64_t> counter{0};
  return Mix64(counter.fetch_add(1, std::memory_order_relaxed));
}

}  // namespace

Status RetryTransient(Env* env, const RetryPolicy& policy,
                      const std::function<Status()>& op) {
  size_t attempts = std::max<size_t>(1, policy.max_attempts);
  const uint64_t floor_us = policy.initial_backoff_micros;
  const uint64_t cap_us =
      std::max(policy.max_backoff_micros, floor_us);
  uint64_t backoff = floor_us;
  uint64_t jitter_state = NextJitterSeed();
  Status st;
  for (size_t attempt = 0; attempt < attempts; ++attempt) {
    st = op();
    if (!st.IsUnavailable()) return st;
    if (attempt + 1 < attempts) {
      Instruments().retries.Increment();
      if (policy.decorrelated_jitter) {
        // Decorrelated jitter (the "sleep = rand(base, prev * 3)" scheme):
        // grows roughly exponentially in expectation but desynchronizes
        // concurrent retriers; always within [floor, cap].
        uint64_t hi = std::min(cap_us, std::max(floor_us, backoff) * 3);
        jitter_state = Mix64(jitter_state);
        backoff = floor_us + (hi > floor_us ? jitter_state % (hi - floor_us + 1)
                                            : 0);
      }
      env->SleepForMicros(backoff);
      if (!policy.decorrelated_jitter) {
        backoff = std::min(backoff * 2, cap_us);
      }
    }
  }
  return st;
}

}  // namespace toss::store
