// In-memory B+-tree keyed by strings, holding sorted document-id posting
// lists -- the ordered index behind the store's value index. Unlike the
// previous std::map backend, leaves are linked so range scans
// ("year in [1998, 2000]") stream postings in key order without touching
// inner nodes, which is what lets the query executor push ordering
// predicates down to the store.
//
// Deletion removes doc-ids from postings but never rebalances (tombstoned
// empty postings are skipped by scans and reclaimed by Compact()); the
// store's workload is insert-heavy with rare removals, so this keeps the
// structure simple without affecting asymptotics.

#ifndef TOSS_STORE_BTREE_H_
#define TOSS_STORE_BTREE_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace toss::store {

using DocId = uint32_t;

class BPlusTree {
 public:
  /// Max keys per node before splitting.
  static constexpr size_t kFanout = 32;

  BPlusTree();
  ~BPlusTree();
  BPlusTree(BPlusTree&&) noexcept;
  BPlusTree& operator=(BPlusTree&&) noexcept;
  BPlusTree(const BPlusTree&) = delete;
  BPlusTree& operator=(const BPlusTree&) = delete;

  /// Adds `doc` to the posting list of `key` (idempotent per (key, doc)).
  void Insert(std::string_view key, DocId doc);

  /// Removes `doc` from `key`'s posting list; false if absent.
  bool Remove(std::string_view key, DocId doc);

  /// The posting list of `key` (empty when the key is unknown).
  const std::vector<DocId>* Get(std::string_view key) const;

  /// Calls `fn(key, postings)` for every non-empty key in [lo, hi]
  /// (inclusive, lexicographic), in key order. Return false from `fn` to
  /// stop early.
  void RangeScan(std::string_view lo, std::string_view hi,
                 const std::function<bool(const std::string&,
                                          const std::vector<DocId>&)>& fn)
      const;

  /// Half-open variant: keys in [lo, hi_exclusive). Used for prefix scans
  /// over composite keys, where the natural end bound is "the next prefix".
  void RangeScanExclusiveHi(
      std::string_view lo, std::string_view hi_exclusive,
      const std::function<bool(const std::string&,
                               const std::vector<DocId>&)>& fn) const;

  /// Union of postings over [lo, hi], sorted and deduplicated.
  std::vector<DocId> DocsInRange(std::string_view lo,
                                 std::string_view hi) const;

  /// Calls `fn` for every non-empty key in key order (full scan).
  void ForEach(const std::function<bool(const std::string&,
                                        const std::vector<DocId>&)>& fn)
      const;

  /// Number of keys with non-empty postings.
  size_t key_count() const { return key_count_; }

  /// Tree height (1 = a single leaf). Exposed for structural tests.
  size_t height() const { return height_; }

  /// Drops tombstoned (empty-posting) keys and rebuilds the tree densely.
  void Compact();

  /// Internal invariant check (sorted keys, uniform depth, fanout bounds,
  /// leaf chain order). Returns false on violation; test hook.
  bool CheckInvariants() const;

  /// Opaque node type (defined in btree.cc; public so the implementation's
  /// free helper functions can name it).
  struct Node;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
  size_t key_count_ = 0;
  size_t height_ = 1;
};

}  // namespace toss::store

#endif  // TOSS_STORE_BTREE_H_
