#include "store/btree.h"

#include <algorithm>
#include <cassert>

namespace toss::store {

// ---------------------------------------------------------------------------
// Node layout: classic B+-tree. Inner nodes hold separator keys and
// children (children.size() == keys.size() + 1); child i covers keys
// < keys[i], the last child covers the rest. Leaves hold (key, postings)
// pairs and a next-leaf pointer.
// ---------------------------------------------------------------------------

struct BPlusTree::Node {
  bool leaf = true;
  std::vector<std::string> keys;
  // Inner:
  std::vector<std::unique_ptr<Node>> children;
  // Leaf:
  std::vector<std::vector<DocId>> postings;
  Node* next = nullptr;  // leaf chain
};

struct BPlusTree::Impl {
  std::unique_ptr<Node> root;

  Node* LeftmostLeafAtOrAbove(std::string_view key) const {
    Node* n = root.get();
    while (!n->leaf) {
      size_t i = static_cast<size_t>(
          std::upper_bound(n->keys.begin(), n->keys.end(), key) -
          n->keys.begin());
      n = n->children[i].get();
    }
    return n;
  }
};

BPlusTree::BPlusTree() : impl_(std::make_unique<Impl>()) {
  impl_->root = std::make_unique<Node>();
}

BPlusTree::~BPlusTree() = default;
BPlusTree::BPlusTree(BPlusTree&&) noexcept = default;
BPlusTree& BPlusTree::operator=(BPlusTree&&) noexcept = default;

namespace {

/// Result of inserting into a subtree: when the child split, `split_key`
/// separates the original node from `right`.
struct SplitResult {
  bool split = false;
  std::string split_key;
  std::unique_ptr<BPlusTree::Node> right;
};

}  // namespace

// Recursive insert helper. Returns split info for the parent to absorb.
static SplitResult InsertRec(BPlusTree::Node* node, std::string_view key,
                             DocId doc, size_t* key_count) {
  using Node = BPlusTree::Node;
  SplitResult result;
  if (node->leaf) {
    size_t i = static_cast<size_t>(
        std::lower_bound(node->keys.begin(), node->keys.end(), key) -
        node->keys.begin());
    if (i < node->keys.size() && node->keys[i] == key) {
      auto& plist = node->postings[i];
      bool was_tombstone = plist.empty();
      auto it = std::lower_bound(plist.begin(), plist.end(), doc);
      if (it == plist.end() || *it != doc) plist.insert(it, doc);
      if (was_tombstone) ++*key_count;  // revived
      return result;
    }
    node->keys.insert(node->keys.begin() + i, std::string(key));
    node->postings.insert(node->postings.begin() + i, {doc});
    ++*key_count;
    if (node->keys.size() <= BPlusTree::kFanout) return result;
    // Split leaf in half; right half moves to a new node.
    size_t mid = node->keys.size() / 2;
    auto right = std::make_unique<Node>();
    right->leaf = true;
    right->keys.assign(std::make_move_iterator(node->keys.begin() + mid),
                       std::make_move_iterator(node->keys.end()));
    right->postings.assign(
        std::make_move_iterator(node->postings.begin() + mid),
        std::make_move_iterator(node->postings.end()));
    node->keys.resize(mid);
    node->postings.resize(mid);
    right->next = node->next;
    node->next = right.get();
    result.split = true;
    result.split_key = right->keys.front();
    result.right = std::move(right);
    return result;
  }
  // Inner node: descend.
  size_t i = static_cast<size_t>(
      std::upper_bound(node->keys.begin(), node->keys.end(), key) -
      node->keys.begin());
  SplitResult child = InsertRec(node->children[i].get(), key, doc,
                                key_count);
  if (!child.split) return result;
  node->keys.insert(node->keys.begin() + i, std::move(child.split_key));
  node->children.insert(node->children.begin() + i + 1,
                        std::move(child.right));
  if (node->keys.size() <= BPlusTree::kFanout) return result;
  // Split inner node: middle key moves up.
  size_t mid = node->keys.size() / 2;
  auto right = std::make_unique<Node>();
  right->leaf = false;
  result.split_key = std::move(node->keys[mid]);
  right->keys.assign(std::make_move_iterator(node->keys.begin() + mid + 1),
                     std::make_move_iterator(node->keys.end()));
  right->children.assign(
      std::make_move_iterator(node->children.begin() + mid + 1),
      std::make_move_iterator(node->children.end()));
  node->keys.resize(mid);
  node->children.resize(mid + 1);
  result.split = true;
  result.right = std::move(right);
  return result;
}

void BPlusTree::Insert(std::string_view key, DocId doc) {
  SplitResult split = InsertRec(impl_->root.get(), key, doc, &key_count_);
  if (split.split) {
    auto new_root = std::make_unique<Node>();
    new_root->leaf = false;
    new_root->keys.push_back(std::move(split.split_key));
    new_root->children.push_back(std::move(impl_->root));
    new_root->children.push_back(std::move(split.right));
    impl_->root = std::move(new_root);
    ++height_;
  }
}

bool BPlusTree::Remove(std::string_view key, DocId doc) {
  Node* leaf = impl_->LeftmostLeafAtOrAbove(key);
  size_t i = static_cast<size_t>(
      std::lower_bound(leaf->keys.begin(), leaf->keys.end(), key) -
      leaf->keys.begin());
  if (i >= leaf->keys.size() || leaf->keys[i] != key) return false;
  auto& plist = leaf->postings[i];
  auto it = std::lower_bound(plist.begin(), plist.end(), doc);
  if (it == plist.end() || *it != doc) return false;
  plist.erase(it);
  if (plist.empty()) --key_count_;  // tombstoned
  return true;
}

const std::vector<DocId>* BPlusTree::Get(std::string_view key) const {
  Node* leaf = impl_->LeftmostLeafAtOrAbove(key);
  size_t i = static_cast<size_t>(
      std::lower_bound(leaf->keys.begin(), leaf->keys.end(), key) -
      leaf->keys.begin());
  if (i >= leaf->keys.size() || leaf->keys[i] != key) return nullptr;
  return &leaf->postings[i];
}

namespace {

template <typename PastEnd>
void ScanFrom(BPlusTree::Node* leaf, std::string_view lo,
              const PastEnd& past_end,
              const std::function<bool(const std::string&,
                                       const std::vector<DocId>&)>& fn) {
  while (leaf != nullptr) {
    size_t i = static_cast<size_t>(
        std::lower_bound(leaf->keys.begin(), leaf->keys.end(), lo) -
        leaf->keys.begin());
    for (; i < leaf->keys.size(); ++i) {
      if (past_end(leaf->keys[i])) return;
      if (leaf->postings[i].empty()) continue;  // tombstone
      if (!fn(leaf->keys[i], leaf->postings[i])) return;
    }
    leaf = leaf->next;
  }
}

}  // namespace

void BPlusTree::RangeScan(
    std::string_view lo, std::string_view hi,
    const std::function<bool(const std::string&,
                             const std::vector<DocId>&)>& fn) const {
  if (hi < lo) return;
  ScanFrom(impl_->LeftmostLeafAtOrAbove(lo), lo,
           [&](const std::string& key) { return std::string_view(key) > hi; },
           fn);
}

void BPlusTree::RangeScanExclusiveHi(
    std::string_view lo, std::string_view hi_exclusive,
    const std::function<bool(const std::string&,
                             const std::vector<DocId>&)>& fn) const {
  if (hi_exclusive <= lo) return;
  ScanFrom(
      impl_->LeftmostLeafAtOrAbove(lo), lo,
      [&](const std::string& key) {
        return std::string_view(key) >= hi_exclusive;
      },
      fn);
}

std::vector<DocId> BPlusTree::DocsInRange(std::string_view lo,
                                          std::string_view hi) const {
  std::vector<DocId> out;
  RangeScan(lo, hi,
            [&](const std::string&, const std::vector<DocId>& postings) {
              out.insert(out.end(), postings.begin(), postings.end());
              return true;
            });
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

void BPlusTree::ForEach(
    const std::function<bool(const std::string&,
                             const std::vector<DocId>&)>& fn) const {
  Node* leaf = impl_->LeftmostLeafAtOrAbove("");
  while (leaf != nullptr) {
    for (size_t i = 0; i < leaf->keys.size(); ++i) {
      if (leaf->postings[i].empty()) continue;  // tombstone
      if (!fn(leaf->keys[i], leaf->postings[i])) return;
    }
    leaf = leaf->next;
  }
}

void BPlusTree::Compact() {
  // Collect live entries in order, rebuild from scratch.
  std::vector<std::pair<std::string, std::vector<DocId>>> live;
  live.reserve(key_count_);
  ForEach([&](const std::string& key, const std::vector<DocId>& postings) {
    live.push_back({key, postings});
    return true;
  });
  impl_->root = std::make_unique<Node>();
  key_count_ = 0;
  height_ = 1;
  for (auto& [key, postings] : live) {
    for (DocId d : postings) Insert(key, d);
  }
}

namespace {

bool CheckNode(const BPlusTree::Node* node, size_t depth, size_t* leaf_depth,
               const std::string* lower, const std::string* upper) {
  // Keys sorted, within [lower, upper): child i of an inner node covers
  // [keys[i-1], keys[i]) under the upper_bound routing used here.
  for (size_t i = 0; i < node->keys.size(); ++i) {
    if (i > 0 && !(node->keys[i - 1] < node->keys[i])) return false;
    if (lower != nullptr && node->keys[i] < *lower) return false;
    if (upper != nullptr && node->keys[i] >= *upper) return false;
  }
  if (node->keys.size() > BPlusTree::kFanout) return false;
  if (node->leaf) {
    if (node->postings.size() != node->keys.size()) return false;
    if (*leaf_depth == SIZE_MAX) {
      *leaf_depth = depth;
    } else if (*leaf_depth != depth) {
      return false;  // non-uniform depth
    }
    return true;
  }
  if (node->children.size() != node->keys.size() + 1) return false;
  for (size_t i = 0; i < node->children.size(); ++i) {
    const std::string* lo = (i == 0) ? lower : &node->keys[i - 1];
    const std::string* hi =
        (i == node->keys.size()) ? upper : &node->keys[i];
    if (!CheckNode(node->children[i].get(), depth + 1, leaf_depth, lo, hi)) {
      return false;
    }
  }
  return true;
}

}  // namespace

bool BPlusTree::CheckInvariants() const {
  size_t leaf_depth = SIZE_MAX;
  if (!CheckNode(impl_->root.get(), 1, &leaf_depth, nullptr, nullptr)) {
    return false;
  }
  if (leaf_depth != height_) return false;
  // Leaf chain strictly ascending across all keys.
  std::string prev;
  bool first = true;
  bool ordered = true;
  ForEach([&](const std::string& key, const std::vector<DocId>&) {
    if (!first && !(prev < key)) ordered = false;
    prev = key;
    first = false;
    return ordered;
  });
  return ordered;
}

}  // namespace toss::store
