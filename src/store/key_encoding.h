// Order-preserving key encodings for the store's ordered indexes.
//
// B+-tree keys compare lexicographically; integer values must be encoded
// so that byte order equals numeric order (the classic DB key-encoding
// trick). EncodeOrderedInt biases the value into the non-negative range
// and zero-pads to a fixed width, so "-5" < "40" < "1998" < "20000" holds
// bytewise. Composite (tag, value) keys join components with an \x1f
// separator, whose successor \x20 bounds prefix scans.

#ifndef TOSS_STORE_KEY_ENCODING_H_
#define TOSS_STORE_KEY_ENCODING_H_

#include <optional>
#include <string>
#include <string_view>

namespace toss::store {

/// Separator between composite key components (never appears in tags).
inline constexpr char kKeySep = '\x1f';

/// Encodes an integer-parsing string into a fixed-width, order-preserving
/// form; nullopt when `value` is not an integer. Distinct spellings of the
/// same integer ("007", "7") encode identically.
std::optional<std::string> EncodeOrderedInt(std::string_view value);

/// tag + sep + raw value: the lexicographic value-index key.
std::string ValueKey(std::string_view tag, std::string_view value);

/// tag + sep + EncodeOrderedInt(value): the numeric-index key, or nullopt
/// for non-integer values.
std::optional<std::string> NumericKey(std::string_view tag,
                                      std::string_view value);

/// Smallest key strictly greater than every key with the given tag prefix
/// (for half-open prefix scans).
std::string TagPrefixEnd(std::string_view tag);

}  // namespace toss::store

#endif  // TOSS_STORE_KEY_ENCODING_H_
