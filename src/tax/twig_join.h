// Holistic structural join engine (the TwigStack family, adapted to TAX).
//
// The classic Join evaluates sigma_{P,SL}(Product(l, r)) by materializing a
// product tree per (l, r) document pair and re-running the full embedding
// enumeration inside it -- O(|L| * |R|) enumerations, each rediscovering
// the same per-document structure. This engine factors the work:
//
//   1. labelling  -- every decoded DataTree carries positional labels
//      (preorder id + subtree interval + depth, see DataTree::BuildTagIndex),
//      so ancestorship is an O(1) interval test;
//   2. postings   -- each root-child subtree of the join pattern is matched
//      ONCE per document (FindPartialMatches), yielding sorted posting
//      tuples in enumeration order;
//   3. merge      -- per pair, a stack of posting runs replays the product
//      tree's backtracking over the two posting lists, collapsing the
//      duplicate work: equal prefixes advance as one run instead of once
//      per downstream combination.
//
// Answers are byte-identical to the pairwise path, in the same order: the
// merge enumerates exactly the complete mappings the product enumeration
// would, in the same sequence, and builds each witness with the same
// AppendWitness walk. Single-label conjunctive atoms are evaluated during
// posting construction (the enumerator's own pushdown), so the per-mapping
// check shrinks to the cross-tree residue; ~ atoms are served by a
// memoizing SimilarOracle so per-term preparation (ontology lookup,
// lowering, signatures) is paid once per distinct term, not once per pair.

#ifndef TOSS_TAX_TWIG_JOIN_H_
#define TOSS_TAX_TWIG_JOIN_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "common/cancel.h"
#include "common/interner.h"
#include "common/result.h"
#include "tax/condition.h"
#include "tax/data_tree.h"
#include "tax/pattern_tree.h"

namespace toss::tax {

/// Thread-safe verdict for `x ~ y` on raw term texts, exactly as the active
/// ConditionSemantics would decide it (both semantics' Similar reads only
/// the texts and never errors). Implementations may memoize per-term state
/// across the quadratic merge; they must be pure.
class SimilarOracle {
 public:
  virtual ~SimilarOracle() = default;
  virtual bool Similar(const std::string& x, const std::string& y) const = 0;

  /// Id-aware variant with the identical verdict. Equal valid ids are equal
  /// texts (ids are canonical), so they short-circuit; implementations may
  /// additionally key their memos on the ids. Pass kInvalidSymbol for a
  /// term whose id is unknown.
  virtual bool SimilarSym(SymbolId sx, const std::string& x, SymbolId sy,
                          const std::string& y) const {
    if (SymbolFastPathsEnabled() && sx != kInvalidSymbol && sx == sy) {
      return true;
    }
    return Similar(x, y);
  }

  /// Compatibility buckets for the twig value filter (TwigValueFilter):
  /// two terms with non-empty bucket lists are Similar iff their lists
  /// intersect; a term with an empty list is "free" and every pair
  /// involving it must be decided by SimilarSym directly. The default
  /// (everything free) is always correct, merely unprunable in bulk.
  virtual std::vector<uint64_t> CompatBuckets(
      const std::string& /*term*/) const {
    return {};
  }
};

/// Plain TAX: ~ degrades to exact string equality (TaxSemantics::Similar).
class ExactSimilarOracle final : public SimilarOracle {
 public:
  bool Similar(const std::string& x, const std::string& y) const override {
    return x == y;
  }

  bool SimilarSym(SymbolId sx, const std::string& x, SymbolId sy,
                  const std::string& y) const override {
    if (SymbolFastPathsEnabled() && sx != kInvalidSymbol &&
        sy != kInvalidSymbol) {
      return sx == sy;
    }
    return x == y;
  }

  /// Exact equality: each term is its own bucket, keyed by its interned id
  /// (distinct texts never intersect). Unknown terms stay free -- the
  /// pairwise fallback preserves the verdict.
  std::vector<uint64_t> CompatBuckets(const std::string& term) const override {
    auto sym = Interner::Global().Find(term);
    if (!sym.has_value()) return {};
    return {*sym};
  }
};

/// Merge-phase counters, surfaced through EXPLAIN ANALYZE annotations and
/// the core.query.join.twig.* metrics. Atomic: parts merge in parallel.
struct TwigJoinStats {
  std::atomic<uint64_t> postings_built{0};   ///< posting lists materialized
  std::atomic<uint64_t> stream_advances{0};  ///< posting entries scanned
  std::atomic<uint64_t> stack_pushes{0};     ///< run frames pushed
  std::atomic<uint64_t> pairs_scanned{0};    ///< (left, right) pairs merged
  std::atomic<uint64_t> pairs_pruned{0};     ///< pairs skipped, no new postings
  std::atomic<uint64_t> pairs_value_skipped{0};  ///< TwigValueFilter skips
  std::atomic<uint64_t> combos_checked{0};   ///< complete mappings checked
  std::atomic<uint64_t> combos_emitted{0};   ///< mappings passing the residue
};

/// One document's join-relevant state, prepared once per document instead of
/// once per pair.
struct TwigDoc {
  std::shared_ptr<const DataTree> tree;

  /// tuples[s] = partial matches of root-child subtree s, in the exact
  /// order the full enumeration assigns those pattern nodes; each tuple
  /// lists image NodeIds by ascending pattern index (head first).
  std::vector<std::vector<std::vector<NodeId>>> tuples;

  /// Witnesses of embeddings wholly inside this document (the join groups
  /// whose pattern root maps into one operand), in embedding order, with
  /// their canonical keys precomputed for cross-part dedup.
  std::vector<DataTree> inside;
  std::vector<std::string> inside_keys;

  /// False when the tree lacks a faithful tag index or preorder ids, or a
  /// posting list exceeded the materialization cap: the caller must fall
  /// back to the pairwise path for the whole join.
  bool supported = true;

  /// False for documents skipped by store-level pruning: no postings, no
  /// inside embeddings, `tree` unset (never decoded).
  bool prepared = false;

  /// This document's slot in the join's TwigValueFilter, assigned by
  /// TwigJoiner::BuildValueFilter; kNoValueSlot when the document is
  /// outside the filter (pairs involving it are never skipped).
  static constexpr uint32_t kNoValueSlot = 0xFFFFFFFFu;
  uint32_t value_slot = kNoValueSlot;

  bool HasPostings() const {
    for (const auto& t : tuples) {
      if (!t.empty()) return true;
    }
    return false;
  }
};

/// Cross-document posting-key value index. For joins whose residue (the
/// per-mapping condition left after pushdown) is exactly a conjunction of
/// oracle-served ~ atoms, with one "anchor" atom joining node terms that
/// live in the two different pattern subtrees, the filter precomputes per
/// document the distinct values its postings expose under the anchor's two
/// slots, and the similarity-compatibility closure over that value
/// universe. A (left, right) pair whose value sets admit no compatible
/// mixed combination can skip the merge walk outright: no cross-document
/// mapping can pass the anchor, and the pure-side mappings the walk would
/// emit are byte-identical duplicates of pairs that are never skipped.
/// Built per join by TwigJoiner::BuildValueFilter; read-only afterwards
/// (safe to share across merge threads).
class TwigValueFilter {
 public:
  /// True when the (left, right) pair provably emits nothing that survives
  /// dedup. Caller contract (soundness): only consult for non-first parts
  /// (`left` is not the join's first left document) and non-first pairs
  /// (`right` is not the first right document).
  bool CanSkipPair(const TwigDoc& left, const TwigDoc& right) const;

  /// Distinct anchor values indexed across all documents.
  size_t value_count() const { return value_count_; }

 private:
  friend class TwigJoiner;
  using Bits = std::vector<uint64_t>;

  /// Per-document state. A mixed mapping places the anchor's lhs slot in
  /// one document and its rhs slot in the other, so the pair test only
  /// needs each side's rhs-value set and the compat closure of its
  /// lhs-value set:
  ///   skippable(L, R) <=> compat_lhs(L) ∩ rhs(R) = ∅
  ///                    and compat_lhs(R) ∩ rhs(L) = ∅.
  struct DocBits {
    Bits rhs;         ///< values under the anchor's rhs slot
    Bits compat_lhs;  ///< union of compat rows over the lhs slot's values
  };

  TwigValueFilter() = default;

  size_t value_count_ = 0;
  std::vector<DocBits> docs_;  ///< indexed by TwigDoc::value_slot
};

/// The planned decomposition of one join pattern. Plan once per join; the
/// joiner is then read-only and shared across worker threads. The pattern,
/// semantics, and oracle must outlive it.
class TwigJoiner {
 public:
  /// Builds the plan, or nullptr when the pattern shape is outside the
  /// engine (empty pattern / childless root) and the caller must use the
  /// pairwise path. `oracle` must implement the same ~ verdict as
  /// `semantics` (nullptr routes ~ atoms through `semantics` directly).
  static std::unique_ptr<TwigJoiner> Plan(const PatternTree& pattern,
                                          const std::set<int>& expand,
                                          const ConditionSemantics& semantics,
                                          const SimilarOracle* oracle);

  /// Builds a document's postings and inside-embeddings. Errors propagate
  /// from condition evaluation exactly as the pairwise enumeration would
  /// raise them.
  Result<TwigDoc> Prepare(std::shared_ptr<const DataTree> tree,
                          TwigJoinStats* stats) const;

  /// The stand-in for a store-pruned document (see PruneFilters): empty
  /// postings, no inside embeddings, never decoded.
  TwigDoc PrunedDoc() const;

  size_t subtree_count() const { return subtrees_.size(); }

  /// Tag sets certifying store-level document pruning: a document with no
  /// node tagged in any of these sets (and no '*' tag) can host neither a
  /// posting nor an inside embedding, AND the pairwise path would never
  /// evaluate a condition on its nodes -- so skipping it cannot change the
  /// answer or suppress an error. Empty when pruning is unsound for this
  /// pattern (an unpinned subtree head, a prefiltered unpinned root, or an
  /// SL-expanded root whose witnesses embed whole documents).
  std::vector<const std::set<std::string>*> PruneFilters() const;

  /// Id-space PruneFilters: the same keep-sets lowered to sorted SymbolId
  /// lists for Collection::DocsWithAnyTagIds. Literals the dictionary has
  /// never seen are dropped -- the store interns every indexed tag, so an
  /// unknown literal matches no document. Empty when pruning is unsound
  /// (same rule as PruneFilters).
  std::vector<std::vector<SymbolId>> PruneFilterIds() const;

  /// Builds the cross-document value filter over the join's prepared
  /// documents, assigning each eligible document's `value_slot`. Returns
  /// nullptr when the join is outside the filter's soundness envelope --
  /// the residue must consist solely of known-true entries and
  /// oracle-served ~ atoms none of which can error (so a skipped merge
  /// cannot suppress a verdict or an error), with an anchor ~ atom joining
  /// two non-root node terms in the two different subtrees of a
  /// two-subtree pattern -- or when the value universe exceeds fixed caps.
  std::unique_ptr<TwigValueFilter> BuildValueFilter(
      const std::vector<TwigDoc*>& docs) const;

  /// Whether the synthetic product root passes the root label's tag filter
  /// (always true without one). False disables the cross-tree groups
  /// entirely, exactly as the pairwise enumeration would never map the
  /// root to the product node.
  bool root_tag_allowed() const { return root_tag_allowed_; }

  /// Whether the pattern root's label is SL-expanded: cross-tree witnesses
  /// are then whole product trees and every pruning rule is disabled.
  bool root_in_expand() const { return root_in_expand_; }

  /// Evaluates the root label's single-label atoms against the synthetic
  /// product root, in pushdown order with short-circuit -- the once-per-join
  /// equivalent of the per-pair root prefilter check. False disables the
  /// cross-tree groups; errors propagate.
  Result<bool> EvalRootPrefilters() const;

  /// True when this left document's part provably repeats the first left
  /// document's part (no postings, no inside embeddings, plain witnesses),
  /// so the executor may skip its merge entirely. Never true for the first
  /// left document, by the caller's contract.
  bool CanSkipPart(const TwigDoc& doc) const {
    return !root_in_expand_ && !doc.HasPostings() && doc.inside.empty();
  }

  /// One left document joined against the whole right side, in
  /// right-collection order, duplicates collapsed -- the twig equivalent of
  /// JoinTreeWithRight, byte-identical output. `combos_enabled` gates the
  /// cross-tree groups (root tag disallowed or root prefilters false).
  /// `value_filter` (optional) skips provably-redundant pair merges; it is
  /// only consulted when `first_part` is false and the pair is not the
  /// part's first (the soundness contract of TwigValueFilter).
  Result<TreeCollection> JoinLeft(const TwigDoc& left,
                                  const std::vector<const TwigDoc*>& rights,
                                  bool combos_enabled, bool first_part,
                                  const TwigValueFilter* value_filter,
                                  const CancelToken* cancel,
                                  TwigJoinStats* stats) const;

 private:
  friend class TwigMerger;

  /// One root-child pattern subtree: its own posting stream.
  struct Subtree {
    size_t head = 0;                ///< pattern index of the root child
    bool head_must_be_root = false; ///< pc edge off the product root
    std::vector<size_t> indexes;    ///< subtree pattern indexes, ascending
  };

  /// Where a global pattern index lives: which stream, which tuple slot.
  struct Slot {
    uint32_t subtree = 0;
    uint32_t depth = 0;
  };

  /// Per-mapping residue plan: the condition's conjunctive leaves in
  /// evaluation order. kKnownTrue leaves were already enforced during
  /// posting construction (purity makes re-evaluation a no-op);
  /// kCachedSimilar leaves route through the oracle; kGeneric leaves run
  /// the ordinary recursive evaluation.
  enum class EntryKind { kKnownTrue, kCachedSimilar, kGeneric };
  struct PlanEntry {
    EntryKind kind = EntryKind::kGeneric;
    const Condition* cond = nullptr;
  };

  TwigJoiner() = default;
  void FlattenCondition(const Condition& c);

  const PatternTree* pattern_ = nullptr;
  std::set<int> expand_;
  const ConditionSemantics* semantics_ = nullptr;
  const SimilarOracle* oracle_ = nullptr;
  std::vector<Subtree> subtrees_;
  std::vector<Slot> slots_;          ///< by pattern index; [0] unused
  std::vector<int> label_to_index_;  ///< label -> pattern index, -1 absent
  std::map<int, std::set<std::string>> tag_filters_;
  std::map<int, std::vector<const Condition*>> prefilters_;
  std::vector<PlanEntry> entries_;
  DataTree product_root_;  ///< the synthetic pair root (one node)
  int root_label_ = 0;
  bool root_tag_allowed_ = true;
  bool root_in_expand_ = false;
};

}  // namespace toss::tax

#endif  // TOSS_TAX_TWIG_JOIN_H_
