#include "tax/condition_parser.h"

#include <cctype>

namespace toss::tax {

namespace {

class CondParser {
 public:
  explicit CondParser(std::string_view text) : text_(text) {}

  Result<Condition> Run() {
    TOSS_ASSIGN_OR_RETURN(Condition c, ParseOr());
    SkipSpace();
    if (pos_ != text_.size()) {
      return Error("trailing input after condition");
    }
    return c;
  }

 private:
  Status Error(const std::string& what) const {
    return Status::ParseError("condition: " + what + " at offset " +
                              std::to_string(pos_));
  }

  void SkipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }
  bool Eof() {
    SkipSpace();
    return pos_ >= text_.size();
  }
  bool Lookahead(std::string_view s) {
    SkipSpace();
    return text_.substr(pos_, s.size()) == s;
  }
  bool Consume(std::string_view s) {
    if (!Lookahead(s)) return false;
    pos_ += s.size();
    return true;
  }

  static bool IsIdentChar(char c) {
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
  }

  bool LookaheadWord(std::string_view word) {
    if (!Lookahead(word)) return false;
    size_t after = pos_ + word.size();
    return after >= text_.size() || !IsIdentChar(text_[after]);
  }

  bool ConsumeWord(std::string_view word) {
    if (!LookaheadWord(word)) return false;
    pos_ += word.size();
    return true;
  }

  Result<Condition> ParseOr() {
    TOSS_ASSIGN_OR_RETURN(Condition first, ParseAnd());
    std::vector<Condition> parts;
    parts.push_back(std::move(first));
    while (Consume("|")) {
      TOSS_ASSIGN_OR_RETURN(Condition next, ParseAnd());
      parts.push_back(std::move(next));
    }
    return Condition::Or(std::move(parts));
  }

  Result<Condition> ParseAnd() {
    TOSS_ASSIGN_OR_RETURN(Condition first, ParseUnary());
    std::vector<Condition> parts;
    parts.push_back(std::move(first));
    while (Consume("&")) {
      TOSS_ASSIGN_OR_RETURN(Condition next, ParseUnary());
      parts.push_back(std::move(next));
    }
    return Condition::And(std::move(parts));
  }

  Result<Condition> ParseUnary() {
    if (Consume("!")) {
      TOSS_ASSIGN_OR_RETURN(Condition inner, ParseUnary());
      return Condition::Not(std::move(inner));
    }
    if (Consume("(")) {
      TOSS_ASSIGN_OR_RETURN(Condition inner, ParseOr());
      if (!Consume(")")) return Error("expected ')'");
      return inner;
    }
    if (ConsumeWord("true")) return Condition::True();
    return ParseAtom();
  }

  Result<Condition> ParseAtom() {
    TOSS_ASSIGN_OR_RETURN(CondTerm lhs, ParseTerm());
    TOSS_ASSIGN_OR_RETURN(CondOp op, ParseOp());
    TOSS_ASSIGN_OR_RETURN(CondTerm rhs, ParseTerm());
    return Condition::Atom(std::move(lhs), op, std::move(rhs));
  }

  Result<CondOp> ParseOp() {
    SkipSpace();
    // Multi-char symbols first.
    if (Consume("!=")) return CondOp::kNeq;
    if (Consume("<=")) return CondOp::kLeq;
    if (Consume(">=")) return CondOp::kGeq;
    if (Consume("=")) return CondOp::kEq;
    if (Consume("<")) return CondOp::kLt;
    if (Consume(">")) return CondOp::kGt;
    if (Consume("~")) return CondOp::kSimilar;
    if (ConsumeWord("instance_of")) return CondOp::kInstanceOf;
    if (ConsumeWord("isa")) return CondOp::kIsa;
    if (ConsumeWord("subtype_of")) return CondOp::kSubtypeOf;
    if (ConsumeWord("part_of")) return CondOp::kPartOf;
    if (ConsumeWord("above")) return CondOp::kAbove;
    if (ConsumeWord("below")) return CondOp::kBelow;
    return Error("expected operator");
  }

  Result<CondTerm> ParseTerm() {
    SkipSpace();
    if (Eof()) return Error("expected term");
    char c = text_[pos_];
    if (c == '$') {
      ++pos_;
      TOSS_ASSIGN_OR_RETURN(int label, ParseInt());
      if (!Consume(".")) return Error("expected '.' after node label");
      if (ConsumeWord("tag")) return TagOf(label);
      if (ConsumeWord("content")) return ContentOf(label);
      return Error("expected 'tag' or 'content'");
    }
    if (c == '"' || c == '\'') {
      TOSS_ASSIGN_OR_RETURN(std::string literal, ParseString());
      std::string type;
      if (Consume(":")) {
        TOSS_ASSIGN_OR_RETURN(type, ParseIdent());
      }
      return Value(std::move(literal), std::move(type));
    }
    if (std::isdigit(static_cast<unsigned char>(c)) || c == '-') {
      // Bare numbers are value literals.
      size_t start = pos_;
      if (c == '-') ++pos_;
      while (pos_ < text_.size() &&
             (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
              text_[pos_] == '.')) {
        ++pos_;
      }
      std::string number(text_.substr(start, pos_ - start));
      std::string type;
      if (Consume(":")) {
        TOSS_ASSIGN_OR_RETURN(type, ParseIdent());
      }
      return Value(std::move(number), std::move(type));
    }
    // Bare identifier: a type name.
    TOSS_ASSIGN_OR_RETURN(std::string ident, ParseIdent());
    return TypeName(std::move(ident));
  }

  Result<int> ParseInt() {
    size_t start = pos_;
    while (pos_ < text_.size() &&
           std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
    if (pos_ == start) return Error("expected integer");
    return std::stoi(std::string(text_.substr(start, pos_ - start)));
  }

  Result<std::string> ParseIdent() {
    SkipSpace();
    size_t start = pos_;
    while (pos_ < text_.size() && IsIdentChar(text_[pos_])) ++pos_;
    if (pos_ == start) return Error("expected identifier");
    return std::string(text_.substr(start, pos_ - start));
  }

  Result<std::string> ParseString() {
    SkipSpace();
    char quote = text_[pos_++];
    std::string out;
    while (pos_ < text_.size() && text_[pos_] != quote) {
      if (text_[pos_] == '\\' && pos_ + 1 < text_.size()) {
        ++pos_;  // escaped character
      }
      out += text_[pos_++];
    }
    if (pos_ >= text_.size()) return Error("unterminated string literal");
    ++pos_;  // closing quote
    return out;
  }

  std::string_view text_;
  size_t pos_ = 0;
};

}  // namespace

Result<Condition> ParseCondition(std::string_view text) {
  return CondParser(text).Run();
}

}  // namespace toss::tax
