// Plain-TAX condition semantics: the baseline the paper measures TOSS
// against (Section 6, "for isa and similarTo conditions, 'contains' and
// exact match are used for TAX").
//
//  * Comparisons are numeric when both operands parse as numbers,
//    lexicographic otherwise. Values may use '*' wildcards on equality
//    (the paper's Example 12 wild card).
//  * X ~ Y      -> exact string equality.
//  * X isa Y / X part_of Y -> substring containment (case-insensitive).
//  * instance_of / subtype_of -> type-name equality.

#ifndef TOSS_TAX_TAX_SEMANTICS_H_
#define TOSS_TAX_TAX_SEMANTICS_H_

#include "tax/condition.h"

namespace toss::tax {

class TaxSemantics : public ConditionSemantics {
 public:
  Result<bool> Compare(const TermValue& x, CondOp op,
                       const TermValue& y) const override;
  Result<bool> Similar(const TermValue& x, const TermValue& y) const override;
  Result<bool> Related(const std::string& relation, const TermValue& x,
                       const TermValue& y) const override;
  Result<bool> InstanceOf(const TermValue& x,
                          const TermValue& y) const override;
  Result<bool> SubtypeOf(const TermValue& x,
                         const TermValue& y) const override;
};

/// Shared helper: equality with '*' glob support, numeric-aware ordering.
Result<bool> CompareValues(const std::string& x, CondOp op,
                           const std::string& y);

}  // namespace toss::tax

#endif  // TOSS_TAX_TAX_SEMANTICS_H_
