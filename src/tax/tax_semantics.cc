#include "tax/tax_semantics.h"

#include "common/string_util.h"

namespace toss::tax {

Result<bool> CompareValues(const std::string& x, CondOp op,
                           const std::string& y) {
  if (op == CondOp::kEq || op == CondOp::kNeq) {
    bool eq;
    if (Contains(x, "*") || Contains(y, "*")) {
      // Either side may be the pattern; data values rarely contain '*'.
      eq = Contains(y, "*") ? GlobMatch(y, x) : GlobMatch(x, y);
    } else {
      eq = (x == y);
    }
    return op == CondOp::kEq ? eq : !eq;
  }
  // Ordering: shared scalar semantics (common/string_util.h) -- integer,
  // double, or lexicographic, with mixed representations incomparable
  // (false). The store's ordered indexes mirror the same order, which is
  // what makes range-predicate pushdown exact.
  std::optional<int> scalar = CompareScalar(x, y);
  if (!scalar.has_value()) return false;
  int cmp = *scalar;
  switch (op) {
    case CondOp::kLt:
      return cmp < 0;
    case CondOp::kLeq:
      return cmp <= 0;
    case CondOp::kGt:
      return cmp > 0;
    case CondOp::kGeq:
      return cmp >= 0;
    default:
      return Status::InvalidArgument("CompareValues: non-comparison op");
  }
}

Result<bool> TaxSemantics::Compare(const TermValue& x, CondOp op,
                                   const TermValue& y) const {
  if (op == CondOp::kEq || op == CondOp::kNeq) {
    // Interned ids decide glob-aware equality without touching the texts
    // (nullopt when either id is missing or '*' demands a real GlobMatch).
    if (auto eq = SymbolGlobEquality(x, y)) {
      return op == CondOp::kEq ? *eq : !*eq;
    }
  }
  return CompareValues(x.text, op, y.text);
}

Result<bool> TaxSemantics::Similar(const TermValue& x,
                                   const TermValue& y) const {
  // Baseline: similarity degrades to exact match (no globbing), which two
  // valid ids decide outright.
  if (auto eq = SymbolTextEquality(x, y)) return *eq;
  return x.text == y.text;
}

Result<bool> TaxSemantics::Related(const std::string& relation,
                                   const TermValue& x,
                                   const TermValue& y) const {
  (void)relation;
  // Baseline: ontology relations degrade to "contains".
  return ContainsIgnoreCase(x.text, y.text) ||
         ContainsIgnoreCase(y.text, x.text);
}

Result<bool> TaxSemantics::InstanceOf(const TermValue& x,
                                      const TermValue& y) const {
  // Without a type hierarchy, instance_of holds only for the value's own
  // declared type.
  return !x.is_type_name && y.is_type_name && x.type == y.text;
}

Result<bool> TaxSemantics::SubtypeOf(const TermValue& x,
                                     const TermValue& y) const {
  return x.is_type_name && y.is_type_name && x.text == y.text;
}

}  // namespace toss::tax
