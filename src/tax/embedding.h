// Pattern-tree embeddings and witness trees (paper Section 2.1.1).
//
// An embedding h maps pattern nodes to data nodes preserving pc/ad edges,
// such that the image satisfies the selection condition. Each embedding
// induces a witness tree: the image nodes, connected by closest-ancestor
// edges, in source document order.
//
// Enumeration is backtracking over pattern nodes in parent-before-child
// order, with single-node atoms from conjunctive context pushed down as
// candidate filters (the classic selection-pushdown optimization; the full
// condition is still checked on every complete mapping).
//
// When the data tree carries a tag index (DataTree::BuildTagIndex; built
// automatically by FromXml) and a pattern node's conjunctive atoms pin its
// tag to a literal -- or to a disjunction of literals, the shape SEO
// expansion produces -- candidates are drawn from the index instead of
// scanning the whole tree (root nodes) and edge candidates are filtered by
// tag before any condition evaluation runs (pc/ad nodes). Candidate order
// is preserved exactly, so results are byte-identical to the naive
// enumeration, including the order of embeddings.

#ifndef TOSS_TAX_EMBEDDING_H_
#define TOSS_TAX_EMBEDDING_H_

#include <set>

#include "common/result.h"
#include "tax/condition.h"
#include "tax/data_tree.h"
#include "tax/label_map.h"
#include "tax/pattern_tree.h"

namespace toss::tax {

/// A total mapping from pattern node labels to data nodes.
struct Embedding {
  LabelMap mapping;
};

struct EmbeddingOptions {
  /// Seed / filter candidates through the tree's tag index when available.
  /// Disabled only by tests that compare against the naive enumeration.
  bool use_tag_index = true;
};

/// Enumerates all embeddings of `pattern` into `tree` whose witness
/// satisfies the pattern's condition under `semantics`.
Result<std::vector<Embedding>> FindEmbeddings(
    const PatternTree& pattern, const DataTree& tree,
    const ConditionSemantics& semantics);

Result<std::vector<Embedding>> FindEmbeddings(
    const PatternTree& pattern, const DataTree& tree,
    const ConditionSemantics& semantics, const EmbeddingOptions& options);

/// Builds the witness tree induced by `h`. Data subtrees of nodes
/// h(l), l in `expand_labels`, are included wholesale (selection's SL
/// semantics); pass {} for the bare witness.
DataTree BuildWitnessTree(const PatternTree& pattern, const DataTree& tree,
                          const Embedding& h,
                          const std::set<int>& expand_labels);

}  // namespace toss::tax

#endif  // TOSS_TAX_EMBEDDING_H_
