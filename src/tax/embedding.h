// Pattern-tree embeddings and witness trees (paper Section 2.1.1).
//
// An embedding h maps pattern nodes to data nodes preserving pc/ad edges,
// such that the image satisfies the selection condition. Each embedding
// induces a witness tree: the image nodes, connected by closest-ancestor
// edges, in source document order.
//
// Enumeration is backtracking over pattern nodes in parent-before-child
// order, with single-node atoms from conjunctive context pushed down as
// candidate filters (the classic selection-pushdown optimization; the full
// condition is still checked on every complete mapping).
//
// When the data tree carries a tag index (DataTree::BuildTagIndex; built
// automatically by FromXml) and a pattern node's conjunctive atoms pin its
// tag to a literal -- or to a disjunction of literals, the shape SEO
// expansion produces -- candidates are drawn from the index instead of
// scanning the whole tree (root nodes) and edge candidates are filtered by
// tag before any condition evaluation runs (pc/ad nodes). Candidate order
// is preserved exactly, so results are byte-identical to the naive
// enumeration, including the order of embeddings.

#ifndef TOSS_TAX_EMBEDDING_H_
#define TOSS_TAX_EMBEDDING_H_

#include <map>
#include <set>
#include <vector>

#include "common/result.h"
#include "tax/condition.h"
#include "tax/data_tree.h"
#include "tax/label_map.h"
#include "tax/pattern_tree.h"

namespace toss::tax {

/// A total mapping from pattern node labels to data nodes.
struct Embedding {
  LabelMap mapping;
};

struct EmbeddingOptions {
  /// Seed / filter candidates through the tree's tag index when available.
  /// Disabled only by tests that compare against the naive enumeration.
  bool use_tag_index = true;
};

/// Enumerates all embeddings of `pattern` into `tree` whose witness
/// satisfies the pattern's condition under `semantics`.
Result<std::vector<Embedding>> FindEmbeddings(
    const PatternTree& pattern, const DataTree& tree,
    const ConditionSemantics& semantics);

Result<std::vector<Embedding>> FindEmbeddings(
    const PatternTree& pattern, const DataTree& tree,
    const ConditionSemantics& semantics, const EmbeddingOptions& options);

/// Builds the witness tree induced by `h`. Data subtrees of nodes
/// h(l), l in `expand_labels`, are included wholesale (selection's SL
/// semantics); pass {} for the bare witness.
DataTree BuildWitnessTree(const PatternTree& pattern, const DataTree& tree,
                          const Embedding& h,
                          const std::set<int>& expand_labels);

// --- Structural-join support -----------------------------------------------
//
// The twig-join engine (tax/twig_join.h) decomposes a join pattern into the
// root's child subtrees, enumerates each subtree's partial matches once per
// document, and merges them across the two operand collections. The pieces
// below expose the enumerator's machinery so that decomposition reproduces
// the full enumeration byte for byte: identical candidate order, identical
// prefilter pushdown, identical witness construction.

struct PartialMatchOptions {
  /// The head's edge from the (elided) product root is parent-child, so its
  /// image must be the tree root; otherwise (ancestor-descendant) the head
  /// ranges over every node in ascending id order.
  bool head_must_be_root = false;
};

/// Enumerates mappings of the `pattern` subtree rooted at node index `head`
/// into `tree`, with the full enumeration's candidate order and prefilter
/// pushdown but WITHOUT the final whole-condition check (the join engine
/// completes mappings across trees first). Each tuple holds the images of
/// the subtree's pattern nodes in ascending pattern-index order (head
/// first).
Result<std::vector<std::vector<NodeId>>> FindPartialMatches(
    const PatternTree& pattern, size_t head, const DataTree& tree,
    const ConditionSemantics& semantics, const PartialMatchOptions& options);

/// Conjunctive-context tag constraints per label: a bare tag-equality atom
/// pins a label to one tag; an Or of same-label tag equalities (the shape
/// SEO expansion yields) pins it to a set; multiple constraints intersect.
/// The enumerator's pushdown policy, shared with the join engine.
std::map<int, std::set<std::string>> CollectConjunctiveTagFilters(
    const Condition& condition);

/// Atoms in conjunctive context referencing exactly one label, grouped by
/// label (the enumerator's candidate prefilters). Pointers alias nodes of
/// `condition`.
std::map<int, std::vector<const Condition*>> CollectConjunctivePrefilters(
    const Condition& condition);

/// Appends the witness induced by `witness_nodes` under `src_id` to `out`
/// below `out_parent` (kInvalidNode = build as `out`'s root), expanding
/// `expand_nodes` subtrees wholesale. The recursive core of
/// BuildWitnessTree, exposed for witnesses spanning two source trees.
void AppendWitness(const DataTree& src, NodeId src_id,
                   const std::set<NodeId>& witness_nodes,
                   const std::set<NodeId>& expand_nodes, DataTree* out,
                   NodeId out_parent);

}  // namespace toss::tax

#endif  // TOSS_TAX_EMBEDDING_H_
