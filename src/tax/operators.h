// The TAX algebra operators (paper Section 2.1.2), parameterized by
// ConditionSemantics so the identical code implements both TAX (with
// TaxSemantics) and TOSS (with core::SeoSemantics) -- the paper's algebra
// extension changes only condition satisfaction, not operator shape.

#ifndef TOSS_TAX_OPERATORS_H_
#define TOSS_TAX_OPERATORS_H_

#include <vector>

#include "common/result.h"
#include "tax/data_tree.h"
#include "tax/embedding.h"
#include "tax/pattern_tree.h"

namespace toss::tax {

/// Tag of the fresh root created by Product (paper Fig. 7).
inline constexpr const char* kProductRootTag = "tax_prod_root";

/// Selection sigma_{P,SL}: all witness trees of P, with the data subtrees of
/// SL-labelled images included wholesale. Duplicate witness trees (from
/// distinct embeddings) are returned once.
Result<TreeCollection> Select(const TreeCollection& input,
                              const PatternTree& pattern,
                              const std::vector<int>& sl,
                              const ConditionSemantics& semantics);

/// One projection-list entry: keep nodes matched by `label`; with
/// `keep_subtree` their entire data subtree survives.
struct ProjectItem {
  int label = 0;
  bool keep_subtree = false;
};

/// Projection pi_{P,PL}: per input tree, the nodes matched by PL labels
/// under any embedding, with closest-ancestor structure preserved; each
/// top-most surviving node roots its own output tree (paper Fig. 5).
Result<TreeCollection> Project(const TreeCollection& input,
                               const PatternTree& pattern,
                               const std::vector<ProjectItem>& pl,
                               const ConditionSemantics& semantics);

/// Cross product: one tree per input pair, under a fresh kProductRootTag
/// root with the pair as left/right children.
TreeCollection Product(const TreeCollection& left,
                       const TreeCollection& right);

/// Condition join: Select over Product (paper Example 6).
Result<TreeCollection> Join(const TreeCollection& left,
                            const TreeCollection& right,
                            const PatternTree& pattern,
                            const std::vector<int>& sl,
                            const ConditionSemantics& semantics);

/// Tag of the root of each group tree produced by GroupBy.
inline constexpr const char* kGroupRootTag = "tax_group_root";

/// Grouping (from the original TAX algebra): partitions the witness trees
/// of `pattern` by the *content* of the node matched by `group_label`.
/// Each group becomes one output tree:
///
///   <tax_group_root>                 -- content = the grouping value
///     <witness tree 1/> <witness tree 2/> ...
///
/// Witness trees carry the SL expansion of `sl`, and groups appear in
/// first-occurrence order of their grouping value. The group root's
/// content holds the grouping value; its provenance holds the member
/// count (a simple aggregate).
Result<TreeCollection> GroupBy(const TreeCollection& input,
                               const PatternTree& pattern, int group_label,
                               const std::vector<int>& sl,
                               const ConditionSemantics& semantics);

/// Set-theoretic operators under order-preserving tree equality
/// (paper Section 5.1.2). Results keep left-operand order; duplicates
/// within a result are collapsed.
TreeCollection Union(const TreeCollection& left, const TreeCollection& right);
TreeCollection Intersect(const TreeCollection& left,
                         const TreeCollection& right);
TreeCollection Difference(const TreeCollection& left,
                          const TreeCollection& right);

}  // namespace toss::tax

#endif  // TOSS_TAX_OPERATORS_H_
