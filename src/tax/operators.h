// The TAX algebra operators (paper Section 2.1.2), parameterized by
// ConditionSemantics so the identical code implements both TAX (with
// TaxSemantics) and TOSS (with core::SeoSemantics) -- the paper's algebra
// extension changes only condition satisfaction, not operator shape.

#ifndef TOSS_TAX_OPERATORS_H_
#define TOSS_TAX_OPERATORS_H_

#include <set>
#include <string>
#include <vector>

#include "common/result.h"
#include "tax/data_tree.h"
#include "tax/embedding.h"
#include "tax/pattern_tree.h"

namespace toss::tax {

/// Tag of the fresh root created by Product (paper Fig. 7).
inline constexpr const char* kProductRootTag = "tax_prod_root";

/// Selection sigma_{P,SL}: all witness trees of P, with the data subtrees of
/// SL-labelled images included wholesale. Duplicate witness trees (from
/// distinct embeddings) are returned once.
Result<TreeCollection> Select(const TreeCollection& input,
                              const PatternTree& pattern,
                              const std::vector<int>& sl,
                              const ConditionSemantics& semantics);

/// One projection-list entry: keep nodes matched by `label`; with
/// `keep_subtree` their entire data subtree survives.
struct ProjectItem {
  int label = 0;
  bool keep_subtree = false;
};

/// Projection pi_{P,PL}: per input tree, the nodes matched by PL labels
/// under any embedding, with closest-ancestor structure preserved; each
/// top-most surviving node roots its own output tree (paper Fig. 5).
Result<TreeCollection> Project(const TreeCollection& input,
                               const PatternTree& pattern,
                               const std::vector<ProjectItem>& pl,
                               const ConditionSemantics& semantics);

/// Cross product: one tree per input pair, under a fresh kProductRootTag
/// root with the pair as left/right children.
TreeCollection Product(const TreeCollection& left,
                       const TreeCollection& right);

/// Condition join: Select over Product (paper Example 6).
Result<TreeCollection> Join(const TreeCollection& left,
                            const TreeCollection& right,
                            const PatternTree& pattern,
                            const std::vector<int>& sl,
                            const ConditionSemantics& semantics);

/// Tag of the root of each group tree produced by GroupBy.
inline constexpr const char* kGroupRootTag = "tax_group_root";

/// Grouping (from the original TAX algebra): partitions the witness trees
/// of `pattern` by the *content* of the node matched by `group_label`.
/// Each group becomes one output tree:
///
///   <tax_group_root>                 -- content = the grouping value
///     <witness tree 1/> <witness tree 2/> ...
///
/// Witness trees carry the SL expansion of `sl`, and groups appear in
/// first-occurrence order of their grouping value. The group root's
/// content holds the grouping value; its provenance holds the member
/// count (a simple aggregate).
Result<TreeCollection> GroupBy(const TreeCollection& input,
                               const PatternTree& pattern, int group_label,
                               const std::vector<int>& sl,
                               const ConditionSemantics& semantics);

/// Set-theoretic operators under order-preserving tree equality
/// (paper Section 5.1.2). Results keep left-operand order; duplicates
/// within a result are collapsed.
TreeCollection Union(const TreeCollection& left, const TreeCollection& right);
TreeCollection Intersect(const TreeCollection& left,
                         const TreeCollection& right);
TreeCollection Difference(const TreeCollection& left,
                          const TreeCollection& right);

// --- Per-tree primitives ---------------------------------------------------
//
// Each collection operator above factors into an independent per-input-tree
// step plus an order-preserving merge. The executor fans the per-tree steps
// out across a worker pool and merges in input order, which reproduces the
// sequential output byte-for-byte: duplicates are collapsed by canonical
// key at merge time exactly as the sequential global dedup would.

/// Witness trees of `pattern` in `tree`, in embedding order, duplicates
/// within the tree collapsed.
Result<TreeCollection> SelectTree(const DataTree& tree,
                                  const PatternTree& pattern,
                                  const std::set<int>& expand,
                                  const ConditionSemantics& semantics);

/// Projection of a single tree: the induced forest over PL-matched nodes,
/// duplicates within the tree collapsed.
Result<TreeCollection> ProjectTree(const DataTree& tree,
                                   const PatternTree& pattern,
                                   const std::vector<ProjectItem>& pl,
                                   const ConditionSemantics& semantics);

/// One grouped witness: the grouping value paired with the witness tree.
struct GroupedWitness {
  std::string value;
  DataTree witness;
};

/// Grouping values and witnesses of a single tree, in embedding order, not
/// deduplicated (group membership dedup spans trees; AssembleGroups does it).
Result<std::vector<GroupedWitness>> GroupByTree(
    const DataTree& tree, const PatternTree& pattern, int group_label,
    const std::set<int>& expand, const ConditionSemantics& semantics);

/// Builds the GroupBy output from per-tree grouped witnesses concatenated
/// in input order: groups in first-occurrence order of their value, members
/// deduplicated per group, count aggregate in the group root's provenance.
TreeCollection AssembleGroups(std::vector<std::vector<GroupedWitness>> parts);

/// Join witnesses of one left tree against the whole right collection
/// (passed as pointers so callers can share cached decoded trees), in
/// right-collection order, duplicates within the result collapsed.
Result<TreeCollection> JoinTreeWithRight(
    const DataTree& left_tree, const std::vector<const DataTree*>& right,
    const PatternTree& pattern, const std::set<int>& expand,
    const ConditionSemantics& semantics);

/// Concatenates per-tree results in order, collapsing duplicates globally
/// by canonical key (first occurrence wins).
TreeCollection MergeDedup(std::vector<TreeCollection> parts);

}  // namespace toss::tax

#endif  // TOSS_TAX_OPERATORS_H_
