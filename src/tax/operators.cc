#include "tax/operators.h"

#include <map>
#include <set>
#include <unordered_set>

namespace toss::tax {

namespace {

/// Appends `tree` to `out` unless an equal tree (CanonicalKey) was appended
/// before.
class Deduper {
 public:
  void Add(DataTree tree, TreeCollection* out) {
    if (tree.empty()) return;
    if (seen_.insert(tree.CanonicalKey()).second) {
      out->push_back(std::move(tree));
    }
  }

 private:
  std::unordered_set<std::string> seen_;
};

/// Builds the induced forest over `kept` nodes of `src`: top-most kept
/// nodes become roots of separate output trees; descendants attach to their
/// closest kept ancestor. `full` nodes bring their whole data subtree.
void BuildForest(const DataTree& src, NodeId src_id,
                 const std::set<NodeId>& kept, const std::set<NodeId>& full,
                 DataTree* current, NodeId current_parent, Deduper* dedup,
                 TreeCollection* out) {
  bool is_kept = kept.count(src_id) > 0;
  if (is_kept && current == nullptr) {
    // Top-most kept node: starts a fresh output tree.
    DataTree tree;
    if (full.count(src_id)) {
      tree.CopySubtree(src, src_id, kInvalidNode);
    } else {
      const DataNode& n = src.node(src_id);
      NodeId id = tree.CreateRoot(n.tag, n.content);
      tree.node(id).tag_type = n.tag_type;
      tree.node(id).content_type = n.content_type;
      tree.node(id).provenance = n.provenance;
      for (NodeId c : src.node(src_id).children) {
        BuildForest(src, c, kept, full, &tree, id, dedup, out);
      }
    }
    dedup->Add(std::move(tree), out);
    return;
  }
  NodeId next_parent = current_parent;
  if (is_kept) {
    if (full.count(src_id)) {
      current->CopySubtree(src, src_id, current_parent);
      return;
    }
    const DataNode& n = src.node(src_id);
    NodeId id = current->AppendChild(current_parent, n.tag, n.content);
    current->node(id).tag_type = n.tag_type;
    current->node(id).content_type = n.content_type;
    current->node(id).provenance = n.provenance;
    next_parent = id;
  }
  for (NodeId c : src.node(src_id).children) {
    BuildForest(src, c, kept, full, current, next_parent, dedup, out);
  }
}

}  // namespace

Result<TreeCollection> SelectTree(const DataTree& tree,
                                  const PatternTree& pattern,
                                  const std::set<int>& expand,
                                  const ConditionSemantics& semantics) {
  TOSS_ASSIGN_OR_RETURN(std::vector<Embedding> embeddings,
                        FindEmbeddings(pattern, tree, semantics));
  TreeCollection out;
  Deduper dedup;
  for (const Embedding& h : embeddings) {
    dedup.Add(BuildWitnessTree(pattern, tree, h, expand), &out);
  }
  return out;
}

Result<TreeCollection> ProjectTree(const DataTree& tree,
                                   const PatternTree& pattern,
                                   const std::vector<ProjectItem>& pl,
                                   const ConditionSemantics& semantics) {
  TOSS_ASSIGN_OR_RETURN(std::vector<Embedding> embeddings,
                        FindEmbeddings(pattern, tree, semantics));
  std::set<NodeId> kept;
  std::set<NodeId> full;
  for (const Embedding& h : embeddings) {
    for (const ProjectItem& item : pl) {
      NodeId mapped = h.mapping.Get(item.label);
      if (mapped == kInvalidNode) continue;
      kept.insert(mapped);
      if (item.keep_subtree) full.insert(mapped);
    }
  }
  TreeCollection out;
  if (kept.empty()) return out;
  Deduper dedup;
  BuildForest(tree, tree.root(), kept, full, nullptr, kInvalidNode, &dedup,
              &out);
  return out;
}

Result<std::vector<GroupedWitness>> GroupByTree(
    const DataTree& tree, const PatternTree& pattern, int group_label,
    const std::set<int>& expand, const ConditionSemantics& semantics) {
  if (pattern.IndexOfLabel(group_label) < 0) {
    return Status::InvalidArgument("GroupBy: label $" +
                                   std::to_string(group_label) +
                                   " is not a pattern node");
  }
  TOSS_ASSIGN_OR_RETURN(std::vector<Embedding> embeddings,
                        FindEmbeddings(pattern, tree, semantics));
  std::vector<GroupedWitness> out;
  out.reserve(embeddings.size());
  for (const Embedding& h : embeddings) {
    GroupedWitness gw;
    gw.value = tree.node(h.mapping.Get(group_label)).content;
    gw.witness = BuildWitnessTree(pattern, tree, h, expand);
    out.push_back(std::move(gw));
  }
  return out;
}

TreeCollection AssembleGroups(std::vector<std::vector<GroupedWitness>> parts) {
  // Grouping value -> (first-occurrence order, deduped member trees).
  std::vector<std::string> group_order;
  std::map<std::string, TreeCollection> groups;
  std::map<std::string, std::unordered_set<std::string>> seen;
  for (std::vector<GroupedWitness>& part : parts) {
    for (GroupedWitness& gw : part) {
      if (groups.find(gw.value) == groups.end()) {
        group_order.push_back(gw.value);
      }
      if (seen[gw.value].insert(gw.witness.CanonicalKey()).second) {
        groups[gw.value].push_back(std::move(gw.witness));
      }
    }
  }
  TreeCollection out;
  out.reserve(group_order.size());
  for (const std::string& value : group_order) {
    DataTree group;
    NodeId root = group.CreateRoot(kGroupRootTag, value);
    TreeCollection& members = groups[value];
    group.node(root).provenance = members.size();  // count aggregate
    for (const DataTree& member : members) {
      group.CopySubtree(member, member.root(), root);
    }
    out.push_back(std::move(group));
  }
  return out;
}

Result<TreeCollection> JoinTreeWithRight(
    const DataTree& left_tree, const std::vector<const DataTree*>& right,
    const PatternTree& pattern, const std::set<int>& expand,
    const ConditionSemantics& semantics) {
  TreeCollection out;
  Deduper dedup;
  for (const DataTree* b : right) {
    DataTree pair;
    NodeId root = pair.CreateRoot(kProductRootTag);
    pair.CopySubtree(left_tree, left_tree.root(), root);
    pair.CopySubtree(*b, b->root(), root);
    pair.BuildTagIndex();
    TOSS_ASSIGN_OR_RETURN(std::vector<Embedding> embeddings,
                          FindEmbeddings(pattern, pair, semantics));
    for (const Embedding& h : embeddings) {
      dedup.Add(BuildWitnessTree(pattern, pair, h, expand), &out);
    }
  }
  return out;
}

TreeCollection MergeDedup(std::vector<TreeCollection> parts) {
  TreeCollection out;
  Deduper dedup;
  for (TreeCollection& part : parts) {
    for (DataTree& tree : part) {
      dedup.Add(std::move(tree), &out);
    }
  }
  return out;
}

Result<TreeCollection> Select(const TreeCollection& input,
                              const PatternTree& pattern,
                              const std::vector<int>& sl,
                              const ConditionSemantics& semantics) {
  std::set<int> expand(sl.begin(), sl.end());
  std::vector<TreeCollection> parts;
  parts.reserve(input.size());
  for (const DataTree& tree : input) {
    TOSS_ASSIGN_OR_RETURN(TreeCollection part,
                          SelectTree(tree, pattern, expand, semantics));
    parts.push_back(std::move(part));
  }
  return MergeDedup(std::move(parts));
}

Result<TreeCollection> Project(const TreeCollection& input,
                               const PatternTree& pattern,
                               const std::vector<ProjectItem>& pl,
                               const ConditionSemantics& semantics) {
  std::vector<TreeCollection> parts;
  parts.reserve(input.size());
  for (const DataTree& tree : input) {
    TOSS_ASSIGN_OR_RETURN(TreeCollection part,
                          ProjectTree(tree, pattern, pl, semantics));
    parts.push_back(std::move(part));
  }
  return MergeDedup(std::move(parts));
}

TreeCollection Product(const TreeCollection& left,
                       const TreeCollection& right) {
  TreeCollection out;
  out.reserve(left.size() * right.size());
  for (const DataTree& a : left) {
    for (const DataTree& b : right) {
      DataTree tree;
      NodeId root = tree.CreateRoot(kProductRootTag);
      tree.CopySubtree(a, a.root(), root);
      tree.CopySubtree(b, b.root(), root);
      out.push_back(std::move(tree));
    }
  }
  return out;
}

Result<TreeCollection> Join(const TreeCollection& left,
                            const TreeCollection& right,
                            const PatternTree& pattern,
                            const std::vector<int>& sl,
                            const ConditionSemantics& semantics) {
  // Semantically Select(Product(left, right), ...), but the product is
  // streamed one pair-tree at a time: materializing |L|*|R| trees up front
  // dominates memory at realistic sizes.
  std::set<int> expand(sl.begin(), sl.end());
  std::vector<const DataTree*> right_ptrs;
  right_ptrs.reserve(right.size());
  for (const DataTree& b : right) right_ptrs.push_back(&b);
  std::vector<TreeCollection> parts;
  parts.reserve(left.size());
  for (const DataTree& a : left) {
    TOSS_ASSIGN_OR_RETURN(
        TreeCollection part,
        JoinTreeWithRight(a, right_ptrs, pattern, expand, semantics));
    parts.push_back(std::move(part));
  }
  return MergeDedup(std::move(parts));
}

Result<TreeCollection> GroupBy(const TreeCollection& input,
                               const PatternTree& pattern, int group_label,
                               const std::vector<int>& sl,
                               const ConditionSemantics& semantics) {
  if (pattern.IndexOfLabel(group_label) < 0) {
    return Status::InvalidArgument("GroupBy: label $" +
                                   std::to_string(group_label) +
                                   " is not a pattern node");
  }
  std::set<int> expand(sl.begin(), sl.end());
  std::vector<std::vector<GroupedWitness>> parts;
  parts.reserve(input.size());
  for (const DataTree& tree : input) {
    TOSS_ASSIGN_OR_RETURN(
        std::vector<GroupedWitness> part,
        GroupByTree(tree, pattern, group_label, expand, semantics));
    parts.push_back(std::move(part));
  }
  return AssembleGroups(std::move(parts));
}

TreeCollection Union(const TreeCollection& left,
                     const TreeCollection& right) {
  TreeCollection out;
  Deduper dedup;
  for (const DataTree& t : left) dedup.Add(t, &out);
  for (const DataTree& t : right) dedup.Add(t, &out);
  return out;
}

TreeCollection Intersect(const TreeCollection& left,
                         const TreeCollection& right) {
  std::unordered_set<std::string> right_keys;
  for (const DataTree& t : right) right_keys.insert(t.CanonicalKey());
  TreeCollection out;
  Deduper dedup;
  for (const DataTree& t : left) {
    if (right_keys.count(t.CanonicalKey())) dedup.Add(t, &out);
  }
  return out;
}

TreeCollection Difference(const TreeCollection& left,
                          const TreeCollection& right) {
  std::unordered_set<std::string> right_keys;
  for (const DataTree& t : right) right_keys.insert(t.CanonicalKey());
  TreeCollection out;
  Deduper dedup;
  for (const DataTree& t : left) {
    if (!right_keys.count(t.CanonicalKey())) dedup.Add(t, &out);
  }
  return out;
}

}  // namespace toss::tax
