#include "tax/operators.h"

#include <set>
#include <unordered_set>

namespace toss::tax {

namespace {

/// Appends `tree` to `out` unless an equal tree (CanonicalKey) was appended
/// before.
class Deduper {
 public:
  void Add(DataTree tree, TreeCollection* out) {
    if (tree.empty()) return;
    if (seen_.insert(tree.CanonicalKey()).second) {
      out->push_back(std::move(tree));
    }
  }

 private:
  std::unordered_set<std::string> seen_;
};

/// Builds the induced forest over `kept` nodes of `src`: top-most kept
/// nodes become roots of separate output trees; descendants attach to their
/// closest kept ancestor. `full` nodes bring their whole data subtree.
void BuildForest(const DataTree& src, NodeId src_id,
                 const std::set<NodeId>& kept, const std::set<NodeId>& full,
                 DataTree* current, NodeId current_parent, Deduper* dedup,
                 TreeCollection* out) {
  bool is_kept = kept.count(src_id) > 0;
  if (is_kept && current == nullptr) {
    // Top-most kept node: starts a fresh output tree.
    DataTree tree;
    if (full.count(src_id)) {
      tree.CopySubtree(src, src_id, kInvalidNode);
    } else {
      const DataNode& n = src.node(src_id);
      NodeId id = tree.CreateRoot(n.tag, n.content);
      tree.node(id).tag_type = n.tag_type;
      tree.node(id).content_type = n.content_type;
      tree.node(id).provenance = n.provenance;
      for (NodeId c : src.node(src_id).children) {
        BuildForest(src, c, kept, full, &tree, id, dedup, out);
      }
    }
    dedup->Add(std::move(tree), out);
    return;
  }
  NodeId next_parent = current_parent;
  if (is_kept) {
    if (full.count(src_id)) {
      current->CopySubtree(src, src_id, current_parent);
      return;
    }
    const DataNode& n = src.node(src_id);
    NodeId id = current->AppendChild(current_parent, n.tag, n.content);
    current->node(id).tag_type = n.tag_type;
    current->node(id).content_type = n.content_type;
    current->node(id).provenance = n.provenance;
    next_parent = id;
  }
  for (NodeId c : src.node(src_id).children) {
    BuildForest(src, c, kept, full, current, next_parent, dedup, out);
  }
}

}  // namespace

Result<TreeCollection> Select(const TreeCollection& input,
                              const PatternTree& pattern,
                              const std::vector<int>& sl,
                              const ConditionSemantics& semantics) {
  TreeCollection out;
  Deduper dedup;
  std::set<int> expand(sl.begin(), sl.end());
  for (const DataTree& tree : input) {
    TOSS_ASSIGN_OR_RETURN(std::vector<Embedding> embeddings,
                          FindEmbeddings(pattern, tree, semantics));
    for (const Embedding& h : embeddings) {
      dedup.Add(BuildWitnessTree(pattern, tree, h, expand), &out);
    }
  }
  return out;
}

Result<TreeCollection> Project(const TreeCollection& input,
                               const PatternTree& pattern,
                               const std::vector<ProjectItem>& pl,
                               const ConditionSemantics& semantics) {
  TreeCollection out;
  Deduper dedup;
  for (const DataTree& tree : input) {
    TOSS_ASSIGN_OR_RETURN(std::vector<Embedding> embeddings,
                          FindEmbeddings(pattern, tree, semantics));
    std::set<NodeId> kept;
    std::set<NodeId> full;
    for (const Embedding& h : embeddings) {
      for (const ProjectItem& item : pl) {
        auto it = h.mapping.find(item.label);
        if (it == h.mapping.end()) continue;
        kept.insert(it->second);
        if (item.keep_subtree) full.insert(it->second);
      }
    }
    if (kept.empty()) continue;
    BuildForest(tree, tree.root(), kept, full, nullptr, kInvalidNode, &dedup,
                &out);
  }
  return out;
}

TreeCollection Product(const TreeCollection& left,
                       const TreeCollection& right) {
  TreeCollection out;
  out.reserve(left.size() * right.size());
  for (const DataTree& a : left) {
    for (const DataTree& b : right) {
      DataTree tree;
      NodeId root = tree.CreateRoot(kProductRootTag);
      tree.CopySubtree(a, a.root(), root);
      tree.CopySubtree(b, b.root(), root);
      out.push_back(std::move(tree));
    }
  }
  return out;
}

Result<TreeCollection> Join(const TreeCollection& left,
                            const TreeCollection& right,
                            const PatternTree& pattern,
                            const std::vector<int>& sl,
                            const ConditionSemantics& semantics) {
  // Semantically Select(Product(left, right), ...), but the product is
  // streamed one pair-tree at a time: materializing |L|*|R| trees up front
  // dominates memory at realistic sizes.
  TreeCollection out;
  Deduper dedup;
  std::set<int> expand(sl.begin(), sl.end());
  for (const DataTree& a : left) {
    for (const DataTree& b : right) {
      DataTree pair;
      NodeId root = pair.CreateRoot(kProductRootTag);
      pair.CopySubtree(a, a.root(), root);
      pair.CopySubtree(b, b.root(), root);
      TOSS_ASSIGN_OR_RETURN(std::vector<Embedding> embeddings,
                            FindEmbeddings(pattern, pair, semantics));
      for (const Embedding& h : embeddings) {
        dedup.Add(BuildWitnessTree(pattern, pair, h, expand), &out);
      }
    }
  }
  return out;
}

Result<TreeCollection> GroupBy(const TreeCollection& input,
                               const PatternTree& pattern, int group_label,
                               const std::vector<int>& sl,
                               const ConditionSemantics& semantics) {
  if (pattern.IndexOfLabel(group_label) < 0) {
    return Status::InvalidArgument("GroupBy: label $" +
                                   std::to_string(group_label) +
                                   " is not a pattern node");
  }
  std::set<int> expand(sl.begin(), sl.end());
  // Grouping value -> (first-occurrence order, deduped member trees).
  std::vector<std::string> group_order;
  std::map<std::string, TreeCollection> groups;
  std::map<std::string, std::unordered_set<std::string>> seen;
  for (const DataTree& tree : input) {
    TOSS_ASSIGN_OR_RETURN(std::vector<Embedding> embeddings,
                          FindEmbeddings(pattern, tree, semantics));
    for (const Embedding& h : embeddings) {
      const std::string& value =
          tree.node(h.mapping.at(group_label)).content;
      if (groups.find(value) == groups.end()) {
        group_order.push_back(value);
      }
      DataTree witness = BuildWitnessTree(pattern, tree, h, expand);
      if (seen[value].insert(witness.CanonicalKey()).second) {
        groups[value].push_back(std::move(witness));
      }
    }
  }
  TreeCollection out;
  out.reserve(group_order.size());
  for (const std::string& value : group_order) {
    DataTree group;
    NodeId root = group.CreateRoot(kGroupRootTag, value);
    TreeCollection& members = groups[value];
    group.node(root).provenance = members.size();  // count aggregate
    for (const DataTree& member : members) {
      group.CopySubtree(member, member.root(), root);
    }
    out.push_back(std::move(group));
  }
  return out;
}

TreeCollection Union(const TreeCollection& left,
                     const TreeCollection& right) {
  TreeCollection out;
  Deduper dedup;
  for (const DataTree& t : left) dedup.Add(t, &out);
  for (const DataTree& t : right) dedup.Add(t, &out);
  return out;
}

TreeCollection Intersect(const TreeCollection& left,
                         const TreeCollection& right) {
  std::unordered_set<std::string> right_keys;
  for (const DataTree& t : right) right_keys.insert(t.CanonicalKey());
  TreeCollection out;
  Deduper dedup;
  for (const DataTree& t : left) {
    if (right_keys.count(t.CanonicalKey())) dedup.Add(t, &out);
  }
  return out;
}

TreeCollection Difference(const TreeCollection& left,
                          const TreeCollection& right) {
  std::unordered_set<std::string> right_keys;
  for (const DataTree& t : right) right_keys.insert(t.CanonicalKey());
  TreeCollection out;
  Deduper dedup;
  for (const DataTree& t : left) {
    if (!right_keys.count(t.CanonicalKey())) dedup.Add(t, &out);
  }
  return out;
}

}  // namespace toss::tax
