// Textual syntax for selection conditions, used by tests, benches and
// examples. Grammar (whitespace-insensitive):
//
//   cond    := orexpr
//   orexpr  := andexpr ('|' andexpr)*
//   andexpr := unary ('&' unary)*
//   unary   := '!' unary | '(' cond ')' | atom
//   atom    := term OP term
//   OP      := '=' | '!=' | '<' | '<=' | '>' | '>=' | '~'
//            | 'instance_of' | 'isa' | 'subtype_of' | 'part_of'
//            | 'above' | 'below'
//   term    := '$' INT '.' ('tag'|'content')
//            | STRING (':' IDENT)?         -- typed value, e.g. "5":year
//            | NUMBER (':' IDENT)?         -- sugar for "NUMBER"
//            | IDENT                        -- type name
//
// Example (paper Example 12):
//   $1.tag = "inproceedings" & $2.tag = "title"
//     & $3.tag part_of "inproceedings" & $3.content = "*Microsoft*"

#ifndef TOSS_TAX_CONDITION_PARSER_H_
#define TOSS_TAX_CONDITION_PARSER_H_

#include <string_view>

#include "common/result.h"
#include "tax/condition.h"

namespace toss::tax {

/// Parses `text` into a Condition; ParseError on malformed input.
Result<Condition> ParseCondition(std::string_view text);

}  // namespace toss::tax

#endif  // TOSS_TAX_CONDITION_PARSER_H_
