// Selection conditions (paper Section 5.1.1).
//
// Simple (atomic) conditions have the form `X op Y` where
//   op in { =, !=, <, <=, >, >=, ~, instance_of, isa, subtype_of,
//           part_of, above, below }
// and X, Y are *terms*: node attributes ($n.tag / $n.content), type names,
// or typed values `"v":tau`. Boolean connectives (&, |, !) combine atoms.
//
// Evaluation is parameterized by ConditionSemantics so the same pattern
// machinery serves both algebras:
//  * TaxSemantics (tax/tax_semantics.h) -- plain TAX: exact matching;
//    ontology/similarity operators degrade to the paper's experimental
//    baseline behaviour (exact match for ~, substring "contains" for isa).
//  * SeoSemantics (core/seo_semantics.h) -- TOSS: the similarity enhanced
//    ontology, type hierarchies, and conversion functions.

#ifndef TOSS_TAX_CONDITION_H_
#define TOSS_TAX_CONDITION_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/interner.h"
#include "common/result.h"
#include "tax/data_tree.h"
#include "tax/label_map.h"

namespace toss::tax {

enum class CondOp {
  kEq,
  kNeq,
  kLt,
  kLeq,
  kGt,
  kGeq,
  kSimilar,     ///< ~  (similarTo)
  kInstanceOf,  ///< value is an instance of a type
  kIsa,         ///< ontology isa relation (terms or types)
  kSubtypeOf,   ///< strictly type-level isa
  kPartOf,      ///< ontology partof relation
  kAbove,       ///< Y below X
  kBelow,       ///< X instance_of Y or X subtype_of Y (transitively)
};

/// Token name of an operator (as accepted by the condition parser).
const char* CondOpName(CondOp op);

/// A term of an atomic condition.
struct CondTerm {
  enum class Kind {
    kNodeTag,      ///< $n.tag
    kNodeContent,  ///< $n.content
    kTypeName,     ///< bare identifier, e.g. year
    kTypedValue,   ///< "v" or "v":tau
  };
  Kind kind = Kind::kTypedValue;
  int node_label = 0;      ///< for kNodeTag / kNodeContent
  std::string text;        ///< type name or literal value
  std::string value_type;  ///< declared type of a literal ("" = string)

  /// Interned id of a *string-typed* literal, computed once at term
  /// construction (Value() / the condition parser). kInvalidSymbol for
  /// node terms, type names, and non-string literals.
  SymbolId symbol = kInvalidSymbol;
};

/// Helpers for building terms programmatically.
CondTerm TagOf(int label);
CondTerm ContentOf(int label);
CondTerm TypeName(std::string name);
CondTerm Value(std::string text, std::string type = "");

/// Boolean combination of atomic conditions.
struct Condition {
  enum class Kind { kAtom, kAnd, kOr, kNot, kTrue };
  Kind kind = Kind::kTrue;

  // kAtom:
  CondTerm lhs;
  CondOp op = CondOp::kEq;
  CondTerm rhs;

  // kAnd / kOr (n-ary) / kNot (unary):
  std::vector<std::shared_ptr<Condition>> children;

  static Condition True();
  static Condition Atom(CondTerm lhs, CondOp op, CondTerm rhs);
  static Condition And(std::vector<Condition> cs);
  static Condition Or(std::vector<Condition> cs);
  static Condition Not(Condition c);

  /// All node labels referenced anywhere in the condition.
  std::vector<int> ReferencedLabels() const;

  /// Parseable text form (round-trips through ParseCondition).
  std::string ToString() const;
};

/// The value of a term under an embedding: its text plus type information
/// (paper: "the value of a term X w.r.t. a mapping h").
struct TermValue {
  std::string text;
  std::string type;          ///< type of the value ("" when X is a type name)
  bool is_type_name = false;

  /// Interned id of `text` when it is a string-typed value whose id is
  /// known (node attribute of an indexed tree, or interned literal);
  /// kInvalidSymbol otherwise. Invariant: symbol != kInvalidSymbol implies
  /// !is_type_name and type == "string", and Interner::Global().Text(symbol)
  /// == text.
  SymbolId symbol = kInvalidSymbol;
};

// --- Symbol fast paths -------------------------------------------------------
//
// Equality in TAX/TOSS is string equality plus '*' globbing -- never numeric
// coercion (tax_semantics.cc CompareValues) -- so interned ids decide most
// equality atoms without touching the texts. The global switch exists for
// A/B testing: property tests run every operator with the fast paths off and
// assert byte-identical answers.

/// Exact text equality decided from ids alone: true/false when both ids are
/// valid (ids are canonical: equal id <=> equal text), nullopt when either
/// id is missing or the fast paths are disabled. Sound for ~ under
/// TaxSemantics and for pre-glob screening -- NOT for glob-aware equality
/// (use SymbolGlobEquality).
std::optional<bool> SymbolTextEquality(const TermValue& x, const TermValue& y);

/// Glob-aware equality decided from ids: like SymbolTextEquality but also
/// nullopt when either term contains '*' and the ids differ (distinct texts
/// may still glob-match). Matches CompareValues kEq semantics exactly:
/// equal ids => equal texts => equal (a pattern always glob-matches
/// itself); unequal star-free ids => unequal.
std::optional<bool> SymbolGlobEquality(const TermValue& x, const TermValue& y);

/// Pluggable meaning of operators. Implementations must be pure
/// (side-effect free); Compare-family calls may return TypeError for
/// ill-typed operands (TOSS well-typedness, Section 5.1.1).
class ConditionSemantics {
 public:
  virtual ~ConditionSemantics() = default;

  /// op in {=, !=, <, <=, >, >=}.
  virtual Result<bool> Compare(const TermValue& x, CondOp op,
                               const TermValue& y) const = 0;
  /// X ~ Y.
  virtual Result<bool> Similar(const TermValue& x,
                               const TermValue& y) const = 0;
  /// X isa/part_of Y over the named relation.
  virtual Result<bool> Related(const std::string& relation,
                               const TermValue& x,
                               const TermValue& y) const = 0;
  /// X instance_of Y.
  virtual Result<bool> InstanceOf(const TermValue& x,
                                  const TermValue& y) const = 0;
  /// X subtype_of Y.
  virtual Result<bool> SubtypeOf(const TermValue& x,
                                 const TermValue& y) const = 0;
};

/// An embedding restricted to what condition evaluation needs: the data
/// tree plus the label -> node mapping.
struct EmbeddingView {
  const DataTree* tree = nullptr;
  const LabelMap* mapping = nullptr;
};

/// A resolved label image plus the interned ids of its tag/content when the
/// backing tree carries them (DataTree::HasSymbolIds).
struct ResolvedNode {
  const DataNode* node = nullptr;
  SymbolId tag_symbol = kInvalidSymbol;
  SymbolId content_symbol = kInvalidSymbol;
};

/// Label resolution decoupled from a single DataTree: the structural join
/// engine evaluates conditions over mappings that span two source trees
/// (plus a synthetic product root), so the node behind a label cannot be
/// expressed as one (tree, LabelMap) pair.
class NodeSource {
 public:
  virtual ~NodeSource() = default;
  /// The image node of `label`, or nullptr when the label is unmapped.
  virtual const DataNode* Resolve(int label) const = 0;
  /// Resolve plus interned ids; sources backed by indexed trees override
  /// this to surface the ids. Default: node only.
  virtual ResolvedNode ResolveIds(int label) const {
    return ResolvedNode{Resolve(label), kInvalidSymbol, kInvalidSymbol};
  }
};

/// Extracts the TermValue of `term` under `h` (paper's X^h / type(X)^h).
Result<TermValue> EvalTerm(const CondTerm& term, const EmbeddingView& h);
Result<TermValue> EvalTerm(const CondTerm& term, const NodeSource& source);

/// Recursive satisfaction (paper's EI, WT |= c).
Result<bool> EvalCondition(const Condition& c, const EmbeddingView& h,
                           const ConditionSemantics& semantics);
Result<bool> EvalCondition(const Condition& c, const NodeSource& source,
                           const ConditionSemantics& semantics);

}  // namespace toss::tax

#endif  // TOSS_TAX_CONDITION_H_
