// Flat label -> data-node mapping used by embeddings.
//
// Pattern labels are small dense integers ($1, $2, ...), so the mapping of
// an embedding is a vector indexed by label with kInvalidNode marking
// absent slots -- Get/Set/Erase in the enumerator's inner loop are plain
// array accesses instead of the std::map node traversals the original
// implementation paid per candidate.

#ifndef TOSS_TAX_LABEL_MAP_H_
#define TOSS_TAX_LABEL_MAP_H_

#include <cassert>
#include <cstddef>
#include <utility>
#include <vector>

#include "tax/data_tree.h"

namespace toss::tax {

class LabelMap {
 public:
  LabelMap() = default;
  LabelMap(std::initializer_list<std::pair<int, NodeId>> pairs) {
    for (const auto& [label, node] : pairs) Set(label, node);
  }

  /// The node mapped to `label`, or kInvalidNode when unmapped.
  NodeId Get(int label) const {
    return (label >= 0 && static_cast<size_t>(label) < slots_.size())
               ? slots_[label]
               : kInvalidNode;
  }

  bool Has(int label) const { return Get(label) != kInvalidNode; }

  /// Maps `label` to `node` (kInvalidNode is not a mappable value).
  void Set(int label, NodeId node) {
    assert(label >= 0 && node != kInvalidNode);
    if (static_cast<size_t>(label) >= slots_.size()) {
      slots_.resize(static_cast<size_t>(label) + 1, kInvalidNode);
    }
    if (slots_[label] == kInvalidNode) ++size_;
    slots_[label] = node;
  }

  void Erase(int label) {
    if (label >= 0 && static_cast<size_t>(label) < slots_.size() &&
        slots_[label] != kInvalidNode) {
      slots_[label] = kInvalidNode;
      --size_;
    }
  }

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  /// Iterates mapped (label, node) pairs in ascending label order.
  class const_iterator {
   public:
    const_iterator(const std::vector<NodeId>* slots, size_t pos)
        : slots_(slots), pos_(pos) {
      SkipEmpty();
    }
    std::pair<int, NodeId> operator*() const {
      return {static_cast<int>(pos_), (*slots_)[pos_]};
    }
    const_iterator& operator++() {
      ++pos_;
      SkipEmpty();
      return *this;
    }
    bool operator==(const const_iterator& o) const { return pos_ == o.pos_; }
    bool operator!=(const const_iterator& o) const { return pos_ != o.pos_; }

   private:
    void SkipEmpty() {
      while (pos_ < slots_->size() && (*slots_)[pos_] == kInvalidNode) {
        ++pos_;
      }
    }
    const std::vector<NodeId>* slots_;
    size_t pos_;
  };

  const_iterator begin() const { return const_iterator(&slots_, 0); }
  const_iterator end() const { return const_iterator(&slots_, slots_.size()); }

 private:
  std::vector<NodeId> slots_;
  size_t size_ = 0;
};

}  // namespace toss::tax

#endif  // TOSS_TAX_LABEL_MAP_H_
