#include "tax/data_tree.h"

#include <algorithm>
#include <cassert>

#include "common/string_util.h"

namespace toss::tax {

NodeId DataTree::CreateRoot(std::string_view tag, std::string_view content) {
  assert(nodes_.empty() && "CreateRoot on non-empty tree");
  tag_index_.reset();
  nodes_.emplace_back();
  nodes_[0].tag = tag;
  nodes_[0].content = content;
  return 0;
}

NodeId DataTree::AppendChild(NodeId parent, std::string_view tag,
                             std::string_view content) {
  assert(parent < nodes_.size());
  tag_index_.reset();
  NodeId id = static_cast<NodeId>(nodes_.size());
  nodes_.emplace_back();
  nodes_[id].tag = tag;
  nodes_[id].content = content;
  nodes_[id].parent = parent;
  nodes_[parent].children.push_back(id);
  return id;
}

std::vector<NodeId> DataTree::Descendants(NodeId id) const {
  std::vector<NodeId> out;
  std::vector<NodeId> stack;
  for (auto it = nodes_[id].children.rbegin();
       it != nodes_[id].children.rend(); ++it) {
    stack.push_back(*it);
  }
  while (!stack.empty()) {
    NodeId cur = stack.back();
    stack.pop_back();
    out.push_back(cur);
    const auto& n = nodes_[cur];
    for (auto it = n.children.rbegin(); it != n.children.rend(); ++it) {
      stack.push_back(*it);
    }
  }
  return out;
}

bool DataTree::IsAncestor(NodeId ancestor, NodeId node) const {
  // With preorder ids the question is an interval containment test on the
  // positional labels -- O(1) instead of a parent walk.
  if (HasPreorderIds()) {
    return ancestor < node && node < SubtreeEnd(ancestor);
  }
  NodeId cur = nodes_[node].parent;
  while (cur != kInvalidNode) {
    if (cur == ancestor) return true;
    cur = nodes_[cur].parent;
  }
  return false;
}

NodeId DataTree::CopySubtree(const DataTree& src, NodeId src_id,
                             NodeId parent) {
  const DataNode& sn = src.node(src_id);
  NodeId dst = (parent == kInvalidNode) ? CreateRoot(sn.tag, sn.content)
                                        : AppendChild(parent, sn.tag,
                                                      sn.content);
  nodes_[dst].tag_type = sn.tag_type;
  nodes_[dst].content_type = sn.content_type;
  nodes_[dst].provenance = sn.provenance;
  for (NodeId c : sn.children) CopySubtree(src, c, dst);
  return dst;
}

namespace {

void ConvertXml(const xml::XmlDocument& doc, xml::NodeId src, DataTree* out,
                NodeId parent) {
  const auto& n = doc.node(src);
  // Content = concatenation of direct text children.
  std::string content;
  for (xml::NodeId c : n.children) {
    if (doc.node(c).kind == xml::NodeKind::kText) content += doc.node(c).text;
  }
  NodeId id = (parent == kInvalidNode)
                  ? out->CreateRoot(n.tag, content)
                  : out->AppendChild(parent, n.tag, content);
  // Ground-truth provenance survives XML round-trips via a reserved
  // attribute (see data_tree.h on mechanical precision/recall auditing).
  std::string_view gtid = doc.Attribute(src, "gtid");
  if (!gtid.empty()) {
    long long value = 0;
    if (ParseInt(gtid, &value) && value > 0) {
      out->node(id).provenance = static_cast<uint64_t>(value);
    }
  }
  for (xml::NodeId c : n.children) {
    if (doc.node(c).kind == xml::NodeKind::kElement) {
      ConvertXml(doc, c, out, id);
    }
  }
}

void ConvertToXml(const DataTree& tree, NodeId src, xml::XmlDocument* out,
                  xml::NodeId parent) {
  const DataNode& n = tree.node(src);
  xml::NodeId id = (parent == xml::kInvalidNode)
                       ? out->CreateRoot(n.tag)
                       : out->AppendElement(parent, n.tag);
  if (n.provenance != 0) {
    out->SetAttribute(id, "gtid", std::to_string(n.provenance));
  }
  if (!n.content.empty()) out->AppendText(id, n.content);
  for (NodeId c : n.children) ConvertToXml(tree, c, out, id);
}

void AppendCanonical(const DataTree& tree, NodeId id, std::string* out) {
  const DataNode& n = tree.node(id);
  // Length-prefixed fields make the key collision-free.
  auto field = [out](const std::string& s) {
    *out += std::to_string(s.size());
    *out += ':';
    *out += s;
  };
  *out += '(';
  field(n.tag);
  field(n.content);
  field(n.tag_type);
  field(n.content_type);
  for (NodeId c : n.children) AppendCanonical(tree, c, out);
  *out += ')';
}

}  // namespace

DataTree DataTree::FromXml(const xml::XmlDocument& doc, xml::NodeId root) {
  DataTree out;
  ConvertXml(doc, root, &out, kInvalidNode);
  // Decoded trees head straight into query evaluation; index them here so
  // every consumer (executor cache, operators) gets candidate pruning.
  out.BuildTagIndex();
  return out;
}

void DataTree::BuildTagIndex() {
  if (tag_index_.has_value()) return;
  TagIndexData index;
  index.depth.resize(nodes_.size());
  index.tag_ids.resize(nodes_.size(), kInvalidSymbol);
  index.content_ids.resize(nodes_.size(), kInvalidSymbol);
  Interner& interner = Interner::Global();
  bool symbols_ok = true;
  for (NodeId v = 0; v < nodes_.size(); ++v) {
    const DataNode& n = nodes_[v];
    const SymbolId tag_id = interner.Intern(n.tag);
    index.tag_ids[v] = tag_id;
    index.content_ids[v] = interner.Intern(n.content);
    if (tag_id == kInvalidSymbol ||
        index.content_ids[v] == kInvalidSymbol) {
      symbols_ok = false;  // process dictionary full (2^26 terms)
    } else {
      index.by_tag[tag_id].push_back(v);  // v ascending -> lists stay sorted
    }
    if (n.tag.find('*') != std::string::npos) {
      index.wildcard_nodes.push_back(v);
    }
    if (n.tag_type != kStringType) index.filterable = false;
    // Parents precede children (AppendChild invariant), so depths fill in
    // one pass regardless of id ordering.
    index.depth[v] = (n.parent == kInvalidNode) ? 0 : index.depth[n.parent] + 1;
  }
  if (!symbols_ok) {
    // Without complete ids the id-keyed tag map is partial; disable both
    // the ids and index-based tag pruning rather than prune wrongly.
    index.tag_ids.clear();
    index.content_ids.clear();
    index.by_tag.clear();
    index.filterable = false;
  }
  // Preorder check: walking children depth-first must visit ids 0,1,2,...
  // (true for FromXml / CopySubtree construction). Then each subtree is the
  // contiguous id range [v, v + size(v)).
  if (!nodes_.empty()) {
    bool preorder = true;
    std::vector<NodeId> stack{0};
    NodeId expect = 0;
    while (!stack.empty() && preorder) {
      NodeId cur = stack.back();
      stack.pop_back();
      if (cur != expect++) preorder = false;
      const auto& kids = nodes_[cur].children;
      for (auto it = kids.rbegin(); it != kids.rend(); ++it) {
        stack.push_back(*it);
      }
    }
    if (preorder) {
      // AppendChild guarantees child ids exceed the parent's, so a reverse
      // sweep sees every subtree size before its parent needs it.
      index.subtree_end.assign(nodes_.size(), 0);
      for (NodeId v = static_cast<NodeId>(nodes_.size()); v-- > 0;) {
        NodeId end = v + 1;
        for (NodeId c : nodes_[v].children) {
          end = std::max(end, index.subtree_end[c]);
        }
        index.subtree_end[v] = end;
      }
    }
  }
  tag_index_ = std::move(index);
}

const std::vector<NodeId>* DataTree::NodesWithTag(std::string_view tag) const {
  assert(tag_index_.has_value());
  // Non-inserting dictionary probe: a tag the process has never interned
  // cannot occur in this (indexed, hence interned) tree.
  auto id = Interner::Global().Find(tag);
  return id.has_value() ? NodesWithTagId(*id) : nullptr;
}

const std::vector<NodeId>* DataTree::NodesWithTagId(SymbolId tag) const {
  assert(tag_index_.has_value());
  auto it = tag_index_->by_tag.find(tag);
  return it == tag_index_->by_tag.end() ? nullptr : &it->second;
}

const std::vector<NodeId>& DataTree::WildcardTagNodes() const {
  assert(tag_index_.has_value());
  return tag_index_->wildcard_nodes;
}

xml::XmlDocument DataTree::ToXml() const {
  xml::XmlDocument out;
  if (!empty()) ConvertToXml(*this, root(), &out, xml::kInvalidNode);
  return out;
}

bool DataTree::Equals(const DataTree& other) const {
  if (nodes_.size() != other.nodes_.size()) return false;
  return CanonicalKey() == other.CanonicalKey();
}

std::string DataTree::CanonicalKey() const {
  std::string out;
  out.reserve(nodes_.size() * 16);
  if (!empty()) AppendCanonical(*this, root(), &out);
  return out;
}

size_t TotalNodes(const TreeCollection& collection) {
  size_t n = 0;
  for (const auto& t : collection) n += t.size();
  return n;
}

}  // namespace toss::tax
