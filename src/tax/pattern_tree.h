// Pattern trees (paper Def. 2): the query language of TAX and TOSS.
//
// A pattern tree is a node-labelled, edge-labelled tree (labels are the
// integers referenced from the selection condition as $1, $2, ...) whose
// edges are parent-child (pc) or ancestor-descendant (ad), plus a selection
// condition F.

#ifndef TOSS_TAX_PATTERN_TREE_H_
#define TOSS_TAX_PATTERN_TREE_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "tax/condition.h"

namespace toss::tax {

enum class EdgeKind : uint8_t {
  kPc,  ///< parent-child
  kAd,  ///< ancestor-descendant
};

struct PatternNode {
  int label = 0;  ///< the $n label; assigned 1..n in creation order
  EdgeKind edge_from_parent = EdgeKind::kPc;  ///< meaningless on the root
  int parent = -1;                            ///< index, -1 for root
  std::vector<int> children;                  ///< indexes
};

/// Builder + container for a pattern tree.
class PatternTree {
 public:
  PatternTree() = default;

  /// Creates the pattern root; returns its label ($1 on the first call).
  int AddRoot();

  /// Adds a child of the node labelled `parent_label`; returns the new
  /// node's label.
  int AddChild(int parent_label, EdgeKind edge);

  /// Sets the selection condition F.
  void SetCondition(Condition condition) {
    condition_ = std::move(condition);
  }
  const Condition& condition() const { return condition_; }

  size_t node_count() const { return nodes_.size(); }
  bool empty() const { return nodes_.empty(); }

  /// Node by position index (preorder of creation).
  const PatternNode& node(size_t index) const { return nodes_[index]; }

  /// Position index of the node with `label`, or -1.
  int IndexOfLabel(int label) const;

  /// Labels in creation order (root first).
  std::vector<int> Labels() const;

  /// Validates: non-empty, condition references only existing labels.
  Status Validate() const;

 private:
  std::vector<PatternNode> nodes_;
  Condition condition_ = Condition::True();
};

}  // namespace toss::tax

#endif  // TOSS_TAX_PATTERN_TREE_H_
