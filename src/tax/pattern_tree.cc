#include "tax/pattern_tree.h"

#include <algorithm>

namespace toss::tax {

int PatternTree::AddRoot() {
  if (!nodes_.empty()) return nodes_[0].label;
  PatternNode n;
  n.label = 1;
  nodes_.push_back(n);
  return 1;
}

int PatternTree::AddChild(int parent_label, EdgeKind edge) {
  int parent_index = IndexOfLabel(parent_label);
  if (parent_index < 0) return -1;
  PatternNode n;
  n.label = static_cast<int>(nodes_.size()) + 1;
  n.edge_from_parent = edge;
  n.parent = parent_index;
  int index = static_cast<int>(nodes_.size());
  nodes_.push_back(n);
  nodes_[parent_index].children.push_back(index);
  return nodes_[index].label;
}

int PatternTree::IndexOfLabel(int label) const {
  for (size_t i = 0; i < nodes_.size(); ++i) {
    if (nodes_[i].label == label) return static_cast<int>(i);
  }
  return -1;
}

std::vector<int> PatternTree::Labels() const {
  std::vector<int> out;
  out.reserve(nodes_.size());
  for (const auto& n : nodes_) out.push_back(n.label);
  return out;
}

Status PatternTree::Validate() const {
  if (nodes_.empty()) {
    return Status::InvalidArgument("pattern tree has no nodes");
  }
  auto labels = Labels();
  for (int ref : condition_.ReferencedLabels()) {
    if (std::find(labels.begin(), labels.end(), ref) == labels.end()) {
      return Status::InvalidArgument(
          "condition references $" + std::to_string(ref) +
          " which is not a pattern node");
    }
  }
  return Status::OK();
}

}  // namespace toss::tax
