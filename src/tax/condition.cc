#include "tax/condition.h"

#include <algorithm>
#include <atomic>
#include <set>

namespace toss::tax {

std::optional<bool> SymbolTextEquality(const TermValue& x,
                                       const TermValue& y) {
  if (x.symbol == kInvalidSymbol || y.symbol == kInvalidSymbol ||
      !SymbolFastPathsEnabled()) {
    return std::nullopt;
  }
  return x.symbol == y.symbol;
}

std::optional<bool> SymbolGlobEquality(const TermValue& x,
                                       const TermValue& y) {
  if (x.symbol == kInvalidSymbol || y.symbol == kInvalidSymbol ||
      !SymbolFastPathsEnabled()) {
    return std::nullopt;
  }
  if (x.symbol == y.symbol) return true;
  Interner& interner = Interner::Global();
  if (interner.HasStar(x.symbol) || interner.HasStar(y.symbol)) {
    return std::nullopt;  // distinct texts, but globbing may still match
  }
  return false;
}

const char* CondOpName(CondOp op) {
  switch (op) {
    case CondOp::kEq:
      return "=";
    case CondOp::kNeq:
      return "!=";
    case CondOp::kLt:
      return "<";
    case CondOp::kLeq:
      return "<=";
    case CondOp::kGt:
      return ">";
    case CondOp::kGeq:
      return ">=";
    case CondOp::kSimilar:
      return "~";
    case CondOp::kInstanceOf:
      return "instance_of";
    case CondOp::kIsa:
      return "isa";
    case CondOp::kSubtypeOf:
      return "subtype_of";
    case CondOp::kPartOf:
      return "part_of";
    case CondOp::kAbove:
      return "above";
    case CondOp::kBelow:
      return "below";
  }
  return "?";
}

CondTerm TagOf(int label) {
  CondTerm t;
  t.kind = CondTerm::Kind::kNodeTag;
  t.node_label = label;
  return t;
}

CondTerm ContentOf(int label) {
  CondTerm t;
  t.kind = CondTerm::Kind::kNodeContent;
  t.node_label = label;
  return t;
}

CondTerm TypeName(std::string name) {
  CondTerm t;
  t.kind = CondTerm::Kind::kTypeName;
  t.text = std::move(name);
  return t;
}

CondTerm Value(std::string text, std::string type) {
  CondTerm t;
  t.kind = CondTerm::Kind::kTypedValue;
  t.text = std::move(text);
  t.value_type = std::move(type);
  // String literals join the process dictionary once, at construction, so
  // every later evaluation compares ids. Typed literals keep their text:
  // they flow through type conversion, not string equality.
  if (t.value_type.empty() || t.value_type == kStringType) {
    t.symbol = Interner::Global().Intern(t.text);
  }
  return t;
}

Condition Condition::True() {
  Condition c;
  c.kind = Kind::kTrue;
  return c;
}

Condition Condition::Atom(CondTerm lhs, CondOp op, CondTerm rhs) {
  Condition c;
  c.kind = Kind::kAtom;
  c.lhs = std::move(lhs);
  c.op = op;
  c.rhs = std::move(rhs);
  return c;
}

Condition Condition::And(std::vector<Condition> cs) {
  if (cs.empty()) return True();
  if (cs.size() == 1) return std::move(cs[0]);
  Condition c;
  c.kind = Kind::kAnd;
  for (auto& child : cs) {
    c.children.push_back(std::make_shared<Condition>(std::move(child)));
  }
  return c;
}

Condition Condition::Or(std::vector<Condition> cs) {
  if (cs.empty()) return True();
  if (cs.size() == 1) return std::move(cs[0]);
  Condition c;
  c.kind = Kind::kOr;
  for (auto& child : cs) {
    c.children.push_back(std::make_shared<Condition>(std::move(child)));
  }
  return c;
}

Condition Condition::Not(Condition inner) {
  Condition c;
  c.kind = Kind::kNot;
  c.children.push_back(std::make_shared<Condition>(std::move(inner)));
  return c;
}

namespace {

void CollectLabels(const Condition& c, std::set<int>* out) {
  if (c.kind == Condition::Kind::kAtom) {
    for (const CondTerm* t : {&c.lhs, &c.rhs}) {
      if (t->kind == CondTerm::Kind::kNodeTag ||
          t->kind == CondTerm::Kind::kNodeContent) {
        out->insert(t->node_label);
      }
    }
  }
  for (const auto& child : c.children) CollectLabels(*child, out);
}

std::string TermToString(const CondTerm& t) {
  switch (t.kind) {
    case CondTerm::Kind::kNodeTag:
      return "$" + std::to_string(t.node_label) + ".tag";
    case CondTerm::Kind::kNodeContent:
      return "$" + std::to_string(t.node_label) + ".content";
    case CondTerm::Kind::kTypeName:
      return t.text;
    case CondTerm::Kind::kTypedValue: {
      std::string out = "\"";
      for (char ch : t.text) {
        if (ch == '"' || ch == '\\') out += '\\';
        out += ch;
      }
      out += '"';
      if (!t.value_type.empty()) out += ":" + t.value_type;
      return out;
    }
  }
  return "?";
}

}  // namespace

std::vector<int> Condition::ReferencedLabels() const {
  std::set<int> labels;
  CollectLabels(*this, &labels);
  return {labels.begin(), labels.end()};
}

std::string Condition::ToString() const {
  switch (kind) {
    case Kind::kTrue:
      return "true";
    case Kind::kAtom:
      return TermToString(lhs) + " " + CondOpName(op) + " " +
             TermToString(rhs);
    case Kind::kNot:
      return "!(" + children[0]->ToString() + ")";
    case Kind::kAnd:
    case Kind::kOr: {
      std::string sep = (kind == Kind::kAnd) ? " & " : " | ";
      std::string out;
      for (size_t i = 0; i < children.size(); ++i) {
        if (i > 0) out += sep;
        out += "(" + children[i]->ToString() + ")";
      }
      return out;
    }
  }
  return "?";
}

namespace {

/// Adapts the classic (tree, LabelMap) view to the NodeSource interface so
/// both entry points share one evaluation path.
class ViewSource final : public NodeSource {
 public:
  explicit ViewSource(const EmbeddingView& h) : h_(h) {}
  const DataNode* Resolve(int label) const override {
    NodeId mapped = h_.mapping->Get(label);
    return mapped == kInvalidNode ? nullptr : &h_.tree->node(mapped);
  }
  ResolvedNode ResolveIds(int label) const override {
    NodeId mapped = h_.mapping->Get(label);
    if (mapped == kInvalidNode) return ResolvedNode{};
    ResolvedNode r;
    r.node = &h_.tree->node(mapped);
    if (h_.tree->HasSymbolIds()) {
      r.tag_symbol = h_.tree->TagId(mapped);
      r.content_symbol = h_.tree->ContentId(mapped);
    }
    return r;
  }

 private:
  const EmbeddingView& h_;
};

}  // namespace

Result<TermValue> EvalTerm(const CondTerm& term, const EmbeddingView& h) {
  return EvalTerm(term, ViewSource(h));
}

Result<TermValue> EvalTerm(const CondTerm& term, const NodeSource& source) {
  TermValue v;
  switch (term.kind) {
    case CondTerm::Kind::kNodeTag:
    case CondTerm::Kind::kNodeContent: {
      ResolvedNode r = source.ResolveIds(term.node_label);
      const DataNode* n = r.node;
      if (n == nullptr) {
        return Status::InvalidArgument(
            "condition references pattern node $" +
            std::to_string(term.node_label) + " absent from the embedding");
      }
      if (term.kind == CondTerm::Kind::kNodeTag) {
        v.text = n->tag;
        v.type = n->tag_type;
        if (n->tag_type == kStringType) v.symbol = r.tag_symbol;
      } else {
        v.text = n->content;
        v.type = n->content_type;
        if (n->content_type == kStringType) v.symbol = r.content_symbol;
      }
      return v;
    }
    case CondTerm::Kind::kTypeName:
      v.text = term.text;
      v.is_type_name = true;
      return v;
    case CondTerm::Kind::kTypedValue:
      v.text = term.text;
      v.type = term.value_type.empty() ? kStringType : term.value_type;
      v.symbol = term.symbol;
      return v;
  }
  return Status::Internal("unreachable term kind");
}

Result<bool> EvalCondition(const Condition& c, const EmbeddingView& h,
                           const ConditionSemantics& semantics) {
  return EvalCondition(c, ViewSource(h), semantics);
}

Result<bool> EvalCondition(const Condition& c, const NodeSource& source,
                           const ConditionSemantics& semantics) {
  switch (c.kind) {
    case Condition::Kind::kTrue:
      return true;
    case Condition::Kind::kNot: {
      TOSS_ASSIGN_OR_RETURN(bool inner,
                            EvalCondition(*c.children[0], source, semantics));
      return !inner;
    }
    case Condition::Kind::kAnd: {
      for (const auto& child : c.children) {
        TOSS_ASSIGN_OR_RETURN(bool v,
                              EvalCondition(*child, source, semantics));
        if (!v) return false;
      }
      return true;
    }
    case Condition::Kind::kOr: {
      for (const auto& child : c.children) {
        TOSS_ASSIGN_OR_RETURN(bool v,
                              EvalCondition(*child, source, semantics));
        if (v) return true;
      }
      return false;
    }
    case Condition::Kind::kAtom: {
      TOSS_ASSIGN_OR_RETURN(TermValue x, EvalTerm(c.lhs, source));
      TOSS_ASSIGN_OR_RETURN(TermValue y, EvalTerm(c.rhs, source));
      switch (c.op) {
        case CondOp::kEq:
        case CondOp::kNeq:
        case CondOp::kLt:
        case CondOp::kLeq:
        case CondOp::kGt:
        case CondOp::kGeq:
          return semantics.Compare(x, c.op, y);
        case CondOp::kSimilar:
          return semantics.Similar(x, y);
        case CondOp::kIsa:
          return semantics.Related("isa", x, y);
        case CondOp::kPartOf:
          return semantics.Related("partof", x, y);
        case CondOp::kInstanceOf:
          return semantics.InstanceOf(x, y);
        case CondOp::kSubtypeOf:
          return semantics.SubtypeOf(x, y);
        case CondOp::kBelow: {
          // X below Y := X instance_of Y or X subtype_of Y (paper 5.1.1).
          TOSS_ASSIGN_OR_RETURN(bool inst, semantics.InstanceOf(x, y));
          if (inst) return true;
          return semantics.SubtypeOf(x, y);
        }
        case CondOp::kAbove: {
          // X above Y := Y below X.
          TOSS_ASSIGN_OR_RETURN(bool inst, semantics.InstanceOf(y, x));
          if (inst) return true;
          return semantics.SubtypeOf(y, x);
        }
      }
      return Status::Internal("unreachable operator");
    }
  }
  return Status::Internal("unreachable condition kind");
}

}  // namespace toss::tax
