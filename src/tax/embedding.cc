#include "tax/embedding.h"

#include <algorithm>

namespace toss::tax {

namespace {

/// Atoms usable as per-node candidate filters: atoms in conjunctive context
/// referencing exactly one pattern label.
void CollectSingleLabelAtoms(
    const Condition& c,
    std::map<int, std::vector<const Condition*>>* by_label) {
  if (c.kind == Condition::Kind::kAnd) {
    for (const auto& child : c.children) {
      CollectSingleLabelAtoms(*child, by_label);
    }
    return;
  }
  if (c.kind != Condition::Kind::kAtom) return;
  auto labels = c.ReferencedLabels();
  if (labels.size() == 1) {
    (*by_label)[labels[0]].push_back(&c);
  }
}

class Enumerator {
 public:
  Enumerator(const PatternTree& pattern, const DataTree& tree,
             const ConditionSemantics& semantics)
      : pattern_(pattern), tree_(tree), semantics_(semantics) {
    CollectSingleLabelAtoms(pattern.condition(), &prefilters_);
  }

  Result<std::vector<Embedding>> Run() {
    if (pattern_.empty() || tree_.empty()) return std::vector<Embedding>{};
    TOSS_RETURN_NOT_OK(Assign(0));
    return std::move(results_);
  }

 private:
  /// Checks the prefilter atoms of `label` against a partial mapping that
  /// already contains `label`.
  Result<bool> PassesPrefilters(int label) {
    auto it = prefilters_.find(label);
    if (it == prefilters_.end()) return true;
    EmbeddingView view{&tree_, &current_.mapping};
    for (const Condition* atom : it->second) {
      TOSS_ASSIGN_OR_RETURN(bool ok, EvalCondition(*atom, view, semantics_));
      if (!ok) return false;
    }
    return true;
  }

  Status Assign(size_t index) {
    if (index == pattern_.node_count()) {
      EmbeddingView view{&tree_, &current_.mapping};
      TOSS_ASSIGN_OR_RETURN(
          bool ok, EvalCondition(pattern_.condition(), view, semantics_));
      if (ok) results_.push_back(current_);
      return Status::OK();
    }
    const PatternNode& pnode = pattern_.node(index);
    std::vector<NodeId> candidates;
    if (pnode.parent < 0) {
      // Root: any data node.
      candidates.reserve(tree_.size());
      for (NodeId v = 0; v < tree_.size(); ++v) candidates.push_back(v);
    } else {
      NodeId parent_image =
          current_.mapping.at(pattern_.node(pnode.parent).label);
      if (pnode.edge_from_parent == EdgeKind::kPc) {
        candidates = tree_.node(parent_image).children;
      } else {
        candidates = tree_.Descendants(parent_image);
      }
    }
    for (NodeId cand : candidates) {
      current_.mapping[pnode.label] = cand;
      TOSS_ASSIGN_OR_RETURN(bool pass, PassesPrefilters(pnode.label));
      if (pass) {
        TOSS_RETURN_NOT_OK(Assign(index + 1));
      }
      current_.mapping.erase(pnode.label);
    }
    return Status::OK();
  }

  const PatternTree& pattern_;
  const DataTree& tree_;
  const ConditionSemantics& semantics_;
  std::map<int, std::vector<const Condition*>> prefilters_;
  Embedding current_;
  std::vector<Embedding> results_;
};

void BuildWitness(const DataTree& src, NodeId src_id,
                  const std::set<NodeId>& witness_nodes,
                  const std::set<NodeId>& expand_nodes, DataTree* out,
                  NodeId out_parent) {
  bool is_witness = witness_nodes.count(src_id) > 0;
  NodeId next_parent = out_parent;
  if (is_witness) {
    if (expand_nodes.count(src_id)) {
      // SL semantics: the whole data subtree comes along.
      out->CopySubtree(src, src_id, out_parent);
      return;
    }
    const DataNode& n = src.node(src_id);
    NodeId id = (out_parent == kInvalidNode)
                    ? out->CreateRoot(n.tag, n.content)
                    : out->AppendChild(out_parent, n.tag, n.content);
    out->node(id).tag_type = n.tag_type;
    out->node(id).content_type = n.content_type;
    out->node(id).provenance = n.provenance;
    next_parent = id;
  }
  for (NodeId c : src.node(src_id).children) {
    BuildWitness(src, c, witness_nodes, expand_nodes, out, next_parent);
  }
}

}  // namespace

Result<std::vector<Embedding>> FindEmbeddings(
    const PatternTree& pattern, const DataTree& tree,
    const ConditionSemantics& semantics) {
  TOSS_RETURN_NOT_OK(pattern.Validate());
  return Enumerator(pattern, tree, semantics).Run();
}

DataTree BuildWitnessTree(const PatternTree& pattern, const DataTree& tree,
                          const Embedding& h,
                          const std::set<int>& expand_labels) {
  std::set<NodeId> witness_nodes;
  for (const auto& [label, node] : h.mapping) witness_nodes.insert(node);
  std::set<NodeId> expand_nodes;
  for (int label : expand_labels) {
    auto it = h.mapping.find(label);
    if (it != h.mapping.end()) expand_nodes.insert(it->second);
  }
  DataTree out;
  // The pattern root's image is an ancestor-or-self of every image node, so
  // starting the walk there covers the whole witness set.
  NodeId start = h.mapping.at(pattern.node(0).label);
  (void)pattern;
  BuildWitness(tree, start, witness_nodes, expand_nodes, &out, kInvalidNode);
  return out;
}

}  // namespace toss::tax
