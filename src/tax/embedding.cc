#include "tax/embedding.h"

#include <algorithm>
#include <map>

namespace toss::tax {

namespace {

/// Atoms usable as per-node candidate filters: atoms in conjunctive context
/// referencing exactly one pattern label.
void CollectSingleLabelAtoms(
    const Condition& c,
    std::map<int, std::vector<const Condition*>>* by_label) {
  if (c.kind == Condition::Kind::kAnd) {
    for (const auto& child : c.children) {
      CollectSingleLabelAtoms(*child, by_label);
    }
    return;
  }
  if (c.kind != Condition::Kind::kAtom) return;
  auto labels = c.ReferencedLabels();
  if (labels.size() == 1) {
    (*by_label)[labels[0]].push_back(&c);
  }
}

/// True when `atom` is `$n.tag = "literal"` (either orientation) with a
/// plain string literal whose exact-string evaluation cannot error and
/// cannot involve glob matching on the literal side. Mirrors the executor's
/// pushdown policy: atoms whose evaluation may raise (typed literals) or
/// match non-textually ('*' literals) never participate in pruning.
bool ExactTagLiteral(const Condition& atom, int* label, std::string* tag) {
  if (atom.op != CondOp::kEq) return false;
  const CondTerm *node = nullptr, *lit = nullptr;
  if (atom.lhs.kind == CondTerm::Kind::kNodeTag &&
      atom.rhs.kind == CondTerm::Kind::kTypedValue) {
    node = &atom.lhs;
    lit = &atom.rhs;
  } else if (atom.rhs.kind == CondTerm::Kind::kNodeTag &&
             atom.lhs.kind == CondTerm::Kind::kTypedValue) {
    node = &atom.rhs;
    lit = &atom.lhs;
  } else {
    return false;
  }
  if (!lit->value_type.empty() && lit->value_type != kStringType) {
    return false;  // typed literal: comparison may convert or error
  }
  if (lit->text.find('*') != std::string::npos) return false;
  *label = node->node_label;
  *tag = lit->text;
  return true;
}

class Enumerator {
 public:
  Enumerator(const PatternTree& pattern, const DataTree& tree,
             const ConditionSemantics& semantics,
             const EmbeddingOptions& options)
      : pattern_(pattern), tree_(tree), semantics_(semantics) {
    prefilters_ = CollectConjunctivePrefilters(pattern.condition());
    if (options.use_tag_index && tree.TagFilterable()) {
      tag_filters_ = CollectConjunctiveTagFilters(pattern.condition());
      BuildIdFilters();
    }
  }

  /// Partial-match mode: assigns only `subset` (ascending pattern indexes
  /// forming the subtree of subset[0]) and collects image tuples instead of
  /// running the final condition check. Tag filtering is always on -- the
  /// join engine only targets filterable trees.
  Enumerator(const PatternTree& pattern, const std::vector<size_t>& subset,
             bool head_must_be_root, const DataTree& tree,
             const ConditionSemantics& semantics)
      : pattern_(pattern),
        tree_(tree),
        semantics_(semantics),
        subset_(&subset),
        head_must_be_root_(head_must_be_root) {
    prefilters_ = CollectConjunctivePrefilters(pattern.condition());
    if (tree.TagFilterable()) {
      tag_filters_ = CollectConjunctiveTagFilters(pattern.condition());
      BuildIdFilters();
    }
  }

  Result<std::vector<Embedding>> Run() {
    if (pattern_.empty() || tree_.empty()) return std::vector<Embedding>{};
    TOSS_RETURN_NOT_OK(Assign(0));
    return std::move(results_);
  }

  Result<std::vector<std::vector<NodeId>>> RunPartial() {
    if (pattern_.empty() || tree_.empty()) {
      return std::vector<std::vector<NodeId>>{};
    }
    TOSS_RETURN_NOT_OK(Assign(0));
    return std::move(tuples_);
  }

 private:
  const std::set<std::string>* FilterFor(int label) const {
    auto it = tag_filters_.find(label);
    return it == tag_filters_.end() ? nullptr : &it->second;
  }

  /// Lowers each string filter to a sorted SymbolId list when the tree
  /// carries per-node ids. BuildTagIndex interned every data tag, so a
  /// literal the dictionary has never seen matches no node and is dropped;
  /// an entry can therefore legitimately be empty (only '*' tags remain
  /// candidates).
  void BuildIdFilters() {
    if (!tree_.HasSymbolIds() || !SymbolFastPathsEnabled()) return;
    Interner& interner = Interner::Global();
    for (const auto& [label, tags] : tag_filters_) {
      std::vector<SymbolId> ids;
      ids.reserve(tags.size());
      for (const std::string& tag : tags) {
        if (auto sym = interner.Find(tag)) ids.push_back(*sym);
      }
      std::sort(ids.begin(), ids.end());
      tag_filter_ids_.emplace(label, std::move(ids));
    }
  }

  const std::vector<SymbolId>* IdFilterFor(int label) const {
    auto it = tag_filter_ids_.find(label);
    return it == tag_filter_ids_.end() ? nullptr : &it->second;
  }

  /// Id-space TagAllowed: one array load + binary search over u32s.
  bool TagAllowedId(NodeId v, const std::vector<SymbolId>& allowed) const {
    SymbolId t = tree_.TagId(v);
    return std::binary_search(allowed.begin(), allowed.end(), t) ||
           Interner::Global().HasStar(t);
  }

  /// Id-space SeedFromIndex (same ordering contract).
  std::vector<NodeId> SeedFromIndexIds(const std::vector<SymbolId>& allowed,
                                       NodeId lo, NodeId hi) const {
    std::vector<NodeId> out;
    auto take = [&](const std::vector<NodeId>& list) {
      auto begin = std::lower_bound(list.begin(), list.end(), lo);
      auto end = std::lower_bound(begin, list.end(), hi);
      out.insert(out.end(), begin, end);
    };
    for (SymbolId tag : allowed) {
      if (const std::vector<NodeId>* list = tree_.NodesWithTagId(tag)) {
        take(*list);
      }
    }
    take(tree_.WildcardTagNodes());
    std::sort(out.begin(), out.end());
    return out;
  }

  /// A node stays a candidate when its tag is allowed, or contains '*'
  /// (glob equality lets a data-side wildcard match any literal).
  bool TagAllowed(NodeId v, const std::set<std::string>& allowed) const {
    const std::string& t = tree_.node(v).tag;
    return allowed.count(t) > 0 || t.find('*') != std::string::npos;
  }

  /// Index-seeded candidates with ids in [lo, hi), ascending. Per-tag lists
  /// are disjoint ('*'-free literals never collide with wildcard tags), so
  /// a concatenate-and-sort merge is exact.
  std::vector<NodeId> SeedFromIndex(const std::set<std::string>& allowed,
                                    NodeId lo, NodeId hi) const {
    std::vector<NodeId> out;
    auto take = [&](const std::vector<NodeId>& list) {
      auto begin = std::lower_bound(list.begin(), list.end(), lo);
      auto end = std::lower_bound(begin, list.end(), hi);
      out.insert(out.end(), begin, end);
    };
    for (const std::string& tag : allowed) {
      if (const std::vector<NodeId>* list = tree_.NodesWithTag(tag)) {
        take(*list);
      }
    }
    take(tree_.WildcardTagNodes());
    std::sort(out.begin(), out.end());
    return out;
  }

  /// Checks the prefilter atoms of `label` against a partial mapping that
  /// already contains `label`.
  Result<bool> PassesPrefilters(int label) {
    auto it = prefilters_.find(label);
    if (it == prefilters_.end()) return true;
    EmbeddingView view{&tree_, &current_.mapping};
    for (const Condition* atom : it->second) {
      TOSS_ASSIGN_OR_RETURN(bool ok, EvalCondition(*atom, view, semantics_));
      if (!ok) return false;
    }
    return true;
  }

  size_t SlotCount() const {
    return subset_ != nullptr ? subset_->size() : pattern_.node_count();
  }

  Status Assign(size_t slot) {
    if (slot == SlotCount()) {
      if (subset_ != nullptr) {
        std::vector<NodeId> tuple(subset_->size());
        for (size_t j = 0; j < subset_->size(); ++j) {
          tuple[j] = current_.mapping.Get(pattern_.node((*subset_)[j]).label);
        }
        tuples_.push_back(std::move(tuple));
        return Status::OK();
      }
      EmbeddingView view{&tree_, &current_.mapping};
      TOSS_ASSIGN_OR_RETURN(
          bool ok, EvalCondition(pattern_.condition(), view, semantics_));
      if (ok) results_.push_back(current_);
      return Status::OK();
    }
    const size_t index = subset_ != nullptr ? (*subset_)[slot] : slot;
    const PatternNode& pnode = pattern_.node(index);
    const std::set<std::string>* allowed = FilterFor(pnode.label);
    // Non-null only when `allowed` is non-null and the tree carries ids;
    // the id path computes the same candidate sets as the string path.
    const std::vector<SymbolId>* allowed_ids = IdFilterFor(pnode.label);
    auto node_allowed = [&](NodeId v) {
      return allowed_ids != nullptr ? TagAllowedId(v, *allowed_ids)
                                    : TagAllowed(v, *allowed);
    };
    auto seed = [&](NodeId lo, NodeId hi) {
      return allowed_ids != nullptr ? SeedFromIndexIds(*allowed_ids, lo, hi)
                                    : SeedFromIndex(*allowed, lo, hi);
    };
    const bool is_head = subset_ != nullptr ? slot == 0 : pnode.parent < 0;
    // Candidate enumeration order always matches the naive scan (ascending
    // ids at the root, child order on pc edges, preorder on ad edges), so
    // pruning never reorders the resulting embeddings.
    std::vector<NodeId> candidates;
    if (is_head && subset_ != nullptr && head_must_be_root_) {
      // The head hangs off the elided product root by a pc edge, so within
      // this operand tree its image can only be the root -- subject to the
      // same tag filter any pc candidate faces.
      if (allowed == nullptr || node_allowed(0)) {
        candidates.push_back(0);
      }
    } else if (is_head) {
      if (allowed != nullptr) {
        candidates = seed(0, static_cast<NodeId>(tree_.size()));
      } else {
        candidates.reserve(tree_.size());
        for (NodeId v = 0; v < tree_.size(); ++v) candidates.push_back(v);
      }
    } else {
      NodeId parent_image =
          current_.mapping.Get(pattern_.node(pnode.parent).label);
      if (pnode.edge_from_parent == EdgeKind::kPc) {
        const std::vector<NodeId>& kids = tree_.node(parent_image).children;
        if (allowed != nullptr) {
          for (NodeId c : kids) {
            if (node_allowed(c)) candidates.push_back(c);
          }
        } else {
          candidates = kids;
        }
      } else if (allowed != nullptr && tree_.HasPreorderIds()) {
        // Preorder ids: the subtree is a contiguous range, and ascending id
        // order within it *is* preorder, so the index prunes ad edges too.
        candidates = seed(parent_image + 1, tree_.SubtreeEnd(parent_image));
      } else if (allowed != nullptr) {
        for (NodeId v : tree_.Descendants(parent_image)) {
          if (node_allowed(v)) candidates.push_back(v);
        }
      } else {
        candidates = tree_.Descendants(parent_image);
      }
    }
    for (NodeId cand : candidates) {
      current_.mapping.Set(pnode.label, cand);
      TOSS_ASSIGN_OR_RETURN(bool pass, PassesPrefilters(pnode.label));
      if (pass) {
        TOSS_RETURN_NOT_OK(Assign(slot + 1));
      }
      current_.mapping.Erase(pnode.label);
    }
    return Status::OK();
  }

  const PatternTree& pattern_;
  const DataTree& tree_;
  const ConditionSemantics& semantics_;
  const std::vector<size_t>* subset_ = nullptr;  ///< partial-match mode
  bool head_must_be_root_ = false;
  std::map<int, std::vector<const Condition*>> prefilters_;
  std::map<int, std::set<std::string>> tag_filters_;
  std::map<int, std::vector<SymbolId>> tag_filter_ids_;  ///< see BuildIdFilters
  Embedding current_;
  std::vector<Embedding> results_;
  std::vector<std::vector<NodeId>> tuples_;
};

}  // namespace

void AppendWitness(const DataTree& src, NodeId src_id,
                   const std::set<NodeId>& witness_nodes,
                   const std::set<NodeId>& expand_nodes, DataTree* out,
                   NodeId out_parent) {
  bool is_witness = witness_nodes.count(src_id) > 0;
  NodeId next_parent = out_parent;
  if (is_witness) {
    if (expand_nodes.count(src_id)) {
      // SL semantics: the whole data subtree comes along.
      out->CopySubtree(src, src_id, out_parent);
      return;
    }
    const DataNode& n = src.node(src_id);
    NodeId id = (out_parent == kInvalidNode)
                    ? out->CreateRoot(n.tag, n.content)
                    : out->AppendChild(out_parent, n.tag, n.content);
    out->node(id).tag_type = n.tag_type;
    out->node(id).content_type = n.content_type;
    out->node(id).provenance = n.provenance;
    next_parent = id;
  }
  for (NodeId c : src.node(src_id).children) {
    AppendWitness(src, c, witness_nodes, expand_nodes, out, next_parent);
  }
}

std::map<int, std::vector<const Condition*>> CollectConjunctivePrefilters(
    const Condition& condition) {
  std::map<int, std::vector<const Condition*>> out;
  CollectSingleLabelAtoms(condition, &out);
  return out;
}

namespace {

void RestrictFilter(std::map<int, std::set<std::string>>* filters, int label,
                    std::set<std::string> tags) {
  auto [it, inserted] = filters->emplace(label, std::move(tags));
  if (inserted) return;
  std::set<std::string> merged;
  std::set_intersection(it->second.begin(), it->second.end(), tags.begin(),
                        tags.end(), std::inserter(merged, merged.begin()));
  it->second = std::move(merged);
}

void CollectTagFiltersRec(const Condition& c,
                          std::map<int, std::set<std::string>>* filters) {
  if (c.kind == Condition::Kind::kAnd) {
    for (const auto& child : c.children) CollectTagFiltersRec(*child, filters);
    return;
  }
  int label = 0;
  std::string tag;
  if (c.kind == Condition::Kind::kAtom) {
    if (ExactTagLiteral(c, &label, &tag)) {
      RestrictFilter(filters, label, {std::move(tag)});
    }
    return;
  }
  if (c.kind != Condition::Kind::kOr || c.children.empty()) return;
  std::set<std::string> tags;
  int common_label = 0;
  for (const auto& child : c.children) {
    if (child->kind != Condition::Kind::kAtom ||
        !ExactTagLiteral(*child, &label, &tag)) {
      return;
    }
    if (tags.empty()) {
      common_label = label;
    } else if (label != common_label) {
      return;
    }
    tags.insert(std::move(tag));
  }
  RestrictFilter(filters, common_label, std::move(tags));
}

}  // namespace

std::map<int, std::set<std::string>> CollectConjunctiveTagFilters(
    const Condition& condition) {
  std::map<int, std::set<std::string>> out;
  CollectTagFiltersRec(condition, &out);
  return out;
}

Result<std::vector<std::vector<NodeId>>> FindPartialMatches(
    const PatternTree& pattern, size_t head, const DataTree& tree,
    const ConditionSemantics& semantics, const PartialMatchOptions& options) {
  TOSS_RETURN_NOT_OK(pattern.Validate());
  // Subtree indexes, ascending: parents precede children in pattern-index
  // order, so ascending order is exactly the relative order the full
  // enumeration assigns these nodes in.
  std::vector<size_t> subset;
  std::vector<size_t> stack{head};
  while (!stack.empty()) {
    size_t cur = stack.back();
    stack.pop_back();
    subset.push_back(cur);
    for (int c : pattern.node(cur).children) {
      stack.push_back(static_cast<size_t>(c));
    }
  }
  std::sort(subset.begin(), subset.end());
  return Enumerator(pattern, subset, options.head_must_be_root, tree,
                    semantics)
      .RunPartial();
}

Result<std::vector<Embedding>> FindEmbeddings(
    const PatternTree& pattern, const DataTree& tree,
    const ConditionSemantics& semantics) {
  return FindEmbeddings(pattern, tree, semantics, EmbeddingOptions{});
}

Result<std::vector<Embedding>> FindEmbeddings(
    const PatternTree& pattern, const DataTree& tree,
    const ConditionSemantics& semantics, const EmbeddingOptions& options) {
  TOSS_RETURN_NOT_OK(pattern.Validate());
  return Enumerator(pattern, tree, semantics, options).Run();
}

DataTree BuildWitnessTree(const PatternTree& pattern, const DataTree& tree,
                          const Embedding& h,
                          const std::set<int>& expand_labels) {
  std::set<NodeId> witness_nodes;
  for (const auto& [label, node] : h.mapping) witness_nodes.insert(node);
  std::set<NodeId> expand_nodes;
  for (int label : expand_labels) {
    NodeId mapped = h.mapping.Get(label);
    if (mapped != kInvalidNode) expand_nodes.insert(mapped);
  }
  DataTree out;
  // The pattern root's image is an ancestor-or-self of every image node, so
  // starting the walk there covers the whole witness set.
  NodeId start = h.mapping.Get(pattern.node(0).label);
  AppendWitness(tree, start, witness_nodes, expand_nodes, &out, kInvalidNode);
  return out;
}

}  // namespace toss::tax
