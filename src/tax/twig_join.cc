#include "tax/twig_join.h"

#include <algorithm>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "tax/embedding.h"
#include "tax/label_map.h"
#include "tax/operators.h"

namespace toss::tax {

namespace {

/// Posting lists beyond this size cost more to materialize and merge than
/// the pairwise scan they replace; the executor falls back for the join.
constexpr size_t kMaxPostingsPerSubtree = 100000;

/// TwigValueFilter caps. The value universe bounds every bitset (and the
/// compat closure is universe^2 bits at worst); free-pair checks invoke the
/// oracle's measure fallback, the one per-pair cost that is not a cheap
/// intersection. Beyond either cap the filter build bails and the join
/// runs unfiltered.
constexpr size_t kMaxFilterValues = 4096;
constexpr uint64_t kMaxFreePairChecks = uint64_t{1} << 20;
constexpr uint64_t kMaxBucketPairWork = uint64_t{1} << 24;

inline void SetBit(std::vector<uint64_t>& bits, uint32_t i) {
  bits[i >> 6] |= uint64_t{1} << (i & 63u);
}

inline void OrInto(std::vector<uint64_t>& dst,
                   const std::vector<uint64_t>& src) {
  for (size_t w = 0; w < dst.size(); ++w) dst[w] |= src[w];
}

inline bool Intersects(const std::vector<uint64_t>& a,
                       const std::vector<uint64_t>& b) {
  for (size_t w = 0; w < a.size(); ++w) {
    if ((a[w] & b[w]) != 0) return true;
  }
  return false;
}

/// Mirrors the per-part dedup of JoinTreeWithRight: empty trees dropped,
/// first occurrence of a canonical key wins.
class PartDedup {
 public:
  void Add(DataTree tree, TreeCollection* out) {
    if (tree.empty()) return;
    if (seen_.insert(tree.CanonicalKey()).second) {
      out->push_back(std::move(tree));
    }
  }

  void AddCopy(const DataTree& tree, const std::string& key,
               TreeCollection* out) {
    if (tree.empty()) return;
    if (seen_.insert(key).second) out->push_back(tree);
  }

 private:
  std::unordered_set<std::string> seen_;
};

}  // namespace

/// Per-(left, pair) merge state: replays the product tree's backtracking
/// over the concatenated posting lists. For each pattern position the
/// current "run" of a subtree's stream is the contiguous range of tuples
/// agreeing with every image chosen so far; assigning the position splits
/// the run into maximal groups of equal (side, image) -- the product
/// enumeration's candidate list, with equal candidates collapsed. Left
/// tuples precede right tuples (product ids order the left copy first), so
/// runs never need to interleave sides.
class TwigMerger {
 public:
  TwigMerger(const TwigJoiner& plan, const TwigDoc& left,
             const CancelToken* cancel, TwigJoinStats* stats,
             PartDedup* dedup, TreeCollection* out)
      : plan_(plan),
        left_(left),
        cancel_(cancel),
        stats_(stats),
        dedup_(dedup),
        out_(out) {}

  Status MergePair(const TwigDoc& right) {
    right_ = &right;
    pair_witness_added_ = false;
    const size_t n = plan_.subtrees_.size();
    runs_.assign(n, Run{});
    for (size_t s = 0; s < n; ++s) {
      runs_[s] = Run{0, left_.tuples[s].size() + right.tuples[s].size()};
      // An empty stream admits no complete mapping; the product enumeration
      // would produce nothing for this pair either.
      if (runs_[s].lo == runs_[s].hi) return Status::OK();
    }
    return Walk(1);
  }

  /// Folds the locally accumulated counters into the shared stats (one
  /// atomic round-trip per part instead of per advance).
  void Flush() {
    stats_->stream_advances.fetch_add(advances_, std::memory_order_relaxed);
    stats_->stack_pushes.fetch_add(pushes_, std::memory_order_relaxed);
    stats_->combos_checked.fetch_add(checked_, std::memory_order_relaxed);
    stats_->combos_emitted.fetch_add(emitted_, std::memory_order_relaxed);
    advances_ = pushes_ = checked_ = emitted_ = 0;
  }

 private:
  struct Run {
    size_t lo = 0;
    size_t hi = 0;
  };

  /// Resolves pattern labels against the current (complete) mapping: the
  /// root is the synthetic product node, every other label reads its
  /// subtree's singleton run.
  class ComboSource final : public NodeSource {
   public:
    explicit ComboSource(const TwigMerger& m) : m_(m) {}
    const DataNode* Resolve(int label) const override {
      return ResolveIds(label).node;
    }
    ResolvedNode ResolveIds(int label) const override {
      ResolvedNode r;
      if (label == m_.plan_.root_label_) {
        r.node = &m_.plan_.product_root_.node(0);
        return r;
      }
      const std::vector<int>& map = m_.plan_.label_to_index_;
      const int idx =
          (label >= 0 && label < static_cast<int>(map.size())) ? map[label]
                                                               : -1;
      if (idx <= 0) return r;
      const TwigJoiner::Slot& slot = m_.plan_.slots_[idx];
      const size_t i = m_.runs_[slot.subtree].lo;
      const DataTree& tree = m_.OnLeft(slot.subtree, i)
                                 ? *m_.left_.tree
                                 : *m_.right_->tree;
      const NodeId v = m_.Tuple(slot.subtree, i)[slot.depth];
      r.node = &tree.node(v);
      if (tree.HasSymbolIds()) {
        r.tag_symbol = tree.TagId(v);
        r.content_symbol = tree.ContentId(v);
      }
      return r;
    }

   private:
    const TwigMerger& m_;
  };

  const std::vector<NodeId>& Tuple(size_t s, size_t i) const {
    const auto& lt = left_.tuples[s];
    return i < lt.size() ? lt[i] : right_->tuples[s][i - lt.size()];
  }

  bool OnLeft(size_t s, size_t i) const {
    return i < left_.tuples[s].size();
  }

  Status Walk(size_t pos) {
    if (pos == plan_.pattern_->node_count()) return EmitCombo();
    const TwigJoiner::Slot& slot = plan_.slots_[pos];
    const Run saved = runs_[slot.subtree];
    size_t j = saved.lo;
    while (j < saved.hi) {
      // The maximal group of tuples sharing this position's image. Equal
      // NodeIds across the side boundary are distinct data nodes, hence
      // the side check; within one side a group is one product candidate.
      const bool side = OnLeft(slot.subtree, j);
      const NodeId v = Tuple(slot.subtree, j)[slot.depth];
      size_t e = j + 1;
      while (e < saved.hi && OnLeft(slot.subtree, e) == side &&
             Tuple(slot.subtree, e)[slot.depth] == v) {
        ++e;
      }
      advances_ += e - j;
      ++pushes_;
      if ((++ticks_ & 1023u) == 0) {
        TOSS_RETURN_NOT_OK(CheckCancel(cancel_));
      }
      runs_[slot.subtree] = Run{j, e};
      Status st = Walk(pos + 1);
      runs_[slot.subtree] = saved;
      TOSS_RETURN_NOT_OK(st);
      j = e;
    }
    return Status::OK();
  }

  Status EmitCombo() {
    ++checked_;
    TOSS_ASSIGN_OR_RETURN(bool ok, EvalEntries());
    if (!ok) return Status::OK();
    ++emitted_;
    if (plan_.root_in_expand_) {
      // The root is SL-expanded: its image's data subtree -- the entire
      // product tree -- is the witness. All of a pair's mappings share it;
      // build it once, let the dedup collapse the repeats (but keep
      // evaluating mappings: a later one may raise).
      if (!pair_witness_added_) {
        DataTree w;
        NodeId root = w.CreateRoot(kProductRootTag);
        w.CopySubtree(*left_.tree, left_.tree->root(), root);
        w.CopySubtree(*right_->tree, right_->tree->root(), root);
        dedup_->Add(std::move(w), out_);
        pair_witness_added_ = true;
      }
      return Status::OK();
    }
    // Witness = fresh product root + each side's induced witness, the same
    // two-child walk BuildWitnessTree performs on the materialized product
    // tree. A side with no image nodes contributes nothing, so its walk is
    // skipped (it may not even be decoded, for store-pruned documents).
    std::set<NodeId> wit[2], exp[2];  // [0] left operand, [1] right
    for (size_t s = 0; s < plan_.subtrees_.size(); ++s) {
      const size_t i = runs_[s].lo;
      std::set<NodeId>& w = wit[OnLeft(s, i) ? 0 : 1];
      for (NodeId v : Tuple(s, i)) w.insert(v);
    }
    for (int label : plan_.expand_) {
      const std::vector<int>& map = plan_.label_to_index_;
      const int idx =
          (label >= 0 && label < static_cast<int>(map.size())) ? map[label]
                                                               : -1;
      if (idx <= 0) continue;  // not a pattern node: nothing to expand
      const TwigJoiner::Slot& slot = plan_.slots_[idx];
      const size_t i = runs_[slot.subtree].lo;
      exp[OnLeft(slot.subtree, i) ? 0 : 1].insert(
          Tuple(slot.subtree, i)[slot.depth]);
    }
    DataTree w;
    NodeId root = w.CreateRoot(kProductRootTag);
    if (!wit[0].empty()) {
      AppendWitness(*left_.tree, left_.tree->root(), wit[0], exp[0], &w, root);
    }
    if (!wit[1].empty()) {
      AppendWitness(*right_->tree, right_->tree->root(), wit[1], exp[1], &w,
                    root);
    }
    dedup_->Add(std::move(w), out_);
    return Status::OK();
  }

  /// The per-mapping residue: conjunctive leaves in pushdown order with
  /// short-circuit, skipping what posting construction already enforced.
  Result<bool> EvalEntries() {
    ComboSource src(*this);
    for (const TwigJoiner::PlanEntry& e : plan_.entries_) {
      switch (e.kind) {
        case TwigJoiner::EntryKind::kKnownTrue:
          break;
        case TwigJoiner::EntryKind::kCachedSimilar: {
          TOSS_ASSIGN_OR_RETURN(TermValue x, EvalTerm(e.cond->lhs, src));
          TOSS_ASSIGN_OR_RETURN(TermValue y, EvalTerm(e.cond->rhs, src));
          if (!plan_.oracle_->SimilarSym(x.symbol, x.text, y.symbol,
                                         y.text)) {
            return false;
          }
          break;
        }
        case TwigJoiner::EntryKind::kGeneric: {
          TOSS_ASSIGN_OR_RETURN(
              bool ok, EvalCondition(*e.cond, src, *plan_.semantics_));
          if (!ok) return false;
          break;
        }
      }
    }
    return true;
  }

  const TwigJoiner& plan_;
  const TwigDoc& left_;
  const TwigDoc* right_ = nullptr;
  const CancelToken* cancel_;
  TwigJoinStats* stats_;
  PartDedup* dedup_;
  TreeCollection* out_;
  std::vector<Run> runs_;
  bool pair_witness_added_ = false;
  uint64_t advances_ = 0;
  uint64_t pushes_ = 0;
  uint64_t checked_ = 0;
  uint64_t emitted_ = 0;
  uint64_t ticks_ = 0;  ///< cancellation cadence
};

std::unique_ptr<TwigJoiner> TwigJoiner::Plan(
    const PatternTree& pattern, const std::set<int>& expand,
    const ConditionSemantics& semantics, const SimilarOracle* oracle) {
  if (pattern.empty() || pattern.node(0).children.empty()) return nullptr;
  std::unique_ptr<TwigJoiner> j(new TwigJoiner());
  j->pattern_ = &pattern;
  j->expand_ = expand;
  j->semantics_ = &semantics;
  j->oracle_ = oracle;
  const PatternNode& root = pattern.node(0);
  j->root_label_ = root.label;
  j->root_in_expand_ = expand.count(root.label) > 0;
  // The synthetic product root: same defaults CreateRoot gives the real
  // product tree's root (string types, empty content, no provenance).
  j->product_root_.CreateRoot(kProductRootTag);
  j->tag_filters_ = CollectConjunctiveTagFilters(pattern.condition());
  j->prefilters_ = CollectConjunctivePrefilters(pattern.condition());
  auto f0 = j->tag_filters_.find(root.label);
  j->root_tag_allowed_ = f0 == j->tag_filters_.end() ||
                         f0->second.count(kProductRootTag) > 0;
  int max_label = 0;
  for (size_t i = 0; i < pattern.node_count(); ++i) {
    max_label = std::max(max_label, pattern.node(i).label);
  }
  j->label_to_index_.assign(static_cast<size_t>(max_label) + 1, -1);
  for (size_t i = 0; i < pattern.node_count(); ++i) {
    const int label = pattern.node(i).label;
    if (label >= 0) j->label_to_index_[label] = static_cast<int>(i);
  }
  // Decompose into the root's child subtrees and map every pattern index to
  // its (stream, tuple-slot) coordinate. Ascending subtree indexes are the
  // relative order the full enumeration assigns them in, so slot depths
  // advance monotonically as the merge walks global positions 1..n-1.
  j->slots_.resize(pattern.node_count());
  for (int child : root.children) {
    Subtree st;
    st.head = static_cast<size_t>(child);
    st.head_must_be_root =
        pattern.node(st.head).edge_from_parent == EdgeKind::kPc;
    std::vector<size_t> stack{st.head};
    while (!stack.empty()) {
      const size_t cur = stack.back();
      stack.pop_back();
      st.indexes.push_back(cur);
      for (int c : pattern.node(cur).children) {
        stack.push_back(static_cast<size_t>(c));
      }
    }
    std::sort(st.indexes.begin(), st.indexes.end());
    for (size_t d = 0; d < st.indexes.size(); ++d) {
      j->slots_[st.indexes[d]] =
          Slot{static_cast<uint32_t>(j->subtrees_.size()),
               static_cast<uint32_t>(d)};
    }
    j->subtrees_.push_back(std::move(st));
  }
  j->FlattenCondition(pattern.condition());
  return j;
}

void TwigJoiner::FlattenCondition(const Condition& c) {
  if (c.kind == Condition::Kind::kAnd) {
    for (const auto& child : c.children) FlattenCondition(*child);
    return;
  }
  PlanEntry e;
  e.cond = &c;
  if (c.kind == Condition::Kind::kTrue) {
    e.kind = EntryKind::kKnownTrue;
  } else if (c.kind == Condition::Kind::kAtom &&
             c.ReferencedLabels().size() == 1) {
    // The single-label conjunctive atoms are exactly the enumerator's
    // prefilters: every posting tuple already passed its nodes' atoms, and
    // the root's are checked once per join (EvalRootPrefilters) before any
    // cross-tree mapping is attempted. Semantics are pure, so skipping the
    // re-evaluation can change neither value nor error behaviour.
    e.kind = EntryKind::kKnownTrue;
  } else if (c.kind == Condition::Kind::kAtom &&
             c.op == CondOp::kSimilar && oracle_ != nullptr) {
    // ~ reads only the term texts and never errors under either semantics,
    // so the memoizing oracle can stand in for it verbatim.
    e.kind = EntryKind::kCachedSimilar;
  } else {
    e.kind = EntryKind::kGeneric;
  }
  entries_.push_back(e);
}

Result<TwigDoc> TwigJoiner::Prepare(std::shared_ptr<const DataTree> tree,
                                    TwigJoinStats* stats) const {
  TwigDoc d;
  d.tree = std::move(tree);
  d.prepared = true;
  // The merge relies on tag pruning being faithful and on interval
  // ancestorship; trees outside that envelope (exotic tag types,
  // non-preorder ids) take the pairwise path. Store-decoded trees always
  // qualify (FromXml builds both).
  if (!d.tree->TagFilterable() || !d.tree->HasPreorderIds()) {
    d.supported = false;
    return d;
  }
  d.tuples.resize(subtrees_.size());
  for (size_t s = 0; s < subtrees_.size(); ++s) {
    PartialMatchOptions opt;
    opt.head_must_be_root = subtrees_[s].head_must_be_root;
    TOSS_ASSIGN_OR_RETURN(
        d.tuples[s], FindPartialMatches(*pattern_, subtrees_[s].head, *d.tree,
                                        *semantics_, opt));
    if (d.tuples[s].size() > kMaxPostingsPerSubtree) {
      // Pathological fan-out: materializing postings would dwarf the
      // pairwise scan they replace.
      d.supported = false;
      return d;
    }
  }
  stats->postings_built.fetch_add(subtrees_.size(),
                                  std::memory_order_relaxed);
  // Embeddings wholly inside this document (the groups whose pattern root
  // maps into one operand) repeat identically in every pair the document
  // participates in; memoize their witnesses once.
  TOSS_ASSIGN_OR_RETURN(std::vector<Embedding> inside,
                        FindEmbeddings(*pattern_, *d.tree, *semantics_));
  d.inside.reserve(inside.size());
  for (const Embedding& h : inside) {
    DataTree w = BuildWitnessTree(*pattern_, *d.tree, h, expand_);
    d.inside_keys.push_back(w.CanonicalKey());
    d.inside.push_back(std::move(w));
  }
  return d;
}

TwigDoc TwigJoiner::PrunedDoc() const {
  TwigDoc d;
  d.tuples.resize(subtrees_.size());
  return d;
}

std::vector<const std::set<std::string>*> TwigJoiner::PruneFilters() const {
  // Soundness (see header): the pairwise enumeration must provably perform
  // ZERO condition evaluations on a skipped document's nodes. Subtree heads
  // need a tag pin (no candidates => no deeper assignments on that side);
  // the root needs either a tag pin of its own or no prefilters at all
  // (unpinned, every node is a root candidate and each would be
  // prefilter-checked). An SL-expanded root embeds whole documents into
  // witnesses, so no document is ever redundant.
  if (root_in_expand_) return {};
  std::vector<const std::set<std::string>*> out;
  for (const Subtree& st : subtrees_) {
    auto it = tag_filters_.find(pattern_->node(st.head).label);
    if (it == tag_filters_.end()) return {};
    out.push_back(&it->second);
  }
  auto f0 = tag_filters_.find(root_label_);
  if (f0 != tag_filters_.end()) {
    out.push_back(&f0->second);
  } else if (prefilters_.count(root_label_) > 0) {
    return {};
  }
  return out;
}

std::vector<std::vector<SymbolId>> TwigJoiner::PruneFilterIds() const {
  std::vector<std::vector<SymbolId>> out;
  Interner& interner = Interner::Global();
  for (const std::set<std::string>* tags : PruneFilters()) {
    std::vector<SymbolId> ids;
    ids.reserve(tags->size());
    for (const std::string& tag : *tags) {
      if (auto sym = interner.Find(tag)) ids.push_back(*sym);
    }
    std::sort(ids.begin(), ids.end());
    out.push_back(std::move(ids));
  }
  return out;
}

bool TwigValueFilter::CanSkipPair(const TwigDoc& left,
                                  const TwigDoc& right) const {
  if (left.value_slot == TwigDoc::kNoValueSlot ||
      right.value_slot == TwigDoc::kNoValueSlot) {
    return false;
  }
  const DocBits& l = docs_[left.value_slot];
  const DocBits& r = docs_[right.value_slot];
  // A mixed mapping places the anchor's lhs slot in one document and its
  // rhs slot in the other; both orientations must be value-incompatible.
  return !Intersects(l.compat_lhs, r.rhs) && !Intersects(r.compat_lhs, l.rhs);
}

std::unique_ptr<TwigValueFilter> TwigJoiner::BuildValueFilter(
    const std::vector<TwigDoc*>& docs) const {
  // Shape gates (soundness; see header). Exactly two subtrees guarantee
  // that every mixed mapping places the anchor's two slots in opposite
  // documents -- with more subtrees a cross-document mapping could still
  // evaluate the anchor within one side.
  if (root_in_expand_ || subtrees_.size() != 2 || oracle_ == nullptr) {
    return nullptr;
  }
  auto index_of = [&](int label) -> int {
    return (label >= 0 && label < static_cast<int>(label_to_index_.size()))
               ? label_to_index_[label]
               : -1;
  };
  auto slot_of = [&](const CondTerm& t, Slot* slot, bool* content) -> bool {
    if (t.kind != CondTerm::Kind::kNodeTag &&
        t.kind != CondTerm::Kind::kNodeContent) {
      return false;
    }
    if (t.node_label == root_label_) return false;
    const int idx = index_of(t.node_label);
    if (idx <= 0) return false;
    *slot = slots_[idx];
    *content = t.kind == CondTerm::Kind::kNodeContent;
    return true;
  };
  // Residue gate: every entry must be provably error-free under a complete
  // mapping (no kGeneric entries; every node term of a ~ atom resolves to
  // a pattern slot or the product root), so a skipped merge cannot
  // suppress an error. Among the ~ atoms, find an anchor joining the two
  // subtrees.
  const Condition* anchor = nullptr;
  Slot lhs_slot{}, rhs_slot{};
  bool lhs_content = false, rhs_content = false;
  for (const PlanEntry& e : entries_) {
    if (e.kind == EntryKind::kKnownTrue) continue;
    if (e.kind == EntryKind::kGeneric) return nullptr;
    for (const CondTerm* t : {&e.cond->lhs, &e.cond->rhs}) {
      if ((t->kind == CondTerm::Kind::kNodeTag ||
           t->kind == CondTerm::Kind::kNodeContent) &&
          t->node_label != root_label_ && index_of(t->node_label) <= 0) {
        return nullptr;  // unresolvable label: evaluation would error
      }
    }
    if (anchor != nullptr) continue;
    Slot sa, sb;
    bool ca, cb;
    if (slot_of(e.cond->lhs, &sa, &ca) && slot_of(e.cond->rhs, &sb, &cb) &&
        sa.subtree != sb.subtree) {
      anchor = e.cond;
      lhs_slot = sa;
      rhs_slot = sb;
      lhs_content = ca;
      rhs_content = cb;
    }
  }
  if (anchor == nullptr) return nullptr;

  // Collect each eligible document's distinct values under the two anchor
  // slots, into one dense value universe. Value identity is text identity
  // (the interned id): ~ verdicts depend only on the texts, so typed
  // contents need no special-casing. Store-pruned documents have empty
  // posting lists and empty sets; documents without symbol ids stay
  // outside the filter (their pairs are never skipped).
  std::vector<SymbolId> values;
  std::unordered_map<SymbolId, uint32_t> dense;
  struct DocSets {
    bool eligible = false;
    std::vector<uint32_t> lhs, rhs;
  };
  std::vector<DocSets> sets(docs.size());
  auto collect = [&](const TwigDoc& d, const Slot& slot, bool content,
                     std::vector<uint32_t>* out) -> bool {
    for (const auto& tuple : d.tuples[slot.subtree]) {
      const NodeId v = tuple[slot.depth];
      const SymbolId sym =
          content ? d.tree->ContentId(v) : d.tree->TagId(v);
      auto [it, inserted] =
          dense.emplace(sym, static_cast<uint32_t>(values.size()));
      if (inserted) {
        if (values.size() >= kMaxFilterValues) return false;
        values.push_back(sym);
      }
      out->push_back(it->second);
    }
    std::sort(out->begin(), out->end());
    out->erase(std::unique(out->begin(), out->end()), out->end());
    return true;
  };
  for (size_t i = 0; i < docs.size(); ++i) {
    const TwigDoc& d = *docs[i];
    if (d.prepared && (d.tree == nullptr || !d.tree->HasSymbolIds())) {
      continue;
    }
    if (d.prepared) {
      if (!collect(d, lhs_slot, lhs_content, &sets[i].lhs) ||
          !collect(d, rhs_slot, rhs_content, &sets[i].rhs)) {
        return nullptr;  // universe cap exceeded
      }
    }
    sets[i].eligible = true;
  }

  // Compatibility closure over the universe: bucketed pairs via the
  // oracle's bucket contract, pairs involving a free value via pairwise
  // SimilarSym. compat[i] bit j <=> Similar(value i, value j); the
  // relation is symmetric, and every value is compatible with itself
  // (equal text).
  const size_t value_count = values.size();
  const size_t words = (value_count + 63) / 64;
  Interner& interner = Interner::Global();
  std::vector<std::string> texts(value_count);
  for (size_t i = 0; i < value_count; ++i) {
    texts[i] = std::string(interner.Text(values[i]));
  }
  std::unordered_map<uint64_t, std::vector<uint32_t>> members;
  std::vector<uint32_t> free_values;
  for (uint32_t i = 0; i < value_count; ++i) {
    std::vector<uint64_t> buckets = oracle_->CompatBuckets(texts[i]);
    if (buckets.empty()) {
      free_values.push_back(i);
    } else {
      for (uint64_t b : buckets) members[b].push_back(i);
    }
  }
  uint64_t bucket_work = 0;
  for (const auto& [b, ms] : members) {
    bucket_work += static_cast<uint64_t>(ms.size()) * ms.size();
  }
  if (bucket_work > kMaxBucketPairWork ||
      static_cast<uint64_t>(free_values.size()) * value_count >
          kMaxFreePairChecks) {
    return nullptr;
  }
  std::vector<TwigValueFilter::Bits> compat(
      value_count, TwigValueFilter::Bits(words, 0));
  for (uint32_t i = 0; i < value_count; ++i) SetBit(compat[i], i);
  for (const auto& [b, ms] : members) {
    for (uint32_t i : ms) {
      for (uint32_t j : ms) SetBit(compat[i], j);
    }
  }
  for (uint32_t i : free_values) {
    for (uint32_t j = 0; j < value_count; ++j) {
      if (j == i) continue;
      if (oracle_->SimilarSym(values[i], texts[i], values[j], texts[j])) {
        SetBit(compat[i], j);
        SetBit(compat[j], i);
      }
    }
  }

  std::unique_ptr<TwigValueFilter> f(new TwigValueFilter());
  f->value_count_ = value_count;
  for (size_t i = 0; i < docs.size(); ++i) {
    if (!sets[i].eligible) continue;
    TwigValueFilter::DocBits db;
    db.rhs.assign(words, 0);
    db.compat_lhs.assign(words, 0);
    for (uint32_t v : sets[i].rhs) SetBit(db.rhs, v);
    for (uint32_t v : sets[i].lhs) OrInto(db.compat_lhs, compat[v]);
    docs[i]->value_slot = static_cast<uint32_t>(f->docs_.size());
    f->docs_.push_back(std::move(db));
  }
  return f;
}

Result<bool> TwigJoiner::EvalRootPrefilters() const {
  auto it = prefilters_.find(root_label_);
  if (it == prefilters_.end()) return true;
  LabelMap mapping;
  mapping.Set(root_label_, 0);
  EmbeddingView view{&product_root_, &mapping};
  for (const Condition* atom : it->second) {
    TOSS_ASSIGN_OR_RETURN(bool ok, EvalCondition(*atom, view, *semantics_));
    if (!ok) return false;
  }
  return true;
}

Result<TreeCollection> TwigJoiner::JoinLeft(
    const TwigDoc& left, const std::vector<const TwigDoc*>& rights,
    bool combos_enabled, bool first_part,
    const TwigValueFilter* value_filter, const CancelToken* cancel,
    TwigJoinStats* stats) const {
  TreeCollection out;
  PartDedup dedup;
  TwigMerger merger(*this, left, cancel, stats, &dedup, &out);
  for (size_t r = 0; r < rights.size(); ++r) {
    TOSS_RETURN_NOT_OK(CheckCancel(cancel));
    const TwigDoc& right = *rights[r];
    if (combos_enabled) {
      // A right document with no postings can only re-derive all-from-left
      // mappings, each already produced by the r == 0 pair with a
      // byte-identical witness -- skipping the walk drops only duplicates.
      // (With an SL-expanded root the witness embeds the right document, so
      // every pair must be walked.)
      bool merge = r == 0 || right.HasPostings() || root_in_expand_;
      bool value_skip = false;
      if (merge && value_filter != nullptr && !first_part && r > 0 &&
          value_filter->CanSkipPair(left, right)) {
        // No mixed mapping can satisfy the anchor ~ atom for this pair,
        // and the pure-side mappings are duplicates: all-left was emitted
        // by this part's r == 0 pair, all-right by the first part (which
        // never value-skips). Nothing this merge could emit survives
        // dedup, and the residue is error-free by construction.
        merge = false;
        value_skip = true;
      }
      if (merge) {
        stats->pairs_scanned.fetch_add(1, std::memory_order_relaxed);
        TOSS_RETURN_NOT_OK(merger.MergePair(right));
      } else if (value_skip) {
        stats->pairs_value_skipped.fetch_add(1, std::memory_order_relaxed);
      } else {
        stats->pairs_pruned.fetch_add(1, std::memory_order_relaxed);
      }
    }
    // Group order within a pair follows ascending root image in the product
    // tree: product root (cross-tree mappings), then the left copy, then
    // the right copy. Left-side embeddings repeat for r > 0 and would be
    // dedup'd, so they are emitted for the first pair only.
    if (r == 0) {
      for (size_t i = 0; i < left.inside.size(); ++i) {
        dedup.AddCopy(left.inside[i], left.inside_keys[i], &out);
      }
    }
    for (size_t i = 0; i < right.inside.size(); ++i) {
      dedup.AddCopy(right.inside[i], right.inside_keys[i], &out);
    }
  }
  merger.Flush();
  return out;
}

}  // namespace toss::tax
