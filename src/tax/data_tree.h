// TAX data model (paper Def. 1).
//
// A semistructured instance is a set of rooted, ordered, labelled trees. A
// tree node ("object") carries two attributes -- its tag and its content --
// each with an associated type (plain TAX fixes both to "string"; the
// ontology-extended model of Section 5 generalizes the type names).
//
// DataTree uses the same arena layout as xml::XmlDocument but folds text
// children into the owning element's `content` attribute, matching the
// o.tag / o.content view of the paper. `provenance` carries the generating
// entity id through query pipelines so the evaluation harness can audit
// precision/recall mechanically (our substitute for the paper's manual
// relevance judgments).

#ifndef TOSS_TAX_DATA_TREE_H_
#define TOSS_TAX_DATA_TREE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "xml/xml_document.h"

namespace toss::tax {

using NodeId = uint32_t;
inline constexpr NodeId kInvalidNode = 0xFFFFFFFFu;

/// Default type of tags and contents in plain TAX.
inline constexpr const char* kStringType = "string";

struct DataNode {
  std::string tag;
  std::string content;
  std::string tag_type = kStringType;
  std::string content_type = kStringType;
  uint64_t provenance = 0;  ///< generator entity id; 0 = untracked
  NodeId parent = kInvalidNode;
  std::vector<NodeId> children;
};

/// One rooted ordered tree of a semistructured instance.
class DataTree {
 public:
  DataTree() = default;

  /// Creates the root; exactly one per tree. Returns its id.
  NodeId CreateRoot(std::string_view tag, std::string_view content = "");

  /// Appends a child under `parent` in document order; returns its id.
  NodeId AppendChild(NodeId parent, std::string_view tag,
                     std::string_view content = "");

  bool empty() const { return nodes_.empty(); }
  size_t size() const { return nodes_.size(); }
  NodeId root() const { return nodes_.empty() ? kInvalidNode : 0; }

  const DataNode& node(NodeId id) const { return nodes_[id]; }
  DataNode& node(NodeId id) { return nodes_[id]; }

  /// All descendants of `id` (excluding `id`) in document (pre)order.
  std::vector<NodeId> Descendants(NodeId id) const;

  /// True iff `ancestor` is a proper ancestor of `node`.
  bool IsAncestor(NodeId ancestor, NodeId node) const;

  /// Deep-copies the subtree rooted at `src_id` of `src` under `parent`
  /// here (pass kInvalidNode to copy as this tree's root). Returns the id
  /// of the copy.
  NodeId CopySubtree(const DataTree& src, NodeId src_id, NodeId parent);

  /// Converts an XML element subtree: element children become child nodes,
  /// text children concatenate into `content`.
  static DataTree FromXml(const xml::XmlDocument& doc, xml::NodeId root);

  /// Converts back to XML (content becomes a text child when non-empty).
  xml::XmlDocument ToXml() const;

  /// Order-preserving value equality (paper Section 5.1.2): isomorphic
  /// shapes with equal tags, contents and types at corresponding nodes.
  bool Equals(const DataTree& other) const;

  /// Canonical serialization; Equals(a,b) iff CanonicalKey()s are equal.
  /// Set operations hash on this.
  std::string CanonicalKey() const;

 private:
  std::vector<DataNode> nodes_;
};

/// A semistructured DB / intermediate result: an ordered list of trees.
using TreeCollection = std::vector<DataTree>;

/// Total node count across a collection.
size_t TotalNodes(const TreeCollection& collection);

}  // namespace toss::tax

#endif  // TOSS_TAX_DATA_TREE_H_
