// TAX data model (paper Def. 1).
//
// A semistructured instance is a set of rooted, ordered, labelled trees. A
// tree node ("object") carries two attributes -- its tag and its content --
// each with an associated type (plain TAX fixes both to "string"; the
// ontology-extended model of Section 5 generalizes the type names).
//
// DataTree uses the same arena layout as xml::XmlDocument but folds text
// children into the owning element's `content` attribute, matching the
// o.tag / o.content view of the paper. `provenance` carries the generating
// entity id through query pipelines so the evaluation harness can audit
// precision/recall mechanically (our substitute for the paper's manual
// relevance judgments).

#ifndef TOSS_TAX_DATA_TREE_H_
#define TOSS_TAX_DATA_TREE_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/interner.h"
#include "xml/xml_document.h"

namespace toss::tax {

using NodeId = uint32_t;
inline constexpr NodeId kInvalidNode = 0xFFFFFFFFu;

/// Default type of tags and contents in plain TAX.
inline constexpr const char* kStringType = "string";

struct DataNode {
  std::string tag;
  std::string content;
  std::string tag_type = kStringType;
  std::string content_type = kStringType;
  uint64_t provenance = 0;  ///< generator entity id; 0 = untracked
  NodeId parent = kInvalidNode;
  std::vector<NodeId> children;
};

/// One rooted ordered tree of a semistructured instance.
class DataTree {
 public:
  DataTree() = default;

  /// Creates the root; exactly one per tree. Returns its id.
  NodeId CreateRoot(std::string_view tag, std::string_view content = "");

  /// Appends a child under `parent` in document order; returns its id.
  NodeId AppendChild(NodeId parent, std::string_view tag,
                     std::string_view content = "");

  bool empty() const { return nodes_.empty(); }
  size_t size() const { return nodes_.size(); }
  NodeId root() const { return nodes_.empty() ? kInvalidNode : 0; }

  const DataNode& node(NodeId id) const { return nodes_[id]; }
  /// Mutable access drops the tag index: the caller may rewrite tags, so
  /// a previously built index can no longer be trusted.
  DataNode& node(NodeId id) {
    tag_index_.reset();
    return nodes_[id];
  }

  /// All descendants of `id` (excluding `id`) in document (pre)order.
  std::vector<NodeId> Descendants(NodeId id) const;

  /// True iff `ancestor` is a proper ancestor of `node`.
  bool IsAncestor(NodeId ancestor, NodeId node) const;

  /// Deep-copies the subtree rooted at `src_id` of `src` under `parent`
  /// here (pass kInvalidNode to copy as this tree's root). Returns the id
  /// of the copy.
  NodeId CopySubtree(const DataTree& src, NodeId src_id, NodeId parent);

  /// Converts an XML element subtree: element children become child nodes,
  /// text children concatenate into `content`.
  static DataTree FromXml(const xml::XmlDocument& doc, xml::NodeId root);

  /// Converts back to XML (content becomes a text child when non-empty).
  xml::XmlDocument ToXml() const;

  /// Order-preserving value equality (paper Section 5.1.2): isomorphic
  /// shapes with equal tags, contents and types at corresponding nodes.
  bool Equals(const DataTree& other) const;

  /// Canonical serialization; Equals(a,b) iff CanonicalKey()s are equal.
  /// Set operations hash on this.
  std::string CanonicalKey() const;

  // --- Tag index -----------------------------------------------------------
  //
  // A tag -> sorted-node-list index that lets the embedding enumerator seed
  // candidates for tag-pinned pattern nodes without scanning the whole
  // tree. Build it once after the tree is complete (FromXml does this
  // automatically); any later mutation -- AppendChild, CopySubtree into
  // this tree, or non-const node() access -- drops the index, and lookups
  // fall back to full scans until it is rebuilt.

  /// Builds (or rebuilds) the tag index. Idempotent and cheap when already
  /// built. Also precomputes preorder subtree intervals when node ids are
  /// in preorder (true for FromXml / CopySubtree-built trees).
  void BuildTagIndex();

  bool has_tag_index() const { return tag_index_.has_value(); }

  /// True when the index exists and plain string comparison of tags is
  /// faithful to condition semantics: every tag_type is "string". Trees
  /// with exotic tag types route tag atoms through type conversions, which
  /// string-match pruning must not preempt.
  bool TagFilterable() const {
    return tag_index_.has_value() && tag_index_->filterable;
  }

  /// Nodes carrying exactly `tag`, ascending NodeId; nullptr when the tag
  /// is absent. Requires TagFilterable().
  const std::vector<NodeId>* NodesWithTag(std::string_view tag) const;

  /// Id-keyed variant of NodesWithTag. Requires TagFilterable().
  const std::vector<NodeId>* NodesWithTagId(SymbolId tag) const;

  /// Nodes whose tag contains '*'. Under glob-equality semantics a *data*
  /// tag can act as the pattern side of `$n.tag = "lit"`, so these stay
  /// candidates for every tag literal. Requires TagFilterable().
  const std::vector<NodeId>& WildcardTagNodes() const;

  /// True when node ids enumerate the tree in preorder and the index is
  /// built; then the descendants of v are exactly ids in (v, SubtreeEnd(v)).
  bool HasPreorderIds() const {
    return tag_index_.has_value() && !tag_index_->subtree_end.empty();
  }

  /// One past the last id of v's subtree (valid iff HasPreorderIds()).
  NodeId SubtreeEnd(NodeId v) const { return tag_index_->subtree_end[v]; }

  /// True when per-node depths were computed (whenever the index is built).
  bool HasDepths() const {
    return tag_index_.has_value() && !tag_index_->depth.empty();
  }

  /// Root distance of v (root = 0). Valid iff HasDepths().
  uint32_t Depth(NodeId v) const { return tag_index_->depth[v]; }

  // --- Interned symbol ids -------------------------------------------------
  //
  // BuildTagIndex also interns every node's tag and content through the
  // process-wide Interner, so downstream comparisons (conditions, twig
  // merge values, SEO probes) work on u32 ids. The ids share the index's
  // lifecycle: any mutation drops them together with the tag index, which
  // is exactly the staleness rule they need.

  /// True when per-node tag/content SymbolIds were computed (whenever the
  /// index is built, unless the process dictionary overflowed).
  bool HasSymbolIds() const {
    return tag_index_.has_value() && !tag_index_->tag_ids.empty();
  }

  /// Interned id of v's tag. Valid iff HasSymbolIds().
  SymbolId TagId(NodeId v) const { return tag_index_->tag_ids[v]; }

  /// Interned id of v's content. Valid iff HasSymbolIds().
  SymbolId ContentId(NodeId v) const { return tag_index_->content_ids[v]; }

 private:
  struct TagIndexData {
    std::unordered_map<SymbolId, std::vector<NodeId>> by_tag;
    std::vector<NodeId> wildcard_nodes;
    std::vector<NodeId> subtree_end;  ///< empty when ids are not preorder
    std::vector<uint32_t> depth;      ///< positional label: root distance
    std::vector<SymbolId> tag_ids;      ///< per-node interned tag
    std::vector<SymbolId> content_ids;  ///< per-node interned content
    bool filterable = true;           ///< all tag_types are "string"
  };

  std::vector<DataNode> nodes_;
  std::optional<TagIndexData> tag_index_;
};

/// A semistructured DB / intermediate result: an ordered list of trees.
using TreeCollection = std::vector<DataTree>;

/// Total node count across a collection.
size_t TotalNodes(const TreeCollection& collection);

}  // namespace toss::tax

#endif  // TOSS_TAX_DATA_TREE_H_
