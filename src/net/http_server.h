// Poll-driven HTTP/1.1 server (DESIGN.md §16 "Network edge & wire
// protocol"): the process boundary in front of TossService.
//
// Threading model -- one epoll event loop owns every socket; a small
// worker pool owns the handler:
//
//   * The loop thread does all accepting, reading, parsing, and writing.
//     Connection state is only ever touched from this thread, so there is
//     no per-connection locking at all.
//   * A complete request is handed to the worker pool as a job; the worker
//     runs the handler (which blocks inside TossService::Run -- admission
//     queueing, deadlines), serializes the response, and posts the bytes
//     back to the loop through a mutex-guarded outbox + eventfd wakeup.
//
// One request is in flight per connection: while a worker owns the
// request, the loop stops reading that socket (the kernel buffer provides
// the backpressure) and resumes -- serving any pipelined requests already
// buffered -- once the response has flushed. Admission at the edge is by
// connection count: beyond ServerOptions::max_connections an accepted
// socket gets `503 Connection: close` and is dropped, so overload degrades
// into fast rejections instead of unbounded fd growth. Per-request
// overload (429) and deadlines (504) stay where they belong, in the
// service layer behind the handler.
//
// Instruments (obs::MetricsRegistry): net.conns.accepted / rejected /
// open, net.http.requests, net.http.parse_errors, net.http.responses_2xx /
// _4xx / _5xx, net.http.request_ns.

#ifndef TOSS_NET_HTTP_SERVER_H_
#define TOSS_NET_HTTP_SERVER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "net/http.h"

namespace toss::net {

struct ServerOptions {
  std::string bind_address = "127.0.0.1";

  /// TCP port; 0 binds an ephemeral port (read it back via port()).
  uint16_t port = 0;

  /// Connection-count admission: accepts beyond this answer 503 and close.
  size_t max_connections = 256;

  /// Handler pool size. Sized like the service's max_inflight + queue:
  /// workers beyond that just wait inside admission control.
  size_t worker_threads = 4;

  ParserLimits limits;
};

/// Maps one parsed request to one response. Called on a worker thread;
/// must be thread-safe and may block (the service's admission control is
/// the intended blocking point).
using Handler = std::function<HttpResponse(const HttpRequest&)>;

class HttpServer {
 public:
  explicit HttpServer(Handler handler, ServerOptions options = {});
  ~HttpServer();  ///< implies Stop()

  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  /// Binds, listens, and spawns the event loop + workers. IOError when the
  /// address cannot be bound.
  Status Start();

  /// Stops accepting, closes every connection, joins all threads.
  /// Idempotent.
  void Stop();

  /// The bound port (resolves port=0), valid after Start().
  uint16_t port() const { return port_; }

  const ServerOptions& options() const { return options_; }

 private:
  struct Connection;
  struct Job {
    uint64_t conn_id = 0;
    HttpRequest request;
  };
  struct Outcome {
    uint64_t conn_id = 0;
    std::string bytes;        ///< serialized response
    bool keep_alive = false;  ///< connection survives after the flush
  };

  void LoopMain();
  void WorkerMain();

  void AcceptReady();
  void HandleReadable(Connection* conn);
  void HandleWritable(Connection* conn);
  /// Tries to cut the next buffered request (or parse error) and move the
  /// connection into the busy/writing state.
  void PumpConnection(Connection* conn);
  void CloseConnection(uint64_t id);
  void UpdateEvents(Connection* conn, uint32_t events);
  void DrainOutcomes();

  Handler handler_;
  ServerOptions options_;

  int listen_fd_ = -1;
  int epoll_fd_ = -1;
  int wake_fd_ = -1;
  uint16_t port_ = 0;

  std::thread loop_;
  std::vector<std::thread> workers_;
  std::atomic<bool> stopping_{false};
  bool started_ = false;

  // Loop-thread-only state.
  std::unordered_map<uint64_t, std::unique_ptr<Connection>> conns_;
  uint64_t next_conn_id_ = 2;  // 0 = listener, 1 = wake eventfd

  // Loop -> workers.
  std::mutex jobs_mu_;
  std::condition_variable jobs_cv_;
  std::deque<Job> jobs_;

  // Workers -> loop (paired with a wake_fd_ write).
  std::mutex outcomes_mu_;
  std::vector<Outcome> outcomes_;
};

}  // namespace toss::net

#endif  // TOSS_NET_HTTP_SERVER_H_
