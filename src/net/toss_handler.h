// The route table: maps the HTTP surface onto TossService + the wire
// protocol (DESIGN.md §16). This is the only place HTTP verbs/paths and
// StatusCode→HTTP-status policy live; the server below it moves bytes, the
// service above it runs queries.
//
//   POST /v1/query      wire QueryRequest (or {"text": "<TOSS-QL>"}) -> wire
//                       QueryResponse. Mutations are rejected with 400 --
//                       the read path never writes.
//   POST /v1/mutate     wire insert/replace/remove -> wire QueryResponse.
//   GET  /v1/telemetry  obs::TelemetryDump() (what tools/tosstop.py polls).
//   GET  /healthz       {"status":"ok"} -- liveness, no service work.
//
// Service status maps onto transport status so generic HTTP clients see
// overload and lateness without parsing the body: ResourceExhausted (shed)
// is 429, DeadlineExceeded is 504, Cancelled is 499; the bad-request family
// (InvalidArgument / ParseError / TypeError) is 400. Every /v1 response
// body, success or failure, is a wire QueryResponse document.

#ifndef TOSS_NET_TOSS_HANDLER_H_
#define TOSS_NET_TOSS_HANDLER_H_

#include "net/http.h"
#include "net/http_server.h"
#include "service/toss_service.h"

namespace toss::net {

/// HTTP status for a service-level status (the table above).
int HttpStatusFor(StatusCode code);

/// Builds the handler serving `service`. The service must outlive the
/// returned handler; the handler is thread-safe because TossService::Run
/// is.
Handler MakeTossHandler(service::TossService* service);

}  // namespace toss::net

#endif  // TOSS_NET_TOSS_HANDLER_H_
