// tossd: the TOSS query engine behind an HTTP port.
//
// Loads a synthetic bibliographic world (the same generator the benches
// use), builds the SEO, and serves the /v1 wire protocol until SIGINT /
// SIGTERM:
//
//   ./build/src/net/tossd --port 8080 --papers 500
//   curl -s localhost:8080/healthz
//   curl -s localhost:8080/v1/query -d \
//     '{"text": "SELECT $1 FROM dblp MATCH $1/$2 WHERE $1.tag = \
//       \"inproceedings\" & $2.tag = \"author\" & \
//       $2.content ~ \"jeffrey ullman\""}'
//
// Flags: --port N (default 8080; 0 picks an ephemeral port and prints it),
// --papers N (synthetic corpus size, default 500), --epsilon F (SEO
// threshold, default 3.0), --workers N, --max-connections N.

#include <semaphore.h>

#include <cerrno>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "core/toss.h"
#include "data/bib_generator.h"
#include "net/http_server.h"
#include "net/toss_handler.h"
#include "obs/telemetry.h"
#include "service/toss_service.h"

using namespace toss;

namespace {

// POSIX sem_post is on the async-signal-safe list;
// std::binary_semaphore::release is not.
sem_t g_shutdown;

void HandleSignal(int) { ::sem_post(&g_shutdown); }

void Die(const Status& status, const char* what) {
  if (status.ok()) return;
  std::fprintf(stderr, "tossd: %s: %s\n", what, status.ToString().c_str());
  std::exit(1);
}

}  // namespace

int main(int argc, char** argv) {
  uint16_t port = 8080;
  size_t papers = 500;
  double epsilon = 3.0;
  net::ServerOptions server_options;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "tossd: %s needs a value\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--port") {
      port = static_cast<uint16_t>(std::atoi(value()));
    } else if (arg == "--papers") {
      papers = static_cast<size_t>(std::atol(value()));
    } else if (arg == "--epsilon") {
      epsilon = std::atof(value());
    } else if (arg == "--workers") {
      server_options.worker_threads = static_cast<size_t>(std::atol(value()));
    } else if (arg == "--max-connections") {
      server_options.max_connections = static_cast<size_t>(std::atol(value()));
    } else {
      std::fprintf(stderr,
                   "usage: tossd [--port N] [--papers N] [--epsilon F]"
                   " [--workers N] [--max-connections N]\n");
      return 2;
    }
  }

  // The world: synthetic dblp papers, their ontology, and the SEO.
  data::BibConfig cfg;
  cfg.seed = 19;
  cfg.num_papers = papers;
  data::BibWorld world = data::GenerateWorld(cfg);

  store::Database db;
  Die(data::LoadIntoCollection(&db, "dblp",
                               data::EmitDblp(world, 0, papers, cfg)),
      "load dblp");

  auto coll = db.GetCollection("dblp");
  Die(coll.status(), "dblp");
  std::vector<const xml::XmlDocument*> docs;
  for (store::DocId id : (*coll)->AllDocs()) {
    docs.push_back(&(*coll)->document(id));
  }
  ontology::OntologyMakerOptions onto_opts;
  onto_opts.content_tags = data::DblpContentTags();
  auto onto = ontology::MakeOntologyForDocuments(
      docs, lexicon::BuiltinBibliographicLexicon(), onto_opts);
  Die(onto.status(), "ontology");

  core::SeoBuilder builder;
  builder.AddInstanceOntology(std::move(onto).value());
  auto measure = sim::MakeMeasure("levenshtein");
  Die(measure.status(), "measure");
  builder.SetMeasure(std::move(measure).value());
  builder.SetEpsilon(epsilon);
  auto seo = builder.Build();
  Die(seo.status(), "SEO build");

  core::TypeSystem types = core::MakeBibliographicTypeSystem();

  service::ServiceOptions service_options;
  service_options.max_inflight = 4;
  service::TossService service(&db, &*seo, &types, service_options);

  obs::Telemetry::Global().StartTicker();

  server_options.port = port;
  net::HttpServer server(net::MakeTossHandler(&service), server_options);
  Die(server.Start(), "server start");

  std::printf("tossd: %zu papers, epsilon %.1f, %zu SEO nodes\n", papers,
              epsilon, seo->TotalNodeCount());
  std::printf("tossd: serving http://%s:%u/v1 (Ctrl-C to stop)\n",
              server.options().bind_address.c_str(), server.port());
  std::fflush(stdout);

  ::sem_init(&g_shutdown, 0, 0);
  std::signal(SIGINT, HandleSignal);
  std::signal(SIGTERM, HandleSignal);
  while (::sem_wait(&g_shutdown) != 0 && errno == EINTR) {
  }

  std::printf("tossd: shutting down\n");
  server.Stop();
  obs::Telemetry::Global().StopTicker();
  return 0;
}
