// Minimal HTTP/1.1 message layer for the network edge (DESIGN.md §16):
// request/response structs, an incremental request parser, and response
// serialization. No sockets here -- the parser consumes whatever byte
// slices the event loop hands it, which is what makes it property-testable
// (tests/http_parser_test.cc replays torn reads and pipelined bursts).
//
// Scope is deliberately the subset a JSON query API needs:
//   * HTTP/1.0 and HTTP/1.1 request lines; anything else is 505;
//   * strict CRLF line endings (a bare LF is a 400, not a tolerance);
//   * Content-Length framed bodies only -- Transfer-Encoding (chunked or
//     otherwise) is answered with 501;
//   * keep-alive and pipelining: Next() yields buffered requests one at a
//     time, leaving unread bytes in place for the next call;
//   * bounded buffers: the head (request line + headers) and body are
//     capped by ParserLimits, failing with 431 / 413 before the peer can
//     make the process hoard memory.
//
// Errors are sticky: after the first malformed byte the parser stays in
// the error state (suggesting an HTTP status to answer with), because a
// connection that has lost framing cannot be resynchronized safely.

#ifndef TOSS_NET_HTTP_H_
#define TOSS_NET_HTTP_H_

#include <cstddef>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace toss::net {

struct HttpRequest {
  std::string method;  ///< verbatim token ("GET", "POST", ...)
  std::string target;  ///< origin-form request target ("/v1/query")
  int minor_version = 1;

  /// Parsed headers in arrival order; names are lowercased, values have
  /// surrounding whitespace trimmed.
  std::vector<std::pair<std::string, std::string>> headers;

  std::string body;

  /// Whether the connection may serve another request afterwards, per the
  /// version default (1.1 yes, 1.0 no) and any Connection header.
  bool keep_alive = true;

  /// Case-insensitive lookup; null when absent.
  const std::string* FindHeader(std::string_view name) const;
};

struct HttpResponse {
  int status = 200;
  std::string content_type = "application/json";
  std::string body;

  /// Force `Connection: close` even on a keep-alive connection (used for
  /// parse errors and admission rejections, where the server is about to
  /// hang up).
  bool close = false;
};

/// Reason phrase for the handful of codes this server emits ("OK",
/// "Bad Request", ...); "Unknown" otherwise.
const char* StatusText(int status);

/// Renders status line + headers + body. `keep_alive` is what the server
/// decided for this connection; the emitted Connection header reflects
/// `keep_alive && !response.close`.
std::string SerializeResponse(const HttpResponse& response, bool keep_alive);

/// Caps on what a single connection may buffer. Defaults are sized for the
/// wire protocol: heads are small, bodies are one JSON query document.
struct ParserLimits {
  size_t max_head_bytes = 16 * 1024;       ///< request line + headers -> 431
  size_t max_body_bytes = 1024 * 1024;     ///< declared body length -> 413
  size_t max_headers = 64;                 ///< header count -> 431
};

/// Incremental parser for a stream of pipelined requests on one connection.
///
///   parser.Feed(bytes_from_socket);
///   HttpRequest req;
///   while (parser.Next(&req) == RequestParser::Result::kReady) serve(req);
///   if (parser.failed()) answer_with(parser.error_status()) and close;
class RequestParser {
 public:
  enum class Result {
    kReady,     ///< *out holds the next complete request
    kNeedMore,  ///< no complete request buffered; Feed more bytes
    kError,     ///< stream is malformed; see error_status()/error_message()
  };

  explicit RequestParser(ParserLimits limits = {}) : limits_(limits) {}

  /// Appends raw socket bytes to the connection buffer.
  void Feed(std::string_view bytes);

  /// Extracts the next complete request, if one is fully buffered.
  Result Next(HttpRequest* out);

  bool failed() const { return error_status_ != 0; }

  /// Suggested HTTP answer once failed(): 400 (malformed), 413 (body too
  /// large), 431 (head too large), 501 (Transfer-Encoding), 505 (version).
  int error_status() const { return error_status_; }
  const std::string& error_message() const { return error_message_; }

  /// Bytes currently buffered but not yet returned as a request.
  size_t buffered_bytes() const { return buffer_.size(); }

 private:
  Result Fail(int status, std::string message);
  Result ParseHead(std::string_view head, HttpRequest* out);

  ParserLimits limits_;
  std::string buffer_;

  // Body framing for the request whose head already parsed.
  bool in_body_ = false;
  size_t body_remaining_ = 0;
  HttpRequest pending_;

  int error_status_ = 0;
  std::string error_message_;
};

}  // namespace toss::net

#endif  // TOSS_NET_HTTP_H_
