#include "net/http.h"

#include <algorithm>
#include <cctype>

namespace toss::net {

namespace {

bool EqualsIgnoreCase(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

std::string_view Trim(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) {
    s.remove_prefix(1);
  }
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t')) {
    s.remove_suffix(1);
  }
  return s;
}

/// RFC 9110 token characters -- what methods and header names are made of.
bool IsTokenChar(char c) {
  if (std::isalnum(static_cast<unsigned char>(c))) return true;
  switch (c) {
    case '!': case '#': case '$': case '%': case '&': case '\'': case '*':
    case '+': case '-': case '.': case '^': case '_': case '`': case '|':
    case '~':
      return true;
    default:
      return false;
  }
}

bool IsToken(std::string_view s) {
  if (s.empty()) return false;
  return std::all_of(s.begin(), s.end(), IsTokenChar);
}

/// Field values may hold any visible byte plus SP/HTAB; raw control bytes
/// (header smuggling material) are rejected.
bool IsFieldValue(std::string_view s) {
  for (char c : s) {
    const auto u = static_cast<unsigned char>(c);
    if (u < 0x20 && c != '\t') return false;
    if (u == 0x7f) return false;
  }
  return true;
}

}  // namespace

const std::string* HttpRequest::FindHeader(std::string_view name) const {
  for (const auto& [key, value] : headers) {
    if (EqualsIgnoreCase(key, name)) return &value;
  }
  return nullptr;
}

const char* StatusText(int status) {
  switch (status) {
    case 200: return "OK";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 413: return "Content Too Large";
    case 429: return "Too Many Requests";
    case 431: return "Request Header Fields Too Large";
    case 499: return "Client Closed Request";
    case 500: return "Internal Server Error";
    case 501: return "Not Implemented";
    case 503: return "Service Unavailable";
    case 504: return "Gateway Timeout";
    case 505: return "HTTP Version Not Supported";
    default: return "Unknown";
  }
}

std::string SerializeResponse(const HttpResponse& response, bool keep_alive) {
  const bool alive = keep_alive && !response.close;
  std::string out;
  out.reserve(response.body.size() + 128);
  out += "HTTP/1.1 ";
  out += std::to_string(response.status);
  out += ' ';
  out += StatusText(response.status);
  out += "\r\nContent-Type: ";
  out += response.content_type;
  out += "\r\nContent-Length: ";
  out += std::to_string(response.body.size());
  out += "\r\nConnection: ";
  out += alive ? "keep-alive" : "close";
  out += "\r\n\r\n";
  out += response.body;
  return out;
}

void RequestParser::Feed(std::string_view bytes) {
  if (failed()) return;  // connection is dead; don't hoard more
  buffer_.append(bytes.data(), bytes.size());
}

RequestParser::Result RequestParser::Fail(int status, std::string message) {
  error_status_ = status;
  error_message_ = std::move(message);
  buffer_.clear();
  buffer_.shrink_to_fit();
  return Result::kError;
}

RequestParser::Result RequestParser::ParseHead(std::string_view head,
                                               HttpRequest* out) {
  HttpRequest req;

  // Request line: METHOD SP target SP HTTP/1.x
  const size_t line_end = head.find("\r\n");
  std::string_view line = head.substr(0, line_end);
  if (line.find('\n') != std::string_view::npos) {
    return Fail(400, "bare LF in request line");
  }
  const size_t sp1 = line.find(' ');
  const size_t sp2 = line.rfind(' ');
  if (sp1 == std::string_view::npos || sp2 == sp1) {
    return Fail(400, "malformed request line");
  }
  std::string_view method = line.substr(0, sp1);
  std::string_view target = line.substr(sp1 + 1, sp2 - sp1 - 1);
  std::string_view version = line.substr(sp2 + 1);
  if (!IsToken(method)) return Fail(400, "malformed method");
  if (target.empty() || target.find(' ') != std::string_view::npos) {
    return Fail(400, "malformed request target");
  }
  if (version == "HTTP/1.1") {
    req.minor_version = 1;
  } else if (version == "HTTP/1.0") {
    req.minor_version = 0;
  } else if (version.substr(0, 5) == "HTTP/") {
    return Fail(505, "unsupported HTTP version");
  } else {
    return Fail(400, "malformed HTTP version");
  }
  req.method = std::string(method);
  req.target = std::string(target);

  // Header fields.
  size_t pos = line_end + 2;
  bool have_content_length = false;
  size_t content_length = 0;
  while (pos < head.size()) {
    const size_t eol = head.find("\r\n", pos);
    std::string_view field = head.substr(pos, eol - pos);
    pos = eol + 2;
    if (field.find('\n') != std::string_view::npos) {
      return Fail(400, "bare LF in header field");
    }
    if (field.front() == ' ' || field.front() == '\t') {
      return Fail(400, "obsolete header line folding");
    }
    const size_t colon = field.find(':');
    if (colon == std::string_view::npos) {
      return Fail(400, "header field without colon");
    }
    std::string_view name = field.substr(0, colon);
    std::string_view value = Trim(field.substr(colon + 1));
    if (!IsToken(name)) return Fail(400, "malformed header name");
    if (!IsFieldValue(value)) return Fail(400, "control byte in header value");
    if (req.headers.size() >= limits_.max_headers) {
      return Fail(431, "too many header fields");
    }
    std::string lower(name);
    for (char& c : lower) c = std::tolower(static_cast<unsigned char>(c));

    if (lower == "transfer-encoding") {
      return Fail(501, "Transfer-Encoding is not supported");
    }
    if (lower == "content-length") {
      if (value.empty() ||
          !std::all_of(value.begin(), value.end(),
                       [](char c) { return c >= '0' && c <= '9'; })) {
        return Fail(400, "malformed Content-Length");
      }
      size_t parsed = 0;
      for (char c : value) {
        parsed = parsed * 10 + static_cast<size_t>(c - '0');
        if (parsed > limits_.max_body_bytes) {
          return Fail(413, "declared body exceeds limit");
        }
      }
      if (have_content_length && parsed != content_length) {
        return Fail(400, "conflicting Content-Length fields");
      }
      have_content_length = true;
      content_length = parsed;
    }
    req.headers.emplace_back(std::move(lower), std::string(value));
  }

  // Connection semantics: 1.1 defaults to keep-alive, 1.0 to close.
  req.keep_alive = req.minor_version >= 1;
  if (const std::string* conn = req.FindHeader("connection")) {
    if (EqualsIgnoreCase(*conn, "close")) req.keep_alive = false;
    if (EqualsIgnoreCase(*conn, "keep-alive")) req.keep_alive = true;
  }

  if (content_length == 0) {
    *out = std::move(req);
    return Result::kReady;
  }
  pending_ = std::move(req);
  pending_.body.reserve(content_length);
  in_body_ = true;
  body_remaining_ = content_length;
  return Result::kNeedMore;  // caller re-enters Next() for the body
}

RequestParser::Result RequestParser::Next(HttpRequest* out) {
  if (failed()) return Result::kError;

  if (!in_body_) {
    // Hunt for the end of head. "\r\n\r\n" terminates; an initial "\r\n"
    // (idle keep-alive client sent a stray CRLF) is tolerated and skipped.
    while (buffer_.size() >= 2 && buffer_[0] == '\r' && buffer_[1] == '\n') {
      buffer_.erase(0, 2);
    }
    const size_t head_end = buffer_.find("\r\n\r\n");
    if (head_end == std::string::npos) {
      if (buffer_.size() > limits_.max_head_bytes) {
        return Fail(431, "request head exceeds limit");
      }
      return Result::kNeedMore;
    }
    if (head_end + 4 > limits_.max_head_bytes) {
      return Fail(431, "request head exceeds limit");
    }
    // Head spans [0, head_end + 2): request line + fields, each CRLF
    // terminated; the final blank line is consumed here.
    const Result r =
        ParseHead(std::string_view(buffer_).substr(0, head_end + 2), out);
    buffer_.erase(0, head_end + 4);
    if (r != Result::kNeedMore) return r;  // ready (no body) or error
  }

  // Body accumulation for pending_.
  const size_t take = std::min(body_remaining_, buffer_.size());
  pending_.body.append(buffer_, 0, take);
  buffer_.erase(0, take);
  body_remaining_ -= take;
  if (body_remaining_ > 0) return Result::kNeedMore;
  in_body_ = false;
  *out = std::move(pending_);
  pending_ = HttpRequest{};
  return Result::kReady;
}

}  // namespace toss::net
