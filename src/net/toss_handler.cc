#include "net/toss_handler.h"

#include <utility>

#include "common/json.h"
#include "obs/telemetry.h"
#include "service/wire.h"

namespace toss::net {

namespace {

/// A wire-shaped error body, so every /v1 answer parses the same way.
HttpResponse WireError(Status status) {
  service::QueryResponse resp;
  HttpResponse out;
  out.status = HttpStatusFor(status.code());
  resp.status = std::move(status);
  out.body = service::wire::ResponseJson(resp);
  return out;
}

HttpResponse RunRequest(service::TossService* service,
                        const HttpRequest& http, bool want_mutation) {
  auto parsed = service::wire::ParseRequestText(http.body);
  if (!parsed.ok()) return WireError(parsed.status());
  service::QueryRequest request = std::move(parsed).value();
  if (request.IsMutation() != want_mutation) {
    return WireError(Status::InvalidArgument(
        want_mutation ? "/v1/mutate requires insert, replace, or remove"
                      : "mutations go to /v1/mutate, not /v1/query"));
  }
  service::QueryResponse resp = service->Run(request);
  HttpResponse out;
  out.status = HttpStatusFor(resp.status.code());
  out.body = service::wire::ResponseJson(resp);
  return out;
}

HttpResponse MethodNotAllowed(const char* allow) {
  HttpResponse out;
  out.status = 405;
  out.body = std::string("{\"error\":\"method not allowed; use ") + allow +
             "\"}";
  return out;
}

}  // namespace

int HttpStatusFor(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return 200;
    case StatusCode::kInvalidArgument:
    case StatusCode::kParseError:
    case StatusCode::kTypeError:
      return 400;
    case StatusCode::kNotFound:
      return 404;
    case StatusCode::kResourceExhausted:
      return 429;
    case StatusCode::kDeadlineExceeded:
      return 504;
    case StatusCode::kCancelled:
      return 499;
    case StatusCode::kUnsupported:
      return 501;
    default:
      return 500;
  }
}

Handler MakeTossHandler(service::TossService* service) {
  return [service](const HttpRequest& http) -> HttpResponse {
    if (http.target == "/v1/query") {
      if (http.method != "POST") return MethodNotAllowed("POST");
      return RunRequest(service, http, /*want_mutation=*/false);
    }
    if (http.target == "/v1/mutate") {
      if (http.method != "POST") return MethodNotAllowed("POST");
      return RunRequest(service, http, /*want_mutation=*/true);
    }
    if (http.target == "/v1/telemetry") {
      if (http.method != "GET") return MethodNotAllowed("GET");
      HttpResponse out;
      out.body = obs::TelemetryDump();
      return out;
    }
    if (http.target == "/healthz") {
      if (http.method != "GET") return MethodNotAllowed("GET");
      HttpResponse out;
      out.body = "{\"status\":\"ok\"}";
      return out;
    }
    HttpResponse out;
    out.status = 404;
    // The target is attacker-controlled bytes; Dump() escapes them.
    common::JsonValue body = common::JsonValue::Object();
    body.Set("error",
             common::JsonValue::String("no such route: " + http.target));
    out.body = body.Dump();
    return out;
  };
}

}  // namespace toss::net
