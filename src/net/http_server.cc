#include "net/http_server.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "common/timer.h"
#include "obs/metrics.h"

namespace toss::net {

namespace {

constexpr uint64_t kListenerId = 0;
constexpr uint64_t kWakeId = 1;

struct NetMetrics {
  obs::Counter& accepted = obs::Metrics().GetCounter("net.conns.accepted");
  obs::Counter& rejected = obs::Metrics().GetCounter("net.conns.rejected");
  obs::Gauge& open = obs::Metrics().GetGauge("net.conns.open");
  obs::Counter& requests = obs::Metrics().GetCounter("net.http.requests");
  obs::Counter& parse_errors =
      obs::Metrics().GetCounter("net.http.parse_errors");
  obs::Counter& r2xx = obs::Metrics().GetCounter("net.http.responses_2xx");
  obs::Counter& r4xx = obs::Metrics().GetCounter("net.http.responses_4xx");
  obs::Counter& r5xx = obs::Metrics().GetCounter("net.http.responses_5xx");
  obs::Histogram& request_ns =
      obs::Metrics().GetHistogram("net.http.request_ns");
};

NetMetrics& Net() {
  static NetMetrics m;
  return m;
}

void CountResponseClass(int status) {
  if (status < 400) {
    Net().r2xx.Increment();
  } else if (status < 500) {
    Net().r4xx.Increment();
  } else {
    Net().r5xx.Increment();
  }
}

}  // namespace

/// Per-connection state; owned by the map, touched only by the loop thread.
struct HttpServer::Connection {
  uint64_t id = 0;
  int fd = -1;
  RequestParser parser;
  uint32_t events = 0;  ///< currently registered epoll interest

  /// A worker owns a request from this connection; reads are paused.
  bool busy = false;

  std::string outbuf;
  size_t outpos = 0;
  bool close_after_flush = false;

  /// The peer half-closed (read returned 0); buffered requests are still
  /// served, but an incomplete request can never finish.
  bool eof_seen = false;

  explicit Connection(ParserLimits limits) : parser(limits) {}
};

HttpServer::HttpServer(Handler handler, ServerOptions options)
    : handler_(std::move(handler)), options_(std::move(options)) {}

HttpServer::~HttpServer() { Stop(); }

Status HttpServer::Start() {
  if (started_) return Status::OK();

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC,
                        0);
  if (listen_fd_ < 0) return Status::IOError("socket: " + std::string(std::strerror(errno)));
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (::inet_pton(AF_INET, options_.bind_address.c_str(), &addr.sin_addr) !=
      1) {
    Stop();
    return Status::InvalidArgument("bad bind address: " +
                                   options_.bind_address);
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    const std::string err = std::strerror(errno);
    Stop();
    return Status::IOError("bind " + options_.bind_address + ":" +
                           std::to_string(options_.port) + ": " + err);
  }
  if (::listen(listen_fd_, 128) != 0) {
    const std::string err = std::strerror(errno);
    Stop();
    return Status::IOError("listen: " + err);
  }
  socklen_t len = sizeof(addr);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
  port_ = ntohs(addr.sin_port);

  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  wake_fd_ = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
  if (epoll_fd_ < 0 || wake_fd_ < 0) {
    Stop();
    return Status::IOError("epoll/eventfd setup failed");
  }
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.u64 = kListenerId;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, listen_fd_, &ev);
  ev.data.u64 = kWakeId;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &ev);

  stopping_.store(false, std::memory_order_relaxed);
  loop_ = std::thread([this] { LoopMain(); });
  const size_t n_workers = std::max<size_t>(1, options_.worker_threads);
  workers_.reserve(n_workers);
  for (size_t i = 0; i < n_workers; ++i) {
    workers_.emplace_back([this] { WorkerMain(); });
  }
  started_ = true;
  return Status::OK();
}

void HttpServer::Stop() {
  if (started_) {
    stopping_.store(true, std::memory_order_relaxed);
    uint64_t one = 1;
    [[maybe_unused]] ssize_t n = ::write(wake_fd_, &one, sizeof(one));
    loop_.join();
    jobs_cv_.notify_all();
    for (std::thread& w : workers_) w.join();
    workers_.clear();
    started_ = false;
  }
  conns_.clear();  // Connection dtor is trivial; fds were closed by the loop
  if (epoll_fd_ >= 0) ::close(epoll_fd_), epoll_fd_ = -1;
  if (wake_fd_ >= 0) ::close(wake_fd_), wake_fd_ = -1;
  if (listen_fd_ >= 0) ::close(listen_fd_), listen_fd_ = -1;
}

void HttpServer::UpdateEvents(Connection* conn, uint32_t events) {
  if (conn->events == events) return;
  conn->events = events;
  epoll_event ev{};
  ev.events = events;
  ev.data.u64 = conn->id;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, conn->fd, &ev);
}

void HttpServer::CloseConnection(uint64_t id) {
  auto it = conns_.find(id);
  if (it == conns_.end()) return;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, it->second->fd, nullptr);
  ::close(it->second->fd);
  conns_.erase(it);
  Net().open.Set(static_cast<int64_t>(conns_.size()));
}

void HttpServer::AcceptReady() {
  for (;;) {
    const int fd =
        ::accept4(listen_fd_, nullptr, nullptr, SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) return;  // EAGAIN or transient accept failure: both "later"

    if (conns_.size() >= options_.max_connections) {
      // Edge admission: a fast, explicit no. Best effort -- the 503 fits
      // in the socket buffer of a fresh connection or it doesn't.
      HttpResponse resp;
      resp.status = 503;
      resp.body = "{\"error\":\"server at connection limit\"}";
      resp.close = true;
      const std::string bytes = SerializeResponse(resp, false);
      [[maybe_unused]] ssize_t n =
          ::send(fd, bytes.data(), bytes.size(), MSG_NOSIGNAL);
      ::close(fd);
      Net().rejected.Increment();
      continue;
    }

    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    const uint64_t id = next_conn_id_++;
    auto conn = std::make_unique<Connection>(options_.limits);
    conn->id = id;
    conn->fd = fd;
    conn->events = EPOLLIN;
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.u64 = id;
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev);
    conns_.emplace(id, std::move(conn));
    Net().accepted.Increment();
    Net().open.Set(static_cast<int64_t>(conns_.size()));
  }
}

void HttpServer::PumpConnection(Connection* conn) {
  if (conn->busy) return;
  HttpRequest request;
  switch (conn->parser.Next(&request)) {
    case RequestParser::Result::kReady: {
      Net().requests.Increment();
      conn->busy = true;
      UpdateEvents(conn, 0);  // pause reads while the worker owns it
      std::lock_guard<std::mutex> lock(jobs_mu_);
      jobs_.push_back(Job{conn->id, std::move(request)});
      jobs_cv_.notify_one();
      return;
    }
    case RequestParser::Result::kError: {
      // The stream lost framing; answer once and hang up.
      Net().parse_errors.Increment();
      HttpResponse resp;
      resp.status = conn->parser.error_status();
      resp.body = "{\"error\":\"" + conn->parser.error_message() + "\"}";
      resp.close = true;
      CountResponseClass(resp.status);
      conn->busy = true;  // no further reads will be dispatched
      conn->outbuf = SerializeResponse(resp, false);
      conn->outpos = 0;
      conn->close_after_flush = true;
      UpdateEvents(conn, EPOLLOUT);
      return;
    }
    case RequestParser::Result::kNeedMore:
      if (conn->eof_seen) {
        // The peer will never send the rest of this request.
        CloseConnection(conn->id);
        return;
      }
      UpdateEvents(conn, EPOLLIN);
      return;
  }
}

void HttpServer::HandleReadable(Connection* conn) {
  // Drain the socket, but never buffer more than one oversized request's
  // worth beyond the parser limits: a client pipelining faster than we
  // serve gets parked on the kernel buffer, not in our heap.
  const size_t cap =
      options_.limits.max_head_bytes + options_.limits.max_body_bytes;
  char buf[16 * 1024];
  while (conn->parser.buffered_bytes() <= cap) {
    const ssize_t n = ::read(conn->fd, buf, sizeof(buf));
    if (n > 0) {
      conn->parser.Feed(std::string_view(buf, static_cast<size_t>(n)));
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    if (n < 0 && errno == EINTR) continue;
    if (n < 0) {
      // Hard error: the socket is unusable in both directions.
      CloseConnection(conn->id);
      return;
    }
    // EOF. A half-closing client (shutdown(SHUT_WR) after the request, the
    // HTTP/1.0 idiom) may have a complete request sitting in the buffer;
    // note the EOF and let the normal pump/flush path serve it. The pump
    // closes the connection once nothing parseable remains.
    conn->eof_seen = true;
    break;
  }
  PumpConnection(conn);
}

void HttpServer::HandleWritable(Connection* conn) {
  while (conn->outpos < conn->outbuf.size()) {
    // MSG_NOSIGNAL: a peer that already reset the connection must surface
    // as EPIPE here, not as a process-killing SIGPIPE.
    const ssize_t n = ::send(conn->fd, conn->outbuf.data() + conn->outpos,
                             conn->outbuf.size() - conn->outpos, MSG_NOSIGNAL);
    if (n > 0) {
      conn->outpos += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return;
    if (n < 0 && errno == EINTR) continue;
    CloseConnection(conn->id);
    return;
  }
  // Flushed.
  conn->outbuf.clear();
  conn->outpos = 0;
  if (conn->close_after_flush) {
    CloseConnection(conn->id);
    return;
  }
  conn->busy = false;
  // Serve any pipelined request already buffered before re-arming reads.
  PumpConnection(conn);
}

void HttpServer::DrainOutcomes() {
  std::vector<Outcome> done;
  {
    std::lock_guard<std::mutex> lock(outcomes_mu_);
    done.swap(outcomes_);
  }
  for (Outcome& o : done) {
    auto it = conns_.find(o.conn_id);
    if (it == conns_.end()) continue;  // client vanished mid-handling
    Connection* conn = it->second.get();
    conn->outbuf = std::move(o.bytes);
    conn->outpos = 0;
    if (!o.keep_alive) conn->close_after_flush = true;
    UpdateEvents(conn, EPOLLOUT);
    HandleWritable(conn);  // often completes in one write
  }
}

void HttpServer::LoopMain() {
  epoll_event events[64];
  while (!stopping_.load(std::memory_order_relaxed)) {
    const int n = ::epoll_wait(epoll_fd_, events, 64, -1);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    for (int i = 0; i < n; ++i) {
      const uint64_t id = events[i].data.u64;
      if (id == kListenerId) {
        AcceptReady();
        continue;
      }
      if (id == kWakeId) {
        uint64_t drain;
        while (::read(wake_fd_, &drain, sizeof(drain)) > 0) {
        }
        DrainOutcomes();
        continue;
      }
      auto it = conns_.find(id);
      if (it == conns_.end()) continue;
      Connection* conn = it->second.get();
      if (events[i].events & (EPOLLHUP | EPOLLERR)) {
        if (!(events[i].events & (EPOLLIN | EPOLLOUT))) {
          CloseConnection(id);
          continue;
        }
      }
      if (events[i].events & EPOLLIN) HandleReadable(conn);
      // The connection may have been closed by the read path.
      if (conns_.find(id) == conns_.end()) continue;
      if (events[i].events & EPOLLOUT) HandleWritable(conn);
    }
  }
  // Teardown on the loop thread, which owns all connection fds.
  for (auto& [id, conn] : conns_) {
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, conn->fd, nullptr);
    ::close(conn->fd);
  }
  conns_.clear();
  Net().open.Set(0);
}

void HttpServer::WorkerMain() {
  for (;;) {
    Job job;
    {
      std::unique_lock<std::mutex> lock(jobs_mu_);
      jobs_cv_.wait(lock, [this] {
        return stopping_.load(std::memory_order_relaxed) || !jobs_.empty();
      });
      if (stopping_.load(std::memory_order_relaxed)) return;
      job = std::move(jobs_.front());
      jobs_.pop_front();
    }
    Timer timer;
    HttpResponse resp = handler_(job.request);
    Net().request_ns.Record(static_cast<uint64_t>(timer.ElapsedNanos()));
    CountResponseClass(resp.status);
    const bool alive = job.request.keep_alive && !resp.close;
    Outcome outcome{job.conn_id, SerializeResponse(resp, job.request.keep_alive),
                    alive};
    {
      std::lock_guard<std::mutex> lock(outcomes_mu_);
      outcomes_.push_back(std::move(outcome));
    }
    uint64_t one = 1;
    [[maybe_unused]] ssize_t n = ::write(wake_fd_, &one, sizeof(one));
  }
}

}  // namespace toss::net
