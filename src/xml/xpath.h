// XPath-lite: the query surface the embedded store exposes, mirroring the
// subset of XPath 1.0 that TOSS's query executor generates when it rewrites
// pattern trees (the paper's phase (i)).
//
// Supported grammar:
//
//   path      := ('/' | '//') step (('/' | '//') step)*
//   step      := nametest predicate*
//   nametest  := NAME | '*'
//   predicate := '[' or-expr ']'
//   or-expr   := and-expr ('or' and-expr)*
//   and-expr  := unary ('and' unary)*
//   unary     := 'not' '(' or-expr ')' | primary
//   primary   := relpath                          -- existence test
//              | relpath ('=' | '!=' | '<=' | '>=' | '<' | '>') literal
//              | 'contains' '(' relpath ',' literal ')'
//              | 'starts-with' '(' relpath ',' literal ')'
//              | '(' or-expr ')'
//
// Ordering comparisons use CompareScalar (common/string_util.h): integer
// when both sides are integers, double when both are non-integer numbers,
// lexicographic for two strings, and *incomparable* (false) for mixed
// representations -- mirrored exactly by the store's ordered indexes.
//   relpath   := '.' | '@' NAME | NAME ('/' NAME)*
//   literal   := "'" chars "'" | '"' chars '"'
//
// Comparisons use XPath's existential semantics: `author='X'` is true when
// *some* <author> child's text equals X.

#ifndef TOSS_XML_XPATH_H_
#define TOSS_XML_XPATH_H_

#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "xml/xml_document.h"

namespace toss::xml {

/// Conservative prefilter facts extracted from a compiled expression: every
/// listed tag/value/term MUST occur in a document for it to match. The
/// store's planner intersects these against its indexes to prune documents
/// before full evaluation. Facts are only drawn from conjunctive context
/// (never from under `or`/`not`), so pruning is sound.
struct PlanHints {
  /// Element tags that must exist somewhere in the document.
  std::vector<std::string> required_tags;
  /// (tag, exact text content) pairs that must exist.
  std::vector<std::pair<std::string, std::string>> required_values;
  /// Lowercased word tokens that must appear in some text content.
  std::vector<std::string> required_terms;
  /// Disjunctive groups: the document must contain a `tag` element whose
  /// text equals AT LEAST ONE of the listed values. Produced by predicates
  /// of the form [(. = 'a' or . = 'b' or ...)] -- exactly the shape TOSS
  /// query rewriting emits for SEO term expansions, so expanded queries
  /// stay index-prunable (union of value postings).
  struct AnyOfValues {
    std::string tag;
    std::vector<std::string> values;
  };
  std::vector<AnyOfValues> value_groups;
  /// Ordering facts from comparison predicates ([. >= '1998'], [year <=
  /// '2000']): the document must contain a `tag` element whose content is
  /// within [lo, hi] under CompareScalar ordering (absent side = open).
  /// Strict comparisons contribute their inclusive relaxation (still a
  /// sound MUST fact).
  struct ValueRange {
    std::string tag;
    std::optional<std::string> lo;
    std::optional<std::string> hi;
  };
  std::vector<ValueRange> ranges;
};

/// Parsed XPath-lite expression; obtain via XPath::Compile.
class XPath {
 public:
  /// Compiles `expr`; returns ParseError on malformed input.
  static Result<XPath> Compile(std::string_view expr);

  XPath(XPath&&) noexcept;
  XPath& operator=(XPath&&) noexcept;
  XPath(const XPath&) = delete;
  XPath& operator=(const XPath&) = delete;
  ~XPath();

  /// Evaluates against `doc`, returning matching element ids in document
  /// order (no duplicates).
  std::vector<NodeId> Evaluate(const XmlDocument& doc) const;

  /// The source text the expression was compiled from.
  const std::string& text() const { return text_; }

  /// Prefilter facts for index-backed planning (see PlanHints).
  PlanHints Hints() const;

 private:
  struct Impl;
  XPath(std::string text, std::unique_ptr<Impl> impl);

  std::string text_;
  std::unique_ptr<Impl> impl_;
};

/// One-shot convenience: compile + evaluate.
Result<std::vector<NodeId>> EvaluateXPath(const XmlDocument& doc,
                                          std::string_view expr);

}  // namespace toss::xml

#endif  // TOSS_XML_XPATH_H_
