#include "xml/xml_writer.h"

namespace toss::xml {

namespace {

bool IsTextOnly(const XmlDocument& doc, NodeId id) {
  for (NodeId c : doc.node(id).children) {
    if (doc.node(c).kind != NodeKind::kText) return false;
  }
  return true;
}

void WriteNode(const XmlDocument& doc, NodeId id, const WriteOptions& opts,
               int depth, std::string* out) {
  const XmlNode& n = doc.node(id);
  std::string indent = opts.pretty ? std::string(2 * depth, ' ') : "";
  if (n.kind == NodeKind::kText) {
    *out += indent;
    *out += EscapeText(n.text);
    if (opts.pretty) *out += '\n';
    return;
  }
  *out += indent;
  *out += '<';
  *out += n.tag;
  for (const auto& attr : n.attributes) {
    *out += ' ';
    *out += attr.name;
    *out += "=\"";
    *out += EscapeText(attr.value);
    *out += '"';
  }
  if (n.children.empty()) {
    *out += "/>";
    if (opts.pretty) *out += '\n';
    return;
  }
  *out += '>';
  if (opts.pretty && IsTextOnly(doc, id)) {
    // Keep <title>Some text</title> on one line.
    for (NodeId c : n.children) *out += EscapeText(doc.node(c).text);
    *out += "</";
    *out += n.tag;
    *out += ">\n";
    return;
  }
  if (opts.pretty) *out += '\n';
  for (NodeId c : n.children) {
    WriteNode(doc, c, opts, depth + 1, out);
  }
  *out += indent;
  *out += "</";
  *out += n.tag;
  *out += '>';
  if (opts.pretty) *out += '\n';
}

}  // namespace

std::string EscapeText(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '&':
        out += "&amp;";
        break;
      case '<':
        out += "&lt;";
        break;
      case '>':
        out += "&gt;";
        break;
      case '"':
        out += "&quot;";
        break;
      default:
        out += c;
    }
  }
  return out;
}

std::string WriteSubtree(const XmlDocument& doc, NodeId id,
                         const WriteOptions& options) {
  std::string out;
  if (options.declaration) {
    out += "<?xml version=\"1.0\"?>";
    out += options.pretty ? "\n" : "";
  }
  WriteNode(doc, id, options, 0, &out);
  return out;
}

std::string Write(const XmlDocument& doc, const WriteOptions& options) {
  if (doc.empty()) return "";
  return WriteSubtree(doc, doc.root(), options);
}

}  // namespace toss::xml
