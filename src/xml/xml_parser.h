// Recursive-descent parser for the XML 1.0 subset used by bibliographic
// data: prolog, comments, CDATA, elements with attributes, character data
// with the five predefined entities plus numeric character references.
//
// Not supported (rejected with ParseError): DTDs, processing instructions
// other than the XML declaration, namespaces beyond treating ':' as a tag
// character, and external entities.

#ifndef TOSS_XML_XML_PARSER_H_
#define TOSS_XML_XML_PARSER_H_

#include <string_view>

#include "common/result.h"
#include "xml/xml_document.h"

namespace toss::xml {

/// Parses `text` into a document. On failure the Status message includes the
/// 1-based line number of the offending construct.
Result<XmlDocument> Parse(std::string_view text);

}  // namespace toss::xml

#endif  // TOSS_XML_XML_PARSER_H_
