#include "xml/xml_document.h"

#include <cassert>

namespace toss::xml {

NodeId XmlDocument::NewNode(NodeKind kind, NodeId parent) {
  NodeId id = static_cast<NodeId>(nodes_.size());
  nodes_.emplace_back();
  nodes_[id].kind = kind;
  nodes_[id].parent = parent;
  if (parent != kInvalidNode) nodes_[parent].children.push_back(id);
  return id;
}

NodeId XmlDocument::CreateRoot(std::string_view tag) {
  assert(nodes_.empty() && "CreateRoot on non-empty document");
  NodeId id = NewNode(NodeKind::kElement, kInvalidNode);
  nodes_[id].tag = tag;
  return id;
}

NodeId XmlDocument::AppendElement(NodeId parent, std::string_view tag) {
  NodeId id = NewNode(NodeKind::kElement, parent);
  nodes_[id].tag = tag;
  return id;
}

NodeId XmlDocument::AppendText(NodeId parent, std::string_view text) {
  NodeId id = NewNode(NodeKind::kText, parent);
  nodes_[id].text = text;
  return id;
}

NodeId XmlDocument::AppendTextElement(NodeId parent, std::string_view tag,
                                      std::string_view text) {
  NodeId el = AppendElement(parent, tag);
  AppendText(el, text);
  return el;
}

void XmlDocument::SetAttribute(NodeId node, std::string_view name,
                               std::string_view value) {
  assert(nodes_[node].kind == NodeKind::kElement);
  for (auto& attr : nodes_[node].attributes) {
    if (attr.name == name) {
      attr.value = value;
      return;
    }
  }
  nodes_[node].attributes.push_back(
      {std::string(name), std::string(value)});
}

std::string XmlDocument::TextContent(NodeId id) const {
  std::string out;
  // Iterative preorder walk collecting text nodes.
  std::vector<NodeId> stack{id};
  while (!stack.empty()) {
    NodeId cur = stack.back();
    stack.pop_back();
    const XmlNode& n = nodes_[cur];
    if (n.kind == NodeKind::kText) out += n.text;
    for (auto it = n.children.rbegin(); it != n.children.rend(); ++it) {
      stack.push_back(*it);
    }
  }
  return out;
}

std::string_view XmlDocument::Attribute(NodeId id,
                                        std::string_view name) const {
  for (const auto& attr : nodes_[id].attributes) {
    if (attr.name == name) return attr.value;
  }
  return {};
}

std::vector<NodeId> XmlDocument::ElementDescendants(NodeId id) const {
  std::vector<NodeId> out;
  std::vector<NodeId> stack;
  for (auto it = nodes_[id].children.rbegin();
       it != nodes_[id].children.rend(); ++it) {
    stack.push_back(*it);
  }
  while (!stack.empty()) {
    NodeId cur = stack.back();
    stack.pop_back();
    const XmlNode& n = nodes_[cur];
    if (n.kind == NodeKind::kElement) out.push_back(cur);
    for (auto it = n.children.rbegin(); it != n.children.rend(); ++it) {
      stack.push_back(*it);
    }
  }
  return out;
}

std::vector<NodeId> XmlDocument::ElementChildren(NodeId id) const {
  std::vector<NodeId> out;
  for (NodeId c : nodes_[id].children) {
    if (nodes_[c].kind == NodeKind::kElement) out.push_back(c);
  }
  return out;
}

std::vector<NodeId> XmlDocument::ChildrenByTag(NodeId id,
                                               std::string_view tag) const {
  std::vector<NodeId> out;
  for (NodeId c : nodes_[id].children) {
    if (nodes_[c].kind == NodeKind::kElement && nodes_[c].tag == tag) {
      out.push_back(c);
    }
  }
  return out;
}

NodeId XmlDocument::FirstChildByTag(NodeId id, std::string_view tag) const {
  for (NodeId c : nodes_[id].children) {
    if (nodes_[c].kind == NodeKind::kElement && nodes_[c].tag == tag) {
      return c;
    }
  }
  return kInvalidNode;
}

bool XmlDocument::IsAncestor(NodeId ancestor, NodeId node) const {
  NodeId cur = nodes_[node].parent;
  while (cur != kInvalidNode) {
    if (cur == ancestor) return true;
    cur = nodes_[cur].parent;
  }
  return false;
}

int XmlDocument::Depth(NodeId id) const {
  int d = 0;
  NodeId cur = nodes_[id].parent;
  while (cur != kInvalidNode) {
    ++d;
    cur = nodes_[cur].parent;
  }
  return d;
}

NodeId XmlDocument::CopySubtree(const XmlDocument& src, NodeId src_id,
                                NodeId parent) {
  const XmlNode& sn = src.node(src_id);
  NodeId dst;
  if (sn.kind == NodeKind::kElement) {
    dst = (parent == kInvalidNode && nodes_.empty())
              ? CreateRoot(sn.tag)
              : AppendElement(parent, sn.tag);
    nodes_[dst].attributes = sn.attributes;
    for (NodeId c : sn.children) CopySubtree(src, c, dst);
  } else {
    assert(parent != kInvalidNode && "text node cannot be a root");
    dst = AppendText(parent, sn.text);
  }
  return dst;
}

}  // namespace toss::xml
