// XML serialization with entity escaping and optional pretty-printing.

#ifndef TOSS_XML_XML_WRITER_H_
#define TOSS_XML_XML_WRITER_H_

#include <string>
#include <string_view>

#include "xml/xml_document.h"

namespace toss::xml {

struct WriteOptions {
  /// When true, nests elements with two-space indentation; text-only
  /// elements stay on one line.
  bool pretty = false;
  /// When true, emits an `<?xml version="1.0"?>` declaration first.
  bool declaration = false;
};

/// Escapes `&`, `<`, `>`, `"` for use in character data / attribute values.
std::string EscapeText(std::string_view s);

/// Serializes the subtree rooted at `id`.
std::string WriteSubtree(const XmlDocument& doc, NodeId id,
                         const WriteOptions& options = {});

/// Serializes the whole document.
std::string Write(const XmlDocument& doc, const WriteOptions& options = {});

}  // namespace toss::xml

#endif  // TOSS_XML_XML_WRITER_H_
