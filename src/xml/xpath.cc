#include "xml/xpath.h"

#include <algorithm>
#include <cctype>

#include "common/string_util.h"

namespace toss::xml {

namespace {

// ---------------------------------------------------------------------------
// AST
// ---------------------------------------------------------------------------

struct RelPath {
  bool is_self = false;                 // '.'
  bool is_attribute = false;            // '@name'
  std::string attribute;                // when is_attribute
  std::vector<std::string> segments;    // child steps otherwise
};

struct BoolExpr;

enum class CompareOp {
  kExists,
  kEquals,
  kNotEquals,
  kContains,
  kStartsWith,
  kLess,
  kLessEq,
  kGreater,
  kGreaterEq,
};

struct Predicate {
  RelPath path;
  CompareOp op = CompareOp::kExists;
  std::string literal;
};

struct BoolExpr {
  enum class Kind { kPredicate, kAnd, kOr, kNot } kind = Kind::kPredicate;
  Predicate predicate;                      // kPredicate
  std::vector<std::unique_ptr<BoolExpr>> children;  // kAnd / kOr / kNot
};

/// One bracketed predicate: either a boolean expression or a positional
/// filter (1-based). Entries apply left-to-right over the per-context
/// candidate list, so a[1][b='x'] and a[b='x'][1] differ as in XPath.
struct PredEntry {
  std::unique_ptr<BoolExpr> expr;  // null for positional entries
  int position = 0;                // >= 1 for positional entries
};

struct Step {
  bool descendant = false;  // reached via '//' rather than '/'
  std::string name;         // "*" for wildcard
  std::vector<PredEntry> predicates;
};

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

class PathParser {
 public:
  explicit PathParser(std::string_view text) : text_(text) {}

  Status Parse(std::vector<Step>* out) {
    if (!Lookahead("/")) return Error("path must start with '/' or '//'");
    while (!Eof()) {
      Step step;
      if (Lookahead("//")) {
        step.descendant = true;
        Skip(2);
      } else if (Lookahead("/")) {
        Skip(1);
      } else {
        return Error("expected '/' or '//'");
      }
      TOSS_RETURN_NOT_OK(ParseNameTest(&step.name));
      while (Lookahead("[")) {
        Skip(1);
        SkipSpace();
        // Positional predicate: a bare integer.
        size_t save = pos_;
        if (!Eof() && std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
          size_t start = pos_;
          while (!Eof() &&
                 std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
            ++pos_;
          }
          size_t after_digits = pos_;
          SkipSpace();
          if (Lookahead("]")) {
            int position = std::stoi(std::string(
                text_.substr(start, after_digits - start)));
            if (position < 1) return Error("position must be >= 1");
            Skip(1);
            PredEntry entry;
            entry.position = position;
            step.predicates.push_back(std::move(entry));
            continue;
          }
          pos_ = save;  // not positional after all (e.g. malformed)
        }
        auto expr = std::make_unique<BoolExpr>();
        TOSS_RETURN_NOT_OK(ParseOr(expr.get()));
        if (!Lookahead("]")) return Error("expected ']'");
        Skip(1);
        PredEntry entry;
        entry.expr = std::move(expr);
        step.predicates.push_back(std::move(entry));
      }
      out->push_back(std::move(step));
    }
    if (out->empty()) return Error("empty path");
    return Status::OK();
  }

 private:
  Status Error(const std::string& what) const {
    return Status::ParseError("xpath: " + what + " at offset " +
                              std::to_string(pos_) + " in '" +
                              std::string(text_) + "'");
  }

  bool Eof() const { return pos_ >= text_.size(); }
  bool Lookahead(std::string_view s) const {
    return text_.substr(pos_, s.size()) == s;
  }
  void Skip(size_t n) { pos_ += n; }
  void SkipSpace() {
    while (!Eof() && std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  static bool IsNameChar(char c) {
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
           c == '-' || c == '.' || c == ':';
  }

  // Keyword lookahead with a word boundary (so a tag named "orchid" is not
  // parsed as the operator "or").
  bool LookaheadWord(std::string_view word) const {
    if (!Lookahead(word)) return false;
    size_t after = pos_ + word.size();
    return after >= text_.size() || !IsNameChar(text_[after]);
  }

  Status ParseNameTest(std::string* out) {
    SkipSpace();
    if (!Eof() && text_[pos_] == '*') {
      *out = "*";
      Skip(1);
      return Status::OK();
    }
    return ParseName(out);
  }

  Status ParseName(std::string* out) {
    SkipSpace();
    size_t start = pos_;
    while (!Eof() && IsNameChar(text_[pos_])) ++pos_;
    if (pos_ == start) return Error("expected name");
    *out = std::string(text_.substr(start, pos_ - start));
    return Status::OK();
  }

  Status ParseOr(BoolExpr* out) {
    auto first = std::make_unique<BoolExpr>();
    TOSS_RETURN_NOT_OK(ParseAnd(first.get()));
    SkipSpace();
    if (!LookaheadWord("or")) {
      *out = std::move(*first);
      return Status::OK();
    }
    out->kind = BoolExpr::Kind::kOr;
    out->children.push_back(std::move(first));
    while (true) {
      SkipSpace();
      if (!LookaheadWord("or")) break;
      Skip(2);
      auto next = std::make_unique<BoolExpr>();
      TOSS_RETURN_NOT_OK(ParseAnd(next.get()));
      out->children.push_back(std::move(next));
    }
    return Status::OK();
  }

  Status ParseAnd(BoolExpr* out) {
    auto first = std::make_unique<BoolExpr>();
    TOSS_RETURN_NOT_OK(ParseUnary(first.get()));
    SkipSpace();
    if (!LookaheadWord("and")) {
      *out = std::move(*first);
      return Status::OK();
    }
    out->kind = BoolExpr::Kind::kAnd;
    out->children.push_back(std::move(first));
    while (true) {
      SkipSpace();
      if (!LookaheadWord("and")) break;
      Skip(3);
      auto next = std::make_unique<BoolExpr>();
      TOSS_RETURN_NOT_OK(ParseUnary(next.get()));
      out->children.push_back(std::move(next));
    }
    return Status::OK();
  }

  Status ParseUnary(BoolExpr* out) {
    SkipSpace();
    if (LookaheadWord("not")) {
      size_t save = pos_;
      Skip(3);
      SkipSpace();
      if (Lookahead("(")) {
        Skip(1);
        auto inner = std::make_unique<BoolExpr>();
        TOSS_RETURN_NOT_OK(ParseOr(inner.get()));
        SkipSpace();
        if (!Lookahead(")")) return Error("expected ')' after not(...)");
        Skip(1);
        out->kind = BoolExpr::Kind::kNot;
        out->children.push_back(std::move(inner));
        return Status::OK();
      }
      pos_ = save;  // 'not' was actually a tag name
    }
    return ParsePrimary(out);
  }

  Status ParsePrimary(BoolExpr* out) {
    SkipSpace();
    if (Lookahead("(")) {
      Skip(1);
      TOSS_RETURN_NOT_OK(ParseOr(out));
      SkipSpace();
      if (!Lookahead(")")) return Error("expected ')'");
      Skip(1);
      return Status::OK();
    }
    out->kind = BoolExpr::Kind::kPredicate;
    Predicate* p = &out->predicate;
    if (LookaheadWord("contains")) {
      Skip(8);
      SkipSpace();
      if (!Lookahead("(")) return Error("expected '(' after contains");
      Skip(1);
      TOSS_RETURN_NOT_OK(ParseRelPath(&p->path));
      SkipSpace();
      if (!Lookahead(",")) return Error("expected ',' in contains()");
      Skip(1);
      TOSS_RETURN_NOT_OK(ParseLiteral(&p->literal));
      SkipSpace();
      if (!Lookahead(")")) return Error("expected ')' after contains()");
      Skip(1);
      p->op = CompareOp::kContains;
      return Status::OK();
    }
    if (LookaheadWord("starts-with")) {
      Skip(11);
      SkipSpace();
      if (!Lookahead("(")) return Error("expected '(' after starts-with");
      Skip(1);
      TOSS_RETURN_NOT_OK(ParseRelPath(&p->path));
      SkipSpace();
      if (!Lookahead(",")) return Error("expected ',' in starts-with()");
      Skip(1);
      TOSS_RETURN_NOT_OK(ParseLiteral(&p->literal));
      SkipSpace();
      if (!Lookahead(")")) return Error("expected ')' after starts-with()");
      Skip(1);
      p->op = CompareOp::kStartsWith;
      return Status::OK();
    }
    TOSS_RETURN_NOT_OK(ParseRelPath(&p->path));
    SkipSpace();
    struct OpToken {
      const char* token;
      CompareOp op;
    };
    // Longest match first.
    static constexpr OpToken kOps[] = {
        {"!=", CompareOp::kNotEquals}, {"<=", CompareOp::kLessEq},
        {">=", CompareOp::kGreaterEq}, {"=", CompareOp::kEquals},
        {"<", CompareOp::kLess},       {">", CompareOp::kGreater},
    };
    for (const auto& candidate : kOps) {
      if (Lookahead(candidate.token)) {
        Skip(std::string_view(candidate.token).size());
        p->op = candidate.op;
        return ParseLiteral(&p->literal);
      }
    }
    p->op = CompareOp::kExists;
    return Status::OK();
  }

  Status ParseRelPath(RelPath* out) {
    SkipSpace();
    if (Lookahead(".")) {
      Skip(1);
      out->is_self = true;
      return Status::OK();
    }
    if (Lookahead("@")) {
      Skip(1);
      out->is_attribute = true;
      return ParseName(&out->attribute);
    }
    std::string name;
    TOSS_RETURN_NOT_OK(ParseName(&name));
    out->segments.push_back(std::move(name));
    while (Lookahead("/")) {
      Skip(1);
      TOSS_RETURN_NOT_OK(ParseName(&name));
      out->segments.push_back(std::move(name));
    }
    return Status::OK();
  }

  Status ParseLiteral(std::string* out) {
    SkipSpace();
    if (Eof() || (text_[pos_] != '\'' && text_[pos_] != '"')) {
      return Error("expected string literal");
    }
    char quote = text_[pos_];
    Skip(1);
    size_t start = pos_;
    while (!Eof() && text_[pos_] != quote) ++pos_;
    if (Eof()) return Error("unterminated string literal");
    *out = std::string(text_.substr(start, pos_ - start));
    Skip(1);
    return Status::OK();
  }

  std::string_view text_;
  size_t pos_ = 0;
};

// ---------------------------------------------------------------------------
// Evaluator
// ---------------------------------------------------------------------------

void CollectRelPathValues(const XmlDocument& doc, NodeId ctx,
                          const std::vector<std::string>& segments,
                          size_t index, std::vector<std::string>* out) {
  if (index == segments.size()) {
    out->push_back(doc.TextContent(ctx));
    return;
  }
  for (NodeId c : doc.ChildrenByTag(ctx, segments[index])) {
    CollectRelPathValues(doc, c, segments, index + 1, out);
  }
}

bool EvalPredicate(const XmlDocument& doc, NodeId ctx, const Predicate& p) {
  std::vector<std::string> values;
  if (p.path.is_self) {
    values.push_back(doc.TextContent(ctx));
  } else if (p.path.is_attribute) {
    std::string_view v = doc.Attribute(ctx, p.path.attribute);
    if (p.op == CompareOp::kExists) return !v.empty();
    values.emplace_back(v);
  } else {
    CollectRelPathValues(doc, ctx, p.path.segments, 0, &values);
  }
  switch (p.op) {
    case CompareOp::kExists:
      return !values.empty();
    case CompareOp::kEquals:
      return std::any_of(values.begin(), values.end(),
                         [&](const std::string& v) { return v == p.literal; });
    case CompareOp::kNotEquals:
      // XPath existential semantics: true if some value differs.
      return std::any_of(
          values.begin(), values.end(),
          [&](const std::string& v) { return v != p.literal; });
    case CompareOp::kContains:
      return std::any_of(values.begin(), values.end(),
                         [&](const std::string& v) {
                           return Contains(v, p.literal);
                         });
    case CompareOp::kStartsWith:
      return std::any_of(values.begin(), values.end(),
                         [&](const std::string& v) {
                           return StartsWith(v, p.literal);
                         });
    case CompareOp::kLess:
    case CompareOp::kLessEq:
    case CompareOp::kGreater:
    case CompareOp::kGreaterEq:
      return std::any_of(values.begin(), values.end(),
                         [&](const std::string& v) {
                           auto cmp = CompareScalar(v, p.literal);
                           if (!cmp.has_value()) return false;
                           switch (p.op) {
                             case CompareOp::kLess:
                               return *cmp < 0;
                             case CompareOp::kLessEq:
                               return *cmp <= 0;
                             case CompareOp::kGreater:
                               return *cmp > 0;
                             default:
                               return *cmp >= 0;
                           }
                         });
  }
  return false;
}

bool EvalBool(const XmlDocument& doc, NodeId ctx, const BoolExpr& e) {
  switch (e.kind) {
    case BoolExpr::Kind::kPredicate:
      return EvalPredicate(doc, ctx, e.predicate);
    case BoolExpr::Kind::kAnd:
      return std::all_of(e.children.begin(), e.children.end(),
                         [&](const auto& c) { return EvalBool(doc, ctx, *c); });
    case BoolExpr::Kind::kOr:
      return std::any_of(e.children.begin(), e.children.end(),
                         [&](const auto& c) { return EvalBool(doc, ctx, *c); });
    case BoolExpr::Kind::kNot:
      return !EvalBool(doc, ctx, *e.children[0]);
  }
  return false;
}

bool NameMatches(const std::string& test, const std::string& tag) {
  return test == "*" || test == tag;
}

}  // namespace

struct XPath::Impl {
  std::vector<Step> steps;
};

XPath::XPath(std::string text, std::unique_ptr<Impl> impl)
    : text_(std::move(text)), impl_(std::move(impl)) {}

XPath::XPath(XPath&&) noexcept = default;
XPath& XPath::operator=(XPath&&) noexcept = default;
XPath::~XPath() = default;

Result<XPath> XPath::Compile(std::string_view expr) {
  auto impl = std::make_unique<Impl>();
  PathParser parser(expr);
  TOSS_RETURN_NOT_OK(parser.Parse(&impl->steps));
  return XPath(std::string(expr), std::move(impl));
}

std::vector<NodeId> XPath::Evaluate(const XmlDocument& doc) const {
  std::vector<NodeId> current;
  if (doc.empty()) return current;

  // Applies one step to a per-context candidate list: name test, then the
  // predicate entries left-to-right (boolean filters elementwise,
  // positional filters select by 1-based index within the surviving list).
  auto apply_step = [&](const Step& step, std::vector<NodeId> candidates) {
    std::vector<NodeId> kept;
    for (NodeId id : candidates) {
      const XmlNode& n = doc.node(id);
      if (n.kind == NodeKind::kElement && NameMatches(step.name, n.tag)) {
        kept.push_back(id);
      }
    }
    for (const auto& pred : step.predicates) {
      if (pred.expr != nullptr) {
        std::vector<NodeId> filtered;
        for (NodeId id : kept) {
          if (EvalBool(doc, id, *pred.expr)) filtered.push_back(id);
        }
        kept = std::move(filtered);
      } else {
        size_t index = static_cast<size_t>(pred.position);
        if (index > kept.size()) {
          kept.clear();
        } else {
          kept = {kept[index - 1]};
        }
      }
      if (kept.empty()) break;
    }
    return kept;
  };

  // The virtual document node is the context for the first step: '/' selects
  // among the root element only; '//' among all elements.
  bool first = true;
  for (const Step& step : impl_->steps) {
    std::vector<NodeId> next;
    auto expand_context = [&](NodeId ctx, bool include_self_as_root) {
      std::vector<NodeId> candidates;
      if (step.descendant) {
        if (include_self_as_root) candidates.push_back(ctx);
        auto desc = doc.ElementDescendants(ctx);
        candidates.insert(candidates.end(), desc.begin(), desc.end());
      } else if (include_self_as_root) {
        candidates.push_back(ctx);
      } else {
        candidates = doc.ElementChildren(ctx);
      }
      auto kept = apply_step(step, std::move(candidates));
      next.insert(next.end(), kept.begin(), kept.end());
    };
    if (first) {
      expand_context(doc.root(), /*include_self_as_root=*/true);
      first = false;
    } else {
      for (NodeId ctx : current) {
        expand_context(ctx, /*include_self_as_root=*/false);
      }
    }
    // Dedup while preserving document order (ids are preorder-assigned).
    std::sort(next.begin(), next.end());
    next.erase(std::unique(next.begin(), next.end()), next.end());
    current = std::move(next);
    if (current.empty()) break;
  }
  return current;
}

namespace {

void CollectHints(const BoolExpr& e, const std::string& step_name,
                  PlanHints* hints) {
  switch (e.kind) {
    case BoolExpr::Kind::kPredicate: {
      const Predicate& p = e.predicate;
      // Relpath segments must exist for any of the operators to hold
      // (equality/contains are existential over matching elements).
      for (const auto& seg : p.path.segments) {
        hints->required_tags.push_back(seg);
      }
      if (p.op == CompareOp::kEquals) {
        if (!p.path.segments.empty()) {
          hints->required_values.push_back({p.path.segments.back(),
                                            p.literal});
        } else if (p.path.is_self) {
          for (auto& tok : TokenizeWords(p.literal)) {
            hints->required_terms.push_back(std::move(tok));
          }
        }
      } else if (p.op == CompareOp::kContains) {
        for (auto& tok : TokenizeWords(p.literal)) {
          hints->required_terms.push_back(std::move(tok));
        }
      } else if (p.op == CompareOp::kStartsWith) {
        // The last token of the prefix may be cut mid-word ("Data Mi"),
        // so only the preceding complete tokens are MUST facts.
        auto toks = TokenizeWords(p.literal);
        for (size_t i = 0; i + 1 < toks.size(); ++i) {
          hints->required_terms.push_back(std::move(toks[i]));
        }
      } else if (p.op == CompareOp::kLess || p.op == CompareOp::kLessEq ||
                 p.op == CompareOp::kGreater ||
                 p.op == CompareOp::kGreaterEq) {
        // One-sided range fact; strict comparisons relax to inclusive.
        std::string tag;
        if (!p.path.segments.empty()) {
          tag = p.path.segments.back();
        } else if (p.path.is_self && step_name != "*") {
          tag = step_name;
        }
        if (!tag.empty()) {
          PlanHints::ValueRange range;
          range.tag = std::move(tag);
          if (p.op == CompareOp::kLess || p.op == CompareOp::kLessEq) {
            range.hi = p.literal;
          } else {
            range.lo = p.literal;
          }
          hints->ranges.push_back(std::move(range));
        }
      }
      break;
    }
    case BoolExpr::Kind::kAnd:
      for (const auto& c : e.children) CollectHints(*c, step_name, hints);
      break;
    case BoolExpr::Kind::kOr:
    case BoolExpr::Kind::kNot:
      // Disjunctive/negated context cannot produce MUST facts.
      break;
  }
}

/// Matches a predicate of the shape (.='a' or .='b' or ...), optionally a
/// single self-equality; fills `values` and returns true.
bool MatchSelfEqualityDisjunction(const BoolExpr& e,
                                  std::vector<std::string>* values) {
  auto is_self_eq = [](const BoolExpr& p) {
    return p.kind == BoolExpr::Kind::kPredicate &&
           p.predicate.op == CompareOp::kEquals && p.predicate.path.is_self;
  };
  if (is_self_eq(e)) {
    values->push_back(e.predicate.literal);
    return true;
  }
  if (e.kind != BoolExpr::Kind::kOr) return false;
  for (const auto& child : e.children) {
    if (!is_self_eq(*child)) return false;
    values->push_back(child->predicate.literal);
  }
  return !values->empty();
}

}  // namespace

PlanHints XPath::Hints() const {
  PlanHints hints;
  for (const Step& step : impl_->steps) {
    if (step.name != "*") hints.required_tags.push_back(step.name);
    for (const auto& pred : step.predicates) {
      if (pred.expr == nullptr) continue;  // positional: no MUST facts
      std::vector<std::string> any_of;
      if (step.name != "*" &&
          MatchSelfEqualityDisjunction(*pred.expr, &any_of) &&
          any_of.size() > 1) {
        hints.value_groups.push_back({step.name, std::move(any_of)});
        continue;  // the group subsumes this predicate's MUST facts
      }
      CollectHints(*pred.expr, step.name, &hints);
    }
  }
  return hints;
}

Result<std::vector<NodeId>> EvaluateXPath(const XmlDocument& doc,
                                          std::string_view expr) {
  TOSS_ASSIGN_OR_RETURN(XPath compiled, XPath::Compile(expr));
  return compiled.Evaluate(doc);
}

}  // namespace toss::xml
