// Vector-backed ordered XML DOM.
//
// Nodes live in a contiguous arena inside XmlDocument and are addressed by
// dense 32-bit NodeIds; child lists preserve document order. This layout is
// deliberately close to how column-oriented engines store trees: traversals
// are pointer-free and the whole document is trivially copyable.

#ifndef TOSS_XML_XML_DOCUMENT_H_
#define TOSS_XML_XML_DOCUMENT_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace toss::xml {

using NodeId = uint32_t;

/// Sentinel meaning "no node".
inline constexpr NodeId kInvalidNode = 0xFFFFFFFFu;

enum class NodeKind : uint8_t {
  kElement,  ///< <tag attr="...">...</tag>
  kText,     ///< character data
};

/// One XML attribute.
struct XmlAttribute {
  std::string name;
  std::string value;
};

/// One node in the arena. Element nodes carry a tag and attributes; text
/// nodes carry character data in `text`.
struct XmlNode {
  NodeKind kind = NodeKind::kElement;
  std::string tag;
  std::string text;
  std::vector<XmlAttribute> attributes;
  NodeId parent = kInvalidNode;
  std::vector<NodeId> children;
};

/// An ordered XML tree.
class XmlDocument {
 public:
  XmlDocument() = default;

  /// Creates the root element; must be called exactly once on an empty
  /// document. Returns the root id.
  NodeId CreateRoot(std::string_view tag);

  /// Appends a new element child under `parent`; returns its id.
  NodeId AppendElement(NodeId parent, std::string_view tag);

  /// Appends a new text child under `parent`; returns its id.
  NodeId AppendText(NodeId parent, std::string_view text);

  /// Convenience: appends `<tag>text</tag>` under `parent`; returns the
  /// element's id.
  NodeId AppendTextElement(NodeId parent, std::string_view tag,
                           std::string_view text);

  /// Adds an attribute to an element node.
  void SetAttribute(NodeId node, std::string_view name,
                    std::string_view value);

  bool empty() const { return nodes_.empty(); }
  size_t size() const { return nodes_.size(); }
  NodeId root() const { return nodes_.empty() ? kInvalidNode : 0; }

  const XmlNode& node(NodeId id) const { return nodes_[id]; }
  XmlNode& node(NodeId id) { return nodes_[id]; }

  /// Concatenation of all text descendants of `id` (the element "content").
  std::string TextContent(NodeId id) const;

  /// Attribute value or empty string when absent.
  std::string_view Attribute(NodeId id, std::string_view name) const;

  /// All element descendants of `id` (excluding `id`), in document order.
  std::vector<NodeId> ElementDescendants(NodeId id) const;

  /// Element children of `id` in document order.
  std::vector<NodeId> ElementChildren(NodeId id) const;

  /// Element children of `id` whose tag equals `tag`.
  std::vector<NodeId> ChildrenByTag(NodeId id, std::string_view tag) const;

  /// First element child with the given tag, or kInvalidNode.
  NodeId FirstChildByTag(NodeId id, std::string_view tag) const;

  /// True iff `ancestor` is a proper ancestor of `node`.
  bool IsAncestor(NodeId ancestor, NodeId node) const;

  /// Depth of the node (root = 0).
  int Depth(NodeId id) const;

  /// Deep-copies the subtree rooted at `src_id` in `src` under `parent` in
  /// this document; returns the id of the copied root.
  NodeId CopySubtree(const XmlDocument& src, NodeId src_id, NodeId parent);

 private:
  NodeId NewNode(NodeKind kind, NodeId parent);

  std::vector<XmlNode> nodes_;
};

}  // namespace toss::xml

#endif  // TOSS_XML_XML_DOCUMENT_H_
