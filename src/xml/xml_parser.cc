#include "xml/xml_parser.h"

#include <cctype>
#include <string>

#include "common/string_util.h"

namespace toss::xml {

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Result<XmlDocument> Run() {
    SkipProlog();
    // Status converts implicitly into an errored Result, so the usual
    // propagation macro works here too.
    TOSS_RETURN_NOT_OK(ParseElement(kInvalidNode));
    SkipMisc();
    if (pos_ != text_.size()) {
      return Error("trailing content after document element");
    }
    if (doc_.empty()) return Error("no document element");
    return std::move(doc_);
  }

 private:

  Status Error(const std::string& what) const {
    return Status::ParseError(what + " (line " + std::to_string(Line()) +
                              ")");
  }

  int Line() const {
    int line = 1;
    for (size_t i = 0; i < pos_ && i < text_.size(); ++i) {
      if (text_[i] == '\n') ++line;
    }
    return line;
  }

  bool Eof() const { return pos_ >= text_.size(); }
  char Peek() const { return text_[pos_]; }
  bool Lookahead(std::string_view s) const {
    return text_.substr(pos_, s.size()) == s;
  }
  void Skip(size_t n) { pos_ += n; }

  void SkipWhitespace() {
    while (!Eof() && std::isspace(static_cast<unsigned char>(Peek()))) {
      ++pos_;
    }
  }

  // Skips whitespace, the XML declaration, a DOCTYPE line, and comments
  // before the document element.
  void SkipProlog() {
    for (;;) {
      SkipWhitespace();
      if (Lookahead("<?")) {
        size_t end = text_.find("?>", pos_);
        pos_ = (end == std::string_view::npos) ? text_.size() : end + 2;
      } else if (Lookahead("<!--")) {
        SkipComment();
      } else if (Lookahead("<!DOCTYPE")) {
        // Skip to the matching '>' (internal subsets are not supported,
        // but a simple bracket-free DOCTYPE is tolerated).
        size_t end = text_.find('>', pos_);
        pos_ = (end == std::string_view::npos) ? text_.size() : end + 1;
      } else {
        return;
      }
    }
  }

  void SkipMisc() {
    for (;;) {
      SkipWhitespace();
      if (Lookahead("<!--")) {
        SkipComment();
      } else {
        return;
      }
    }
  }

  void SkipComment() {
    size_t end = text_.find("-->", pos_);
    pos_ = (end == std::string_view::npos) ? text_.size() : end + 3;
  }

  static bool IsNameStart(char c) {
    return std::isalpha(static_cast<unsigned char>(c)) || c == '_' ||
           c == ':';
  }
  static bool IsNameChar(char c) {
    return IsNameStart(c) || std::isdigit(static_cast<unsigned char>(c)) ||
           c == '-' || c == '.';
  }

  Status ParseName(std::string* out) {
    if (Eof() || !IsNameStart(Peek())) return Error("expected name");
    size_t start = pos_;
    while (!Eof() && IsNameChar(Peek())) ++pos_;
    *out = std::string(text_.substr(start, pos_ - start));
    return Status::OK();
  }

  Status DecodeEntities(std::string_view raw, std::string* out) {
    out->clear();
    out->reserve(raw.size());
    for (size_t i = 0; i < raw.size();) {
      if (raw[i] != '&') {
        out->push_back(raw[i++]);
        continue;
      }
      size_t semi = raw.find(';', i);
      if (semi == std::string_view::npos) {
        return Error("unterminated entity reference");
      }
      std::string_view ent = raw.substr(i + 1, semi - i - 1);
      if (ent == "amp") {
        out->push_back('&');
      } else if (ent == "lt") {
        out->push_back('<');
      } else if (ent == "gt") {
        out->push_back('>');
      } else if (ent == "quot") {
        out->push_back('"');
      } else if (ent == "apos") {
        out->push_back('\'');
      } else if (!ent.empty() && ent[0] == '#') {
        long long cp = 0;
        bool ok = ent.size() > 1 && ent[1] == 'x'
                      ? ParseHex(ent.substr(2), &cp)
                      : ParseInt(ent.substr(1), &cp);
        if (!ok || cp < 0 || cp > 0x10FFFF) {
          return Error("bad character reference &" + std::string(ent) + ";");
        }
        AppendUtf8(static_cast<uint32_t>(cp), out);
      } else {
        return Error("unknown entity &" + std::string(ent) + ";");
      }
      i = semi + 1;
    }
    return Status::OK();
  }

  static bool ParseHex(std::string_view s, long long* out) {
    if (s.empty()) return false;
    long long v = 0;
    for (char c : s) {
      int d;
      if (c >= '0' && c <= '9') {
        d = c - '0';
      } else if (c >= 'a' && c <= 'f') {
        d = c - 'a' + 10;
      } else if (c >= 'A' && c <= 'F') {
        d = c - 'A' + 10;
      } else {
        return false;
      }
      v = v * 16 + d;
      if (v > 0x10FFFF) return false;
    }
    *out = v;
    return true;
  }

  static void AppendUtf8(uint32_t cp, std::string* out) {
    if (cp < 0x80) {
      out->push_back(static_cast<char>(cp));
    } else if (cp < 0x800) {
      out->push_back(static_cast<char>(0xC0 | (cp >> 6)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else if (cp < 0x10000) {
      out->push_back(static_cast<char>(0xE0 | (cp >> 12)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else {
      out->push_back(static_cast<char>(0xF0 | (cp >> 18)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    }
  }

  Status ParseAttributes(NodeId el) {
    for (;;) {
      SkipWhitespace();
      if (Eof()) return Error("unterminated start tag");
      if (Peek() == '>' || Lookahead("/>")) return Status::OK();
      std::string name;
      TOSS_RETURN_NOT_OK(ParseName(&name));
      SkipWhitespace();
      if (Eof() || Peek() != '=') return Error("expected '=' in attribute");
      Skip(1);
      SkipWhitespace();
      if (Eof() || (Peek() != '"' && Peek() != '\'')) {
        return Error("expected quoted attribute value");
      }
      char quote = Peek();
      Skip(1);
      size_t start = pos_;
      while (!Eof() && Peek() != quote) ++pos_;
      if (Eof()) return Error("unterminated attribute value");
      std::string value;
      TOSS_RETURN_NOT_OK(
          DecodeEntities(text_.substr(start, pos_ - start), &value));
      Skip(1);
      doc_.SetAttribute(el, name, value);
    }
  }

  Status ParseElement(NodeId parent) {
    if (Eof() || Peek() != '<') return Error("expected '<'");
    Skip(1);
    std::string tag;
    TOSS_RETURN_NOT_OK(ParseName(&tag));
    NodeId el = (parent == kInvalidNode) ? doc_.CreateRoot(tag)
                                         : doc_.AppendElement(parent, tag);
    TOSS_RETURN_NOT_OK(ParseAttributes(el));
    if (Lookahead("/>")) {
      Skip(2);
      return Status::OK();
    }
    if (Peek() != '>') return Error("expected '>'");
    Skip(1);
    return ParseContent(el, tag);
  }

  Status ParseContent(NodeId el, const std::string& tag) {
    std::string pending;  // accumulated character data
    auto flush = [&] {
      // Whitespace-only runs between elements are not significant for
      // bibliographic data; drop them, keep everything else verbatim.
      if (!pending.empty() && !Trim(pending).empty()) {
        doc_.AppendText(el, pending);
      }
      pending.clear();
    };
    for (;;) {
      if (Eof()) return Error("unterminated element <" + tag + ">");
      if (Lookahead("</")) {
        flush();
        Skip(2);
        std::string close;
        TOSS_RETURN_NOT_OK(ParseName(&close));
        SkipWhitespace();
        if (Eof() || Peek() != '>') return Error("malformed end tag");
        Skip(1);
        if (close != tag) {
          return Error("mismatched end tag </" + close + ">, expected </" +
                       tag + ">");
        }
        return Status::OK();
      }
      if (Lookahead("<!--")) {
        SkipComment();
        continue;
      }
      if (Lookahead("<![CDATA[")) {
        Skip(9);
        size_t end = text_.find("]]>", pos_);
        if (end == std::string_view::npos) return Error("unterminated CDATA");
        pending += text_.substr(pos_, end - pos_);
        pos_ = end + 3;
        continue;
      }
      if (Peek() == '<') {
        flush();
        TOSS_RETURN_NOT_OK(ParseElement(el));
        continue;
      }
      size_t start = pos_;
      while (!Eof() && Peek() != '<') ++pos_;
      std::string decoded;
      TOSS_RETURN_NOT_OK(
          DecodeEntities(text_.substr(start, pos_ - start), &decoded));
      pending += decoded;
    }
  }

  std::string_view text_;
  size_t pos_ = 0;
  XmlDocument doc_;
};

}  // namespace

Result<XmlDocument> Parse(std::string_view text) {
  return Parser(text).Run();
}

}  // namespace toss::xml
