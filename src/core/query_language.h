// TOSS-QL: a compact textual query language over the TOSS algebra, so
// queries can be written as strings instead of hand-built pattern trees.
//
// Grammar (keywords case-insensitive; $1 is always the pattern root):
//
//   statement := query
//              | '(' query ')' (setop '(' query ')')*
//   setop    := 'UNION' | 'INTERSECT' | 'EXCEPT'
//   query    := select | project | join
//   select   := 'SELECT' labels 'FROM' IDENT match 'WHERE' condition
//               ('GROUP' 'BY' '$'INT)?
//   project  := 'PROJECT' plist 'FROM' IDENT match 'WHERE' condition
//   join     := 'JOIN' IDENT ',' IDENT match 'WHERE' condition
//               'SELECT' labels
//   match    := 'MATCH' edge (',' edge)*
//   edge     := '$'INT '/' '$'INT        -- parent-child
//             | '$'INT '//' '$'INT       -- ancestor-descendant
//   labels   := '$'INT (',' '$'INT)*
//   plist    := '$'INT '*'? (',' '$'INT '*'?)*   -- '*' keeps the subtree
//   condition: see tax/condition_parser.h
//
// New labels must be introduced in increasing order ($2 before $3, ...),
// each as the child of an already-declared label. For JOIN, $1 is the
// product root (tag tax_prod_root); its first declared child subtree binds
// to the left collection, the second to the right.
//
// Examples:
//
//   SELECT $1 FROM dblp MATCH $1/$2, $1/$3
//   WHERE $1.tag = "inproceedings" & $2.tag = "author" &
//         $3.tag = "booktitle" & $2.content ~ "Jeffrey Ullman" &
//         $3.content isa "database conference"
//
//   JOIN dblp, sigmod MATCH $1/$2, $2/$3, $1//$4, $4/$5
//   WHERE $1.tag = "tax_prod_root" & $2.tag = "inproceedings" &
//         $3.tag = "title" & $4.tag = "article" & $5.tag = "title" &
//         $3.content ~ $5.content
//   SELECT $2, $4

#ifndef TOSS_CORE_QUERY_LANGUAGE_H_
#define TOSS_CORE_QUERY_LANGUAGE_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "core/query_executor.h"
#include "tax/operators.h"
#include "tax/pattern_tree.h"

namespace toss::core {

/// A parsed TOSS-QL statement.
struct ParsedQuery {
  enum class Kind { kSelect, kProject, kJoin, kGroupBy };
  Kind kind = Kind::kSelect;
  std::string collection;        ///< select/project source; join left
  std::string right_collection;  ///< join right
  tax::PatternTree pattern;
  std::vector<int> sl;                 ///< select/join/groupby
  std::vector<tax::ProjectItem> pl;    ///< project
  int group_label = 0;                 ///< groupby partition label
};

/// Parses a TOSS-QL statement.
Result<ParsedQuery> ParseQuery(std::string_view text);

/// A compound statement: one or more queries folded with the TAX set
/// operators (left-associative). A single query is the trivial compound.
struct CompoundQuery {
  enum class SetOp { kUnion, kIntersect, kExcept };
  std::vector<ParsedQuery> queries;
  std::vector<SetOp> ops;  ///< ops[i] combines result i and query i+1
};

/// Parses a statement that may chain parenthesized queries with
/// UNION / INTERSECT / EXCEPT.
Result<CompoundQuery> ParseCompoundQuery(std::string_view text);

/// Executes a compound statement (set operators use order-preserving tree
/// equality, paper Section 5.1.2).
Result<tax::TreeCollection> ExecuteCompoundQuery(
    const QueryExecutor& executor, const CompoundQuery& compound,
    ExecStats* stats = nullptr);

/// Executes a parsed statement through `executor`.
Result<tax::TreeCollection> ExecuteQuery(const QueryExecutor& executor,
                                         const ParsedQuery& query,
                                         ExecStats* stats = nullptr);

/// Convenience: parse + execute.
Result<tax::TreeCollection> RunQuery(const QueryExecutor& executor,
                                     std::string_view text,
                                     ExecStats* stats = nullptr);

}  // namespace toss::core

#endif  // TOSS_CORE_QUERY_LANGUAGE_H_
