#include "core/query_executor.h"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <deque>
#include <memory>
#include <set>
#include <shared_mutex>
#include <unordered_map>
#include <utility>

#include "common/string_util.h"
#include "common/timer.h"
#include "obs/metrics.h"
#include "tax/twig_join.h"

namespace toss::core {

using tax::CondOp;
using tax::Condition;
using tax::CondTerm;
using tax::PatternTree;

namespace {

/// Always-on executor metrics (per-phase latency, candidate/pruning/result
/// counters). One registration, cached for the life of the process.
struct QueryMetrics {
  obs::Counter& selects = obs::Metrics().GetCounter("core.query.select.count");
  obs::Counter& projects =
      obs::Metrics().GetCounter("core.query.project.count");
  obs::Counter& groupbys =
      obs::Metrics().GetCounter("core.query.groupby.count");
  obs::Counter& joins = obs::Metrics().GetCounter("core.query.join.count");
  obs::Counter& xpath_queries =
      obs::Metrics().GetCounter("core.query.xpath_queries");
  obs::Counter& expanded_terms =
      obs::Metrics().GetCounter("core.query.expanded_terms");
  obs::Counter& candidate_docs =
      obs::Metrics().GetCounter("core.query.candidate_docs");
  obs::Counter& result_trees =
      obs::Metrics().GetCounter("core.query.result_trees");
  obs::Histogram& rewrite_ns =
      obs::Metrics().GetHistogram("core.query.rewrite_latency_ns");
  obs::Histogram& store_ns =
      obs::Metrics().GetHistogram("core.query.store_latency_ns");
  obs::Histogram& eval_ns =
      obs::Metrics().GetHistogram("core.query.eval_latency_ns");
  // Structural-join engine counters (see tax::TwigJoinStats).
  obs::Counter& twig_joins =
      obs::Metrics().GetCounter("core.query.join.twig.count");
  obs::Counter& twig_fallbacks =
      obs::Metrics().GetCounter("core.query.join.twig.fallbacks");
  obs::Counter& twig_postings =
      obs::Metrics().GetCounter("core.query.join.twig.postings_built");
  obs::Counter& twig_advances =
      obs::Metrics().GetCounter("core.query.join.twig.stream_advances");
  obs::Counter& twig_pushes =
      obs::Metrics().GetCounter("core.query.join.twig.stack_pushes");
  obs::Counter& twig_pruned =
      obs::Metrics().GetCounter("core.query.join.twig.pruned_subtrees");
  obs::Counter& twig_pairs =
      obs::Metrics().GetCounter("core.query.join.twig.pairs_scanned");
  obs::Counter& twig_combos =
      obs::Metrics().GetCounter("core.query.join.twig.combos_emitted");
  obs::Counter& twig_value_skips =
      obs::Metrics().GetCounter("core.query.join.twig.pairs_value_skipped");
};

QueryMetrics& Instruments() {
  static QueryMetrics* m = new QueryMetrics();
  return *m;
}

/// Annotates `span` with the decoded-tree cache activity between the two
/// stat snapshots. No-op for disabled spans.
void AnnotateCacheDelta(obs::Span* span,
                        const store::Collection::TreeCacheStats& before,
                        const store::Collection::TreeCacheStats& after) {
  if (span == nullptr || !span->enabled()) return;
  span->Annotate("tree_cache_hits",
                 static_cast<uint64_t>(after.hits - before.hits));
  span->Annotate("tree_cache_misses",
                 static_cast<uint64_t>(after.misses - before.misses));
}

/// Memoizing tax::SimilarOracle over Seo::Similar. Per distinct term, the
/// ontology lookup, lowercase form, and similarity signature are computed
/// once and shared across every pair comparison (and worker thread) of one
/// join -- the structural merge compares the same handful of terms
/// quadratically often. The verdict reproduces Seo::Similar exactly:
///   raw equality -> enhanced-isa co-membership when BOTH terms are in the
///   ontology (no fallthrough) -> measure fallback
///   d(lower(x), lower(y)) <= epsilon.
/// The signature prefilter only skips BoundedDistance calls whose result
/// provably exceeds epsilon (SignatureLowerBound never exceeds the true
/// distance, and BoundedDistance is contractually > bound there), so it
/// cannot change the verdict.
class SeoSimilarOracle final : public tax::SimilarOracle {
 public:
  explicit SeoSimilarOracle(const Seo* seo)
      : seo_(seo), epsilon_(seo->epsilon()), has_measure_(seo->has_measure()) {
    if (has_measure_) {
      sim::StringSignature probe;
      signatures_ = seo_->measure().ComputeSignature("", &probe);
    }
  }

  bool Similar(const std::string& x, const std::string& y) const override {
    if (x == y) return true;
    return SimilarPrepared(Prep(x), Prep(y));
  }

  /// Id-keyed variant: equal valid ids short-circuit, and the per-term
  /// memo is probed by SymbolId (u32 hash) instead of hashing the text.
  /// Terms without a known id are interned on first sight, so later pairs
  /// of the same join hit the id-keyed memo too.
  bool SimilarSym(SymbolId sx, const std::string& x, SymbolId sy,
                  const std::string& y) const override {
    if (!SymbolFastPathsEnabled()) return Similar(x, y);
    if (sx != kInvalidSymbol && sx == sy) return true;
    if (x == y) return true;
    return SimilarPrepared(PrepSym(sx, x), PrepSym(sy, y));
  }

  /// Bucket contract for tax::TwigValueFilter: a term's buckets are its
  /// enhanced-isa node ids. Two in-ontology terms are Similar iff they
  /// share a node (Seo::Similar's definition, no fallthrough); a term
  /// outside the ontology has no buckets and is "free" -- the filter then
  /// routes its pairs through SimilarSym, which applies the measure
  /// fallback exactly as Similar would.
  std::vector<uint64_t> CompatBuckets(
      const std::string& term) const override {
    const Prepared& p = Prep(term);
    std::vector<uint64_t> out;
    out.reserve(p.nodes.size());
    for (ontology::HNodeId id : p.nodes) {
      out.push_back(static_cast<uint64_t>(id));
    }
    return out;
  }

 private:
  struct Prepared;

  bool SimilarPrepared(const Prepared& px, const Prepared& py) const {
    if (!px.nodes.empty() && !py.nodes.empty()) {
      // Both terms are in the ontology: similar iff some enhanced-isa node
      // contains both (sorted-vector intersection).
      auto a = px.nodes.begin();
      auto b = py.nodes.begin();
      while (a != px.nodes.end() && b != py.nodes.end()) {
        if (*a == *b) return true;
        if (*a < *b) {
          ++a;
        } else {
          ++b;
        }
      }
      return false;
    }
    if (!has_measure_) return false;
    if (px.has_sig && py.has_sig &&
        seo_->measure().SignatureLowerBound(px.sig, py.sig) > epsilon_) {
      return false;
    }
    return seo_->measure().BoundedDistance(px.lowered, py.lowered, epsilon_) <=
           epsilon_;
  }

  struct Prepared {
    std::vector<ontology::HNodeId> nodes;  // sorted ascending
    std::string lowered;
    sim::StringSignature sig;
    bool has_sig = false;
  };

  Prepared* Materialize(const std::string& term) const {
    store_.push_back(std::make_unique<Prepared>());
    Prepared* p = store_.back().get();
    p->nodes = seo_->SimilarityNodes(term);
    std::sort(p->nodes.begin(), p->nodes.end());
    p->lowered = ToLower(term);
    if (signatures_) {
      p->has_sig = seo_->measure().ComputeSignature(p->lowered, &p->sig);
    }
    return p;
  }

  const Prepared& Prep(const std::string& term) const {
    {
      std::shared_lock<std::shared_mutex> read(mu_);
      auto it = cache_.find(term);
      if (it != cache_.end()) return *it->second;
    }
    std::unique_lock<std::shared_mutex> write(mu_);
    Prepared*& slot = cache_[term];
    if (slot == nullptr) slot = Materialize(term);
    return *slot;
  }

  /// Prep keyed by interned id. An unknown id is resolved by interning the
  /// term (its id is then stable for the rest of the process); dictionary
  /// overflow degrades to the string-keyed memo.
  const Prepared& PrepSym(SymbolId sym, const std::string& term) const {
    if (sym == kInvalidSymbol) {
      sym = Interner::Global().Intern(term);
      if (sym == kInvalidSymbol) return Prep(term);
    }
    {
      std::shared_lock<std::shared_mutex> read(mu_);
      auto it = sym_cache_.find(sym);
      if (it != sym_cache_.end()) return *it->second;
    }
    std::unique_lock<std::shared_mutex> write(mu_);
    Prepared*& slot = sym_cache_[sym];
    if (slot == nullptr) slot = Materialize(term);
    return *slot;
  }

  const Seo* seo_;
  const double epsilon_;
  const bool has_measure_;
  bool signatures_ = false;
  mutable std::shared_mutex mu_;
  mutable std::unordered_map<std::string, Prepared*> cache_;
  mutable std::unordered_map<SymbolId, Prepared*> sym_cache_;
  mutable std::deque<std::unique_ptr<Prepared>> store_;  // pointer stability
};

/// Single-label atoms in conjunctive context, grouped by label (the only
/// conditions that can be pushed down into XPath).
void CollectPushdownAtoms(
    const Condition& c,
    std::map<int, std::vector<const Condition*>>* by_label) {
  if (c.kind == Condition::Kind::kAnd) {
    for (const auto& child : c.children) {
      CollectPushdownAtoms(*child, by_label);
    }
    return;
  }
  if (c.kind != Condition::Kind::kAtom) return;
  auto labels = c.ReferencedLabels();
  if (labels.size() == 1) (*by_label)[labels[0]].push_back(&c);
}

/// Quotes `s` as an XPath-lite string literal, or returns false when it
/// cannot be represented (contains both quote kinds).
bool QuoteLiteral(const std::string& s, std::string* out) {
  if (s.find('\'') == std::string::npos) {
    *out = "'" + s + "'";
    return true;
  }
  if (s.find('"') == std::string::npos) {
    *out = "\"" + s + "\"";
    return true;
  }
  return false;
}

/// True when the atom is `$n.tag = "literal"` with a concrete literal.
bool TagEquality(const Condition& atom, std::string* tag) {
  if (atom.op != CondOp::kEq) return false;
  const CondTerm *node = nullptr, *lit = nullptr;
  if (atom.lhs.kind == CondTerm::Kind::kNodeTag &&
      atom.rhs.kind == CondTerm::Kind::kTypedValue) {
    node = &atom.lhs;
    lit = &atom.rhs;
  } else if (atom.rhs.kind == CondTerm::Kind::kNodeTag &&
             atom.lhs.kind == CondTerm::Kind::kTypedValue) {
    node = &atom.rhs;
    lit = &atom.lhs;
  } else {
    return false;
  }
  (void)node;
  if (Contains(lit->text, "*")) return false;
  *tag = lit->text;
  return true;
}

/// True when the atom constrains `$n.content` against a literal with one of
/// the expandable operators; extracts operator and literal, normalized so
/// the node attribute is conceptually on the LEFT (ordering operators are
/// flipped for `literal op $n.content` forms; non-symmetric ontology
/// operators in reversed form are not pushdown-safe and are rejected).
/// Ordering atoms with an explicitly *typed* literal ("2000":year) are
/// rejected too: their evaluation goes through conversion functions and may
/// legitimately raise TypeError, which index pruning must not swallow.
bool ContentAtom(const Condition& atom, CondOp* op, std::string* literal) {
  const CondTerm* lit = nullptr;
  bool reversed = false;
  if (atom.lhs.kind == CondTerm::Kind::kNodeContent &&
      atom.rhs.kind == CondTerm::Kind::kTypedValue) {
    lit = &atom.rhs;
  } else if (atom.rhs.kind == CondTerm::Kind::kNodeContent &&
             atom.lhs.kind == CondTerm::Kind::kTypedValue) {
    lit = &atom.lhs;
    reversed = true;
  } else {
    return false;
  }
  *op = atom.op;
  if (reversed) {
    switch (atom.op) {
      case CondOp::kEq:
      case CondOp::kNeq:
      case CondOp::kSimilar:
        break;  // symmetric
      case CondOp::kLt:
        *op = CondOp::kGt;
        break;
      case CondOp::kLeq:
        *op = CondOp::kGeq;
        break;
      case CondOp::kGt:
        *op = CondOp::kLt;
        break;
      case CondOp::kGeq:
        *op = CondOp::kLeq;
        break;
      default:
        return false;  // isa / part_of / below etc. are not symmetric
    }
  }
  switch (*op) {
    case CondOp::kLt:
    case CondOp::kLeq:
    case CondOp::kGt:
    case CondOp::kGeq:
      if (!lit->value_type.empty() && lit->value_type != "string") {
        return false;  // typed ordering: eval-only (see doc comment)
      }
      break;
    default:
      break;
  }
  *literal = lit->text;
  return true;
}

/// Collects the labels of the pattern subtree rooted at node index `root`.
void SubtreeLabels(const PatternTree& p, int root, std::vector<int>* out) {
  out->push_back(p.node(root).label);
  for (int c : p.node(root).children) SubtreeLabels(p, c, out);
}

/// Distinct documents matched by one XPath, ascending. Query returns
/// matches in (doc, document-order) order over an ascending candidate
/// list, so deduplicating adjacent ids suffices.
Result<std::vector<store::DocId>> MatchedDocs(const store::Collection& coll,
                                              const std::string& xpath,
                                              store::QueryStats* qstats) {
  TOSS_ASSIGN_OR_RETURN(std::vector<store::Match> matches,
                        coll.QueryText(xpath, true, qstats));
  std::vector<store::DocId> ids;
  ids.reserve(matches.size());
  for (const auto& m : matches) {
    if (ids.empty() || ids.back() != m.doc) ids.push_back(m.doc);
  }
  return ids;
}

/// Intersection of two ascending id lists.
std::vector<store::DocId> IntersectSorted(const std::vector<store::DocId>& a,
                                          const std::vector<store::DocId>& b) {
  std::vector<store::DocId> out;
  out.reserve(std::min(a.size(), b.size()));
  std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                        std::back_inserter(out));
  return out;
}

}  // namespace

QueryExecutor::QueryExecutor(const store::Database* db, const Seo* seo,
                             const TypeSystem* types,
                             size_t default_parallelism)
    : db_(db), seo_(seo), types_(types), seo_semantics_(seo, types) {
  parallelism_.store(std::max<size_t>(1, default_parallelism),
                     std::memory_order_relaxed);
  // Freeze the shared read-only state up front: reachability closures are
  // built lazily on first use, so warming here means concurrent queries
  // only ever read them.
  if (seo_ != nullptr) seo_->WarmCaches();
  if (types_ != nullptr) types_->WarmCaches();
}

void QueryExecutor::SetParallelism(size_t threads) {
  parallelism_.store(std::max<size_t>(1, threads),
                     std::memory_order_relaxed);
}

Status QueryExecutor::RunPerDoc(size_t n,
                                const std::function<Status(size_t)>& fn,
                                const QueryOptions& options) const {
  const CancelToken* cancel = options.cancel;
  auto task = [&fn, cancel](size_t i) -> Status {
    TOSS_RETURN_NOT_OK(CheckCancel(cancel));
    return fn(i);
  };
  if (options.parallelism > 1 && n >= 2) {
    // One fan-out at a time: the query that claims the pool parallelizes,
    // concurrent ones run inline rather than queueing behind it.
    std::unique_lock<std::mutex> claim(pool_mu_, std::try_to_lock);
    if (claim.owns_lock()) {
      if (pool_ == nullptr || pool_->thread_count() != options.parallelism) {
        pool_ = std::make_unique<WorkerPool>(options.parallelism);
      }
      return pool_->ParallelFor(n, task);
    }
  }
  for (size_t i = 0; i < n; ++i) {
    TOSS_RETURN_NOT_OK(task(i));
  }
  return Status::OK();
}

const tax::ConditionSemantics& QueryExecutor::semantics() const {
  if (seo_ != nullptr) return seo_semantics_;
  return tax_semantics_;
}

Result<std::vector<std::string>> QueryExecutor::RewriteToXPaths(
    const PatternTree& pattern, const std::vector<int>& labels,
    size_t* expanded_terms) const {
  TOSS_RETURN_NOT_OK(pattern.Validate());
  std::map<int, std::vector<const Condition*>> atoms;
  CollectPushdownAtoms(pattern.condition(), &atoms);

  std::set<int> wanted(labels.begin(), labels.end());
  std::vector<std::string> xpaths;

  for (const auto& [label, conds] : atoms) {
    if (!wanted.empty() && !wanted.count(label)) continue;
    // A pushdown query needs a concrete tag to anchor on.
    std::string tag;
    bool has_tag = false;
    for (const Condition* atom : conds) {
      if (TagEquality(*atom, &tag)) {
        has_tag = true;
        break;
      }
    }
    if (!has_tag) continue;

    std::string predicates;
    for (const Condition* atom : conds) {
      CondOp op;
      std::string literal;
      if (!ContentAtom(*atom, &op, &literal)) continue;
      std::string quoted;
      switch (op) {
        case CondOp::kEq: {
          // "*X*" wildcards push down as contains(); other wildcard shapes
          // stay eval-only.
          if (literal.size() > 2 && literal.front() == '*' &&
              literal.back() == '*' &&
              literal.find('*', 1) == literal.size() - 1) {
            std::string inner = literal.substr(1, literal.size() - 2);
            if (QuoteLiteral(inner, &quoted)) {
              predicates += "[contains(., " + quoted + ")]";
            }
          } else if (!Contains(literal, "*") &&
                     QuoteLiteral(literal, &quoted)) {
            predicates += "[. = " + quoted + "]";
          }
          break;
        }
        case CondOp::kSimilar:
        case CondOp::kIsa:
        case CondOp::kPartOf:
        case CondOp::kBelow: {
          if (seo_ == nullptr) {
            // TAX baseline: ~ is exact equality; ontology operators are
            // "contains" -- both push down without expansion.
            if (op == CondOp::kSimilar) {
              if (QuoteLiteral(literal, &quoted)) {
                predicates += "[. = " + quoted + "]";
              }
            } else if (QuoteLiteral(literal, &quoted)) {
              predicates += "[contains(., " + quoted + ")]";
            }
            break;
          }
          // TOSS: expand the literal through the SEO into a disjunction of
          // concrete terms.
          std::vector<std::string> terms;
          if (op == CondOp::kSimilar) {
            terms = seo_->SimilarTerms(literal);
          } else {
            const char* rel =
                (op == CondOp::kPartOf) ? ontology::kPartOf : ontology::kIsa;
            terms = seo_->TermsBelow(rel, literal);
          }
          if (expanded_terms != nullptr) *expanded_terms += terms.size();
          std::string disjunction;
          for (const auto& term : terms) {
            if (!QuoteLiteral(term, &quoted)) continue;
            if (!disjunction.empty()) disjunction += " or ";
            disjunction += ". = " + quoted;
          }
          if (!disjunction.empty()) {
            predicates += "[(" + disjunction + ")]";
          }
          break;
        }
        case CondOp::kLt:
        case CondOp::kLeq:
        case CondOp::kGt:
        case CondOp::kGeq: {
          // Ordering atoms push down verbatim: XPath-lite comparisons use
          // the same CompareScalar semantics, and the store's ordered
          // indexes turn them into range scans.
          if (Contains(literal, "*")) break;
          if (!QuoteLiteral(literal, &quoted)) break;
          const char* op_token = op == CondOp::kLt    ? "<"
                                 : op == CondOp::kLeq ? "<="
                                 : op == CondOp::kGt  ? ">"
                                                      : ">=";
          predicates += std::string("[. ") + op_token + " " + quoted + "]";
          break;
        }
        default:
          break;  // other operators stay eval-only
      }
    }
    xpaths.push_back("//" + tag + predicates);
  }
  return xpaths;
}

Result<std::string> QueryExecutor::Explain(
    const std::string& collection, const PatternTree& pattern) const {
  TOSS_ASSIGN_OR_RETURN(const store::Collection* coll,
                        db_->GetCollection(collection));
  size_t expanded = 0;
  TOSS_ASSIGN_OR_RETURN(std::vector<std::string> xpaths,
                        RewriteToXPaths(pattern, {}, &expanded));
  std::string out;
  out += "system: ";
  out += (seo_ != nullptr ? "TOSS (SEO epsilon=" +
                                std::to_string(seo_->epsilon()) + ")"
                          : "TAX (exact baseline)");
  out += "\ncollection: " + collection + " (" +
         std::to_string(coll->AllDocs().size()) + " documents)\n";
  out += "condition: " + pattern.condition().ToString() + "\n";
  out += "expanded terms: " + std::to_string(expanded) + "\n";
  std::vector<store::DocId> intersection;
  bool first = true;
  if (xpaths.empty()) {
    out += "no pushdown queries: full collection scan\n";
  }
  for (const auto& xp : xpaths) {
    store::QueryStats qstats;
    TOSS_ASSIGN_OR_RETURN(std::vector<store::DocId> ids,
                          MatchedDocs(*coll, xp, &qstats));
    out += "xpath: " + xp + "\n";
    out += "  -> " + std::to_string(ids.size()) + " documents (index " +
           (qstats.used_indexes ? "pruned to " +
                                      std::to_string(qstats.scanned_docs) +
                                      " scanned"
                                : "not used") +
           ")\n";
    if (first) {
      intersection = std::move(ids);
      first = false;
    } else {
      intersection = IntersectSorted(intersection, ids);
    }
  }
  if (!xpaths.empty()) {
    out += "candidates after intersection: " +
           std::to_string(intersection.size()) + "\n";
  }
  return out;
}

Result<std::vector<store::DocId>> QueryExecutor::CandidateDocs(
    const store::Collection& coll, const PatternTree& pattern,
    const std::vector<int>& labels, const QueryOptions& options,
    ExecStats* stats, obs::Span* parent) const {
  QueryMetrics& m = Instruments();
  TOSS_RETURN_NOT_OK(CheckCancel(options.cancel));
  Timer timer;
  obs::Span rewrite_span(parent, "rewrite");
  // Phase (i), served from the prepared-query cache when the caller
  // provided one. A hit reports the memoized expansion fan-out, so stats
  // are identical whether the rewrite ran or was recalled.
  PreparedRewrite rewrite;
  bool cache_hit = false;
  std::string cache_key;
  if (options.prepared != nullptr) {
    cache_key = CanonicalPatternKey(pattern, labels);
    cache_hit = options.prepared->Lookup(cache_key, &rewrite);
    if (cache_hit) {
      TOSS_RETURN_NOT_OK(pattern.Validate());
    }
  }
  if (!cache_hit) {
    TOSS_ASSIGN_OR_RETURN(
        rewrite.xpaths,
        RewriteToXPaths(pattern, labels, &rewrite.expanded_terms));
    if (options.prepared != nullptr) {
      options.prepared->Insert(cache_key, rewrite);
    }
  }
  const std::vector<std::string>& xpaths = rewrite.xpaths;
  const size_t expanded = rewrite.expanded_terms;
  rewrite_span.Annotate("xpath_queries", static_cast<uint64_t>(xpaths.size()));
  rewrite_span.Annotate("expanded_terms", static_cast<uint64_t>(expanded));
  if (options.prepared != nullptr && rewrite_span.enabled()) {
    rewrite_span.Annotate("prepared_cache", cache_hit ? "hit" : "miss");
  }
  rewrite_span.End();
  m.rewrite_ns.Record(static_cast<uint64_t>(timer.ElapsedNanos()));
  m.xpath_queries.Add(xpaths.size());
  m.expanded_terms.Add(expanded);
  if (stats != nullptr) {
    stats->rewrite_ms += timer.ElapsedMillis();
    stats->xpath_queries += xpaths.size();
    stats->expanded_terms += expanded;
    stats->prepared_cache_hits += cache_hit ? 1 : 0;
  }

  timer.Reset();
  obs::Span store_span(parent, "store_scan");
  std::vector<store::DocId> docs;
  size_t scanned_docs = 0;
  size_t total_docs = 0;
  bool used_indexes = false;
  if (xpaths.empty()) {
    docs = coll.AllDocs();
    scanned_docs = docs.size();  // full collection scan, nothing pruned
    total_docs = docs.size();
  } else {
    bool first = true;
    for (const auto& xp : xpaths) {
      TOSS_RETURN_NOT_OK(CheckCancel(options.cancel));
      store::QueryStats qstats;
      TOSS_ASSIGN_OR_RETURN(std::vector<store::DocId> ids,
                            MatchedDocs(coll, xp, &qstats));
      scanned_docs += qstats.scanned_docs;
      total_docs = std::max(total_docs, qstats.total_docs);
      used_indexes = used_indexes || qstats.used_indexes;
      if (first) {
        docs = std::move(ids);
        first = false;
      } else {
        docs = IntersectSorted(docs, ids);
      }
      if (docs.empty()) break;
    }
  }
  if (store_span.enabled()) {
    store_span.Annotate("candidate_docs", static_cast<uint64_t>(docs.size()));
    store_span.Annotate("docs_scanned", static_cast<uint64_t>(scanned_docs));
    store_span.Annotate("docs_total", static_cast<uint64_t>(total_docs));
    store_span.Annotate("index_used", used_indexes ? "true" : "false");
    const size_t scan_budget = total_docs * std::max<size_t>(xpaths.size(), 1);
    if (scan_budget > 0) {
      // Fraction of the naive per-query scan work the indexes eliminated.
      store_span.Annotate(
          "index_pruning_ratio",
          1.0 - static_cast<double>(scanned_docs) /
                    static_cast<double>(scan_budget));
    }
  }
  store_span.End();
  m.store_ns.Record(static_cast<uint64_t>(timer.ElapsedNanos()));
  m.candidate_docs.Add(docs.size());
  if (stats != nullptr) {
    stats->store_ms += timer.ElapsedMillis();
    stats->candidate_docs += docs.size();
  }
  return docs;
}

Result<tax::TreeCollection> QueryExecutor::SelectImpl(
    const std::string& collection, const PatternTree& pattern,
    const std::vector<int>& sl, const QueryOptions& options, ExecStats* stats,
    obs::Span* parent) const {
  QueryMetrics& m = Instruments();
  m.selects.Increment();
  TOSS_ASSIGN_OR_RETURN(const store::Collection* coll,
                        db_->GetCollection(collection));
  TOSS_ASSIGN_OR_RETURN(
      std::vector<store::DocId> docs,
      CandidateDocs(*coll, pattern, {}, options, stats, parent));
  TOSS_RETURN_NOT_OK(pattern.Validate());
  Timer timer;
  obs::Span eval_span(parent, "eval");
  const store::Collection::TreeCacheStats cache_before =
      eval_span.enabled() ? coll->GetTreeCacheStats()
                          : store::Collection::TreeCacheStats{};
  const tax::ConditionSemantics& sem = semantics();
  const std::set<int> expand(sl.begin(), sl.end());
  // Per-document parts keep the merge order deterministic regardless of
  // which worker finishes first.
  std::vector<tax::TreeCollection> parts(docs.size());
  TOSS_RETURN_NOT_OK(RunPerDoc(
      docs.size(),
      [&](size_t i) -> Status {
        std::shared_ptr<const tax::DataTree> tree = coll->DecodedTree(docs[i]);
        TOSS_ASSIGN_OR_RETURN(parts[i],
                              tax::SelectTree(*tree, pattern, expand, sem));
        return Status::OK();
      },
      options));
  tax::TreeCollection result = tax::MergeDedup(std::move(parts));
  if (eval_span.enabled()) {
    eval_span.Annotate("docs_evaluated", static_cast<uint64_t>(docs.size()));
    eval_span.Annotate("result_trees", static_cast<uint64_t>(result.size()));
    AnnotateCacheDelta(&eval_span, cache_before, coll->GetTreeCacheStats());
  }
  eval_span.End();
  m.eval_ns.Record(static_cast<uint64_t>(timer.ElapsedNanos()));
  m.result_trees.Add(result.size());
  if (stats != nullptr) {
    stats->eval_ms += timer.ElapsedMillis();
    stats->result_trees += result.size();
  }
  return result;
}

Result<tax::TreeCollection> QueryExecutor::Select(
    const std::string& collection, const PatternTree& pattern,
    const std::vector<int>& sl, const QueryOptions& options, ExecStats* stats,
    obs::Span* parent) const {
  return SelectImpl(collection, pattern, sl, options, stats, parent);
}

Result<tax::TreeCollection> QueryExecutor::ProjectImpl(
    const std::string& collection, const PatternTree& pattern,
    const std::vector<tax::ProjectItem>& pl, const QueryOptions& options,
    ExecStats* stats, obs::Span* parent) const {
  QueryMetrics& m = Instruments();
  m.projects.Increment();
  TOSS_ASSIGN_OR_RETURN(const store::Collection* coll,
                        db_->GetCollection(collection));
  TOSS_ASSIGN_OR_RETURN(
      std::vector<store::DocId> docs,
      CandidateDocs(*coll, pattern, {}, options, stats, parent));
  TOSS_RETURN_NOT_OK(pattern.Validate());
  Timer timer;
  obs::Span eval_span(parent, "eval");
  const store::Collection::TreeCacheStats cache_before =
      eval_span.enabled() ? coll->GetTreeCacheStats()
                          : store::Collection::TreeCacheStats{};
  const tax::ConditionSemantics& sem = semantics();
  std::vector<tax::TreeCollection> parts(docs.size());
  TOSS_RETURN_NOT_OK(RunPerDoc(
      docs.size(),
      [&](size_t i) -> Status {
        std::shared_ptr<const tax::DataTree> tree = coll->DecodedTree(docs[i]);
        TOSS_ASSIGN_OR_RETURN(parts[i],
                              tax::ProjectTree(*tree, pattern, pl, sem));
        return Status::OK();
      },
      options));
  tax::TreeCollection result = tax::MergeDedup(std::move(parts));
  if (eval_span.enabled()) {
    eval_span.Annotate("docs_evaluated", static_cast<uint64_t>(docs.size()));
    eval_span.Annotate("result_trees", static_cast<uint64_t>(result.size()));
    AnnotateCacheDelta(&eval_span, cache_before, coll->GetTreeCacheStats());
  }
  eval_span.End();
  m.eval_ns.Record(static_cast<uint64_t>(timer.ElapsedNanos()));
  m.result_trees.Add(result.size());
  if (stats != nullptr) {
    stats->eval_ms += timer.ElapsedMillis();
    stats->result_trees += result.size();
  }
  return result;
}

Result<tax::TreeCollection> QueryExecutor::Project(
    const std::string& collection, const PatternTree& pattern,
    const std::vector<tax::ProjectItem>& pl, const QueryOptions& options,
    ExecStats* stats, obs::Span* parent) const {
  return ProjectImpl(collection, pattern, pl, options, stats, parent);
}

Result<tax::TreeCollection> QueryExecutor::GroupByImpl(
    const std::string& collection, const PatternTree& pattern,
    int group_label, const std::vector<int>& sl, const QueryOptions& options,
    ExecStats* stats, obs::Span* parent) const {
  QueryMetrics& m = Instruments();
  m.groupbys.Increment();
  TOSS_ASSIGN_OR_RETURN(const store::Collection* coll,
                        db_->GetCollection(collection));
  TOSS_ASSIGN_OR_RETURN(
      std::vector<store::DocId> docs,
      CandidateDocs(*coll, pattern, {}, options, stats, parent));
  TOSS_RETURN_NOT_OK(pattern.Validate());
  if (pattern.IndexOfLabel(group_label) < 0) {
    return Status::InvalidArgument("GroupBy: label $" +
                                   std::to_string(group_label) +
                                   " is not a pattern node");
  }
  Timer timer;
  obs::Span eval_span(parent, "eval");
  const store::Collection::TreeCacheStats cache_before =
      eval_span.enabled() ? coll->GetTreeCacheStats()
                          : store::Collection::TreeCacheStats{};
  const tax::ConditionSemantics& sem = semantics();
  const std::set<int> expand(sl.begin(), sl.end());
  std::vector<std::vector<tax::GroupedWitness>> parts(docs.size());
  TOSS_RETURN_NOT_OK(RunPerDoc(
      docs.size(),
      [&](size_t i) -> Status {
        std::shared_ptr<const tax::DataTree> tree = coll->DecodedTree(docs[i]);
        TOSS_ASSIGN_OR_RETURN(
            parts[i],
            tax::GroupByTree(*tree, pattern, group_label, expand, sem));
        return Status::OK();
      },
      options));
  tax::TreeCollection result = tax::AssembleGroups(std::move(parts));
  if (eval_span.enabled()) {
    eval_span.Annotate("docs_evaluated", static_cast<uint64_t>(docs.size()));
    eval_span.Annotate("result_trees", static_cast<uint64_t>(result.size()));
    AnnotateCacheDelta(&eval_span, cache_before, coll->GetTreeCacheStats());
  }
  eval_span.End();
  m.eval_ns.Record(static_cast<uint64_t>(timer.ElapsedNanos()));
  m.result_trees.Add(result.size());
  if (stats != nullptr) {
    stats->eval_ms += timer.ElapsedMillis();
    stats->result_trees += result.size();
  }
  return result;
}

Result<tax::TreeCollection> QueryExecutor::GroupBy(
    const std::string& collection, const PatternTree& pattern,
    int group_label, const std::vector<int>& sl, const QueryOptions& options,
    ExecStats* stats, obs::Span* parent) const {
  return GroupByImpl(collection, pattern, group_label, sl, options, stats,
                     parent);
}

Result<tax::TreeCollection> QueryExecutor::JoinImpl(
    const std::string& left, const std::string& right,
    const PatternTree& pattern, const std::vector<int>& sl,
    const QueryOptions& options, ExecStats* stats, obs::Span* parent) const {
  QueryMetrics& m = Instruments();
  m.joins.Increment();
  TOSS_RETURN_NOT_OK(pattern.Validate());
  if (pattern.node(0).children.size() < 2) {
    return Status::InvalidArgument(
        "Join pattern root must have two subtrees (left and right operand)");
  }
  TOSS_ASSIGN_OR_RETURN(const store::Collection* lcoll,
                        db_->GetCollection(left));
  TOSS_ASSIGN_OR_RETURN(const store::Collection* rcoll,
                        db_->GetCollection(right));

  std::vector<int> left_labels, right_labels;
  SubtreeLabels(pattern, pattern.node(0).children[0], &left_labels);
  SubtreeLabels(pattern, pattern.node(0).children[1], &right_labels);

  std::vector<store::DocId> ldocs, rdocs;
  {
    obs::Span lspan(parent, "candidates_left");
    TOSS_ASSIGN_OR_RETURN(
        ldocs,
        CandidateDocs(*lcoll, pattern, left_labels, options, stats, &lspan));
  }
  {
    obs::Span rspan(parent, "candidates_right");
    TOSS_ASSIGN_OR_RETURN(
        rdocs,
        CandidateDocs(*rcoll, pattern, right_labels, options, stats, &rspan));
  }

  Timer timer;
  const tax::ConditionSemantics& sem = semantics();
  const std::set<int> expand(sl.begin(), sl.end());

  // Plan the structural (twig) join. A null plan, or any document outside
  // the engine's envelope (posting-list blowup), downgrades to the classic
  // pairwise product path below; answers are byte-identical either way.
  std::unique_ptr<tax::SimilarOracle> oracle;
  std::unique_ptr<tax::TwigJoiner> joiner;
  if (options.use_twig_join) {
    if (seo_ != nullptr) {
      oracle = std::make_unique<SeoSimilarOracle>(seo_);
    } else {
      oracle = std::make_unique<tax::ExactSimilarOracle>();
    }
    joiner = tax::TwigJoiner::Plan(pattern, expand, sem, oracle.get());
  }
  bool use_twig = joiner != nullptr;
  tax::TwigJoinStats tstats;
  std::vector<tax::TwigDoc> rtwig, ltwig;
  std::vector<char> lskip(ldocs.size(), 0), rskip(rdocs.size(), 0);
  uint64_t docs_pruned = 0;
  if (use_twig) {
    // Document-level pruning: when every pattern subtree is tag-pinned, a
    // doc carrying none of those tags (and no wildcard tag) can contribute
    // neither postings nor in-side embeddings -- skip decoding it entirely.
    const auto prune_filters = joiner->PruneFilterIds();
    if (!prune_filters.empty()) {
      auto mark = [&](const store::Collection& coll,
                      const std::vector<store::DocId>& docs,
                      std::vector<char>* skip) {
        std::set<store::DocId> keep;
        for (const std::vector<SymbolId>& tags : prune_filters) {
          for (store::DocId d : coll.DocsWithAnyTagIds(tags)) keep.insert(d);
        }
        for (store::DocId d : coll.DocsWithWildcardTag()) keep.insert(d);
        for (size_t i = 0; i < docs.size(); ++i) {
          if (keep.count(docs[i]) == 0) {
            (*skip)[i] = 1;
            ++docs_pruned;
          }
        }
      };
      mark(*lcoll, ldocs, &lskip);
      mark(*rcoll, rdocs, &rskip);
    }
  }

  // Decode the right side once up front (fanned out across the pool); the
  // shared_ptrs keep the trees alive even if the cache evicts them. On the
  // twig path the per-doc posting lists are built in the same pass.
  obs::Span decode_span(parent, "decode_right");
  const store::Collection::TreeCacheStats rcache_before =
      decode_span.enabled() ? rcoll->GetTreeCacheStats()
                            : store::Collection::TreeCacheStats{};
  std::vector<std::shared_ptr<const tax::DataTree>> rtrees(rdocs.size());
  if (use_twig) {
    rtwig.resize(rdocs.size());
    TOSS_RETURN_NOT_OK(RunPerDoc(
        rdocs.size(),
        [&](size_t i) -> Status {
          if (rskip[i]) {
            rtwig[i] = joiner->PrunedDoc();
            return Status::OK();
          }
          rtrees[i] = rcoll->DecodedTree(rdocs[i]);
          TOSS_ASSIGN_OR_RETURN(rtwig[i],
                                joiner->Prepare(rtrees[i], &tstats));
          return Status::OK();
        },
        options));
    for (const auto& d : rtwig) {
      if (!d.supported) {
        use_twig = false;
        break;
      }
    }
  }
  if (!use_twig) {
    TOSS_RETURN_NOT_OK(RunPerDoc(
        rdocs.size(),
        [&](size_t i) -> Status {
          if (rtrees[i] == nullptr) rtrees[i] = rcoll->DecodedTree(rdocs[i]);
          return Status::OK();
        },
        options));
  }
  if (decode_span.enabled()) {
    decode_span.Annotate("right_docs", static_cast<uint64_t>(rdocs.size()));
    AnnotateCacheDelta(&decode_span, rcache_before,
                       rcoll->GetTreeCacheStats());
  }
  decode_span.End();

  obs::Span eval_span(parent, "eval");
  const store::Collection::TreeCacheStats lcache_before =
      eval_span.enabled() ? lcoll->GetTreeCacheStats()
                          : store::Collection::TreeCacheStats{};
  tax::TreeCollection result;
  if (use_twig) {
    // Left side: decode + postings (mirrors the pairwise path, which also
    // decodes left trees inside the eval phase).
    obs::Span postings_span(&eval_span, "twig_postings");
    ltwig.resize(ldocs.size());
    TOSS_RETURN_NOT_OK(RunPerDoc(
        ldocs.size(),
        [&](size_t i) -> Status {
          if (lskip[i]) {
            ltwig[i] = joiner->PrunedDoc();
            return Status::OK();
          }
          TOSS_ASSIGN_OR_RETURN(
              ltwig[i],
              joiner->Prepare(lcoll->DecodedTree(ldocs[i]), &tstats));
          return Status::OK();
        },
        options));
    if (postings_span.enabled()) {
      postings_span.Annotate(
          "postings_built",
          tstats.postings_built.load(std::memory_order_relaxed));
      postings_span.Annotate("docs_pruned", docs_pruned);
    }
    postings_span.End();
    for (const auto& d : ltwig) {
      if (!d.supported) {
        use_twig = false;
        break;
      }
    }
  }
  if (use_twig) {
    // Cross-tree match groups exist only when the product root itself can
    // be a root image: its tag admitted by the root's tag filter and its
    // prefilters true. Both are pair-independent, so they are evaluated
    // once here instead of once per pair (same verdict, same errors -- the
    // pairwise path evaluates them on the first candidate of every pair).
    bool combos =
        !ldocs.empty() && !rdocs.empty() && joiner->root_tag_allowed();
    if (combos) {
      TOSS_ASSIGN_OR_RETURN(combos, joiner->EvalRootPrefilters());
    }
    obs::Span merge_span(&eval_span, "twig_merge");
    // Cross-document value filter: skip pair merges that provably share no
    // similarity-compatible join-key values (nullptr when the join shape
    // is outside the filter's envelope; see TwigJoiner::BuildValueFilter).
    std::unique_ptr<tax::TwigValueFilter> value_filter;
    if (combos && options.use_join_value_index) {
      std::vector<tax::TwigDoc*> all_docs;
      all_docs.reserve(ltwig.size() + rtwig.size());
      for (auto& d : ltwig) all_docs.push_back(&d);
      for (auto& d : rtwig) all_docs.push_back(&d);
      value_filter = joiner->BuildValueFilter(all_docs);
    }
    std::vector<const tax::TwigDoc*> rptrs;
    rptrs.reserve(rtwig.size());
    for (const auto& d : rtwig) rptrs.push_back(&d);
    std::vector<tax::TreeCollection> parts(ldocs.size());
    std::atomic<uint64_t> parts_skipped{0};
    TOSS_RETURN_NOT_OK(RunPerDoc(
        ldocs.size(),
        [&](size_t i) -> Status {
          if (i > 0 && joiner->CanSkipPart(ltwig[i])) {
            // Everything this part could emit was already emitted while
            // streaming the right side under ldocs[0] (dedup absorbs it).
            parts_skipped.fetch_add(1, std::memory_order_relaxed);
            return Status::OK();
          }
          TOSS_ASSIGN_OR_RETURN(
              parts[i],
              joiner->JoinLeft(ltwig[i], rptrs, combos, /*first_part=*/i == 0,
                               value_filter.get(), options.cancel, &tstats));
          return Status::OK();
        },
        options));
    result = tax::MergeDedup(std::move(parts));
    const uint64_t pruned_subtrees =
        docs_pruned + tstats.pairs_pruned.load(std::memory_order_relaxed) +
        parts_skipped.load(std::memory_order_relaxed);
    if (merge_span.enabled()) {
      merge_span.Annotate(
          "stream_advances",
          tstats.stream_advances.load(std::memory_order_relaxed));
      merge_span.Annotate(
          "stack_pushes", tstats.stack_pushes.load(std::memory_order_relaxed));
      merge_span.Annotate(
          "pairs_scanned", tstats.pairs_scanned.load(std::memory_order_relaxed));
      merge_span.Annotate(
          "pairs_value_skipped",
          tstats.pairs_value_skipped.load(std::memory_order_relaxed));
      merge_span.Annotate("pruned_subtrees", pruned_subtrees);
      merge_span.Annotate(
          "combos_emitted",
          tstats.combos_emitted.load(std::memory_order_relaxed));
    }
    merge_span.End();
    if (eval_span.enabled()) eval_span.Annotate("join_engine", "twig");
    m.twig_joins.Increment();
    m.twig_postings.Add(tstats.postings_built.load(std::memory_order_relaxed));
    m.twig_advances.Add(
        tstats.stream_advances.load(std::memory_order_relaxed));
    m.twig_pushes.Add(tstats.stack_pushes.load(std::memory_order_relaxed));
    m.twig_pairs.Add(tstats.pairs_scanned.load(std::memory_order_relaxed));
    m.twig_value_skips.Add(
        tstats.pairs_value_skipped.load(std::memory_order_relaxed));
    m.twig_combos.Add(tstats.combos_emitted.load(std::memory_order_relaxed));
    m.twig_pruned.Add(pruned_subtrees);
  } else {
    if (options.use_twig_join) m.twig_fallbacks.Increment();
    if (eval_span.enabled()) eval_span.Annotate("join_engine", "pairwise");
    // Backfill any right trees the twig attempt skipped before bailing.
    for (size_t i = 0; i < rtrees.size(); ++i) {
      if (rtrees[i] == nullptr) rtrees[i] = rcoll->DecodedTree(rdocs[i]);
    }
    std::vector<const tax::DataTree*> right_ptrs;
    right_ptrs.reserve(rtrees.size());
    for (const auto& t : rtrees) right_ptrs.push_back(t.get());
    // Fan out per left document; each worker streams the full right side,
    // so pair order (left-major) matches the sequential join exactly.
    std::vector<tax::TreeCollection> parts(ldocs.size());
    TOSS_RETURN_NOT_OK(RunPerDoc(
        ldocs.size(),
        [&](size_t i) -> Status {
          std::shared_ptr<const tax::DataTree> ltree =
              lcoll->DecodedTree(ldocs[i]);
          TOSS_ASSIGN_OR_RETURN(
              parts[i],
              tax::JoinTreeWithRight(*ltree, right_ptrs, pattern, expand,
                                     sem));
          return Status::OK();
        },
        options));
    result = tax::MergeDedup(std::move(parts));
  }
  if (eval_span.enabled()) {
    eval_span.Annotate("docs_evaluated", static_cast<uint64_t>(ldocs.size()));
    eval_span.Annotate("result_trees", static_cast<uint64_t>(result.size()));
    AnnotateCacheDelta(&eval_span, lcache_before, lcoll->GetTreeCacheStats());
  }
  if (stats != nullptr) stats->join_engine = use_twig ? 2 : 1;
  eval_span.End();
  m.eval_ns.Record(static_cast<uint64_t>(timer.ElapsedNanos()));
  m.result_trees.Add(result.size());
  if (stats != nullptr) {
    stats->eval_ms += timer.ElapsedMillis();
    stats->result_trees += result.size();
  }
  return result;
}

Result<tax::TreeCollection> QueryExecutor::Join(
    const std::string& left, const std::string& right,
    const PatternTree& pattern, const std::vector<int>& sl,
    const QueryOptions& options, ExecStats* stats, obs::Span* parent) const {
  return JoinImpl(left, right, pattern, sl, options, stats, parent);
}

}  // namespace toss::core
