#include "core/query_executor.h"

#include <algorithm>
#include <atomic>
#include <set>
#include <thread>
#include <unordered_set>

#include "common/string_util.h"
#include "common/timer.h"

namespace toss::core {

using tax::CondOp;
using tax::Condition;
using tax::CondTerm;
using tax::PatternTree;

namespace {

/// Single-label atoms in conjunctive context, grouped by label (the only
/// conditions that can be pushed down into XPath).
void CollectPushdownAtoms(
    const Condition& c,
    std::map<int, std::vector<const Condition*>>* by_label) {
  if (c.kind == Condition::Kind::kAnd) {
    for (const auto& child : c.children) {
      CollectPushdownAtoms(*child, by_label);
    }
    return;
  }
  if (c.kind != Condition::Kind::kAtom) return;
  auto labels = c.ReferencedLabels();
  if (labels.size() == 1) (*by_label)[labels[0]].push_back(&c);
}

/// Quotes `s` as an XPath-lite string literal, or returns false when it
/// cannot be represented (contains both quote kinds).
bool QuoteLiteral(const std::string& s, std::string* out) {
  if (s.find('\'') == std::string::npos) {
    *out = "'" + s + "'";
    return true;
  }
  if (s.find('"') == std::string::npos) {
    *out = "\"" + s + "\"";
    return true;
  }
  return false;
}

/// True when the atom is `$n.tag = "literal"` with a concrete literal.
bool TagEquality(const Condition& atom, std::string* tag) {
  if (atom.op != CondOp::kEq) return false;
  const CondTerm *node = nullptr, *lit = nullptr;
  if (atom.lhs.kind == CondTerm::Kind::kNodeTag &&
      atom.rhs.kind == CondTerm::Kind::kTypedValue) {
    node = &atom.lhs;
    lit = &atom.rhs;
  } else if (atom.rhs.kind == CondTerm::Kind::kNodeTag &&
             atom.lhs.kind == CondTerm::Kind::kTypedValue) {
    node = &atom.rhs;
    lit = &atom.lhs;
  } else {
    return false;
  }
  (void)node;
  if (Contains(lit->text, "*")) return false;
  *tag = lit->text;
  return true;
}

/// True when the atom constrains `$n.content` against a literal with one of
/// the expandable operators; extracts operator and literal, normalized so
/// the node attribute is conceptually on the LEFT (ordering operators are
/// flipped for `literal op $n.content` forms; non-symmetric ontology
/// operators in reversed form are not pushdown-safe and are rejected).
/// Ordering atoms with an explicitly *typed* literal ("2000":year) are
/// rejected too: their evaluation goes through conversion functions and may
/// legitimately raise TypeError, which index pruning must not swallow.
bool ContentAtom(const Condition& atom, CondOp* op, std::string* literal) {
  const CondTerm* lit = nullptr;
  bool reversed = false;
  if (atom.lhs.kind == CondTerm::Kind::kNodeContent &&
      atom.rhs.kind == CondTerm::Kind::kTypedValue) {
    lit = &atom.rhs;
  } else if (atom.rhs.kind == CondTerm::Kind::kNodeContent &&
             atom.lhs.kind == CondTerm::Kind::kTypedValue) {
    lit = &atom.lhs;
    reversed = true;
  } else {
    return false;
  }
  *op = atom.op;
  if (reversed) {
    switch (atom.op) {
      case CondOp::kEq:
      case CondOp::kNeq:
      case CondOp::kSimilar:
        break;  // symmetric
      case CondOp::kLt:
        *op = CondOp::kGt;
        break;
      case CondOp::kLeq:
        *op = CondOp::kGeq;
        break;
      case CondOp::kGt:
        *op = CondOp::kLt;
        break;
      case CondOp::kGeq:
        *op = CondOp::kLeq;
        break;
      default:
        return false;  // isa / part_of / below etc. are not symmetric
    }
  }
  switch (*op) {
    case CondOp::kLt:
    case CondOp::kLeq:
    case CondOp::kGt:
    case CondOp::kGeq:
      if (!lit->value_type.empty() && lit->value_type != "string") {
        return false;  // typed ordering: eval-only (see doc comment)
      }
      break;
    default:
      break;
  }
  *literal = lit->text;
  return true;
}

/// Collects the labels of the pattern subtree rooted at node index `root`.
void SubtreeLabels(const PatternTree& p, int root, std::vector<int>* out) {
  out->push_back(p.node(root).label);
  for (int c : p.node(root).children) SubtreeLabels(p, c, out);
}

}  // namespace

QueryExecutor::QueryExecutor(const store::Database* db, const Seo* seo,
                             const TypeSystem* types)
    : db_(db), seo_(seo), types_(types), seo_semantics_(seo, types) {}

void QueryExecutor::SetParallelism(size_t threads) {
  parallelism_ = std::max<size_t>(1, threads);
}

void QueryExecutor::WarmCaches() const {
  if (seo_ != nullptr) seo_->WarmCaches();
  if (types_ != nullptr) types_->WarmCaches();
}

Result<tax::TreeCollection> QueryExecutor::ParallelSelectEval(
    const store::Collection& coll, const std::vector<store::DocId>& docs,
    const PatternTree& pattern, const std::vector<int>& sl) const {
  WarmCaches();
  const tax::ConditionSemantics& sem = semantics();
  const std::set<int> expand(sl.begin(), sl.end());

  // Per-document output buckets keep the final order deterministic; the
  // atomic cursor load-balances across workers.
  std::vector<tax::TreeCollection> buckets(docs.size());
  std::vector<Status> failures(parallelism_, Status::OK());
  std::atomic<size_t> cursor{0};
  auto worker = [&](size_t worker_id) {
    for (;;) {
      size_t i = cursor.fetch_add(1);
      if (i >= docs.size()) return;
      const xml::XmlDocument& doc = coll.document(docs[i]);
      tax::DataTree tree = tax::DataTree::FromXml(doc, doc.root());
      auto embeddings = tax::FindEmbeddings(pattern, tree, sem);
      if (!embeddings.ok()) {
        failures[worker_id] = embeddings.status();
        return;
      }
      for (const auto& h : *embeddings) {
        buckets[i].push_back(
            tax::BuildWitnessTree(pattern, tree, h, expand));
      }
    }
  };
  std::vector<std::thread> threads;
  size_t n_threads = std::min(parallelism_, docs.size());
  threads.reserve(n_threads);
  for (size_t t = 0; t < n_threads; ++t) threads.emplace_back(worker, t);
  for (auto& t : threads) t.join();
  for (const auto& st : failures) {
    TOSS_RETURN_NOT_OK(st);
  }
  // Sequential merge with global dedup, in document order (matches the
  // sequential tax::Select exactly).
  tax::TreeCollection out;
  std::unordered_set<std::string> seen;
  for (auto& bucket : buckets) {
    for (auto& tree : bucket) {
      if (seen.insert(tree.CanonicalKey()).second) {
        out.push_back(std::move(tree));
      }
    }
  }
  return out;
}

const tax::ConditionSemantics& QueryExecutor::semantics() const {
  if (seo_ != nullptr) return seo_semantics_;
  return tax_semantics_;
}

Result<std::vector<std::string>> QueryExecutor::RewriteToXPaths(
    const PatternTree& pattern, const std::vector<int>& labels,
    size_t* expanded_terms) const {
  TOSS_RETURN_NOT_OK(pattern.Validate());
  std::map<int, std::vector<const Condition*>> atoms;
  CollectPushdownAtoms(pattern.condition(), &atoms);

  std::set<int> wanted(labels.begin(), labels.end());
  std::vector<std::string> xpaths;

  for (const auto& [label, conds] : atoms) {
    if (!wanted.empty() && !wanted.count(label)) continue;
    // A pushdown query needs a concrete tag to anchor on.
    std::string tag;
    bool has_tag = false;
    for (const Condition* atom : conds) {
      if (TagEquality(*atom, &tag)) {
        has_tag = true;
        break;
      }
    }
    if (!has_tag) continue;

    std::string predicates;
    for (const Condition* atom : conds) {
      CondOp op;
      std::string literal;
      if (!ContentAtom(*atom, &op, &literal)) continue;
      std::string quoted;
      switch (op) {
        case CondOp::kEq: {
          // "*X*" wildcards push down as contains(); other wildcard shapes
          // stay eval-only.
          if (literal.size() > 2 && literal.front() == '*' &&
              literal.back() == '*' &&
              literal.find('*', 1) == literal.size() - 1) {
            std::string inner = literal.substr(1, literal.size() - 2);
            if (QuoteLiteral(inner, &quoted)) {
              predicates += "[contains(., " + quoted + ")]";
            }
          } else if (!Contains(literal, "*") &&
                     QuoteLiteral(literal, &quoted)) {
            predicates += "[. = " + quoted + "]";
          }
          break;
        }
        case CondOp::kSimilar:
        case CondOp::kIsa:
        case CondOp::kPartOf:
        case CondOp::kBelow: {
          if (seo_ == nullptr) {
            // TAX baseline: ~ is exact equality; ontology operators are
            // "contains" -- both push down without expansion.
            if (op == CondOp::kSimilar) {
              if (QuoteLiteral(literal, &quoted)) {
                predicates += "[. = " + quoted + "]";
              }
            } else if (QuoteLiteral(literal, &quoted)) {
              predicates += "[contains(., " + quoted + ")]";
            }
            break;
          }
          // TOSS: expand the literal through the SEO into a disjunction of
          // concrete terms.
          std::vector<std::string> terms;
          if (op == CondOp::kSimilar) {
            terms = seo_->SimilarTerms(literal);
          } else {
            const char* rel =
                (op == CondOp::kPartOf) ? ontology::kPartOf : ontology::kIsa;
            terms = seo_->TermsBelow(rel, literal);
          }
          if (expanded_terms != nullptr) *expanded_terms += terms.size();
          std::string disjunction;
          for (const auto& term : terms) {
            if (!QuoteLiteral(term, &quoted)) continue;
            if (!disjunction.empty()) disjunction += " or ";
            disjunction += ". = " + quoted;
          }
          if (!disjunction.empty()) {
            predicates += "[(" + disjunction + ")]";
          }
          break;
        }
        case CondOp::kLt:
        case CondOp::kLeq:
        case CondOp::kGt:
        case CondOp::kGeq: {
          // Ordering atoms push down verbatim: XPath-lite comparisons use
          // the same CompareScalar semantics, and the store's ordered
          // indexes turn them into range scans.
          if (Contains(literal, "*")) break;
          if (!QuoteLiteral(literal, &quoted)) break;
          const char* op_token = op == CondOp::kLt    ? "<"
                                 : op == CondOp::kLeq ? "<="
                                 : op == CondOp::kGt  ? ">"
                                                      : ">=";
          predicates += std::string("[. ") + op_token + " " + quoted + "]";
          break;
        }
        default:
          break;  // other operators stay eval-only
      }
    }
    xpaths.push_back("//" + tag + predicates);
  }
  return xpaths;
}

Result<std::string> QueryExecutor::Explain(
    const std::string& collection, const PatternTree& pattern) const {
  TOSS_ASSIGN_OR_RETURN(const store::Collection* coll,
                        db_->GetCollection(collection));
  size_t expanded = 0;
  TOSS_ASSIGN_OR_RETURN(std::vector<std::string> xpaths,
                        RewriteToXPaths(pattern, {}, &expanded));
  std::string out;
  out += "system: ";
  out += (seo_ != nullptr ? "TOSS (SEO epsilon=" +
                                std::to_string(seo_->epsilon()) + ")"
                          : "TAX (exact baseline)");
  out += "\ncollection: " + collection + " (" +
         std::to_string(coll->AllDocs().size()) + " documents)\n";
  out += "condition: " + pattern.condition().ToString() + "\n";
  out += "expanded terms: " + std::to_string(expanded) + "\n";
  std::set<store::DocId> intersection;
  bool first = true;
  if (xpaths.empty()) {
    out += "no pushdown queries: full collection scan\n";
  }
  for (const auto& xp : xpaths) {
    store::QueryStats qstats;
    TOSS_ASSIGN_OR_RETURN(std::vector<store::Match> matches,
                          coll->QueryText(xp, true, &qstats));
    std::set<store::DocId> ids;
    for (const auto& m : matches) ids.insert(m.doc);
    out += "xpath: " + xp + "\n";
    out += "  -> " + std::to_string(ids.size()) + " documents (index " +
           (qstats.used_indexes ? "pruned to " +
                                      std::to_string(qstats.scanned_docs) +
                                      " scanned"
                                : "not used") +
           ")\n";
    if (first) {
      intersection = std::move(ids);
      first = false;
    } else {
      std::set<store::DocId> merged;
      for (store::DocId d : intersection) {
        if (ids.count(d)) merged.insert(d);
      }
      intersection = std::move(merged);
    }
  }
  if (!xpaths.empty()) {
    out += "candidates after intersection: " +
           std::to_string(intersection.size()) + "\n";
  }
  return out;
}

Result<std::vector<store::DocId>> QueryExecutor::CandidateDocs(
    const store::Collection& coll, const PatternTree& pattern,
    const std::vector<int>& labels, ExecStats* stats) const {
  Timer timer;
  size_t expanded = 0;
  TOSS_ASSIGN_OR_RETURN(std::vector<std::string> xpaths,
                        RewriteToXPaths(pattern, labels, &expanded));
  if (stats != nullptr) {
    stats->rewrite_ms += timer.ElapsedMillis();
    stats->xpath_queries += xpaths.size();
    stats->expanded_terms += expanded;
  }

  timer.Reset();
  std::vector<store::DocId> docs;
  if (xpaths.empty()) {
    docs = coll.AllDocs();
  } else {
    bool first = true;
    for (const auto& xp : xpaths) {
      TOSS_ASSIGN_OR_RETURN(std::vector<store::Match> matches,
                            coll.QueryText(xp));
      std::set<store::DocId> ids;
      for (const auto& m : matches) ids.insert(m.doc);
      if (first) {
        docs.assign(ids.begin(), ids.end());
        first = false;
      } else {
        std::vector<store::DocId> next;
        for (store::DocId d : docs) {
          if (ids.count(d)) next.push_back(d);
        }
        docs = std::move(next);
      }
      if (docs.empty()) break;
    }
  }
  if (stats != nullptr) {
    stats->store_ms += timer.ElapsedMillis();
    stats->candidate_docs += docs.size();
  }
  return docs;
}

Result<tax::TreeCollection> QueryExecutor::LoadCandidates(
    const store::Collection& coll, const std::vector<store::DocId>& docs,
    ExecStats* stats) const {
  Timer timer;
  tax::TreeCollection trees;
  trees.reserve(docs.size());
  for (store::DocId id : docs) {
    trees.push_back(
        tax::DataTree::FromXml(coll.document(id), coll.document(id).root()));
  }
  if (stats != nullptr) stats->eval_ms += timer.ElapsedMillis();
  return trees;
}

Result<tax::TreeCollection> QueryExecutor::Select(
    const std::string& collection, const PatternTree& pattern,
    const std::vector<int>& sl, ExecStats* stats) const {
  TOSS_ASSIGN_OR_RETURN(const store::Collection* coll,
                        db_->GetCollection(collection));
  TOSS_ASSIGN_OR_RETURN(std::vector<store::DocId> docs,
                        CandidateDocs(*coll, pattern, {}, stats));
  TOSS_RETURN_NOT_OK(pattern.Validate());
  if (parallelism_ > 1 && docs.size() >= 2 * parallelism_) {
    Timer timer;
    TOSS_ASSIGN_OR_RETURN(tax::TreeCollection result,
                          ParallelSelectEval(*coll, docs, pattern, sl));
    if (stats != nullptr) {
      stats->eval_ms += timer.ElapsedMillis();
      stats->result_trees += result.size();
    }
    return result;
  }
  TOSS_ASSIGN_OR_RETURN(tax::TreeCollection trees,
                        LoadCandidates(*coll, docs, stats));
  Timer timer;
  TOSS_ASSIGN_OR_RETURN(tax::TreeCollection result,
                        tax::Select(trees, pattern, sl, semantics()));
  if (stats != nullptr) {
    stats->eval_ms += timer.ElapsedMillis();
    stats->result_trees += result.size();
  }
  return result;
}

Result<tax::TreeCollection> QueryExecutor::Project(
    const std::string& collection, const PatternTree& pattern,
    const std::vector<tax::ProjectItem>& pl, ExecStats* stats) const {
  TOSS_ASSIGN_OR_RETURN(const store::Collection* coll,
                        db_->GetCollection(collection));
  TOSS_ASSIGN_OR_RETURN(std::vector<store::DocId> docs,
                        CandidateDocs(*coll, pattern, {}, stats));
  TOSS_ASSIGN_OR_RETURN(tax::TreeCollection trees,
                        LoadCandidates(*coll, docs, stats));
  Timer timer;
  TOSS_ASSIGN_OR_RETURN(tax::TreeCollection result,
                        tax::Project(trees, pattern, pl, semantics()));
  if (stats != nullptr) {
    stats->eval_ms += timer.ElapsedMillis();
    stats->result_trees += result.size();
  }
  return result;
}

Result<tax::TreeCollection> QueryExecutor::GroupBy(
    const std::string& collection, const PatternTree& pattern,
    int group_label, const std::vector<int>& sl, ExecStats* stats) const {
  TOSS_ASSIGN_OR_RETURN(const store::Collection* coll,
                        db_->GetCollection(collection));
  TOSS_ASSIGN_OR_RETURN(std::vector<store::DocId> docs,
                        CandidateDocs(*coll, pattern, {}, stats));
  TOSS_ASSIGN_OR_RETURN(tax::TreeCollection trees,
                        LoadCandidates(*coll, docs, stats));
  Timer timer;
  TOSS_ASSIGN_OR_RETURN(
      tax::TreeCollection result,
      tax::GroupBy(trees, pattern, group_label, sl, semantics()));
  if (stats != nullptr) {
    stats->eval_ms += timer.ElapsedMillis();
    stats->result_trees += result.size();
  }
  return result;
}

Result<tax::TreeCollection> QueryExecutor::Join(
    const std::string& left, const std::string& right,
    const PatternTree& pattern, const std::vector<int>& sl,
    ExecStats* stats) const {
  TOSS_RETURN_NOT_OK(pattern.Validate());
  if (pattern.node(0).children.size() < 2) {
    return Status::InvalidArgument(
        "Join pattern root must have two subtrees (left and right operand)");
  }
  TOSS_ASSIGN_OR_RETURN(const store::Collection* lcoll,
                        db_->GetCollection(left));
  TOSS_ASSIGN_OR_RETURN(const store::Collection* rcoll,
                        db_->GetCollection(right));

  std::vector<int> left_labels, right_labels;
  SubtreeLabels(pattern, pattern.node(0).children[0], &left_labels);
  SubtreeLabels(pattern, pattern.node(0).children[1], &right_labels);

  TOSS_ASSIGN_OR_RETURN(std::vector<store::DocId> ldocs,
                        CandidateDocs(*lcoll, pattern, left_labels, stats));
  TOSS_ASSIGN_OR_RETURN(std::vector<store::DocId> rdocs,
                        CandidateDocs(*rcoll, pattern, right_labels, stats));
  TOSS_ASSIGN_OR_RETURN(tax::TreeCollection ltrees,
                        LoadCandidates(*lcoll, ldocs, stats));
  TOSS_ASSIGN_OR_RETURN(tax::TreeCollection rtrees,
                        LoadCandidates(*rcoll, rdocs, stats));

  Timer timer;
  TOSS_ASSIGN_OR_RETURN(
      tax::TreeCollection result,
      tax::Join(ltrees, rtrees, pattern, sl, semantics()));
  if (stats != nullptr) {
    stats->eval_ms += timer.ElapsedMillis();
    stats->result_trees += result.size();
  }
  return result;
}

}  // namespace toss::core
