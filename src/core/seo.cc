#include "core/seo.h"

#include <set>

#include "common/string_util.h"

namespace toss::core {

using ontology::HNodeId;
using ontology::Hierarchy;
using ontology::kInvalidHNode;

namespace {

/// Ontology terms are stored lowercase by the Ontology Maker for content
/// strings but verbatim for tags; normalize lookups across both.
std::vector<HNodeId> LookupTerm(const Hierarchy& h, const std::string& term) {
  auto ids = h.NodesContaining(term);
  if (!ids.empty()) return ids;
  return h.NodesContaining(ToLower(term));
}

bool HasUpperAscii(std::string_view s) {
  for (char c : s) {
    if (c >= 'A' && c <= 'Z') return true;
  }
  return false;
}

}  // namespace

const Hierarchy* Seo::EnhancedHierarchy(const std::string& relation) const {
  auto it = enhancements_.find(relation);
  return it == enhancements_.end() ? nullptr : &it->second.enhanced;
}

const ontology::SimilarityEnhancement* Seo::Enhancement(
    const std::string& relation) const {
  auto it = enhancements_.find(relation);
  return it == enhancements_.end() ? nullptr : &it->second;
}

bool Seo::Similar(const std::string& x, const std::string& y) const {
  if (x == y) return true;
  const Hierarchy* h = EnhancedHierarchy(ontology::kIsa);
  if (h != nullptr) {
    auto xs = LookupTerm(*h, x);
    auto ys = LookupTerm(*h, y);
    if (!xs.empty() && !ys.empty()) {
      // Def. of ~: some enhanced node contains both.
      std::set<HNodeId> sx(xs.begin(), xs.end());
      for (HNodeId ny : ys) {
        if (sx.count(ny)) return true;
      }
      return false;
    }
  }
  // Fallback for terms outside the ontology (see header).
  if (measure_ == nullptr) return false;
  return measure_->BoundedDistance(ToLower(x), ToLower(y), epsilon_) <=
         epsilon_;
}

const std::vector<HNodeId>* Seo::LookupSym(
    const std::unordered_map<SymbolId, std::vector<HNodeId>>& relation_index,
    SymbolId sym, std::string_view term) const {
  // Exact lookup. The index interned every hierarchy term, so a term the
  // dictionary has never seen is provably not in the hierarchy.
  Interner& interner = Interner::Global();
  if (sym == kInvalidSymbol) {
    if (auto found = interner.Find(term)) sym = *found;
  }
  if (sym != kInvalidSymbol) {
    auto it = relation_index.find(sym);
    if (it != relation_index.end()) return &it->second;
  }
  // Lowercase fallback (see LookupTerm): only worth a Find when lowering
  // can change the term at all.
  if (!HasUpperAscii(term)) return nullptr;
  auto lowered = interner.Find(ToLower(std::string(term)));
  if (!lowered.has_value()) return nullptr;
  auto it = relation_index.find(*lowered);
  return it == relation_index.end() ? nullptr : &it->second;
}

bool Seo::SimilarSym(SymbolId sx, const std::string& x, SymbolId sy,
                     const std::string& y) const {
  auto index = term_index_;
  if (index == nullptr || !SymbolFastPathsEnabled()) return Similar(x, y);
  if (sx != kInvalidSymbol && sx == sy) return true;  // equal text
  if (x == y) return true;  // ids may be missing on either side
  auto rel = index->by_relation.find(ontology::kIsa);
  if (rel != index->by_relation.end()) {
    const auto* xs = LookupSym(rel->second, sx, x);
    const auto* ys = LookupSym(rel->second, sy, y);
    if (xs != nullptr && ys != nullptr) {
      // Def. of ~: some enhanced node contains both. Both lists ascend.
      auto ix = xs->begin();
      auto iy = ys->begin();
      while (ix != xs->end() && iy != ys->end()) {
        if (*ix == *iy) return true;
        (*ix < *iy) ? ++ix : ++iy;
      }
      return false;
    }
  }
  if (measure_ == nullptr) return false;
  return measure_->BoundedDistance(ToLower(x), ToLower(y), epsilon_) <=
         epsilon_;
}

bool Seo::LeqSym(const std::string& relation, SymbolId sx,
                 const std::string& x, SymbolId sy,
                 const std::string& y) const {
  auto index = term_index_;
  if (index == nullptr || !SymbolFastPathsEnabled()) {
    return Leq(relation, x, y);
  }
  auto rel = index->by_relation.find(relation);
  if (rel == index->by_relation.end()) return false;  // no such hierarchy
  const Hierarchy* h = EnhancedHierarchy(relation);
  const auto* xs = LookupSym(rel->second, sx, x);
  const auto* ys = LookupSym(rel->second, sy, y);
  if (xs == nullptr || ys == nullptr) return false;
  for (HNodeId nx : *xs) {
    for (HNodeId ny : *ys) {
      if (h->Leq(nx, ny)) return true;
    }
  }
  return false;
}

std::vector<HNodeId> Seo::SimilarityNodes(const std::string& term) const {
  const Hierarchy* h = EnhancedHierarchy(ontology::kIsa);
  if (h == nullptr) return {};
  return LookupTerm(*h, term);
}

bool Seo::Leq(const std::string& relation, const std::string& x,
              const std::string& y) const {
  const Hierarchy* h = EnhancedHierarchy(relation);
  if (h == nullptr) return false;
  for (HNodeId nx : LookupTerm(*h, x)) {
    for (HNodeId ny : LookupTerm(*h, y)) {
      if (h->Leq(nx, ny)) return true;
    }
  }
  return false;
}

std::vector<std::string> Seo::SimilarTerms(const std::string& term) const {
  std::set<std::string> out{term};
  const Hierarchy* h = EnhancedHierarchy(ontology::kIsa);
  if (h != nullptr) {
    auto nodes = LookupTerm(*h, term);
    if (!nodes.empty()) {
      for (HNodeId id : nodes) {
        for (const auto& t : h->terms(id)) out.insert(t);
      }
    } else if (measure_ != nullptr) {
      // The query literal is not an ontology term: fall back to comparing
      // it against every term (the paper's option (i) when a string is
      // outside the enhancement).
      for (const auto& t : h->AllTerms()) {
        if (measure_->BoundedDistance(term, t, epsilon_) <= epsilon_) {
          out.insert(t);
        }
      }
    }
  }
  return {out.begin(), out.end()};
}

std::vector<std::string> Seo::TermsBelow(const std::string& relation,
                                         const std::string& term) const {
  std::set<std::string> out{term};
  const Hierarchy* h = EnhancedHierarchy(relation);
  if (h != nullptr) {
    for (HNodeId id : LookupTerm(*h, term)) {
      for (HNodeId below : h->Below(id)) {
        for (const auto& t : h->terms(below)) out.insert(t);
      }
    }
  }
  return {out.begin(), out.end()};
}

size_t Seo::TotalNodeCount() const {
  size_t n = 0;
  for (const auto& [rel, enh] : enhancements_) n += enh.enhanced.node_count();
  return n;
}

void Seo::WarmCaches() const {
  for (const auto& rel : fused_.relations()) {
    fused_.Find(rel)->EnsureReachabilityCache();
  }
  for (const auto& [rel, enh] : enhancements_) {
    enh.enhanced.EnsureReachabilityCache();
    enh.BuildPreimageIndex();
  }
  // Intern every enhanced-hierarchy term into the id-keyed index behind
  // SimilarSym/LeqSym. Node ids ascend in the outer loop and terms are
  // deduplicated per node, so each vector is born sorted and unique.
  auto index = std::make_shared<TermIndex>();
  Interner& interner = Interner::Global();
  for (const auto& [rel, enh] : enhancements_) {
    auto& relation_index = index->by_relation[rel];
    const Hierarchy& h = enh.enhanced;
    for (HNodeId id = 0; id < h.node_count(); ++id) {
      for (const auto& term : h.terms(id)) {
        SymbolId sym = interner.Intern(term);
        if (sym == kInvalidSymbol) return;  // dictionary full: no index
        relation_index[sym].push_back(id);
      }
    }
  }
  term_index_ = std::move(index);
}

SeoBuilder::SeoBuilder() = default;

SeoBuilder& SeoBuilder::AddInstanceOntology(ontology::Ontology onto) {
  ontologies_.push_back(std::move(onto));
  return *this;
}

SeoBuilder& SeoBuilder::AddConstraints(
    const std::string& relation,
    std::vector<ontology::InteropConstraint> cs) {
  auto& dst = constraints_[relation];
  dst.insert(dst.end(), std::make_move_iterator(cs.begin()),
             std::make_move_iterator(cs.end()));
  return *this;
}

SeoBuilder& SeoBuilder::SetMeasure(sim::StringMeasurePtr measure) {
  measure_ = std::move(measure);
  return *this;
}

SeoBuilder& SeoBuilder::SetEpsilon(double epsilon) {
  epsilon_ = epsilon;
  return *this;
}

Result<Seo> SeoBuilder::Build() const {
  if (ontologies_.empty()) {
    return Status::InvalidArgument("SeoBuilder: no instance ontologies");
  }
  if (measure_ == nullptr) {
    return Status::InvalidArgument("SeoBuilder: no similarity measure set");
  }
  if (epsilon_ < 0) {
    return Status::InvalidArgument("SeoBuilder: epsilon must be >= 0");
  }
  std::vector<const ontology::Ontology*> ptrs;
  ptrs.reserve(ontologies_.size());
  for (const auto& o : ontologies_) ptrs.push_back(&o);

  Seo seo;
  TOSS_ASSIGN_OR_RETURN(seo.fused_,
                        ontology::FuseOntologies(ptrs, constraints_));
  seo.measure_ = measure_;
  seo.epsilon_ = epsilon_;
  for (const auto& rel : seo.fused_.relations()) {
    const Hierarchy* h = seo.fused_.Find(rel);
    TOSS_ASSIGN_OR_RETURN(
        ontology::SimilarityEnhancement enh,
        ontology::SimilarityEnhance(*h, *measure_, epsilon_));
    seo.enhancements_[rel] = std::move(enh);
  }
  return seo;
}

Result<SeoSweeper> SeoBuilder::BuildSweeper(double max_epsilon) const {
  if (ontologies_.empty()) {
    return Status::InvalidArgument("SeoBuilder: no instance ontologies");
  }
  if (measure_ == nullptr) {
    return Status::InvalidArgument("SeoBuilder: no similarity measure set");
  }
  if (max_epsilon < 0) {
    return Status::InvalidArgument("SeoBuilder: max_epsilon must be >= 0");
  }
  std::vector<const ontology::Ontology*> ptrs;
  ptrs.reserve(ontologies_.size());
  for (const auto& o : ontologies_) ptrs.push_back(&o);

  SeoSweeper sweeper;
  TOSS_ASSIGN_OR_RETURN(sweeper.fused_,
                        ontology::FuseOntologies(ptrs, constraints_));
  sweeper.measure_ = measure_;
  sweeper.max_epsilon_ = max_epsilon;
  for (const auto& rel : sweeper.fused_.relations()) {
    const Hierarchy* h = sweeper.fused_.Find(rel);
    TOSS_ASSIGN_OR_RETURN(
        ontology::SimilaritySweep sweep,
        ontology::SimilaritySweep::Create(*h, *measure_, max_epsilon));
    sweeper.sweeps_.emplace(rel, std::move(sweep));
  }
  return sweeper;
}

Result<Seo> SeoSweeper::BuildAt(double epsilon) const {
  Seo seo;
  seo.fused_ = fused_;
  seo.measure_ = measure_;
  seo.epsilon_ = epsilon;
  for (const auto& [rel, sweep] : sweeps_) {
    TOSS_ASSIGN_OR_RETURN(ontology::SimilarityEnhancement enh,
                          sweep.Enhance(epsilon));
    seo.enhancements_[rel] = std::move(enh);
  }
  return seo;
}

}  // namespace toss::core
