// Query Executor (paper Section 3, component 3; Section 6 timing model).
//
// Executes TAX/TOSS algebra queries against the embedded XML store in the
// paper's three instrumented phases:
//   (i)   parse the pattern tree and rewrite it into XPath queries -- for
//         TOSS, ~ / isa / part_of conditions are first expanded through the
//         SEO into disjunctions of concrete terms;
//   (ii)  execute the XPath queries in the store, intersecting their
//         document sets;
//   (iii) convert surviving documents into TAX data trees and evaluate the
//         full algebra operator (selection / projection / join) with the
//         appropriate condition semantics.
//
// The same executor runs the TAX baseline: construct it without an SEO and
// conditions degrade to exact / "contains" matching (TaxSemantics), with no
// term expansion in phase (i).
//
// Thread safety: one executor serves concurrent queries. The SEO and
// type-system reachability caches are frozen at construction, per-query
// state (stats, spans, candidate lists, result parts) lives on the calling
// thread's stack, and the store's decoded-tree cache is internally locked.
// The per-request knobs -- parallelism, cancellation/deadline token,
// prepared-rewrite cache -- travel in QueryOptions, not in executor state.
// The one shared mutable resource, the worker pool, is claimed per query
// with a try-lock: the query that gets it fans out, concurrent ones run
// their loops inline (identical answers either way).
//
// service::TossService is the front door for multi-client use; it adds
// admission control, deadlines, and the prepared-query cache around this
// class, and service/wire.h defines the JSON forms the network edge speaks.
// In-process callers use the four QueryOptions entry points below directly;
// the old options-free per-operator wrappers and ExplainAnalyze* variants
// were retired (pass QueryOptions, or set QueryRequest::collect_trace on
// the service path, for the same behavior).

#ifndef TOSS_CORE_QUERY_EXECUTOR_H_
#define TOSS_CORE_QUERY_EXECUTOR_H_

#include <atomic>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/cancel.h"
#include "common/result.h"
#include "common/worker_pool.h"
#include "core/prepared_cache.h"
#include "core/seo.h"
#include "obs/trace.h"
#include "core/seo_semantics.h"
#include "core/types.h"
#include "store/database.h"
#include "tax/operators.h"
#include "tax/tax_semantics.h"

namespace toss::core {

/// Per-query phase timings and counters (Fig. 16's measured quantities).
struct ExecStats {
  double rewrite_ms = 0.0;  ///< phase (i)
  double store_ms = 0.0;    ///< phase (ii)
  double eval_ms = 0.0;     ///< phase (iii)
  size_t xpath_queries = 0;
  size_t expanded_terms = 0;   ///< total SEO expansion fan-out
  size_t candidate_docs = 0;   ///< documents surviving phase (ii)
  size_t result_trees = 0;
  size_t prepared_cache_hits = 0;  ///< phase (i) rewrites served from cache
  /// Which join engine evaluated phase (iii): 0 = not a join, 1 = pairwise
  /// product, 2 = structural twig join. Surfaced in the request flight
  /// recorder so fallbacks are visible per request, not just as a counter.
  int join_engine = 0;

  double TotalMs() const { return rewrite_ms + store_ms + eval_ms; }
};

/// Per-request execution knobs. Everything here is scoped to one query
/// call, so concurrent queries on one executor never observe each other's
/// settings.
struct QueryOptions {
  /// Phase (iii) fan-out width (1 = inline). The pool is shared: when
  /// another query holds it, this query's loops run inline instead --
  /// answers are identical either way.
  size_t parallelism = 1;

  /// Checked between phases and once per document inside the eval loops;
  /// a fired token aborts with Cancelled / DeadlineExceeded and whatever
  /// stats accumulated so far. Null = never cancelled. Caller-owned.
  const CancelToken* cancel = nullptr;

  /// Phase (i) memo (see PreparedQueryCache). Null = rewrite every time.
  /// Caller-owned; the owner must Clear() it when the SEO changes.
  PreparedQueryCache* prepared = nullptr;

  /// Join strategy: the holistic structural join (tax::TwigJoiner) builds
  /// per-document posting lists once and merges them per pair, instead of
  /// materializing a product tree per document pair. Answers are
  /// byte-identical either way (golden-tested); this switch exists for A/B
  /// comparison and as an escape hatch. Joins outside the engine's envelope
  /// fall back to the pairwise path automatically.
  bool use_twig_join = true;

  /// Cross-document posting-key value index (tax::TwigValueFilter): for
  /// twig joins whose residue is a single cross-tree ~ atom, precompute
  /// per-document join-key value sets and skip document pairs that share
  /// no similarity-compatible values. Answers are byte-identical with the
  /// filter on or off (it only skips provably-redundant pair merges);
  /// the switch exists for A/B comparison.
  bool use_join_value_index = true;
};

class QueryExecutor {
 public:
  /// `seo == nullptr` selects the TAX baseline. `types` may be null only
  /// when `seo` is null. All pointers must outlive the executor.
  ///
  /// Construction freezes the shared read-only state: the SEO and
  /// type-system reachability caches are warmed here, so queries -- from
  /// any number of threads -- only ever read them.
  ///
  /// `default_parallelism` seeds `parallelism()`, the width callers that
  /// have no per-request setting (e.g. the text query language) put into
  /// their QueryOptions; QueryOptions::parallelism is always what executes.
  QueryExecutor(const store::Database* db, const Seo* seo,
                const TypeSystem* types, size_t default_parallelism = 1);

  /// Updates the default width reported by parallelism(). The setter is
  /// atomic and safe to call concurrently; queries already in flight keep
  /// the width they started with.
  void SetParallelism(size_t threads);
  size_t parallelism() const {
    return parallelism_.load(std::memory_order_relaxed);
  }

  // --- The per-request entry points ----------------------------------------
  //
  // service::TossService routes every QueryRequest through these. `parent`
  // (optional) attaches the per-phase trace spans to a caller-owned trace
  // (EXPLAIN ANALYZE is: pass a root span, render trace->Pretty()).

  /// sigma_{P,SL} over one collection.
  Result<tax::TreeCollection> Select(const std::string& collection,
                                     const tax::PatternTree& pattern,
                                     const std::vector<int>& sl,
                                     const QueryOptions& options,
                                     ExecStats* stats = nullptr,
                                     obs::Span* parent = nullptr) const;

  /// pi_{P,PL} over one collection.
  Result<tax::TreeCollection> Project(const std::string& collection,
                                      const tax::PatternTree& pattern,
                                      const std::vector<tax::ProjectItem>& pl,
                                      const QueryOptions& options,
                                      ExecStats* stats = nullptr,
                                      obs::Span* parent = nullptr) const;

  /// Grouping over one collection: witness trees of `pattern` partitioned
  /// by the content of the `group_label` node (tax::GroupBy).
  Result<tax::TreeCollection> GroupBy(const std::string& collection,
                                      const tax::PatternTree& pattern,
                                      int group_label,
                                      const std::vector<int>& sl,
                                      const QueryOptions& options,
                                      ExecStats* stats = nullptr,
                                      obs::Span* parent = nullptr) const;

  /// Join of two collections: `pattern`'s root must be the product root
  /// (tag tax_prod_root); its first child subtree constrains `left`, its
  /// second constrains `right` (paper Example 13).
  Result<tax::TreeCollection> Join(const std::string& left,
                                   const std::string& right,
                                   const tax::PatternTree& pattern,
                                   const std::vector<int>& sl,
                                   const QueryOptions& options,
                                   ExecStats* stats = nullptr,
                                   obs::Span* parent = nullptr) const;

  /// The semantics in effect (TaxSemantics or SeoSemantics).
  const tax::ConditionSemantics& semantics() const;

  bool is_toss() const { return seo_ != nullptr; }

  /// Phase (i) in isolation: the XPath rewrites for `pattern`, restricted
  /// to the labels in `labels` (empty = all). Exposed for tests and the
  /// rewrite-cost ablation bench.
  Result<std::vector<std::string>> RewriteToXPaths(
      const tax::PatternTree& pattern, const std::vector<int>& labels,
      size_t* expanded_terms) const;

  /// EXPLAIN: a human-readable account of how a selection over
  /// `collection` would run -- the rewritten XPath queries (with SEO term
  /// expansions inlined), each query's candidate-document count, and the
  /// final intersected candidate set size. Runs phases (i) and (ii) but
  /// not (iii).
  Result<std::string> Explain(const std::string& collection,
                              const tax::PatternTree& pattern) const;

 private:
  // The *Impl functions are the single code path behind every entry point;
  // `parent == nullptr` disables every span for the cost of one branch
  // (obs::Span's null-parent convention).
  Result<tax::TreeCollection> SelectImpl(const std::string& collection,
                                         const tax::PatternTree& pattern,
                                         const std::vector<int>& sl,
                                         const QueryOptions& options,
                                         ExecStats* stats,
                                         obs::Span* parent) const;
  Result<tax::TreeCollection> ProjectImpl(
      const std::string& collection, const tax::PatternTree& pattern,
      const std::vector<tax::ProjectItem>& pl, const QueryOptions& options,
      ExecStats* stats, obs::Span* parent) const;
  Result<tax::TreeCollection> GroupByImpl(const std::string& collection,
                                          const tax::PatternTree& pattern,
                                          int group_label,
                                          const std::vector<int>& sl,
                                          const QueryOptions& options,
                                          ExecStats* stats,
                                          obs::Span* parent) const;
  Result<tax::TreeCollection> JoinImpl(const std::string& left,
                                       const std::string& right,
                                       const tax::PatternTree& pattern,
                                       const std::vector<int>& sl,
                                       const QueryOptions& options,
                                       ExecStats* stats,
                                       obs::Span* parent) const;

  /// Phases (i) + (ii), with the phase (i) rewrite served from
  /// `options.prepared` when possible and the cancel token checked between
  /// store queries.
  Result<std::vector<store::DocId>> CandidateDocs(
      const store::Collection& coll, const tax::PatternTree& pattern,
      const std::vector<int>& labels, const QueryOptions& options,
      ExecStats* stats, obs::Span* parent) const;

  /// Runs fn(0) .. fn(n-1) with a per-index cancellation check -- over the
  /// shared worker pool when `options.parallelism` and `n` warrant it AND
  /// the pool is free (one fan-out at a time; concurrent queries fall back
  /// to the inline loop). Returns the first error; the pool aborts
  /// remaining work on failure.
  Status RunPerDoc(size_t n, const std::function<Status(size_t)>& fn,
                   const QueryOptions& options) const;

  const store::Database* db_;
  const Seo* seo_;
  const TypeSystem* types_;
  std::atomic<size_t> parallelism_{1};
  tax::TaxSemantics tax_semantics_;
  SeoSemantics seo_semantics_;
  // The shared pool. pool_mu_ doubles as the fan-out claim: RunPerDoc
  // try-locks it, and only the holder touches pool_ (rebuilt when the
  // requested width changes).
  mutable std::mutex pool_mu_;
  mutable std::unique_ptr<WorkerPool> pool_;  ///< guarded by pool_mu_
};

}  // namespace toss::core

#endif  // TOSS_CORE_QUERY_EXECUTOR_H_
