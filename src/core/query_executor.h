// Query Executor (paper Section 3, component 3; Section 6 timing model).
//
// Executes TAX/TOSS algebra queries against the embedded XML store in the
// paper's three instrumented phases:
//   (i)   parse the pattern tree and rewrite it into XPath queries -- for
//         TOSS, ~ / isa / part_of conditions are first expanded through the
//         SEO into disjunctions of concrete terms;
//   (ii)  execute the XPath queries in the store, intersecting their
//         document sets;
//   (iii) convert surviving documents into TAX data trees and evaluate the
//         full algebra operator (selection / projection / join) with the
//         appropriate condition semantics.
//
// The same executor runs the TAX baseline: construct it without an SEO and
// conditions degrade to exact / "contains" matching (TaxSemantics), with no
// term expansion in phase (i).

#ifndef TOSS_CORE_QUERY_EXECUTOR_H_
#define TOSS_CORE_QUERY_EXECUTOR_H_

#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/worker_pool.h"
#include "core/seo.h"
#include "obs/trace.h"
#include "core/seo_semantics.h"
#include "core/types.h"
#include "store/database.h"
#include "tax/operators.h"
#include "tax/tax_semantics.h"

namespace toss::core {

/// Per-query phase timings and counters (Fig. 16's measured quantities).
struct ExecStats {
  double rewrite_ms = 0.0;  ///< phase (i)
  double store_ms = 0.0;    ///< phase (ii)
  double eval_ms = 0.0;     ///< phase (iii)
  size_t xpath_queries = 0;
  size_t expanded_terms = 0;   ///< total SEO expansion fan-out
  size_t candidate_docs = 0;   ///< documents surviving phase (ii)
  size_t result_trees = 0;

  double TotalMs() const { return rewrite_ms + store_ms + eval_ms; }
};

/// What an ExplainAnalyze* call returns: the operator's answer (identical
/// trees, in the identical order, to the plain entry point -- both run the
/// same code path), the phase stats, and the per-query trace tree with
/// per-phase wall time, candidate/pruning counts, and decoded-tree cache
/// hit/miss annotations.
struct ExplainResult {
  tax::TreeCollection trees;
  ExecStats stats;
  std::unique_ptr<obs::Trace> trace;

  /// The trace tree rendered for humans, with a stats footer (EXPLAIN
  /// ANALYZE output).
  std::string Pretty() const;
};

class QueryExecutor {
 public:
  /// `seo == nullptr` selects the TAX baseline. `types` may be null only
  /// when `seo` is null. All pointers must outlive the executor.
  QueryExecutor(const store::Database* db, const Seo* seo,
                const TypeSystem* types);

  /// Evaluates phase (iii) of every operator -- Select, Project, GroupBy
  /// and both sides of Join -- across `threads` workers of a shared pool
  /// (1 = sequential, the default). Answers are identical to the sequential
  /// path, in the same order: work fans out per candidate document and
  /// merges in document order. The SEO / type-system reachability caches
  /// are frozen before fan-out, so shared state is read-only. Not
  /// thread-safe against concurrent queries on the same executor.
  void SetParallelism(size_t threads);
  size_t parallelism() const { return parallelism_; }

  /// sigma_{P,SL} over one collection.
  Result<tax::TreeCollection> Select(const std::string& collection,
                                     const tax::PatternTree& pattern,
                                     const std::vector<int>& sl,
                                     ExecStats* stats = nullptr) const;

  /// pi_{P,PL} over one collection.
  Result<tax::TreeCollection> Project(const std::string& collection,
                                      const tax::PatternTree& pattern,
                                      const std::vector<tax::ProjectItem>& pl,
                                      ExecStats* stats = nullptr) const;

  /// Grouping over one collection: witness trees of `pattern` partitioned
  /// by the content of the `group_label` node (tax::GroupBy).
  Result<tax::TreeCollection> GroupBy(const std::string& collection,
                                      const tax::PatternTree& pattern,
                                      int group_label,
                                      const std::vector<int>& sl,
                                      ExecStats* stats = nullptr) const;

  /// Join of two collections: `pattern`'s root must be the product root
  /// (tag tax_prod_root); its first child subtree constrains `left`, its
  /// second constrains `right` (paper Example 13).
  Result<tax::TreeCollection> Join(const std::string& left,
                                   const std::string& right,
                                   const tax::PatternTree& pattern,
                                   const std::vector<int>& sl,
                                   ExecStats* stats = nullptr) const;

  /// EXPLAIN ANALYZE: runs the operator (same code path, same answer as the
  /// plain entry point) while recording a trace tree -- per-phase spans
  /// (rewrite, store_scan, eval) with wall time and annotations for
  /// expansion fan-out, candidate counts, index-pruning ratios, and
  /// decoded-tree cache hits/misses.
  Result<ExplainResult> ExplainAnalyzeSelect(const std::string& collection,
                                             const tax::PatternTree& pattern,
                                             const std::vector<int>& sl) const;
  Result<ExplainResult> ExplainAnalyzeProject(
      const std::string& collection, const tax::PatternTree& pattern,
      const std::vector<tax::ProjectItem>& pl) const;
  Result<ExplainResult> ExplainAnalyzeGroupBy(const std::string& collection,
                                              const tax::PatternTree& pattern,
                                              int group_label,
                                              const std::vector<int>& sl) const;
  Result<ExplainResult> ExplainAnalyzeJoin(const std::string& left,
                                           const std::string& right,
                                           const tax::PatternTree& pattern,
                                           const std::vector<int>& sl) const;

  /// The semantics in effect (TaxSemantics or SeoSemantics).
  const tax::ConditionSemantics& semantics() const;

  bool is_toss() const { return seo_ != nullptr; }

  /// Phase (i) in isolation: the XPath rewrites for `pattern`, restricted
  /// to the labels in `labels` (empty = all). Exposed for tests and the
  /// rewrite-cost ablation bench.
  Result<std::vector<std::string>> RewriteToXPaths(
      const tax::PatternTree& pattern, const std::vector<int>& labels,
      size_t* expanded_terms) const;

  /// EXPLAIN: a human-readable account of how a selection over
  /// `collection` would run -- the rewritten XPath queries (with SEO term
  /// expansions inlined), each query's candidate-document count, and the
  /// final intersected candidate set size. Runs phases (i) and (ii) but
  /// not (iii).
  Result<std::string> Explain(const std::string& collection,
                              const tax::PatternTree& pattern) const;

 private:
  // The *Impl functions are the single code path behind both the plain and
  // the ExplainAnalyze entry points: plain calls pass `parent == nullptr`,
  // which disables every span for the cost of one branch (obs::Span's
  // null-parent convention).
  Result<tax::TreeCollection> SelectImpl(const std::string& collection,
                                         const tax::PatternTree& pattern,
                                         const std::vector<int>& sl,
                                         ExecStats* stats,
                                         obs::Span* parent) const;
  Result<tax::TreeCollection> ProjectImpl(
      const std::string& collection, const tax::PatternTree& pattern,
      const std::vector<tax::ProjectItem>& pl, ExecStats* stats,
      obs::Span* parent) const;
  Result<tax::TreeCollection> GroupByImpl(const std::string& collection,
                                          const tax::PatternTree& pattern,
                                          int group_label,
                                          const std::vector<int>& sl,
                                          ExecStats* stats,
                                          obs::Span* parent) const;
  Result<tax::TreeCollection> JoinImpl(const std::string& left,
                                       const std::string& right,
                                       const tax::PatternTree& pattern,
                                       const std::vector<int>& sl,
                                       ExecStats* stats,
                                       obs::Span* parent) const;

  Result<std::vector<store::DocId>> CandidateDocs(
      const store::Collection& coll, const tax::PatternTree& pattern,
      const std::vector<int>& labels, ExecStats* stats,
      obs::Span* parent) const;

  /// Runs fn(0) .. fn(n-1), over the shared worker pool when parallelism
  /// and `n` warrant it, inline otherwise. Returns the first error; the
  /// pool aborts remaining work on failure.
  Status RunPerDoc(size_t n, const std::function<Status(size_t)>& fn) const;

  /// The shared pool, created lazily at the current parallelism.
  WorkerPool& Pool() const;

  void WarmCaches() const;

  const store::Database* db_;
  const Seo* seo_;
  const TypeSystem* types_;
  size_t parallelism_ = 1;
  tax::TaxSemantics tax_semantics_;
  SeoSemantics seo_semantics_;
  mutable std::mutex pool_mu_;
  mutable std::unique_ptr<WorkerPool> pool_;  ///< guarded by pool_mu_
};

}  // namespace toss::core

#endif  // TOSS_CORE_QUERY_EXECUTOR_H_
