// TOSS condition satisfaction (paper Section 5.1.1): ConditionSemantics
// backed by the similarity enhanced ontology and the type system.
//
//  * Comparisons are *well-typed* evaluations: the least common supertype
//    tau of the operand types must exist along with conversions into it;
//    both operands are converted before comparing. Ill-typed atoms yield
//    Status::TypeError, surfacing through query evaluation exactly as the
//    paper's well-typedness precondition demands.
//  * X ~ Y        -> shared node in the enhanced isa hierarchy (Seo::Similar).
//  * X isa / part_of Y -> term-level <= in the relation's enhanced hierarchy;
//    the isa relation additionally holds when the *types* are subtypes.
//  * X instance_of Y -> type(X) <= Y in the type hierarchy and X in dom(Y).
//  * X subtype_of Y  -> type-name <= in the type hierarchy, or term-level
//    isa between type names recorded in the ontology.

#ifndef TOSS_CORE_SEO_SEMANTICS_H_
#define TOSS_CORE_SEO_SEMANTICS_H_

#include "core/seo.h"
#include "core/types.h"
#include "tax/condition.h"

namespace toss::core {

class SeoSemantics : public tax::ConditionSemantics {
 public:
  /// Both pointers must outlive the semantics object.
  SeoSemantics(const Seo* seo, const TypeSystem* types)
      : seo_(seo), types_(types) {}

  Result<bool> Compare(const tax::TermValue& x, tax::CondOp op,
                       const tax::TermValue& y) const override;
  Result<bool> Similar(const tax::TermValue& x,
                       const tax::TermValue& y) const override;
  Result<bool> Related(const std::string& relation, const tax::TermValue& x,
                       const tax::TermValue& y) const override;
  Result<bool> InstanceOf(const tax::TermValue& x,
                          const tax::TermValue& y) const override;
  Result<bool> SubtypeOf(const tax::TermValue& x,
                         const tax::TermValue& y) const override;

 private:
  const Seo* seo_;
  const TypeSystem* types_;
};

}  // namespace toss::core

#endif  // TOSS_CORE_SEO_SEMANTICS_H_
