#include "core/seo_semantics.h"

#include "tax/tax_semantics.h"

namespace toss::core {

using tax::CondOp;
using tax::TermValue;

Result<bool> SeoSemantics::Compare(const TermValue& x, CondOp op,
                                   const TermValue& y) const {
  if (x.is_type_name || y.is_type_name) {
    // Type names only support (in)equality on the name itself.
    if (op == CondOp::kEq) return x.text == y.text;
    if (op == CondOp::kNeq) return x.text != y.text;
    return Status::TypeError("ordering comparison on a type name");
  }
  // Two valid ids imply both operands are string-typed (TermValue
  // invariant), so the lub machinery below is moot and glob-aware equality
  // is decidable from the ids alone.
  if (op == CondOp::kEq || op == CondOp::kNeq) {
    if (auto eq = tax::SymbolGlobEquality(x, y)) {
      return op == CondOp::kEq ? *eq : !*eq;
    }
  }
  std::string tx = x.type.empty() ? "string" : x.type;
  std::string ty = y.type.empty() ? "string" : y.type;
  if (tx == ty) {
    return tax::CompareValues(x.text, op, y.text);
  }
  // Well-typedness (Section 5.1.1): lub must exist with conversions into it.
  TOSS_ASSIGN_OR_RETURN(std::string lub,
                        types_->LeastCommonSupertype(tx, ty));
  if (!types_->HasConversion(tx, lub) || !types_->HasConversion(ty, lub)) {
    return Status::TypeError("comparison of " + tx + " and " + ty +
                             " is not well-typed: missing conversion to " +
                             lub);
  }
  TOSS_ASSIGN_OR_RETURN(std::string vx, types_->Convert(x.text, tx, lub));
  TOSS_ASSIGN_OR_RETURN(std::string vy, types_->Convert(y.text, ty, lub));
  return tax::CompareValues(vx, op, vy);
}

Result<bool> SeoSemantics::Similar(const TermValue& x,
                                   const TermValue& y) const {
  return seo_->SimilarSym(x.symbol, x.text, y.symbol, y.text);
}

Result<bool> SeoSemantics::Related(const std::string& relation,
                                   const TermValue& x,
                                   const TermValue& y) const {
  if (seo_->LeqSym(relation, x.symbol, x.text, y.symbol, y.text)) return true;
  // isa additionally covers the subtype order over *declared* types
  // ("1999":year isa "5":int). Untyped string values must not trigger
  // this -- string <= string would make every isa atom true.
  if (relation == ontology::kIsa && !x.is_type_name && !y.is_type_name &&
      !x.type.empty() && !y.type.empty() &&
      !(x.type == "string" && y.type == "string") &&
      types_->IsSubtype(x.type, y.type)) {
    return true;
  }
  return false;
}

Result<bool> SeoSemantics::InstanceOf(const TermValue& x,
                                      const TermValue& y) const {
  if (!y.is_type_name && y.type.empty()) {
    return Status::TypeError("instance_of requires a type on the right");
  }
  const std::string& target = y.is_type_name ? y.text : y.type;
  if (types_->HasType(target)) {
    // Paper: type(X) <=_H Y and X in dom(Y).
    std::string tx = x.type.empty() ? "string" : x.type;
    if (!x.is_type_name && types_->IsSubtype(tx, target) &&
        types_->IsInstance(x.text, target)) {
      return true;
    }
    // A value whose declared type is unrelated can still be in dom(Y).
    if (!x.is_type_name && types_->IsInstance(x.text, target) &&
        tx == "string") {
      return true;
    }
    return false;
  }
  // Target is an ontology term rather than a registered type: fall back to
  // the enhanced isa hierarchy (value-as-type view, Section 5).
  return seo_->Leq(ontology::kIsa, x.text, target);
}

Result<bool> SeoSemantics::SubtypeOf(const TermValue& x,
                                     const TermValue& y) const {
  const std::string& sub = x.is_type_name ? x.text : x.type;
  const std::string& super = y.is_type_name ? y.text : y.type;
  if (sub.empty() || super.empty()) {
    return Status::TypeError("subtype_of requires type operands");
  }
  if (types_->HasType(sub) && types_->HasType(super)) {
    return types_->IsSubtype(sub, super);
  }
  return seo_->Leq(ontology::kIsa, sub, super);
}

}  // namespace toss::core
