// SEO persistence (see seo.h). Document layout:
//
//   seo-version 1
//   measure <registry name>
//   epsilon <double>
//   fused
//   <ontology dump: relation/node/edge lines>
//   end-fused
//   enhancement <relation>
//   <hierarchy dump: node/edge lines>
//   mu <original-node>: <enhanced-node> <enhanced-node> ...
//   end-enhancement
//   ...

#include <fstream>
#include <sstream>

#include "common/string_util.h"
#include "core/seo.h"
#include "ontology/hierarchy_io.h"
#include "sim/measure_registry.h"

namespace toss::core {

std::string FormatSeo(const Seo& seo) {
  std::string out = "seo-version 1\n";
  out += "measure " + seo.measure_->name() + "\n";
  out += "epsilon " + std::to_string(seo.epsilon_) + "\n";
  out += "fused\n";
  out += ontology::FormatOntology(seo.fused_);
  out += "end-fused\n";
  for (const auto& [rel, enh] : seo.enhancements_) {
    out += "enhancement " + rel + "\n";
    out += ontology::FormatHierarchy(enh.enhanced);
    for (size_t v = 0; v < enh.mu.size(); ++v) {
      out += "mu " + std::to_string(v) + ":";
      for (ontology::HNodeId e : enh.mu[v]) {
        out += " " + std::to_string(e);
      }
      out += "\n";
    }
    out += "end-enhancement\n";
  }
  return out;
}

Result<Seo> ParseSeoText(std::string_view text) {
  Seo seo;
  std::istringstream lines{std::string(text)};
  std::string line;
  int line_no = 0;
  auto fail = [&](const std::string& what) {
    return Status::ParseError("seo line " + std::to_string(line_no) + ": " +
                              what);
  };

  auto next_meaningful = [&](std::string_view* out) {
    while (std::getline(lines, line)) {
      ++line_no;
      std::string_view trimmed = Trim(line);
      if (trimmed.empty() || trimmed[0] == '#') continue;
      // NOTE: trimmed views into `line`, which stays alive until the next
      // getline -- callers must consume before re-calling.
      *out = trimmed;
      return true;
    }
    return false;
  };

  std::string_view cur;
  if (!next_meaningful(&cur) || cur != "seo-version 1") {
    return fail("expected 'seo-version 1' header");
  }
  if (!next_meaningful(&cur) || !StartsWith(cur, "measure ")) {
    return fail("expected 'measure <name>'");
  }
  TOSS_ASSIGN_OR_RETURN(seo.measure_,
                        sim::MakeMeasure(std::string(Trim(cur.substr(8)))));
  if (!next_meaningful(&cur) || !StartsWith(cur, "epsilon ")) {
    return fail("expected 'epsilon <value>'");
  }
  if (!ParseDouble(cur.substr(8), &seo.epsilon_) || seo.epsilon_ < 0) {
    return fail("bad epsilon value");
  }
  if (!next_meaningful(&cur) || cur != "fused") {
    return fail("expected 'fused'");
  }
  std::string block;
  while (next_meaningful(&cur) && cur != "end-fused") {
    block += std::string(cur) + "\n";
  }
  if (cur != "end-fused") return fail("missing end-fused");
  TOSS_ASSIGN_OR_RETURN(seo.fused_, ontology::ParseOntologyText(block));

  while (next_meaningful(&cur)) {
    if (!StartsWith(cur, "enhancement ")) {
      return fail("expected 'enhancement <relation>'");
    }
    std::string rel{Trim(cur.substr(12))};
    if (rel.empty()) return fail("empty enhancement relation");
    std::string hblock;
    std::vector<std::vector<ontology::HNodeId>> mu;
    while (next_meaningful(&cur) && cur != "end-enhancement") {
      if (StartsWith(cur, "mu ")) {
        size_t colon = cur.find(':');
        if (colon == std::string_view::npos) return fail("mu missing ':'");
        long long orig;
        if (!ParseInt(cur.substr(3, colon - 3), &orig) || orig < 0) {
          return fail("bad mu node id");
        }
        if (orig != static_cast<long long>(mu.size())) {
          return fail("mu ids must be dense and ascending");
        }
        std::vector<ontology::HNodeId> targets;
        for (const auto& piece : SplitWhitespace(cur.substr(colon + 1))) {
          long long e;
          if (!ParseInt(piece, &e) || e < 0) return fail("bad mu target");
          targets.push_back(static_cast<ontology::HNodeId>(e));
        }
        if (targets.empty()) return fail("mu with no targets");
        mu.push_back(std::move(targets));
      } else {
        hblock += std::string(cur) + "\n";
      }
    }
    if (cur != "end-enhancement") return fail("missing end-enhancement");
    ontology::SimilarityEnhancement enh;
    TOSS_ASSIGN_OR_RETURN(enh.enhanced,
                          ontology::ParseHierarchyText(hblock));
    // Validate mu against both hierarchies.
    const ontology::Hierarchy* fused_h = seo.fused_.Find(rel);
    if (fused_h == nullptr) {
      return fail("enhancement for relation '" + rel +
                  "' absent from fused ontology");
    }
    if (mu.size() != fused_h->node_count()) {
      return fail("mu covers " + std::to_string(mu.size()) +
                  " nodes but fused hierarchy has " +
                  std::to_string(fused_h->node_count()));
    }
    for (const auto& targets : mu) {
      for (ontology::HNodeId e : targets) {
        if (e >= enh.enhanced.node_count()) {
          return fail("mu target out of range");
        }
      }
    }
    enh.mu = std::move(mu);
    seo.enhancements_[rel] = std::move(enh);
  }
  if (seo.enhancements_.empty()) {
    return fail("seo document has no enhancements");
  }
  return seo;
}

Status SaveSeo(const Seo& seo, const std::string& path) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) return Status::IOError("cannot write " + path);
  out << FormatSeo(seo);
  out.close();
  if (!out) return Status::IOError("write failed for " + path);
  return Status::OK();
}

Result<Seo> LoadSeo(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IOError("cannot open " + path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ParseSeoText(ss.str());
}

}  // namespace toss::core
