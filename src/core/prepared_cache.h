// Prepared-query cache: memoizes phase (i) of query execution -- the
// pattern-tree -> XPath rewrite, whose cost is dominated by SEO term
// expansion -- keyed by a canonical serialization of the pattern tree plus
// the label restriction (DESIGN.md §11 "Service layer").
//
// The rewrite of a pattern depends only on (pattern, label filter, SEO), so
// entries stay valid until the SEO changes; service::TossService calls
// Clear() when it swaps SEOs. The cache is a bounded, thread-safe LRU:
// repeated queries -- the common shape of production traffic -- skip SEO
// expansion entirely and go straight to the store scan.

#ifndef TOSS_CORE_PREPARED_CACHE_H_
#define TOSS_CORE_PREPARED_CACHE_H_

#include <list>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "tax/pattern_tree.h"

namespace toss::core {

/// A memoized phase (i) result: the pushdown XPath queries and the SEO
/// expansion fan-out that produced them.
struct PreparedRewrite {
  std::vector<std::string> xpaths;
  size_t expanded_terms = 0;
};

/// Canonical cache key for (pattern, label restriction): node structure
/// (label/parent/edge in creation order), the condition's serialization,
/// and the sorted label filter. Two patterns with equal keys rewrite
/// identically under any fixed SEO.
std::string CanonicalPatternKey(const tax::PatternTree& pattern,
                                const std::vector<int>& labels);

class PreparedQueryCache {
 public:
  explicit PreparedQueryCache(size_t capacity = 512);

  PreparedQueryCache(const PreparedQueryCache&) = delete;
  PreparedQueryCache& operator=(const PreparedQueryCache&) = delete;

  /// Copies the entry for `key` into `*out` and returns true on a hit
  /// (refreshing the entry's LRU position).
  bool Lookup(const std::string& key, PreparedRewrite* out);

  /// Inserts or refreshes `key`, evicting the least-recently-used entry
  /// beyond capacity.
  void Insert(const std::string& key, PreparedRewrite entry);

  /// Drops every entry (SEO swap invalidation). Hit/miss counters persist.
  void Clear();

  struct Stats {
    size_t hits = 0;
    size_t misses = 0;
    size_t entries = 0;
    size_t capacity = 0;
  };
  Stats GetStats() const;

 private:
  struct Node {
    PreparedRewrite rewrite;
    std::list<std::string>::iterator lru_it;
  };

  mutable std::mutex mu_;
  size_t capacity_;
  std::list<std::string> lru_;  ///< front = most recently used
  std::unordered_map<std::string, Node> entries_;
  size_t hits_ = 0;
  size_t misses_ = 0;
};

}  // namespace toss::core

#endif  // TOSS_CORE_PREPARED_CACHE_H_
