// The similarity enhanced (fused) ontology -- the precomputed artifact the
// whole TOSS pipeline revolves around (paper Section 3): per-instance
// ontologies are fused under interoperation constraints, then each fused
// hierarchy is similarity-enhanced with the administrator's measure and
// threshold epsilon.
//
// SeoBuilder mirrors the paper's pipeline:
//   SeoBuilder b;
//   b.AddInstanceOntology(MakeOntology(doc1, lexicon, opts));   // per source
//   b.AddInstanceOntology(MakeOntology(doc2, lexicon, opts));
//   b.AddConstraints("partof", Eq("booktitle", 0, "conference", 1));
//   b.SetMeasure(measure).SetEpsilon(3.0);
//   TOSS_ASSIGN_OR_RETURN(Seo seo, b.Build());

#ifndef TOSS_CORE_SEO_H_
#define TOSS_CORE_SEO_H_

#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/interner.h"
#include "common/result.h"
#include "ontology/ontology.h"
#include "ontology/sea.h"
#include "sim/string_measure.h"

namespace toss::core {

/// Fused + similarity-enhanced ontology bundle.
class Seo {
 public:
  Seo() = default;

  /// The fused (pre-enhancement) ontology.
  const ontology::Ontology& fused() const { return fused_; }

  /// The enhanced hierarchy of `relation`, or nullptr if undefined.
  const ontology::Hierarchy* EnhancedHierarchy(
      const std::string& relation) const;

  /// The enhancement (H', mu) of `relation`, or nullptr.
  const ontology::SimilarityEnhancement* Enhancement(
      const std::string& relation) const;

  const sim::StringMeasure& measure() const { return *measure_; }
  bool has_measure() const { return measure_ != nullptr; }
  double epsilon() const { return epsilon_; }

  /// The enhanced-isa nodes containing `term` (with the same lowercase
  /// fallback lookup Similar uses); empty when the term is outside the
  /// ontology or no enhanced isa hierarchy exists. Exposing the per-term
  /// half of Similar lets the join engine memoize it across the quadratic
  /// pair merge (see tax::SimilarOracle).
  std::vector<ontology::HNodeId> SimilarityNodes(
      const std::string& term) const;

  /// X ~ Y (paper Section 5.1.1): true iff some enhanced-isa node contains
  /// both terms. Terms absent from the ontology fall back to a direct
  /// measure comparison d(x, y) <= epsilon -- equivalent to the SEO check
  /// had the terms been present as singleton nodes.
  bool Similar(const std::string& x, const std::string& y) const;

  /// Term-level x <= y in the enhanced hierarchy of `relation`.
  bool Leq(const std::string& relation, const std::string& x,
           const std::string& y) const;

  // --- Interned-id variants -------------------------------------------------
  //
  // Same verdicts as Similar()/Leq() (property-tested equivalent), but
  // after WarmCaches() has built the symbol-keyed term index, the per-term
  // hierarchy lookup is one hash probe on a u32 instead of string-keyed
  // map walks. Pass kInvalidSymbol when a term's id is unknown; the text
  // is always required (measure fallback, lazy id resolution).

  bool SimilarSym(SymbolId sx, const std::string& x, SymbolId sy,
                  const std::string& y) const;
  bool LeqSym(const std::string& relation, SymbolId sx, const std::string& x,
              SymbolId sy, const std::string& y) const;

  /// All terms similar to `term` (sharing an enhanced-isa node), including
  /// `term` itself. Query rewriting expands search terms through this.
  std::vector<std::string> SimilarTerms(const std::string& term) const;

  /// All terms t with t <= `term` in `relation`'s enhanced hierarchy,
  /// including `term`. Used to expand isa/part_of query conditions.
  std::vector<std::string> TermsBelow(const std::string& relation,
                                      const std::string& term) const;

  /// Total node count over the enhanced hierarchies (Fig. 16's
  /// "ontology size" axis).
  size_t TotalNodeCount() const;

  /// Prebuilds every hierarchy's reachability cache so a frozen Seo can be
  /// shared across query threads (see Hierarchy::EnsureReachabilityCache),
  /// and interns every enhanced-hierarchy term into the symbol-keyed term
  /// index behind SimilarSym/LeqSym. Like the reachability caches, this
  /// must run before the Seo is shared across threads.
  void WarmCaches() const;

 private:
  friend class SeoBuilder;
  friend class SeoSweeper;
  friend std::string FormatSeo(const Seo& seo);
  friend Result<Seo> ParseSeoText(std::string_view text);

  /// relation -> (interned exact term -> ascending enhanced-node ids);
  /// immutable once published, shared by copies of this Seo.
  struct TermIndex {
    std::map<std::string,
             std::unordered_map<SymbolId, std::vector<ontology::HNodeId>>>
        by_relation;
  };

  const std::vector<ontology::HNodeId>* LookupSym(
      const std::unordered_map<SymbolId, std::vector<ontology::HNodeId>>&
          relation_index,
      SymbolId sym, std::string_view term) const;

  ontology::Ontology fused_;
  std::map<std::string, ontology::SimilarityEnhancement> enhancements_;
  sim::StringMeasurePtr measure_;
  double epsilon_ = 0.0;
  mutable std::shared_ptr<const TermIndex> term_index_;  ///< see WarmCaches
};

/// SEO persistence: the fused ontology, every enhancement (H', mu), the
/// measure's registry name and epsilon -- everything needed to answer
/// queries without re-running fusion + SEA (the paper precomputes the SEO
/// during integration). The measure is restored via sim::MakeMeasure.
std::string FormatSeo(const Seo& seo);
Result<Seo> ParseSeoText(std::string_view text);
Status SaveSeo(const Seo& seo, const std::string& path);
Result<Seo> LoadSeo(const std::string& path);

/// Compute-once epsilon sweeps at the SEO level (built by
/// SeoBuilder::BuildSweeper): fusion runs once and each relation's pairwise
/// distance matrix is computed once at the sweep's max epsilon (via
/// ontology::SimilaritySweep); BuildAt(epsilon) then derives the Seo for
/// any epsilon <= max_epsilon by thresholding. The result is identical to
/// SeoBuilder::SetEpsilon(epsilon).Build() on the same inputs, including
/// the similarity-inconsistent rejections -- benchmarks sweeping Fig. 16c's
/// epsilon axis pay for fusion and the O(|S|^2) scan once instead of once
/// per epsilon.
class SeoSweeper {
 public:
  /// Assembles the Seo at `epsilon` (<= max_epsilon). Fails with
  /// Inconsistent exactly where an independent build would.
  Result<Seo> BuildAt(double epsilon) const;

  double max_epsilon() const { return max_epsilon_; }

 private:
  friend class SeoBuilder;
  SeoSweeper() = default;

  ontology::Ontology fused_;
  std::map<std::string, ontology::SimilaritySweep> sweeps_;
  sim::StringMeasurePtr measure_;
  double max_epsilon_ = 0.0;
};

class SeoBuilder {
 public:
  SeoBuilder();

  /// Adds one instance's ontology (index = order of addition; constraint
  /// hierarchy indexes refer to these).
  SeoBuilder& AddInstanceOntology(ontology::Ontology onto);

  /// Adds constraints for one relation's fusion.
  SeoBuilder& AddConstraints(const std::string& relation,
                             std::vector<ontology::InteropConstraint> cs);

  SeoBuilder& SetMeasure(sim::StringMeasurePtr measure);
  SeoBuilder& SetEpsilon(double epsilon);

  /// Fuses and enhances. Fails with Inconsistent on unsatisfiable
  /// constraints or similarity inconsistency.
  Result<Seo> Build() const;

  /// Fuses once and precomputes every relation's distance matrix at
  /// `max_epsilon`, for repeated SeoSweeper::BuildAt calls. The builder's
  /// own epsilon is ignored (BuildAt supplies it).
  Result<SeoSweeper> BuildSweeper(double max_epsilon) const;

 private:
  std::vector<ontology::Ontology> ontologies_;
  std::map<std::string, std::vector<ontology::InteropConstraint>>
      constraints_;
  sim::StringMeasurePtr measure_;
  double epsilon_ = 0.0;
};

}  // namespace toss::core

#endif  // TOSS_CORE_SEO_H_
