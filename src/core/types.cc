#include "core/types.h"

#include <algorithm>
#include <deque>
#include <set>

#include "common/string_util.h"

namespace toss::core {

using ontology::HNodeId;
using ontology::kInvalidHNode;

TypeSystem::TypeSystem() {
  // "string" is the root type of plain TAX instances (tax::kStringType).
  (void)AddType("string");
}

Status TypeSystem::AddType(const std::string& name,
                           const std::string& supertype) {
  if (name.empty()) {
    return Status::InvalidArgument("type name must be non-empty");
  }
  hierarchy_.EnsureTerm(name);
  if (!supertype.empty()) {
    TOSS_RETURN_NOT_OK(hierarchy_.AddTermEdge(name, supertype));
    if (!hierarchy_.IsAcyclic()) {
      return Status::InvalidArgument("subtype edge " + name + " <= " +
                                     supertype + " creates a cycle");
    }
  }
  return Status::OK();
}

bool TypeSystem::HasType(const std::string& name) const {
  return hierarchy_.FindTerm(name) != kInvalidHNode;
}

std::vector<std::string> TypeSystem::TypeNames() const {
  return hierarchy_.AllTerms();
}

bool TypeSystem::IsSubtype(const std::string& sub,
                           const std::string& super) const {
  if (sub == super) return true;
  return hierarchy_.LeqTerms(sub, super);
}

Result<std::string> TypeSystem::LeastCommonSupertype(
    const std::string& a, const std::string& b) const {
  HNodeId na = hierarchy_.FindTerm(a);
  HNodeId nb = hierarchy_.FindTerm(b);
  if (na == kInvalidHNode || nb == kInvalidHNode) {
    return Status::TypeError("unknown type in lub(" + a + ", " + b + ")");
  }
  // Common upper bounds, then keep the minimal ones.
  auto above_a = hierarchy_.Above(na);
  auto above_b = hierarchy_.Above(nb);
  std::set<HNodeId> common;
  std::set<HNodeId> sb(above_b.begin(), above_b.end());
  for (HNodeId v : above_a) {
    if (sb.count(v)) common.insert(v);
  }
  if (common.empty()) {
    return Status::TypeError("types " + a + " and " + b +
                             " have no common supertype");
  }
  std::vector<HNodeId> minimal;
  for (HNodeId v : common) {
    bool is_minimal = true;
    for (HNodeId w : common) {
      if (w != v && hierarchy_.Leq(w, v)) {
        is_minimal = false;
        break;
      }
    }
    if (is_minimal) minimal.push_back(v);
  }
  if (minimal.size() != 1) {
    return Status::TypeError("least common supertype of " + a + " and " + b +
                             " is ambiguous");
  }
  return hierarchy_.terms(minimal[0]).front();
}

Status TypeSystem::SetDomain(const std::string& type,
                             DomainPredicate predicate) {
  if (!HasType(type)) {
    return Status::NotFound("SetDomain: unknown type " + type);
  }
  domains_[type] = std::move(predicate);
  return Status::OK();
}

bool TypeSystem::IsInstance(const std::string& value,
                            const std::string& type) const {
  if (!HasType(type)) return false;
  auto it = domains_.find(type);
  if (it == domains_.end()) return true;  // unconstrained domain
  return it->second(value);
}

Status TypeSystem::AddConversion(const std::string& from,
                                 const std::string& to, ConversionFn fn) {
  if (!HasType(from) || !HasType(to)) {
    return Status::NotFound("AddConversion: unknown type " + from + " or " +
                            to);
  }
  conversions_[{from, to}] = std::move(fn);
  return Status::OK();
}

std::vector<std::string> TypeSystem::ConversionPath(
    const std::string& from, const std::string& to) const {
  if (from == to) return {from};
  // BFS over registered conversion edges; the paper's composition-coherence
  // assumption makes any shortest path as good as any other.
  std::map<std::string, std::string> came_from;
  std::deque<std::string> frontier{from};
  came_from[from] = from;
  while (!frontier.empty()) {
    std::string cur = frontier.front();
    frontier.pop_front();
    for (const auto& [key, fn] : conversions_) {
      if (key.first != cur) continue;
      if (came_from.count(key.second)) continue;
      came_from[key.second] = cur;
      if (key.second == to) {
        std::vector<std::string> path{to};
        std::string back = to;
        while (back != from) {
          back = came_from[back];
          path.push_back(back);
        }
        std::reverse(path.begin(), path.end());
        return path;
      }
      frontier.push_back(key.second);
    }
  }
  return {};
}

bool TypeSystem::HasConversion(const std::string& from,
                               const std::string& to) const {
  return !ConversionPath(from, to).empty();
}

Result<std::string> TypeSystem::Convert(const std::string& value,
                                        const std::string& from,
                                        const std::string& to) const {
  auto path = ConversionPath(from, to);
  if (path.empty()) {
    return Status::TypeError("no conversion from " + from + " to " + to);
  }
  std::string current = value;
  for (size_t i = 0; i + 1 < path.size(); ++i) {
    auto it = conversions_.find({path[i], path[i + 1]});
    TOSS_ASSIGN_OR_RETURN(current, it->second(current));
  }
  return current;
}

Status TypeSystem::ValidateClosure() const {
  for (const auto& sub : TypeNames()) {
    for (const auto& super : TypeNames()) {
      if (sub == super || !IsSubtype(sub, super)) continue;
      if (!HasConversion(sub, super)) {
        return Status::TypeError("subtype " + sub + " <= " + super +
                                 " lacks a conversion function");
      }
    }
  }
  return Status::OK();
}

TypeSystem MakeBibliographicTypeSystem() {
  TypeSystem ts;
  auto identity = [](const std::string& v) -> Result<std::string> {
    return v;
  };
  auto int_check = [](const std::string& v) -> Result<std::string> {
    long long out;
    if (!ParseInt(v, &out)) {
      return Status::TypeError("'" + v + "' is not an integer");
    }
    return v;
  };
  (void)ts.AddType("int", "string");
  (void)ts.AddType("year", "int");
  (void)ts.AddType("month", "int");
  (void)ts.AddType("pages", "string");
  (void)ts.AddType("person", "string");
  (void)ts.AddType("venue", "string");

  (void)ts.SetDomain("int", [](const std::string& v) {
    long long out;
    return ParseInt(v, &out);
  });
  (void)ts.SetDomain("year", [](const std::string& v) {
    long long out;
    return ParseInt(v, &out) && out >= 0 && out <= 9999;
  });
  (void)ts.SetDomain("month", [](const std::string& v) {
    long long out;
    return ParseInt(v, &out) && out >= 1 && out <= 12;
  });

  (void)ts.AddConversion("int", "string", identity);
  (void)ts.AddConversion("year", "int", int_check);
  (void)ts.AddConversion("month", "int", int_check);
  (void)ts.AddConversion("pages", "string", identity);
  (void)ts.AddConversion("person", "string", identity);
  (void)ts.AddConversion("venue", "string", identity);
  return ts;
}

}  // namespace toss::core
