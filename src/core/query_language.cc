#include "core/query_language.h"

#include <cctype>

#include "common/string_util.h"
#include "tax/condition_parser.h"

namespace toss::core {

namespace {

class QueryParser {
 public:
  explicit QueryParser(std::string_view text) : text_(text) {}

  Result<ParsedQuery> Run() {
    ParsedQuery q;
    if (ConsumeKeyword("SELECT")) {
      q.kind = ParsedQuery::Kind::kSelect;
      TOSS_RETURN_NOT_OK(ParseLabelList(&q.sl));
      if (!ConsumeKeyword("FROM")) return Error("expected FROM");
      TOSS_ASSIGN_OR_RETURN(q.collection, ParseIdent());
      TOSS_RETURN_NOT_OK(ParseMatch(&q.pattern));
      TOSS_RETURN_NOT_OK(ParseWhere(&q.pattern));
      if (ConsumeKeyword("GROUP")) {
        if (!ConsumeKeyword("BY")) return Error("expected BY after GROUP");
        q.kind = ParsedQuery::Kind::kGroupBy;
        TOSS_ASSIGN_OR_RETURN(q.group_label, ParseLabel());
      }
    } else if (ConsumeKeyword("PROJECT")) {
      q.kind = ParsedQuery::Kind::kProject;
      TOSS_RETURN_NOT_OK(ParseProjectList(&q.pl));
      if (!ConsumeKeyword("FROM")) return Error("expected FROM");
      TOSS_ASSIGN_OR_RETURN(q.collection, ParseIdent());
      TOSS_RETURN_NOT_OK(ParseMatch(&q.pattern));
      TOSS_RETURN_NOT_OK(ParseWhere(&q.pattern));
    } else if (ConsumeKeyword("JOIN")) {
      q.kind = ParsedQuery::Kind::kJoin;
      TOSS_ASSIGN_OR_RETURN(q.collection, ParseIdent());
      if (!Consume(",")) return Error("expected ',' between collections");
      TOSS_ASSIGN_OR_RETURN(q.right_collection, ParseIdent());
      TOSS_RETURN_NOT_OK(ParseMatch(&q.pattern));
      TOSS_RETURN_NOT_OK(ParseWhere(&q.pattern));
      if (!ConsumeKeyword("SELECT")) {
        return Error("JOIN requires a trailing SELECT label list");
      }
      TOSS_RETURN_NOT_OK(ParseLabelList(&q.sl));
    } else {
      return Error("expected SELECT, PROJECT or JOIN");
    }
    SkipSpace();
    if (pos_ != text_.size()) return Error("trailing input");
    TOSS_RETURN_NOT_OK(q.pattern.Validate());
    TOSS_RETURN_NOT_OK(ValidateLabels(q));
    return q;
  }

 private:
  Status Error(const std::string& what) const {
    return Status::ParseError("toss-ql: " + what + " at offset " +
                              std::to_string(pos_));
  }

  void SkipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool Consume(std::string_view token) {
    SkipSpace();
    if (text_.substr(pos_, token.size()) != token) return false;
    pos_ += token.size();
    return true;
  }

  static bool IsIdentChar(char c) {
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
           c == '-';
  }

  bool ConsumeKeyword(std::string_view keyword) {
    SkipSpace();
    if (pos_ + keyword.size() > text_.size()) return false;
    if (!EqualsIgnoreCase(text_.substr(pos_, keyword.size()), keyword)) {
      return false;
    }
    size_t after = pos_ + keyword.size();
    if (after < text_.size() && IsIdentChar(text_[after])) return false;
    pos_ = after;
    return true;
  }

  /// WHERE must stop the condition text before a trailing SELECT (join);
  /// find the matching keyword outside string literals.
  Result<std::string_view> TakeConditionText() {
    SkipSpace();
    size_t start = pos_;
    bool in_string = false;
    char quote = 0;
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (in_string) {
        if (c == '\\') {
          ++pos_;
        } else if (c == quote) {
          in_string = false;
        }
      } else if (c == '"' || c == '\'') {
        in_string = true;
        quote = c;
      } else if ((c == 'S' || c == 's') &&
                 EqualsIgnoreCase(text_.substr(pos_, 6), "SELECT") &&
                 (pos_ + 6 >= text_.size() || !IsIdentChar(text_[pos_ + 6])) &&
                 (pos_ == 0 || !IsIdentChar(text_[pos_ - 1]))) {
        break;
      } else if ((c == 'G' || c == 'g') &&
                 EqualsIgnoreCase(text_.substr(pos_, 5), "GROUP") &&
                 (pos_ + 5 >= text_.size() || !IsIdentChar(text_[pos_ + 5])) &&
                 (pos_ == 0 || !IsIdentChar(text_[pos_ - 1]))) {
        break;
      }
      ++pos_;
    }
    if (in_string) return Error("unterminated string literal in WHERE");
    return text_.substr(start, pos_ - start);
  }

  Result<std::string> ParseIdent() {
    SkipSpace();
    size_t start = pos_;
    while (pos_ < text_.size() && IsIdentChar(text_[pos_])) ++pos_;
    if (pos_ == start) return Error("expected identifier");
    return std::string(text_.substr(start, pos_ - start));
  }

  Result<int> ParseLabel() {
    SkipSpace();
    if (pos_ >= text_.size() || text_[pos_] != '$') {
      return Error("expected $label");
    }
    ++pos_;
    size_t start = pos_;
    while (pos_ < text_.size() &&
           std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
    if (pos_ == start) return Error("expected label number after $");
    return std::stoi(std::string(text_.substr(start, pos_ - start)));
  }

  Status ParseLabelList(std::vector<int>* out) {
    do {
      TOSS_ASSIGN_OR_RETURN(int label, ParseLabel());
      out->push_back(label);
    } while (Consume(","));
    return Status::OK();
  }

  Status ParseProjectList(std::vector<tax::ProjectItem>* out) {
    do {
      TOSS_ASSIGN_OR_RETURN(int label, ParseLabel());
      tax::ProjectItem item;
      item.label = label;
      item.keep_subtree = Consume("*");
      out->push_back(item);
    } while (Consume(","));
    return Status::OK();
  }

  Status ParseMatch(tax::PatternTree* pattern) {
    if (!ConsumeKeyword("MATCH")) {
      return Error("expected MATCH");
    }
    int root = pattern->AddRoot();
    (void)root;
    int max_label = 1;
    do {
      TOSS_ASSIGN_OR_RETURN(int parent, ParseLabel());
      tax::EdgeKind kind;
      if (Consume("//")) {
        kind = tax::EdgeKind::kAd;
      } else if (Consume("/")) {
        kind = tax::EdgeKind::kPc;
      } else {
        return Error("expected '/' or '//' in MATCH edge");
      }
      TOSS_ASSIGN_OR_RETURN(int child, ParseLabel());
      if (child != max_label + 1) {
        return Error("labels must be introduced in order: expected $" +
                     std::to_string(max_label + 1) + ", got $" +
                     std::to_string(child));
      }
      if (parent < 1 || parent > max_label) {
        return Error("edge parent $" + std::to_string(parent) +
                     " is not a declared label");
      }
      int assigned = pattern->AddChild(parent, kind);
      if (assigned != child) {
        return Error("internal label mismatch");
      }
      max_label = child;
    } while (Consume(","));
    return Status::OK();
  }

  Status ParseWhere(tax::PatternTree* pattern) {
    if (!ConsumeKeyword("WHERE")) {
      return Error("expected WHERE");
    }
    TOSS_ASSIGN_OR_RETURN(std::string_view cond_text, TakeConditionText());
    TOSS_ASSIGN_OR_RETURN(tax::Condition cond,
                          tax::ParseCondition(cond_text));
    pattern->SetCondition(std::move(cond));
    return Status::OK();
  }

  Status ValidateLabels(const ParsedQuery& q) const {
    auto labels = q.pattern.Labels();
    auto known = [&](int l) {
      for (int x : labels) {
        if (x == l) return true;
      }
      return false;
    };
    for (int l : q.sl) {
      if (!known(l)) {
        return Status::ParseError("toss-ql: SELECT label $" +
                                  std::to_string(l) +
                                  " is not a pattern node");
      }
    }
    for (const auto& item : q.pl) {
      if (!known(item.label)) {
        return Status::ParseError("toss-ql: PROJECT label $" +
                                  std::to_string(item.label) +
                                  " is not a pattern node");
      }
    }
    if (q.kind == ParsedQuery::Kind::kJoin &&
        q.pattern.node(0).children.size() < 2) {
      return Status::ParseError(
          "toss-ql: JOIN pattern root needs two child subtrees");
    }
    if (q.kind == ParsedQuery::Kind::kGroupBy && !known(q.group_label)) {
      return Status::ParseError("toss-ql: GROUP BY label $" +
                                std::to_string(q.group_label) +
                                " is not a pattern node");
    }
    return Status::OK();
  }

  std::string_view text_;
  size_t pos_ = 0;
};

}  // namespace

Result<ParsedQuery> ParseQuery(std::string_view text) {
  return QueryParser(text).Run();
}

Result<tax::TreeCollection> ExecuteQuery(const QueryExecutor& executor,
                                         const ParsedQuery& query,
                                         ExecStats* stats) {
  // The text language carries no per-request knobs, so the executor's
  // default parallelism is the one setting that applies.
  QueryOptions options;
  options.parallelism = executor.parallelism();
  switch (query.kind) {
    case ParsedQuery::Kind::kSelect:
      return executor.Select(query.collection, query.pattern, query.sl,
                             options, stats);
    case ParsedQuery::Kind::kProject:
      return executor.Project(query.collection, query.pattern, query.pl,
                              options, stats);
    case ParsedQuery::Kind::kJoin:
      return executor.Join(query.collection, query.right_collection,
                           query.pattern, query.sl, options, stats);
    case ParsedQuery::Kind::kGroupBy:
      return executor.GroupBy(query.collection, query.pattern,
                              query.group_label, query.sl, options, stats);
  }
  return Status::Internal("unreachable query kind");
}

namespace {

/// Finds the index of the ')' matching the '(' at `open`, skipping string
/// literals; npos when unbalanced.
size_t MatchingParen(std::string_view text, size_t open) {
  int depth = 0;
  bool in_string = false;
  char quote = 0;
  for (size_t i = open; i < text.size(); ++i) {
    char c = text[i];
    if (in_string) {
      if (c == '\\') {
        ++i;
      } else if (c == quote) {
        in_string = false;
      }
    } else if (c == '"' || c == '\'') {
      in_string = true;
      quote = c;
    } else if (c == '(') {
      ++depth;
    } else if (c == ')') {
      if (--depth == 0) return i;
    }
  }
  return std::string_view::npos;
}

}  // namespace

Result<CompoundQuery> ParseCompoundQuery(std::string_view text) {
  CompoundQuery compound;
  size_t pos = 0;
  auto skip_space = [&] {
    while (pos < text.size() &&
           std::isspace(static_cast<unsigned char>(text[pos]))) {
      ++pos;
    }
  };
  skip_space();
  if (pos >= text.size() || text[pos] != '(') {
    // Single unparenthesized query.
    TOSS_ASSIGN_OR_RETURN(ParsedQuery q, ParseQuery(text));
    compound.queries.push_back(std::move(q));
    return compound;
  }
  for (;;) {
    skip_space();
    if (pos >= text.size() || text[pos] != '(') {
      return Status::ParseError("toss-ql: expected '(' at offset " +
                                std::to_string(pos));
    }
    size_t close = MatchingParen(text, pos);
    if (close == std::string_view::npos) {
      return Status::ParseError("toss-ql: unbalanced parentheses");
    }
    TOSS_ASSIGN_OR_RETURN(
        ParsedQuery q, ParseQuery(text.substr(pos + 1, close - pos - 1)));
    compound.queries.push_back(std::move(q));
    pos = close + 1;
    skip_space();
    if (pos >= text.size()) break;
    struct Keyword {
      const char* word;
      CompoundQuery::SetOp op;
    };
    static constexpr Keyword kOps[] = {
        {"UNION", CompoundQuery::SetOp::kUnion},
        {"INTERSECT", CompoundQuery::SetOp::kIntersect},
        {"EXCEPT", CompoundQuery::SetOp::kExcept},
    };
    bool matched = false;
    for (const auto& kw : kOps) {
      size_t len = std::string_view(kw.word).size();
      if (pos + len <= text.size() &&
          EqualsIgnoreCase(text.substr(pos, len), kw.word)) {
        compound.ops.push_back(kw.op);
        pos += len;
        matched = true;
        break;
      }
    }
    if (!matched) {
      return Status::ParseError(
          "toss-ql: expected UNION, INTERSECT or EXCEPT at offset " +
          std::to_string(pos));
    }
  }
  if (compound.ops.size() + 1 != compound.queries.size()) {
    return Status::ParseError("toss-ql: dangling set operator");
  }
  return compound;
}

Result<tax::TreeCollection> ExecuteCompoundQuery(
    const QueryExecutor& executor, const CompoundQuery& compound,
    ExecStats* stats) {
  if (compound.queries.empty()) {
    return Status::InvalidArgument("empty compound query");
  }
  TOSS_ASSIGN_OR_RETURN(
      tax::TreeCollection acc,
      ExecuteQuery(executor, compound.queries[0], stats));
  for (size_t i = 0; i < compound.ops.size(); ++i) {
    TOSS_ASSIGN_OR_RETURN(
        tax::TreeCollection next,
        ExecuteQuery(executor, compound.queries[i + 1], stats));
    switch (compound.ops[i]) {
      case CompoundQuery::SetOp::kUnion:
        acc = tax::Union(acc, next);
        break;
      case CompoundQuery::SetOp::kIntersect:
        acc = tax::Intersect(acc, next);
        break;
      case CompoundQuery::SetOp::kExcept:
        acc = tax::Difference(acc, next);
        break;
    }
  }
  return acc;
}

Result<tax::TreeCollection> RunQuery(const QueryExecutor& executor,
                                     std::string_view text,
                                     ExecStats* stats) {
  TOSS_ASSIGN_OR_RETURN(CompoundQuery compound, ParseCompoundQuery(text));
  return ExecuteCompoundQuery(executor, compound, stats);
}

}  // namespace toss::core
