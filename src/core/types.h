// Types, domains, type hierarchies, and conversion functions
// (paper Section 5, "Types, Domain Values, and Hierarchies" and
// "Conversion Functions").
//
// A TypeSystem owns
//  * a type hierarchy (subtype partial order over type names),
//  * per-type domain predicates (membership in dom(tau)), and
//  * conversion functions tau1 -> tau2 with the paper's closure rules:
//    identity conversions always exist, and conversions compose (Convert
//    searches the conversion graph, so registering year->int and
//    int->string makes year->string available).
//
// Well-typedness of comparisons (Section 5.1.1) asks for the least common
// supertype of the operand types plus conversions into it; both queries are
// answered here.

#ifndef TOSS_CORE_TYPES_H_
#define TOSS_CORE_TYPES_H_

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "common/result.h"
#include "ontology/hierarchy.h"

namespace toss::core {

/// Converts a value of the source type into the target type's
/// representation; may fail on out-of-domain input.
using ConversionFn =
    std::function<Result<std::string>(const std::string&)>;

/// Membership test for dom(tau).
using DomainPredicate = std::function<bool(const std::string&)>;

class TypeSystem {
 public:
  TypeSystem();

  /// Registers a type; optionally as a subtype of `supertype` (created if
  /// new). Re-registering an existing type with a new supertype adds the
  /// edge.
  Status AddType(const std::string& name, const std::string& supertype = "");

  bool HasType(const std::string& name) const;

  /// All registered type names.
  std::vector<std::string> TypeNames() const;

  /// Reflexive-transitive subtype test.
  bool IsSubtype(const std::string& sub, const std::string& super) const;

  /// Least upper bound of two types in the subtype hierarchy; TypeError
  /// when none exists or the minimal upper bounds are ambiguous.
  Result<std::string> LeastCommonSupertype(const std::string& a,
                                           const std::string& b) const;

  /// Registers dom(tau) membership. Types without a predicate accept any
  /// string.
  Status SetDomain(const std::string& type, DomainPredicate predicate);

  /// X in dom(tau)?
  bool IsInstance(const std::string& value, const std::string& type) const;

  /// Registers an explicit conversion function.
  Status AddConversion(const std::string& from, const std::string& to,
                       ConversionFn fn);

  /// True when `from` converts to `to` directly, by identity, or by
  /// composition.
  bool HasConversion(const std::string& from, const std::string& to) const;

  /// Applies the (possibly composed) conversion.
  Result<std::string> Convert(const std::string& value,
                              const std::string& from,
                              const std::string& to) const;

  /// Checks the paper's constraint that tau1 <= tau2 implies a conversion
  /// tau1 -> tau2 exists; returns the first violation.
  Status ValidateClosure() const;

  const ontology::Hierarchy& hierarchy() const { return hierarchy_; }

  /// Prebuilds the subtype reachability cache for cross-thread sharing.
  void WarmCaches() const { hierarchy_.EnsureReachabilityCache(); }

 private:
  /// Shortest conversion path from -> to as a type-name chain, empty when
  /// unreachable.
  std::vector<std::string> ConversionPath(const std::string& from,
                                          const std::string& to) const;

  ontology::Hierarchy hierarchy_;  // subtype DAG over type names
  std::map<std::string, DomainPredicate> domains_;
  std::map<std::pair<std::string, std::string>, ConversionFn> conversions_;
};

/// The type system used by the bibliographic examples and benchmarks:
/// string, int <= string, year <= int, month <= int, pages <= string,
/// person <= string, venue <= string -- with numeric domains and the
/// obvious conversions.
TypeSystem MakeBibliographicTypeSystem();

}  // namespace toss::core

#endif  // TOSS_CORE_TYPES_H_
