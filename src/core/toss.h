// Umbrella header: the TOSS public API.
//
// Typical pipeline (see examples/quickstart.cpp):
//   1. Load XML into a store::Database collection.
//   2. Build per-instance ontologies with ontology::MakeOntology.
//   3. Fuse + enhance with core::SeoBuilder (measure, epsilon,
//      interoperation constraints).
//   4. Express queries as tax::PatternTree + condition
//      (tax::ParseCondition).
//   5. Execute with core::QueryExecutor (TOSS), or construct the executor
//      without an SEO for the plain TAX baseline.

#ifndef TOSS_CORE_TOSS_H_
#define TOSS_CORE_TOSS_H_

#include "core/query_executor.h"
#include "core/seo.h"
#include "core/seo_semantics.h"
#include "core/types.h"
#include "lexicon/lexicon.h"
#include "ontology/fusion.h"
#include "ontology/ontology.h"
#include "ontology/ontology_maker.h"
#include "ontology/sea.h"
#include "sim/measure_registry.h"
#include "sim/string_measure.h"
#include "store/database.h"
#include "tax/condition_parser.h"
#include "tax/operators.h"
#include "tax/tax_semantics.h"
#include "xml/xml_parser.h"
#include "xml/xml_writer.h"

#endif  // TOSS_CORE_TOSS_H_
