#include "core/prepared_cache.h"

#include <algorithm>

#include "obs/metrics.h"

namespace toss::core {

namespace {

struct CacheMetrics {
  obs::Counter& hits =
      obs::Metrics().GetCounter("service.prepared_cache.hits");
  obs::Counter& misses =
      obs::Metrics().GetCounter("service.prepared_cache.misses");
  obs::Counter& evictions =
      obs::Metrics().GetCounter("service.prepared_cache.evictions");
};

CacheMetrics& Instruments() {
  static CacheMetrics* m = new CacheMetrics();
  return *m;
}

}  // namespace

std::string CanonicalPatternKey(const tax::PatternTree& pattern,
                                const std::vector<int>& labels) {
  std::string key;
  key.reserve(64);
  for (size_t i = 0; i < pattern.node_count(); ++i) {
    const tax::PatternNode& n = pattern.node(i);
    key += std::to_string(n.label);
    key += n.edge_from_parent == tax::EdgeKind::kAd ? 'a' : 'p';
    key += std::to_string(n.parent);
    key += ';';
  }
  key += '|';
  key += pattern.condition().ToString();
  key += '|';
  std::vector<int> sorted = labels;
  std::sort(sorted.begin(), sorted.end());
  for (int l : sorted) {
    key += std::to_string(l);
    key += ',';
  }
  return key;
}

PreparedQueryCache::PreparedQueryCache(size_t capacity)
    : capacity_(std::max<size_t>(1, capacity)) {}

bool PreparedQueryCache::Lookup(const std::string& key, PreparedRewrite* out) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(key);
  if (it == entries_.end()) {
    ++misses_;
    Instruments().misses.Increment();
    return false;
  }
  lru_.splice(lru_.begin(), lru_, it->second.lru_it);
  *out = it->second.rewrite;
  ++hits_;
  Instruments().hits.Increment();
  return true;
}

void PreparedQueryCache::Insert(const std::string& key,
                                PreparedRewrite entry) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(key);
  if (it != entries_.end()) {
    it->second.rewrite = std::move(entry);
    lru_.splice(lru_.begin(), lru_, it->second.lru_it);
    return;
  }
  lru_.push_front(key);
  entries_[key] = Node{std::move(entry), lru_.begin()};
  if (entries_.size() > capacity_) {
    entries_.erase(lru_.back());
    lru_.pop_back();
    Instruments().evictions.Increment();
  }
}

void PreparedQueryCache::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  entries_.clear();
  lru_.clear();
}

PreparedQueryCache::Stats PreparedQueryCache::GetStats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return Stats{hits_, misses_, entries_.size(), capacity_};
}

}  // namespace toss::core
