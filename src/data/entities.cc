#include "data/entities.h"

#include <cassert>

namespace toss::data {

std::string PersonEntity::CanonicalName() const {
  // The canonical surface form omits the middle initial; mentions that
  // include it ("Jeffrey D. Ullman") are *variants* at edit distance 3 --
  // the distance ladder the epsilon=2 vs epsilon=3 experiments probe.
  return first + " " + last;
}

namespace {

template <typename T>
const T& ById(const std::vector<T>& pool, EntityId id) {
  for (const T& e : pool) {
    if (e.id == id) return e;
  }
  assert(false && "unknown entity id");
  return pool.front();
}

}  // namespace

const PersonEntity& BibWorld::PersonById(EntityId id) const {
  return ById(people, id);
}
const VenueEntity& BibWorld::VenueById(EntityId id) const {
  return ById(venues, id);
}
const PaperEntity& BibWorld::PaperById(EntityId id) const {
  return ById(papers, id);
}

}  // namespace toss::data
