#include "data/bib_generator.h"

#include <algorithm>
#include <map>
#include <set>

#include "common/string_util.h"

namespace toss::data {

namespace {

// Entity-id ranges keep people / venues / papers distinguishable in mixed
// provenance streams.
constexpr EntityId kPersonBase = 1000;
constexpr EntityId kVenueBase = 2000;
constexpr EntityId kPaperBase = 10000;

const char* kFirstNames[] = {
    "Jeffrey", "Michael", "Sarah",   "David",   "Rakesh",  "Elena",
    "Hector",  "Jennifer", "Alberto", "Ricardo", "Sophie",  "Thomas",
    "Patricia", "Andreas", "Laura",   "Stefano", "Monica",  "Carlos",
    "Hiroshi", "Yannis",  "Dimitri", "Susan",   "Gerhard", "Claudia",
    "Victor",  "Marta",   "Antonio", "Kevin",   "Ingrid",  "Pavel",
};

const char* kCompoundFirstNames[] = {
    "Gian Luigi", "Jose Maria", "Anna Lisa", "Jean Pierre", "Mary Ann",
};

const char* kLastNames[] = {
    "Ullman",    "Ferrari",  "Widom",    "Garcia",   "Agrawal", "Bernstein",
    "Stonebraker", "DeWitt", "Navathe",  "Abiteboul", "Vianu",  "Suciu",
    "Halevy",    "Ioannidis", "Ramakrishnan", "Gehrke", "Chaudhuri",
    "Weikum",    "Kossmann", "Naughton", "Carey",    "Franklin", "Hellerstein",
    "Lenzerini", "Mendelzon", "Milo",    "Tannen",   "Buneman",
};

const char* kTitleAdjectives[] = {
    "Efficient", "Scalable", "Adaptive", "Incremental", "Approximate",
    "Distributed", "Secure",  "Optimal",  "Flexible",    "Robust",
};

const char* kTitleNouns[] = {
    "Query Processing", "View Maintenance",  "Index Selection",
    "Join Algorithms",  "Schema Integration", "Data Mining",
    "Access Control",   "Query Optimization", "Caching Strategies",
    "Storage Management",
};

const char* kTitleTopics[] = {
    "XML Databases",       "Relational Systems",  "Semistructured Data",
    "Data Warehouses",     "Web Repositories",    "Heterogeneous Sources",
    "Streaming Data",      "Object Databases",    "Digital Libraries",
    "Scientific Archives",
};

struct VenueSeed {
  const char* short_name;
  const char* full_name;
  const char* category;
};

const VenueSeed kVenueSeeds[] = {
    {"SIGMOD Conference",
     "ACM SIGMOD International Conference on Management of Data",
     "database conference"},
    {"VLDB", "International Conference on Very Large Data Bases",
     "database conference"},
    {"ICDE", "IEEE International Conference on Data Engineering",
     "database conference"},
    {"PODS", "ACM Symposium on Principles of Database Systems",
     "database conference"},
    {"SIGIR",
     "International ACM SIGIR Conference on Research and Development in "
     "Information Retrieval",
     "information retrieval conference"},
    {"KDD",
     "ACM SIGKDD International Conference on Knowledge Discovery and Data "
     "Mining",
     "data mining conference"},
};

/// Substitutes `count` distinct positions of `s` with a shifted letter.
std::string MutateLetters(const std::string& s, int count, Random* rng) {
  std::string out = s;
  std::set<size_t> used;
  int done = 0;
  while (done < count && used.size() < out.size()) {
    size_t pos = rng->Uniform(out.size());
    if (!used.insert(pos).second) continue;
    char c = out[pos];
    if (std::isalpha(static_cast<unsigned char>(c))) {
      char base = std::islower(static_cast<unsigned char>(c)) ? 'a' : 'A';
      out[pos] = static_cast<char>(base + (c - base + 1 + rng->Uniform(24)) %
                                              26);
      ++done;
    } else {
      used.erase(pos);
    }
  }
  return out;
}

}  // namespace

BibWorld GenerateWorld(const BibConfig& config) {
  Random rng(config.seed);
  BibWorld world;

  // --- People ---------------------------------------------------------------
  size_t confusables = static_cast<size_t>(
      static_cast<double>(config.num_people) * config.confusable_fraction);
  // Confusables come in pairs.
  confusables -= confusables % 2;
  size_t regular = config.num_people - confusables;

  EntityId next_person = kPersonBase;
  std::set<std::string> used_names;
  auto add_person = [&](std::string first, std::string middle,
                        std::string last) -> const PersonEntity& {
    PersonEntity p;
    p.id = next_person++;
    p.first = std::move(first);
    p.middle = std::move(middle);
    p.last = std::move(last);
    world.people.push_back(std::move(p));
    return world.people.back();
  };
  auto fresh_name = [&](std::string* first, std::string* last) {
    do {
      *first = rng.Bernoulli(0.12)
                   ? rng.Choice(std::vector<std::string>(
                         std::begin(kCompoundFirstNames),
                         std::end(kCompoundFirstNames)))
                   : rng.Choice(std::vector<std::string>(
                         std::begin(kFirstNames), std::end(kFirstNames)));
      *last = rng.Choice(std::vector<std::string>(std::begin(kLastNames),
                                                  std::end(kLastNames)));
    } while (!used_names.insert(*first + " " + *last).second);
  };

  for (size_t i = 0; i < regular; ++i) {
    std::string first, last;
    fresh_name(&first, &last);
    std::string middle =
        rng.Bernoulli(0.9) ? std::string(1, 'A' + char(rng.Uniform(26))) : "";
    add_person(first, middle, last);
  }
  std::vector<EntityId> confusable_people;
  for (size_t i = 0; i < confusables / 2; ++i) {
    // A pair sharing a last name whose first names are 2-3 edits apart.
    std::string first, last;
    fresh_name(&first, &last);
    confusable_people.push_back(add_person(first, "", last).id);
    int edits = rng.Bernoulli(0.25) ? 2 : 3;
    std::string sibling_first = MutateLetters(first, edits, &rng);
    used_names.insert(sibling_first + " " + last);
    confusable_people.push_back(add_person(sibling_first, "", last).id);
  }

  // --- Venues ---------------------------------------------------------------
  size_t venue_count =
      std::min(config.num_venues, std::size(kVenueSeeds));
  for (size_t i = 0; i < venue_count; ++i) {
    VenueEntity v;
    v.id = kVenueBase + i;
    v.short_name = kVenueSeeds[i].short_name;
    v.full_name = kVenueSeeds[i].full_name;
    v.category = kVenueSeeds[i].category;
    world.venues.push_back(std::move(v));
  }

  // Confusable pairs share a "home venue": people who get mixed up in
  // practice publish in the same community, which is what makes an
  // over-generous epsilon cost precision (Fig. 15's tradeoff).
  std::map<EntityId, EntityId> home_venue;
  for (size_t i = 0; i + 1 < confusable_people.size(); i += 2) {
    EntityId venue = world.venues[rng.Uniform(world.venues.size())].id;
    home_venue[confusable_people[i]] = venue;
    home_venue[confusable_people[i + 1]] = venue;
  }

  // --- Papers ---------------------------------------------------------------
  for (size_t i = 0; i < config.num_papers; ++i) {
    PaperEntity p;
    p.id = kPaperBase + i;
    p.title = std::string(kTitleAdjectives[rng.Uniform(
                  std::size(kTitleAdjectives))]) +
              " " + kTitleNouns[rng.Uniform(std::size(kTitleNouns))] +
              " for " + kTitleTopics[rng.Uniform(std::size(kTitleTopics))];
    size_t n_authors = rng.Bernoulli(config.multi_author_prob)
                           ? 2 + rng.Uniform(2)
                           : 1;
    std::set<EntityId> chosen;
    while (chosen.size() < n_authors) {
      chosen.insert(world.people[rng.Uniform(world.people.size())].id);
    }
    p.authors.assign(chosen.begin(), chosen.end());
    p.venue = world.venues[rng.Uniform(world.venues.size())].id;
    for (EntityId author : p.authors) {
      auto it = home_venue.find(author);
      if (it != home_venue.end() && rng.Bernoulli(0.6)) {
        p.venue = it->second;
        break;
      }
    }
    p.year = static_cast<int>(
        rng.UniformRange(config.year_min, config.year_max));
    int start = static_cast<int>(rng.UniformRange(1, 600));
    p.pages = std::to_string(start) + "-" +
              std::to_string(start + static_cast<int>(rng.UniformRange(8, 24)));
    world.papers.push_back(std::move(p));
  }
  return world;
}

namespace {

/// Emits one surface form of the person's name (see header).
std::string MentionName(const PersonEntity& p, Random* rng,
                        const BibConfig& cfg) {
  // Each surface form owns a fixed probability slot; when a form does not
  // apply to this person (no middle initial / no compound first name) its
  // slot degrades to the canonical form rather than sliding into the next
  // slot, so the initials rate stays at cfg.initials_prob for everyone.
  double roll = rng->NextDouble();
  double acc = cfg.typo_prob;
  if (roll < acc) {
    // One-letter typo in the last name: edit distance 1 from canonical.
    return p.first + " " + MutateLetters(p.last, 1, rng);
  }
  acc += cfg.middle_initial_prob;
  if (roll < acc) {
    if (p.middle.empty()) return p.CanonicalName();
    // "Jeffrey D. Ullman": distance 3 from canonical "Jeffrey Ullman".
    return p.first + " " + p.middle + ". " + p.last;
  }
  acc += cfg.spacing_prob;
  if (roll < acc) {
    if (!Contains(p.first, " ")) return p.CanonicalName();
    // "GianLuigi Ferrari": distance 1 from "Gian Luigi Ferrari".
    std::string merged;
    for (char c : p.first) {
      if (c != ' ') merged += c;
    }
    return merged + " " + p.last;
  }
  acc += cfg.initials_prob;
  if (roll < acc) {
    // "J. Ullman": far from the canonical form under edit distance.
    std::string out;
    out += p.first[0];
    out += ". ";
    if (!p.middle.empty()) {
      out += p.middle + ". ";
    }
    out += p.last;
    return out;
  }
  return p.CanonicalName();
}

std::string VenueMention(const VenueEntity& v, Random* rng,
                         const BibConfig& cfg) {
  return rng->Bernoulli(cfg.full_venue_prob) ? v.full_name : v.short_name;
}

/// Small title perturbation (punctuation / case), edit distance <= 2; used
/// for the SIGMOD copies so title-similarity joins have work to do.
std::string PerturbTitle(const std::string& title, Random* rng) {
  double roll = rng->NextDouble();
  if (roll < 0.3) return title;
  if (roll < 0.6) return title + ".";
  std::string out = title;
  // Lowercase one connective-ish word start.
  size_t pos = out.find(" for ");
  if (pos != std::string::npos && roll < 0.8) {
    out.replace(pos, 5, " For ");
    return out;
  }
  return MutateLetters(out, 1, rng);
}

}  // namespace

std::vector<NamedDoc> EmitDblp(const BibWorld& world, size_t first,
                               size_t count, const BibConfig& config) {
  Random rng(config.seed ^ 0x9e3779b97f4a7c15ULL);
  std::vector<NamedDoc> out;
  size_t end = std::min(first + count, world.papers.size());
  for (size_t i = first; i < end; ++i) {
    const PaperEntity& paper = world.papers[i];
    const VenueEntity& venue = world.VenueById(paper.venue);
    xml::XmlDocument doc;
    xml::NodeId root = doc.CreateRoot("inproceedings");
    doc.SetAttribute(root, "gtid", std::to_string(paper.id));
    for (EntityId pid : paper.authors) {
      const PersonEntity& person = world.PersonById(pid);
      xml::NodeId a =
          doc.AppendTextElement(root, "author", MentionName(person, &rng,
                                                            config));
      doc.SetAttribute(a, "gtid", std::to_string(person.id));
    }
    doc.AppendTextElement(root, "title", paper.title);
    xml::NodeId bt = doc.AppendTextElement(
        root, "booktitle", VenueMention(venue, &rng, config));
    doc.SetAttribute(bt, "gtid", std::to_string(venue.id));
    doc.AppendTextElement(root, "year", std::to_string(paper.year));
    doc.AppendTextElement(root, "pages", paper.pages);
    out.push_back({"dblp-" + std::to_string(paper.id), std::move(doc)});
  }
  return out;
}

std::vector<NamedDoc> EmitSigmod(const BibWorld& world, size_t first,
                                 size_t count, const BibConfig& config,
                                 size_t page_size) {
  Random rng(config.seed ^ 0x2545f4914f6cdd1dULL);
  // Group papers by (venue, year) the way proceedings pages are organized.
  std::map<std::pair<EntityId, int>, std::vector<const PaperEntity*>> groups;
  size_t end = std::min(first + count, world.papers.size());
  for (size_t i = first; i < end; ++i) {
    const PaperEntity& p = world.papers[i];
    groups[{p.venue, p.year}].push_back(&p);
  }
  std::vector<NamedDoc> out;
  size_t page_no = 0;
  for (const auto& [key, papers] : groups) {
    const VenueEntity& venue = world.VenueById(key.first);
    for (size_t chunk = 0; chunk < papers.size(); chunk += page_size) {
      xml::XmlDocument doc;
      xml::NodeId root = doc.CreateRoot("proceedingsPage");
      xml::NodeId conf =
          doc.AppendTextElement(root, "conference", venue.full_name);
      doc.SetAttribute(conf, "gtid", std::to_string(venue.id));
      doc.AppendTextElement(root, "confYear", std::to_string(key.second));
      xml::NodeId articles = doc.AppendElement(root, "articles");
      for (size_t j = chunk; j < std::min(chunk + page_size, papers.size());
           ++j) {
        const PaperEntity& paper = *papers[j];
        xml::NodeId article = doc.AppendElement(articles, "article");
        doc.SetAttribute(article, "gtid", std::to_string(paper.id));
        doc.AppendTextElement(article, "title",
                              PerturbTitle(paper.title, &rng));
        xml::NodeId authors = doc.AppendElement(article, "authors");
        for (EntityId pid : paper.authors) {
          const PersonEntity& person = world.PersonById(pid);
          xml::NodeId a = doc.AppendTextElement(
              authors, "author", MentionName(person, &rng, config));
          doc.SetAttribute(a, "gtid", std::to_string(person.id));
        }
        // initPage/endPage from the stored "330-341" range.
        auto dash = paper.pages.find('-');
        if (dash != std::string::npos) {
          doc.AppendTextElement(article, "initPage",
                                paper.pages.substr(0, dash));
          doc.AppendTextElement(article, "endPage",
                                paper.pages.substr(dash + 1));
        }
      }
      out.push_back(
          {"sigmod-page-" + std::to_string(page_no++), std::move(doc)});
    }
  }
  return out;
}

Status LoadIntoCollection(store::Database* db, const std::string& collection,
                          std::vector<NamedDoc> docs) {
  TOSS_ASSIGN_OR_RETURN(store::Collection * coll,
                        db->CreateCollection(collection));
  for (auto& [key, doc] : docs) {
    TOSS_ASSIGN_OR_RETURN(store::DocId id,
                          coll->Insert(std::move(key), std::move(doc)));
    (void)id;
  }
  return Status::OK();
}

std::vector<std::string> DblpContentTags() {
  return {"author", "booktitle"};
}

std::vector<std::string> SigmodContentTags() {
  return {"author", "conference"};
}

void InflateOntology(ontology::Ontology* onto, size_t extra_terms,
                     uint64_t seed) {
  Random rng(seed);
  ontology::Hierarchy& isa = onto->isa();
  std::vector<ontology::HNodeId> pads;
  for (size_t i = 0; i < extra_terms; ++i) {
    // Random 12-letter terms: far from real data under any edit measure,
    // so padding never changes query results.
    std::string term = "pad-" + rng.AlphaString(12);
    pads.push_back(isa.AddNode({term}));
    if (i > 0) {
      // Chain into a balanced-ish forest.
      (void)isa.AddEdge(pads[i], pads[rng.Uniform(i)]);
    }
  }
}

}  // namespace toss::data
