// Entity model behind the synthetic bibliographic data (the repository's
// substitute for the DBLP [6] and SIGMOD [13] XML dumps; see DESIGN.md).
//
// Every generated person, venue, and paper has a canonical identity; the
// XML emitters attach these ids as `gtid` attributes, which DataTree
// preserves as node provenance. Query results can therefore be audited
// against exact ground truth instead of the paper's manual checking.

#ifndef TOSS_DATA_ENTITIES_H_
#define TOSS_DATA_ENTITIES_H_

#include <cstdint>
#include <string>
#include <vector>

namespace toss::data {

using EntityId = uint64_t;

struct PersonEntity {
  EntityId id = 0;
  std::string first;
  std::string middle;  ///< single initial letter, or empty
  std::string last;

  /// "First Last" (the middle initial appears only in mention variants).
  std::string CanonicalName() const;
};

struct VenueEntity {
  EntityId id = 0;
  std::string short_name;  ///< e.g. "SIGMOD Conference" (DBLP style)
  std::string full_name;   ///< e.g. "ACM SIGMOD International Conference..."
  std::string category;    ///< e.g. "database conference" (lexicon term)
};

struct PaperEntity {
  EntityId id = 0;
  std::string title;
  std::vector<EntityId> authors;  ///< indexes into BibWorld::people by id
  EntityId venue = 0;
  int year = 0;
  std::string pages;
};

/// The generated universe: entity pools shared by all emitted datasets.
struct BibWorld {
  std::vector<PersonEntity> people;
  std::vector<VenueEntity> venues;
  std::vector<PaperEntity> papers;

  const PersonEntity& PersonById(EntityId id) const;
  const VenueEntity& VenueById(EntityId id) const;
  const PaperEntity& PaperById(EntityId id) const;
};

}  // namespace toss::data

#endif  // TOSS_DATA_ENTITIES_H_
