#include "data/workload.h"

#include <algorithm>

#include "common/random.h"
#include "tax/condition_parser.h"

namespace toss::data {

namespace {

/// The paper's selection-query shape: inproceedings with an author child
/// and a booktitle child. 3 tag conditions + 1 similarTo + 1 isa.
Result<tax::PatternTree> BuildSelectionPattern(
    const std::string& person_literal, const std::string& venue_literal) {
  tax::PatternTree pt;
  int root = pt.AddRoot();
  pt.AddChild(root, tax::EdgeKind::kPc);  // $2 author
  pt.AddChild(root, tax::EdgeKind::kPc);  // $3 booktitle
  auto escape = [](const std::string& s) {
    std::string out;
    for (char c : s) {
      if (c == '"' || c == '\\') out += '\\';
      out += c;
    }
    return out;
  };
  TOSS_ASSIGN_OR_RETURN(
      tax::Condition cond,
      tax::ParseCondition(
          "$1.tag = \"inproceedings\" & $2.tag = \"author\" & "
          "$3.tag = \"booktitle\" & $2.content ~ \"" +
          escape(person_literal) + "\" & $3.content isa \"" +
          escape(venue_literal) + "\""));
  pt.SetCondition(std::move(cond));
  return pt;
}

}  // namespace

Result<std::vector<SelectionQuery>> MakeSelectionWorkload(
    const BibWorld& world, size_t paper_first, size_t paper_count,
    size_t num_queries, uint64_t seed) {
  size_t end = std::min(paper_first + paper_count, world.papers.size());
  if (paper_first >= end) {
    return Status::InvalidArgument("workload: empty paper range");
  }
  Random rng(seed);
  std::vector<SelectionQuery> out;
  size_t attempts = 0;
  // Prefer intents with >= 3 correct answers (the paper's result sets
  // contain 1-38 papers; tiny sets make per-query recall all-or-nothing);
  // fall back to any non-empty intent when the range is too sparse.
  const size_t strict_attempts = num_queries * 120;
  while (out.size() < num_queries && attempts < num_queries * 200) {
    ++attempts;
    // Anchor on a real paper so the query has at least one correct answer.
    const PaperEntity& anchor =
        world.papers[paper_first + rng.Uniform(end - paper_first)];
    EntityId person = anchor.authors[rng.Uniform(anchor.authors.size())];
    const VenueEntity& venue = world.VenueById(anchor.venue);
    bool category_query = (out.size() % 3 == 2);

    SelectionQuery q;
    q.person = person;
    q.person_literal = world.PersonById(person).CanonicalName();
    q.venue_literal = category_query ? venue.category : venue.short_name;
    q.category_query = category_query;
    q.name = "q" + std::to_string(out.size() + 1) + "[" + q.person_literal +
             " @ " + q.venue_literal + "]";
    q.sl = {1};
    TOSS_ASSIGN_OR_RETURN(
        q.pattern, BuildSelectionPattern(q.person_literal, q.venue_literal));

    for (size_t i = paper_first; i < end; ++i) {
      const PaperEntity& p = world.papers[i];
      if (std::find(p.authors.begin(), p.authors.end(), person) ==
          p.authors.end()) {
        continue;
      }
      const VenueEntity& pv = world.VenueById(p.venue);
      bool venue_ok = category_query ? (pv.category == venue.category)
                                     : (p.venue == venue.id);
      if (venue_ok) q.correct.insert(p.id);
    }
    if (q.correct.empty()) continue;
    if (attempts < strict_attempts && q.correct.size() < 3) continue;
    // Avoid duplicate (person, venue) intents.
    bool dup = false;
    for (const auto& existing : out) {
      if (existing.person == q.person &&
          existing.venue_literal == q.venue_literal) {
        dup = true;
        break;
      }
    }
    if (!dup) out.push_back(std::move(q));
  }
  if (out.size() < num_queries) {
    return Status::Internal("workload: could not build enough queries");
  }
  return out;
}

tax::PatternTree MakeScalabilitySelectionPattern(
    const std::string& venue_literal, const std::string& category_literal) {
  tax::PatternTree pt;
  int root = pt.AddRoot();          // $1 inproceedings
  pt.AddChild(root, tax::EdgeKind::kPc);  // $2 booktitle
  pt.AddChild(root, tax::EdgeKind::kPc);  // $3 year
  pt.AddChild(root, tax::EdgeKind::kPc);  // $4 author
  auto cond = tax::ParseCondition(
      "$1.tag = \"inproceedings\" & $2.tag = \"booktitle\" & "
      "$3.tag = \"year\" & $4.tag = \"author\" & "
      "$2.content isa \"" + venue_literal + "\" & "
      "$2.content isa \"" + category_literal + "\"");
  pt.SetCondition(std::move(cond).value());
  return pt;
}

tax::PatternTree MakeTitleJoinPattern() {
  tax::PatternTree pt;
  int root = pt.AddRoot();                          // $1 tax_prod_root
  int left = pt.AddChild(root, tax::EdgeKind::kPc);    // $2 inproceedings
  pt.AddChild(left, tax::EdgeKind::kPc);               // $3 title (dblp)
  int article = pt.AddChild(root, tax::EdgeKind::kAd); // $4 article (sigmod)
  pt.AddChild(article, tax::EdgeKind::kPc);            // $5 title (sigmod)
  // Exactly the paper's join-query shape: 5 tag conditions + 1 similarTo.
  auto cond = tax::ParseCondition(
      "$1.tag = \"tax_prod_root\" & $2.tag = \"inproceedings\" & "
      "$3.tag = \"title\" & $4.tag = \"article\" & $5.tag = \"title\" & "
      "$3.content ~ $5.content");
  pt.SetCondition(std::move(cond).value());
  return pt;
}

}  // namespace toss::data
