// Bulk ingestion of DBLP-style XML dumps: one large file whose root wraps
// many record elements, split into one store document per record -- how a
// real DBLP snapshot (a single ~100 MB <dblp> file) gets into the store.
//
// Also provides the reverse: dumping a generated dataset as a single
// DBLP-style file, so the generator <-> loader path round-trips and the
// loader can be exercised at realistic shapes.

#ifndef TOSS_DATA_BULK_LOADER_H_
#define TOSS_DATA_BULK_LOADER_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "data/bib_generator.h"
#include "store/database.h"
#include "store/env.h"

namespace toss::data {

struct BulkLoadStats {
  size_t records = 0;         ///< documents inserted
  size_t skipped = 0;         ///< non-element root children skipped
  std::string root_tag;       ///< tag of the wrapping element
};

/// Splits the children of `text`'s root element into separate documents of
/// a NEW collection `collection`. Document keys are `<prefix>-<ordinal>`,
/// or the child's `key`/`gtid` attribute when present (DBLP records carry
/// `key="conf/sigmod/..."`).
Result<BulkLoadStats> BulkLoadXml(store::Database* db,
                                  const std::string& collection,
                                  std::string_view text,
                                  const std::string& key_prefix = "rec");

/// File variant of BulkLoadXml. I/O goes through `env` (nullptr selects
/// store::Env::Default()), so ingestion is fault-injectable like the rest
/// of the persistence layer.
Result<BulkLoadStats> BulkLoadFile(store::Database* db,
                                   const std::string& collection,
                                   const std::string& path,
                                   const std::string& key_prefix = "rec",
                                   store::Env* env = nullptr);

/// Serializes `docs` as one DBLP-style dump wrapped in `<root_tag>`.
std::string FormatAsDump(const std::vector<NamedDoc>& docs,
                         const std::string& root_tag = "dblp");

/// Writes FormatAsDump output to `path` through `env` (nullptr selects
/// store::Env::Default()); the bytes are synced before returning.
Status WriteDumpFile(const std::vector<NamedDoc>& docs,
                     const std::string& path,
                     const std::string& root_tag = "dblp",
                     store::Env* env = nullptr);

}  // namespace toss::data

#endif  // TOSS_DATA_BULK_LOADER_H_
