// Synthetic DBLP / SIGMOD proceedings generator.
//
// Structure matches the paper's Figures 1 and 2:
//
//   DBLP document (one per paper):
//     <inproceedings gtid="...">
//       <author gtid="...">J. D. Ullman</author>+
//       <title>...</title>
//       <booktitle gtid="...">SIGMOD Conference</booktitle>
//       <year>1999</year>  <pages>330-341</pages>
//     </inproceedings>
//
//   SIGMOD proceedings page (several articles per document):
//     <proceedingsPage>
//       <conference gtid="...">ACM SIGMOD International ...</conference>
//       <confYear>1999</confYear>
//       <articles>
//         <article gtid="...">
//           <title>...</title>
//           <authors><author gtid="...">J. Ullman</author>+</authors>
//           <initPage>330</initPage><endPage>341</endPage>
//         </article>+
//       </articles>
//     </proceedingsPage>
//
// Name-variant model (drives the paper's recall experiments): each author
// mention is emitted in one of several surface forms of the canonical name
// -- canonical, one-letter typo, middle-initial form, spacing-merged given
// names, or initials-only -- with configured probabilities. The pool also
// contains *confusable* person pairs (edit distance 2-3 apart) so that a
// too-generous epsilon merges distinct people and costs precision, exactly
// the precision/recall tradeoff of Fig. 15. Venue mentions flip between
// short and full names.

#ifndef TOSS_DATA_BIB_GENERATOR_H_
#define TOSS_DATA_BIB_GENERATOR_H_

#include <string>
#include <utility>
#include <vector>

#include "common/random.h"
#include "common/result.h"
#include "data/entities.h"
#include "ontology/ontology.h"
#include "store/database.h"
#include "xml/xml_document.h"

namespace toss::data {

struct BibConfig {
  uint64_t seed = 42;
  size_t num_people = 60;
  size_t num_venues = 6;
  size_t num_papers = 100;
  int year_min = 1995;
  int year_max = 2003;
  double multi_author_prob = 0.6;  ///< paper has 2-3 authors
  /// Author-mention surface form probabilities (remainder = canonical).
  double typo_prob = 0.15;            ///< one-letter edit, distance 1
  double middle_initial_prob = 0.35;  ///< "Jeffrey D. Ullman" form, d=3
  double spacing_prob = 0.10;         ///< "GianLuigi" merged form, d=1
  double initials_prob = 0.15;        ///< "J. Ullman" form, usually d>3
  /// Probability a DBLP booktitle uses the venue's full name instead of the
  /// short one (SIGMOD pages always use the full name).
  double full_venue_prob = 0.35;
  /// Fraction of the person pool generated as confusable pairs.
  double confusable_fraction = 0.2;
};

/// Generates the entity pools.
BibWorld GenerateWorld(const BibConfig& config);

/// One emitted document: (document key, XML).
using NamedDoc = std::pair<std::string, xml::XmlDocument>;

/// Emits DBLP-style documents for papers [first, first+count) of the world.
std::vector<NamedDoc> EmitDblp(const BibWorld& world, size_t first,
                               size_t count, const BibConfig& config);

/// Emits SIGMOD-style proceedings pages covering the same paper range,
/// grouped by (venue, year), `page_size` articles per page.
std::vector<NamedDoc> EmitSigmod(const BibWorld& world, size_t first,
                                 size_t count, const BibConfig& config,
                                 size_t page_size = 8);

/// Inserts documents into a (new) collection of `db`.
Status LoadIntoCollection(store::Database* db, const std::string& collection,
                          std::vector<NamedDoc> docs);

/// Ontology-maker options appropriate for each dataset (which tags' content
/// strings become ontology terms).
std::vector<std::string> DblpContentTags();
std::vector<std::string> SigmodContentTags();

/// Pads `onto`'s hierarchies with `extra_terms` synthetic chained terms;
/// used to sweep the "ontology size" axis of Fig. 16(a) without changing
/// query answers (padding terms never occur in data or queries).
void InflateOntology(ontology::Ontology* onto, size_t extra_terms,
                     uint64_t seed);

}  // namespace toss::data

#endif  // TOSS_DATA_BIB_GENERATOR_H_
