#include "data/bulk_loader.h"

#include "xml/xml_parser.h"
#include "xml/xml_writer.h"

namespace toss::data {

Result<BulkLoadStats> BulkLoadXml(store::Database* db,
                                  const std::string& collection,
                                  std::string_view text,
                                  const std::string& key_prefix) {
  TOSS_ASSIGN_OR_RETURN(xml::XmlDocument dump, xml::Parse(text));
  TOSS_ASSIGN_OR_RETURN(store::Collection * coll,
                        db->CreateCollection(collection));
  BulkLoadStats stats;
  stats.root_tag = dump.node(dump.root()).tag;
  size_t ordinal = 0;
  for (xml::NodeId child : dump.node(dump.root()).children) {
    if (dump.node(child).kind != xml::NodeKind::kElement) {
      ++stats.skipped;
      continue;
    }
    xml::XmlDocument doc;
    doc.CopySubtree(dump, child, xml::kInvalidNode);
    // Prefer the record's own key attribute (DBLP) or gtid (generator).
    std::string key{dump.Attribute(child, "key")};
    if (key.empty()) {
      std::string_view gtid = dump.Attribute(child, "gtid");
      if (!gtid.empty()) {
        key = key_prefix + "-" + std::string(gtid);
      }
    }
    if (key.empty()) {
      key = key_prefix + "-" + std::to_string(ordinal);
    }
    // Key collisions in dirty dumps get a disambiguating ordinal.
    auto inserted = coll->Insert(key, std::move(doc));
    if (!inserted.ok() && inserted.status().IsAlreadyExists()) {
      xml::XmlDocument retry;
      retry.CopySubtree(dump, child, xml::kInvalidNode);
      inserted = coll->Insert(key + "#" + std::to_string(ordinal),
                              std::move(retry));
    }
    TOSS_RETURN_NOT_OK(inserted.status());
    ++stats.records;
    ++ordinal;
  }
  return stats;
}

Result<BulkLoadStats> BulkLoadFile(store::Database* db,
                                   const std::string& collection,
                                   const std::string& path,
                                   const std::string& key_prefix,
                                   store::Env* env) {
  if (env == nullptr) env = store::Env::Default();
  TOSS_ASSIGN_OR_RETURN(std::string text, env->ReadFile(path));
  return BulkLoadXml(db, collection, text, key_prefix);
}

std::string FormatAsDump(const std::vector<NamedDoc>& docs,
                         const std::string& root_tag) {
  std::string out = "<?xml version=\"1.0\"?>\n<" + root_tag + ">\n";
  for (const auto& [key, doc] : docs) {
    out += xml::Write(doc);
    out += "\n";
  }
  out += "</" + root_tag + ">\n";
  return out;
}

Status WriteDumpFile(const std::vector<NamedDoc>& docs,
                     const std::string& path, const std::string& root_tag,
                     store::Env* env) {
  if (env == nullptr) env = store::Env::Default();
  TOSS_RETURN_NOT_OK(env->WriteFile(path, FormatAsDump(docs, root_tag)));
  return env->SyncFile(path);
}

}  // namespace toss::data
