// Query workload for the Fig. 15 experiments: selection queries in the
// paper's mix -- each with 1 isa condition, 1 similarTo condition, and 3
// tag-matching conditions -- plus exact entity-level ground truth.
//
// Query intent: "papers at <venue> by <person>". The similarTo condition
// targets one person's canonical name (whose mentions appear in many
// surface forms); the isa condition targets the venue's short name (whose
// mentions alternate between short and full forms) or, for a slice of the
// workload, a whole venue *category* ("database conference").

#ifndef TOSS_DATA_WORKLOAD_H_
#define TOSS_DATA_WORKLOAD_H_

#include <set>
#include <string>
#include <vector>

#include "common/result.h"
#include "data/entities.h"
#include "tax/pattern_tree.h"

namespace toss::data {

struct SelectionQuery {
  std::string name;
  tax::PatternTree pattern;  ///< $1 inproceedings, $2 author, $3 booktitle
  std::vector<int> sl;       ///< selection list (the paper node, {1})
  EntityId person = 0;       ///< intended author
  std::string person_literal;   ///< the ~ literal used
  std::string venue_literal;    ///< the isa literal used
  bool category_query = false;  ///< isa targets a category, not a venue
  std::set<EntityId> correct;   ///< ground-truth paper ids
};

/// Builds `num_queries` selection queries over papers
/// [paper_first, paper_first + paper_count) of `world`. Every third query
/// is a category query. Each query is guaranteed at least one correct
/// answer. InvalidArgument when the range has no papers.
Result<std::vector<SelectionQuery>> MakeSelectionWorkload(
    const BibWorld& world, size_t paper_first, size_t paper_count,
    size_t num_queries, uint64_t seed);

/// The conjunctive selection pattern of Fig. 16(a)'s scalability queries
/// (2 isa + 4 tag conditions), parameterized by venue/category literals.
tax::PatternTree MakeScalabilitySelectionPattern(
    const std::string& venue_literal, const std::string& category_literal);

/// The join pattern of Fig. 16(b) (5 tag + 1 similarTo): DBLP inproceedings
/// joined with SIGMOD articles on similar titles (paper Example 13).
tax::PatternTree MakeTitleJoinPattern();

}  // namespace toss::data

#endif  // TOSS_DATA_WORKLOAD_H_
