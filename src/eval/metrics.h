// Answer-quality metrics (paper Section 1 footnotes and Section 6):
//   precision = |returned AND correct| / |returned|
//   recall    = |returned AND correct| / |correct|
//   quality   = sqrt(precision * recall)              [14]
//
// Results are audited mechanically: generated entities carry `gtid`
// provenance that survives into witness trees (see data/entities.h), so
// "returned" is the provenance set of the answer trees.

#ifndef TOSS_EVAL_METRICS_H_
#define TOSS_EVAL_METRICS_H_

#include <cstdint>
#include <set>
#include <string>

#include "tax/data_tree.h"

namespace toss::eval {

struct PrMetrics {
  double precision = 1.0;  ///< 1.0 when nothing was returned (paper conv.)
  double recall = 0.0;
  double quality = 0.0;    ///< sqrt(precision * recall)
  size_t returned = 0;
  size_t correct = 0;
  size_t hits = 0;
};

/// Computes the metrics of `returned` against ground truth `correct`.
PrMetrics ComputePr(const std::set<uint64_t>& returned,
                    const std::set<uint64_t>& correct);

/// Collects the provenance ids of all nodes tagged `tag` across the
/// collection (0/untracked skipped).
std::set<uint64_t> ExtractProvenance(const tax::TreeCollection& trees,
                                     const std::string& tag);

/// Provenance of every tree's root node.
std::set<uint64_t> ExtractRootProvenance(const tax::TreeCollection& trees);

}  // namespace toss::eval

#endif  // TOSS_EVAL_METRICS_H_
