#include "eval/metrics.h"

#include <algorithm>
#include <cmath>

namespace toss::eval {

PrMetrics ComputePr(const std::set<uint64_t>& returned,
                    const std::set<uint64_t>& correct) {
  PrMetrics m;
  m.returned = returned.size();
  m.correct = correct.size();
  for (uint64_t id : returned) m.hits += correct.count(id);
  m.precision = returned.empty()
                    ? 1.0
                    : static_cast<double>(m.hits) /
                          static_cast<double>(returned.size());
  m.recall = correct.empty() ? 1.0
                             : static_cast<double>(m.hits) /
                                   static_cast<double>(correct.size());
  m.quality = std::sqrt(m.precision * m.recall);
  return m;
}

std::set<uint64_t> ExtractProvenance(const tax::TreeCollection& trees,
                                     const std::string& tag) {
  std::set<uint64_t> out;
  for (const auto& tree : trees) {
    for (tax::NodeId v = 0; v < tree.size(); ++v) {
      const auto& n = tree.node(v);
      if (n.tag == tag && n.provenance != 0) out.insert(n.provenance);
    }
  }
  return out;
}

std::set<uint64_t> ExtractRootProvenance(const tax::TreeCollection& trees) {
  std::set<uint64_t> out;
  for (const auto& tree : trees) {
    if (!tree.empty() && tree.node(tree.root()).provenance != 0) {
      out.insert(tree.node(tree.root()).provenance);
    }
  }
  return out;
}

}  // namespace toss::eval
