#include <gtest/gtest.h>

#include "xml/xml_document.h"
#include "xml/xml_parser.h"
#include "xml/xml_writer.h"

namespace toss::xml {
namespace {

TEST(XmlDocumentTest, BuildAndInspect) {
  XmlDocument doc;
  NodeId root = doc.CreateRoot("inproceedings");
  NodeId author = doc.AppendTextElement(root, "author", "J. Ullman");
  doc.AppendTextElement(root, "title", "A Paper");
  doc.SetAttribute(author, "gtid", "1001");

  EXPECT_EQ(doc.node(root).tag, "inproceedings");
  EXPECT_EQ(doc.TextContent(author), "J. Ullman");
  EXPECT_EQ(doc.Attribute(author, "gtid"), "1001");
  EXPECT_EQ(doc.Attribute(author, "missing"), "");
  EXPECT_EQ(doc.ElementChildren(root).size(), 2u);
  EXPECT_EQ(doc.ChildrenByTag(root, "author").size(), 1u);
  EXPECT_EQ(doc.FirstChildByTag(root, "title"),
            doc.ElementChildren(root)[1]);
  EXPECT_EQ(doc.FirstChildByTag(root, "none"), kInvalidNode);
  EXPECT_TRUE(doc.IsAncestor(root, author));
  EXPECT_FALSE(doc.IsAncestor(author, root));
  EXPECT_EQ(doc.Depth(root), 0);
  EXPECT_EQ(doc.Depth(author), 1);
}

TEST(XmlDocumentTest, SetAttributeOverwrites) {
  XmlDocument doc;
  NodeId root = doc.CreateRoot("r");
  doc.SetAttribute(root, "k", "v1");
  doc.SetAttribute(root, "k", "v2");
  EXPECT_EQ(doc.Attribute(root, "k"), "v2");
  EXPECT_EQ(doc.node(root).attributes.size(), 1u);
}

TEST(XmlDocumentTest, DescendantsInDocumentOrder) {
  XmlDocument doc;
  NodeId root = doc.CreateRoot("a");
  NodeId b = doc.AppendElement(root, "b");
  NodeId c = doc.AppendElement(b, "c");
  NodeId d = doc.AppendElement(root, "d");
  auto desc = doc.ElementDescendants(root);
  ASSERT_EQ(desc.size(), 3u);
  EXPECT_EQ(desc[0], b);
  EXPECT_EQ(desc[1], c);
  EXPECT_EQ(desc[2], d);
}

TEST(XmlDocumentTest, TextContentConcatenatesDescendants) {
  XmlDocument doc;
  NodeId root = doc.CreateRoot("p");
  doc.AppendText(root, "Hello ");
  NodeId em = doc.AppendElement(root, "em");
  doc.AppendText(em, "XML");
  doc.AppendText(root, " world");
  EXPECT_EQ(doc.TextContent(root), "Hello XML world");
}

TEST(XmlDocumentTest, CopySubtree) {
  XmlDocument src;
  NodeId root = src.CreateRoot("a");
  NodeId b = src.AppendTextElement(root, "b", "text");
  src.SetAttribute(b, "attr", "v");

  XmlDocument dst;
  dst.CopySubtree(src, root, kInvalidNode);
  EXPECT_EQ(Write(dst), Write(src));
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

TEST(XmlParserTest, ParsesSimpleDocument) {
  auto r = Parse("<a><b>hi</b><c x=\"1\"/></a>");
  ASSERT_TRUE(r.ok()) << r.status();
  const XmlDocument& doc = *r;
  EXPECT_EQ(doc.node(doc.root()).tag, "a");
  EXPECT_EQ(doc.ElementChildren(doc.root()).size(), 2u);
  NodeId c = doc.FirstChildByTag(doc.root(), "c");
  EXPECT_EQ(doc.Attribute(c, "x"), "1");
}

TEST(XmlParserTest, ParsesDeclarationDoctypeAndComments) {
  auto r = Parse(
      "<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n"
      "<!DOCTYPE dblp>\n"
      "<!-- bibliographic data -->\n"
      "<dblp><!-- inner --><x/></dblp>\n"
      "<!-- trailing -->");
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(r->node(r->root()).tag, "dblp");
}

TEST(XmlParserTest, DecodesEntities) {
  auto r = Parse("<t a=\"&quot;q&quot;\">&lt;&amp;&gt; &#65;&#x42;</t>");
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(r->TextContent(r->root()), "<&> AB");
  EXPECT_EQ(r->Attribute(r->root(), "a"), "\"q\"");
}

TEST(XmlParserTest, ParsesCdata) {
  auto r = Parse("<t><![CDATA[a <raw> & b]]></t>");
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(r->TextContent(r->root()), "a <raw> & b");
}

TEST(XmlParserTest, DropsInsignificantWhitespace) {
  auto r = Parse("<a>\n  <b>x</b>\n  <c>y</c>\n</a>");
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(r->TextContent(r->root()), "xy");
}

TEST(XmlParserTest, RejectsMismatchedTags) {
  auto r = Parse("<a><b></a></b>");
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsParseError());
}

TEST(XmlParserTest, RejectsUnterminatedElement) {
  EXPECT_FALSE(Parse("<a><b>").ok());
}

TEST(XmlParserTest, RejectsTrailingContent) {
  EXPECT_FALSE(Parse("<a/><b/>").ok());
}

TEST(XmlParserTest, RejectsUnknownEntity) {
  EXPECT_FALSE(Parse("<a>&nope;</a>").ok());
}

TEST(XmlParserTest, RejectsEmptyInput) {
  EXPECT_FALSE(Parse("").ok());
  EXPECT_FALSE(Parse("   \n ").ok());
}

TEST(XmlParserTest, ErrorsCarryLineNumbers) {
  auto r = Parse("<a>\n<b>\n</c>\n</a>");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("line 3"), std::string::npos)
      << r.status();
}

TEST(XmlParserTest, AcceptsSingleQuotedAttributes) {
  auto r = Parse("<a k='v \"quoted\"'/>");
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(r->Attribute(r->root(), "k"), "v \"quoted\"");
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

TEST(XmlWriterTest, EscapesSpecialCharacters) {
  EXPECT_EQ(EscapeText("a<b>&\"c"), "a&lt;b&gt;&amp;&quot;c");
}

TEST(XmlWriterTest, RoundTripsThroughParser) {
  const char* kDocs[] = {
      "<a/>",
      "<a x=\"1\" y=\"two\"><b>text</b><c/></a>",
      "<t>&lt;escaped&gt; &amp; more</t>",
      "<deep><l1><l2><l3>v</l3></l2></l1></deep>",
  };
  for (const char* text : kDocs) {
    auto first = Parse(text);
    ASSERT_TRUE(first.ok()) << first.status();
    std::string written = Write(*first);
    auto second = Parse(written);
    ASSERT_TRUE(second.ok()) << second.status() << " for " << written;
    EXPECT_EQ(Write(*second), written) << text;
  }
}

TEST(XmlWriterTest, PrettyPrintKeepsTextElementsInline) {
  auto r = Parse("<a><b>x</b></a>");
  ASSERT_TRUE(r.ok());
  WriteOptions opts;
  opts.pretty = true;
  std::string out = Write(*r, opts);
  EXPECT_NE(out.find("<b>x</b>"), std::string::npos);
  EXPECT_NE(out.find("\n"), std::string::npos);
}

TEST(XmlWriterTest, DeclarationOption) {
  auto r = Parse("<a/>");
  ASSERT_TRUE(r.ok());
  WriteOptions opts;
  opts.declaration = true;
  EXPECT_EQ(Write(*r, opts).rfind("<?xml", 0), 0u);
}

}  // namespace
}  // namespace toss::xml
