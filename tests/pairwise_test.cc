// Tests for the pairwise-distance driver (sim/pairwise.h): the
// DistanceMatrix layout, the signature / lower-bound admission filters, and
// the property that filtered + parallel scans are bit-identical to the
// naive double loop.

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <string>
#include <vector>

#include "common/random.h"
#include "sim/measure_registry.h"
#include "sim/node_measure.h"
#include "sim/pairwise.h"
#include "sim/soft_tfidf.h"
#include "sim/string_measure.h"

namespace toss::sim {
namespace {

// ---------------------------------------------------------------------------
// DistanceMatrix
// ---------------------------------------------------------------------------

TEST(DistanceMatrixTest, IndexingRoundTrips) {
  const size_t n = 7;
  DistanceMatrix dm(n);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i + 1; j < n; ++j) {
      dm.set(i, j, static_cast<double>(100 * i + j));
    }
  }
  for (size_t i = 0; i < n; ++i) {
    EXPECT_DOUBLE_EQ(dm.at(i, i), 0.0);
    for (size_t j = i + 1; j < n; ++j) {
      EXPECT_DOUBLE_EQ(dm.at(i, j), static_cast<double>(100 * i + j));
      EXPECT_DOUBLE_EQ(dm.at(j, i), dm.at(i, j)) << "symmetric access";
    }
  }
}

TEST(DistanceMatrixTest, TinySizes) {
  DistanceMatrix d0(0);
  EXPECT_EQ(d0.size(), 0u);
  DistanceMatrix d1(1);
  EXPECT_DOUBLE_EQ(d1.at(0, 0), 0.0);
}

TEST(DistanceMatrixTest, ForEachAtMostVisitsExactlyThresholdedPairs) {
  const size_t n = 6;
  DistanceMatrix dm(n);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i + 1; j < n; ++j) {
      dm.set(i, j, static_cast<double>(i + j));
    }
  }
  std::vector<std::pair<size_t, size_t>> seen;
  dm.ForEachAtMost(4.0, [&](size_t i, size_t j) { seen.push_back({i, j}); });
  for (const auto& [i, j] : seen) {
    EXPECT_LE(dm.at(i, j), 4.0);
  }
  size_t expected = 0;
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i + 1; j < n; ++j) {
      if (dm.at(i, j) <= 4.0) ++expected;
    }
  }
  EXPECT_EQ(seen.size(), expected);
}

// ---------------------------------------------------------------------------
// Lower bounds and signatures never exceed the true distance
// ---------------------------------------------------------------------------

std::vector<StringMeasurePtr> FilterableMeasures() {
  std::vector<StringMeasurePtr> ms;
  for (const char* name :
       {"levenshtein", "damerau", "ci-levenshtein", "guarded-levenshtein"}) {
    ms.push_back(*MakeMeasure(name));
  }
  return ms;
}

TEST(LowerBoundTest, NeverExceedsTrueDistance) {
  Random rng(99);
  for (const auto& m : FilterableMeasures()) {
    for (int i = 0; i < 400; ++i) {
      std::string a = rng.AlphaString(rng.Uniform(16));
      std::string b =
          rng.Bernoulli(0.2) ? a : rng.AlphaString(rng.Uniform(16));
      if (rng.Bernoulli(0.3) && !a.empty()) {
        b = a;
        b[rng.Uniform(b.size())] = 'z';  // near-duplicate
      }
      double exact = m->Distance(a, b);
      EXPECT_LE(m->DistanceLowerBound(a, b), exact)
          << m->name() << "(" << a << ", " << b << ")";
      StringSignature sa, sb;
      ASSERT_TRUE(m->ComputeSignature(a, &sa)) << m->name();
      ASSERT_TRUE(m->ComputeSignature(b, &sb)) << m->name();
      EXPECT_LE(m->SignatureLowerBound(sa, sb), exact)
          << m->name() << "(" << a << ", " << b << ")";
    }
  }
}

TEST(LowerBoundTest, ZeroForEqualStrings) {
  for (const auto& m : FilterableMeasures()) {
    for (const char* s : {"", "a", "query", "similarity"}) {
      EXPECT_DOUBLE_EQ(m->DistanceLowerBound(s, s), 0.0) << m->name();
      StringSignature sig;
      ASSERT_TRUE(m->ComputeSignature(s, &sig));
      EXPECT_DOUBLE_EQ(m->SignatureLowerBound(sig, sig), 0.0) << m->name();
    }
  }
}

TEST(LowerBoundTest, UnsupportedMeasuresDeclineSignatures) {
  for (const char* name : {"jaro", "jaro-winkler", "monge-elkan"}) {
    auto m = *MakeMeasure(name);
    StringSignature sig;
    EXPECT_FALSE(m->ComputeSignature("abc", &sig)) << name;
    EXPECT_DOUBLE_EQ(m->DistanceLowerBound("abc", "xyz"), 0.0) << name;
  }
}

// ---------------------------------------------------------------------------
// Filtered + parallel drivers are bit-identical to the naive double loop
// ---------------------------------------------------------------------------

/// Random node set: mixes singleton nodes, multi-term nodes, clusters of
/// near-duplicates, and (with all_identical) degenerate same-term sets.
std::vector<std::vector<std::string>> RandomNodes(Random& rng, size_t n,
                                                  bool all_identical) {
  std::vector<std::vector<std::string>> nodes(n);
  std::string prev = "seed";
  for (size_t i = 0; i < n; ++i) {
    size_t terms = 1 + rng.Uniform(3);
    for (size_t t = 0; t < terms; ++t) {
      if (all_identical) {
        nodes[i].push_back("constant");
      } else if (rng.Bernoulli(0.3)) {
        std::string s = prev;
        if (!s.empty()) s[rng.Uniform(s.size())] = 'q';
        nodes[i].push_back(s);
      } else {
        nodes[i].push_back(rng.AlphaString(4 + rng.Uniform(10)));
      }
      prev = nodes[i].back();
    }
  }
  return nodes;
}

/// The reference scan: an unfiltered sequential double loop with the same
/// over-bound canonicalization the driver promises.
DistanceMatrix NaiveNodeScan(const std::vector<std::vector<std::string>>& nodes,
                             const StringMeasure& m, double bound) {
  DistanceMatrix dm(nodes.size());
  for (size_t i = 0; i < nodes.size(); ++i) {
    for (size_t j = i + 1; j < nodes.size(); ++j) {
      double d = BoundedNodeDistance(nodes[i], nodes[j], m, bound);
      if (!(d <= bound)) d = DistanceMatrix::kOverBound;
      dm.set(i, j, d);
    }
  }
  return dm;
}

TEST(PairwiseDriverTest, FilteredAndParallelMatchNaiveBitForBit) {
  Random rng(2024);
  std::vector<StringMeasurePtr> measures;
  measures.push_back(*MakeMeasure("levenshtein"));
  measures.push_back(*MakeMeasure("jaro-winkler"));
  measures.push_back(*MakeMeasure("guarded-levenshtein"));
  {
    auto soft = std::make_shared<SoftTfIdfMeasure>();
    soft->Train({"information retrieval", "data integration",
                 "query processing", "relational model"});
    measures.push_back(soft);
  }

  for (const auto& m : measures) {
    for (bool all_identical : {false, true}) {
      auto node_values = RandomNodes(rng, 24, all_identical);
      std::vector<const std::vector<std::string>*> nodes;
      for (const auto& nv : node_values) nodes.push_back(&nv);

      for (double bound : {0.0, 0.5, 1.0, 2.0, 4.0,
                           std::numeric_limits<double>::infinity()}) {
        DistanceMatrix naive = NaiveNodeScan(node_values, *m, bound);

        PairwiseOptions filtered;
        filtered.bound = bound;
        filtered.parallel = false;
        EXPECT_TRUE(naive == PairwiseNodeDistances(nodes, *m, filtered))
            << m->name() << " filtered, bound=" << bound
            << " all_identical=" << all_identical;

        PairwiseOptions parallel;
        parallel.bound = bound;
        parallel.min_parallel_items = 0;  // force the pool path
        EXPECT_TRUE(naive == PairwiseNodeDistances(nodes, *m, parallel))
            << m->name() << " parallel, bound=" << bound
            << " all_identical=" << all_identical;

        PairwiseOptions unfiltered;
        unfiltered.bound = bound;
        unfiltered.use_filters = false;
        unfiltered.parallel = false;
        EXPECT_TRUE(naive == PairwiseNodeDistances(nodes, *m, unfiltered))
            << m->name() << " unfiltered, bound=" << bound
            << " all_identical=" << all_identical;
      }
    }
  }
}

TEST(PairwiseDriverTest, StringDriverMatchesDirectBoundedCalls) {
  Random rng(7);
  LevenshteinMeasure lev;
  std::vector<std::string> terms;
  for (int i = 0; i < 40; ++i) {
    if (i % 3 == 2 && !terms.empty()) {
      std::string s = terms.back();
      s[rng.Uniform(s.size())] = 'x';
      terms.push_back(s);
    } else {
      terms.push_back(rng.AlphaString(5 + rng.Uniform(8)));
    }
  }
  for (double bound : {0.0, 1.0, 3.0}) {
    DistanceMatrix expected(terms.size());
    for (size_t i = 0; i < terms.size(); ++i) {
      for (size_t j = i + 1; j < terms.size(); ++j) {
        double d = lev.BoundedDistance(terms[i], terms[j], bound);
        if (!(d <= bound)) d = DistanceMatrix::kOverBound;
        expected.set(i, j, d);
      }
    }
    PairwiseOptions opts;
    opts.bound = bound;
    opts.min_parallel_items = 0;
    EXPECT_TRUE(expected == PairwiseStringDistances(terms, lev, opts))
        << "bound=" << bound;
    opts.use_filters = false;
    EXPECT_TRUE(expected == PairwiseStringDistances(terms, lev, opts))
        << "unfiltered bound=" << bound;
  }
}

TEST(PairwiseDriverTest, OverBoundEntriesAreCanonical) {
  LevenshteinMeasure lev;
  std::vector<std::string> a = {"alpha"};
  std::vector<std::string> b = {"omega12345"};
  std::vector<const std::vector<std::string>*> nodes = {&a, &b};
  PairwiseOptions opts;
  opts.bound = 1.0;
  opts.parallel = false;
  DistanceMatrix dm = PairwiseNodeDistances(nodes, lev, opts);
  EXPECT_TRUE(std::isinf(dm.at(0, 1)));
  EXPECT_EQ(dm.at(0, 1), DistanceMatrix::kOverBound);
}

TEST(PairwiseDriverTest, EmptyNodeTermsAreOverBound) {
  LevenshteinMeasure lev;
  std::vector<std::string> a = {"alpha"};
  std::vector<std::string> none;
  std::vector<const std::vector<std::string>*> nodes = {&a, &none};
  PairwiseOptions opts;
  opts.bound = 100.0;
  opts.parallel = false;
  DistanceMatrix dm = PairwiseNodeDistances(nodes, lev, opts);
  EXPECT_EQ(dm.at(0, 1), DistanceMatrix::kOverBound);
  opts.use_filters = false;
  DistanceMatrix dm2 = PairwiseNodeDistances(nodes, lev, opts);
  EXPECT_TRUE(dm == dm2);
}

}  // namespace
}  // namespace toss::sim
